file(REMOVE_RECURSE
  "CMakeFiles/bench_groups23.dir/bench_groups23.cc.o"
  "CMakeFiles/bench_groups23.dir/bench_groups23.cc.o.d"
  "bench_groups23"
  "bench_groups23.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_groups23.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
