# Empty dependencies file for bench_groups23.
# This may be replaced when dependencies are built.
