file(REMOVE_RECURSE
  "CMakeFiles/bench_lipp.dir/bench_lipp.cc.o"
  "CMakeFiles/bench_lipp.dir/bench_lipp.cc.o.d"
  "bench_lipp"
  "bench_lipp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lipp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
