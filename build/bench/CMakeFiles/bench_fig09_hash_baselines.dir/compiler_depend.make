# Empty compiler generated dependencies file for bench_fig09_hash_baselines.
# This may be replaced when dependencies are built.
