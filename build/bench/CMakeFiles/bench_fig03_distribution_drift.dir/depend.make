# Empty dependencies file for bench_fig03_distribution_drift.
# This may be replaced when dependencies are built.
