# Empty compiler generated dependencies file for bench_fig01_characteristics.
# This may be replaced when dependencies are built.
