file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_characteristics.dir/bench_fig01_characteristics.cc.o"
  "CMakeFiles/bench_fig01_characteristics.dir/bench_fig01_characteristics.cc.o.d"
  "bench_fig01_characteristics"
  "bench_fig01_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
