file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_plr_models.dir/bench_fig02_plr_models.cc.o"
  "CMakeFiles/bench_fig02_plr_models.dir/bench_fig02_plr_models.cc.o.d"
  "bench_fig02_plr_models"
  "bench_fig02_plr_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_plr_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
