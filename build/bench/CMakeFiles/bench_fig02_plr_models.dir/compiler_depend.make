# Empty compiler generated dependencies file for bench_fig02_plr_models.
# This may be replaced when dependencies are built.
