file(REMOVE_RECURSE
  "CMakeFiles/bench_finegrained.dir/bench_finegrained.cc.o"
  "CMakeFiles/bench_finegrained.dir/bench_finegrained.cc.o.d"
  "bench_finegrained"
  "bench_finegrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_finegrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
