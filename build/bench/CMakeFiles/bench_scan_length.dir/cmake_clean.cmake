file(REMOVE_RECURSE
  "CMakeFiles/bench_scan_length.dir/bench_scan_length.cc.o"
  "CMakeFiles/bench_scan_length.dir/bench_scan_length.cc.o.d"
  "bench_scan_length"
  "bench_scan_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
