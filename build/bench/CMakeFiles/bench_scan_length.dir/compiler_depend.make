# Empty compiler generated dependencies file for bench_scan_length.
# This may be replaced when dependencies are built.
