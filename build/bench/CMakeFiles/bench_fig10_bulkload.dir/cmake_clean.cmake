file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_bulkload.dir/bench_fig10_bulkload.cc.o"
  "CMakeFiles/bench_fig10_bulkload.dir/bench_fig10_bulkload.cc.o.d"
  "bench_fig10_bulkload"
  "bench_fig10_bulkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bulkload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
