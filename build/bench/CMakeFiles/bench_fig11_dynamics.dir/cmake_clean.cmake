file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dynamics.dir/bench_fig11_dynamics.cc.o"
  "CMakeFiles/bench_fig11_dynamics.dir/bench_fig11_dynamics.cc.o.d"
  "bench_fig11_dynamics"
  "bench_fig11_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
