file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_ycsb.dir/bench_fig08_ycsb.cc.o"
  "CMakeFiles/bench_fig08_ycsb.dir/bench_fig08_ycsb.cc.o.d"
  "bench_fig08_ycsb"
  "bench_fig08_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
