# Empty dependencies file for bench_fig08_ycsb.
# This may be replaced when dependencies are built.
