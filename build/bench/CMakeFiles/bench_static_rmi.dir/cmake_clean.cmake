file(REMOVE_RECURSE
  "CMakeFiles/bench_static_rmi.dir/bench_static_rmi.cc.o"
  "CMakeFiles/bench_static_rmi.dir/bench_static_rmi.cc.o.d"
  "bench_static_rmi"
  "bench_static_rmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static_rmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
