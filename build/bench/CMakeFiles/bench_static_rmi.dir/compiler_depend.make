# Empty compiler generated dependencies file for bench_static_rmi.
# This may be replaced when dependencies are built.
