file(REMOVE_RECURSE
  "CMakeFiles/dytis_analysis.dir/dynamics.cc.o"
  "CMakeFiles/dytis_analysis.dir/dynamics.cc.o.d"
  "CMakeFiles/dytis_analysis.dir/histogram.cc.o"
  "CMakeFiles/dytis_analysis.dir/histogram.cc.o.d"
  "libdytis_analysis.a"
  "libdytis_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dytis_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
