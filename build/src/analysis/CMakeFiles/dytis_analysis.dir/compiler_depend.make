# Empty compiler generated dependencies file for dytis_analysis.
# This may be replaced when dependencies are built.
