
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dynamics.cc" "src/analysis/CMakeFiles/dytis_analysis.dir/dynamics.cc.o" "gcc" "src/analysis/CMakeFiles/dytis_analysis.dir/dynamics.cc.o.d"
  "/root/repo/src/analysis/histogram.cc" "src/analysis/CMakeFiles/dytis_analysis.dir/histogram.cc.o" "gcc" "src/analysis/CMakeFiles/dytis_analysis.dir/histogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/learned/CMakeFiles/dytis_learned.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dytis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
