file(REMOVE_RECURSE
  "libdytis_analysis.a"
)
