file(REMOVE_RECURSE
  "libdytis_util.a"
)
