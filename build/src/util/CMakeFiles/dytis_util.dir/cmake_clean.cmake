file(REMOVE_RECURSE
  "CMakeFiles/dytis_util.dir/latency_recorder.cc.o"
  "CMakeFiles/dytis_util.dir/latency_recorder.cc.o.d"
  "CMakeFiles/dytis_util.dir/memory_usage.cc.o"
  "CMakeFiles/dytis_util.dir/memory_usage.cc.o.d"
  "libdytis_util.a"
  "libdytis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dytis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
