# Empty compiler generated dependencies file for dytis_util.
# This may be replaced when dependencies are built.
