file(REMOVE_RECURSE
  "libdytis_workloads.a"
)
