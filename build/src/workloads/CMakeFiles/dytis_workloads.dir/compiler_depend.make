# Empty compiler generated dependencies file for dytis_workloads.
# This may be replaced when dependencies are built.
