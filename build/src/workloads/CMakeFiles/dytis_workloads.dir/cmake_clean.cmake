file(REMOVE_RECURSE
  "CMakeFiles/dytis_workloads.dir/ycsb.cc.o"
  "CMakeFiles/dytis_workloads.dir/ycsb.cc.o.d"
  "libdytis_workloads.a"
  "libdytis_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dytis_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
