# Empty dependencies file for dytis_core.
# This may be replaced when dependencies are built.
