file(REMOVE_RECURSE
  "libdytis_core.a"
)
