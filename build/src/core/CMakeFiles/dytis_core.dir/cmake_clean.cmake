file(REMOVE_RECURSE
  "CMakeFiles/dytis_core.dir/remap_function.cc.o"
  "CMakeFiles/dytis_core.dir/remap_function.cc.o.d"
  "libdytis_core.a"
  "libdytis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dytis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
