file(REMOVE_RECURSE
  "CMakeFiles/dytis_datasets.dir/dataset.cc.o"
  "CMakeFiles/dytis_datasets.dir/dataset.cc.o.d"
  "CMakeFiles/dytis_datasets.dir/file_loader.cc.o"
  "CMakeFiles/dytis_datasets.dir/file_loader.cc.o.d"
  "CMakeFiles/dytis_datasets.dir/generators.cc.o"
  "CMakeFiles/dytis_datasets.dir/generators.cc.o.d"
  "libdytis_datasets.a"
  "libdytis_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dytis_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
