file(REMOVE_RECURSE
  "libdytis_datasets.a"
)
