# Empty compiler generated dependencies file for dytis_datasets.
# This may be replaced when dependencies are built.
