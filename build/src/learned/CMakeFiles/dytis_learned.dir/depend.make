# Empty dependencies file for dytis_learned.
# This may be replaced when dependencies are built.
