file(REMOVE_RECURSE
  "CMakeFiles/dytis_learned.dir/plr.cc.o"
  "CMakeFiles/dytis_learned.dir/plr.cc.o.d"
  "libdytis_learned.a"
  "libdytis_learned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dytis_learned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
