file(REMOVE_RECURSE
  "libdytis_learned.a"
)
