file(REMOVE_RECURSE
  "CMakeFiles/taxi_stream.dir/taxi_stream.cpp.o"
  "CMakeFiles/taxi_stream.dir/taxi_stream.cpp.o.d"
  "taxi_stream"
  "taxi_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
