# Empty compiler generated dependencies file for taxi_stream.
# This may be replaced when dependencies are built.
