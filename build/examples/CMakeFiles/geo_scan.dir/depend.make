# Empty dependencies file for geo_scan.
# This may be replaced when dependencies are built.
