file(REMOVE_RECURSE
  "CMakeFiles/geo_scan.dir/geo_scan.cpp.o"
  "CMakeFiles/geo_scan.dir/geo_scan.cpp.o.d"
  "geo_scan"
  "geo_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
