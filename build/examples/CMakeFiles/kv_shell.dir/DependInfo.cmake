
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/kv_shell.cpp" "examples/CMakeFiles/kv_shell.dir/kv_shell.cpp.o" "gcc" "examples/CMakeFiles/kv_shell.dir/kv_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dytis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/dytis_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dytis_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dytis_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dytis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/learned/CMakeFiles/dytis_learned.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
