file(REMOVE_RECURSE
  "CMakeFiles/file_benchmark.dir/file_benchmark.cpp.o"
  "CMakeFiles/file_benchmark.dir/file_benchmark.cpp.o.d"
  "file_benchmark"
  "file_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
