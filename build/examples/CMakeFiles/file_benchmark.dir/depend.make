# Empty dependencies file for file_benchmark.
# This may be replaced when dependencies are built.
