# Empty dependencies file for review_store.
# This may be replaced when dependencies are built.
