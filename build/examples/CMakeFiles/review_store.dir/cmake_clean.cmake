file(REMOVE_RECURSE
  "CMakeFiles/review_store.dir/review_store.cpp.o"
  "CMakeFiles/review_store.dir/review_store.cpp.o.d"
  "review_store"
  "review_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/review_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
