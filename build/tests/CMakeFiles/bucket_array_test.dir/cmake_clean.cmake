file(REMOVE_RECURSE
  "CMakeFiles/bucket_array_test.dir/bucket_array_test.cc.o"
  "CMakeFiles/bucket_array_test.dir/bucket_array_test.cc.o.d"
  "bucket_array_test"
  "bucket_array_test.pdb"
  "bucket_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucket_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
