# Empty dependencies file for hash_baselines_test.
# This may be replaced when dependencies are built.
