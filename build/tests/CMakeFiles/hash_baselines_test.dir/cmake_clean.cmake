file(REMOVE_RECURSE
  "CMakeFiles/hash_baselines_test.dir/hash_baselines_test.cc.o"
  "CMakeFiles/hash_baselines_test.dir/hash_baselines_test.cc.o.d"
  "hash_baselines_test"
  "hash_baselines_test.pdb"
  "hash_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
