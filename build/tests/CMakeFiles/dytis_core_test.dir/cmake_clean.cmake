file(REMOVE_RECURSE
  "CMakeFiles/dytis_core_test.dir/dytis_core_test.cc.o"
  "CMakeFiles/dytis_core_test.dir/dytis_core_test.cc.o.d"
  "dytis_core_test"
  "dytis_core_test.pdb"
  "dytis_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dytis_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
