# Empty compiler generated dependencies file for dytis_core_test.
# This may be replaced when dependencies are built.
