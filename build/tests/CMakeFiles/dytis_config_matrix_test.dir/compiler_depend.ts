# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dytis_config_matrix_test.
