file(REMOVE_RECURSE
  "CMakeFiles/dytis_config_matrix_test.dir/dytis_config_matrix_test.cc.o"
  "CMakeFiles/dytis_config_matrix_test.dir/dytis_config_matrix_test.cc.o.d"
  "dytis_config_matrix_test"
  "dytis_config_matrix_test.pdb"
  "dytis_config_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dytis_config_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
