# Empty dependencies file for plr_test.
# This may be replaced when dependencies are built.
