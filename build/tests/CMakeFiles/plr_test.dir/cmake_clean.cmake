file(REMOVE_RECURSE
  "CMakeFiles/plr_test.dir/plr_test.cc.o"
  "CMakeFiles/plr_test.dir/plr_test.cc.o.d"
  "plr_test"
  "plr_test.pdb"
  "plr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
