file(REMOVE_RECURSE
  "CMakeFiles/remap_function_test.dir/remap_function_test.cc.o"
  "CMakeFiles/remap_function_test.dir/remap_function_test.cc.o.d"
  "remap_function_test"
  "remap_function_test.pdb"
  "remap_function_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remap_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
