# Empty compiler generated dependencies file for remap_function_test.
# This may be replaced when dependencies are built.
