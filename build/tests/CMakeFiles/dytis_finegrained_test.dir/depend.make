# Empty dependencies file for dytis_finegrained_test.
# This may be replaced when dependencies are built.
