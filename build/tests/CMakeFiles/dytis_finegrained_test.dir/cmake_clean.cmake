file(REMOVE_RECURSE
  "CMakeFiles/dytis_finegrained_test.dir/dytis_finegrained_test.cc.o"
  "CMakeFiles/dytis_finegrained_test.dir/dytis_finegrained_test.cc.o.d"
  "dytis_finegrained_test"
  "dytis_finegrained_test.pdb"
  "dytis_finegrained_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dytis_finegrained_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
