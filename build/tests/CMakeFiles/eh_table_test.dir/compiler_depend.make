# Empty compiler generated dependencies file for eh_table_test.
# This may be replaced when dependencies are built.
