file(REMOVE_RECURSE
  "CMakeFiles/eh_table_test.dir/eh_table_test.cc.o"
  "CMakeFiles/eh_table_test.dir/eh_table_test.cc.o.d"
  "eh_table_test"
  "eh_table_test.pdb"
  "eh_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eh_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
