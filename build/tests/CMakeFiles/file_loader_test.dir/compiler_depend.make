# Empty compiler generated dependencies file for file_loader_test.
# This may be replaced when dependencies are built.
