file(REMOVE_RECURSE
  "CMakeFiles/file_loader_test.dir/file_loader_test.cc.o"
  "CMakeFiles/file_loader_test.dir/file_loader_test.cc.o.d"
  "file_loader_test"
  "file_loader_test.pdb"
  "file_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
