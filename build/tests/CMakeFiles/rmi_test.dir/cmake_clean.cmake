file(REMOVE_RECURSE
  "CMakeFiles/rmi_test.dir/rmi_test.cc.o"
  "CMakeFiles/rmi_test.dir/rmi_test.cc.o.d"
  "rmi_test"
  "rmi_test.pdb"
  "rmi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
