file(REMOVE_RECURSE
  "CMakeFiles/dytis_concurrency_test.dir/dytis_concurrency_test.cc.o"
  "CMakeFiles/dytis_concurrency_test.dir/dytis_concurrency_test.cc.o.d"
  "dytis_concurrency_test"
  "dytis_concurrency_test.pdb"
  "dytis_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dytis_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
