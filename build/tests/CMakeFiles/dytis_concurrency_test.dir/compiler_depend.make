# Empty compiler generated dependencies file for dytis_concurrency_test.
# This may be replaced when dependencies are built.
