add_test([=[IntegrationTest.LifecycleAcrossAllDatasetShapes]=]  /root/repo/build/tests/integration_test [==[--gtest_filter=IntegrationTest.LifecycleAcrossAllDatasetShapes]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[IntegrationTest.LifecycleAcrossAllDatasetShapes]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 600)
set(  integration_test_TESTS IntegrationTest.LifecycleAcrossAllDatasetShapes)
