#include "src/learned/plr.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace dytis {

PlrBuilder::PlrBuilder(double max_error) : max_error_(max_error) {
  assert(max_error > 0.0);
}

void PlrBuilder::Add(uint64_t key, double position) {
  if (!open_) {
    open_ = true;
    seg_start_key_ = key;
    seg_start_pos_ = position;
    seg_points_ = 1;
    slope_lo_ = -std::numeric_limits<double>::infinity();
    slope_hi_ = std::numeric_limits<double>::infinity();
    last_key_ = key;
    last_pos_ = position;
    return;
  }
  assert(key >= seg_start_key_);
  const double dx = static_cast<double>(key - seg_start_key_);
  const double dy = position - seg_start_pos_;
  if (dx == 0.0) {
    // Duplicate key: representable iff the position stays within the error
    // band at the segment origin.
    if (dy > max_error_ || dy < -max_error_) {
      CloseSegment();
      Add(key, position);
      return;
    }
    seg_points_++;
    last_key_ = key;
    last_pos_ = position;
    return;
  }
  // Cone constraints through the segment origin.
  const double lo = (dy - max_error_) / dx;
  const double hi = (dy + max_error_) / dx;
  const double new_lo = std::max(slope_lo_, lo);
  const double new_hi = std::min(slope_hi_, hi);
  if (new_lo > new_hi) {
    CloseSegment();
    Add(key, position);
    return;
  }
  slope_lo_ = new_lo;
  slope_hi_ = new_hi;
  seg_points_++;
  last_key_ = key;
  last_pos_ = position;
}

void PlrBuilder::CloseSegment() {
  PlrSegment seg;
  seg.start_key = seg_start_key_;
  double slope = 0.0;
  if (seg_points_ > 1 && slope_lo_ > -std::numeric_limits<double>::infinity()) {
    // Midpoint of the feasible cone is the standard choice.
    if (slope_hi_ == std::numeric_limits<double>::infinity()) {
      slope = slope_lo_;
    } else {
      slope = (slope_lo_ + slope_hi_) / 2.0;
    }
  }
  seg.model.slope = slope;
  seg.model.intercept =
      seg_start_pos_ - slope * static_cast<double>(seg_start_key_);
  segments_.push_back(seg);
  open_ = false;
}

std::vector<PlrSegment> PlrBuilder::Finish() {
  if (open_) {
    CloseSegment();
  }
  return std::move(segments_);
}

size_t PlrBuilder::SegmentCount() const {
  return segments_.size() + (open_ ? 1 : 0);
}

size_t CountPlrSegments(const std::vector<uint64_t>& sorted_keys,
                        double max_error) {
  PlrBuilder plr(max_error);
  for (size_t i = 0; i < sorted_keys.size(); i++) {
    plr.Add(sorted_keys[i], static_cast<double>(i));
  }
  return plr.Finish().size();
}

}  // namespace dytis
