// Linear model y = slope * x + intercept over uint64 keys.
//
// Shared by the ALEX-style and XIndex-style baselines (position prediction in
// sorted arrays) and by the PLR used for the skewness metric.  Fitting is
// ordinary least squares in double precision; predictions are clamped by the
// caller to the valid slot range.
#ifndef DYTIS_SRC_LEARNED_LINEAR_MODEL_H_
#define DYTIS_SRC_LEARNED_LINEAR_MODEL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace dytis {

struct LinearModel {
  double slope = 0.0;
  double intercept = 0.0;

  double Predict(uint64_t key) const {
    return slope * static_cast<double>(key) + intercept;
  }

  // Predicts an integer position clamped to [0, size).
  size_t PredictClamped(uint64_t key, size_t size) const {
    if (size == 0) {
      return 0;
    }
    const double p = Predict(key);
    if (p <= 0.0) {
      return 0;
    }
    if (p >= static_cast<double>(size - 1)) {
      return size - 1;
    }
    return static_cast<size_t>(p);
  }
};

// Incremental least-squares fitter: feed (key, position) pairs, then Fit().
//
// Keys are centred on the first sample before accumulating, which keeps the
// normal equations well-conditioned even for keys near 2^63 (raw sums of
// x^2 would lose all precision there).
class LinearModelBuilder {
 public:
  void Add(uint64_t key, double position) {
    if (count_ == 0) {
      first_x_ = static_cast<double>(key);
      first_y_ = position;
    }
    const double x = static_cast<double>(key) - first_x_;
    count_++;
    sum_x_ += x;
    sum_y_ += position;
    sum_xx_ += x * x;
    sum_xy_ += x * position;
    last_x_ = x;
    last_y_ = position;
  }

  size_t count() const { return count_; }

  LinearModel Fit() const {
    LinearModel m;
    if (count_ == 0) {
      return m;
    }
    if (count_ == 1) {
      m.slope = 0.0;
      m.intercept = first_y_;
      return m;
    }
    const double n = static_cast<double>(count_);
    const double det = n * sum_xx_ - sum_x_ * sum_x_;
    if (det == 0.0) {
      // All keys equal; fall back to a flat model through the mean.
      m.slope = 0.0;
      m.intercept = sum_y_ / n;
      return m;
    }
    m.slope = (n * sum_xy_ - sum_x_ * sum_y_) / det;
    // Un-centre: y = slope * (x - first_x) + b.
    m.intercept = (sum_y_ - m.slope * sum_x_) / n - m.slope * first_x_;
    return m;
  }

  // Endpoint fit: line through the first and last sample.  Cheaper and often
  // what learned-index bulk loaders use for leaf models.
  LinearModel FitEndpoints() const {
    LinearModel m;
    if (count_ == 0) {
      return m;
    }
    // last_x_ is centred on the first sample, so 0 means "same key".
    if (count_ == 1 || last_x_ == 0.0) {
      m.slope = 0.0;
      m.intercept = first_y_;
      return m;
    }
    m.slope = (last_y_ - first_y_) / last_x_;
    m.intercept = first_y_ - m.slope * first_x_;
    return m;
  }

 private:
  size_t count_ = 0;
  double sum_x_ = 0.0;
  double sum_y_ = 0.0;
  double sum_xx_ = 0.0;
  double sum_xy_ = 0.0;
  double first_x_ = 0.0;
  double first_y_ = 0.0;
  double last_x_ = 0.0;
  double last_y_ = 0.0;
};

}  // namespace dytis

#endif  // DYTIS_SRC_LEARNED_LINEAR_MODEL_H_
