// Maximum error-bounded Piecewise Linear Representation (PLR).
//
// Implements the online segmentation of Xie et al. (VLDB'14), the technique
// the paper cites ([64]) for approximating a dataset CDF and the basis of the
// "variance of skewness" metric in Section 2.1: the average number of linear
// models needed per fixed-size key range.
//
// The algorithm is the classic slope-cone method: maintain the feasible
// slope interval [slope_lo, slope_hi] of lines through the segment origin
// that pass within +/- error of every point seen so far; when the interval
// empties, close the segment and start a new one.
#ifndef DYTIS_SRC_LEARNED_PLR_H_
#define DYTIS_SRC_LEARNED_PLR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/learned/linear_model.h"

namespace dytis {

struct PlrSegment {
  uint64_t start_key = 0;  // first key covered by this segment
  LinearModel model;
};

// Online error-bounded PLR builder.  Feed strictly non-decreasing keys with
// their positions (e.g. CDF rank); segments() returns the fitted pieces.
class PlrBuilder {
 public:
  // max_error: maximum allowed |predicted - actual| position error.
  explicit PlrBuilder(double max_error);

  // Adds the next point.  Keys must be fed in non-decreasing order.
  void Add(uint64_t key, double position);

  // Closes the trailing segment and returns all segments.
  std::vector<PlrSegment> Finish();

  // Number of segments produced so far (including the open one, if any).
  size_t SegmentCount() const;

 private:
  void CloseSegment();

  double max_error_;
  std::vector<PlrSegment> segments_;

  // State of the open segment.
  bool open_ = false;
  uint64_t seg_start_key_ = 0;
  double seg_start_pos_ = 0.0;
  size_t seg_points_ = 0;
  double slope_lo_ = 0.0;
  double slope_hi_ = 0.0;
  uint64_t last_key_ = 0;
  double last_pos_ = 0.0;
};

// Convenience: number of PLR segments needed for `keys` (sorted ascending)
// with positions 0..n-1 and the given error bound.
size_t CountPlrSegments(const std::vector<uint64_t>& sorted_keys,
                        double max_error);

}  // namespace dytis

#endif  // DYTIS_SRC_LEARNED_PLR_H_
