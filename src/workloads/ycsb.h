// YCSB-style workload harness (Section 4.3 protocol).
//
// The seven workloads of the paper:
//   Load : 100% inserts (whole dataset, in dataset order)
//   A    : 50% reads / 50% updates
//   B    : 95% reads /  5% updates
//   C    : 100% reads
//   D'   :  5% inserts / 95% reads of *existing* keys (the paper's variant
//          of YCSB D); starts from an 80%-loaded index and finishes when
//          every dataset key is inserted
//   E    :  5% inserts / 95% scans of length 100; same protocol as D'
//   F    : 50% reads / 50% read-modify-writes
//
// Keys for reads/updates/scans are chosen with YCSB's scrambled-Zipfian
// distribution (theta = 0.99) over the loaded population.  Learned-index
// candidates bulk load a fraction of the dataset first (ALEX-10/-70,
// XIndex-70), exactly as in the paper.
#ifndef DYTIS_SRC_WORKLOADS_YCSB_H_
#define DYTIS_SRC_WORKLOADS_YCSB_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/datasets/dataset.h"
#include "src/util/latency_recorder.h"
#include "src/workloads/kv_index.h"

namespace dytis {

// kD is classic YCSB D (95% reads of the *latest* keys / 5% inserts); the
// paper replaces it with kDPrime (reads of existing keys, Zipfian over the
// whole population) because repeated-batch runs make exact D modelling
// complex.  Both are provided.
enum class YcsbWorkload { kLoad, kA, kB, kC, kD, kDPrime, kE, kF };

const char* YcsbWorkloadName(YcsbWorkload w);

// Key-chooser distribution for reads/updates/scans.  The paper uses
// Zipfian(0.99) and reports that uniform gives similar results.
enum class KeyDistribution { kZipfian, kUniform };

// Primitive operation kinds a mixed workload executes.  Results report
// executed counts (and sampled latency) per kind, not just the aggregate.
enum class YcsbOpType : uint8_t {
  kRead = 0,
  kUpdate,
  kInsert,
  kScan,
  kReadModifyWrite,
};
inline constexpr int kNumYcsbOpTypes = 5;
const char* YcsbOpTypeName(YcsbOpType t);

struct YcsbOptions {
  // Fraction of the dataset bulk-loaded before the Load phase (learned
  // indexes; 0 = insert everything).
  double bulk_load_fraction = 0.0;
  // Ops in the measured phase (A/B/C/F); the paper uses >= 50% of the
  // dataset size.
  size_t run_ops = 0;  // 0 -> dataset_size / 2
  // Fraction pre-loaded before D'/E (the paper uses 80%).
  double preload_fraction = 0.8;
  double zipf_theta = 0.99;
  KeyDistribution key_distribution = KeyDistribution::kZipfian;
  size_t scan_length = 100;
  // When true, per-op latencies are recorded (Table 2).
  bool record_latency = false;
  // Latency sampling rate: 1 times every operation (exact percentiles, the
  // Table 2 protocol); N > 1 times only every N-th operation, keeping the
  // clock calls and histogram updates off most iterations.  Rates > 1
  // require an observability build (DYTIS_OBS=ON, the default) — with
  // DYTIS_OBS=OFF the sampled path compiles out and no latency is recorded.
  uint64_t latency_sample_every = 1;
  uint64_t seed = 0xc0ffee;
};

struct YcsbResult {
  std::string workload;
  std::string index_name;
  size_t ops = 0;
  double seconds = 0.0;
  double throughput_mops = 0.0;
  LatencyRecorder latency;  // populated when record_latency
  bool supported = true;    // false: index cannot run this workload
  // Executed-operation counts per primitive kind (always populated; index
  // with YcsbOpType).  A D'/E insert slot that finds the dataset exhausted
  // executes — and is counted as — a read.
  std::array<size_t, kNumYcsbOpTypes> op_counts{};
  // Per-kind latency (populated when record_latency, subject to
  // latency_sample_every).
  std::array<LatencyRecorder, kNumYcsbOpTypes> op_latency;
};

// Value stored for a key (arbitrary but deterministic).
inline uint64_t ValueFor(uint64_t key) { return key ^ 0x5a5a5a5a5a5a5a5aULL; }

// Runs the Load phase: bulk-loads options.bulk_load_fraction of the keys
// (sorted) when supported, inserts the rest in dataset order, and reports
// insert throughput over the inserted part.
YcsbResult RunLoad(KVIndex* index, const Dataset& dataset,
                   const YcsbOptions& options);

// Runs one of workloads A/B/C/D'/E/F after performing the appropriate load
// (full load for A/B/C/F; preload_fraction for D'/E).
YcsbResult RunWorkload(KVIndex* index, const Dataset& dataset,
                       YcsbWorkload workload, const YcsbOptions& options);

// Multi-threaded run of Load / C-style searches / scans for the
// concurrency experiment (Figure 12).  Requests are assigned to threads
// round-robin; per-phase throughput is computed over the ops *actually
// executed* (op counts are distributed exactly across threads).  The index
// must be ThreadSafe().  When options.record_latency is set, each thread
// records into its own LatencyRecorder and the recorders are merged into
// the per-phase fields below after the joins.
struct ConcurrencyResult {
  double insert_mops = 0.0;
  double search_mops = 0.0;
  double update_mops = 0.0;
  double scan_mops = 0.0;  // scan ops (each of scan_length keys) per second
  // Ops actually executed per phase (sums of the per-thread shares).
  size_t insert_ops = 0;
  size_t search_ops = 0;
  size_t update_ops = 0;
  size_t scan_ops = 0;
  // Merged per-thread latency samples (populated when record_latency;
  // sampled 1-in-N when latency_sample_every > 1).
  LatencyRecorder insert_latency;
  LatencyRecorder search_latency;
  LatencyRecorder update_latency;
  LatencyRecorder scan_latency;
};
ConcurrencyResult RunConcurrent(KVIndex* index, const Dataset& dataset,
                                int num_threads, const YcsbOptions& options);

}  // namespace dytis

#endif  // DYTIS_SRC_WORKLOADS_YCSB_H_
