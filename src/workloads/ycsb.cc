#include "src/workloads/ycsb.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/sampler.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

constexpr size_t OpIdx(YcsbOpType t) { return static_cast<size_t>(t); }

// Loads the index: bulk fraction (sorted) + the remainder inserted in
// dataset order.  Returns the number of keys inserted (not bulk loaded).
size_t LoadIndex(KVIndex* index, const Dataset& dataset, double bulk_fraction,
                 double load_fraction, YcsbResult* result,
                 const YcsbOptions& options) {
  const size_t total =
      static_cast<size_t>(load_fraction * static_cast<double>(dataset.keys.size()));
  size_t bulk = 0;
  if (bulk_fraction > 0.0 && index->SupportsBulkLoad()) {
    bulk = std::min(total,
                    static_cast<size_t>(bulk_fraction *
                                        static_cast<double>(dataset.keys.size())));
    std::vector<KVIndex::ScanEntry> entries;
    entries.reserve(bulk);
    for (size_t i = 0; i < bulk; i++) {
      entries.push_back({dataset.keys[i], ValueFor(dataset.keys[i])});
    }
    std::sort(entries.begin(), entries.end());
    index->BulkLoad(entries);
  }
  Timer timer;
  if (result != nullptr && options.record_latency) {
    obs::OpSampler sampler(options.latency_sample_every);
    LatencyRecorder& inserts = result->op_latency[OpIdx(YcsbOpType::kInsert)];
    for (size_t i = bulk; i < total; i++) {
      if (sampler.Sample()) {
        const uint64_t t0 = NowNanos();
        index->Insert(dataset.keys[i], ValueFor(dataset.keys[i]));
        const uint64_t dt = NowNanos() - t0;
        result->latency.Record(dt);
        inserts.Record(dt);
      } else {
        index->Insert(dataset.keys[i], ValueFor(dataset.keys[i]));
      }
    }
  } else {
    for (size_t i = bulk; i < total; i++) {
      index->Insert(dataset.keys[i], ValueFor(dataset.keys[i]));
    }
  }
  if (result != nullptr) {
    result->ops = total - bulk;
    result->op_counts[OpIdx(YcsbOpType::kInsert)] += total - bulk;
    result->seconds = timer.ElapsedSeconds();
    result->throughput_mops =
        result->seconds > 0.0
            ? static_cast<double>(result->ops) / result->seconds / 1e6
            : 0.0;
  }
  return total;
}

}  // namespace

const char* YcsbOpTypeName(YcsbOpType t) {
  switch (t) {
    case YcsbOpType::kRead:
      return "read";
    case YcsbOpType::kUpdate:
      return "update";
    case YcsbOpType::kInsert:
      return "insert";
    case YcsbOpType::kScan:
      return "scan";
    case YcsbOpType::kReadModifyWrite:
      return "rmw";
  }
  return "?";
}

const char* YcsbWorkloadName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kLoad:
      return "Load";
    case YcsbWorkload::kA:
      return "A";
    case YcsbWorkload::kB:
      return "B";
    case YcsbWorkload::kC:
      return "C";
    case YcsbWorkload::kD:
      return "D";
    case YcsbWorkload::kDPrime:
      return "D'";
    case YcsbWorkload::kE:
      return "E";
    case YcsbWorkload::kF:
      return "F";
  }
  return "?";
}

YcsbResult RunLoad(KVIndex* index, const Dataset& dataset,
                   const YcsbOptions& options) {
  YcsbResult result;
  result.workload = "Load";
  result.index_name = index->Name();
  LoadIndex(index, dataset, options.bulk_load_fraction, 1.0, &result, options);
  return result;
}

YcsbResult RunWorkload(KVIndex* index, const Dataset& dataset,
                       YcsbWorkload workload, const YcsbOptions& options) {
  YcsbResult result;
  result.workload = YcsbWorkloadName(workload);
  result.index_name = index->Name();
  if (workload == YcsbWorkload::kLoad) {
    return RunLoad(index, dataset, options);
  }
  if (workload == YcsbWorkload::kE && !index->SupportsScan()) {
    result.supported = false;
    return result;
  }

  const bool inserting = workload == YcsbWorkload::kD ||
                         workload == YcsbWorkload::kDPrime ||
                         workload == YcsbWorkload::kE;
  const double load_fraction = inserting ? options.preload_fraction : 1.0;
  size_t loaded = LoadIndex(index, dataset, options.bulk_load_fraction,
                            load_fraction, nullptr, options);

  // Operation mix per workload: (read%, update%, insert%, scan%, rmw%).
  int read_pct = 0;
  int update_pct = 0;
  int insert_pct = 0;
  int scan_pct = 0;
  switch (workload) {
    case YcsbWorkload::kA:
      read_pct = 50;
      update_pct = 50;
      break;
    case YcsbWorkload::kB:
      read_pct = 95;
      update_pct = 5;
      break;
    case YcsbWorkload::kC:
      read_pct = 100;
      break;
    case YcsbWorkload::kD:
    case YcsbWorkload::kDPrime:
      read_pct = 95;
      insert_pct = 5;
      break;
    case YcsbWorkload::kE:
      scan_pct = 95;
      insert_pct = 5;
      break;
    case YcsbWorkload::kF:
      read_pct = 50;  // + 50% read-modify-write
      break;
    case YcsbWorkload::kLoad:
      break;
  }

  const size_t ops = options.run_ops != 0 ? options.run_ops
                                          : dataset.keys.size() / 2;

  ScrambledZipfianGenerator zipf(std::max<size_t>(1, loaded),
                                 options.zipf_theta, options.seed);
  // Classic YCSB D reads the *latest* keys: a (non-scrambled) Zipfian over
  // recency ranks, rank 0 = the most recently inserted key.
  ZipfianGenerator latest(std::max<size_t>(1, loaded), options.zipf_theta,
                          options.seed ^ 0x1a7e57ULL);
  Rng op_rng(options.seed ^ 0x09b5ULL);
  Rng uniform_rng(options.seed ^ 0x04a11ULL);
  std::vector<KVIndex::ScanEntry> scan_buf(options.scan_length);
  size_t next_insert = loaded;
  const bool latest_reads = workload == YcsbWorkload::kD;

  auto pick_key = [&]() -> uint64_t {
    if (latest_reads) {
      const uint64_t rank =
          std::min<uint64_t>(latest.Next(), next_insert - 1);
      return dataset.keys[next_insert - 1 - rank];
    }
    if (options.key_distribution == KeyDistribution::kUniform) {
      return dataset.keys[uniform_rng.NextBelow(next_insert)];
    }
    return dataset.keys[zipf.Next()];
  };

  Timer timer;
  obs::OpSampler sampler(options.latency_sample_every);
  // D/D'/E run until every dataset key is inserted (Section 4.3); the
  // other workloads run a fixed op count.
  for (size_t i = 0;
       inserting ? next_insert < dataset.keys.size() : i < ops; i++) {
    const int dice = static_cast<int>(op_rng.NextBelow(100));
    // Resolve the op kind before timing so the dice roll (and the
    // exhausted-dataset fallback decision) stay outside the measured span.
    YcsbOpType op;
    if (dice < read_pct) {
      op = YcsbOpType::kRead;
    } else if (dice < read_pct + update_pct) {
      op = YcsbOpType::kUpdate;
    } else if (dice < read_pct + update_pct + insert_pct) {
      // An insert slot after the dataset is exhausted executes a read.
      op = next_insert < dataset.keys.size() ? YcsbOpType::kInsert
                                             : YcsbOpType::kRead;
    } else if (dice < read_pct + update_pct + insert_pct + scan_pct) {
      op = YcsbOpType::kScan;
    } else {
      op = YcsbOpType::kReadModifyWrite;
    }
    const bool timed = options.record_latency && sampler.Sample();
    const uint64_t t0 = timed ? NowNanos() : 0;
    switch (op) {
      case YcsbOpType::kRead: {
        uint64_t value;
        index->Find(pick_key(), &value);
        break;
      }
      case YcsbOpType::kUpdate: {
        const uint64_t key = pick_key();
        index->Update(key, ValueFor(key) + i);
        break;
      }
      case YcsbOpType::kInsert: {
        const uint64_t key = dataset.keys[next_insert++];
        index->Insert(key, ValueFor(key));
        zipf.GrowTo(next_insert);
        // Workload D's recency ranks must cover the new key, or "latest"
        // reads would stay concentrated on the preload prefix.
        latest.GrowTo(next_insert);
        break;
      }
      case YcsbOpType::kScan:
        index->Scan(pick_key(), options.scan_length, scan_buf.data());
        break;
      case YcsbOpType::kReadModifyWrite: {
        // Read-modify-write (workload F).
        const uint64_t key = pick_key();
        uint64_t value = 0;
        index->Find(key, &value);
        index->Update(key, value + 1);
        break;
      }
    }
    if (timed) {
      const uint64_t dt = NowNanos() - t0;
      result.latency.Record(dt);
      result.op_latency[OpIdx(op)].Record(dt);
    }
    result.op_counts[OpIdx(op)]++;
    result.ops++;
  }
  result.seconds = timer.ElapsedSeconds();
  result.throughput_mops =
      result.seconds > 0.0
          ? static_cast<double>(result.ops) / result.seconds / 1e6
          : 0.0;
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("ycsb.ops.") + result.workload)
      .Add(result.ops);
  return result;
}

namespace {

// Thread t's share when `ops` total ops are distributed across `threads`
// threads as evenly as possible (the first `ops % threads` threads take one
// extra op); the shares always sum to exactly `ops`.
size_t ThreadShare(size_t ops, int threads, int t) {
  const size_t base = ops / static_cast<size_t>(threads);
  const size_t extra =
      static_cast<size_t>(t) < ops % static_cast<size_t>(threads) ? 1 : 0;
  return base + extra;
}

}  // namespace

ConcurrencyResult RunConcurrent(KVIndex* index, const Dataset& dataset,
                                int num_threads, const YcsbOptions& options) {
  assert(num_threads >= 1);
  ConcurrencyResult result;
  const size_t n = dataset.keys.size();
  // One recorder per thread, merged after each phase's joins, so recording
  // stays lock-free on the workload threads.
  std::vector<LatencyRecorder> recorders(static_cast<size_t>(num_threads));
  const auto merge_into = [&recorders](LatencyRecorder* phase) {
    for (LatencyRecorder& rec : recorders) {
      phase->Merge(rec);
      rec.Reset();
    }
  };

  // Insertion: keys striped round-robin across threads.
  {
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; t++) {
      threads.emplace_back([&, t] {
        LatencyRecorder& rec = recorders[static_cast<size_t>(t)];
        if (options.record_latency) {
          obs::OpSampler sampler(options.latency_sample_every);
          for (size_t i = static_cast<size_t>(t); i < n;
               i += static_cast<size_t>(num_threads)) {
            if (sampler.Sample()) {
              const uint64_t t0 = NowNanos();
              index->Insert(dataset.keys[i], ValueFor(dataset.keys[i]));
              rec.Record(NowNanos() - t0);
            } else {
              index->Insert(dataset.keys[i], ValueFor(dataset.keys[i]));
            }
          }
        } else {
          for (size_t i = static_cast<size_t>(t); i < n;
               i += static_cast<size_t>(num_threads)) {
            index->Insert(dataset.keys[i], ValueFor(dataset.keys[i]));
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    result.insert_ops = n;
    result.insert_mops =
        static_cast<double>(result.insert_ops) / timer.ElapsedSeconds() / 1e6;
    merge_into(&result.insert_latency);
  }

  // Search: zipfian reads, ops distributed exactly across threads.
  const size_t search_ops = options.run_ops != 0 ? options.run_ops : n / 2;
  {
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; t++) {
      threads.emplace_back([&, t] {
        ScrambledZipfianGenerator zipf(n, options.zipf_theta,
                                       options.seed + static_cast<uint64_t>(t));
        LatencyRecorder& rec = recorders[static_cast<size_t>(t)];
        const size_t share = ThreadShare(search_ops, num_threads, t);
        uint64_t value;
        if (options.record_latency) {
          obs::OpSampler sampler(options.latency_sample_every);
          for (size_t i = 0; i < share; i++) {
            if (sampler.Sample()) {
              const uint64_t t0 = NowNanos();
              index->Find(dataset.keys[zipf.Next()], &value);
              rec.Record(NowNanos() - t0);
            } else {
              index->Find(dataset.keys[zipf.Next()], &value);
            }
          }
        } else {
          for (size_t i = 0; i < share; i++) {
            index->Find(dataset.keys[zipf.Next()], &value);
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    result.search_ops = search_ops;
    result.search_mops =
        static_cast<double>(result.search_ops) / timer.ElapsedSeconds() / 1e6;
    merge_into(&result.search_latency);
  }

  // Update: zipfian in-place updates of loaded keys, same op budget as the
  // search phase.
  const size_t update_ops = search_ops;
  {
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; t++) {
      threads.emplace_back([&, t] {
        ScrambledZipfianGenerator zipf(n, options.zipf_theta,
                                       options.seed + 153 +
                                           static_cast<uint64_t>(t));
        LatencyRecorder& rec = recorders[static_cast<size_t>(t)];
        const size_t share = ThreadShare(update_ops, num_threads, t);
        if (options.record_latency) {
          obs::OpSampler sampler(options.latency_sample_every);
          for (size_t i = 0; i < share; i++) {
            const uint64_t key = dataset.keys[zipf.Next()];
            if (sampler.Sample()) {
              const uint64_t t0 = NowNanos();
              index->Update(key, ValueFor(key) + i);
              rec.Record(NowNanos() - t0);
            } else {
              index->Update(key, ValueFor(key) + i);
            }
          }
        } else {
          for (size_t i = 0; i < share; i++) {
            const uint64_t key = dataset.keys[zipf.Next()];
            index->Update(key, ValueFor(key) + i);
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    result.update_ops = update_ops;
    result.update_mops =
        static_cast<double>(result.update_ops) / timer.ElapsedSeconds() / 1e6;
    merge_into(&result.update_latency);
  }

  // Scan-100: number of scan ops scaled down by the scan length.
  const size_t scan_ops =
      std::max<size_t>(1, search_ops / options.scan_length);
  {
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; t++) {
      threads.emplace_back([&, t] {
        ScrambledZipfianGenerator zipf(n, options.zipf_theta,
                                       options.seed + 77 +
                                           static_cast<uint64_t>(t));
        LatencyRecorder& rec = recorders[static_cast<size_t>(t)];
        const size_t share = ThreadShare(scan_ops, num_threads, t);
        std::vector<KVIndex::ScanEntry> buf(options.scan_length);
        if (options.record_latency) {
          obs::OpSampler sampler(options.latency_sample_every);
          for (size_t i = 0; i < share; i++) {
            if (sampler.Sample()) {
              const uint64_t t0 = NowNanos();
              index->Scan(dataset.keys[zipf.Next()], options.scan_length,
                          buf.data());
              rec.Record(NowNanos() - t0);
            } else {
              index->Scan(dataset.keys[zipf.Next()], options.scan_length,
                          buf.data());
            }
          }
        } else {
          for (size_t i = 0; i < share; i++) {
            index->Scan(dataset.keys[zipf.Next()], options.scan_length,
                        buf.data());
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    result.scan_ops = scan_ops;
    result.scan_mops =
        static_cast<double>(result.scan_ops) / timer.ElapsedSeconds() / 1e6;
    merge_into(&result.scan_latency);
  }

  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("ycsb.concurrent.insert_ops").Add(result.insert_ops);
  registry.GetCounter("ycsb.concurrent.search_ops").Add(result.search_ops);
  registry.GetCounter("ycsb.concurrent.update_ops").Add(result.update_ops);
  registry.GetCounter("ycsb.concurrent.scan_ops").Add(result.scan_ops);
  registry.GetGauge("ycsb.concurrent.threads").Set(num_threads);
  return result;
}

}  // namespace dytis
