#include "src/workloads/ycsb.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

// Loads the index: bulk fraction (sorted) + the remainder inserted in
// dataset order.  Returns the number of keys inserted (not bulk loaded).
size_t LoadIndex(KVIndex* index, const Dataset& dataset, double bulk_fraction,
                 double load_fraction, YcsbResult* result,
                 const YcsbOptions& options) {
  const size_t total =
      static_cast<size_t>(load_fraction * static_cast<double>(dataset.keys.size()));
  size_t bulk = 0;
  if (bulk_fraction > 0.0 && index->SupportsBulkLoad()) {
    bulk = std::min(total,
                    static_cast<size_t>(bulk_fraction *
                                        static_cast<double>(dataset.keys.size())));
    std::vector<KVIndex::ScanEntry> entries;
    entries.reserve(bulk);
    for (size_t i = 0; i < bulk; i++) {
      entries.push_back({dataset.keys[i], ValueFor(dataset.keys[i])});
    }
    std::sort(entries.begin(), entries.end());
    index->BulkLoad(entries);
  }
  Timer timer;
  if (result != nullptr && options.record_latency) {
    for (size_t i = bulk; i < total; i++) {
      const uint64_t t0 = NowNanos();
      index->Insert(dataset.keys[i], ValueFor(dataset.keys[i]));
      result->latency.Record(NowNanos() - t0);
    }
  } else {
    for (size_t i = bulk; i < total; i++) {
      index->Insert(dataset.keys[i], ValueFor(dataset.keys[i]));
    }
  }
  if (result != nullptr) {
    result->ops = total - bulk;
    result->seconds = timer.ElapsedSeconds();
    result->throughput_mops =
        result->seconds > 0.0
            ? static_cast<double>(result->ops) / result->seconds / 1e6
            : 0.0;
  }
  return total;
}

}  // namespace

const char* YcsbWorkloadName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kLoad:
      return "Load";
    case YcsbWorkload::kA:
      return "A";
    case YcsbWorkload::kB:
      return "B";
    case YcsbWorkload::kC:
      return "C";
    case YcsbWorkload::kD:
      return "D";
    case YcsbWorkload::kDPrime:
      return "D'";
    case YcsbWorkload::kE:
      return "E";
    case YcsbWorkload::kF:
      return "F";
  }
  return "?";
}

YcsbResult RunLoad(KVIndex* index, const Dataset& dataset,
                   const YcsbOptions& options) {
  YcsbResult result;
  result.workload = "Load";
  result.index_name = index->Name();
  LoadIndex(index, dataset, options.bulk_load_fraction, 1.0, &result, options);
  return result;
}

YcsbResult RunWorkload(KVIndex* index, const Dataset& dataset,
                       YcsbWorkload workload, const YcsbOptions& options) {
  YcsbResult result;
  result.workload = YcsbWorkloadName(workload);
  result.index_name = index->Name();
  if (workload == YcsbWorkload::kLoad) {
    return RunLoad(index, dataset, options);
  }
  if (workload == YcsbWorkload::kE && !index->SupportsScan()) {
    result.supported = false;
    return result;
  }

  const bool inserting = workload == YcsbWorkload::kD ||
                         workload == YcsbWorkload::kDPrime ||
                         workload == YcsbWorkload::kE;
  const double load_fraction = inserting ? options.preload_fraction : 1.0;
  size_t loaded = LoadIndex(index, dataset, options.bulk_load_fraction,
                            load_fraction, nullptr, options);

  // Operation mix per workload: (read%, update%, insert%, scan%, rmw%).
  int read_pct = 0;
  int update_pct = 0;
  int insert_pct = 0;
  int scan_pct = 0;
  switch (workload) {
    case YcsbWorkload::kA:
      read_pct = 50;
      update_pct = 50;
      break;
    case YcsbWorkload::kB:
      read_pct = 95;
      update_pct = 5;
      break;
    case YcsbWorkload::kC:
      read_pct = 100;
      break;
    case YcsbWorkload::kD:
    case YcsbWorkload::kDPrime:
      read_pct = 95;
      insert_pct = 5;
      break;
    case YcsbWorkload::kE:
      scan_pct = 95;
      insert_pct = 5;
      break;
    case YcsbWorkload::kF:
      read_pct = 50;  // + 50% read-modify-write
      break;
    case YcsbWorkload::kLoad:
      break;
  }

  const size_t ops = options.run_ops != 0 ? options.run_ops
                                          : dataset.keys.size() / 2;

  ScrambledZipfianGenerator zipf(std::max<size_t>(1, loaded),
                                 options.zipf_theta, options.seed);
  // Classic YCSB D reads the *latest* keys: a (non-scrambled) Zipfian over
  // recency ranks, rank 0 = the most recently inserted key.
  ZipfianGenerator latest(std::max<size_t>(1, loaded), options.zipf_theta,
                          options.seed ^ 0x1a7e57ULL);
  Rng op_rng(options.seed ^ 0x09b5ULL);
  Rng uniform_rng(options.seed ^ 0x04a11ULL);
  std::vector<KVIndex::ScanEntry> scan_buf(options.scan_length);
  size_t next_insert = loaded;
  const bool latest_reads = workload == YcsbWorkload::kD;

  auto pick_key = [&]() -> uint64_t {
    if (latest_reads) {
      const uint64_t rank =
          std::min<uint64_t>(latest.Next(), next_insert - 1);
      return dataset.keys[next_insert - 1 - rank];
    }
    if (options.key_distribution == KeyDistribution::kUniform) {
      return dataset.keys[uniform_rng.NextBelow(next_insert)];
    }
    return dataset.keys[zipf.Next()];
  };

  Timer timer;
  // D/D'/E run until every dataset key is inserted (Section 4.3); the
  // other workloads run a fixed op count.
  for (size_t i = 0;
       inserting ? next_insert < dataset.keys.size() : i < ops; i++) {
    const int dice = static_cast<int>(op_rng.NextBelow(100));
    const uint64_t t0 = options.record_latency ? NowNanos() : 0;
    if (dice < read_pct) {
      const uint64_t key = pick_key();
      uint64_t value;
      index->Find(key, &value);
    } else if (dice < read_pct + update_pct) {
      const uint64_t key = pick_key();
      index->Update(key, ValueFor(key) + i);
    } else if (dice < read_pct + update_pct + insert_pct) {
      if (next_insert < dataset.keys.size()) {
        const uint64_t key = dataset.keys[next_insert++];
        index->Insert(key, ValueFor(key));
        zipf.GrowTo(next_insert);
        // Workload D's recency ranks must cover the new key, or "latest"
        // reads would stay concentrated on the preload prefix.
        latest.GrowTo(next_insert);
      } else {
        uint64_t value;
        index->Find(pick_key(), &value);
      }
    } else if (dice < read_pct + update_pct + insert_pct + scan_pct) {
      index->Scan(pick_key(), options.scan_length, scan_buf.data());
    } else {
      // Read-modify-write (workload F).
      const uint64_t key = pick_key();
      uint64_t value = 0;
      index->Find(key, &value);
      index->Update(key, value + 1);
    }
    if (options.record_latency) {
      result.latency.Record(NowNanos() - t0);
    }
    result.ops++;
  }
  result.seconds = timer.ElapsedSeconds();
  result.throughput_mops =
      result.seconds > 0.0
          ? static_cast<double>(result.ops) / result.seconds / 1e6
          : 0.0;
  return result;
}

namespace {

// Thread t's share when `ops` total ops are distributed across `threads`
// threads as evenly as possible (the first `ops % threads` threads take one
// extra op); the shares always sum to exactly `ops`.
size_t ThreadShare(size_t ops, int threads, int t) {
  const size_t base = ops / static_cast<size_t>(threads);
  const size_t extra =
      static_cast<size_t>(t) < ops % static_cast<size_t>(threads) ? 1 : 0;
  return base + extra;
}

}  // namespace

ConcurrencyResult RunConcurrent(KVIndex* index, const Dataset& dataset,
                                int num_threads, const YcsbOptions& options) {
  assert(num_threads >= 1);
  ConcurrencyResult result;
  const size_t n = dataset.keys.size();
  // One recorder per thread, merged after each phase's joins, so recording
  // stays lock-free on the workload threads.
  std::vector<LatencyRecorder> recorders(static_cast<size_t>(num_threads));
  const auto merge_into = [&recorders](LatencyRecorder* phase) {
    for (LatencyRecorder& rec : recorders) {
      phase->Merge(rec);
      rec.Reset();
    }
  };

  // Insertion: keys striped round-robin across threads.
  {
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; t++) {
      threads.emplace_back([&, t] {
        LatencyRecorder& rec = recorders[static_cast<size_t>(t)];
        if (options.record_latency) {
          for (size_t i = static_cast<size_t>(t); i < n;
               i += static_cast<size_t>(num_threads)) {
            const uint64_t t0 = NowNanos();
            index->Insert(dataset.keys[i], ValueFor(dataset.keys[i]));
            rec.Record(NowNanos() - t0);
          }
        } else {
          for (size_t i = static_cast<size_t>(t); i < n;
               i += static_cast<size_t>(num_threads)) {
            index->Insert(dataset.keys[i], ValueFor(dataset.keys[i]));
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    result.insert_ops = n;
    result.insert_mops =
        static_cast<double>(result.insert_ops) / timer.ElapsedSeconds() / 1e6;
    merge_into(&result.insert_latency);
  }

  // Search: zipfian reads, ops distributed exactly across threads.
  const size_t search_ops = options.run_ops != 0 ? options.run_ops : n / 2;
  {
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; t++) {
      threads.emplace_back([&, t] {
        ScrambledZipfianGenerator zipf(n, options.zipf_theta,
                                       options.seed + static_cast<uint64_t>(t));
        LatencyRecorder& rec = recorders[static_cast<size_t>(t)];
        const size_t share = ThreadShare(search_ops, num_threads, t);
        uint64_t value;
        if (options.record_latency) {
          for (size_t i = 0; i < share; i++) {
            const uint64_t t0 = NowNanos();
            index->Find(dataset.keys[zipf.Next()], &value);
            rec.Record(NowNanos() - t0);
          }
        } else {
          for (size_t i = 0; i < share; i++) {
            index->Find(dataset.keys[zipf.Next()], &value);
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    result.search_ops = search_ops;
    result.search_mops =
        static_cast<double>(result.search_ops) / timer.ElapsedSeconds() / 1e6;
    merge_into(&result.search_latency);
  }

  // Scan-100: number of scan ops scaled down by the scan length.
  const size_t scan_ops =
      std::max<size_t>(1, search_ops / options.scan_length);
  {
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; t++) {
      threads.emplace_back([&, t] {
        ScrambledZipfianGenerator zipf(n, options.zipf_theta,
                                       options.seed + 77 +
                                           static_cast<uint64_t>(t));
        LatencyRecorder& rec = recorders[static_cast<size_t>(t)];
        const size_t share = ThreadShare(scan_ops, num_threads, t);
        std::vector<KVIndex::ScanEntry> buf(options.scan_length);
        if (options.record_latency) {
          for (size_t i = 0; i < share; i++) {
            const uint64_t t0 = NowNanos();
            index->Scan(dataset.keys[zipf.Next()], options.scan_length,
                        buf.data());
            rec.Record(NowNanos() - t0);
          }
        } else {
          for (size_t i = 0; i < share; i++) {
            index->Scan(dataset.keys[zipf.Next()], options.scan_length,
                        buf.data());
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    result.scan_ops = scan_ops;
    result.scan_mops =
        static_cast<double>(result.scan_ops) / timer.ElapsedSeconds() / 1e6;
    merge_into(&result.scan_latency);
  }
  return result;
}

}  // namespace dytis
