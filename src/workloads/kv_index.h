// Uniform key/value index interface + adapters for every index in the repo.
//
// The benchmark harness drives DyTIS, ALEX, XIndex, the B+-tree, EH and
// CCEH through this interface so that all of Section 4's experiments share
// one code path.  Virtual dispatch costs the same for every candidate, so
// relative comparisons are unaffected.
#ifndef DYTIS_SRC_WORKLOADS_KV_INDEX_H_
#define DYTIS_SRC_WORKLOADS_KV_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/alex/alex_index.h"
#include "src/baselines/btree.h"
#include "src/baselines/cceh.h"
#include "src/baselines/ext_hash.h"
#include "src/baselines/xindex/xindex.h"
#include "src/core/dytis.h"

namespace dytis {

class KVIndex {
 public:
  using ScanEntry = std::pair<uint64_t, uint64_t>;

  virtual ~KVIndex() = default;

  virtual std::string Name() const = 0;
  virtual bool SupportsScan() const { return true; }
  virtual bool SupportsBulkLoad() const { return false; }
  virtual bool ThreadSafe() const { return false; }

  // Bulk loads sorted unique entries (only when SupportsBulkLoad()).
  virtual void BulkLoad(std::span<const ScanEntry> /*sorted_entries*/) {}

  virtual bool Insert(uint64_t key, uint64_t value) = 0;
  // Insert with the full DyTIS outcome (stash fallback / hard error).
  // Indexes without a degradation path report kInserted/kUpdated only.
  virtual InsertResult InsertEx(uint64_t key, uint64_t value) {
    return Insert(key, value) ? InsertResult::kInserted
                              : InsertResult::kUpdated;
  }
  virtual bool Find(uint64_t key, uint64_t* value) const = 0;
  virtual bool Update(uint64_t key, uint64_t value) = 0;
  virtual bool Erase(uint64_t key) = 0;
  virtual size_t Scan(uint64_t start_key, size_t count, ScanEntry* out) const {
    (void)start_key;
    (void)count;
    (void)out;
    return 0;
  }

  virtual size_t size() const = 0;
  virtual size_t MemoryBytes() const = 0;
};

// --- Adapters --------------------------------------------------------------

template <typename Index>
class OrderedIndexAdapter : public KVIndex {
 public:
  template <typename... Args>
  explicit OrderedIndexAdapter(std::string name, Args&&... args)
      : name_(std::move(name)), index_(std::forward<Args>(args)...) {}

  std::string Name() const override { return name_; }
  bool Insert(uint64_t key, uint64_t value) override {
    return index_.Insert(key, value);
  }
  InsertResult InsertEx(uint64_t key, uint64_t value) override {
    if constexpr (requires { index_.InsertEx(key, value); }) {
      return index_.InsertEx(key, value);
    } else {
      return index_.Insert(key, value) ? InsertResult::kInserted
                                       : InsertResult::kUpdated;
    }
  }
  bool Find(uint64_t key, uint64_t* value) const override {
    return index_.Find(key, value);
  }
  bool Update(uint64_t key, uint64_t value) override {
    return index_.Update(key, value);
  }
  bool Erase(uint64_t key) override { return index_.Erase(key); }
  size_t Scan(uint64_t start_key, size_t count,
              ScanEntry* out) const override {
    if constexpr (requires { index_.Scan(start_key, count, out); }) {
      return index_.Scan(start_key, count, out);
    } else {
      return 0;  // hash indexes do not support scans
    }
  }
  size_t size() const override { return index_.size(); }
  size_t MemoryBytes() const override { return index_.MemoryBytes(); }

  Index& index() { return index_; }
  const Index& index() const { return index_; }

 protected:
  std::string name_;
  Index index_;
};

class DyTISAdapter : public OrderedIndexAdapter<DyTIS<uint64_t>> {
 public:
  explicit DyTISAdapter(const DyTISConfig& config = DyTISConfig{})
      : OrderedIndexAdapter("DyTIS", config) {}
};

class ConcurrentDyTISAdapter
    : public OrderedIndexAdapter<ConcurrentDyTIS<uint64_t>> {
 public:
  explicit ConcurrentDyTISAdapter(const DyTISConfig& config = DyTISConfig{})
      : OrderedIndexAdapter("DyTIS-MT", config) {}
  bool ThreadSafe() const override { return true; }
};

class BTreeAdapter : public OrderedIndexAdapter<BPlusTree<uint64_t, 128>> {
 public:
  BTreeAdapter() : OrderedIndexAdapter("B+-tree") {}
  bool SupportsBulkLoad() const override { return true; }
  void BulkLoad(std::span<const ScanEntry> sorted_entries) override {
    index_.BulkLoad(sorted_entries);
  }
};

class AlexAdapter : public OrderedIndexAdapter<AlexIndex<uint64_t>> {
 public:
  explicit AlexAdapter(std::string name = "ALEX")
      : OrderedIndexAdapter(std::move(name)) {}
  bool SupportsBulkLoad() const override { return true; }
  void BulkLoad(std::span<const ScanEntry> sorted_entries) override {
    index_.BulkLoad(sorted_entries);
  }
};

class XIndexAdapter : public OrderedIndexAdapter<XIndexLike<uint64_t>> {
 public:
  explicit XIndexAdapter(
      const XIndexLike<uint64_t>::Options& options = {})
      : OrderedIndexAdapter("XIndex", options) {}
  bool SupportsBulkLoad() const override { return true; }
  bool ThreadSafe() const override { return true; }
  void BulkLoad(std::span<const ScanEntry> sorted_entries) override {
    index_.BulkLoad(sorted_entries);
  }
};

class EhAdapter : public OrderedIndexAdapter<ExtendibleHash<uint64_t>> {
 public:
  EhAdapter() : OrderedIndexAdapter("EH") {}
  bool SupportsScan() const override { return false; }
};

class CcehAdapter : public OrderedIndexAdapter<Cceh<uint64_t>> {
 public:
  CcehAdapter() : OrderedIndexAdapter("CCEH") {}
  bool SupportsScan() const override { return false; }
};

// --- Factory ----------------------------------------------------------------

enum class IndexKind {
  kDyTIS,
  kDyTISConcurrent,
  kBTree,
  kAlex,
  kXIndex,
  kEH,
  kCCEH,
};

inline std::unique_ptr<KVIndex> MakeIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kDyTIS:
      return std::make_unique<DyTISAdapter>();
    case IndexKind::kDyTISConcurrent:
      return std::make_unique<ConcurrentDyTISAdapter>();
    case IndexKind::kBTree:
      return std::make_unique<BTreeAdapter>();
    case IndexKind::kAlex:
      return std::make_unique<AlexAdapter>();
    case IndexKind::kXIndex:
      return std::make_unique<XIndexAdapter>();
    case IndexKind::kEH:
      return std::make_unique<EhAdapter>();
    case IndexKind::kCCEH:
      return std::make_unique<CcehAdapter>();
  }
  return nullptr;
}

}  // namespace dytis

#endif  // DYTIS_SRC_WORKLOADS_KV_INDEX_H_
