// Adversarial workload engine: seeded, composable generators of key streams
// that drive DyTIS (and, for comparison, any ordered index) into its
// worst-case paths.  "Algorithmic Complexity Attacks on Dynamic Learned
// Indexes" (PAPERS.md) shows that CDF-based structures admit crafted inserts
// that collapse the learned remap function; this library is the single
// source of those patterns for both the test suite (tests/adversarial_test.cc,
// tests/degradation_test.cc) and the attack bench (bench/bench_attack.cc).
//
// Every generator is a pure function of (n, seed): the same arguments always
// produce the same key sequence, across processes and builds, so attack runs
// are reproducible and the crash-recovery tests can replay them.
//
// Attack taxonomy (see DESIGN.md "Adversarial robustness"):
//   kDescending / kBitReversed / kAlternatingEnds / kSawtoothWaves /
//   kZigzagPowers     — the legacy structural-stress orders promoted from
//                       tests/adversarial_test.cc (sequences are identical,
//                       so rebasing the tests changed no behavior).
//   kCdfCliff         — mostly-uniform keys with a measured fraction packed
//                       into one tiny range: the empirical CDF grows a near-
//                       vertical cliff, so equal-key-span sub-ranges of the
//                       remap function see wildly unequal mass and the PLR
//                       in-bucket error blows up.
//   kPiecewiseDense   — many independent dense clusters at seeded bases,
//                       densified round-robin so *every* refinement level of
//                       the remap function keeps inheriting new cliffs.
//   kStashBomb        — consecutive integers above a seeded base.  All of
//                       them share one first-level slot and one directory
//                       prefix deeper than max_global_depth, so splits and
//                       doublings cannot separate them; once the segment hits
//                       Limit_seg the remainder lands in the sorted stash,
//                       where every insert pays an O(stash) memmove.
//   kDirectoryChurn   — bit-reversed counters confined to one first-level
//                       table: each insert toggles the farthest-apart
//                       directory prefix, maximising split + doubling churn
//                       for the number of keys inserted.
#ifndef DYTIS_SRC_WORKLOADS_ATTACK_H_
#define DYTIS_SRC_WORKLOADS_ATTACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dytis {
namespace workloads {

enum class AttackPattern : int {
  kDescending = 0,
  kBitReversed,
  kAlternatingEnds,
  kSawtoothWaves,
  kZigzagPowers,
  kCdfCliff,
  kPiecewiseDense,
  kStashBomb,
  kDirectoryChurn,
};
inline constexpr int kNumAttackPatterns = 9;

const char* AttackPatternName(AttackPattern p);

// All patterns, for parameterised sweeps.
std::vector<AttackPattern> AllAttackPatterns();

// ---- Legacy structural-stress orders (promoted from adversarial_test.cc).
// These take no seed: they are fully determined by n, exactly as the test
// helpers were.
std::vector<uint64_t> DescendingKeys(size_t n);
std::vector<uint64_t> BitReversedKeys(size_t n);
std::vector<uint64_t> AlternatingEndsKeys(size_t n);
std::vector<uint64_t> SawtoothWaveKeys(size_t n);
// Exponentially spaced keys; may return fewer than n after dedup.  The
// default seed matches the legacy test helper.
std::vector<uint64_t> ZigzagPowerKeys(size_t n, uint64_t seed = 99);

// ---- Poisoned streams (seeded).
// ~15/16 uniform keys, 1/16 packed into a cliff of width n so the CDF grows
// a near-vertical step at a seeded position.
std::vector<uint64_t> CdfCliffKeys(size_t n, uint64_t seed);
// 32 dense clusters at seeded bases, emitted round-robin (progressive
// densification of many sub-ranges at once).
std::vector<uint64_t> PiecewiseDenseKeys(size_t n, uint64_t seed);
// Arithmetic progression above a seeded base: the hot-segment stash bomb.
// stride = 1 (the default, and what MakeAttackKeys uses) is the narrow bomb:
// consecutive integers that no grid remap allocation can ever separate, so
// the only mitigation is quarantine.  A wide stride (e.g. 1 << 30) keeps the
// keys inside one depth-capped segment — still past Limit_seg, still forced
// into the stash — but leaves them absorbable by a beyond-limit retrain,
// which is the recoverable case the mitigation benchmarks measure.
std::vector<uint64_t> StashBombKeys(size_t n, uint64_t seed,
                                    uint64_t stride = 1);
// Bit-reversed counters confined below one first-level prefix.
std::vector<uint64_t> DirectoryChurnKeys(size_t n, uint64_t seed);

// Dispatch by pattern.  Legacy patterns ignore the seed (their sequences are
// pinned by the test-equivalence contract above).
std::vector<uint64_t> MakeAttackKeys(AttackPattern p, size_t n, uint64_t seed);

// ---- Composable poisoned stream.
// Interleaves attack keys into benign uniform traffic: a fraction
// `attack_fraction` of the n emitted keys comes from `pattern` (in pattern
// order), the rest is seeded uniform noise.  attack_fraction = 1.0 is the
// pure attack; 0.0 is a pure benign stream.  The interleaving is evenly
// spread (Bresenham) and fully deterministic in (spec, n).
struct PoisonSpec {
  AttackPattern pattern = AttackPattern::kStashBomb;
  double attack_fraction = 1.0;
  uint64_t seed = 1;
};
std::vector<uint64_t> MakePoisonedStream(const PoisonSpec& spec, size_t n);

// ---- Scan-amplification range shapes.
// Short range scans aimed at the region an attack densified: on a stash-
// active segment every scan re-merges the whole stash with the buckets, so
// many short scans over the bombed range amplify into O(scans * stash) work.
// Returns `num_scans` [start_key, want] probes inside the attacked region.
struct ScanShape {
  uint64_t start_key = 0;
  size_t want = 0;
};
std::vector<ScanShape> MakeScanAmplificationShapes(AttackPattern p, size_t n,
                                                   size_t num_scans,
                                                   size_t want, uint64_t seed);

}  // namespace workloads
}  // namespace dytis

#endif  // DYTIS_SRC_WORKLOADS_ATTACK_H_
