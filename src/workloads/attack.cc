#include "src/workloads/attack.h"

#include <algorithm>

#include "src/util/rng.h"

namespace dytis {
namespace workloads {

namespace {

uint64_t ReverseBits64(uint64_t v) {
  uint64_t r = 0;
  for (int b = 0; b < 64; b++) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

}  // namespace

const char* AttackPatternName(AttackPattern p) {
  switch (p) {
    case AttackPattern::kDescending:
      return "descending";
    case AttackPattern::kBitReversed:
      return "bit_reversed";
    case AttackPattern::kAlternatingEnds:
      return "alternating_ends";
    case AttackPattern::kSawtoothWaves:
      return "sawtooth_waves";
    case AttackPattern::kZigzagPowers:
      return "zigzag_powers";
    case AttackPattern::kCdfCliff:
      return "cdf_cliff";
    case AttackPattern::kPiecewiseDense:
      return "piecewise_dense";
    case AttackPattern::kStashBomb:
      return "stash_bomb";
    case AttackPattern::kDirectoryChurn:
      return "directory_churn";
  }
  return "?";
}

std::vector<AttackPattern> AllAttackPatterns() {
  std::vector<AttackPattern> out;
  out.reserve(kNumAttackPatterns);
  for (int i = 0; i < kNumAttackPatterns; i++) {
    out.push_back(static_cast<AttackPattern>(i));
  }
  return out;
}

std::vector<uint64_t> DescendingKeys(size_t n) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = n; i > 0; i--) {
    keys.push_back(static_cast<uint64_t>(i) << 40);
  }
  return keys;
}

std::vector<uint64_t> BitReversedKeys(size_t n) {
  // Bit-reversed counter: maximally scattered prefixes (every new key flips
  // the directory side), the EH-split stress pattern.
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 1; i <= n; i++) {
    keys.push_back(ReverseBits64(static_cast<uint64_t>(i)));
  }
  return keys;
}

std::vector<uint64_t> AlternatingEndsKeys(size_t n) {
  // Alternates between the bottom and top of the key space: every insert
  // lands in a different first-level EH / tree spine.
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    if (i % 2 == 0) {
      keys.push_back((static_cast<uint64_t>(i) << 30) + 1);
    } else {
      keys.push_back(~uint64_t{0} - (static_cast<uint64_t>(i) << 30));
    }
  }
  return keys;
}

std::vector<uint64_t> SawtoothWaveKeys(size_t n) {
  // Repeated ascending waves over the same range with fresh offsets:
  // continuous churn of the same segments.
  std::vector<uint64_t> keys;
  keys.reserve(n);
  const size_t wave = 1000;
  for (size_t i = 0; i < n; i++) {
    const uint64_t within = (i % wave) << 44;
    const uint64_t offset = (i / wave) << 20;
    keys.push_back(within + offset);
  }
  return keys;
}

std::vector<uint64_t> ZigzagPowerKeys(size_t n, uint64_t seed) {
  // Exponentially spaced keys: every scale of the key space occupied.
  std::vector<uint64_t> keys;
  keys.reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; i++) {
    const int shift = static_cast<int>(rng.NextBelow(56));
    keys.push_back((uint64_t{1} << shift) + rng.NextBelow(1 << 12));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<uint64_t> CdfCliffKeys(size_t n, uint64_t seed) {
  // 1-in-16 keys land in a cliff of width n at a seeded base; the rest are
  // uniform.  The cliff sub-range carries 16x the mass its key span
  // predicts, which is exactly the error the equal-span remap cannot model.
  SplitMix64 sm(seed ^ 0xC11FFC11FFC11FF0ULL);
  const uint64_t cliff_base = sm.Next();
  Rng rng(sm.Next());
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    if (i % 16 == 0) {
      keys.push_back(cliff_base + rng.NextBelow(n > 0 ? n : 1));
    } else {
      keys.push_back(rng.Next());
    }
  }
  return keys;
}

std::vector<uint64_t> PiecewiseDenseKeys(size_t n, uint64_t seed) {
  // 32 dense clusters at seeded bases, densified round-robin so every
  // refinement of the remap function keeps inheriting fresh cliffs.
  constexpr size_t kClusters = 32;
  SplitMix64 sm(seed ^ 0x91ECE5EDE15E0000ULL);
  uint64_t bases[kClusters];
  for (size_t c = 0; c < kClusters; c++) {
    bases[c] = sm.Next();
  }
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    const size_t c = i % kClusters;
    keys.push_back(bases[c] + 3 * (i / kClusters));
  }
  return keys;
}

std::vector<uint64_t> StashBombKeys(size_t n, uint64_t seed, uint64_t stride) {
  // The progression shares its top 64 - ceil(log2(n * stride)) bits: more
  // than first_level_bits + max_global_depth for the strides we emit, so no
  // split or doubling can separate the keys and the overflow beyond
  // Limit_seg is forced into the stash.  Emitted ascending (the realistic
  // "hot counter" shape).  The base is masked so the whole run stays below
  // the wraparound even at wide strides.
  SplitMix64 sm(seed ^ 0x57A5B0B057A5B0B0ULL);
  if (stride == 0) {
    stride = 1;
  }
  uint64_t base = sm.Next();
  const uint64_t width = n * stride;
  if (base > ~uint64_t{0} - width) {
    base -= width;
  }
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    keys.push_back(base + i * stride);
  }
  return keys;
}

std::vector<uint64_t> DirectoryChurnKeys(size_t n, uint64_t seed) {
  // Bit-reversed counters squeezed below a single 12-bit first-level prefix:
  // one EH table absorbs maximally scattered directory prefixes, so it pays
  // the full split + doubling churn alone.
  constexpr int kPrefixBits = 12;
  SplitMix64 sm(seed ^ 0xD12EC7012EC70120ULL);
  const uint64_t prefix = sm.Next() >> (64 - kPrefixBits);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 1; i <= n; i++) {
    keys.push_back((prefix << (64 - kPrefixBits)) |
                   (ReverseBits64(static_cast<uint64_t>(i)) >> kPrefixBits));
  }
  return keys;
}

std::vector<uint64_t> MakeAttackKeys(AttackPattern p, size_t n,
                                     uint64_t seed) {
  switch (p) {
    case AttackPattern::kDescending:
      return DescendingKeys(n);
    case AttackPattern::kBitReversed:
      return BitReversedKeys(n);
    case AttackPattern::kAlternatingEnds:
      return AlternatingEndsKeys(n);
    case AttackPattern::kSawtoothWaves:
      return SawtoothWaveKeys(n);
    case AttackPattern::kZigzagPowers:
      return ZigzagPowerKeys(n);
    case AttackPattern::kCdfCliff:
      return CdfCliffKeys(n, seed);
    case AttackPattern::kPiecewiseDense:
      return PiecewiseDenseKeys(n, seed);
    case AttackPattern::kStashBomb:
      return StashBombKeys(n, seed);
    case AttackPattern::kDirectoryChurn:
      return DirectoryChurnKeys(n, seed);
  }
  return {};
}

std::vector<uint64_t> MakePoisonedStream(const PoisonSpec& spec, size_t n) {
  double fraction = spec.attack_fraction;
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const size_t attack_count = static_cast<size_t>(fraction * n + 0.5);
  std::vector<uint64_t> attack =
      MakeAttackKeys(spec.pattern, attack_count, spec.seed);
  Rng benign(SplitMix64(spec.seed ^ 0xBE219E00BE219E00ULL).Next());
  std::vector<uint64_t> keys;
  keys.reserve(n);
  // Bresenham spread: attack keys are emitted in pattern order, evenly
  // interleaved with the benign traffic, so the poison rate is steady over
  // the whole stream rather than front-loaded.
  double acc = 0.0;
  size_t next_attack = 0;
  for (size_t i = 0; i < n; i++) {
    acc += fraction;
    if (acc >= 1.0 && next_attack < attack.size()) {
      acc -= 1.0;
      keys.push_back(attack[next_attack++]);
    } else {
      keys.push_back(benign.Next());
    }
  }
  return keys;
}

std::vector<ScanShape> MakeScanAmplificationShapes(AttackPattern p, size_t n,
                                                   size_t num_scans,
                                                   size_t want,
                                                   uint64_t seed) {
  const std::vector<uint64_t> keys = MakeAttackKeys(p, n, seed);
  uint64_t lo = ~uint64_t{0};
  uint64_t hi = 0;
  for (uint64_t k : keys) {
    lo = std::min(lo, k);
    hi = std::max(hi, k);
  }
  if (keys.empty()) {
    lo = 0;
    hi = ~uint64_t{0};
  }
  Rng rng(SplitMix64(seed ^ 0x5CA05CA05CA05CA0ULL).Next());
  std::vector<ScanShape> shapes;
  shapes.reserve(num_scans);
  const uint64_t span = hi - lo;
  for (size_t i = 0; i < num_scans; i++) {
    ScanShape s;
    s.start_key = span == 0 ? lo : lo + rng.NextBelow(span);
    s.want = want;
    shapes.push_back(s);
  }
  return shapes;
}

}  // namespace workloads
}  // namespace dytis
