// Individual synthetic key-stream generators.
//
// Each generator produces keys in *insertion order*; the order encodes the
// temporal behaviour the paper's KDD metric measures.  All generators are
// deterministic given a seed.
#ifndef DYTIS_SRC_DATASETS_GENERATORS_H_
#define DYTIS_SRC_DATASETS_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dytis {

// Map-style keys (substitute for OSM Map-M / Map-L).
//
// Key layout: [lon:32][lat:31] over a continent bounding box.  The longitude
// marginal is a smooth mixture of broad bumps (population density varies
// slowly across a continent => LOW variance of skewness), and insertion
// follows a spatial sweep with jitter: the OSM extracts are written
// region-by-region, so data with similar coordinates arrives in bulks
// (=> MEDIUM key distribution divergence).
struct MapGenOptions {
  int num_density_bumps = 6;     // broad population bumps across longitude
  int num_regions = 64;          // extraction granularity of the sweep
  double region_jitter = 0.25;   // how much the sweep order is perturbed
  double lat_relief = 0.3;       // mild latitude non-uniformity
  // Fraction of points drawn from the whole continent instead of the
  // current region (OSM extracts interleave global features with local
  // ones); keeps consecutive sub-datasets partially overlapping, which is
  // what makes Map KDD *medium* rather than Taxi-high.
  double background_fraction = 0.35;
};
std::vector<uint64_t> GenerateMapKeys(size_t n, uint64_t seed,
                                      const MapGenOptions& options = {});

// Review-style keys (substitute for Amazon Review-M / Review-L).
//
// Key layout: [item:24][user:20][time:20].  Item identifiers are sparse
// (random points in a 2^24 space) with Zipfian popularity, so the sorted key
// space is a set of dense clusters separated by empty gaps => HIGH variance
// of skewness.  The item-popularity mixture is stationary over time, so
// consecutive sub-datasets have nearly identical histograms => LOW KDD.
struct ReviewGenOptions {
  size_t num_items = 30'000;
  double item_zipf_theta = 0.9;
  size_t num_users = 500'000;
};
std::vector<uint64_t> GenerateReviewKeys(size_t n, uint64_t seed,
                                         const ReviewGenOptions& options = {});

// Taxi-style keys (substitute for NYC TLC pickup/drop-off timestamps).
//
// Key layout: [pickup_seconds:34][duration_centis:30].  Pickup time advances
// monotonically across a simulated multi-year window with diurnal and weekly
// demand cycles.  Because the key prefix is wall-clock time, consecutive
// sub-datasets occupy nearly disjoint key ranges => HIGH KDD; the demand
// cycles produce MEDIUM variance of skewness in the sorted key space.
struct TaxiGenOptions {
  uint64_t start_epoch_seconds = 1'483'228'800;  // 2017-01-01
  double years = 4.0;                            // 2017..2020 as in the paper
  double mean_trip_minutes = 14.0;
  // Seasonal demand amplitude and week-scale burst strength.  These produce
  // density variation that is visible at any sub-dataset granularity, so
  // the sorted key space needs several linear models per range
  // (medium variance of skewness, ~8 models in the paper's Figure 2).
  double seasonal_amplitude = 0.4;
  double burst_sigma = 0.45;
};
std::vector<uint64_t> GenerateTaxiKeys(size_t n, uint64_t seed,
                                       const TaxiGenOptions& options = {});

// Group-3 simple datasets (ALEX's benchmark distributions).
std::vector<uint64_t> GenerateUniformKeys(size_t n, uint64_t seed);
std::vector<uint64_t> GenerateLognormalKeys(size_t n, uint64_t seed,
                                            double sigma = 2.0);
// ALEX longlat: compound key 180 * lon + lat from OSM; highly non-linear CDF.
std::vector<uint64_t> GenerateLonglatKeys(size_t n, uint64_t seed);
// ALEX longitudes: raw longitude values.
std::vector<uint64_t> GenerateLongitudesKeys(size_t n, uint64_t seed);

// Deduplicates `keys` in place, preserving insertion order, replacing
// duplicates with nearby unused values (low-bit perturbation).  All
// generators call this before returning.
void MakeUnique(std::vector<uint64_t>& keys, uint64_t seed);

}  // namespace dytis

#endif  // DYTIS_SRC_DATASETS_GENERATORS_H_
