#include "src/datasets/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "src/util/bitops.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Clamps v into [lo, hi].
double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

void MakeUnique(std::vector<uint64_t>& keys, uint64_t seed) {
  std::unordered_set<uint64_t> seen;
  seen.reserve(keys.size() * 2);
  Rng rng(seed ^ 0xded00bULL);
  for (auto& k : keys) {
    uint64_t candidate = k;
    // Perturb low bits until unique; nearby values keep the distribution
    // intact (the low bits carry no structure in any of our layouts).
    while (!seen.insert(candidate).second) {
      candidate = (candidate & ~LowMask(16)) | LowBits(rng.Next(), 16);
    }
    k = candidate;
  }
}

std::vector<uint64_t> GenerateMapKeys(size_t n, uint64_t seed,
                                      const MapGenOptions& options) {
  Rng rng(seed);
  // Broad density bumps over the longitude axis: centers and widths.
  struct Bump {
    double center;
    double width;
    double weight;
  };
  std::vector<Bump> bumps;
  double total_weight = 0.0;
  for (int i = 0; i < options.num_density_bumps; i++) {
    Bump b;
    b.center = rng.NextDouble();
    b.width = 0.15 + 0.25 * rng.NextDouble();  // broad => smooth CDF
    b.weight = 0.5 + rng.NextDouble();
    total_weight += b.weight;
    bumps.push_back(b);
  }

  // Spatial sweep: visit longitude regions roughly left-to-right with
  // jitter, emitting a block of points per region visit.  This reproduces
  // the region-by-region write order of OSM extracts.
  const int regions = options.num_regions;
  std::vector<int> order(static_cast<size_t>(regions));
  for (int i = 0; i < regions; i++) {
    order[static_cast<size_t>(i)] = i;
  }
  // Jitter the sweep: swap nearby entries.
  const int swaps = static_cast<int>(options.region_jitter * regions * 4);
  for (int s = 0; s < swaps; s++) {
    const int i = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(regions - 1)));
    std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(i + 1)]);
  }

  // Region weights from the bump mixture, used to size each region's block.
  std::vector<double> region_weight(static_cast<size_t>(regions), 0.0);
  double wsum = 0.0;
  for (int r = 0; r < regions; r++) {
    const double x = (static_cast<double>(r) + 0.5) / regions;
    double w = 0.05;  // base density floor
    for (const auto& b : bumps) {
      const double d = (x - b.center) / b.width;
      w += (b.weight / total_weight) * std::exp(-0.5 * d * d);
    }
    region_weight[static_cast<size_t>(r)] = w;
    wsum += w;
  }

  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (int idx = 0; idx < regions && keys.size() < n; idx++) {
    const int r = order[static_cast<size_t>(idx)];
    size_t block =
        static_cast<size_t>(region_weight[static_cast<size_t>(r)] / wsum *
                            static_cast<double>(n)) + 1;
    block = std::min(block, n - keys.size());
    const double lon_lo = static_cast<double>(r) / regions;
    const double lon_hi = static_cast<double>(r + 1) / regions;
    for (size_t i = 0; i < block; i++) {
      double lon;
      if (rng.NextDouble() < options.background_fraction) {
        // Continent-wide point, weighted by the bump mixture via rejection.
        for (;;) {
          lon = rng.NextDouble();
          double w = 0.05;
          for (const auto& bm : bumps) {
            const double dd = (lon - bm.center) / bm.width;
            w += (bm.weight / total_weight) * std::exp(-0.5 * dd * dd);
          }
          if (rng.NextDouble() < w) {
            break;
          }
        }
      } else {
        lon = lon_lo + (lon_hi - lon_lo) * rng.NextDouble();
      }
      // Mild latitude relief: more points near the middle latitudes.
      double lat = rng.NextDouble();
      if (rng.NextDouble() < options.lat_relief) {
        lat = 0.5 + 0.25 * rng.NextGaussian();
        lat = Clamp01(lat);
      }
      const uint64_t lon_bits =
          static_cast<uint64_t>(lon * static_cast<double>(Pow2(32) - 1));
      const uint64_t lat_bits =
          static_cast<uint64_t>(lat * static_cast<double>(Pow2(31) - 1));
      keys.push_back((lon_bits << 31) | lat_bits);
    }
  }
  // Rounding may leave a shortfall; top up uniformly.
  while (keys.size() < n) {
    keys.push_back(rng.Next() >> 1);
  }
  MakeUnique(keys, seed);
  return keys;
}

std::vector<uint64_t> GenerateReviewKeys(size_t n, uint64_t seed,
                                         const ReviewGenOptions& options) {
  Rng rng(seed);
  // Sparse item identifiers: random points in the 24-bit item space.
  std::vector<uint64_t> item_ids;
  item_ids.reserve(options.num_items);
  for (size_t i = 0; i < options.num_items; i++) {
    item_ids.push_back(LowBits(rng.Next(), 24));
  }
  std::sort(item_ids.begin(), item_ids.end());
  item_ids.erase(std::unique(item_ids.begin(), item_ids.end()),
                 item_ids.end());
  // Popularity must not correlate with the id value (Zipf rank 0 picks
  // index 0): shuffle so hot items are scattered across the id space.
  for (size_t i = item_ids.size(); i > 1; i--) {
    std::swap(item_ids[i - 1], item_ids[rng.NextBelow(i)]);
  }

  ZipfianGenerator item_pick(item_ids.size(), options.item_zipf_theta,
                             seed ^ 0x17e35ULL);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  // Reviews arrive in time order; the item/user mixture is stationary.
  for (size_t t = 0; t < n; t++) {
    const uint64_t item = item_ids[item_pick.Next()];
    const uint64_t user = rng.NextBelow(options.num_users) & LowMask(20);
    const uint64_t time = LowBits(t, 20);
    keys.push_back((item << 40) | (user << 20) | time);
  }
  MakeUnique(keys, seed);
  return keys;
}

std::vector<uint64_t> GenerateTaxiKeys(size_t n, uint64_t seed,
                                       const TaxiGenOptions& options) {
  Rng rng(seed);
  const double total_seconds = options.years * 365.25 * 86400.0;
  std::vector<uint64_t> keys;
  keys.reserve(n);
  // Demand-modulated clock: trips per simulated second vary with hour of
  // day and day of week, so wall-clock time advances unevenly per trip.
  double clock = 0.0;
  const double base_step = total_seconds / static_cast<double>(n);
  // Week-scale demand bursts (weather, events): a lognormal multiplier that
  // resamples every simulated week.
  double burst = 1.0;
  double next_burst_at = 0.0;
  for (size_t i = 0; i < n; i++) {
    if (clock >= next_burst_at) {
      burst = std::exp(options.burst_sigma * rng.NextGaussian());
      next_burst_at = clock + 7.0 * 86400.0;
    }
    const double day_seconds = std::fmod(clock, 86400.0);
    const double hour = day_seconds / 3600.0;
    const double dow = std::fmod(clock / 86400.0, 7.0);
    const double day_of_year = std::fmod(clock / 86400.0, 365.25);
    // Diurnal cycle (rush hours), weekly cycle (weekend dip), and seasonal
    // cycle (summer/winter demand swing).
    const double diurnal = 1.0 + 0.8 * std::sin((hour - 7.0) / 24.0 * 2 * kPi) +
                           0.4 * std::sin((hour - 18.0) / 12.0 * 2 * kPi);
    const double weekly = (dow >= 5.0) ? 0.7 : 1.0;
    const double seasonal =
        1.0 + options.seasonal_amplitude *
                  std::sin(day_of_year / 365.25 * 2 * kPi);
    const double demand =
        std::max(0.05, diurnal * weekly * seasonal * burst);
    clock += base_step / demand * (0.5 + rng.NextDouble());
    const uint64_t pickup =
        options.start_epoch_seconds + static_cast<uint64_t>(clock);
    // Trip duration: exponential-ish around the mean, in centiseconds.
    const double u = std::max(1e-12, rng.NextDouble());
    const double minutes = -options.mean_trip_minutes * std::log(u);
    const uint64_t duration_centis =
        std::min<uint64_t>(static_cast<uint64_t>(minutes * 6000.0),
                           Pow2(30) - 1);
    keys.push_back((LowBits(pickup, 34) << 30) | duration_centis);
  }
  MakeUnique(keys, seed);
  return keys;
}

std::vector<uint64_t> GenerateUniformKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    keys.push_back(rng.Next() >> 1);  // 63-bit keys
  }
  MakeUnique(keys, seed);
  return keys;
}

std::vector<uint64_t> GenerateLognormalKeys(size_t n, uint64_t seed,
                                            double sigma) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  // exp(N(0, sigma)) scaled so the bulk of mass lands inside 2^62.
  const double scale = std::pow(2.0, 40.0);
  for (size_t i = 0; i < n; i++) {
    const double v = std::exp(sigma * rng.NextGaussian()) * scale;
    uint64_t k;
    if (v >= static_cast<double>(Pow2(62))) {
      k = Pow2(62) - 1;
    } else {
      k = static_cast<uint64_t>(v);
    }
    keys.push_back(k);
  }
  MakeUnique(keys, seed);
  return keys;
}

std::vector<uint64_t> GenerateLonglatKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  // ALEX's longlat: 180*lon + lat of OSM points, which concentrates keys
  // around populated (lon, lat) combinations.  We model the population with
  // a handful of tight city clusters plus diffuse background.
  const int kCities = 64;
  std::vector<std::pair<double, double>> cities;
  cities.reserve(kCities);
  for (int i = 0; i < kCities; i++) {
    cities.emplace_back(rng.NextDouble() * 360.0 - 180.0,
                        rng.NextDouble() * 180.0 - 90.0);
  }
  for (size_t i = 0; i < n; i++) {
    double lon;
    double lat;
    if (rng.NextDouble() < 0.85) {
      const auto& c = cities[rng.NextBelow(kCities)];
      lon = c.first + rng.NextGaussian() * 0.5;
      lat = c.second + rng.NextGaussian() * 0.5;
    } else {
      lon = rng.NextDouble() * 360.0 - 180.0;
      lat = rng.NextDouble() * 180.0 - 90.0;
    }
    lon = std::min(180.0, std::max(-180.0, lon));
    lat = std::min(90.0, std::max(-90.0, lat));
    const double compound = 180.0 * (lon + 180.0) + (lat + 90.0);
    keys.push_back(static_cast<uint64_t>(compound * 1e12));
  }
  MakeUnique(keys, seed);
  return keys;
}

std::vector<uint64_t> GenerateLongitudesKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  // Longitudes of populated places: a few dense meridian bands.
  const int kBands = 12;
  std::vector<double> centers;
  centers.reserve(kBands);
  for (int i = 0; i < kBands; i++) {
    centers.push_back(rng.NextDouble() * 360.0);
  }
  for (size_t i = 0; i < n; i++) {
    double lon;
    if (rng.NextDouble() < 0.7) {
      lon = centers[rng.NextBelow(kBands)] + rng.NextGaussian() * 8.0;
    } else {
      lon = rng.NextDouble() * 360.0;
    }
    lon = std::fmod(std::fmod(lon, 360.0) + 360.0, 360.0);
    keys.push_back(static_cast<uint64_t>(lon * 1e15));
  }
  MakeUnique(keys, seed);
  return keys;
}

}  // namespace dytis
