#include "src/datasets/file_loader.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

namespace dytis {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

std::optional<std::vector<uint64_t>> LoadKeysFromCsv(const std::string& path,
                                                     size_t limit) {
  File f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return std::nullopt;
  }
  std::vector<uint64_t> keys;
  char line[512];
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (limit != 0 && keys.size() >= limit) {
      break;
    }
    const char* p = line;
    while (*p == ' ' || *p == '\t') {
      p++;
    }
    if (!std::isdigit(static_cast<unsigned char>(*p))) {
      continue;  // header, comment, or blank line
    }
    uint64_t key = 0;
    if (std::sscanf(p, "%" SCNu64, &key) == 1) {
      keys.push_back(key);
    }
  }
  if (keys.empty()) {
    return std::nullopt;
  }
  return keys;
}

std::optional<std::vector<uint64_t>> LoadKeysFromSosd(const std::string& path,
                                                      size_t limit) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return std::nullopt;
  }
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f.get()) != 1) {
    return std::nullopt;
  }
  if (limit != 0 && count > limit) {
    count = limit;
  }
  std::vector<uint64_t> keys(count);
  if (count > 0 &&
      std::fread(keys.data(), sizeof(uint64_t), count, f.get()) != count) {
    return std::nullopt;  // truncated file
  }
  return keys;
}

std::optional<std::vector<uint64_t>> LoadKeysFromFile(const std::string& path,
                                                      size_t limit) {
  if (HasSuffix(path, ".csv") || HasSuffix(path, ".txt")) {
    return LoadKeysFromCsv(path, limit);
  }
  return LoadKeysFromSosd(path, limit);
}

bool SaveKeysToCsv(const std::vector<uint64_t>& keys,
                   const std::string& path) {
  File f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return false;
  }
  for (uint64_t k : keys) {
    if (std::fprintf(f.get(), "%" PRIu64 "\n", k) < 0) {
      return false;
    }
  }
  return std::fflush(f.get()) == 0;
}

bool SaveKeysToSosd(const std::vector<uint64_t>& keys,
                    const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return false;
  }
  const uint64_t count = keys.size();
  if (std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
    return false;
  }
  if (count > 0 &&
      std::fwrite(keys.data(), sizeof(uint64_t), count, f.get()) != count) {
    return false;
  }
  return std::fflush(f.get()) == 0;
}

}  // namespace dytis
