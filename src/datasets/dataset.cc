#include "src/datasets/dataset.h"

#include <cassert>

#include "src/datasets/generators.h"
#include "src/util/rng.h"

namespace dytis {

const char* DatasetShortName(DatasetId id) {
  switch (id) {
    case DatasetId::kMapM:
      return "MM";
    case DatasetId::kMapL:
      return "ML";
    case DatasetId::kReviewM:
      return "RM";
    case DatasetId::kReviewL:
      return "RL";
    case DatasetId::kTaxi:
      return "TX";
    case DatasetId::kUniform:
      return "Uniform";
    case DatasetId::kLognormal:
      return "Lognormal";
    case DatasetId::kLonglat:
      return "Longlat";
    case DatasetId::kLongitudes:
      return "Longitudes";
  }
  return "?";
}

Dataset MakeDataset(DatasetId id, size_t num_keys, uint64_t seed,
                    bool shuffled) {
  Dataset d;
  d.id = id;
  d.shuffled = shuffled;
  d.name = DatasetShortName(id);
  if (shuffled) {
    d.name += "(s)";
  }
  switch (id) {
    case DatasetId::kMapM: {
      d.keys = GenerateMapKeys(num_keys, seed);
      break;
    }
    case DatasetId::kMapL: {
      // ML covers a different continent: different bump layout + larger
      // region count (Africa is bigger than South America).
      MapGenOptions options;
      options.num_density_bumps = 9;
      options.num_regions = 96;
      d.keys = GenerateMapKeys(num_keys, seed ^ 0xaf51caULL, options);
      break;
    }
    case DatasetId::kReviewM: {
      d.keys = GenerateReviewKeys(num_keys, seed);
      break;
    }
    case DatasetId::kReviewL: {
      // RL (ratings only) has more items and users than the deduplicated RM.
      ReviewGenOptions options;
      options.num_items = 80'000;
      options.item_zipf_theta = 0.95;
      options.num_users = 1'000'000;
      d.keys = GenerateReviewKeys(num_keys, seed ^ 0x4a71ULL, options);
      break;
    }
    case DatasetId::kTaxi: {
      d.keys = GenerateTaxiKeys(num_keys, seed);
      break;
    }
    case DatasetId::kUniform: {
      d.keys = GenerateUniformKeys(num_keys, seed);
      break;
    }
    case DatasetId::kLognormal: {
      d.keys = GenerateLognormalKeys(num_keys, seed);
      break;
    }
    case DatasetId::kLonglat: {
      d.keys = GenerateLonglatKeys(num_keys, seed);
      break;
    }
    case DatasetId::kLongitudes: {
      d.keys = GenerateLongitudesKeys(num_keys, seed);
      break;
    }
  }
  if (shuffled) {
    Rng rng(seed ^ 0x5bffULL);
    for (size_t i = d.keys.size(); i > 1; i--) {
      std::swap(d.keys[i - 1], d.keys[rng.NextBelow(i)]);
    }
  }
  return d;
}

std::vector<DatasetId> RealWorldDatasetIds() {
  return {DatasetId::kMapM, DatasetId::kMapL, DatasetId::kReviewM,
          DatasetId::kReviewL, DatasetId::kTaxi};
}

std::vector<DatasetId> AllDatasetIds() {
  return {DatasetId::kMapM,      DatasetId::kMapL,    DatasetId::kReviewM,
          DatasetId::kReviewL,   DatasetId::kTaxi,    DatasetId::kUniform,
          DatasetId::kLognormal, DatasetId::kLonglat, DatasetId::kLongitudes};
}

}  // namespace dytis
