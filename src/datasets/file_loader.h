// Loading key files: CSV (the paper artifact's review-small.csv format) and
// SOSD-style binary (uint64 count followed by count uint64 keys, little
// endian).  Lets the repository run against real downloaded datasets when
// they are available, mirroring the artifact's benchmark workflow.
#ifndef DYTIS_SRC_DATASETS_FILE_LOADER_H_
#define DYTIS_SRC_DATASETS_FILE_LOADER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dytis {

// Reads keys from a CSV/text file: the first comma-separated column of each
// line is parsed as an unsigned 64-bit integer.  Lines that do not start
// with a digit (headers, comments, blanks) are skipped.  `limit` == 0 means
// read everything.  Returns nullopt when the file cannot be opened or
// contains no keys.
std::optional<std::vector<uint64_t>> LoadKeysFromCsv(const std::string& path,
                                                     size_t limit = 0);

// Reads a SOSD-style binary file: uint64 key count, then that many uint64
// keys, all little-endian.  Returns nullopt on open failure or truncation.
std::optional<std::vector<uint64_t>> LoadKeysFromSosd(const std::string& path,
                                                      size_t limit = 0);

// Dispatches on the file extension: ".csv"/".txt" -> CSV, anything else ->
// SOSD binary.
std::optional<std::vector<uint64_t>> LoadKeysFromFile(const std::string& path,
                                                      size_t limit = 0);

// Writers (round-trip tooling and tests).
bool SaveKeysToCsv(const std::vector<uint64_t>& keys, const std::string& path);
bool SaveKeysToSosd(const std::vector<uint64_t>& keys,
                    const std::string& path);

}  // namespace dytis

#endif  // DYTIS_SRC_DATASETS_FILE_LOADER_H_
