// Dataset model and registry.
//
// The paper evaluates on five real-world traces (Table 1): Map-M/Map-L
// (OpenStreetMap longitudes+latitudes of a continent), Review-M/Review-L
// (Amazon review item/user/time concatenations) and Taxi (NYC TLC pickup +
// drop-off timestamps), plus the simpler Group-3 datasets used by earlier
// learned-index studies (Uniform, Lognormal, Longlat, Longitudes).  The raw
// traces are multi-GB downloads that are not available offline, so this
// module generates synthetic substitutes engineered to reproduce the two
// dynamic characteristics the paper shows matter (Figure 1): variance of
// skewness and key distribution divergence.  See DESIGN.md Section 2 for the
// substitution rationale per dataset.
//
// A Dataset is an *insert-ordered* stream of unique 64-bit keys: the order
// is part of the dataset definition (Section 2.1 of the paper) because it
// determines the KDD.
#ifndef DYTIS_SRC_DATASETS_DATASET_H_
#define DYTIS_SRC_DATASETS_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dytis {

enum class DatasetId {
  // Group 1: dynamic real-world substitutes.
  kMapM,       // MM: South-America-like map keys; low skewness, medium KDD
  kMapL,       // ML: Africa-like map keys (larger); low skewness, medium KDD
  kReviewM,    // RM: deduplicated review keys; high skewness, low KDD
  kReviewL,    // RL: ratings-only review keys; high skewness, low KDD
  kTaxi,       // TX: taxi-trip timestamps; medium skewness, high KDD
  // Group 3: simple datasets from prior learned-index studies.
  kUniform,
  kLognormal,
  kLonglat,
  kLongitudes,
};

struct Dataset {
  std::string name;
  DatasetId id = DatasetId::kUniform;
  bool shuffled = false;
  std::vector<uint64_t> keys;  // unique keys, in insertion order
};

// Human-readable short name (MM, ML, RM, RL, TX, Uniform, ...).
const char* DatasetShortName(DatasetId id);

// Generates `num_keys` unique keys for the given dataset.  `shuffled` applies
// a Fisher-Yates shuffle after generation, producing the "(s)" Group-2
// variants of the paper (same key set, uniform-over-time insertion order).
Dataset MakeDataset(DatasetId id, size_t num_keys, uint64_t seed = 42,
                    bool shuffled = false);

// The five Group-1 datasets used throughout the paper's evaluation.
std::vector<DatasetId> RealWorldDatasetIds();

// All dataset ids, including Group 3.
std::vector<DatasetId> AllDatasetIds();

}  // namespace dytis

#endif  // DYTIS_SRC_DATASETS_DATASET_H_
