// Dynamic-dataset metrics from Section 2.1 of the paper:
//
//  * Variance of skewness — the average number of max-error-bounded PLR
//    linear models needed to approximate the CDF of a fixed number of keys
//    per key range (paper uses 0.1M keys per range; the error bound is
//    calibrated so that a Uniform dataset needs exactly one model).
//
//  * Key Distribution Divergence (KDD) — the average KL divergence between
//    histograms of consecutive fixed-size sub-datasets, where each pairwise
//    histogram range is the [min, max] of the two sub-datasets.
#ifndef DYTIS_SRC_ANALYSIS_DYNAMICS_H_
#define DYTIS_SRC_ANALYSIS_DYNAMICS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dytis {

struct DynamicsOptions {
  // Keys per range for the skewness metric and per sub-dataset for KDD.
  // The paper uses 100'000 for both and reports insensitivity to the choice.
  size_t keys_per_range = 100'000;
  // PLR error bound as a fraction of the range size; calibrated so Uniform
  // needs one model (see CalibratePlrError).
  double plr_error_fraction = 0.01;
  // Bins per histogram for KDD.
  size_t histogram_bins = 1'000;
};

// Variance-of-skewness metric: sorts the keys, chops them into chunks of
// keys_per_range, runs error-bounded PLR per chunk, and returns the average
// model count per chunk.  Uniform data yields ~1.
double SkewnessMetric(std::span<const uint64_t> keys,
                      const DynamicsOptions& options = {});

// KDD metric: splits the *insert-ordered* key stream into consecutive
// sub-datasets of keys_per_range keys and averages the KL divergence between
// each adjacent pair.
double KddMetric(std::span<const uint64_t> keys_in_insert_order,
                 const DynamicsOptions& options = {});

struct DatasetCharacteristics {
  double skewness = 0.0;  // avg linear models per keys_per_range keys
  double kdd = 0.0;       // avg KL divergence between consecutive sub-datasets
};

DatasetCharacteristics MeasureDynamics(
    std::span<const uint64_t> keys_in_insert_order,
    const DynamicsOptions& options = {});

// Chooses the absolute PLR error bound for a chunk of n keys, such that a
// uniformly distributed chunk needs a single model (footnote 2 of the paper).
double PlrErrorBound(size_t chunk_size, const DynamicsOptions& options);

}  // namespace dytis

#endif  // DYTIS_SRC_ANALYSIS_DYNAMICS_H_
