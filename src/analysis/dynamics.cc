#include "src/analysis/dynamics.h"

#include <algorithm>
#include <cassert>

#include "src/analysis/histogram.h"
#include "src/learned/plr.h"

namespace dytis {

double PlrErrorBound(size_t chunk_size, const DynamicsOptions& options) {
  // Positions run 0..chunk_size-1; a single line fits uniform data with a
  // small bounded error, so any bound that is a constant fraction of the
  // chunk size keeps Uniform at one model while skewed chunks need many.
  return std::max(1.0, options.plr_error_fraction *
                           static_cast<double>(chunk_size));
}

double SkewnessMetric(std::span<const uint64_t> keys,
                      const DynamicsOptions& options) {
  if (keys.empty()) {
    return 0.0;
  }
  std::vector<uint64_t> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());

  const size_t chunk = std::min(options.keys_per_range, sorted.size());
  size_t num_chunks = 0;
  size_t total_models = 0;
  for (size_t start = 0; start + chunk <= sorted.size(); start += chunk) {
    PlrBuilder plr(PlrErrorBound(chunk, options));
    for (size_t i = 0; i < chunk; i++) {
      plr.Add(sorted[start + i], static_cast<double>(i));
    }
    total_models += plr.Finish().size();
    num_chunks++;
  }
  if (num_chunks == 0) {
    // Fewer keys than one chunk: evaluate the whole set as one range.
    PlrBuilder plr(PlrErrorBound(sorted.size(), options));
    for (size_t i = 0; i < sorted.size(); i++) {
      plr.Add(sorted[i], static_cast<double>(i));
    }
    return static_cast<double>(plr.Finish().size());
  }
  return static_cast<double>(total_models) / static_cast<double>(num_chunks);
}

double KddMetric(std::span<const uint64_t> keys_in_insert_order,
                 const DynamicsOptions& options) {
  const size_t chunk =
      std::min(options.keys_per_range, keys_in_insert_order.size());
  if (chunk == 0) {
    return 0.0;
  }
  const size_t num_chunks = keys_in_insert_order.size() / chunk;
  if (num_chunks < 2) {
    return 0.0;
  }
  double total_kl = 0.0;
  size_t pairs = 0;
  for (size_t c = 0; c + 1 < num_chunks; c++) {
    const auto a = keys_in_insert_order.subspan(c * chunk, chunk);
    const auto b = keys_in_insert_order.subspan((c + 1) * chunk, chunk);
    // Histogram range: min/max over *both* sub-datasets (Section 2.1).
    uint64_t lo = a[0];
    uint64_t hi = a[0];
    for (uint64_t k : a) {
      lo = std::min(lo, k);
      hi = std::max(hi, k);
    }
    for (uint64_t k : b) {
      lo = std::min(lo, k);
      hi = std::max(hi, k);
    }
    Histogram ha(lo, hi, options.histogram_bins);
    Histogram hb(lo, hi, options.histogram_bins);
    ha.AddAll(a);
    hb.AddAll(b);
    total_kl += KlDivergence(ha, hb);
    pairs++;
  }
  return pairs == 0 ? 0.0 : total_kl / static_cast<double>(pairs);
}

DatasetCharacteristics MeasureDynamics(
    std::span<const uint64_t> keys_in_insert_order,
    const DynamicsOptions& options) {
  DatasetCharacteristics c;
  c.skewness = SkewnessMetric(keys_in_insert_order, options);
  c.kdd = KddMetric(keys_in_insert_order, options);
  return c;
}

}  // namespace dytis
