#include "src/analysis/histogram.h"

#include <cassert>
#include <cmath>

namespace dytis {

Histogram::Histogram(uint64_t lo, uint64_t hi, size_t bins) : lo_(lo) {
  assert(hi >= lo);
  assert(bins > 0);
  const uint64_t span = hi - lo;
  width_ = span / bins + 1;  // ceil-ish width; guarantees hi maps to last bin
  counts_.assign(bins, 0);
}

size_t Histogram::BinFor(uint64_t key) const {
  if (key < lo_) {
    return 0;
  }
  const uint64_t offset = key - lo_;
  size_t bin = static_cast<size_t>(offset / width_);
  if (bin >= counts_.size()) {
    bin = counts_.size() - 1;
  }
  return bin;
}

void Histogram::Add(uint64_t key) {
  counts_[BinFor(key)]++;
  total_++;
}

void Histogram::AddAll(std::span<const uint64_t> keys) {
  for (uint64_t k : keys) {
    Add(k);
  }
}

double Histogram::Probability(size_t bin) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double KlDivergence(const Histogram& p, const Histogram& q, double epsilon) {
  assert(p.bins() == q.bins());
  double kl = 0.0;
  for (size_t i = 0; i < p.bins(); i++) {
    const double pi = p.Probability(i);
    if (pi <= 0.0) {
      continue;
    }
    double qi = q.Probability(i);
    if (qi <= 0.0) {
      qi = epsilon;
    }
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

}  // namespace dytis
