// Fixed-bin histograms over uint64 key ranges.
//
// Used by the Key Distribution Divergence (KDD) metric of Section 2.1: the
// probability distribution of a sub-dataset is approximated by a histogram
// whose key range is the [min, max] of the two sub-datasets being compared.
#ifndef DYTIS_SRC_ANALYSIS_HISTOGRAM_H_
#define DYTIS_SRC_ANALYSIS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dytis {

class Histogram {
 public:
  // Histogram of `bins` equal-width bins over the inclusive range [lo, hi].
  Histogram(uint64_t lo, uint64_t hi, size_t bins);

  void Add(uint64_t key);
  void AddAll(std::span<const uint64_t> keys);

  size_t bins() const { return counts_.size(); }
  uint64_t total() const { return total_; }
  uint64_t count(size_t bin) const { return counts_[bin]; }

  // Probability mass of bin i (0 when the histogram is empty).
  double Probability(size_t bin) const;

 private:
  size_t BinFor(uint64_t key) const;

  uint64_t lo_;
  uint64_t width_;  // bin width (>= 1)
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// KL divergence D(p || q) between two histograms with identical binning.
// Zero-probability q bins are smoothed with `epsilon` mass (standard practice
// so the divergence stays finite, as required when consecutive sub-datasets
// occupy disjoint key ranges — exactly the high-KDD case of the Taxi data).
double KlDivergence(const Histogram& p, const Histogram& q,
                    double epsilon = 1e-10);

}  // namespace dytis

#endif  // DYTIS_SRC_ANALYSIS_HISTOGRAM_H_
