// Crash-consistent durability wrapper around BasicDyTIS (WAL + checkpoint).
//
// DurableDyTIS mirrors the BasicDyTIS API and adds redo logging: every
// mutating operation (put / erase) is appended to a CRC32C-framed
// write-ahead log (src/recovery/wal.h) *before* it is applied to the
// in-memory index.  Checkpoint() persists the full index as a v2 snapshot
// (src/core/snapshot.h) carrying the WAL epoch watermark, then truncates
// the log.  Open() recovers: load the last valid checkpoint, replay the
// WAL tail (skipping records at or below the watermark, physically
// truncating a torn tail), and run the online invariant verifier
// (DyTIS::CheckInvariants) before handing the index back.
//
// Cost model: with durability disabled (RecoveryConfig::dir empty) every
// operation forwards through one predictable branch — no log, no locks, no
// allocation; the hot path pays nothing.  With durability on, the WAL
// append cost is controlled by RecoveryConfig::wal_sync_every (group
// commit): 1 fsyncs per record, N amortises one fsync over N records, 0
// never fsyncs automatically (data still reaches the OS on a byte
// threshold and survives a process kill, though not power loss).
//
// Concurrency: WAL appends are serialised by an internal mutex, so the log
// order is a valid linearisation of the operations as logged.  For the
// concurrent index policies, Checkpoint() and Open() require quiescence
// (no concurrent readers or writers), like the tracer's collect side;
// Checkpoint() uses that quiescence to also drain the index's epoch-based
// reclamation backlog (QuiesceReclamation), so a freshly checkpointed
// process holds no retired-but-unfreed structural memory.  Recovery
// replays records in LSN order.
//
// Every recovery and checkpoint emits observability signals: trace events
// (TraceOp::kRecovery / kWalReplay / kCheckpoint) and MetricsRegistry
// counters/gauges under "recovery.*" (records replayed, torn bytes
// truncated, checkpoint age).
#ifndef DYTIS_SRC_RECOVERY_DURABLE_DYTIS_H_
#define DYTIS_SRC_RECOVERY_DURABLE_DYTIS_H_

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>

#include "src/core/dytis.h"
#include "src/core/insert_result.h"
#include "src/core/snapshot.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/recovery/wal.h"
#include "src/util/timer.h"

namespace dytis {
namespace recovery {

struct RecoveryConfig {
  // Durability directory (created on demand, one level).  Empty = durability
  // off: the wrapper is a zero-cost pass-through and writes no files.
  std::string dir;
  // Group-commit cadence: fsync the WAL after every Nth logged op.  1 =
  // synchronous logging, 0 = no automatic fsync (see file comment).
  uint64_t wal_sync_every = 0;
  // Automatic checkpoint after every N logged ops (0 = manual only).
  uint64_t checkpoint_every = 0;
  // Run DyTIS::CheckInvariants() at the end of Open(); violations fail the
  // recovery with the report in *error.
  bool verify_after_recovery = true;

  bool enabled() const { return !dir.empty(); }
  std::string WalPath() const { return dir + "/wal.log"; }
  std::string CheckpointPath() const { return dir + "/checkpoint.dytis"; }
};

// What Open() found and did; exact counts, for tests and metrics.
struct RecoveryStats {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_entries = 0;
  uint64_t checkpoint_wal_lsn = 0;  // watermark read from the checkpoint
  uint64_t checkpoint_age_ns = 0;   // now - checkpoint creation time
  uint64_t wal_records_replayed = 0;
  uint64_t wal_records_skipped = 0;  // lsn <= watermark (stale duplicates)
  uint64_t torn_bytes_truncated = 0;
  uint64_t last_lsn = 0;  // highest LSN reflected in the recovered index
  uint64_t recovery_ns = 0;
};

template <typename V, typename Policy = NoLockPolicy>
class DurableDyTIS {
 public:
  static_assert(std::is_trivially_copyable_v<V>,
                "the WAL logs raw value bytes; V must be trivially copyable");
  using Index = BasicDyTIS<V, Policy>;
  using ScanEntry = typename Index::ScanEntry;
  using InvariantReport = typename Index::InvariantReport;

  // Opens (recovering if durability files exist) a durable index.  `config`
  // shapes a fresh index; when a checkpoint exists its stored config wins
  // (the structure on disk was built with it).  Returns nullptr with a
  // reason through *error on unreadable/corrupt files or a failed
  // post-recovery invariant check.
  static std::unique_ptr<DurableDyTIS> Open(const RecoveryConfig& recovery,
                                            const DyTISConfig& config =
                                                DyTISConfig{},
                                            std::string* error = nullptr) {
    auto fail = [error](const std::string& reason) {
      if (error != nullptr) {
        *error = reason;
      }
      return nullptr;
    };
    std::unique_ptr<DurableDyTIS> db(new DurableDyTIS(recovery));
    if (!recovery.enabled()) {
      db->index_ = std::make_unique<Index>(config);
      return db;
    }
    const uint64_t t0 = NowNanos();
    if (::mkdir(recovery.dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return fail("cannot create durability dir '" + recovery.dir +
                  "': " + std::strerror(errno));
    }
    // 1. Checkpoint: absent is a fresh start; present-but-bad is an error
    // (silently starting empty would resurrect deleted data or lose the
    // dataset without anyone noticing).
    struct ::stat st {};
    const bool have_checkpoint =
        ::stat(recovery.CheckpointPath().c_str(), &st) == 0;
    SnapshotInfo snap_info;
    if (have_checkpoint) {
      std::string snap_error;
      db->index_ = LoadSnapshot<V, Policy>(recovery.CheckpointPath(),
                                           &snap_error, &snap_info);
      if (db->index_ == nullptr) {
        return fail("checkpoint '" + recovery.CheckpointPath() +
                    "': " + snap_error);
      }
      db->stats_.checkpoint_loaded = true;
      db->stats_.checkpoint_entries = snap_info.num_entries;
      db->stats_.checkpoint_wal_lsn = snap_info.wal_lsn;
      if (snap_info.created_unix_ns != 0) {
        const uint64_t now = snapshot_detail::WallClockNanos();
        db->stats_.checkpoint_age_ns =
            now > snap_info.created_unix_ns ? now - snap_info.created_unix_ns
                                            : 0;
      }
    } else {
      db->index_ = std::make_unique<Index>(config);
    }
    // 2. WAL tail: replay records past the watermark, in LSN order.
    const uint64_t replay_t0 = NowNanos();
    WalReadResult wal;
    std::string wal_error;
    if (!ReadWal(recovery.WalPath(), &wal, &wal_error)) {
      return fail("wal '" + recovery.WalPath() + "': " + wal_error);
    }
    uint64_t last_lsn = snap_info.wal_lsn;
    for (const WalRecord& record : wal.records) {
      if (record.lsn <= snap_info.wal_lsn) {
        db->stats_.wal_records_skipped++;
        continue;
      }
      if (!db->ApplyRecord(record)) {
        return fail("wal '" + recovery.WalPath() + "': record " +
                    std::to_string(record.lsn) + " has a malformed payload");
      }
      db->stats_.wal_records_replayed++;
      last_lsn = record.lsn;
    }
    DYTIS_OBS_TRACE(obs::TraceOp::kWalReplay, replay_t0, NowNanos(), 0, -1);
    // 3. Torn tail: physically drop it so appending resumes from a clean
    // frame boundary.  An expected crash outcome, not an error.
    if (wal.torn_bytes > 0) {
      std::string trunc_error;
      if (!TruncateFile(recovery.WalPath(), wal.valid_bytes, &trunc_error)) {
        return fail(trunc_error);
      }
      db->stats_.torn_bytes_truncated = wal.torn_bytes;
    }
    db->stats_.last_lsn = last_lsn;
    // 4. Reopen the log for appending where the recovered state ends.
    WalOptions options;
    options.sync_every = recovery.wal_sync_every;
    std::string open_error;
    if (!db->wal_.Open(recovery.WalPath(), last_lsn + 1, options,
                       &open_error)) {
      return fail(open_error);
    }
    // 5. Online invariant verification of the recovered structure.
    if (recovery.verify_after_recovery) {
      const InvariantReport report = db->index_->CheckInvariants();
      if (!report.ok()) {
        obs::MetricsRegistry::Global()
            .GetCounter("recovery.invariant_violations")
            .Add(report.violations.size());
        return fail("post-recovery invariant check failed:\n" +
                    report.Describe());
      }
    }
    db->stats_.recovery_ns = NowNanos() - t0;
    db->ExportRecoveryMetrics();
    DYTIS_OBS_TRACE(obs::TraceOp::kRecovery, t0, NowNanos(), 0, -1);
    return db;
  }

  ~DurableDyTIS() {
    // Best-effort: push buffered frames to the OS so an orderly shutdown
    // loses nothing (callers wanting power-loss durability call Sync()).
    std::string ignored;
    std::lock_guard<std::mutex> lock(wal_mutex_);
    wal_.Flush(&ignored);
  }

  DurableDyTIS(const DurableDyTIS&) = delete;
  DurableDyTIS& operator=(const DurableDyTIS&) = delete;

  // --- Mutations (logged before applied) ----------------------------------

  // Insert-or-update with the full outcome.  kHardError additionally covers
  // a WAL append failure (the op is NOT applied when it cannot be logged —
  // an unlogged mutation would silently vanish on the next recovery).
  InsertResult PutEx(uint64_t key, const V& value) {
    if (wal_.is_open() && !LogPut(key, value)) {
      return InsertResult::kHardError;
    }
    const InsertResult result = index_->InsertEx(key, value);
    MaybeAutoCheckpoint();
    return result;
  }
  bool Put(uint64_t key, const V& value) { return IsNewKey(PutEx(key, value)); }
  // BasicDyTIS API parity.
  bool Insert(uint64_t key, const V& value) { return Put(key, value); }
  InsertResult InsertEx(uint64_t key, const V& value) {
    return PutEx(key, value);
  }

  // In-place update of an existing key; false when absent (nothing logged).
  bool Update(uint64_t key, const V& value) {
    if (!index_->Find(key, nullptr)) {
      return false;
    }
    if (wal_.is_open() && !LogPut(key, value)) {
      return false;
    }
    const bool updated = index_->Update(key, value);
    MaybeAutoCheckpoint();
    return updated;
  }

  // Deletes a key.  Returns false when absent (an absent-key delete is not
  // logged: replaying it would be a no-op, so the log stays minimal).
  bool Erase(uint64_t key) {
    if (!index_->Find(key, nullptr)) {
      return false;
    }
    if (wal_.is_open() && !LogErase(key)) {
      return false;
    }
    const bool erased = index_->Erase(key);
    MaybeAutoCheckpoint();
    return erased;
  }

  // --- Reads (pass-through) -----------------------------------------------

  bool Find(uint64_t key, V* value) const { return index_->Find(key, value); }
  size_t Scan(uint64_t start_key, size_t count, ScanEntry* out) const {
    return index_->Scan(start_key, count, out);
  }
  size_t ScanRange(uint64_t start_key, uint64_t end_key, size_t count,
                   ScanEntry* out) const {
    return index_->ScanRange(start_key, end_key, count, out);
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    index_->ForEach(std::forward<Fn>(fn));
  }
  size_t size() const { return index_->size(); }
  const DyTISConfig& config() const { return index_->config(); }
  const DyTISStats& stats() const { return index_->stats(); }

  // --- Durability control -------------------------------------------------

  // Persists the full index as a v2 checkpoint carrying the current WAL
  // watermark, then truncates the log.  Requires quiescence under the
  // concurrent policies (see file comment).
  bool Checkpoint(std::string* error = nullptr) {
    if (!wal_.is_open()) {
      if (error != nullptr) {
        *error = "durability is disabled";
      }
      return false;
    }
    const uint64_t t0 = NowNanos();
    std::lock_guard<std::mutex> lock(wal_mutex_);
    // Everything logged so far must be on disk before the checkpoint that
    // supersedes it claims the watermark.
    if (!wal_.Sync(error)) {
      return false;
    }
    const uint64_t watermark = wal_.next_lsn() - 1;
    if (!SaveSnapshot(*index_, recovery_.CheckpointPath(), watermark, error)) {
      return false;
    }
    // Crash window here (checkpoint renamed, log not yet reset) is safe:
    // replay skips records at or below the watermark.
    if (!wal_.Reset(error)) {
      return false;
    }
    ops_since_checkpoint_ = 0;
    // Checkpoints are quiescent points by contract (no concurrent readers
    // or writers), so drain the epoch domain's retired-object backlog: the
    // snapshot just copied everything live, and a checkpointed process
    // should not sit on reclaimable memory from pre-checkpoint churn.
    index_->QuiesceReclamation();
    obs::MetricsRegistry::Global()
        .GetCounter("recovery.checkpoints_written")
        .Add(1);
    DYTIS_OBS_TRACE(obs::TraceOp::kCheckpoint, t0, NowNanos(), 0, -1);
    return true;
  }

  // Flush + fsync the WAL: everything acknowledged so far survives power
  // loss, regardless of the group-commit cadence.
  bool Sync(std::string* error = nullptr) {
    if (!wal_.is_open()) {
      return true;
    }
    std::lock_guard<std::mutex> lock(wal_mutex_);
    return wal_.Sync(error);
  }

  InvariantReport CheckInvariants() const { return index_->CheckInvariants(); }

  const RecoveryStats& recovery_stats() const { return stats_; }
  bool durable() const { return wal_.is_open(); }
  // Highest LSN assigned so far (0 = nothing logged since the epoch).
  uint64_t last_lsn() const {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    return wal_.is_open() ? wal_.next_lsn() - 1 : 0;
  }

  // The wrapped index, for stats/obs snapshots and tests.
  Index& index() { return *index_; }
  const Index& index() const { return *index_; }

 private:
  static constexpr uint8_t kOpPut = 1;
  static constexpr uint8_t kOpErase = 2;
  static constexpr size_t kPutPayloadBytes = 1 + sizeof(uint64_t) + sizeof(V);
  static constexpr size_t kErasePayloadBytes = 1 + sizeof(uint64_t);

  explicit DurableDyTIS(RecoveryConfig recovery)
      : recovery_(std::move(recovery)) {}

  bool LogPut(uint64_t key, const V& value) {
    unsigned char payload[kPutPayloadBytes];
    payload[0] = kOpPut;
    std::memcpy(payload + 1, &key, sizeof(key));
    std::memcpy(payload + 1 + sizeof(key), &value, sizeof(V));
    return LogPayload(payload, sizeof(payload));
  }

  bool LogErase(uint64_t key) {
    unsigned char payload[kErasePayloadBytes];
    payload[0] = kOpErase;
    std::memcpy(payload + 1, &key, sizeof(key));
    return LogPayload(payload, sizeof(payload));
  }

  bool LogPayload(const void* payload, size_t size) {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    std::string error;
    if (!wal_.Append(payload, static_cast<uint32_t>(size), nullptr, &error)) {
      obs::MetricsRegistry::Global()
          .GetCounter("recovery.wal_append_failures")
          .Add(1);
      return false;
    }
    if (recovery_.checkpoint_every > 0 &&
        ++ops_since_checkpoint_ >= recovery_.checkpoint_every) {
      checkpoint_due_ = true;
    }
    return true;
  }

  // Runs an automatic checkpoint if the op cadence says one is due.  Called
  // by the mutators after the index has absorbed the op (so the checkpoint
  // contains it) and without wal_mutex_ held (Checkpoint takes it).
  // Best-effort: a failed auto-checkpoint does not fail the op — the WAL
  // already holds it, the log just keeps growing until a checkpoint lands.
  void MaybeAutoCheckpoint() {
    bool due = false;
    {
      std::lock_guard<std::mutex> lock(wal_mutex_);
      due = checkpoint_due_;
      checkpoint_due_ = false;
    }
    if (due) {
      std::string error;
      if (!Checkpoint(&error)) {
        obs::MetricsRegistry::Global()
            .GetCounter("recovery.checkpoint_failures")
            .Add(1);
      }
    }
  }

  // Decodes and applies one replayed WAL record.  False on a CRC-valid but
  // semantically malformed payload (wrong size/tag — e.g. a log written
  // with a different value type).
  bool ApplyRecord(const WalRecord& record) {
    if (record.payload.empty()) {
      return false;
    }
    const uint8_t tag = record.payload[0];
    if (tag == kOpPut && record.payload.size() == kPutPayloadBytes) {
      uint64_t key = 0;
      V value{};
      std::memcpy(&key, record.payload.data() + 1, sizeof(key));
      std::memcpy(&value, record.payload.data() + 1 + sizeof(key), sizeof(V));
      index_->Insert(key, value);
      return true;
    }
    if (tag == kOpErase && record.payload.size() == kErasePayloadBytes) {
      uint64_t key = 0;
      std::memcpy(&key, record.payload.data() + 1, sizeof(key));
      index_->Erase(key);
      return true;
    }
    return false;
  }

  void ExportRecoveryMetrics() {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("recovery.recoveries").Add(1);
    registry.GetCounter("recovery.wal_records_replayed")
        .Add(stats_.wal_records_replayed);
    registry.GetCounter("recovery.wal_records_skipped")
        .Add(stats_.wal_records_skipped);
    registry.GetCounter("recovery.torn_bytes_truncated")
        .Add(stats_.torn_bytes_truncated);
    registry.GetGauge("recovery.last_checkpoint_age_ns")
        .Set(static_cast<int64_t>(stats_.checkpoint_age_ns));
    registry.GetGauge("recovery.last_lsn")
        .Set(static_cast<int64_t>(stats_.last_lsn));
    registry.GetHistogram("recovery.recovery_ns").Record(stats_.recovery_ns);
  }

  RecoveryConfig recovery_;
  std::unique_ptr<Index> index_;
  WalWriter wal_;
  mutable std::mutex wal_mutex_;
  uint64_t ops_since_checkpoint_ = 0;
  bool checkpoint_due_ = false;
  RecoveryStats stats_;
};

// Single-threaded durable DyTIS.
template <typename V>
using DurableIndex = DurableDyTIS<V, NoLockPolicy>;

}  // namespace recovery
}  // namespace dytis

#endif  // DYTIS_SRC_RECOVERY_DURABLE_DYTIS_H_
