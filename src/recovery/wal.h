// Append-only, CRC32C-framed write-ahead log (durability subsystem).
//
// The WAL is the redo log of the durability layer (src/recovery/
// durable_dytis.h): every mutating operation is appended *before* it is
// applied to the in-memory index, so after a crash the sequence
// last-valid-checkpoint + WAL-tail reconstructs the index exactly.
//
// On-disk frame format (little-endian), one frame per record:
//
//   crc   u32   CRC32C over [size, lsn, payload]
//   size  u32   payload length in bytes (bounded by kMaxWalPayloadBytes)
//   lsn   u64   log sequence number, strictly increasing within a file
//   payload     `size` opaque bytes (the typed layer encodes ops here)
//
// Torn-tail semantics: a crash can leave a partial or corrupt frame at the
// end of the file.  WalReadResult reports the longest well-formed prefix;
// recovery truncates the file to that prefix and continues appending — a
// torn tail is an expected outcome of a crash, never a fatal error.  A CRC
// mismatch, an over-bound size, or a non-monotonic LSN all end the prefix
// the same way.
//
// Group commit: WalWriter buffers frames in user space and flushes + fsyncs
// once per `sync_every` records (sync_every == 1 is classic synchronous
// logging; 0 never fsyncs and flushes on a byte threshold only).  Records
// that were flushed survive a process kill (page cache); records that were
// also fsynced survive power loss.
#ifndef DYTIS_SRC_RECOVERY_WAL_H_
#define DYTIS_SRC_RECOVERY_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dytis {
namespace recovery {

// Frame header: crc u32 + size u32 + lsn u64.
inline constexpr size_t kWalFrameHeaderBytes = 16;
// Upper bound on a single record's payload; a frame claiming more is treated
// as corruption (it bounds what a bit-flipped size field can make us read).
inline constexpr uint32_t kMaxWalPayloadBytes = 1u << 20;

struct WalOptions {
  // fsync after every Nth appended record (group commit).  1 = every record,
  // 0 = never fsync automatically (Sync() still available).
  uint64_t sync_every = 0;
  // Flush-to-OS threshold for the user-space buffer when no fsync cadence
  // forces it earlier.
  size_t buffer_bytes = 256 * 1024;
};

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens (creating if needed) the log for appending.  `next_lsn` seeds the
  // sequence numbering — recovery passes 1 + the highest LSN it replayed.
  bool Open(const std::string& path, uint64_t next_lsn,
            const WalOptions& options, std::string* error);
  bool is_open() const { return fd_ >= 0; }

  // Appends one record, assigning it the next LSN (returned through *lsn
  // when non-null).  Honors the group-commit cadence.  False on I/O failure.
  bool Append(const void* payload, uint32_t size, uint64_t* lsn,
              std::string* error);

  // Pushes buffered frames to the OS (no fsync).
  bool Flush(std::string* error);
  // Flush + fsync: everything appended so far survives power loss.
  bool Sync(std::string* error);

  // Truncates the log to zero length (after a successful checkpoint).  LSNs
  // keep increasing across resets; stale frames are filtered by LSN anyway.
  bool Reset(std::string* error);

  // Flushes (without fsync) and closes the descriptor.
  void Close();

  uint64_t next_lsn() const { return next_lsn_; }
  // Records appended since Open.
  uint64_t appended() const { return appended_; }

 private:
  int fd_ = -1;
  WalOptions options_;
  std::string buffer_;
  uint64_t next_lsn_ = 1;
  uint64_t appended_ = 0;
  uint64_t unsynced_ = 0;  // records appended since the last fsync
};

struct WalRecord {
  uint64_t lsn = 0;
  std::vector<uint8_t> payload;
};

struct WalReadResult {
  std::vector<WalRecord> records;  // the well-formed prefix, in LSN order
  bool found = false;              // the file existed
  uint64_t file_bytes = 0;
  uint64_t valid_bytes = 0;  // length of the well-formed prefix
  uint64_t torn_bytes = 0;   // file_bytes - valid_bytes
  std::string torn_reason;   // why parsing stopped ("" = clean end)
};

// Reads the well-formed prefix of the log at `path`.  Corruption is not an
// error — parsing stops and the result reports where and why.  Returns
// false only for real I/O failures (the file exists but cannot be read).
// A missing file yields found == false and an empty, successful result.
bool ReadWal(const std::string& path, WalReadResult* out, std::string* error);

// Truncates `path` to `bytes` — used to physically drop a torn tail so the
// writer can continue appending from a clean boundary.
bool TruncateFile(const std::string& path, uint64_t bytes, std::string* error);

}  // namespace recovery
}  // namespace dytis

#endif  // DYTIS_SRC_RECOVERY_WAL_H_
