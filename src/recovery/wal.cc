#include "src/recovery/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"  // DYTIS_OBS_ENABLED default
#include "src/util/crc32.h"
#include "src/util/timer.h"

namespace dytis {
namespace recovery {
namespace {

// WAL latency sensors (health report "wal" section).  Compiled out under
// DYTIS_OBS=OFF — the histograms then stay at count 0, which the obsoff
// test asserts.  Looked up per record rather than cached: registry
// references are only valid until Reset(), and the cost (one map find
// under a mutex) is noise against the write(2)/fsync(2) the WAL is about
// to pay anyway.
#if DYTIS_OBS_ENABLED
obs::Histogram& WalAppendHist() {
  return obs::MetricsRegistry::Global().GetHistogram("wal.append_ns");
}
obs::Histogram& WalFsyncHist() {
  return obs::MetricsRegistry::Global().GetHistogram("wal.fsync_ns");
}
#endif

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + ": " + std::strerror(errno);
  }
}

// write(2) with EINTR/short-write handling.
bool WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

}  // namespace

WalWriter::~WalWriter() { Close(); }

bool WalWriter::Open(const std::string& path, uint64_t next_lsn,
                     const WalOptions& options, std::string* error) {
  Close();
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    SetError(error, "open '" + path + "'");
    return false;
  }
  options_ = options;
  next_lsn_ = next_lsn == 0 ? 1 : next_lsn;
  appended_ = 0;
  unsynced_ = 0;
  buffer_.clear();
  return true;
}

bool WalWriter::Append(const void* payload, uint32_t size, uint64_t* lsn,
                       std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = "wal writer is not open";
    }
    return false;
  }
  if (size > kMaxWalPayloadBytes) {
    if (error != nullptr) {
      *error = "wal payload exceeds kMaxWalPayloadBytes";
    }
    return false;
  }
#if DYTIS_OBS_ENABLED
  const uint64_t t0 = NowNanos();
#endif
  const uint64_t this_lsn = next_lsn_;
  // Frame body first (size, lsn, payload), then the CRC over it.
  std::string body;
  body.reserve(kWalFrameHeaderBytes - sizeof(uint32_t) + size);
  AppendRaw(&body, &size, sizeof(size));
  AppendRaw(&body, &this_lsn, sizeof(this_lsn));
  AppendRaw(&body, payload, size);
  const uint32_t crc = Crc32c(body.data(), body.size());
  AppendRaw(&buffer_, &crc, sizeof(crc));
  buffer_ += body;
  next_lsn_++;
  appended_++;
  unsynced_++;
  if (options_.sync_every > 0) {
    if (unsynced_ >= options_.sync_every && !Sync(error)) {
      return false;
    }
  } else if (buffer_.size() >= options_.buffer_bytes) {
    if (!Flush(error)) {
      return false;
    }
  }
  if (lsn != nullptr) {
    *lsn = this_lsn;
  }
#if DYTIS_OBS_ENABLED
  // Includes the group-commit fsync when this record triggered one — an
  // append that pays the sync IS that slow from the caller's side.
  WalAppendHist().Record(NowNanos() - t0);
#endif
  return true;
}

bool WalWriter::Flush(std::string* error) {
  if (fd_ < 0 || buffer_.empty()) {
    return true;
  }
  if (!WriteAll(fd_, buffer_.data(), buffer_.size())) {
    SetError(error, "wal write");
    return false;
  }
  buffer_.clear();
  return true;
}

bool WalWriter::Sync(std::string* error) {
#if DYTIS_OBS_ENABLED
  const uint64_t t0 = NowNanos();
#endif
  if (!Flush(error)) {
    return false;
  }
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    SetError(error, "wal fsync");
    return false;
  }
  unsynced_ = 0;
#if DYTIS_OBS_ENABLED
  WalFsyncHist().Record(NowNanos() - t0);
#endif
  return true;
}

bool WalWriter::Reset(std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = "wal writer is not open";
    }
    return false;
  }
  buffer_.clear();  // buffered-but-unwritten frames are covered upstream
  if (::ftruncate(fd_, 0) != 0) {
    SetError(error, "wal ftruncate");
    return false;
  }
  unsynced_ = 0;
  return true;
}

void WalWriter::Close() {
  if (fd_ < 0) {
    return;
  }
  Flush(nullptr);
  ::close(fd_);
  fd_ = -1;
}

bool ReadWal(const std::string& path, WalReadResult* out, std::string* error) {
  *out = WalReadResult{};
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return true;  // no log yet: empty, successful result
    }
    SetError(error, "open '" + path + "'");
    return false;
  }
  out->found = true;
  std::string data;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SetError(error, "read '" + path + "'");
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    data.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  out->file_bytes = data.size();

  size_t pos = 0;
  uint64_t prev_lsn = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kWalFrameHeaderBytes) {
      out->torn_reason = "partial frame header";
      break;
    }
    uint32_t crc = 0;
    uint32_t size = 0;
    uint64_t lsn = 0;
    std::memcpy(&crc, data.data() + pos, sizeof(crc));
    std::memcpy(&size, data.data() + pos + 4, sizeof(size));
    std::memcpy(&lsn, data.data() + pos + 8, sizeof(lsn));
    if (size > kMaxWalPayloadBytes) {
      out->torn_reason = "frame size out of bounds";
      break;
    }
    if (data.size() - pos - kWalFrameHeaderBytes < size) {
      out->torn_reason = "partial frame payload";
      break;
    }
    // CRC covers [size, lsn, payload].
    const uint32_t actual =
        Crc32c(data.data() + pos + 4, sizeof(size) + sizeof(lsn) + size);
    if (actual != crc) {
      out->torn_reason = "frame checksum mismatch";
      break;
    }
    if (lsn <= prev_lsn) {
      out->torn_reason = "non-monotonic lsn";
      break;
    }
    WalRecord record;
    record.lsn = lsn;
    const auto* payload = reinterpret_cast<const uint8_t*>(data.data() + pos +
                                                           kWalFrameHeaderBytes);
    record.payload.assign(payload, payload + size);
    out->records.push_back(std::move(record));
    prev_lsn = lsn;
    pos += kWalFrameHeaderBytes + size;
  }
  out->valid_bytes = pos;
  out->torn_bytes = out->file_bytes - pos;
  return true;
}

bool TruncateFile(const std::string& path, uint64_t bytes, std::string* error) {
  if (::truncate(path.c_str(), static_cast<off_t>(bytes)) != 0) {
    SetError(error, "truncate '" + path + "'");
    return false;
  }
  return true;
}

}  // namespace recovery
}  // namespace dytis
