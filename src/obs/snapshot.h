// StatsSnapshot: a cheap, plain-struct view of a DyTIS instance's counters
// and live structural gauges, taken at one point in time.
//
// The counters come from DyTISStats (relaxed-atomic copies); the gauges walk
// the index under its read locks (segment count, directory size, stash
// occupancy, load factor) and read /proc for resident memory.  Taking a
// snapshot costs one pass over the segments — fine between bench phases,
// not meant for per-operation use.
#ifndef DYTIS_SRC_OBS_SNAPSHOT_H_
#define DYTIS_SRC_OBS_SNAPSHOT_H_

#include <cstdint>

#include "src/core/stats.h"
#include "src/sync/ebr.h"
#include "src/util/json.h"
#include "src/util/memory_usage.h"

namespace dytis {
namespace obs {

struct StatsSnapshot {
  // Structural-operation counters (plain copies of DyTISStats).
  DyTISStatsView counters;

  // Live gauges.
  uint64_t num_keys = 0;
  uint64_t num_segments = 0;
  uint64_t directory_entries = 0;  // sum of 2^GD over the first-level tables
  uint64_t stash_entries = 0;      // total overflow-stash occupancy
  uint64_t bucket_slots = 0;       // total key/value capacity of all buckets
  int max_global_depth = 0;        // deepest first-level table
  double load_factor = 0.0;        // num_keys / bucket_slots
  uint64_t index_bytes = 0;        // index.MemoryBytes() (structure only)
  uint64_t resident_bytes = 0;     // process VmRSS at snapshot time

  // Epoch-based reclamation (thread-safe builds; zeroes otherwise).
  // Retire-site counters come from DyTISStats; epoch/backlog/freed state
  // from the index's EpochDomain (src/sync/ebr.h).
  uint64_t epoch = 0;               // current global epoch
  uint64_t retired_pending = 0;     // objects awaiting reclamation
  uint64_t retired_total = 0;       // objects ever retired to the domain
  uint64_t reclaimed_total = 0;     // objects freed so far
  uint64_t epoch_advances = 0;      // successful global-epoch increments
  uint64_t epoch_slots = 0;         // registered reader slots

  JsonValue ToJson() const {
    JsonValue root = JsonValue::Object();
    JsonValue& c = root["structural"];
    c["splits"] = counters.splits;
    c["expansions"] = counters.expansions;
    c["remappings"] = counters.remappings;
    c["remap_failures"] = counters.remap_failures;
    c["doublings"] = counters.doublings;
    c["merges"] = counters.merges;
    c["expand_failures"] = counters.expand_failures;
    c["stash_inserts"] = counters.stash_inserts;
    c["structural_exhaustions"] = counters.structural_exhaustions;
    c["retry_exhaustions"] = counters.retry_exhaustions;
    c["stash_bound_growths"] = counters.stash_bound_growths;
    c["hard_errors"] = counters.hard_errors;
    c["injected_faults"] = counters.injected_faults;
    JsonValue& t = root["structural_ns"];
    t["split_ns"] = counters.split_ns;
    t["expansion_ns"] = counters.expansion_ns;
    t["remap_ns"] = counters.remap_ns;
    t["doubling_ns"] = counters.doubling_ns;
    JsonValue& r = root["read"];
    r["optimistic_retries"] = counters.optimistic_read_retries;
    r["fallback_locks"] = counters.optimistic_read_fallbacks;
    JsonValue& e = root["reclamation"];
    e["cores_retired"] = counters.cores_retired;
    e["segments_retired"] = counters.segments_retired;
    e["directories_retired"] = counters.directories_retired;
    e["dir_exclusive_acquisitions"] = counters.dir_exclusive_acquisitions;
    e["epoch"] = epoch;
    e["retired_pending"] = retired_pending;
    e["retired_total"] = retired_total;
    e["reclaimed_total"] = reclaimed_total;
    e["epoch_advances"] = epoch_advances;
    e["epoch_slots"] = epoch_slots;
    JsonValue& g = root["gauges"];
    g["num_keys"] = num_keys;
    g["num_segments"] = num_segments;
    g["directory_entries"] = directory_entries;
    g["stash_entries"] = stash_entries;
    g["bucket_slots"] = bucket_slots;
    g["max_global_depth"] = max_global_depth;
    g["load_factor"] = load_factor;
    g["index_bytes"] = index_bytes;
    g["resident_bytes"] = resident_bytes;
    return root;
  }
};

// Builds a snapshot from any BasicDyTIS instantiation (or an adapter's
// underlying index) via its public accessors.
template <typename IndexT>
StatsSnapshot TakeSnapshot(const IndexT& index) {
  StatsSnapshot snap;
  snap.counters = index.stats().View();
  snap.num_keys = index.size();
  snap.num_segments = index.NumSegments();
  snap.directory_entries = index.DirectoryEntries();
  snap.stash_entries = index.StashEntries();
  snap.bucket_slots = index.BucketSlots();
  snap.max_global_depth = index.MaxGlobalDepth();
  snap.load_factor =
      snap.bucket_slots > 0
          ? static_cast<double>(snap.num_keys) /
                static_cast<double>(snap.bucket_slots)
          : 0.0;
  snap.index_bytes = index.MemoryBytes();
  snap.resident_bytes = CurrentRssBytes();
  // Reclamation gauges exist only on index types that expose an epoch
  // domain (BasicDyTIS; adapters that forward EpochInfo).  Other IndexT
  // instantiations — baselines, raw adapters — leave them zero.
  if constexpr (requires { index.EpochInfo(); }) {
    const EpochStats es = index.EpochInfo();
    snap.epoch = es.epoch;
    snap.retired_pending = es.retired_pending;
    snap.retired_total = es.retired_total;
    snap.reclaimed_total = es.reclaimed_total;
    snap.epoch_advances = es.advances;
    snap.epoch_slots = es.slots;
  }
  return snap;
}

}  // namespace obs
}  // namespace dytis

#endif  // DYTIS_SRC_OBS_SNAPSHOT_H_
