// Structure-health telemetry for DyTIS (observability layer).
//
// A HealthReport is the pull-based sensor surface the self-tuning and
// degradation-detection work consumes (ROADMAP items 3 and 5): per-segment
// PLR model error, stash pressure, bucket load-factor distribution, remap
// collision rate, structural-operation cadence, epoch-reclamation lag, and
// WAL latency — all the quantities that degrade under dynamic or
// adversarial key streams before throughput visibly does.
//
// Collection model: HealthReport is assembled on demand by
// DyTIS::HealthReport() (src/core/dytis.h), which walks every segment under
// the same shared-lock discipline the existing gauges (StashEntries,
// BucketSlots) use and asks each segment to fill a SegmentHealth record.
// One collection costs one ordered pass over the stored keys — fine between
// bench phases or on an aggregator cadence, not meant for per-operation
// use.  Because collection is pull-based it works in DYTIS_OBS=OFF builds
// too (like the tracer class, the *types* always exist); only push-side
// hot-path hooks (WAL latency histograms, structural traces) compile out,
// and the report's `obs_enabled` flag records which build produced it.
//
// Surfaces:
//   * HealthReport::ToJson()/ToText() — machine- and human-readable dumps.
//   * HealthAggregator — optional background thread that re-collects on a
//     configurable cadence, publishes headline gauges into the global
//     MetricsRegistry, and (optionally) installs a SIGUSR1 handler so a live
//     process can be asked for an on-demand dump.
#ifndef DYTIS_SRC_OBS_HEALTH_H_
#define DYTIS_SRC_OBS_HEALTH_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/stats.h"
#include "src/sync/ebr.h"
#include "src/util/json.h"

namespace dytis {
namespace obs {

// Distribution of the learned remap function's in-bucket position error:
// for a key stored at slot i of a bucket holding n entries, the model
// predicts slot `permille * n / 1000` (the same hint the exponential
// in-bucket search starts from), and the error is |predicted - i| slots.
// Errors are binned logarithmically: bin 0 = exact, bin k = error in
// [2^(k-1), 2^k) for k >= 1, last bin = everything larger.
struct PlrErrorStats {
  static constexpr size_t kBins = 8;

  uint64_t samples = 0;    // bucket-resident keys measured
  uint64_t error_sum = 0;  // sum of per-key slot errors
  uint64_t max_error = 0;
  std::array<uint64_t, kBins> error_hist{};

  void Record(uint64_t error) {
    samples++;
    error_sum += error;
    if (error > max_error) {
      max_error = error;
    }
    size_t bin = 0;
    while (bin + 1 < kBins && error >= (uint64_t{1} << bin)) {
      bin++;
    }
    error_hist[bin]++;
  }

  void Merge(const PlrErrorStats& other) {
    samples += other.samples;
    error_sum += other.error_sum;
    if (other.max_error > max_error) {
      max_error = other.max_error;
    }
    for (size_t i = 0; i < kBins; i++) {
      error_hist[i] += other.error_hist[i];
    }
  }

  double MeanError() const {
    return samples > 0
               ? static_cast<double>(error_sum) / static_cast<double>(samples)
               : 0.0;
  }
};

// Bucket fill-level histogram: bin = floor(10 * size / capacity), so bins
// 0..9 are fill deciles and bin 10 is exactly-full buckets (the ones whose
// next insert triggers a structural operation).
inline constexpr size_t kFillBins = 11;
using FillHistogram = std::array<uint64_t, kFillBins>;

// Health of one segment, filled under that segment's scan lock
// (Segment::FillHealth in src/core/segment.h).
struct SegmentHealth {
  uint32_t table_id = 0;  // owning first-level EH table
  // First EH-local key the segment's directory run covers: a stable segment
  // identity for the degradation detectors' hysteresis.  Survives directory
  // doubling (the run start scales with the directory); a split assigns the
  // upper child a fresh identity, which deliberately restarts its hysteresis.
  // Also the handle EhTable::RepairSegmentAt uses to re-locate the segment.
  uint64_t range_start = 0;
  int local_depth = 0;
  uint64_t num_keys = 0;  // bucket + stash residents
  uint32_t num_buckets = 0;
  uint32_t bucket_capacity = 0;
  uint32_t full_buckets = 0;
  uint64_t stash_size = 0;
  uint64_t stash_bound = 0;
  double utilization = 0.0;  // num_keys / (num_buckets * capacity)
  PlrErrorStats plr;
  FillHistogram fill_hist{};

  JsonValue ToJson() const;
};

// Per-first-level-table aggregate (EhTable::CollectTableHealth).
struct TableHealth {
  uint32_t table_id = 0;
  int global_depth = 0;
  uint64_t directory_entries = 0;
  uint64_t num_segments = 0;
  uint64_t num_keys = 0;
  uint64_t stash_entries = 0;
  int min_local_depth = 0;
  int max_local_depth = 0;

  JsonValue ToJson() const;
};

// Count/percentile summary of one registry histogram (WAL latency gauges).
struct LatencyGauge {
  uint64_t count = 0;
  double mean_ns = 0.0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

struct HealthReport {
  // Build + collection provenance.
  bool obs_enabled = false;  // DYTIS_OBS_ENABLED of the producing build
  uint64_t collected_ns = 0; // NowNanos() at collection
  uint64_t uptime_ns = 0;    // ns since the index was constructed

  // Whole-index gauges (same definitions as obs::StatsSnapshot).
  uint64_t num_keys = 0;
  uint64_t num_segments = 0;
  uint64_t directory_entries = 0;
  uint64_t stash_entries = 0;
  uint64_t bucket_slots = 0;
  int max_global_depth = 0;
  double load_factor = 0.0;
  uint64_t index_bytes = 0;

  // Structural counters (relaxed-atomic copies of DyTISStats).
  DyTISStatsView counters;

  // Derived signals (FinalizeHealthReport):
  //   remap_collision_rate — remap failures over remap attempts; rises when
  //     the learned CDF stops fitting the keys (the retrain trigger signal).
  //   stash_rate — stash residents over stored keys; nonzero only after
  //     structural repair was exhausted somewhere.
  //   *_per_sec — structural-operation cadence over the index's uptime.
  double remap_collision_rate = 0.0;
  double stash_rate = 0.0;
  double splits_per_sec = 0.0;
  double expansions_per_sec = 0.0;
  double remaps_per_sec = 0.0;
  double doublings_per_sec = 0.0;

  // Epoch-based reclamation (zeroes on single-threaded builds).
  EpochStats ebr;

  // WAL latency (from the global MetricsRegistry histograms recorded by
  // src/recovery/wal.cc; all-zero when no WAL ran or DYTIS_OBS=OFF).
  LatencyGauge wal_append;
  LatencyGauge wal_fsync;

  // Cross-segment aggregates (FinalizeHealthReport folds `segments`).
  PlrErrorStats plr;
  FillHistogram fill_hist{};
  uint64_t full_buckets = 0;
  uint64_t max_stash_depth = 0;  // deepest single-segment stash

  std::vector<TableHealth> tables;
  std::vector<SegmentHealth> segments;

  // Serialisation.  `include_segments` drops the per-segment array (the
  // aggregates stay) for compact periodic publishing.
  JsonValue ToJson(bool include_segments = true) const;
  std::string ToText() const;
};

// Stamps provenance (obs_enabled, collected_ns).  Collection entry point —
// DyTIS::HealthReport() calls this first, then fills gauges/counters/
// segments, then calls FinalizeHealthReport.
HealthReport BeginHealthReport();

// Computes the derived rates and cross-segment aggregates from the raw
// fields, and reads the WAL latency gauges out of the global
// MetricsRegistry.  Idempotent over the aggregate fields (they are
// recomputed from scratch).
void FinalizeHealthReport(HealthReport* report);

// Background health publisher.  Re-collects via the provided callback on a
// fixed cadence, publishes headline "health.*" gauges into
// MetricsRegistry::Global(), and optionally owns the process SIGUSR1
// handler for on-demand dumps (async-signal-safe: the handler only bumps an
// atomic; the aggregator thread notices and writes the dump).
//
// One live process should run at most one aggregator with
// `install_sigusr1`; the previous disposition is restored on Stop().
class HealthAggregator {
 public:
  struct Options {
    // Re-collection cadence.
    std::chrono::milliseconds interval{1000};
    // Publish headline gauges into MetricsRegistry::Global() per snapshot.
    bool publish_metrics = true;
    // Install a SIGUSR1 handler; each delivery triggers one dump.
    bool install_sigusr1 = false;
    // Dump target for SIGUSR1 (appended); empty = stderr.
    std::string dump_path;
    // Include the per-segment array in SIGUSR1 dumps.
    bool dump_segments = false;
  };

  HealthAggregator(std::function<HealthReport()> collect, Options options);
  ~HealthAggregator();

  HealthAggregator(const HealthAggregator&) = delete;
  HealthAggregator& operator=(const HealthAggregator&) = delete;

  // Joins the background thread (idempotent).  Restores the previous
  // SIGUSR1 disposition if this aggregator installed one.
  void Stop();

  // Latest report (copy).  Zero-value report until the first collection.
  HealthReport Latest() const;

  uint64_t snapshots() const {
    return snapshots_.load(std::memory_order_relaxed);
  }
  uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  void PublishGauges(const HealthReport& report);
  void WriteDump(const HealthReport& report);

  std::function<HealthReport()> collect_;
  Options options_;
  std::atomic<uint64_t> snapshots_{0};
  std::atomic<uint64_t> dumps_{0};
  uint64_t sigusr1_seen_ = 0;  // aggregator-thread-local signal watermark

  mutable std::mutex mutex_;  // guards latest_ + stop cv
  std::condition_variable cv_;
  bool stop_ = false;
  bool installed_signal_ = false;
  HealthReport latest_;
  std::thread thread_;
};

}  // namespace obs
}  // namespace dytis

#endif  // DYTIS_SRC_OBS_HEALTH_H_
