#include "src/obs/metrics.h"

#include <cstdio>
#include <cstdlib>

namespace dytis {
namespace obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::CheckKindCollision(const std::string& name,
                                         const char* kind, bool in_counters,
                                         bool in_gauges, bool in_histograms) {
  if (!in_counters && !in_gauges && !in_histograms) {
    return;
  }
  kind_collisions_.fetch_add(1, std::memory_order_relaxed);
  const char* existing = in_counters   ? "counter"
                         : in_gauges   ? "gauge"
                                       : "histogram";
  std::fprintf(stderr,
               "metrics: name '%s' re-registered as a %s but already exists "
               "as a %s -- the exports will carry two metrics under one "
               "name\n",
               name.c_str(), kind, existing);
#ifndef NDEBUG
  std::abort();
#endif
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    CheckKindCollision(name, "counter", false, gauges_.count(name) > 0,
                       histograms_.count(name) > 0);
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    CheckKindCollision(name, "gauge", counters_.count(name) > 0, false,
                       histograms_.count(name) > 0);
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    CheckKindCollision(name, "histogram", counters_.count(name) > 0,
                       gauges_.count(name) > 0, false);
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue root = JsonValue::Object();
  JsonValue& counters = root["counters"];
  counters = JsonValue::Object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter->Value();
  }
  JsonValue& gauges = root["gauges"];
  gauges = JsonValue::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = gauge->Value();
  }
  JsonValue& histograms = root["histograms"];
  histograms = JsonValue::Object();
  for (const auto& [name, histogram] : histograms_) {
    const LatencyRecorder rec = histogram->Snapshot();
    JsonValue& h = histograms[name];
    h["count"] = rec.count();
    h["mean"] = rec.MeanNanos();
    h["min"] = rec.MinNanos();
    h["max"] = rec.MaxNanos();
    h["p50"] = rec.PercentileNanos(0.50);
    h["p99"] = rec.PercentileNanos(0.99);
    h["p9999"] = rec.PercentileNanos(0.9999);
  }
  return root;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  kind_collisions_.store(0, std::memory_order_relaxed);
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace obs
}  // namespace dytis
