#include "src/obs/metrics.h"

namespace dytis {
namespace obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue root = JsonValue::Object();
  JsonValue& counters = root["counters"];
  counters = JsonValue::Object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter->Value();
  }
  JsonValue& gauges = root["gauges"];
  gauges = JsonValue::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = gauge->Value();
  }
  JsonValue& histograms = root["histograms"];
  histograms = JsonValue::Object();
  for (const auto& [name, histogram] : histograms_) {
    const LatencyRecorder rec = histogram->Snapshot();
    JsonValue& h = histograms[name];
    h["count"] = rec.count();
    h["mean"] = rec.MeanNanos();
    h["min"] = rec.MinNanos();
    h["max"] = rec.MaxNanos();
    h["p50"] = rec.PercentileNanos(0.50);
    h["p99"] = rec.PercentileNanos(0.99);
    h["p9999"] = rec.PercentileNanos(0.9999);
  }
  return root;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace obs
}  // namespace dytis
