// Structural-event tracer for the DyTIS core (observability layer).
//
// Every structural operation of Algorithm 1 (split / expansion / remapping /
// directory doubling / merge) plus the degradation events (injected faults,
// overflow-stash inserts) is recorded as a TraceEvent with begin/end
// timestamps, the owning first-level table, and the segment's depth.  The
// recording path is lock-free: each thread writes to its own fixed-capacity
// ring buffer, so a structural operation never blocks on another thread's
// tracing.  When a ring wraps, the oldest events are overwritten and counted
// in dropped_events() — tracing degrades, it never stalls the index.
//
// Exports:
//   * ChromeTraceJson() — a `trace_event`-format JSON document loadable in
//     chrome://tracing / https://ui.perfetto.dev (one row per recording
//     thread, one "X" slice per structural operation).
//   * TextLog() — a compact line-per-event log for terminals and grep.
//
// Lifecycle contract: Record() may be called concurrently from any number of
// threads while enabled; Collect/Export/Clear must only run when no thread
// is concurrently recording (after Disable() + joining workload threads, or
// single-threaded).  This keeps the writer path free of synchronisation.
//
// Compile-time gate: building with -DDYTIS_OBS=OFF (CMake) defines
// DYTIS_OBS_ENABLED=0, which turns the DYTIS_OBS_TRACE macro used by the
// core into a no-op — the tracer code vanishes from the insert path
// entirely.  The tracer class itself stays available so exporters and tests
// still link; it simply never sees events.
#ifndef DYTIS_SRC_OBS_TRACE_H_
#define DYTIS_SRC_OBS_TRACE_H_

#ifndef DYTIS_OBS_ENABLED
#define DYTIS_OBS_ENABLED 1
#endif

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dytis {
namespace obs {

// One entry per DyTISStats structural counter that the tracer mirrors (the
// trace/stats equivalence is asserted by the test suite), plus the
// durability-lifecycle events recorded by src/recovery/ (checkpoint writes,
// WAL replay, whole recoveries).
enum class TraceOp : uint8_t {
  kSplit = 0,
  kExpansion,
  kRemap,
  kDoubling,
  kMerge,
  kFault,
  kStashInsert,
  kCheckpoint,
  kWalReplay,
  kRecovery,
  // Epoch-based reclamation pass (src/sync/ebr.h) that actually freed
  // retired objects; `depth` carries the number freed.
  kEpochReclaim,
  // Online degradation repair (EhTable::RepairSegmentAt): quarantine +
  // salted retrain of a degraded segment, or its split escalation.
  kMitigation,
  // One per-shard request batch executed by a serving-pipeline worker
  // (src/server/server.h); `table_id` carries the shard index and `depth`
  // the batch size, so a trace shows per-shard service slices under load.
  kServerBatch,
};
inline constexpr int kNumTraceOps = 13;

const char* TraceOpName(TraceOp op);

struct TraceEvent {
  uint64_t begin_ns = 0;  // NowNanos() at operation start
  uint64_t end_ns = 0;    // NowNanos() at operation end (== begin: instant)
  uint32_t table_id = 0;  // first-level EH table index
  uint32_t thread_id = 0; // tracer-assigned recording-thread id
  int32_t depth = -1;     // segment local depth (or global depth; -1 n/a)
  TraceOp op = TraceOp::kSplit;
};

// Fixed-capacity single-writer ring.  The owning thread pushes; readers only
// look after quiescence (see the lifecycle contract above).
class TraceRing {
 public:
  TraceRing(size_t capacity, uint32_t thread_id)
      : events_(capacity), thread_id_(thread_id) {}

  void Push(const TraceEvent& e) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    events_[h % events_.size()] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  uint32_t thread_id() const { return thread_id_; }
  // Events overwritten by ring wrap-around.
  uint64_t dropped() const {
    const uint64_t h = head_.load(std::memory_order_acquire);
    return h > events_.size() ? h - events_.size() : 0;
  }
  // Retained events, oldest first.
  void CollectInto(std::vector<TraceEvent>* out) const;

 private:
  std::vector<TraceEvent> events_;
  std::atomic<uint64_t> head_{0};
  uint32_t thread_id_;
};

class StructuralTracer {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 16;

  // Process-wide tracer instance the DYTIS_OBS_TRACE macro records into.
  static StructuralTracer& Global();

  StructuralTracer() = default;
  StructuralTracer(const StructuralTracer&) = delete;
  StructuralTracer& operator=(const StructuralTracer&) = delete;

  // Starts recording.  Existing rings are kept (Enable after Disable
  // resumes); call Clear() first for a fresh session.
  void Enable(size_t ring_capacity = kDefaultRingCapacity);
  void Disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all recorded events and rings.  Quiescence required.
  void Clear();

  // Hot-path entry (only structural operations reach it, so the cost is a
  // relaxed load when tracing is off and a ring push when on).
  void Record(TraceOp op, uint64_t begin_ns, uint64_t end_ns,
              uint32_t table_id, int32_t depth) {
#if DYTIS_OBS_ENABLED
    if (!enabled_.load(std::memory_order_relaxed)) {
      return;
    }
    RecordImpl(op, begin_ns, end_ns, table_id, depth);
#else
    (void)op;
    (void)begin_ns;
    (void)end_ns;
    (void)table_id;
    (void)depth;
#endif
  }

  // --- Quiescent-side API -------------------------------------------------

  // All retained events across every ring, sorted by begin timestamp.
  std::vector<TraceEvent> Collect() const;

  // Retained-event count per TraceOp (indexed by the enum value).
  std::array<uint64_t, kNumTraceOps> EventCounts() const;

  // Events lost to ring wrap-around across all rings.
  uint64_t dropped_events() const;

  // Per-ring drop detail: one (thread_id, dropped) pair per recording ring,
  // drops-only rings included.  For pinpointing *which* thread's structural
  // stream outran its ring.
  std::vector<std::pair<uint32_t, uint64_t>> DroppedPerThread() const;

  // Publishes the drop gauges into MetricsRegistry::Global()
  // ("trace.dropped_events", "trace.threads") and returns the total drop
  // count.  Called by the bench exporters at session end so truncation is
  // visible in the metrics dump, not only inside the trace file.
  uint64_t PublishDroppedEvents() const;

  // Number of threads that have recorded since the last Clear().
  size_t num_threads() const;

  // Chrome trace_event JSON ("X" duration slices; ts/dur in microseconds).
  std::string ChromeTraceJson() const;

  // Compact text log: one "begin_ns op dur_ns table=.. depth=.. tid=.." line
  // per event.
  std::string TextLog() const;

  // Writes the given export to `path`.  Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;
  bool WriteTextLog(const std::string& path) const;

 private:
  void RecordImpl(TraceOp op, uint64_t begin_ns, uint64_t end_ns,
                  uint32_t table_id, int32_t depth);
  TraceRing* RingForThisThread();

  std::atomic<bool> enabled_{false};
  // Bumped on Clear() so cached thread-local ring pointers are re-resolved.
  std::atomic<uint64_t> epoch_{1};
  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  size_t ring_capacity_ = kDefaultRingCapacity;
};

}  // namespace obs
}  // namespace dytis

// Core-side tracing hook.  Compiles to nothing with -DDYTIS_OBS=OFF.
#if DYTIS_OBS_ENABLED
#define DYTIS_OBS_TRACE(op, begin_ns, end_ns, table_id, depth)             \
  ::dytis::obs::StructuralTracer::Global().Record((op), (begin_ns),        \
                                                  (end_ns), (table_id),    \
                                                  (depth))
#else
#define DYTIS_OBS_TRACE(op, begin_ns, end_ns, table_id, depth) \
  do {                                                         \
  } while (false)
#endif

#endif  // DYTIS_SRC_OBS_TRACE_H_
