// Hardware performance counters via perf_event_open(2).
//
// Opens four per-process counters — CPU cycles, retired instructions,
// last-level-cache misses, branch misses — with `inherit` set, so threads
// spawned after the open (the bench worker pools) are counted too.  The
// bench binaries wrap each measured phase in a PerfRegion and attach the
// delta to the phase's JSON row, turning "throughput moved" into "IPC
// dropped / LLC misses doubled".
//
// Graceful degradation is the contract, not an afterthought: containers and
// CI hosts routinely deny the syscall (perf_event_paranoid, seccomp, or a
// kernel without PMU access), and individual events can be unsupported on a
// given machine (no LLC event in many VMs).  Every failure mode degrades to
// an explicit marker — available() turns false (or a single counter reads
// as absent), unavailable_reason() says why, and ToJson() emits a
// `perf_unavailable` marker instead of numbers — never an error exit.
//
// Not gated by DYTIS_OBS: these are bench-harness-side counters, not index
// instrumentation; there is no hot-path cost to compile out (reading a
// counter is two read(2) calls per *phase*).
#ifndef DYTIS_SRC_OBS_PERF_COUNTERS_H_
#define DYTIS_SRC_OBS_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

#include "src/util/json.h"

namespace dytis {
namespace obs {

// One reading (cumulative or delta).  A counter that could not be opened is
// absent (-1); `available` is true when at least one counter is live.
struct PerfSample {
  bool available = false;
  std::string unavailable_reason;  // set when !available
  int64_t cycles = -1;
  int64_t instructions = -1;
  int64_t llc_misses = -1;
  int64_t branch_misses = -1;

  // Instructions per cycle; 0 when either counter is absent.
  double Ipc() const {
    return (cycles > 0 && instructions >= 0)
               ? static_cast<double>(instructions) /
                     static_cast<double>(cycles)
               : 0.0;
  }

  // {"cycles": ..., "instructions": ..., "ipc": ...} with only the live
  // counters present, or {"perf_unavailable": true, "reason": ...}.
  JsonValue ToJson() const;
};

class PerfCounters {
 public:
  // Process-wide instance, opened once on first use (counters run for the
  // process lifetime; PerfRegion reads deltas).
  static PerfCounters& Global();

  PerfCounters();
  // Test hook: constructs in the unavailable state without touching the
  // syscall, so the fallback path is exercised deterministically.
  explicit PerfCounters(bool force_disabled);
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  bool available() const { return available_; }
  const std::string& unavailable_reason() const {
    return unavailable_reason_;
  }

  // Cumulative counts since open.
  PerfSample Read() const;

  static constexpr int kNumCounters = 4;  // cycles, instrs, LLC, branch

 private:
  void OpenAll();

  int fds_[kNumCounters] = {-1, -1, -1, -1};
  bool available_ = false;
  std::string unavailable_reason_;
};

// Scoped sampler: captures the counters at construction; Delta() returns
// the consumption since then.  Copyable-cheap to construct even when the
// counters are unavailable (two no-op reads).
class PerfRegion {
 public:
  explicit PerfRegion(const PerfCounters& counters = PerfCounters::Global())
      : counters_(&counters), start_(counters.Read()) {}

  PerfSample Delta() const;

  // Delta as JSON (or the perf_unavailable marker).
  JsonValue ToJson() const { return Delta().ToJson(); }

 private:
  const PerfCounters* counters_;
  PerfSample start_;
};

}  // namespace obs
}  // namespace dytis

#endif  // DYTIS_SRC_OBS_PERF_COUNTERS_H_
