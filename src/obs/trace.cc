#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/metrics.h"

namespace dytis {
namespace obs {

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kSplit:
      return "split";
    case TraceOp::kExpansion:
      return "expansion";
    case TraceOp::kRemap:
      return "remap";
    case TraceOp::kDoubling:
      return "doubling";
    case TraceOp::kMerge:
      return "merge";
    case TraceOp::kFault:
      return "fault";
    case TraceOp::kStashInsert:
      return "stash_insert";
    case TraceOp::kCheckpoint:
      return "checkpoint";
    case TraceOp::kWalReplay:
      return "wal_replay";
    case TraceOp::kRecovery:
      return "recovery";
    case TraceOp::kEpochReclaim:
      return "epoch_reclaim";
    case TraceOp::kMitigation:
      return "mitigation";
    case TraceOp::kServerBatch:
      return "server_batch";
  }
  return "?";
}

void TraceRing::CollectInto(std::vector<TraceEvent>* out) const {
  const uint64_t h = head_.load(std::memory_order_acquire);
  const uint64_t n = std::min<uint64_t>(h, events_.size());
  const uint64_t first = h - n;  // oldest retained sequence number
  for (uint64_t i = 0; i < n; i++) {
    out->push_back(events_[(first + i) % events_.size()]);
  }
}

StructuralTracer& StructuralTracer::Global() {
  static StructuralTracer* tracer = new StructuralTracer();
  return *tracer;
}

void StructuralTracer::Enable(size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  }
  enabled_.store(true, std::memory_order_release);
}

void StructuralTracer::Clear() {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  rings_.clear();
  // Invalidate every thread's cached ring pointer.
  epoch_.fetch_add(1, std::memory_order_release);
}

TraceRing* StructuralTracer::RingForThisThread() {
  struct Cached {
    StructuralTracer* owner = nullptr;
    uint64_t epoch = 0;
    TraceRing* ring = nullptr;
  };
  static thread_local Cached cached;
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (cached.owner == this && cached.epoch == epoch) {
    return cached.ring;
  }
  std::lock_guard<std::mutex> lock(rings_mutex_);
  rings_.push_back(std::make_unique<TraceRing>(
      ring_capacity_, static_cast<uint32_t>(rings_.size())));
  cached = {this, epoch, rings_.back().get()};
  return cached.ring;
}

void StructuralTracer::RecordImpl(TraceOp op, uint64_t begin_ns,
                                  uint64_t end_ns, uint32_t table_id,
                                  int32_t depth) {
  TraceEvent e;
  e.begin_ns = begin_ns;
  e.end_ns = end_ns;
  e.table_id = table_id;
  e.depth = depth;
  e.op = op;
  TraceRing* ring = RingForThisThread();
  e.thread_id = ring->thread_id();
  ring->Push(e);
}

std::vector<TraceEvent> StructuralTracer::Collect() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const auto& ring : rings_) {
      ring->CollectInto(&events);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin_ns < b.begin_ns;
            });
  return events;
}

std::array<uint64_t, kNumTraceOps> StructuralTracer::EventCounts() const {
  std::array<uint64_t, kNumTraceOps> counts{};
  std::lock_guard<std::mutex> lock(rings_mutex_);
  std::vector<TraceEvent> events;
  for (const auto& ring : rings_) {
    events.clear();
    ring->CollectInto(&events);
    for (const TraceEvent& e : events) {
      counts[static_cast<size_t>(e.op)]++;
    }
  }
  return counts;
}

uint64_t StructuralTracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    dropped += ring->dropped();
  }
  return dropped;
}

std::vector<std::pair<uint32_t, uint64_t>>
StructuralTracer::DroppedPerThread() const {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  std::vector<std::pair<uint32_t, uint64_t>> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) {
    out.emplace_back(ring->thread_id(), ring->dropped());
  }
  return out;
}

uint64_t StructuralTracer::PublishDroppedEvents() const {
  const uint64_t dropped = dropped_events();
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetGauge("trace.dropped_events").Set(static_cast<int64_t>(dropped));
  reg.GetGauge("trace.threads").Set(static_cast<int64_t>(num_threads()));
  return dropped;
}

size_t StructuralTracer::num_threads() const {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  return rings_.size();
}

std::string StructuralTracer::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Collect();
  // Streamed by hand instead of via JsonValue: traces can hold 10^5+ events
  // and the flat format never nests beyond the per-event args object.
  std::string out;
  out.reserve(events.size() * 128 + 256);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[256];
  for (size_t i = 0; i < events.size(); i++) {
    const TraceEvent& e = events[i];
    if (i > 0) {
      out += ",";
    }
    // trace_event "X" (complete) slices; ts/dur are microseconds (double).
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"structural\",\"ph\":\"X\","
        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u,"
        "\"args\":{\"table\":%u,\"depth\":%d}}",
        TraceOpName(e.op), static_cast<double>(e.begin_ns) / 1e3,
        static_cast<double>(e.end_ns - e.begin_ns) / 1e3, e.thread_id,
        e.table_id, e.depth);
    out += buf;
  }
  out += "],\"otherData\":{\"source\":\"dytis structural tracer\",";
  out += "\"dropped_events\":" + std::to_string(dropped_events());
  // Per-ring detail so a truncated trace names the thread that overflowed.
  out += ",\"dropped_per_thread\":{";
  bool first = true;
  for (const auto& [tid, dropped] : DroppedPerThread()) {
    if (dropped == 0) {
      continue;
    }
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + std::to_string(tid) + "\":" + std::to_string(dropped);
  }
  out += "}}}";
  return out;
}

std::string StructuralTracer::TextLog() const {
  const std::vector<TraceEvent> events = Collect();
  std::string out;
  out.reserve(events.size() * 64);
  char buf[160];
  for (const TraceEvent& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "%llu %-12s dur_ns=%llu table=%u depth=%d tid=%u\n",
                  static_cast<unsigned long long>(e.begin_ns), TraceOpName(e.op),
                  static_cast<unsigned long long>(e.end_ns - e.begin_ns),
                  e.table_id, e.depth, e.thread_id);
    out += buf;
  }
  // Truncation footer: a retained-events log that silently lost its oldest
  // entries reads as "nothing happened early on", which is worse than no
  // log at all.
  const uint64_t dropped = dropped_events();
  if (dropped > 0) {
    std::snprintf(buf, sizeof(buf),
                  "# dropped_events=%llu (oldest events overwritten by ring "
                  "wrap-around)\n",
                  static_cast<unsigned long long>(dropped));
    out += buf;
  }
  return out;
}

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  return ok;
}

}  // namespace

bool StructuralTracer::WriteChromeTrace(const std::string& path) const {
  return WriteFile(path, ChromeTraceJson());
}

bool StructuralTracer::WriteTextLog(const std::string& path) const {
  return WriteFile(path, TextLog());
}

}  // namespace obs
}  // namespace dytis
