#include "src/obs/health.h"

#include <csignal>
#include <cstdio>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"  // DYTIS_OBS_ENABLED default
#include "src/util/timer.h"

namespace dytis {
namespace obs {

namespace {

JsonValue PlrJson(const PlrErrorStats& plr) {
  JsonValue j = JsonValue::Object();
  j["samples"] = plr.samples;
  j["mean_error"] = plr.MeanError();
  j["max_error"] = plr.max_error;
  JsonValue hist = JsonValue::Array();
  for (uint64_t bin : plr.error_hist) {
    hist.Append(bin);
  }
  j["error_hist_log2"] = std::move(hist);
  return j;
}

JsonValue FillJson(const FillHistogram& hist) {
  JsonValue a = JsonValue::Array();
  for (uint64_t bin : hist) {
    a.Append(bin);
  }
  return a;
}

JsonValue LatencyGaugeJson(const LatencyGauge& g) {
  JsonValue j = JsonValue::Object();
  j["count"] = g.count;
  j["mean_ns"] = g.mean_ns;
  j["p50_ns"] = g.p50_ns;
  j["p99_ns"] = g.p99_ns;
  j["max_ns"] = g.max_ns;
  return j;
}

LatencyGauge ReadLatencyGauge(const std::string& name) {
  // Find-or-create is fine here: an absent histogram reads back as all-zero,
  // which is exactly the "no WAL ran in this process" value.
  const LatencyRecorder rec =
      MetricsRegistry::Global().GetHistogram(name).Snapshot();
  LatencyGauge g;
  g.count = rec.count();
  g.mean_ns = rec.MeanNanos();
  g.p50_ns = rec.PercentileNanos(0.50);
  g.p99_ns = rec.PercentileNanos(0.99);
  g.max_ns = rec.MaxNanos();
  return g;
}

}  // namespace

JsonValue SegmentHealth::ToJson() const {
  JsonValue j = JsonValue::Object();
  j["table_id"] = table_id;
  j["range_start"] = range_start;
  j["local_depth"] = local_depth;
  j["num_keys"] = num_keys;
  j["num_buckets"] = num_buckets;
  j["bucket_capacity"] = bucket_capacity;
  j["full_buckets"] = full_buckets;
  j["stash_size"] = stash_size;
  j["stash_bound"] = stash_bound;
  j["utilization"] = utilization;
  j["plr"] = PlrJson(plr);
  j["fill_hist"] = FillJson(fill_hist);
  return j;
}

JsonValue TableHealth::ToJson() const {
  JsonValue j = JsonValue::Object();
  j["table_id"] = table_id;
  j["global_depth"] = global_depth;
  j["directory_entries"] = directory_entries;
  j["num_segments"] = num_segments;
  j["num_keys"] = num_keys;
  j["stash_entries"] = stash_entries;
  j["min_local_depth"] = min_local_depth;
  j["max_local_depth"] = max_local_depth;
  return j;
}

HealthReport BeginHealthReport() {
  HealthReport report;
  report.obs_enabled = DYTIS_OBS_ENABLED != 0;
  report.collected_ns = NowNanos();
  return report;
}

void FinalizeHealthReport(HealthReport* report) {
  // Cross-segment aggregates, recomputed from scratch so Finalize is
  // idempotent.
  report->plr = PlrErrorStats{};
  report->fill_hist = FillHistogram{};
  report->full_buckets = 0;
  report->max_stash_depth = 0;
  for (const SegmentHealth& seg : report->segments) {
    report->plr.Merge(seg.plr);
    for (size_t i = 0; i < kFillBins; i++) {
      report->fill_hist[i] += seg.fill_hist[i];
    }
    report->full_buckets += seg.full_buckets;
    if (seg.stash_size > report->max_stash_depth) {
      report->max_stash_depth = seg.stash_size;
    }
  }

  const DyTISStatsView& c = report->counters;
  const uint64_t remap_attempts = c.remappings + c.remap_failures;
  report->remap_collision_rate =
      remap_attempts > 0
          ? static_cast<double>(c.remap_failures) /
                static_cast<double>(remap_attempts)
          : 0.0;
  report->stash_rate =
      report->num_keys > 0
          ? static_cast<double>(report->stash_entries) /
                static_cast<double>(report->num_keys)
          : 0.0;
  const double uptime_sec =
      static_cast<double>(report->uptime_ns) / 1e9;
  if (uptime_sec > 0.0) {
    report->splits_per_sec = static_cast<double>(c.splits) / uptime_sec;
    report->expansions_per_sec =
        static_cast<double>(c.expansions) / uptime_sec;
    report->remaps_per_sec = static_cast<double>(c.remappings) / uptime_sec;
    report->doublings_per_sec =
        static_cast<double>(c.doublings) / uptime_sec;
  }

  report->wal_append = ReadLatencyGauge("wal.append_ns");
  report->wal_fsync = ReadLatencyGauge("wal.fsync_ns");
}

JsonValue HealthReport::ToJson(bool include_segments) const {
  JsonValue root = JsonValue::Object();
  root["obs_enabled"] = obs_enabled;
  root["collected_ns"] = collected_ns;
  root["uptime_ns"] = uptime_ns;

  JsonValue& g = root["gauges"];
  g["num_keys"] = num_keys;
  g["num_segments"] = num_segments;
  g["directory_entries"] = directory_entries;
  g["stash_entries"] = stash_entries;
  g["bucket_slots"] = bucket_slots;
  g["max_global_depth"] = max_global_depth;
  g["load_factor"] = load_factor;
  g["index_bytes"] = index_bytes;
  g["full_buckets"] = full_buckets;
  g["max_stash_depth"] = max_stash_depth;

  JsonValue& s = root["structural"];
  s["splits"] = counters.splits;
  s["expansions"] = counters.expansions;
  s["remappings"] = counters.remappings;
  s["remap_failures"] = counters.remap_failures;
  s["doublings"] = counters.doublings;
  s["merges"] = counters.merges;
  s["expand_failures"] = counters.expand_failures;
  s["stash_inserts"] = counters.stash_inserts;
  s["structural_exhaustions"] = counters.structural_exhaustions;
  s["retry_exhaustions"] = counters.retry_exhaustions;
  s["stash_bound_growths"] = counters.stash_bound_growths;
  s["hard_errors"] = counters.hard_errors;
  s["injected_faults"] = counters.injected_faults;

  JsonValue& d = root["derived"];
  d["remap_collision_rate"] = remap_collision_rate;
  d["stash_rate"] = stash_rate;
  d["splits_per_sec"] = splits_per_sec;
  d["expansions_per_sec"] = expansions_per_sec;
  d["remaps_per_sec"] = remaps_per_sec;
  d["doublings_per_sec"] = doublings_per_sec;

  root["plr"] = PlrJson(plr);
  root["fill_hist"] = FillJson(fill_hist);

  JsonValue& e = root["reclamation"];
  e["epoch"] = ebr.epoch;
  e["epoch_lag"] = ebr.epoch_lag;
  e["retired_pending"] = ebr.retired_pending;
  e["retired_total"] = ebr.retired_total;
  e["reclaimed_total"] = ebr.reclaimed_total;
  e["advances"] = ebr.advances;
  e["advance_failures"] = ebr.advance_failures;
  e["slots"] = ebr.slots;

  JsonValue& w = root["wal"];
  w["append"] = LatencyGaugeJson(wal_append);
  w["fsync"] = LatencyGaugeJson(wal_fsync);

  JsonValue tbl = JsonValue::Array();
  for (const TableHealth& t : tables) {
    tbl.Append(t.ToJson());
  }
  root["tables"] = std::move(tbl);

  if (include_segments) {
    JsonValue segs = JsonValue::Array();
    for (const SegmentHealth& seg : segments) {
      segs.Append(seg.ToJson());
    }
    root["segments"] = std::move(segs);
  }
  return root;
}

std::string HealthReport::ToText() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "DyTIS health @%llu ns (uptime %.1f s, obs %s)\n",
                static_cast<unsigned long long>(collected_ns),
                static_cast<double>(uptime_ns) / 1e9,
                obs_enabled ? "on" : "off");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  keys=%llu segments=%llu dir_entries=%llu load=%.3f "
                "stash=%llu (max/seg=%llu) full_buckets=%llu\n",
                static_cast<unsigned long long>(num_keys),
                static_cast<unsigned long long>(num_segments),
                static_cast<unsigned long long>(directory_entries),
                load_factor, static_cast<unsigned long long>(stash_entries),
                static_cast<unsigned long long>(max_stash_depth),
                static_cast<unsigned long long>(full_buckets));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  plr: samples=%llu mean_err=%.2f max_err=%llu slots\n",
                static_cast<unsigned long long>(plr.samples), plr.MeanError(),
                static_cast<unsigned long long>(plr.max_error));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  structural: splits=%llu expansions=%llu remaps=%llu "
      "doublings=%llu merges=%llu remap_collision_rate=%.4f\n",
      static_cast<unsigned long long>(counters.splits),
      static_cast<unsigned long long>(counters.expansions),
      static_cast<unsigned long long>(counters.remappings),
      static_cast<unsigned long long>(counters.doublings),
      static_cast<unsigned long long>(counters.merges),
      remap_collision_rate);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  cadence/s: split=%.2f expand=%.2f remap=%.2f double=%.2f\n",
      splits_per_sec, expansions_per_sec, remaps_per_sec, doublings_per_sec);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  ebr: epoch=%llu lag=%llu pending=%llu retired=%llu "
      "reclaimed=%llu advances=%llu\n",
      static_cast<unsigned long long>(ebr.epoch),
      static_cast<unsigned long long>(ebr.epoch_lag),
      static_cast<unsigned long long>(ebr.retired_pending),
      static_cast<unsigned long long>(ebr.retired_total),
      static_cast<unsigned long long>(ebr.reclaimed_total),
      static_cast<unsigned long long>(ebr.advances));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  wal: append n=%llu p50=%lluns p99=%lluns | "
      "fsync n=%llu p50=%lluns p99=%lluns\n",
      static_cast<unsigned long long>(wal_append.count),
      static_cast<unsigned long long>(wal_append.p50_ns),
      static_cast<unsigned long long>(wal_append.p99_ns),
      static_cast<unsigned long long>(wal_fsync.count),
      static_cast<unsigned long long>(wal_fsync.p50_ns),
      static_cast<unsigned long long>(wal_fsync.p99_ns));
  out += buf;
  for (const TableHealth& t : tables) {
    // Tables that never left their initial single-segment state are noise
    // at R=9; print only tables carrying keys.
    if (t.num_keys == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "  table %u: gd=%d segs=%llu keys=%llu stash=%llu "
                  "ld=[%d,%d]\n",
                  t.table_id, t.global_depth,
                  static_cast<unsigned long long>(t.num_segments),
                  static_cast<unsigned long long>(t.num_keys),
                  static_cast<unsigned long long>(t.stash_entries),
                  t.min_local_depth, t.max_local_depth);
    out += buf;
  }
  return out;
}

// --- HealthAggregator --------------------------------------------------------

namespace {

// SIGUSR1 plumbing: the handler only bumps a lock-free atomic (the only
// async-signal-safe option); the aggregator thread polls it.
std::atomic<uint64_t> g_sigusr1_count{0};

void SigUsr1Handler(int) {
  g_sigusr1_count.fetch_add(1, std::memory_order_relaxed);
}

struct sigaction g_prev_sigusr1;

}  // namespace

HealthAggregator::HealthAggregator(std::function<HealthReport()> collect,
                                   Options options)
    : collect_(std::move(collect)), options_(std::move(options)) {
  sigusr1_seen_ = g_sigusr1_count.load(std::memory_order_relaxed);
  if (options_.install_sigusr1) {
    struct sigaction sa = {};
    sa.sa_handler = &SigUsr1Handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    installed_signal_ = sigaction(SIGUSR1, &sa, &g_prev_sigusr1) == 0;
  }
  thread_ = std::thread(&HealthAggregator::Loop, this);
}

HealthAggregator::~HealthAggregator() { Stop(); }

void HealthAggregator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  if (installed_signal_) {
    sigaction(SIGUSR1, &g_prev_sigusr1, nullptr);
    installed_signal_ = false;
  }
}

HealthReport HealthAggregator::Latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latest_;
}

void HealthAggregator::Loop() {
  // Wake at least every 100 ms when signal-watching so a SIGUSR1 dump is
  // prompt even with a long collection cadence.
  const auto tick = options_.install_sigusr1
                        ? std::min<std::chrono::milliseconds>(
                              options_.interval,
                              std::chrono::milliseconds(100))
                        : options_.interval;
  auto next_collect = std::chrono::steady_clock::now();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, tick, [this] { return stop_; });
      if (stop_) {
        return;
      }
    }
    const uint64_t sigs = g_sigusr1_count.load(std::memory_order_relaxed);
    const bool dump_requested = installed_signal_ && sigs != sigusr1_seen_;
    const auto now = std::chrono::steady_clock::now();
    if (!dump_requested && now < next_collect) {
      continue;
    }
    sigusr1_seen_ = sigs;
    next_collect = now + options_.interval;
    HealthReport report = collect_();
    if (options_.publish_metrics) {
      PublishGauges(report);
    }
    if (dump_requested) {
      WriteDump(report);
      dumps_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      latest_ = std::move(report);
    }
    snapshots_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HealthAggregator::PublishGauges(const HealthReport& report) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetGauge("health.num_keys").Set(static_cast<int64_t>(report.num_keys));
  reg.GetGauge("health.num_segments")
      .Set(static_cast<int64_t>(report.num_segments));
  reg.GetGauge("health.stash_entries")
      .Set(static_cast<int64_t>(report.stash_entries));
  reg.GetGauge("health.full_buckets")
      .Set(static_cast<int64_t>(report.full_buckets));
  // Gauges are integral; ratios are published in parts-per-million.
  reg.GetGauge("health.load_factor_ppm")
      .Set(static_cast<int64_t>(report.load_factor * 1e6));
  reg.GetGauge("health.remap_collision_rate_ppm")
      .Set(static_cast<int64_t>(report.remap_collision_rate * 1e6));
  reg.GetGauge("health.plr_mean_error_milli")
      .Set(static_cast<int64_t>(report.plr.MeanError() * 1e3));
  reg.GetGauge("health.epoch_lag")
      .Set(static_cast<int64_t>(report.ebr.epoch_lag));
  reg.GetGauge("health.retired_pending")
      .Set(static_cast<int64_t>(report.ebr.retired_pending));
  reg.GetCounter("health.snapshots").Add(1);
}

void HealthAggregator::WriteDump(const HealthReport& report) {
  const std::string text = report.ToText() +
                           report.ToJson(options_.dump_segments).Dump(2) +
                           "\n";
  if (options_.dump_path.empty()) {
    std::fputs(text.c_str(), stderr);
    return;
  }
  FILE* f = std::fopen(options_.dump_path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "health: cannot open dump path '%s'\n",
                 options_.dump_path.c_str());
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

}  // namespace obs
}  // namespace dytis
