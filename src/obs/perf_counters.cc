#include "src/obs/perf_counters.h"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace dytis {
namespace obs {

namespace {

#if defined(__linux__)

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

// Order matches the PerfSample fields read back in PerfCounters::Read().
constexpr EventSpec kEvents[PerfCounters::kNumCounters] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

int OpenEvent(const EventSpec& spec) {
  struct perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;
  // Threads created after the open (bench worker pools) inherit the
  // counter; plain read(2) then returns the sum over the whole tree.
  attr.inherit = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0));
}

#endif  // __linux__

}  // namespace

PerfCounters& PerfCounters::Global() {
  static PerfCounters* counters = new PerfCounters();
  return *counters;
}

PerfCounters::PerfCounters() { OpenAll(); }

PerfCounters::PerfCounters(bool force_disabled) {
  if (force_disabled) {
    unavailable_reason_ = "disabled by caller";
    return;
  }
  OpenAll();
}

void PerfCounters::OpenAll() {
#if defined(__linux__)
  int first_errno = 0;
  for (int i = 0; i < kNumCounters; i++) {
    fds_[i] = OpenEvent(kEvents[i]);
    if (fds_[i] >= 0) {
      available_ = true;
    } else if (first_errno == 0) {
      first_errno = errno;
    }
  }
  if (!available_) {
    // EPERM/EACCES: perf_event_paranoid or a seccomp filter; ENOSYS: kernel
    // without the syscall.  All mean "report the marker, keep benching".
    unavailable_reason_ =
        std::string("perf_event_open failed: ") + std::strerror(first_errno);
  }
#else
  unavailable_reason_ = "perf_event_open is Linux-only";
#endif
}

PerfCounters::~PerfCounters() {
#if defined(__linux__)
  for (int i = 0; i < kNumCounters; i++) {
    if (fds_[i] >= 0) {
      ::close(fds_[i]);
    }
  }
#endif
}

PerfSample PerfCounters::Read() const {
  PerfSample s;
  s.available = available_;
  if (!available_) {
    s.unavailable_reason = unavailable_reason_;
    return s;
  }
#if defined(__linux__)
  int64_t* fields[kNumCounters] = {&s.cycles, &s.instructions, &s.llc_misses,
                                   &s.branch_misses};
  for (int i = 0; i < kNumCounters; i++) {
    if (fds_[i] < 0) {
      continue;  // this event was denied/unsupported; stays absent (-1)
    }
    uint64_t value = 0;
    const ssize_t n = ::read(fds_[i], &value, sizeof(value));
    if (n == static_cast<ssize_t>(sizeof(value))) {
      *fields[i] = static_cast<int64_t>(value);
    }
  }
#endif
  return s;
}

PerfSample PerfRegion::Delta() const {
  const PerfSample now = counters_->Read();
  if (!now.available) {
    return now;
  }
  PerfSample d;
  d.available = true;
  if (now.cycles >= 0 && start_.cycles >= 0) {
    d.cycles = now.cycles - start_.cycles;
  }
  if (now.instructions >= 0 && start_.instructions >= 0) {
    d.instructions = now.instructions - start_.instructions;
  }
  if (now.llc_misses >= 0 && start_.llc_misses >= 0) {
    d.llc_misses = now.llc_misses - start_.llc_misses;
  }
  if (now.branch_misses >= 0 && start_.branch_misses >= 0) {
    d.branch_misses = now.branch_misses - start_.branch_misses;
  }
  return d;
}

JsonValue PerfSample::ToJson() const {
  JsonValue j = JsonValue::Object();
  if (!available) {
    j["perf_unavailable"] = true;
    j["reason"] = unavailable_reason;
    return j;
  }
  if (cycles >= 0) {
    j["cycles"] = cycles;
  }
  if (instructions >= 0) {
    j["instructions"] = instructions;
  }
  if (cycles > 0 && instructions >= 0) {
    j["ipc"] = Ipc();
  }
  if (llc_misses >= 0) {
    j["llc_misses"] = llc_misses;
  }
  if (branch_misses >= 0) {
    j["branch_misses"] = branch_misses;
  }
  return j;
}

}  // namespace obs
}  // namespace dytis
