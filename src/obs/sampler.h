// 1-in-N operation sampler for per-operation latency measurement.
//
// The YCSB harness times an operation only when the sampler says so, which
// keeps two NowNanos() calls and a histogram update off most iterations at
// sampling rates > 1.  Deterministic round-robin (every N-th operation)
// rather than random: latency percentiles over millions of ops are
// insensitive to the phase, and determinism keeps runs reproducible.
//
// Compile-time gate: with -DDYTIS_OBS=OFF, sampled recording compiles out —
// Sample() is constant-false for every rate > 1, so the measured loops
// reduce to their untimed form.  Rate <= 1 ("record everything") is the
// pre-observability behaviour and is preserved in both build modes, since
// the Table 2 latency experiments depend on exact per-op recording.
#ifndef DYTIS_SRC_OBS_SAMPLER_H_
#define DYTIS_SRC_OBS_SAMPLER_H_

#ifndef DYTIS_OBS_ENABLED
#define DYTIS_OBS_ENABLED 1
#endif

#include <cstdint>

namespace dytis {
namespace obs {

class OpSampler {
 public:
  // every == 0 or 1: sample every operation; N > 1: every N-th operation.
  explicit OpSampler(uint64_t every) : every_(every == 0 ? 1 : every) {}

  bool Sample() {
    if (every_ == 1) {
      return true;
    }
#if DYTIS_OBS_ENABLED
    return (count_++ % every_) == 0;
#else
    return false;
#endif
  }

  uint64_t every() const { return every_; }

 private:
  uint64_t every_;
#if DYTIS_OBS_ENABLED
  uint64_t count_ = 0;
#endif
};

}  // namespace obs
}  // namespace dytis

#endif  // DYTIS_SRC_OBS_SAMPLER_H_
