#include "src/obs/bench_export.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/obs/trace.h"

namespace dytis {
namespace obs {

std::string BenchJsonDir() {
  const char* dir = std::getenv("DYTIS_BENCH_JSON_DIR");
  if (dir == nullptr) {
    return "bench_results";
  }
  return dir;  // may be "", which disables export
}

JsonValue BenchEnvelope(const std::string& bench_name, size_t keys,
                        size_t ops) {
  JsonValue root = JsonValue::Object();
  root["bench"] = bench_name;
  root["keys_per_dataset"] = keys;
  root["ops"] = ops;
  root["obs_enabled"] = DYTIS_OBS_ENABLED != 0;
  return root;
}

namespace {

// Ensures `dir` exists (one level, like the rest of the bench tooling).
bool EnsureDir(const std::string& dir) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "warning: cannot create %s: %s\n", dir.c_str(),
                 std::strerror(errno));
    return false;
  }
  return true;
}

}  // namespace

std::string WriteBenchJson(const std::string& name, const JsonValue& root) {
  const std::string dir = BenchJsonDir();
  if (dir.empty() || !EnsureDir(dir)) {
    return "";
  }
  const std::string path = dir + "/" + name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return "";
  }
  const std::string doc = root.Dump(/*indent=*/2);
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  const bool ok = std::fclose(f) == 0 && written == doc.size();
  if (!ok) {
    std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
    return "";
  }
  return path;
}

std::string TraceDir() {
  const char* dir = std::getenv("DYTIS_TRACE");
  return dir == nullptr ? "" : dir;
}

std::string WriteBenchTrace(const std::string& name) {
  const std::string dir = TraceDir();
  if (dir.empty() || !EnsureDir(dir)) {
    return "";
  }
  const std::string path = dir + "/" + name + ".trace.json";
  if (!StructuralTracer::Global().WriteChromeTrace(path)) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  // Truncation is data loss a reader must know about: publish the gauge and
  // warn loudly (the trace file carries the same numbers in otherData).
  const uint64_t dropped =
      StructuralTracer::Global().PublishDroppedEvents();
  if (dropped > 0) {
    std::fprintf(stderr,
                 "warning: structural trace %s dropped %llu events to ring "
                 "wrap-around (raise StructuralTracer::Enable capacity)\n",
                 path.c_str(), static_cast<unsigned long long>(dropped));
  }
  return path;
}

}  // namespace obs
}  // namespace dytis
