#include "src/obs/degradation.h"

#include "src/obs/metrics.h"

namespace dytis {
namespace obs {

namespace {

// Signals of one observation against the policy thresholds.  Returns the
// tripped-reason bitmask; *all_clear is true only when every signal is
// below threshold * clear_fraction (the hysteresis clear band).
uint32_t Observe(const DegradationPolicy& policy, const SegmentHealth& seg,
                 bool* all_clear) {
  const double clear = policy.clear_fraction;
  const double stash = static_cast<double>(seg.stash_size);
  const double rate_limit =
      policy.stash_rate_threshold * static_cast<double>(seg.num_keys);
  const double plr_mean = seg.plr.MeanError();
  uint32_t reasons = 0;
  if (seg.stash_size >= policy.stash_depth_threshold) {
    reasons |= kReasonStashDepth;
  }
  if (seg.num_keys > 0 && stash >= rate_limit) {
    reasons |= kReasonStashRate;
  }
  if (plr_mean >= policy.plr_mean_error_threshold) {
    reasons |= kReasonPlrError;
  }
  *all_clear =
      stash < clear * static_cast<double>(policy.stash_depth_threshold) &&
      (seg.num_keys == 0 || stash < clear * rate_limit) &&
      plr_mean < clear * policy.plr_mean_error_threshold;
  return reasons;
}

}  // namespace

std::vector<SegmentVerdict> DegradationDetector::Evaluate(
    const HealthReport& report) {
  generation_++;
  const int trip_needed = policy_.trip_strikes < 1 ? 1 : policy_.trip_strikes;
  const int clear_needed =
      policy_.clear_strikes < 1 ? 1 : policy_.clear_strikes;
  std::vector<SegmentVerdict> degraded;
  size_t degraded_total = 0;  // includes cooled-down segments
  uint64_t trips = 0;
  uint64_t clears = 0;
  for (const SegmentHealth& seg : report.segments) {
    SegmentState& st = states_[{seg.table_id, seg.range_start}];
    st.last_seen = generation_;
    bool all_clear = false;
    const uint32_t reasons = Observe(policy_, seg, &all_clear);
    if (reasons != 0) {
      st.clear_strikes = 0;
      if (++st.trip_strikes >= trip_needed && !st.degraded) {
        st.degraded = true;
        trips++;
      }
    } else if (all_clear) {
      st.trip_strikes = 0;
      if (++st.clear_strikes >= clear_needed && st.degraded) {
        st.degraded = false;
        clears++;
      }
    } else {
      // Hysteresis band: neither tripping nor fully clear.  Hold the state
      // and reset both strike counters so only *consecutive* observations
      // on one side can flip it.
      st.trip_strikes = 0;
      st.clear_strikes = 0;
    }
    if (st.degraded) {
      degraded_total++;
    }
    if (st.degraded && generation_ <= st.cooldown_until) {
      // Repair-feedback backoff: the last repair did not help, so keep the
      // segment out of the verdict list (it still counts as degraded in the
      // gauge) until the cooldown expires, instead of feeding the mitigation
      // loop a provably futile rebuild.
      continue;
    }
    if (st.degraded) {
      SegmentVerdict v;
      v.table_id = seg.table_id;
      v.range_start = seg.range_start;
      v.local_depth = seg.local_depth;
      v.reasons = reasons;
      v.strikes = st.trip_strikes;
      v.stash_size = seg.stash_size;
      v.plr_mean_error = seg.plr.MeanError();
      degraded.push_back(v);
    }
  }
  // Forget segments the report no longer contains: a split replaced them
  // with fresh-identity children, or a repair re-keyed the run.  Their
  // hysteresis must not leak onto an unrelated future segment.
  for (auto it = states_.begin(); it != states_.end();) {
    if (it->second.last_seen != generation_) {
      it = states_.erase(it);
    } else {
      ++it;
    }
  }
  degraded_ = degraded_total;
  total_trips_ += trips;
  total_clears_ += clears;
  auto& registry = MetricsRegistry::Global();
  registry.GetGauge("health.degraded_segments")
      .Set(static_cast<int64_t>(degraded_));
  if (trips != 0) {
    registry.GetCounter("attack.detector_trips").Add(trips);
  }
  if (clears != 0) {
    registry.GetCounter("attack.detector_clears").Add(clears);
  }
  return degraded;
}

void DegradationDetector::NoteRepair(uint32_t table_id, uint64_t range_start,
                                     bool effective) {
  auto it = states_.find({table_id, range_start});
  if (it == states_.end()) {
    return;  // repair re-keyed or split the segment; its state is gone
  }
  SegmentState& st = it->second;
  if (effective) {
    st.ineffective_repairs = 0;
    st.cooldown_until = 0;
    return;
  }
  // Exponential backoff, capped so a long-lived unabsorbable segment is
  // still retried occasionally (the workload may have drained around it).
  constexpr uint32_t kMaxShift = 10;  // cooldown caps at 1024 evaluations
  const uint32_t shift =
      st.ineffective_repairs < kMaxShift ? st.ineffective_repairs : kMaxShift;
  st.cooldown_until = generation_ + (uint64_t{1} << shift);
  st.ineffective_repairs++;
  MetricsRegistry::Global().GetCounter("attack.repair_backoffs").Add(1);
}

}  // namespace obs
}  // namespace dytis
