// Machine-readable bench-result export.
//
// Every bench binary that opts in writes one JSON document per run to
// `<dir>/<name>.json`, where <dir> is DYTIS_BENCH_JSON_DIR (default
// "bench_results", created on demand).  The envelope records the bench
// name, the scale it ran at, and the build's observability mode, so result
// files are self-describing; the bench appends its own measurements under
// free-form keys.  Setting DYTIS_BENCH_JSON_DIR to the empty string
// disables export entirely.
#ifndef DYTIS_SRC_OBS_BENCH_EXPORT_H_
#define DYTIS_SRC_OBS_BENCH_EXPORT_H_

#include <cstddef>
#include <string>

#include "src/util/json.h"

namespace dytis {
namespace obs {

// Export directory: $DYTIS_BENCH_JSON_DIR if set, else "bench_results".
// Empty string means export is disabled.
std::string BenchJsonDir();

// Standard result envelope: {"bench": name, "keys_per_dataset": keys,
// "ops": ops, "obs_enabled": ...}.  Benches fill in the rest.
JsonValue BenchEnvelope(const std::string& bench_name, size_t keys,
                        size_t ops);

// Writes `root` (pretty-printed) to `<BenchJsonDir()>/<name>.json`,
// creating the directory if needed.  Returns the path written, or "" when
// export is disabled or the write failed (a warning goes to stderr on
// failure, never on disabled).
std::string WriteBenchJson(const std::string& name, const JsonValue& root);

// Trace directory: $DYTIS_TRACE.  Unset or empty disables structural
// tracing in the bench binaries.
std::string TraceDir();

// Writes the global StructuralTracer's chrome://tracing document to
// `<TraceDir()>/<name>.trace.json` (directory created on demand).  Call at
// quiescence (see src/obs/trace.h).  Returns the path, or "" when tracing
// is disabled or the write failed.
std::string WriteBenchTrace(const std::string& name);

}  // namespace obs
}  // namespace dytis

#endif  // DYTIS_SRC_OBS_BENCH_EXPORT_H_
