// Per-segment degradation detectors for the adversarial robustness loop
// (DESIGN.md "Adversarial robustness").
//
// The detector is *pull-based*: it evaluates HealthReport snapshots (already
// collected off the hot path by src/obs/health.h) against the thresholds in
// DegradationPolicy, with hysteresis so a segment oscillating around a
// threshold never flaps between healthy and degraded.  Nothing here runs on
// the insert/lookup path, so detection costs exactly one HealthReport per
// evaluation cadence and zero per-operation work; under DYTIS_OBS=OFF only
// the (already compiled-out) trace hooks disappear — detection and
// mitigation still work, because HealthReport collection is pull-based too.
//
// State machine per segment (identity = (table_id, range_start); see
// SegmentHealth::range_start):
//
//        trip x trip_strikes                 clear x clear_strikes
//   HEALTHY ------------------> DEGRADED ------------------------> HEALTHY
//      ^  \__ in-band: strikes reset __/  ^
//      |                                  |
//   (new segment / post-split identity)   (mitigation rebuilds the segment;
//                                          the next clean report clears it)
//
// An observation *trips* when any signal crosses its threshold (stash depth,
// stash rate, mean PLR in-bucket error); it *clears* when every signal is
// below threshold * clear_fraction; the band in between holds the current
// state and resets the opposing strike counter.  Segments that vanish from
// a report (split children replaced them, or the whole run was repaired
// under a new identity) are forgotten.
//
// Repair feedback: a mitigation driver reports each repair back through
// NoteRepair(). An *ineffective* repair (the segment still tripping after
// the rebuild — e.g. a stride-1 stash bomb whose dense run no grid
// allocation can absorb) puts the segment on an exponentially growing
// cooldown during which Evaluate() suppresses its verdict.  Without this a
// mitigation loop would re-run an O(segment) rebuild on every evaluation
// forever — the mitigation itself would become the amplification the
// attacker wanted.  An effective repair resets the backoff.
//
// Evaluate() also publishes the `health.degraded_segments` gauge and the
// attack.* transition counters into the global metrics registry, so the
// health dumps and bench exports carry the robustness signals.
#ifndef DYTIS_SRC_OBS_DEGRADATION_H_
#define DYTIS_SRC_OBS_DEGRADATION_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/obs/health.h"

namespace dytis {
namespace obs {

// Which signals tripped for one observation (bitmask in SegmentVerdict).
enum DegradationReason : uint32_t {
  kReasonStashDepth = 1u << 0,  // stash_size >= stash_depth_threshold
  kReasonStashRate = 1u << 1,   // stash_size >= stash_rate_threshold * keys
  kReasonPlrError = 1u << 2,    // mean PLR error >= plr_mean_error_threshold
};

// One degraded segment, as reported by DegradationDetector::Evaluate.
// (table_id, range_start) is the repair handle BasicDyTIS::RepairSegment /
// EhTable::RepairSegmentAt takes.
struct SegmentVerdict {
  uint32_t table_id = 0;
  uint64_t range_start = 0;
  int local_depth = 0;
  uint32_t reasons = 0;  // DegradationReason bits of the latest observation
  int strikes = 0;       // consecutive tripping observations
  uint64_t stash_size = 0;
  double plr_mean_error = 0.0;
};

class DegradationDetector {
 public:
  explicit DegradationDetector(const DegradationPolicy& policy)
      : policy_(policy) {}

  // Evaluates one health snapshot (report.segments must be populated, i.e.
  // the report must come from DyTIS::HealthReport(), not a segment-less
  // dump).  Updates the per-segment hysteresis state and returns the
  // segments that are degraded *after* this observation, publishes
  // health.degraded_segments, and counts state transitions as
  // attack.detector_trips / attack.detector_clears.
  std::vector<SegmentVerdict> Evaluate(const HealthReport& report);

  // Repair feedback from the mitigation driver (BasicDyTIS::MitigateDegraded
  // calls this after every RepairSegment).  effective=false means the repair
  // did not move the segment out of the degraded band (the attack is
  // structurally unabsorbable); the segment's verdict is then suppressed for
  // 2^k evaluations, doubling per consecutive ineffective repair.  An
  // effective repair resets the backoff.
  void NoteRepair(uint32_t table_id, uint64_t range_start, bool effective);

  // Degraded segments after the latest Evaluate(), including segments whose
  // verdicts are suppressed by a repair-backoff cooldown.
  size_t degraded_count() const { return degraded_; }

  // Lifetime transition totals (mirrors of the attack.* counters, for
  // callers that keep their own detector).
  uint64_t total_trips() const { return total_trips_; }
  uint64_t total_clears() const { return total_clears_; }

  const DegradationPolicy& policy() const { return policy_; }

 private:
  struct SegmentState {
    int trip_strikes = 0;
    int clear_strikes = 0;
    bool degraded = false;
    uint64_t last_seen = 0;  // Evaluate() generation, for pruning
    // Repair-feedback backoff: while generation < cooldown_until the
    // segment's verdict is suppressed even if it is still degraded.
    uint32_t ineffective_repairs = 0;
    uint64_t cooldown_until = 0;
  };

  DegradationPolicy policy_;
  std::map<std::pair<uint32_t, uint64_t>, SegmentState> states_;
  uint64_t generation_ = 0;
  size_t degraded_ = 0;
  uint64_t total_trips_ = 0;
  uint64_t total_clears_ = 0;
};

}  // namespace obs
}  // namespace dytis

#endif  // DYTIS_SRC_OBS_DEGRADATION_H_
