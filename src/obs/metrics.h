// Typed metrics registry for the observability layer.
//
// Three metric kinds:
//   Counter   — monotonically increasing relaxed-atomic u64 (ops executed,
//               events exported, ...).
//   Gauge     — last-write-wins i64 (live structure sizes: segment count,
//               directory entries, resident bytes, ...).
//   Histogram — value distribution backed by LatencyRecorder's logarithmic
//               buckets; mutex-guarded, so Record() is for harness-side
//               paths (per-phase summaries), not per-operation hot paths --
//               use a thread-local LatencyRecorder and Merge for those.
//
// Metrics are registered by name on first use and live for the process
// lifetime; references returned by the registry never dangle.  ToJson()
// dumps every metric for the bench exporters.
#ifndef DYTIS_SRC_OBS_METRICS_H_
#define DYTIS_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/util/json.h"
#include "src/util/latency_recorder.h"

namespace dytis {
namespace obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  void Record(uint64_t value) {
    std::lock_guard<std::mutex> lock(mutex_);
    recorder_.Record(value);
  }
  void Merge(const LatencyRecorder& other) {
    std::lock_guard<std::mutex> lock(mutex_);
    recorder_.Merge(other);
  }
  uint64_t Count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return recorder_.count();
  }
  uint64_t Percentile(double q) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return recorder_.PercentileNanos(q);
  }
  // Consistent copy for export.
  LatencyRecorder Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return recorder_;
  }

 private:
  mutable std::mutex mutex_;
  LatencyRecorder recorder_;
};

class MetricsRegistry {
 public:
  // Process-wide registry used by the workload harness and benches.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name.  Returned references stay valid until Reset().
  //
  // Re-using one name across metric *kinds* (a counter named like an
  // existing gauge, etc.) is a bug: the exports key every section by name,
  // so the two metrics shadow each other in dashboards and diffs.  The
  // registry detects it, warns on stderr, and aborts in debug builds
  // (!NDEBUG); release builds count it in KindCollisions() and proceed with
  // a metric of the requested kind so production never crashes over
  // telemetry.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Cross-kind name re-registrations detected since construction/Reset().
  uint64_t KindCollisions() const {
    return kind_collisions_.load(std::memory_order_relaxed);
  }

  // {"counters": {...}, "gauges": {...}, "histograms": {name: summary}}.
  // Histogram summaries carry count/mean/min/max and p50/p99/p99.99.
  JsonValue ToJson() const;

  // Drops every metric (tests / between bench phases).
  void Reset();

  size_t NumMetrics() const;

 private:
  // Called under mutex_ by the Get* methods; `kind` names the requested
  // kind for the diagnostic.
  void CheckKindCollision(const std::string& name, const char* kind,
                          bool in_counters, bool in_gauges,
                          bool in_histograms);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<uint64_t> kind_collisions_{0};
};

}  // namespace obs
}  // namespace dytis

#endif  // DYTIS_SRC_OBS_METRICS_H_
