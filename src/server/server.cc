#include "src/server/server.h"

#include <algorithm>
#include <cassert>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace dytis {
namespace server {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kGet:
      return "get";
    case OpType::kPut:
      return "put";
    case OpType::kUpdate:
      return "update";
    case OpType::kErase:
      return "erase";
    case OpType::kScan:
      return "scan";
  }
  return "?";
}

bool PinThreadToCore(unsigned cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

uint64_t ScanChecksum(const ServerIndex::ScanEntry* entries, size_t n) {
  auto mix = [](uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ n;
  for (size_t i = 0; i < n; i++) {
    h = mix(h ^ mix(entries[i].first));
    h = mix(h ^ mix(entries[i].second));
  }
  return h;
}

// One client batch in flight.  Sync batches live on the caller's stack
// (requests/responses point at caller memory); async batches own their
// storage and are freed by the worker that completes them.
struct DyTISServer::BatchState {
  const Request* requests = nullptr;
  Response* responses = nullptr;
  std::vector<Request> owned_requests;
  std::vector<Response> owned_responses;
  size_t num_requests = 0;
  uint64_t submit_ns = 0;
  bool async = false;
  // Shard tasks still executing; the worker that takes it to zero completes
  // the batch.
  std::atomic<uint32_t> pending{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

DyTISServer::DyTISServer(ServerIndex* index, const ServerOptions& options)
    : index_(index),
      options_(options),
      shard_requests_(index->num_shards()) {
  if (options_.threads_per_shard == 0) {
    options_.threads_per_shard = 1;
  }
  if (options_.max_scan_entries == 0) {
    options_.max_scan_entries = 1024;
  }
  const uint32_t shards = index_->num_shards();
  queues_.reserve(shards);
  for (uint32_t s = 0; s < shards; s++) {
    queues_.push_back(std::make_unique<ShardQueue>());
  }
  workers_.reserve(static_cast<size_t>(shards) * options_.threads_per_shard);
  for (uint32_t s = 0; s < shards; s++) {
    for (uint32_t w = 0; w < options_.threads_per_shard; w++) {
      workers_.push_back(std::make_unique<Worker>());
      Worker* worker = workers_.back().get();
      worker->thread =
          std::thread([this, s, w, worker] { WorkerLoop(s, w, worker); });
    }
  }
}

DyTISServer::~DyTISServer() { Stop(); }

void DyTISServer::Route(BatchState* batch, const Request* requests,
                        size_t n) {
  const uint32_t shards = index_->num_shards();
  std::vector<std::vector<uint32_t>> groups(shards);
  for (size_t i = 0; i < n; i++) {
    groups[index_->router().ShardFor(requests[i].key)].push_back(
        static_cast<uint32_t>(i));
  }
  uint32_t touched = 0;
  for (uint32_t s = 0; s < shards; s++) {
    if (!groups[s].empty()) {
      touched++;
    }
  }
  // pending must cover every task before the first one can complete.
  batch->pending.store(touched, std::memory_order_release);
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  batches_.fetch_add(1, std::memory_order_relaxed);
  handoffs_.fetch_add(touched, std::memory_order_relaxed);
#if DYTIS_OBS_ENABLED
  {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("server.batches").Add(1);
    registry.GetCounter("server.requests").Add(n);
    registry.GetCounter("server.shard_handoffs").Add(touched);
  }
#endif
  const int64_t depth =
      queue_depth_.fetch_add(touched, std::memory_order_acq_rel) +
      static_cast<int64_t>(touched);
  uint64_t peak = queue_depth_peak_.load(std::memory_order_relaxed);
  while (static_cast<uint64_t>(depth) > peak &&
         !queue_depth_peak_.compare_exchange_weak(
             peak, static_cast<uint64_t>(depth), std::memory_order_relaxed)) {
  }
#if DYTIS_OBS_ENABLED
  obs::MetricsRegistry::Global().GetGauge("server.queue_depth").Set(depth);
#endif
  for (uint32_t s = 0; s < shards; s++) {
    if (groups[s].empty()) {
      continue;
    }
    ShardQueue& q = *queues_[s];
    {
      std::lock_guard<std::mutex> lock(q.mu);
      q.tasks.push_back(ShardTask{batch, std::move(groups[s])});
    }
    q.cv.notify_one();
  }
}

void DyTISServer::ExecuteBatch(const Request* requests, size_t n,
                               Response* responses) {
  assert(!stopped_.load(std::memory_order_acquire));
  if (n == 0) {
    return;
  }
  BatchState batch;
  batch.requests = requests;
  batch.responses = responses;
  batch.num_requests = n;
  batch.submit_ns = NowNanos();
  batch.async = false;
  Route(&batch, requests, n);
  std::unique_lock<std::mutex> lock(batch.mu);
  batch.cv.wait(lock, [&batch] { return batch.done; });
}

void DyTISServer::SubmitBatch(std::vector<Request> requests) {
  assert(!stopped_.load(std::memory_order_acquire));
  if (requests.empty()) {
    return;
  }
  auto* batch = new BatchState();
  batch->owned_requests = std::move(requests);
  batch->owned_responses.resize(batch->owned_requests.size());
  batch->requests = batch->owned_requests.data();
  batch->responses = batch->owned_responses.data();
  batch->num_requests = batch->owned_requests.size();
  batch->submit_ns = NowNanos();
  batch->async = true;
  Route(batch, batch->requests, batch->num_requests);
}

void DyTISServer::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

void DyTISServer::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  Drain();
  for (auto& q : queues_) {
    std::lock_guard<std::mutex> lock(q->mu);
    q->stopped = true;
  }
  for (auto& q : queues_) {
    q->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

void DyTISServer::ExecuteOne(const Request& req, Response* resp) {
  switch (req.op) {
    case OpType::kGet:
      resp->ok = index_->Find(req.key, &resp->value);
      break;
    case OpType::kPut:
      resp->ok = IsNewKey(index_->InsertEx(req.key, req.value));
      break;
    case OpType::kUpdate:
      resp->ok = index_->Update(req.key, req.value);
      break;
    case OpType::kErase:
      resp->ok = index_->Erase(req.key);
      break;
    case OpType::kScan:
      // Handled in WorkerLoop (needs the scratch buffer); never reaches
      // here.
      break;
  }
}

void DyTISServer::CompleteBatch(BatchState* batch, Worker* worker) {
  if (batch->pending.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    return;
  }
  if (batch->async) {
    // End-to-end latency: completion minus submit, attributed to every op
    // in the batch (the batch is the unit the client observed).
    const uint64_t now = NowNanos();
    const uint64_t e2e =
        now > batch->submit_ns ? now - batch->submit_ns : 0;
    {
      std::lock_guard<std::mutex> lock(recorder_mu_);
      for (size_t i = 0; i < batch->num_requests; i++) {
        worker->e2e.Record(e2e);
      }
    }
    delete batch;
  } else {
    std::lock_guard<std::mutex> lock(batch->mu);
    batch->done = true;
    batch->cv.notify_one();
    // The sync client owns `batch` (stack) and may destroy it as soon as it
    // wakes; nothing below may touch it.
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
  }
  drain_cv_.notify_all();
}

void DyTISServer::WorkerLoop(uint32_t shard, uint32_t worker_index,
                             Worker* worker) {
  if (options_.pin_cores) {
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores > 0) {
      PinThreadToCore((shard * options_.threads_per_shard + worker_index) %
                      cores);
    }
  }
  ShardQueue& q = *queues_[shard];
  // Scratch reused across tasks: the scan buffer and the per-task latency
  // recorder (flushed under recorder_mu_ once per task, so the per-op
  // recording path takes no lock).
  std::vector<ServerIndex::ScanEntry> scan_buf(options_.max_scan_entries);
  LatencyRecorder scratch;
  uint64_t local_op_counts[kNumOpTypes];
  for (;;) {
    ShardTask task;
    {
      std::unique_lock<std::mutex> lock(q.mu);
      q.cv.wait(lock, [&q] { return q.stopped || !q.tasks.empty(); });
      if (q.tasks.empty()) {
        return;  // stopped and drained
      }
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
    const int64_t depth =
        queue_depth_.fetch_sub(1, std::memory_order_acq_rel) - 1;
#if DYTIS_OBS_ENABLED
    obs::MetricsRegistry::Global().GetGauge("server.queue_depth").Set(depth);
#else
    (void)depth;
#endif
    BatchState* batch = task.batch;
    for (int i = 0; i < kNumOpTypes; i++) {
      local_op_counts[i] = 0;
    }
    const uint64_t begin_ns = NowNanos();
    uint64_t prev_ns = begin_ns;
    for (const uint32_t idx : task.indices) {
      const Request& req = batch->requests[idx];
      Response* resp = &batch->responses[idx];
      if (req.op == OpType::kScan) {
        const size_t want =
            std::min<size_t>(req.scan_count, scan_buf.size());
        const size_t got = index_->Scan(req.key, want, scan_buf.data());
        resp->ok = true;
        resp->scan_len = static_cast<uint32_t>(got);
        resp->value = ScanChecksum(scan_buf.data(), got);
      } else {
        ExecuteOne(req, resp);
      }
      local_op_counts[static_cast<size_t>(req.op)]++;
      const uint64_t now_ns = NowNanos();
      scratch.Record(now_ns > prev_ns ? now_ns - prev_ns : 0);
      prev_ns = now_ns;
    }
    worker->requests.fetch_add(task.indices.size(),
                               std::memory_order_relaxed);
    for (int i = 0; i < kNumOpTypes; i++) {
      if (local_op_counts[i] != 0) {
        worker->op_counts[i].fetch_add(local_op_counts[i],
                                       std::memory_order_relaxed);
      }
    }
    shard_requests_[shard].fetch_add(task.indices.size(),
                                     std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(recorder_mu_);
      worker->service.Merge(scratch);
    }
    scratch.Reset();
#if DYTIS_OBS_ENABLED
    obs::MetricsRegistry::Global()
        .GetHistogram("server.batch_size")
        .Record(task.indices.size());
#endif
    DYTIS_OBS_TRACE(obs::TraceOp::kServerBatch, begin_ns, prev_ns, shard,
                    static_cast<int32_t>(task.indices.size()));
    CompleteBatch(batch, worker);
  }
}

LatencyRecorder DyTISServer::ServiceLatency() const {
  LatencyRecorder merged;
  std::lock_guard<std::mutex> lock(recorder_mu_);
  for (const auto& w : workers_) {
    merged.Merge(w->service);
  }
  return merged;
}

LatencyRecorder DyTISServer::EndToEndLatency() const {
  LatencyRecorder merged;
  std::lock_guard<std::mutex> lock(recorder_mu_);
  for (const auto& w : workers_) {
    merged.Merge(w->e2e);
  }
  return merged;
}

ServerStats DyTISServer::Stats() const {
  ServerStats stats;
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.shard_handoffs = handoffs_.load(std::memory_order_relaxed);
  stats.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  for (const auto& w : workers_) {
    stats.requests += w->requests.load(std::memory_order_relaxed);
    for (int i = 0; i < kNumOpTypes; i++) {
      stats.op_counts[i] += w->op_counts[i].load(std::memory_order_relaxed);
    }
  }
  stats.shard_requests.reserve(shard_requests_.size());
  for (const auto& n : shard_requests_) {
    stats.shard_requests.push_back(n.load(std::memory_order_relaxed));
  }
  return stats;
}

}  // namespace server
}  // namespace dytis
