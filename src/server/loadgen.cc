#include "src/server/loadgen.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <memory>
#include <thread>

#include "src/util/rng.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace server {

namespace {

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr uint64_t kInsertRegion = uint64_t{1} << 63;

}  // namespace

uint64_t PreloadValueFor(uint64_t key) {
  return Mix64(key ^ 0xA5A5A5A5A5A5A5A5ULL);
}
uint64_t InsertValueFor(uint64_t key) {
  return Mix64(key ^ 0x3C3C3C3C3C3C3C3CULL);
}
uint64_t UpdateValueFor(uint64_t key) {
  return Mix64(key ^ 0x0F0F0F0F0F0F0F0FULL);
}

std::vector<uint64_t> PreloadKeys(const LoadGenOptions& options) {
  std::vector<uint64_t> keys;
  keys.reserve(options.preload_keys + options.preload_keys / 16);
  SplitMix64 sm(options.seed ^ 0x9E3779B97F4A7C15ULL);
  while (keys.size() < options.preload_keys) {
    const size_t need = options.preload_keys - keys.size();
    for (size_t i = 0; i < need; i++) {
      keys.push_back(sm.Next() & ~kInsertRegion);  // [0, 2^63)
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  return keys;
}

void Preload(ServerIndex* index, const LoadGenOptions& options) {
  for (const uint64_t key : PreloadKeys(options)) {
    index->Insert(key, PreloadValueFor(key));
  }
}

SlotStreams GenerateSlotStreams(const LoadGenOptions& options) {
  assert(options.session_slots > 0);
  assert(!options.tenants.empty());
  SlotStreams out;
  const size_t slots = options.session_slots;
  out.slots.resize(slots);
  const std::vector<uint64_t> preload = PreloadKeys(options);
  assert(!preload.empty());
  const int slot_bits =
      std::bit_width(static_cast<uint64_t>(slots - 1));
  const size_t num_tenants = options.tenants.size();
  const size_t storm_keys = std::min(
      std::max<size_t>(options.storm_keys, 1), preload.size());

  for (size_t s = 0; s < slots; s++) {
    const size_t slot_ops =
        options.total_ops / slots + (s < options.total_ops % slots ? 1 : 0);
    std::vector<Request>& stream = out.slots[s];
    stream.reserve(slot_ops);
    Rng rng(SplitMix64(options.seed ^ (0xD6E8FEB86659FD93ULL * (s + 1)))
                .Next());
    // One Zipfian generator per (slot, tenant): its zeta setup is O(preload)
    // and its state must advance deterministically within the slot stream.
    std::vector<std::unique_ptr<ScrambledZipfianGenerator>> zipfs(
        num_tenants);
    std::vector<uint64_t> inserted;  // keys this slot inserted, erase pool
    size_t session = 0;              // sessions completed in this slot
    uint64_t session_id = static_cast<uint64_t>(s);
    const TenantMix* mix = &options.tenants[session_id % num_tenants];
    uint64_t storm_base =
        Mix64(options.seed ^ (session_id * 0xBF58476D1CE4E5B9ULL)) %
        (preload.size() - storm_keys + 1);
    uint64_t insert_seq = 0;

    auto pick_read_key = [&]() -> uint64_t {
      if (options.hot_storm_fraction > 0.0 &&
          rng.NextDouble() < options.hot_storm_fraction) {
        return preload[storm_base + rng.NextBelow(storm_keys)];
      }
      size_t rank;
      if (mix->zipfian) {
        const size_t t = session_id % num_tenants;
        if (zipfs[t] == nullptr) {
          zipfs[t] = std::make_unique<ScrambledZipfianGenerator>(
              preload.size(), mix->theta,
              SplitMix64(options.seed ^ (0x94D049BB133111EBULL * (s + 1)) ^
                         t)
                  .Next());
        }
        rank = zipfs[t]->Next();
      } else {
        rank = rng.NextBelow(preload.size());
      }
      return preload[rank];
    };

    for (size_t op = 0; op < slot_ops; op++) {
      const double total = mix->get + mix->put + mix->update + mix->scan +
                           mix->erase;
      double r = rng.NextDouble() * (total > 0.0 ? total : 1.0);
      Request req;
      if ((r -= mix->get) < 0.0) {
        req.op = OpType::kGet;
        req.key = pick_read_key();
      } else if ((r -= mix->put) < 0.0) {
        req.op = OpType::kPut;
        // Fresh key: top bit tags the insert region (disjoint from the
        // preload set), low bits tag the slot (disjoint across slots).
        const uint64_t raw =
            Mix64(options.seed ^ (s * 0x2545F4914F6CDD1DULL) ^ ++insert_seq);
        req.key = kInsertRegion |
                  ((raw >> (1 + slot_bits)) << slot_bits) |
                  static_cast<uint64_t>(s);
        req.value = InsertValueFor(req.key);
        inserted.push_back(req.key);
      } else if ((r -= mix->update) < 0.0) {
        req.op = OpType::kUpdate;
        req.key = pick_read_key();
        req.value = UpdateValueFor(req.key);
      } else if ((r -= mix->scan) < 0.0) {
        req.op = OpType::kScan;
        req.key = pick_read_key();
        req.scan_count = mix->scan_len;
      } else if (!inserted.empty()) {
        req.op = OpType::kErase;
        const size_t pick = rng.NextBelow(inserted.size());
        req.key = inserted[pick];
        inserted[pick] = inserted.back();
        inserted.pop_back();
      } else {
        // Nothing of ours to erase yet: degrade to a read (deterministic —
        // depends only on this slot's own history).
        req.op = OpType::kGet;
        req.key = pick_read_key();
      }
      stream.push_back(req);
      // Connection churn: the session disconnects and the slot re-connects
      // as a fresh session (new id, tenant, storm window).
      if (options.session_churn > 0.0 &&
          rng.NextDouble() < options.session_churn) {
        session++;
        session_id = static_cast<uint64_t>(s) + session * slots;
        mix = &options.tenants[session_id % num_tenants];
        storm_base =
            Mix64(options.seed ^ (session_id * 0xBF58476D1CE4E5B9ULL)) %
            (preload.size() - storm_keys + 1);
      }
    }
    out.sessions_started += session + 1;
    out.total_ops += stream.size();
  }
  return out;
}

uint64_t StreamHash(const SlotStreams& streams) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ streams.slots.size();
  for (size_t s = 0; s < streams.slots.size(); s++) {
    h = Mix64(h ^ Mix64(s));
    for (const Request& r : streams.slots[s]) {
      h = Mix64(h ^ static_cast<uint64_t>(r.op));
      h = Mix64(h ^ Mix64(r.key));
      h = Mix64(h ^ Mix64(r.value));
      h = Mix64(h ^ r.scan_count);
    }
  }
  return h;
}

LoadGenResult RunClosedLoop(DyTISServer* srv, const LoadGenOptions& options,
                            int threads) {
  assert(threads > 0);
  const SlotStreams streams = GenerateSlotStreams(options);
  LoadGenResult result;
  result.sessions_started = streams.sessions_started;
  std::vector<LatencyRecorder> recorders(threads);
  std::vector<size_t> ops_done(threads, 0);
  std::vector<std::thread> clients;
  clients.reserve(threads);
  Timer timer;
  for (int t = 0; t < threads; t++) {
    clients.emplace_back([&, t] {
      // Slots owned by this client: s ≡ t (mod threads).  Driven
      // round-robin, one batch per turn, so the slots behave like
      // concurrent sessions multiplexed on one connection.
      std::vector<size_t> my_slots;
      for (size_t s = t; s < streams.slots.size();
           s += static_cast<size_t>(threads)) {
        my_slots.push_back(s);
      }
      std::vector<size_t> pos(my_slots.size(), 0);
      std::vector<Response> responses(options.batch_size);
      bool any = true;
      while (any) {
        any = false;
        for (size_t i = 0; i < my_slots.size(); i++) {
          const std::vector<Request>& stream = streams.slots[my_slots[i]];
          if (pos[i] >= stream.size()) {
            continue;
          }
          const size_t m =
              std::min(options.batch_size, stream.size() - pos[i]);
          const uint64_t begin = NowNanos();
          srv->ExecuteBatch(stream.data() + pos[i], m, responses.data());
          const uint64_t e2e = NowNanos() - begin;
          for (size_t k = 0; k < m; k++) {
            recorders[t].Record(e2e);
          }
          pos[i] += m;
          ops_done[t] += m;
          any = true;
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  result.seconds = timer.ElapsedSeconds();
  for (int t = 0; t < threads; t++) {
    result.ops += ops_done[t];
    result.e2e.Merge(recorders[t]);
  }
  result.throughput_mops =
      result.seconds > 0.0
          ? static_cast<double>(result.ops) / result.seconds / 1e6
          : 0.0;
  return result;
}

OpenLoopResult RunOpenLoop(DyTISServer* srv, const LoadGenOptions& options,
                           double offered_rate, int threads) {
  assert(threads > 0);
  assert(offered_rate > 0.0);
  // NOTE: open-loop traffic measures latency under a fixed offered rate;
  // batches of one slot can be in flight simultaneously, so the final-state
  // determinism contract applies to the closed loop only.
  const SlotStreams streams = GenerateSlotStreams(options);
  // Flatten into the dispatch schedule: slot-major round-robin, so the
  // per-batch shard mix matches the closed loop's.
  std::vector<std::vector<Request>> batches;
  std::vector<size_t> pos(streams.slots.size(), 0);
  bool any = true;
  while (any) {
    any = false;
    for (size_t s = 0; s < streams.slots.size(); s++) {
      const std::vector<Request>& stream = streams.slots[s];
      if (pos[s] >= stream.size()) {
        continue;
      }
      const size_t m = std::min(options.batch_size, stream.size() - pos[s]);
      batches.emplace_back(stream.begin() + pos[s],
                           stream.begin() + pos[s] + m);
      pos[s] += m;
      any = true;
    }
  }
  // Deadline of batch i: cumulative ops before it, paced at the offered
  // rate.
  std::vector<uint64_t> deadline_ns(batches.size(), 0);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < batches.size(); i++) {
    deadline_ns[i] = static_cast<uint64_t>(
        static_cast<double>(cumulative) / offered_rate * 1e9);
    cumulative += batches[i].size();
  }
  OpenLoopResult result;
  result.offered_rate = offered_rate;
  result.ops = cumulative;

  std::atomic<size_t> next{0};
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(threads);
  const uint64_t start_ns = NowNanos();
  for (int t = 0; t < threads; t++) {
    dispatchers.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batches.size()) {
          return;
        }
        const uint64_t target = start_ns + deadline_ns[i];
        // Sleep to ~100us before the deadline, then spin: dispatch jitter
        // stays well under the latencies being measured.
        for (;;) {
          const uint64_t now = NowNanos();
          if (now >= target) {
            break;
          }
          if (target - now > 200'000) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(target - now - 100'000));
          }
        }
        srv->SubmitBatch(std::move(batches[i]));
      }
    });
  }
  for (auto& d : dispatchers) {
    d.join();
  }
  srv->Drain();
  const double elapsed =
      static_cast<double>(NowNanos() - start_ns) / 1e9;
  result.seconds = elapsed;
  result.achieved_rate =
      elapsed > 0.0 ? static_cast<double>(result.ops) / elapsed : 0.0;
  result.e2e = srv->EndToEndLatency();
  return result;
}

}  // namespace server
}  // namespace dytis
