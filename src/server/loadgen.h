// Sessionized load generator for the sharded serving front end.
//
// Simulates a population of client sessions driving DyTISServer: each
// session belongs to a tenant (an op mix: get/put/update/scan/erase
// fractions, Zipfian or uniform key popularity), lives for a geometrically
// distributed number of ops (connection churn), and is replaced by a fresh
// session in the same slot when it disconnects.  Hot-key storms concentrate
// a configurable fraction of reads on a small seeded key set, exercising the
// router-skew path that range partitioning admits.
//
// Determinism contract (tests/server_loadgen_test.cc):
//   * The op stream is a pure function of LoadGenOptions: GenerateSlotStreams
//     returns bit-identical streams for the same options, across runs,
//     processes, and builds (StreamHash pins it).
//   * The final index state is independent of client thread count and shard
//     count.  Three structural rules make any interleaving converge:
//       1. every written value is a pure function of its key
//          (InsertValueFor / UpdateValueFor / PreloadValueFor);
//       2. inserted keys are tagged with their session slot in the low bits
//          (and the top bit, keeping them disjoint from the preload set), so
//          no two slots ever write the same fresh key;
//       3. erases target only keys the same slot inserted, and a slot's ops
//          execute in stream order (closed-loop clients submit a slot's next
//          batch only after the previous one completed; the per-shard
//          single-consumer queue preserves arrival order within a shard).
//     Reads and scans touch anything and affect nothing.
//   * Bench rows built on this generator are therefore reproducible: same
//     seed, same ops, same final StateHash — only the timing varies.
//
// Two driving modes:
//   * RunClosedLoop — `threads` clients, each owning the slots congruent to
//     its id, submit batches synchronously and record end-to-end latency.
//     Throughput is the capacity measurement.
//   * RunOpenLoop  — batches are dispatched on a fixed-rate schedule without
//     waiting for completions (SubmitBatch); end-to-end latency (queue wait
//     included) comes from the server's recorder.  Sweeping the offered rate
//     toward capacity yields the p99-under-load curve.
#ifndef DYTIS_SRC_SERVER_LOADGEN_H_
#define DYTIS_SRC_SERVER_LOADGEN_H_

#include <cstdint>
#include <vector>

#include "src/server/server.h"
#include "src/util/latency_recorder.h"

namespace dytis {
namespace server {

// One tenant's behaviour: op mix (fractions normalised over their sum) and
// key-popularity model for reads/updates/scans.
struct TenantMix {
  double get = 0.50;
  double put = 0.25;
  double update = 0.15;
  double scan = 0.05;
  double erase = 0.05;
  uint32_t scan_len = 100;
  bool zipfian = true;   // false: uniform over the preload population
  double theta = 0.99;   // YCSB default Zipfian constant
};

struct LoadGenOptions {
  uint64_t seed = 0x5eed;
  // Keys preloaded before the run (uniform over [0, 2^63); the top bit is
  // reserved for fresh inserts so the two populations never collide).
  size_t preload_keys = 100'000;
  // Concurrent session slots; slot s runs sessions s, s+slots, s+2*slots...
  size_t session_slots = 64;
  size_t total_ops = 200'000;
  // Per-op disconnect probability: mean session length = 1/churn ops.
  // 0 disables churn (each slot is one session for the whole run).
  double session_churn = 0.002;
  // Tenant mixes, assigned to slots round-robin (multi-tenant runs list
  // several; default is one balanced mix).
  std::vector<TenantMix> tenants = {TenantMix{}};
  // Fraction of get/scan key choices redirected to the storm set: a small
  // seeded window of `storm_keys` consecutive preload ranks (a hot-key storm
  // concentrated on one shard's range).
  double hot_storm_fraction = 0.0;
  size_t storm_keys = 64;
  // Ops per submitted batch (the shard-handoff amortisation unit).
  size_t batch_size = 64;
};

// --- Pure value functions (any interleaving converges; see header note) ---
uint64_t PreloadValueFor(uint64_t key);
uint64_t InsertValueFor(uint64_t key);
uint64_t UpdateValueFor(uint64_t key);

// The preload key set: sorted, unique, pure function of options.seed and
// options.preload_keys.
std::vector<uint64_t> PreloadKeys(const LoadGenOptions& options);

// Inserts the preload set (values PreloadValueFor) directly into the index.
void Preload(ServerIndex* index, const LoadGenOptions& options);

// Deterministic per-slot op streams.  slots[s] is the exact op sequence
// slot s issues, in order; independent of thread/shard count by
// construction.
struct SlotStreams {
  std::vector<std::vector<Request>> slots;
  size_t sessions_started = 0;  // session churn actually simulated
  size_t total_ops = 0;
};
SlotStreams GenerateSlotStreams(const LoadGenOptions& options);

// Order-sensitive digest of a generated stream (determinism tests and bench
// row provenance).
uint64_t StreamHash(const SlotStreams& streams);

struct LoadGenResult {
  size_t ops = 0;
  size_t sessions_started = 0;
  double seconds = 0.0;
  double throughput_mops = 0.0;
  // Client-side end-to-end per-op latency (batch completion attributed to
  // each of its ops).
  LatencyRecorder e2e;
};

// Closed loop: client t owns slots s with s % threads == t and drives them
// round-robin, one batch at a time, blocking on each batch.
LoadGenResult RunClosedLoop(DyTISServer* srv, const LoadGenOptions& options,
                            int threads);

struct OpenLoopResult {
  double offered_rate = 0.0;   // ops/s requested
  double achieved_rate = 0.0;  // ops/s actually completed
  size_t ops = 0;
  double seconds = 0.0;
  // End-to-end latency including queue wait (from the server's recorder,
  // this run's submissions only).
  LatencyRecorder e2e;
};

// Open loop at `offered_rate` ops/s: `threads` dispatchers submit batches on
// a shared deadline schedule and never wait for completions; Drain() at the
// end.  The server should be freshly constructed (its e2e recorder is the
// measurement).
OpenLoopResult RunOpenLoop(DyTISServer* srv, const LoadGenOptions& options,
                           double offered_rate, int threads);

}  // namespace server
}  // namespace dytis

#endif  // DYTIS_SRC_SERVER_LOADGEN_H_
