// DyTISServer — the request pipeline of the sharded serving front end.
//
// Architecture (DESIGN.md Section 9):
//
//   clients ──ExecuteBatch/SubmitBatch──▶ router ──▶ per-shard MPMC queues
//                                                         │
//                                          shard workers (pinnable) ──▶ shards
//
// A client hands the server a *batch* of requests.  The submit path routes
// the batch once — one pass groups the request indices by owning shard — and
// enqueues one ShardTask per shard touched, so the per-request queue cost is
// amortised over the batch (the handoff is the unit of queueing, not the
// op).  Each shard has its own queue and its own worker thread(s): a slow
// shard backs up its own queue without stalling traffic to the others, and
// with one worker per shard every shard's write stream is executed in
// arrival order.  Workers can be pinned to cores on Linux
// (ServerOptions::pin_cores) for the shard-per-core, NUMA-friendly layout
// the ROADMAP's serving item calls for.
//
// Two submission modes:
//   * ExecuteBatch — closed-loop: blocks until every response is filled in
//     caller memory.  The load generator's closed-loop clients and the
//     differential tests use this.
//   * SubmitBatch  — open-loop: fire-and-measure.  The batch is heap-owned;
//     when its last shard task completes, the worker records every op's
//     end-to-end latency (completion minus submit, queue wait included) and
//     frees the batch.  Drain() waits for the in-flight count to hit zero.
//
// Scans execute against the *facade* (cross-shard stitching), not just the
// worker's own shard: reads are lock-free on every shard, and each shard's
// epoch domain registers the worker's reader slot lazily, so the EBR guard
// coverage follows the scan across the shard handoff.  A scan response
// carries the entry count plus an order-sensitive checksum so tests can
// diff pipeline scans against an oracle without shipping the entries back.
//
// Observability (compiled out under DYTIS_OBS=OFF like the core's hooks):
//   server.requests / server.batches / server.shard_handoffs  counters
//   server.queue_depth                                        gauge
//   server.batch_size                                         histogram
//   kServerBatch trace slices (shard id + batch size) in the structural
//   tracer, one per executed handoff.
#ifndef DYTIS_SRC_SERVER_SERVER_H_
#define DYTIS_SRC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/config.h"
#include "src/server/sharded_dytis.h"
#include "src/util/latency_recorder.h"

namespace dytis {
namespace server {

// The serving layer fixes the value type: a production front end serves one
// wire format, and u64 -> u64 is what the whole bench/test harness speaks.
using ServerIndex = ShardedDyTIS<uint64_t>;

enum class OpType : uint8_t { kGet, kPut, kUpdate, kErase, kScan };
inline constexpr int kNumOpTypes = 5;
const char* OpTypeName(OpType op);

struct Request {
  OpType op = OpType::kGet;
  uint64_t key = 0;
  uint64_t value = 0;      // kPut / kUpdate payload
  uint32_t scan_count = 0; // kScan: entries wanted
};

struct Response {
  // kGet: key found; kPut: key was new; kUpdate/kErase: key existed;
  // kScan: always true.
  bool ok = false;
  // kGet: the value read; kScan: order-sensitive checksum of the scanned
  // (key, value) entries (tests diff it against an oracle scan).
  uint64_t value = 0;
  uint32_t scan_len = 0;   // kScan: entries returned
};

struct ServerOptions {
  // Worker threads per shard.  1 (the default) keeps each shard's write
  // stream totally ordered — the determinism the load-generator contract
  // leans on; more workers trade that for intra-shard parallelism.
  uint32_t threads_per_shard = 1;
  // Pin workers round-robin across online cores (Linux; no-op elsewhere or
  // on failure).  Worker (shard s, index w) gets core
  // (s * threads_per_shard + w) % num_cores — shard-major, so at
  // shards <= cores each shard's workers land on their own core.
  bool pin_cores = false;
  // Cap on entries a single kScan request may ask for (bounds the worker's
  // scratch buffer; larger requests are clamped).
  uint32_t max_scan_entries = 1024;
};

// Merged point-in-time counters (see also the server.* metrics).
struct ServerStats {
  uint64_t requests = 0;        // ops executed
  uint64_t batches = 0;         // client batches accepted
  uint64_t shard_handoffs = 0;  // shard tasks enqueued
  uint64_t queue_depth_peak = 0;
  uint64_t op_counts[kNumOpTypes] = {0, 0, 0, 0, 0};
  // Ops executed per shard (router skew is visible here).
  std::vector<uint64_t> shard_requests;
};

class DyTISServer {
 public:
  // The server does not own the index; destroy the server (or Stop()) before
  // the index.  Workers start immediately.
  DyTISServer(ServerIndex* index, const ServerOptions& options = {});
  ~DyTISServer();

  DyTISServer(const DyTISServer&) = delete;
  DyTISServer& operator=(const DyTISServer&) = delete;

  // Synchronous: routes, enqueues per-shard tasks, blocks until every
  // response is written.  Requests within one batch that land on different
  // shards execute concurrently; requests to one shard execute in batch
  // order.
  void ExecuteBatch(const Request* requests, size_t n, Response* responses);

  // Asynchronous fire-and-measure: takes ownership of the request vector,
  // returns immediately.  End-to-end latency of every op (completion minus
  // submit, queueing included) is recorded when the batch completes;
  // responses are discarded.
  void SubmitBatch(std::vector<Request> requests);

  // Blocks until every submitted/executing batch has completed.
  void Drain();

  // Drains, stops and joins all workers.  Idempotent; called by the
  // destructor.  After Stop() the server accepts no further batches.
  void Stop();

  size_t inflight_batches() const {
    return inflight_.load(std::memory_order_acquire);
  }
  uint32_t num_shards() const { return index_->num_shards(); }
  const ServerIndex& index() const { return *index_; }

  // Per-op service latency (worker-side execution time, queue wait
  // excluded), merged across workers.
  LatencyRecorder ServiceLatency() const;
  // Per-op end-to-end latency of SubmitBatch traffic (queue wait included).
  LatencyRecorder EndToEndLatency() const;

  ServerStats Stats() const;

 private:
  struct BatchState;
  struct ShardTask {
    BatchState* batch = nullptr;
    // Request indices owned by one shard, in batch order.
    std::vector<uint32_t> indices;
  };
  struct ShardQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<ShardTask> tasks;
    bool stopped = false;
  };
  struct Worker {
    std::thread thread;
    // Recorders are flushed by the owning worker under recorder_mu_ (one
    // flush per task, not per op) and merged by the accessors under the same
    // mutex, so live reads are race-free.
    LatencyRecorder service;   // per-op execution latency
    LatencyRecorder e2e;       // per-op end-to-end (async batches)
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> op_counts[kNumOpTypes] = {};
  };

  void Route(BatchState* batch, const Request* requests, size_t n);
  void WorkerLoop(uint32_t shard, uint32_t worker_index, Worker* worker);
  void ExecuteOne(const Request& req, Response* resp);
  void CompleteBatch(BatchState* batch, Worker* worker);

  ServerIndex* index_;
  ServerOptions options_;
  std::vector<std::unique_ptr<ShardQueue>> queues_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::atomic<uint64_t>> shard_requests_;

  std::atomic<size_t> inflight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> handoffs_{0};
  std::atomic<int64_t> queue_depth_{0};
  std::atomic<uint64_t> queue_depth_peak_{0};
  std::atomic<bool> stopped_{false};
  // Guards the workers' recorders against concurrent merges in
  // ServiceLatency()/EndToEndLatency()/Stats().
  mutable std::mutex recorder_mu_;
};

// Pins the calling thread to `cpu` (Linux).  Returns false when pinning is
// unsupported or rejected (non-Linux, cpuset restrictions); callers treat
// pinning as best-effort.
bool PinThreadToCore(unsigned cpu);

// Order-sensitive checksum of a scan result, shared by the worker path and
// the tests' oracle side.
uint64_t ScanChecksum(const ServerIndex::ScanEntry* entries, size_t n);

}  // namespace server
}  // namespace dytis

#endif  // DYTIS_SRC_SERVER_SERVER_H_
