// ShardedDyTIS — the keyspace-partitioned facade of the serving front end.
//
// N independent DyTIS shards behind a RangeRouter: point operations route to
// the owning shard; Scan stitches per-shard cursors in key order.  Because
// the router is monotone (a shard owns one contiguous key range, ranges
// ascend with the shard index), the cross-shard merge degenerates to
// concatenation: drain the start key's shard, then each following shard from
// its first key — exactly the walk BasicDyTIS::Scan already does across its
// first-level tables, lifted one level up.
//
// Concurrency: each shard is a full BasicDyTIS with its own two-level write
// locking and its own epoch-reclamation domain, so shards share no state at
// all — a structural operation in one shard cannot stall another.  Reads and
// scans are lock-free per shard (epoch guards, src/sync/ebr.h); a stitched
// scan enters and leaves one shard's epoch domain per hop, so the guard
// coverage spans the shard handoff with no global epoch to contend on.
// Cross-shard consistency matches the single-index Scan contract: each
// per-shard leg is an atomic frozen-snapshot walk, stable keys appear
// exactly once in order, but there is no snapshot isolation across legs
// (entries inserted behind the stitch point are not revisited).
//
// This header is policy-generic like the core; the serving pipeline
// (src/server/server.h) fixes V = uint64_t and the shared-mutex policy.
#ifndef DYTIS_SRC_SERVER_SHARDED_DYTIS_H_
#define DYTIS_SRC_SERVER_SHARDED_DYTIS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/cursor.h"
#include "src/core/dytis.h"
#include "src/server/router.h"

namespace dytis {
namespace server {

// Splits a whole-index configuration across `num_shards` shards: the static
// first level (2^R tables) is what partitions the key space inside one
// DyTIS, and the router now does log2(shards) bits of that work, so each
// shard drops that many first-level bits.  Keeps the total first-level table
// count — and therefore the keys-per-EH dynamics the paper's defaults are
// tuned for — roughly constant as the shard count sweeps.
inline DyTISConfig ShardScaledConfig(DyTISConfig base, uint32_t num_shards) {
  int shard_bits = 0;
  while ((uint32_t{1} << (shard_bits + 1)) <= num_shards) {
    shard_bits++;
  }
  base.first_level_bits = base.first_level_bits > shard_bits
                              ? base.first_level_bits - shard_bits
                              : 0;
  return base;
}

template <typename V, typename Policy = SharedMutexPolicy>
class BasicShardedDyTIS {
 public:
  using ValueType = V;
  using Shard = BasicDyTIS<V, Policy>;
  using ScanEntry = std::pair<uint64_t, V>;

  explicit BasicShardedDyTIS(uint32_t num_shards,
                             const DyTISConfig& shard_config = DyTISConfig{})
      : router_(num_shards) {
    shards_.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; s++) {
      shards_.push_back(std::make_unique<Shard>(shard_config));
    }
  }

  const RangeRouter& router() const { return router_; }
  uint32_t num_shards() const { return router_.num_shards(); }
  Shard& shard(uint32_t s) { return *shards_[s]; }
  const Shard& shard(uint32_t s) const { return *shards_[s]; }

  // --- Point operations: route to the owning shard -------------------------

  bool Insert(uint64_t key, const V& value) {
    return ShardFor(key).Insert(key, value);
  }
  InsertResult InsertEx(uint64_t key, const V& value) {
    return ShardFor(key).InsertEx(key, value);
  }
  bool Find(uint64_t key, V* value) const {
    return ShardFor(key).Find(key, value);
  }
  bool Contains(uint64_t key) const { return Find(key, nullptr); }
  bool Update(uint64_t key, const V& value) {
    return ShardFor(key).Update(key, value);
  }
  bool Erase(uint64_t key) { return ShardFor(key).Erase(key); }

  // --- Cross-shard scan stitching ------------------------------------------

  // Copies up to `count` entries with key >= start_key in ascending key
  // order, crossing shard boundaries as needed.  Same contract as
  // BasicDyTIS::Scan; per-shard legs are epoch-guarded lock-free walks.
  size_t Scan(uint64_t start_key, size_t count, ScanEntry* out) const {
    size_t got = 0;
    // Later shards hold only keys above start_key (ranges ascend), so each
    // leg can pass start_key unchanged: a shard scans from max(start_key,
    // its first key).
    for (uint32_t s = router_.ShardFor(start_key);
         got < count && s < shards_.size(); s++) {
      got += shards_[s]->Scan(start_key, count - got, out + got);
    }
    return got;
  }

  // Bounded scan, stops before end_key (exclusive).
  size_t ScanRange(uint64_t start_key, uint64_t end_key, size_t count,
                   ScanEntry* out) const {
    if (start_key >= end_key) {
      return 0;
    }
    const size_t got = Scan(start_key, count, out);
    size_t lo = 0;
    size_t hi = got;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (out[mid].first < end_key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Visits every (key, value) in ascending key order across all shards.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& s : shards_) {
      s->ForEach(fn);
    }
  }

  // --- Aggregates ----------------------------------------------------------

  size_t size() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      n += s->size();
    }
    return n;
  }
  size_t MemoryBytes() const {
    size_t n = sizeof(*this) + shards_.capacity() * sizeof(void*);
    for (const auto& s : shards_) {
      n += s->MemoryBytes();
    }
    return n;
  }
  size_t NumSegments() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      n += s->NumSegments();
    }
    return n;
  }
  size_t StashEntries() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      n += s->StashEntries();
    }
    return n;
  }
  size_t QuiesceReclamation() {
    size_t n = 0;
    for (const auto& s : shards_) {
      n += s->QuiesceReclamation();
    }
    return n;
  }

  // Order-sensitive digest of the full (key, value) content, for the load
  // generator's determinism contract: two indexes with identical content in
  // identical order hash equal, any divergence (missing key, torn value,
  // misrouted entry changing the order) hashes different.
  uint64_t StateHash() const {
    static_assert(std::is_integral_v<V>,
                  "StateHash digests integral values only");
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    ForEach([&h](uint64_t key, const V& value) {
      h = MixHash(h ^ MixHash(key));
      h = MixHash(h ^ MixHash(static_cast<uint64_t>(value)));
    });
    return h;
  }

  // Per-shard structural invariants plus the two properties only the facade
  // can check: every key lives in the shard the router assigns it, and the
  // cross-shard walk is globally ascending.
  bool CheckShardingInvariants(std::string* error = nullptr) const {
    for (uint32_t s = 0; s < shards_.size(); s++) {
      std::string err;
      if (!shards_[s]->ValidateInvariants(&err)) {
        if (error != nullptr) {
          *error = "shard " + std::to_string(s) + ": " + err;
        }
        return false;
      }
      bool ok = true;
      shards_[s]->ForEach([&](uint64_t key, const V&) {
        if (ok && router_.ShardFor(key) != s) {
          if (error != nullptr) {
            *error = "key " + std::to_string(key) + " stored in shard " +
                     std::to_string(s) + " but routes to shard " +
                     std::to_string(router_.ShardFor(key));
          }
          ok = false;
        }
      });
      if (!ok) {
        return false;
      }
    }
    uint64_t prev = 0;
    bool have_prev = false;
    bool ordered = true;
    ForEach([&](uint64_t key, const V&) {
      if (ordered && have_prev && key <= prev) {
        if (error != nullptr) {
          *error = "cross-shard order violated near key " +
                   std::to_string(key);
        }
        ordered = false;
      }
      prev = key;
      have_prev = true;
    });
    return ordered;
  }

 private:
  static uint64_t MixHash(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  Shard& ShardFor(uint64_t key) { return *shards_[router_.ShardFor(key)]; }
  const Shard& ShardFor(uint64_t key) const {
    return *shards_[router_.ShardFor(key)];
  }

  RangeRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Forward cursor over a sharded index: one per-shard BasicCursor at a time,
// handed off in shard order when it runs dry.  Because shard ranges are
// disjoint and ascending, this *is* the key-order merge of the per-shard
// cursors; no heap is needed (see the router monotonicity property).
template <typename V, typename Policy = SharedMutexPolicy>
class BasicShardedCursor {
 public:
  explicit BasicShardedCursor(const BasicShardedDyTIS<V, Policy>& index,
                              size_t batch_size = 256)
      : index_(&index), batch_size_(batch_size) {
    SeekToFirst();
  }

  void SeekToFirst() { Seek(0); }

  // Positions at the smallest key >= target, crossing shards as needed.
  void Seek(uint64_t target) {
    shard_ = index_->router().ShardFor(target);
    cursor_ = std::make_unique<ShardCursor>(index_->shard(shard_),
                                            batch_size_);
    cursor_->Seek(target);
    AdvanceShardWhileDry();
  }

  bool Valid() const { return cursor_ != nullptr && cursor_->Valid(); }

  void Next() {
    cursor_->Next();
    AdvanceShardWhileDry();
  }

  uint64_t key() const { return cursor_->key(); }
  const V& value() const { return cursor_->value(); }

 private:
  using ShardCursor = BasicCursor<V, Policy>;

  // Hands off to the next shard's cursor until one yields a key or the
  // shards run out.
  void AdvanceShardWhileDry() {
    while (!cursor_->Valid() && shard_ + 1 < index_->num_shards()) {
      shard_++;
      cursor_ = std::make_unique<ShardCursor>(index_->shard(shard_),
                                              batch_size_);
    }
  }

  const BasicShardedDyTIS<V, Policy>* index_;
  size_t batch_size_;
  uint32_t shard_ = 0;
  std::unique_ptr<ShardCursor> cursor_;
};

template <typename V>
using ShardedDyTIS = BasicShardedDyTIS<V, SharedMutexPolicy>;
template <typename V>
using ShardedCursor = BasicShardedCursor<V, SharedMutexPolicy>;

}  // namespace server
}  // namespace dytis

#endif  // DYTIS_SRC_SERVER_SHARDED_DYTIS_H_
