// Range-based key router for the sharded serving front end.
//
// Partitions the full 64-bit key space into `num_shards` contiguous,
// near-equal ranges and maps every key to exactly one shard with a single
// multiply-shift:
//
//   ShardFor(key) = floor(key * num_shards / 2^64)
//
// Properties the router differential suite (tests/server_router_test.cc)
// pins:
//   * total     — every key maps to exactly one shard in [0, num_shards)
//   * monotone  — key1 <= key2  =>  ShardFor(key1) <= ShardFor(key2), so a
//                 shard owns one contiguous key range and a cross-shard scan
//                 stitches shards in index order with no merge heap
//   * balanced  — range widths differ by at most one key
//   * stable    — the mapping is a pure function of (key, num_shards): two
//                 routers with the same shard count agree on every key,
//                 across processes and builds
//
// Range partitioning (not hash partitioning) is a deliberate trade: it keeps
// the index's defining property — key order — visible at the serving layer,
// which is what makes Scan a first-class citizen.  The cost is that a skewed
// key distribution skews shard load; the load generator's hot-key storms
// exercise exactly that, and the bench JSON carries per-shard op counts so
// the imbalance is measurable (see DESIGN.md Section 9).
#ifndef DYTIS_SRC_SERVER_ROUTER_H_
#define DYTIS_SRC_SERVER_ROUTER_H_

#include <cassert>
#include <cstdint>

namespace dytis {
namespace server {

class RangeRouter {
 public:
  explicit RangeRouter(uint32_t num_shards) : num_shards_(num_shards) {
    assert(num_shards > 0);
  }

  uint32_t num_shards() const { return num_shards_; }

  // The owning shard of `key`; always in [0, num_shards).
  uint32_t ShardFor(uint64_t key) const {
    return static_cast<uint32_t>(
        (static_cast<unsigned __int128>(key) * num_shards_) >> 64);
  }

  // Smallest key routed to `shard` (ceil(shard * 2^64 / num_shards)).
  uint64_t RangeStart(uint32_t shard) const {
    assert(shard < num_shards_);
    if (shard == 0) {
      return 0;
    }
    const unsigned __int128 numerator =
        (static_cast<unsigned __int128>(shard) << 64) + num_shards_ - 1;
    return static_cast<uint64_t>(numerator / num_shards_);
  }

  // Largest key routed to `shard` (inclusive: 2^64 - 1 has no exclusive
  // upper bound in uint64_t).
  uint64_t RangeLast(uint32_t shard) const {
    assert(shard < num_shards_);
    if (shard + 1 == num_shards_) {
      return ~uint64_t{0};
    }
    return RangeStart(shard + 1) - 1;
  }

 private:
  uint32_t num_shards_;
};

}  // namespace server
}  // namespace dytis

#endif  // DYTIS_SRC_SERVER_ROUTER_H_
