#include "src/sync/ebr.h"

#include <cstdio>
#include <cstdlib>

#include "src/obs/trace.h"
#include "src/util/timer.h"

namespace dytis {
namespace {

// Hard lifecycle check that stays active in sanitizer builds (see
// DYTIS_SYNC_CHECKS in the header).  Not assert(): RelWithDebInfo defines
// NDEBUG, and these are exactly the configs that must catch misuse.
inline void FatalIf(bool condition, const char* what) {
#if DYTIS_SYNC_CHECKS
  if (condition) {
    std::fprintf(stderr, "dytis/sync fatal: %s\n", what);
    std::abort();
  }
#else
  (void)condition;
  (void)what;
#endif
}

std::atomic<uint64_t> next_domain_id{1};

// Per-thread registry of (domain id -> slot).  Kept tiny: one entry per
// domain the thread has ever read through, with dead-domain entries pruned
// lazily on the next lookup.  Linear scan: one or two live domains is the
// overwhelmingly common case, so the Enter() fast path is a handful of
// compares.
struct TlsEntry {
  uint64_t domain_id;
  EpochDomain::Slot* slot;
};

void ReleaseSlot(EpochDomain::Slot* slot) {
  if (slot->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    delete slot;
  }
}

struct TlsRegistry {
  std::vector<TlsEntry> entries;
  ~TlsRegistry() {
    for (const TlsEntry& e : entries) {
      ReleaseSlot(e.slot);
    }
  }
};

thread_local TlsRegistry tls_registry;

}  // namespace

EpochDomain::EpochDomain(size_t advance_threshold, size_t reclaim_batch)
    : advance_threshold_(advance_threshold == 0 ? 1 : advance_threshold),
      reclaim_batch_(reclaim_batch == 0 ? 1 : reclaim_batch),
      id_(next_domain_id.fetch_add(1, std::memory_order_relaxed)) {}

EpochDomain::~EpochDomain() {
  // Shutdown contract (the ~EhTable satellite): every reader must have left
  // before the owning index dies.  A non-idle slot here means a thread is
  // still inside a Guard and about to probe freed memory — abort loudly in
  // debug/sanitizer builds rather than let the use-after-free float.
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    for (Slot* slot : slots_) {
      FatalIf(slot->epoch.load(std::memory_order_acquire) != kIdleEpoch,
              "EpochDomain destroyed while a reader holds a Guard");
      slot->domain_dead.store(true, std::memory_order_release);
    }
  }
  // All slots idle: nothing can reach a retired object, so the whole
  // backlog is freed unconditionally — no epoch arithmetic at shutdown.
  for (const Retired& r : retired_) {
    r.deleter(r.obj);
    reclaimed_total_.fetch_add(1, std::memory_order_relaxed);
  }
  retired_.clear();
  std::vector<Slot*> slots;
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    slots.swap(slots_);
  }
  for (Slot* slot : slots) {
    ReleaseSlot(slot);
  }
}

EpochDomain::Slot* EpochDomain::SlotForThisThread() {
  auto& entries = tls_registry.entries;
  for (size_t i = 0; i < entries.size();) {
    if (entries[i].domain_id == id_) {
      return entries[i].slot;
    }
    if (entries[i].slot->domain_dead.load(std::memory_order_acquire)) {
      // The domain this entry belonged to is gone; drop our reference and
      // compact.  Amortised: each dead entry is visited once.
      ReleaseSlot(entries[i].slot);
      entries[i] = entries.back();
      entries.pop_back();
      continue;
    }
    i++;
  }
  // First Enter() against this domain from this thread: adopt an orphaned
  // slot (its owning thread exited; refs dropped to 1) or register a fresh
  // one.  Adoption bounds the slot array by peak thread concurrency even
  // under heavy thread churn.
  Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    for (Slot* candidate : slots_) {
      uint32_t one = 1;
      if (candidate->refs.compare_exchange_strong(
              one, 2, std::memory_order_acq_rel)) {
        slot = candidate;
        slot->depth = 0;
        break;
      }
    }
    if (slot == nullptr) {
      slot = new Slot();
      slots_.push_back(slot);
    }
  }
  entries.push_back({id_, slot});
  return slot;
}

EpochDomain::Slot* EpochDomain::Enter() {
  Slot* slot = SlotForThisThread();
  if (slot->depth++ == 0) {
    const uint64_t e = global_epoch_.load(std::memory_order_relaxed);
    slot->epoch.store(e, std::memory_order_relaxed);
    // Publish the announcement before any probe load: a TryAdvance whose
    // scan runs after this fence must observe the announcement, so it
    // cannot advance past a generation this reader is entering.
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
  return slot;
}

void EpochDomain::Exit(Slot* slot) {
  FatalIf(slot->depth == 0, "EpochGuard exit without matching enter");
  if (--slot->depth == 0) {
    // release: every probe load/store of the critical region completes
    // before the slot reads idle to an advance scan.
    slot->epoch.store(kIdleEpoch, std::memory_order_release);
  }
}

bool EpochDomain::InGuard() {
  auto& entries = tls_registry.entries;
  for (const TlsEntry& e : entries) {
    if (e.domain_id == id_) {
      return e.slot->depth > 0;
    }
  }
  return false;
}

void EpochDomain::RetireRaw(void* obj, void (*deleter)(void*)) {
  if (obj == nullptr) {
    return;
  }
  // Order the caller's unlink (the release store that removed obj from the
  // shared structure) before the epoch read: a reader that entered after
  // this fence either sees the unlink or announced an epoch >= e, and
  // either way cannot still reach obj once E >= e + 2.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  size_t backlog;
  {
    SpinGuard guard(retired_lock_);
    retired_.push_back({obj, deleter, e});
    backlog = retired_.size();
  }
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (backlog >= advance_threshold_) {
    TryReclaim(reclaim_batch_);
  }
}

bool EpochDomain::TryAdvance() {
  const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  // Pair with the announce fence in Enter(): after this fence, the scan
  // sees every announcement made before the reader's first probe load.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    for (Slot* slot : slots_) {
      const uint64_t announced = slot->epoch.load(std::memory_order_acquire);
      if (announced != kIdleEpoch && announced != e) {
        // A reader still inside the previous generation: cannot advance.
        advance_failures_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }
  uint64_t expected = e;
  if (global_epoch_.compare_exchange_strong(expected, e + 1,
                                            std::memory_order_seq_cst)) {
    advances_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return true;  // another writer advanced concurrently: same outcome
}

size_t EpochDomain::TryReclaim(size_t max_frees) {
#if DYTIS_OBS_ENABLED
  const uint64_t t0 = NowNanos();
#endif
  TryAdvance();
  const uint64_t e = global_epoch_.load(std::memory_order_acquire);
  std::vector<Retired> victims;
  {
    SpinGuard guard(retired_lock_);
    size_t kept = 0;
    for (size_t i = 0; i < retired_.size(); i++) {
      // Free-able once two advances separate retirement from now: every
      // reader that could have loaded a pointer to the object announced
      // epoch <= retired.epoch + 1, and both generations have drained.
      if (victims.size() < max_frees && retired_[i].epoch + 2 <= e) {
        victims.push_back(retired_[i]);
      } else {
        retired_[kept++] = retired_[i];
      }
    }
    retired_.resize(kept);
  }
  for (const Retired& r : victims) {
    r.deleter(r.obj);
  }
  if (!victims.empty()) {
    reclaimed_total_.fetch_add(victims.size(), std::memory_order_relaxed);
#if DYTIS_OBS_ENABLED
    DYTIS_OBS_TRACE(obs::TraceOp::kEpochReclaim, t0, NowNanos(),
                    /*table_id=*/0, static_cast<int32_t>(victims.size()));
#endif
  }
  return victims.size();
}

size_t EpochDomain::Drain() {
  size_t freed = 0;
  // An object retired at the current epoch needs two advances; a third pass
  // catches stragglers retired between passes.  If a reader pins an old
  // epoch the loop simply stops making progress and leaves the backlog for
  // the next amortised pass.
  for (int round = 0; round < 3; round++) {
    freed += TryReclaim(~size_t{0});
    SpinGuard guard(retired_lock_);
    if (retired_.empty()) {
      break;
    }
  }
  return freed;
}

EpochStats EpochDomain::Stats() const {
  EpochStats s;
  s.epoch = global_epoch_.load(std::memory_order_acquire);
  {
    SpinGuard guard(retired_lock_);
    s.retired_pending = retired_.size();
  }
  s.retired_total = retired_total_.load(std::memory_order_relaxed);
  s.reclaimed_total = reclaimed_total_.load(std::memory_order_relaxed);
  s.advances = advances_.load(std::memory_order_relaxed);
  s.advance_failures = advance_failures_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    s.slots = slots_.size();
    // Oldest announced epoch among busy readers; the lag between it and the
    // global epoch is the reclamation-stall gauge (see EpochStats).
    uint64_t oldest = kIdleEpoch;
    for (const Slot* slot : slots_) {
      const uint64_t e = slot->epoch.load(std::memory_order_acquire);
      if (e != kIdleEpoch && e < oldest) {
        oldest = e;
      }
    }
    if (oldest != kIdleEpoch && oldest < s.epoch) {
      s.epoch_lag = s.epoch - oldest;
    }
  }
  return s;
}

}  // namespace dytis
