// Epoch-based reclamation (EBR) for the DyTIS lock-free read path.
//
// The problem this solves: a structural operation (segment rebuild, split,
// directory doubling) replaces an object a lock-free reader may still be
// probing — the old segment core, the old segment, the old directory.  The
// old object cannot be freed until every reader that could hold a pointer
// into it is provably gone.  PR 4 solved this with a global pessimism: every
// reader pinned the EH directory lock shared, and retired cores were freed
// only while it was held exclusively — turning memory reclamation into a
// table-wide stall (and leaving the backlog unbounded between stalls).
//
// This subsystem replaces that with the classic three-epoch scheme (Fraser's
// thesis; crossbeam-epoch; the RCU-style node retirement ALEX and XIndex use
// for learned-index node replacement):
//
//   * A global epoch E, advanced one step at a time by retiring writers.
//   * Per-thread epoch slots.  A reader entering a critical region
//     announces the current E in its slot (Guard RAII); on exit it stores
//     kIdleEpoch.  Announce is a store + seq_cst fence, so an advance scan
//     that runs after the fence must see the announcement (and conversely).
//   * Retire(obj): tags the object with the current E and appends it to the
//     domain's retire list.  When the backlog crosses a threshold, the
//     retiring writer attempts one epoch advance and frees a bounded batch —
//     reclamation is amortised over writers, never a dedicated stall.
//   * Advance is legal when every non-idle slot announces the current E;
//     then E+1 begins.  An object retired at epoch e is free-able once
//     E >= e + 2: any reader that could have seen it announced e or e+1,
//     and both generations are provably empty by then.
//
// Guarantees and non-guarantees:
//   * A reader inside a Guard can follow any pointer it loaded from a live
//     shared structure; the pointee outlives the Guard even if concurrently
//     retired.
//   * Writers must NOT hold a Guard while retiring (they would block their
//     own advance); DyTIS writers are protected by locks instead.
//   * Reclamation is bounded-amortised, not immediate: the backlog can grow
//     to (threshold + in-flight retires) while readers pin an old epoch, and
//     drains as soon as they leave.  Quiesce points (destructor, checkpoint)
//     call Drain().
//
// Thread-slot lifetime: slots are refcounted (domain + owning thread).  A
// thread's slot is registered lazily on first Enter() against a domain and
// released from a thread_local registry at thread exit; a domain's
// destructor marks its slots dead and drops its reference.  Slots of exited
// threads are adopted by new threads, so slot count is bounded by peak
// thread concurrency, not thread churn.
//
// The destructor asserts that every slot is idle (no reader can outlive the
// domain) and then frees the entire backlog unconditionally.  The assertion
// is active in debug AND sanitizer builds (DYTIS_SYNC_CHECKS below): a
// reader alive at domain destruction is a use-after-free in the making and
// must fail fast, not quietly.
#ifndef DYTIS_SRC_SYNC_EBR_H_
#define DYTIS_SRC_SYNC_EBR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/core/lock_policy.h"  // SpinLock / SpinGuard / CpuRelax

// Lifecycle checks stay on in sanitizer builds even though RelWithDebInfo
// defines NDEBUG: the sanitizer configs are exactly where misuse must fail
// fast.
#if !defined(NDEBUG) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_ADDRESS__)
#define DYTIS_SYNC_CHECKS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DYTIS_SYNC_CHECKS 1
#else
#define DYTIS_SYNC_CHECKS 0
#endif
#else
#define DYTIS_SYNC_CHECKS 0
#endif

namespace dytis {

// Counter snapshot for observability (obs::StatsSnapshot exports these; the
// reclamation tests assert backlog bounds through retired_pending).
struct EpochStats {
  uint64_t epoch = 0;            // current global epoch
  // Distance between the global epoch and the oldest epoch any in-flight
  // reader still announces (0 when no reader is inside a Guard).  A lag
  // that stays >= 1 across samples means a long-running reader is pinning
  // an old generation and the retire backlog cannot drain past it.
  uint64_t epoch_lag = 0;
  uint64_t retired_pending = 0;  // objects retired but not yet freed
  uint64_t retired_total = 0;    // objects ever retired
  uint64_t reclaimed_total = 0;  // objects freed
  uint64_t advances = 0;         // successful epoch advances
  uint64_t advance_failures = 0; // advance attempts blocked by a reader
  uint64_t slots = 0;            // registered thread slots (live + adoptable)
};

class EpochDomain {
 public:
  // Epoch value a slot announces when its thread is outside any Guard.
  static constexpr uint64_t kIdleEpoch = ~uint64_t{0};

  // advance_threshold: retire-list length at which a retiring writer runs an
  // amortised advance-and-reclaim pass.  reclaim_batch: max objects freed
  // per pass (bounds the latency any single writer pays).
  explicit EpochDomain(size_t advance_threshold = 32,
                       size_t reclaim_batch = 256);
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // One per-thread-per-domain epoch announcement cell.  alignas keeps two
  // threads' announcements off one cache line: the advance scan reads all of
  // them, but each reader writes only its own.
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdleEpoch};
    // Lifetime references: the domain and the owning thread.  Freed by
    // whichever side releases last; an idle slot whose thread exited
    // (refs == 1) can be adopted by a newly registering thread.
    std::atomic<uint32_t> refs{2};
    // Set by ~EpochDomain so thread-local registries drop their entry
    // lazily instead of dereferencing a dead domain.
    std::atomic<bool> domain_dead{false};
    // Guard nesting depth; touched only by the owning thread.
    uint32_t depth = 0;
  };

  // Reader-side critical region entry/exit.  Enter announces the current
  // epoch in this thread's slot (registering one on first use) and returns
  // the slot for the matching Exit.  Nested Guards are counted; only the
  // outermost pair announces/clears.
  Slot* Enter();
  static void Exit(Slot* slot);

  // True when the calling thread is inside a Guard of this domain.  Debug /
  // assertion helper (e.g. "destructor must not run inside a Guard").
  bool InGuard();

  // Hands `obj` to the domain for deferred deletion once every reader that
  // could hold it is gone.  Never frees inline; may run one bounded
  // advance-and-reclaim pass (of *older* objects) when the backlog crosses
  // the threshold.  The caller must have unlinked obj from every shared
  // structure, must not touch it again, and must not be inside a Guard.
  template <typename T>
  void Retire(T* obj) {
    RetireRaw(obj, [](void* p) { delete static_cast<T*>(p); });
  }

  // Type-erased Retire for callers that manage their own deletion.
  void RetireRaw(void* obj, void (*deleter)(void*));

  // One advance attempt plus a bounded free pass.  Returns objects freed.
  size_t TryReclaim(size_t max_frees);

  // Best-effort full drain (quiesce point: destructor, checkpoint).  Runs
  // enough advance passes to free everything retired before the call,
  // unless a concurrent reader pins an old epoch.  Returns objects freed.
  size_t Drain();

  EpochStats Stats() const;
  uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

 private:
  struct Retired {
    void* obj;
    void (*deleter)(void*);
    uint64_t epoch;  // global epoch when retired
  };

  Slot* SlotForThisThread();
  // True when the epoch advanced (every non-idle slot announces current E).
  bool TryAdvance();

  const size_t advance_threshold_;
  const size_t reclaim_batch_;
  // Identifies this domain in thread-local registries across the address
  // reuse of a deleted domain (monotone, process-wide).
  const uint64_t id_;

  std::atomic<uint64_t> global_epoch_{0};

  mutable std::mutex slots_mu_;
  std::vector<Slot*> slots_;

  mutable SpinLock retired_lock_;
  std::vector<Retired> retired_;

  std::atomic<uint64_t> retired_total_{0};
  std::atomic<uint64_t> reclaimed_total_{0};
  std::atomic<uint64_t> advances_{0};
  std::atomic<uint64_t> advance_failures_{0};
};

// RAII reader guard: everything reachable from shared pointers loaded while
// the guard is alive stays alive until the guard is dropped, even if
// concurrently retired.  Cheap enough for point lookups: one thread-local
// lookup, one store, one fence (uncontended; no shared-line RMW).
class EpochGuard {
 public:
  explicit EpochGuard(EpochDomain* domain) : slot_(domain->Enter()) {}
  ~EpochGuard() { EpochDomain::Exit(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain::Slot* slot_;
};

// Guard for single-threaded policies: no domain, no cost.  Lets templated
// code declare `ReadGuard guard(ebr_)` unconditionally.
struct NoEpochGuard {
  explicit NoEpochGuard(EpochDomain*) {}
};

}  // namespace dytis

#endif  // DYTIS_SRC_SYNC_EBR_H_
