#include "src/core/remap_function.h"

#include <algorithm>
#include <cassert>

#include "src/util/bitops.h"

namespace dytis {

RemapFunction::RemapFunction(int key_bits, uint32_t num_buckets)
    : key_bits_(key_bits), subrange_bits_(0), starts_{0, num_buckets} {
  assert(key_bits >= 0 && key_bits <= 63);
  assert(num_buckets >= 1);
}

RemapFunction::RemapFunction(int key_bits, std::vector<uint32_t> counts)
    : key_bits_(key_bits) {
  assert(key_bits >= 0 && key_bits <= 63);
  assert(!counts.empty());
  assert(IsPow2(counts.size()));
  subrange_bits_ = FloorLog2(counts.size());
  assert(subrange_bits_ <= key_bits_);
  starts_.resize(counts.size() + 1);
  starts_[0] = 0;
  for (size_t i = 0; i < counts.size(); i++) {
    assert(counts[i] >= 1);
    starts_[i + 1] = starts_[i] + counts[i];
  }
}

uint32_t RemapFunction::SubrangeFor(uint64_t local_key) const {
  if (subrange_bits_ == 0) {
    return 0;
  }
  return static_cast<uint32_t>(local_key >> (key_bits_ - subrange_bits_));
}

uint32_t RemapFunction::BucketIndexFor(uint64_t local_key) const {
  const uint32_t sub = SubrangeFor(local_key);
  const int span_bits = key_bits_ - subrange_bits_;
  const uint64_t offset = LowBits(local_key, span_bits);
  const uint32_t count = BucketCount(sub);
  const unsigned __int128 product =
      static_cast<unsigned __int128>(offset) * count;
  return starts_[sub] + static_cast<uint32_t>(product >> span_bits);
}

RemapFunction::Placement RemapFunction::PlacementFor(uint64_t local_key) const {
  const uint32_t sub = SubrangeFor(local_key);
  const int span_bits = key_bits_ - subrange_bits_;
  const uint64_t offset = LowBits(local_key, span_bits);
  const uint32_t count = BucketCount(sub);
  const unsigned __int128 product =
      static_cast<unsigned __int128>(offset) * count;
  Placement p;
  p.bucket = starts_[sub] + static_cast<uint32_t>(product >> span_bits);
  const uint64_t rem =
      static_cast<uint64_t>(product - ((product >> span_bits) << span_bits));
  p.permille = static_cast<uint32_t>(
      (static_cast<unsigned __int128>(rem) * 1000) >> span_bits);
  return p;
}

uint64_t RemapFunction::FirstKeyOfBucket(uint32_t bucket) const {
  if (bucket >= num_buckets()) {
    return (key_bits_ >= 64) ? ~uint64_t{0} : Pow2(key_bits_);
  }
  // Find the sub-range owning this bucket: largest i with starts_[i] <= bucket.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), bucket);
  const uint32_t sub = static_cast<uint32_t>(it - starts_.begin()) - 1;
  const int span_bits = key_bits_ - subrange_bits_;
  const uint32_t count = BucketCount(sub);
  const uint64_t rel = bucket - starts_[sub];
  // Smallest offset with floor(offset * count / 2^span_bits) == rel:
  // offset = ceil(rel * 2^span_bits / count).
  const unsigned __int128 numer =
      (static_cast<unsigned __int128>(rel) << span_bits) + count - 1;
  const uint64_t offset = static_cast<uint64_t>(numer / count);
  const uint64_t sub_base = static_cast<uint64_t>(sub) << span_bits;
  return sub_base | offset;
}

std::vector<uint32_t> RemapFunction::Counts() const {
  std::vector<uint32_t> counts(starts_.size() - 1);
  for (size_t i = 0; i + 1 < starts_.size(); i++) {
    counts[i] = starts_[i + 1] - starts_[i];
  }
  return counts;
}

std::vector<uint32_t> RemapFunction::RefinedCounts(int new_subrange_bits) const {
  assert(new_subrange_bits >= subrange_bits_);
  assert(new_subrange_bits <= key_bits_);
  const int d = new_subrange_bits - subrange_bits_;
  const uint32_t children = static_cast<uint32_t>(Pow2(d));
  std::vector<uint32_t> refined;
  refined.reserve(num_subranges() * children);
  for (uint32_t s = 0; s < num_subranges(); s++) {
    const uint32_t c = BucketCount(s);
    // Child boundaries follow the parent's linear mapping exactly, so the
    // refined function is pointwise identical to the coarse one.
    uint32_t prev = 0;
    for (uint32_t j = 1; j <= children; j++) {
      const uint32_t boundary = static_cast<uint32_t>(
          (static_cast<uint64_t>(c) * j) >> d);
      refined.push_back(boundary - prev);
      prev = boundary;
    }
  }
  return refined;
}

}  // namespace dytis
