// Tunable parameters of the DyTIS index (Section 4.1 of the paper lists the
// defaults used in the evaluation; bench_params sweeps them).
#ifndef DYTIS_SRC_CORE_CONFIG_H_
#define DYTIS_SRC_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace dytis {

// Which structural operation of Algorithm 1 a fault-injection rule targets.
enum class StructuralOp : uint8_t { kRemap, kExpand, kSplit, kDoubling };

// Deterministic fault injection for the structural-overflow path (testing
// hook).  When enabled, matching structural operations report failure
// without touching the index, which drives the insert state machine down
// its fallback chain (remap -> split/expand -> doubling -> stash) exactly
// as if the operation had failed for real.  Attempts are numbered per EH
// table in the order they match a rule (0-based); attempt n fails when
// start_op <= n < start_op + fail_count.
struct FaultPolicy {
  static constexpr uint64_t kAlways = ~uint64_t{0};

  bool fail_remap = false;
  bool fail_expand = false;
  bool fail_split = false;
  bool fail_doubling = false;
  // First matching structural attempt to fail (0-based).
  uint64_t start_op = 0;
  // Number of matching attempts to fail from start_op on; 0 disables the
  // deterministic window, kAlways fails every matching attempt.
  uint64_t fail_count = 0;
  // Seeded probabilistic mode: when > 0 the deterministic window above is
  // ignored and each matching attempt independently fails with this
  // probability.  Draws come from a per-table SplitMix64 stream seeded with
  // rng_seed ^ table id, so a single-writer run is exactly reproducible
  // (attack runs mix structural faults with adversarial keys this way; see
  // bench_attack and eh_table_fault_test).
  double fail_probability = 0.0;
  uint64_t rng_seed = 0;
  // Crash-injection harness hook: a matching attempt raises SIGKILL (dying
  // mid-structural-op with no cleanup, exactly like a real crash) instead of
  // reporting failure.  Used by the recovery crash tests to place
  // deterministic kill points inside split/expansion/remap/doubling; see
  // tests/dytis_crashkill.cc.
  bool crash_instead = false;

  // Observation hook: called for every matching attempt *before* the
  // fail/crash decision, from inside the structural operation's critical
  // section (segment lock held; split/doubling additionally hold the
  // directory lock).  Its return value decides whether the attempt also
  // fails (true = fail as usual, false = observe only, operation proceeds).
  // Raw function pointer rather than std::function: DyTISConfig must stay
  // trivially copyable because snapshots serialize it as raw bytes.  The
  // concurrency tests use this to pin a writer mid-structural-op while
  // readers hammer the segment (tests/optimistic_read_test.cc).
  bool (*on_match)(void* arg, StructuralOp op) = nullptr;
  void* on_match_arg = nullptr;

  bool Enabled() const { return fail_count != 0 || fail_probability > 0.0; }

  bool Matches(StructuralOp op) const {
    switch (op) {
      case StructuralOp::kRemap:
        return fail_remap;
      case StructuralOp::kExpand:
        return fail_expand;
      case StructuralOp::kSplit:
        return fail_split;
      case StructuralOp::kDoubling:
        return fail_doubling;
    }
    return false;
  }

  // Convenience: a policy that fails every structural operation.
  static FaultPolicy FailEverything() {
    FaultPolicy p;
    p.fail_remap = p.fail_expand = p.fail_split = p.fail_doubling = true;
    p.fail_count = kAlways;
    return p;
  }
};

// Thresholds and hysteresis for the per-segment degradation detectors
// (src/obs/degradation.h) and the online mitigation path
// (BasicDyTIS::MitigateDegraded / EhTable::RepairSegmentAt).  Detection is
// pull-based — it reads HealthReport snapshots off the hot path, so these
// knobs cost nothing on inserts/lookups.  Plain trivially-copyable fields,
// like the rest of DyTISConfig (snapshots serialize the config as raw
// bytes).
struct DegradationPolicy {
  // A segment observation *trips* when any signal crosses its threshold:
  //   - stash_size >= stash_depth_threshold (absolute stash depth), or
  //   - stash_size >= stash_rate_threshold * num_keys (relative), or
  //   - mean PLR in-bucket error >= plr_mean_error_threshold slots.
  // It *clears* when every signal is below threshold * clear_fraction; the
  // band in between holds the current state (hysteresis).
  size_t stash_depth_threshold = 32;
  double stash_rate_threshold = 0.10;
  double plr_mean_error_threshold = 8.0;
  double clear_fraction = 0.5;

  // Consecutive tripping observations before a segment is marked degraded,
  // and consecutive clear observations before the mark is dropped.  Both
  // >= 1; higher values trade detection latency for flap resistance.
  int trip_strikes = 2;
  int clear_strikes = 2;

  // Mitigation: seed for the keyed re-salt of repaired remap functions
  // (0 = derive from the policy defaults; any value works, it only has to
  // be unpredictable to the attacker).  allow_limit_override lets a
  // quarantined segment whose keys cannot fit under Limit_seg (a depth-cap
  // stash bomb) be rebuilt beyond the limit — trading memory for restored
  // throughput instead of staying degraded forever.
  uint64_t salt_seed = 0;
  bool allow_limit_override = true;

  // Bucket budget of the beyond-limit quarantine rebuild, in buckets per
  // resident key: bounds the memory the override may trade (a dense run
  // narrower than any reachable bucket span would otherwise drive the
  // allocation toward span/capacity buckets).  Keys that still overflow at
  // the budget spill back into the stash.
  double override_budget_per_key = 2.0;
};

struct DyTISConfig {
  // R: number of key MSBs used by the static first level; the index holds
  // 2^R independent Extendible-Hashing tables.  Paper default: 9.
  int first_level_bits = 9;

  // B_size: bytes per bucket.  With 8-byte keys and 8-byte values the paper
  // default of 2KB stores 128 pairs per bucket.
  size_t bucket_bytes = 2048;

  // U_t: segment-utilization threshold that selects between the structural
  // operations in Algorithm 1.  Paper default: 0.6.
  double util_threshold = 0.6;

  // L_start: local depth at which DyTIS stops behaving like plain Extendible
  // hashing and starts remapping/expansion.  Paper default: 6.
  int l_start = 6;

  // L' = L_start + l_prime_delta: the local depth at which the segment-size
  // limit decision is made (Section 3.3, "Selecting a segment size").
  int l_prime_delta = 2;

  // Limit_seg: the segment-size cap is
  //   limit_multiplier * 2^(LD - L_start + 1) buckets.
  // It doubles per local depth as the paper requires.  When an EH observes a
  // large share of expansions by the time it reaches L' (a uniform-ish key
  // distribution), the multiplier is raised to limit_multiplier_large
  // ("increased to 128 times, from 2 times by default").
  uint32_t limit_multiplier = 2;
  uint32_t limit_multiplier_large = 128;
  // Share of expansion among structural operations above which the large
  // multiplier is adopted.
  double expansion_share_threshold = 0.5;

  // Maximum refinement of a segment's remapping function: up to
  // 2^max_subrange_bits piecewise-linear sub-ranges per segment
  // ("Multiple models per node", design consideration 3).
  int max_subrange_bits = 6;

  // Deletion: when a segment's utilization falls below this threshold its
  // buckets are merged (segment shrink), the inverse of remapping.
  double merge_threshold = 0.2;

  // Robustness cap (this reproduction's addition; see DESIGN.md Section 5).
  // MSB-indexed Extendible hashing needs directory depth proportional to the
  // longest shared key prefix of a dense cluster, so adversarially dense
  // key ranges (e.g. millions of consecutive integers at the bottom of the
  // key space) would otherwise grow the directory without bound.  When an
  // EH reaches this global depth and every structural repair is exhausted,
  // inserts fall back to a per-segment sorted overflow stash (correct but
  // slower; stats.stash_inserts counts how often it happens -- zero for all
  // of the paper's workloads).
  int max_global_depth = 24;

  // Bound on full-bucket retry iterations of the insert state machine.  When
  // the bound is exhausted (structure keeps changing without ever fitting
  // the key) the insert terminates through the stash path instead of
  // retrying further -- it can never fail silently.
  int max_structural_retries = 256;

  // Initial per-segment stash bound.  Purely observational: when a stash
  // outgrows its bound the bound doubles and stats.stash_bound_growths is
  // bumped, flagging workloads that degrade into the stash.
  size_t stash_soft_limit = 64;

  // Hard cap on per-segment stash entries; 0 = unbounded (default).  When a
  // capped stash is full and every structural repair is exhausted, Insert
  // reports InsertResult::kHardError instead of storing the key -- the only
  // way an insert can fail, and it is always reported, never silent.
  size_t stash_hard_limit = 0;

  // Version-validated lock-free point lookups (Get / Contains) on
  // thread-safe builds.  When on, readers probe segments without taking the
  // per-segment lock, validating the segment's seqlock version around the
  // probe and retrying on writer overlap; when off (or when the policy /
  // value type cannot support it) every lookup takes the per-segment shared
  // lock exactly as before.  Per-index toggle so the same binary can bench
  // both paths (bench_fig12_concurrency read-scaling section).
  bool optimistic_reads = true;

  // Bounded optimistic retries per lookup before falling back to the
  // pessimistic shared-lock path (counted in stats.optimistic_read_*).
  int optimistic_read_retries = 8;

  // --- Epoch-based reclamation (thread-safe builds; src/sync/ebr.h) -------
  //
  // Structural operations retire replaced objects (segment cores, split
  // parents, doubled directories) to an epoch domain instead of freeing
  // them; retiring writers amortise the reclamation.  These knobs bound the
  // backlog/latency trade-off; the defaults keep retired memory small
  // without measurable writer overhead (bench_micro reclamation row).

  // Retired-object backlog length at which a retiring writer runs one
  // epoch-advance + bounded-free pass.
  size_t epoch_advance_threshold = 32;

  // Maximum objects freed per amortised reclamation pass (bounds the pause
  // any single writer absorbs; the remainder drains on later passes).
  size_t epoch_reclaim_batch = 256;

  // Deterministic structural-failure injection (tests only; disabled by
  // default).  See FaultPolicy.
  FaultPolicy fault_policy;

  // Degradation-detector thresholds + mitigation knobs (adversarial
  // robustness; see DESIGN.md "Adversarial robustness").  Off the hot path:
  // only read when a detector evaluates a HealthReport or a repair runs.
  DegradationPolicy degradation;

  // Derived: key/value pairs per bucket.
  size_t BucketCapacity() const { return bucket_bytes / 16; }
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_CONFIG_H_
