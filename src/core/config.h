// Tunable parameters of the DyTIS index (Section 4.1 of the paper lists the
// defaults used in the evaluation; bench_params sweeps them).
#ifndef DYTIS_SRC_CORE_CONFIG_H_
#define DYTIS_SRC_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace dytis {

struct DyTISConfig {
  // R: number of key MSBs used by the static first level; the index holds
  // 2^R independent Extendible-Hashing tables.  Paper default: 9.
  int first_level_bits = 9;

  // B_size: bytes per bucket.  With 8-byte keys and 8-byte values the paper
  // default of 2KB stores 128 pairs per bucket.
  size_t bucket_bytes = 2048;

  // U_t: segment-utilization threshold that selects between the structural
  // operations in Algorithm 1.  Paper default: 0.6.
  double util_threshold = 0.6;

  // L_start: local depth at which DyTIS stops behaving like plain Extendible
  // hashing and starts remapping/expansion.  Paper default: 6.
  int l_start = 6;

  // L' = L_start + l_prime_delta: the local depth at which the segment-size
  // limit decision is made (Section 3.3, "Selecting a segment size").
  int l_prime_delta = 2;

  // Limit_seg: the segment-size cap is
  //   limit_multiplier * 2^(LD - L_start + 1) buckets.
  // It doubles per local depth as the paper requires.  When an EH observes a
  // large share of expansions by the time it reaches L' (a uniform-ish key
  // distribution), the multiplier is raised to limit_multiplier_large
  // ("increased to 128 times, from 2 times by default").
  uint32_t limit_multiplier = 2;
  uint32_t limit_multiplier_large = 128;
  // Share of expansion among structural operations above which the large
  // multiplier is adopted.
  double expansion_share_threshold = 0.5;

  // Maximum refinement of a segment's remapping function: up to
  // 2^max_subrange_bits piecewise-linear sub-ranges per segment
  // ("Multiple models per node", design consideration 3).
  int max_subrange_bits = 6;

  // Deletion: when a segment's utilization falls below this threshold its
  // buckets are merged (segment shrink), the inverse of remapping.
  double merge_threshold = 0.2;

  // Robustness cap (this reproduction's addition; see DESIGN.md Section 5).
  // MSB-indexed Extendible hashing needs directory depth proportional to the
  // longest shared key prefix of a dense cluster, so adversarially dense
  // key ranges (e.g. millions of consecutive integers at the bottom of the
  // key space) would otherwise grow the directory without bound.  When an
  // EH reaches this global depth and every structural repair is exhausted,
  // inserts fall back to a per-segment sorted overflow stash (correct but
  // slower; stats.stash_inserts counts how often it happens -- zero for all
  // of the paper's workloads).
  int max_global_depth = 24;

  // Derived: key/value pairs per bucket.
  size_t BucketCapacity() const { return bucket_bytes / 16; }
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_CONFIG_H_
