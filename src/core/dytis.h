// DyTIS — Dynamic dataset Targeted Index Structure (EuroSys '23).
//
// Public API of the reproduction.  DyTIS is an ordered key/value index over
// 64-bit integer keys that is simultaneously efficient for search, insert,
// and scan, needs no bulk-loading phase, and adapts its structure online to
// the key distribution.
//
// Architecture (Section 3.2): a static first level of 2^R Extendible-Hashing
// tables indexed by the R key MSBs; each EH table is a directory -> segments
// -> sorted buckets structure where the bucket index of a key comes from a
// per-segment piecewise-linear remapping function (an incrementally learned
// CDF) instead of a hash, preserving the natural key order end to end.
//
// Typical use:
//
//   dytis::DyTIS<uint64_t> index;                  // single-threaded
//   index.Insert(key, value);                      // insert / in-place update
//   uint64_t v;
//   if (index.Find(key, &v)) { ... }
//   std::vector<std::pair<uint64_t, uint64_t>> out(100);
//   size_t n = index.Scan(start_key, 100, out.data());
//
//   dytis::ConcurrentDyTIS<uint64_t> shared_index; // thread-safe variant
#ifndef DYTIS_SRC_CORE_DYTIS_H_
#define DYTIS_SRC_CORE_DYTIS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/eh_table.h"
#include "src/core/insert_result.h"
#include "src/core/lock_policy.h"
#include "src/core/stats.h"
#include "src/obs/degradation.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/util/bitops.h"
#include "src/util/timer.h"

namespace dytis {

template <typename V, typename Policy = NoLockPolicy>
class BasicDyTIS {
 public:
  using ValueType = V;
  using ScanEntry = std::pair<uint64_t, V>;

  explicit BasicDyTIS(const DyTISConfig& config = DyTISConfig{})
      : config_(config),
        stats_(std::make_unique<DyTISStats>()),
        created_ns_(NowNanos()) {
    if constexpr (Policy::kThreadSafe) {
      // One epoch-reclamation domain shared by every first-level table: a
      // reader guard covers whichever tables the operation touches, and
      // retirement pressure amortises across the whole index instead of
      // per-EH.  Single-threaded builds never defer frees and skip the
      // domain entirely.
      ebr_ = std::make_unique<EpochDomain>(config_.epoch_advance_threshold,
                                           config_.epoch_reclaim_batch);
    }
    const size_t tables = static_cast<size_t>(Pow2(config_.first_level_bits));
    const int eh_key_bits = kKeyBits - config_.first_level_bits;
    tables_.reserve(tables);
    for (size_t i = 0; i < tables; i++) {
      tables_.push_back(std::make_unique<EhTable<V, Policy>>(
          config_, stats_.get(), eh_key_bits, static_cast<uint32_t>(i),
          ebr_.get()));
    }
  }

  // Inserts (key, value); if the key exists its value is updated in place.
  // Returns true when the key is new.  Equivalent to IsNewKey(InsertEx());
  // callers that must distinguish the stash fallback or a hard error from a
  // duplicate should use InsertEx.
  bool Insert(uint64_t key, const V& value) {
    return IsNewKey(InsertEx(key, value));
  }

  // Insert with the full outcome (see InsertResult).  kHardError -- the
  // only outcome that does not store the key -- is reachable only when
  // config.stash_hard_limit caps the overflow stash.
  InsertResult InsertEx(uint64_t key, const V& value) {
    const InsertResult result = TableFor(key).InsertEx(key, value);
    if (IsNewKey(result)) {
      size_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  }

  // Point lookup.  Returns false when the key is absent; otherwise stores
  // the value through `value` (which may be null to test existence only).
  bool Find(uint64_t key, V* value) const {
    return TableFor(key).Find(key, value);
  }

  // Existence test; same path as Find (including the optimistic lock-free
  // probe on concurrent builds with DyTISConfig::optimistic_reads).
  bool Contains(uint64_t key) const { return Find(key, nullptr); }

  // True when point lookups on this index can take the version-validated
  // lock-free path (policy + value type + config all permit it).
  static constexpr bool kOptimisticCapable =
      EhTable<V, Policy>::kOptimisticCapable;
  bool OptimisticReadsEnabled() const {
    return kOptimisticCapable && config_.optimistic_reads;
  }

  // In-place update of an existing key.  Returns false when absent.
  bool Update(uint64_t key, const V& value) {
    return TableFor(key).Update(key, value);
  }

  // Deletes a key.  Returns false when absent.
  bool Erase(uint64_t key) {
    if (TableFor(key).Erase(key)) {
      size_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // Range scan: copies up to `count` entries with key >= start_key, in
  // ascending key order, into `out`.  Returns the number copied (smaller
  // only when the index runs out of keys).
  size_t Scan(uint64_t start_key, size_t count, ScanEntry* out) const {
    size_t got = 0;
    size_t t = TableIndexFor(start_key);
    bool from_begin = false;
    while (got < count && t < tables_.size()) {
      got += tables_[t]->Scan(start_key, from_begin, count - got, out + got);
      from_begin = true;  // subsequent EHs are scanned from their first key
      t++;
    }
    return got;
  }

  // Bounded range scan: like Scan but stops before `end_key` (exclusive).
  // Returns the number of entries copied.
  size_t ScanRange(uint64_t start_key, uint64_t end_key, size_t count,
                   ScanEntry* out) const {
    if (start_key >= end_key) {
      return 0;
    }
    const size_t got = Scan(start_key, count, out);
    // Clip at the first entry >= end_key (entries are sorted).
    size_t lo = 0;
    size_t hi = got;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (out[mid].first < end_key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Number of keys in [start_key, end_key).  Costs a scan of the range.
  size_t CountRange(uint64_t start_key, uint64_t end_key) const {
    size_t total = 0;
    std::vector<ScanEntry> buf(512);
    uint64_t cursor = start_key;
    while (cursor < end_key) {
      const size_t got = ScanRange(cursor, end_key, buf.size(), buf.data());
      total += got;
      if (got < buf.size()) {
        break;
      }
      const uint64_t last = buf[got - 1].first;
      if (last == ~uint64_t{0}) {
        break;
      }
      cursor = last + 1;
    }
    return total;
  }

  // Visits every (key, value) pair in ascending key order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& table : tables_) {
      table->ForEach(fn);
    }
  }

  // Number of keys currently stored.
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  const DyTISConfig& config() const { return config_; }
  const DyTISStats& stats() const { return *stats_; }
  // Mutable access so harnesses can Reset() counters between phases.
  DyTISStats& mutable_stats() { return *stats_; }

  // Approximate heap footprint of the index structure (directories,
  // segments, buckets).  Used by the memory-usage experiment.
  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this) + tables_.capacity() * sizeof(void*);
    for (const auto& table : tables_) {
      bytes += table->MemoryBytes();
    }
    return bytes;
  }

  // Diagnostic counters for the experiments.
  size_t NumSegments() const {
    size_t n = 0;
    for (const auto& table : tables_) {
      n += table->NumSegments();
    }
    return n;
  }

  // --- Observability gauges (see src/obs/snapshot.h) -----------------------

  // Deepest first-level table's global depth.
  int MaxGlobalDepth() const {
    int depth = 0;
    for (const auto& table : tables_) {
      depth = std::max(depth, table->global_depth());
    }
    return depth;
  }

  // Total directory entries (sum of 2^GD over the first-level tables).
  size_t DirectoryEntries() const {
    size_t n = 0;
    for (const auto& table : tables_) {
      n += table->DirectoryEntries();
    }
    return n;
  }

  // Total overflow-stash occupancy (zero unless structural repair was ever
  // exhausted; see DyTISConfig::max_global_depth).
  size_t StashEntries() const {
    size_t n = 0;
    for (const auto& table : tables_) {
      n += table->StashEntries();
    }
    return n;
  }

  // Epoch-reclamation observability: current epoch, retired backlog,
  // reclaimed totals, advance counters, registered reader slots.  Zeroes on
  // single-threaded builds (no domain exists).
  EpochStats EpochInfo() const {
    return ebr_ != nullptr ? ebr_->Stats() : EpochStats{};
  }

  // Drains the retired-object backlog as far as epochs allow, returning the
  // number of objects freed.  A quiesce hook for checkpoints and teardown
  // paths that want deterministic memory accounting; callers must not hold
  // an epoch guard (i.e. must not be inside a read operation).  No-op on
  // single-threaded builds.
  size_t QuiesceReclamation() {
    return ebr_ != nullptr ? ebr_->Drain() : 0;
  }

  // Total key/value slot capacity of all buckets.
  size_t BucketSlots() const {
    size_t n = 0;
    for (const auto& table : tables_) {
      n += table->BucketSlots();
    }
    return n;
  }

  // Stored keys over bucket slots (stash-resident keys push this above the
  // bucket occupancy, but the stash is bounded and normally empty).
  double LoadFactor() const {
    const size_t slots = BucketSlots();
    return slots > 0 ? static_cast<double>(size()) /
                           static_cast<double>(slots)
                     : 0.0;
  }

  // Structure-health telemetry (src/obs/health.h): per-segment PLR model
  // error, stash depth, bucket load-factor histograms, remap collision
  // rate, structural cadence, EBR epoch lag, and WAL latency gauges, in one
  // report with ToJson()/ToText() surfaces.  Costs one locked pass over the
  // stored keys — collect between phases or on an aggregator cadence.
  // Works in DYTIS_OBS=OFF builds too (collection is pull-based); only the
  // push-side hooks (WAL latency histograms) are compiled out there, and
  // the report's obs_enabled flag says which build produced it.
  obs::HealthReport HealthReport() const {
    obs::HealthReport report = obs::BeginHealthReport();
    report.counters = stats_->View();
    report.num_keys = size();
    report.max_global_depth = MaxGlobalDepth();
    report.index_bytes = MemoryBytes();
    report.ebr = EpochInfo();
    for (const auto& table : tables_) {
      report.tables.push_back(table->CollectTableHealth(&report.segments));
    }
    // Whole-index gauges from the per-segment records (one walk, not four).
    for (const obs::SegmentHealth& seg : report.segments) {
      report.num_segments++;
      report.stash_entries += seg.stash_size;
      report.bucket_slots +=
          static_cast<uint64_t>(seg.num_buckets) * seg.bucket_capacity;
    }
    for (const obs::TableHealth& t : report.tables) {
      report.directory_entries += t.directory_entries;
    }
    report.load_factor =
        report.bucket_slots > 0
            ? static_cast<double>(report.num_keys) /
                  static_cast<double>(report.bucket_slots)
            : 0.0;
    report.uptime_ns = NowNanos() - created_ns_;
    obs::FinalizeHealthReport(&report);
    return report;
  }

  // --- Adversarial robustness: detect-and-mitigate loop (DESIGN.md) ------

  using RepairOutcome = typename EhTable<V, Policy>::RepairOutcome;

  // Online repair of one segment, addressed by its health identity
  // (SegmentHealth::table_id, SegmentHealth::range_start).  `salt` keys the
  // retrained remap allocation; see EhTable::RepairSegmentAt.
  bool RepairSegment(uint32_t table_id, uint64_t range_start, uint64_t salt,
                     RepairOutcome* out = nullptr) {
    if (table_id >= tables_.size()) {
      return false;
    }
    return tables_[table_id]->RepairSegmentAt(range_start, salt, out);
  }

  // One round of the closed robustness loop: collect health, run the
  // detector's hysteresis over it, repair every segment it reports
  // degraded (each with a fresh salt), and publish the attack.* mitigation
  // counters.  Call on a cadence (or from a maintenance thread); repeated
  // rounds converge — a repaired segment stops tripping, an escalated split
  // re-enters as two fresh identities the next round.
  struct MitigationOutcome {
    size_t degraded = 0;         // verdicts this round
    size_t repaired = 0;         // repairs that changed structure
    size_t retrains = 0;         // ... via salted retrain
    size_t splits = 0;           // ... via split escalation
    size_t limit_overrides = 0;  // ... via beyond-limit quarantine rebuild
    size_t failures = 0;         // repairs that could not change anything
    uint64_t stash_drained = 0;  // stash entries folded back into buckets
  };

  MitigationOutcome MitigateDegraded(obs::DegradationDetector* detector) {
    MitigationOutcome out;
    const obs::HealthReport report = HealthReport();
    const std::vector<obs::SegmentVerdict> verdicts =
        detector->Evaluate(report);
    out.degraded = verdicts.size();
    for (const obs::SegmentVerdict& v : verdicts) {
      RepairOutcome r;
      if (RepairSegment(v.table_id, v.range_start, NextSalt(), &r)) {
        out.repaired++;
        if (r.retrained) {
          out.retrains++;
        }
        if (r.split_escalated) {
          out.splits++;
        }
        if (r.limit_overridden) {
          out.limit_overrides++;
        }
        out.stash_drained += r.stash_drained;
        // Repair feedback: an attack the grid remap cannot absorb (e.g. a
        // consecutive-key stash bomb) leaves a deep residual stash no matter
        // how the rebuild is salted.  Telling the detector lets it back off
        // instead of burning an O(segment) rebuild every round.
        detector->NoteRepair(
            v.table_id, v.range_start,
            r.stash_after <
                static_cast<uint64_t>(
                    detector->policy().stash_depth_threshold));
      } else {
        out.failures++;
        detector->NoteRepair(v.table_id, v.range_start, false);
      }
    }
    auto& registry = obs::MetricsRegistry::Global();
    if (out.repaired != 0) {
      registry.GetCounter("attack.mitigations").Add(out.repaired);
      registry.GetCounter("attack.retrains").Add(out.retrains);
      registry.GetCounter("attack.splits_escalated").Add(out.splits);
      registry.GetCounter("attack.limit_overrides").Add(out.limit_overrides);
      registry.GetCounter("attack.stash_drained").Add(out.stash_drained);
    }
    if (out.failures != 0) {
      registry.GetCounter("attack.repair_failures").Add(out.failures);
    }
    return out;
  }

  // Checks every structural invariant (directory alignment, sorted order,
  // remap placement, sibling chains, key counts).  Test-suite hook.
  bool ValidateInvariants(std::string* error = nullptr) const {
    for (const auto& table : tables_) {
      if (!table->ValidateInvariants(error)) {
        return false;
      }
    }
    return true;
  }

  // Outcome of CheckInvariants(): every violation found, not just the first.
  struct InvariantReport {
    std::vector<std::string> violations;
    uint64_t keys_visited = 0;  // entries seen by the global-order walk

    bool ok() const { return violations.empty(); }
    // One line per violation, for error messages and logs.
    std::string Describe() const {
      std::string out;
      for (const std::string& v : violations) {
        out += v;
        out += '\n';
      }
      return out;
    }
  };

  // Online invariant verifier (durability subsystem; see src/recovery/).
  // Runs the full per-table structural validation (directory<->segment
  // consistency, sibling-chain connectivity and ordering, sorted buckets,
  // remap placement, per-segment key counts) plus the cross-table checks a
  // single table cannot see: global ascending key order, the size() counter
  // against the per-segment accounting, and overflow-stash occupancy
  // against the stats counters.  Invoked after every recovery; cheap enough
  // (one ordered walk) for tests and benches to call between phases.
  InvariantReport CheckInvariants() const {
    InvariantReport report;
    for (size_t t = 0; t < tables_.size(); t++) {
      std::string err;
      if (!tables_[t]->ValidateInvariants(&err)) {
        report.violations.push_back("table " + std::to_string(t) + ": " + err);
      }
    }
    // Global order: keys must be strictly ascending across table boundaries
    // (tables partition the key space by MSB, so any inversion is a key
    // filed under the wrong first-level table).
    uint64_t prev_key = 0;
    bool have_prev = false;
    bool order_ok = true;
    uint64_t visited = 0;
    ForEach([&](uint64_t key, const V&) {
      if (have_prev && key <= prev_key && order_ok) {
        report.violations.push_back(
            "global key order violated near key " + std::to_string(key));
        order_ok = false;
      }
      prev_key = key;
      have_prev = true;
      visited++;
    });
    report.keys_visited = visited;
    // Accounting: the relaxed size_ counter, the per-segment num_keys sums,
    // and the ordered walk must all agree.
    size_t table_keys = 0;
    for (const auto& table : tables_) {
      table_keys += table->NumKeys();
    }
    if (visited != size() || table_keys != size()) {
      report.violations.push_back(
          "key accounting out of sync: size()=" + std::to_string(size()) +
          " walk=" + std::to_string(visited) +
          " segments=" + std::to_string(table_keys));
    }
    // Stash accounting vs. stats: stash entries only ever appear through a
    // counted stash insert or a split spill, so a populated stash with
    // neither counter moved means lost accounting.
    const size_t stash = StashEntries();
    const DyTISStatsView v = stats_->View();
    if (stash > 0 && v.stash_inserts == 0 && v.splits == 0) {
      report.violations.push_back(
          "stash holds " + std::to_string(stash) +
          " entries but stats recorded no stash inserts or splits");
    }
    if (stash > size()) {
      report.violations.push_back(
          "stash occupancy " + std::to_string(stash) +
          " exceeds total key count " + std::to_string(size()));
    }
    return report;
  }

 private:
  size_t TableIndexFor(uint64_t key) const {
    if (config_.first_level_bits == 0) {
      return 0;
    }
    return static_cast<size_t>(
        TopBits(key, kKeyBits, config_.first_level_bits));
  }
  EhTable<V, Policy>& TableFor(uint64_t key) {
    return *tables_[TableIndexFor(key)];
  }
  const EhTable<V, Policy>& TableFor(uint64_t key) const {
    return *tables_[TableIndexFor(key)];
  }

  // Fresh per-repair salt: the configured secret mixed with a sequence
  // number, so two repairs of the same segment never reuse an allocation an
  // attacker may have probed.  (salt_seed = 0 still produces well-mixed
  // salts; deployments serving untrusted traffic should set it to a
  // secret.)
  uint64_t NextSalt() {
    const uint64_t n = salt_seq_.fetch_add(1, std::memory_order_relaxed);
    return SplitMix64(config_.degradation.salt_seed ^
                      (0x9E3779B97F4A7C15ULL * (n + 1)))
        .Next();
  }

  DyTISConfig config_;
  std::unique_ptr<DyTISStats> stats_;
  // Construction timestamp: the uptime denominator for the health report's
  // structural-cadence rates.
  const uint64_t created_ns_ = 0;
  // Declared before tables_ so it is destroyed *after* them: table teardown
  // retires nothing, but the domain's destructor is what frees any backlog
  // the tables retired during their lifetime, and it asserts all reader
  // slots are idle first.
  std::unique_ptr<EpochDomain> ebr_;
  std::vector<std::unique_ptr<EhTable<V, Policy>>> tables_;
  std::atomic<size_t> size_{0};
  // Repair-salt sequence (NextSalt); relaxed — salts only need uniqueness.
  std::atomic<uint64_t> salt_seq_{0};
};

// Single-threaded DyTIS (no locking; for one-engine-per-core designs).
template <typename V>
using DyTIS = BasicDyTIS<V, NoLockPolicy>;

// Thread-safe DyTIS: writers use the two-level locking of Section 3.4
// (directory + segment locks); readers are lock-free — they enter an epoch
// (src/sync/ebr.h) instead of taking any lock, with version-validated
// optimistic point lookups on top (DyTISConfig::optimistic_reads).
template <typename V>
using ConcurrentDyTIS = BasicDyTIS<V, SharedMutexPolicy>;

// Thread-safe DyTIS with additional per-bucket spinlocks — the finer-grained
// scheme the paper explored and rejected ("performance of DyTIS generally
// degrades" due to lock memory and variable-size segments, Section 3.4).
// Provided to reproduce that comparison; prefer ConcurrentDyTIS.
template <typename V>
using FineGrainedDyTIS = BasicDyTIS<V, FineGrainedPolicy>;

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_DYTIS_H_
