// Operation statistics for the DyTIS index.
//
// Used by the insertion-breakdown analysis (Section 4.3: time spent in
// split / expansion / remapping / doubling) and by the segment-size-limit
// heuristic (Section 3.3).  Counters are relaxed atomics so the concurrent
// build can update them without synchronisation beyond the structural locks.
#ifndef DYTIS_SRC_CORE_STATS_H_
#define DYTIS_SRC_CORE_STATS_H_

#include <atomic>
#include <cstdint>

namespace dytis {

// Plain-struct copy of every DyTISStats counter, taken with relaxed loads.
// The observability layer snapshots and serialises this (src/obs/snapshot.h)
// without touching atomics again.
struct DyTISStatsView {
  uint64_t splits = 0;
  uint64_t expansions = 0;
  uint64_t remappings = 0;
  uint64_t remap_failures = 0;
  uint64_t doublings = 0;
  uint64_t merges = 0;
  uint64_t expand_failures = 0;
  uint64_t stash_inserts = 0;
  uint64_t structural_exhaustions = 0;
  uint64_t retry_exhaustions = 0;
  uint64_t stash_bound_growths = 0;
  uint64_t hard_errors = 0;
  uint64_t injected_faults = 0;
  uint64_t split_ns = 0;
  uint64_t expansion_ns = 0;
  uint64_t remap_ns = 0;
  uint64_t doubling_ns = 0;
  uint64_t optimistic_read_retries = 0;
  uint64_t optimistic_read_fallbacks = 0;
  uint64_t cores_retired = 0;
  uint64_t segments_retired = 0;
  uint64_t directories_retired = 0;
  uint64_t dir_exclusive_acquisitions = 0;
};

// Only *structural* operations are counted: per-operation counters (every
// insert/search) would put an atomic increment on the hot path and distort
// the head-to-head comparisons the benchmarks make.
struct DyTISStats {
  // Structural operations.
  std::atomic<uint64_t> splits{0};
  std::atomic<uint64_t> expansions{0};
  std::atomic<uint64_t> remappings{0};
  std::atomic<uint64_t> remap_failures{0};
  std::atomic<uint64_t> doublings{0};
  std::atomic<uint64_t> merges{0};
  // Expansion attempts blocked by the segment-size limit (the fallback to
  // remapping/doubling in Algorithm 1 line 13).
  std::atomic<uint64_t> expand_failures{0};
  // Last-resort overflow-stash inserts (graceful degradation on
  // adversarially dense key ranges; see DyTISConfig::max_global_depth).
  std::atomic<uint64_t> stash_inserts{0};
  // Inserts that exhausted every structural repair (depth cap, size limits,
  // or injected faults) and entered the terminal stash path.
  std::atomic<uint64_t> structural_exhaustions{0};
  // Inserts that ran out of DyTISConfig::max_structural_retries full-bucket
  // retries and were forced through the terminal path.
  std::atomic<uint64_t> retry_exhaustions{0};
  // Times a segment's stash outgrew its bound and the bound was doubled.
  std::atomic<uint64_t> stash_bound_growths{0};
  // Inserts reported as InsertResult::kHardError (stash_hard_limit hit).
  std::atomic<uint64_t> hard_errors{0};
  // Structural operations failed by DyTISConfig::fault_policy.
  std::atomic<uint64_t> injected_faults{0};

  // Nanoseconds spent inside each structural operation (breakdown bench).
  std::atomic<uint64_t> split_ns{0};
  std::atomic<uint64_t> expansion_ns{0};
  std::atomic<uint64_t> remap_ns{0};
  std::atomic<uint64_t> doubling_ns{0};

  // Optimistic read path (conflict events only, not every read: an
  // uncontended optimistic Get touches no counter, preserving the
  // no-atomics-on-the-hot-path rule above).  `retries` counts version
  // validation failures that led to another optimistic attempt; `fallbacks`
  // counts lookups that exhausted their retry budget (or met a non-probe-safe
  // segment state) and took the pessimistic shared lock.
  std::atomic<uint64_t> optimistic_read_retries{0};
  std::atomic<uint64_t> optimistic_read_fallbacks{0};

  // Epoch-based reclamation: objects handed to the epoch domain by
  // structural operations (segment cores from rebuilds, parent segments
  // from splits, directories from doubling).  The freed-side counters live
  // in EpochStats (src/sync/ebr.h); these count the retire sites.
  std::atomic<uint64_t> cores_retired{0};
  std::atomic<uint64_t> segments_retired{0};
  std::atomic<uint64_t> directories_retired{0};
  // Exclusive directory-lock acquisitions (split/doubling path).  The
  // reclamation regression test asserts this stays zero under rebuild-only
  // churn: memory reclamation must never take the directory exclusively.
  std::atomic<uint64_t> dir_exclusive_acquisitions{0};

  void Add(std::atomic<uint64_t> DyTISStats::*field, uint64_t v) {
    (this->*field).fetch_add(v, std::memory_order_relaxed);
  }

  DyTISStatsView View() const {
    DyTISStatsView v;
    v.splits = splits.load(std::memory_order_relaxed);
    v.expansions = expansions.load(std::memory_order_relaxed);
    v.remappings = remappings.load(std::memory_order_relaxed);
    v.remap_failures = remap_failures.load(std::memory_order_relaxed);
    v.doublings = doublings.load(std::memory_order_relaxed);
    v.merges = merges.load(std::memory_order_relaxed);
    v.expand_failures = expand_failures.load(std::memory_order_relaxed);
    v.stash_inserts = stash_inserts.load(std::memory_order_relaxed);
    v.structural_exhaustions =
        structural_exhaustions.load(std::memory_order_relaxed);
    v.retry_exhaustions = retry_exhaustions.load(std::memory_order_relaxed);
    v.stash_bound_growths =
        stash_bound_growths.load(std::memory_order_relaxed);
    v.hard_errors = hard_errors.load(std::memory_order_relaxed);
    v.injected_faults = injected_faults.load(std::memory_order_relaxed);
    v.split_ns = split_ns.load(std::memory_order_relaxed);
    v.expansion_ns = expansion_ns.load(std::memory_order_relaxed);
    v.remap_ns = remap_ns.load(std::memory_order_relaxed);
    v.doubling_ns = doubling_ns.load(std::memory_order_relaxed);
    v.optimistic_read_retries =
        optimistic_read_retries.load(std::memory_order_relaxed);
    v.optimistic_read_fallbacks =
        optimistic_read_fallbacks.load(std::memory_order_relaxed);
    v.cores_retired = cores_retired.load(std::memory_order_relaxed);
    v.segments_retired = segments_retired.load(std::memory_order_relaxed);
    v.directories_retired =
        directories_retired.load(std::memory_order_relaxed);
    v.dir_exclusive_acquisitions =
        dir_exclusive_acquisitions.load(std::memory_order_relaxed);
    return v;
  }

  uint64_t StructuralOps() const {
    return splits.load(std::memory_order_relaxed) +
           expansions.load(std::memory_order_relaxed) +
           remappings.load(std::memory_order_relaxed) +
           doublings.load(std::memory_order_relaxed);
  }

  void Reset() {
    splits = expansions = remappings = remap_failures = doublings = merges = 0;
    expand_failures = 0;
    stash_inserts = structural_exhaustions = retry_exhaustions = 0;
    stash_bound_growths = hard_errors = injected_faults = 0;
    split_ns = expansion_ns = remap_ns = doubling_ns = 0;
    optimistic_read_retries = optimistic_read_fallbacks = 0;
    cores_retired = segments_retired = directories_retired = 0;
    dir_exclusive_acquisitions = 0;
  }
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_STATS_H_
