// Outcome of a DyTIS insert (Algorithm 1 plus this reproduction's
// guaranteed-progress extensions).
//
// Every insert terminates in exactly one of these states.  The first three
// mean the key is durably stored; kHardError is the only non-storing
// outcome, and it is reported explicitly -- the index never silently drops
// a key (the pre-hardening code could, when the structural retry bound was
// exhausted in an NDEBUG build).
#ifndef DYTIS_SRC_CORE_INSERT_RESULT_H_
#define DYTIS_SRC_CORE_INSERT_RESULT_H_

#include <cstdint>

namespace dytis {

enum class InsertResult : uint8_t {
  // New key stored in a bucket (the normal path).
  kInserted,
  // Key already existed; its value was updated in place (bucket or stash).
  kUpdated,
  // New key durably stored in the segment's overflow stash because every
  // structural repair (remap / split / expand / doubling) was exhausted.
  kStashed,
  // Key NOT stored: structural repairs are exhausted and the stash has hit
  // DyTISConfig::stash_hard_limit.  Unreachable with the default config
  // (hard limit 0 = unbounded stash).
  kHardError,
};

// True when the insert added a key that was not present before.
constexpr bool IsNewKey(InsertResult r) {
  return r == InsertResult::kInserted || r == InsertResult::kStashed;
}

// True when the key is durably stored (new or updated) after the call.
constexpr bool IsStored(InsertResult r) { return r != InsertResult::kHardError; }

constexpr const char* InsertResultName(InsertResult r) {
  switch (r) {
    case InsertResult::kInserted:
      return "inserted";
    case InsertResult::kUpdated:
      return "updated";
    case InsertResult::kStashed:
      return "stashed";
    case InsertResult::kHardError:
      return "hard-error";
  }
  return "?";
}

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_INSERT_RESULT_H_
