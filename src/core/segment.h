// DyTIS segment: local depth + remapping function + bucket storage.
//
// A segment holds all keys of its EH that share its LD most-significant
// local-key bits.  Synchronisation state lives here too (the "segment
// object" of Section 3.4): remapping and expansion mutate only this object,
// so they run under the segment lock alone, while split/doubling also take
// the EH directory lock.
#ifndef DYTIS_SRC_CORE_SEGMENT_H_
#define DYTIS_SRC_CORE_SEGMENT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/bucket_array.h"
#include "src/core/lock_policy.h"
#include "src/core/remap_function.h"

namespace dytis {

template <typename V, typename Policy>
struct Segment {
  Segment(int local_depth_in, RemapFunction remap_in, uint32_t capacity)
      : local_depth(local_depth_in),
        remap(std::move(remap_in)),
        buckets(remap.num_buckets(), capacity) {
    ResetBucketLocks();
  }

  // (Re)allocates the per-bucket spinlocks to match the current bucket
  // count.  No-op for policies without bucket locks.  Callers must hold the
  // segment lock exclusively (rebuilds already do).
  void ResetBucketLocks() {
    if constexpr (Policy::kBucketLocks) {
      bucket_locks.reset(new SpinLock[buckets.num_buckets()]);
    }
  }

  SpinLock& BucketLock(uint32_t b) { return bucket_locks[b]; }

  double Utilization() const {
    return static_cast<double>(num_keys) /
           (static_cast<double>(remap.num_buckets()) * buckets.capacity());
  }

  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this) + remap.MemoryBytes() - sizeof(RemapFunction) +
                   buckets.MemoryBytes() - sizeof(BucketArray<V>) +
                   stash.capacity() * sizeof(std::pair<uint64_t, V>);
    if constexpr (Policy::kBucketLocks) {
      bytes += buckets.num_buckets() * sizeof(SpinLock);
    }
    return bytes;
  }

  // --- Overflow stash (last-resort graceful degradation; see
  // DyTISConfig::max_global_depth).  Sorted by key; normally empty. --------

  // Returns the stash slot of `key`, or -1.
  int StashFind(uint64_t key) const {
    const auto it = std::lower_bound(
        stash.begin(), stash.end(), key,
        [](const auto& e, uint64_t k) { return e.first < k; });
    if (it == stash.end() || it->first != key) {
      return -1;
    }
    return static_cast<int>(it - stash.begin());
  }

  // Inserts or updates `key` in the stash.  Returns true when new.
  bool StashInsert(uint64_t key, const V& value) {
    const auto it = std::lower_bound(
        stash.begin(), stash.end(), key,
        [](const auto& e, uint64_t k) { return e.first < k; });
    if (it != stash.end() && it->first == key) {
      it->second = value;
      return false;
    }
    stash.insert(it, {key, value});
    return true;
  }

  bool StashErase(uint64_t key) {
    const int slot = StashFind(key);
    if (slot < 0) {
      return false;
    }
    stash.erase(stash.begin() + slot);
    return true;
  }

  int local_depth;
  RemapFunction remap;
  BucketArray<V> buckets;
  // Includes stash entries.  Atomic because the fine-grained policy
  // updates it under a shared segment lock.
  std::atomic<size_t> num_keys{0};
  Segment* sibling = nullptr;  // next segment in key order within the EH
  std::vector<std::pair<uint64_t, V>> stash;
  // Current stash bound (starts at DyTISConfig::stash_soft_limit, doubled
  // on overflow with a stats bump; reset when a rebuild drains the stash).
  // Mutated under the segment lock only.
  size_t stash_bound = 0;
  // Per-bucket spinlocks (FineGrainedPolicy only; null otherwise).
  std::unique_ptr<SpinLock[]> bucket_locks;
  mutable typename Policy::Mutex mutex;
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_SEGMENT_H_
