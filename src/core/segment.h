// DyTIS segment: local depth + remapping function + bucket storage.
//
// A segment holds all keys of its EH that share its LD most-significant
// local-key bits.  Synchronisation state lives here too (the "segment
// object" of Section 3.4): remapping and expansion mutate only this object,
// so they run under the segment lock alone, while split/doubling also take
// the EH directory lock.
//
// Optimistic-read support: the remapping function and bucket array — the
// state a lock-free Get probes — live together in a SegmentCore behind an
// atomic pointer.  Rebuilds (remap / expansion / merge) construct a fresh
// core off to the side and publish it with a single release store, so an
// optimistic reader always sees a *consistent* (remap, buckets) pair: either
// entirely the old core or entirely the new one, never a new remap over old
// buckets.  Old cores are retired through the owning table's epoch-based
// reclamation domain (src/sync/ebr.h): readers hold an epoch Guard around
// the probe, and a retired core is freed only once two epoch advances prove
// that no Guard from its generation survives.
#ifndef DYTIS_SRC_CORE_SEGMENT_H_
#define DYTIS_SRC_CORE_SEGMENT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/bucket_array.h"
#include "src/core/lock_policy.h"
#include "src/core/remap_function.h"
#include "src/obs/health.h"
#include "src/util/bitops.h"

namespace dytis {

// The probe-visible state of a segment: the learned remapping function and
// the bucket storage it indexes into.  Immutable in *shape* once published
// (bucket contents still change in place under the segment lock; the
// seqlock version validates those), replaced wholesale by rebuilds.
template <typename V>
struct SegmentCore {
  SegmentCore(RemapFunction remap_in, uint32_t capacity)
      : remap(std::move(remap_in)),
        buckets(remap.num_buckets(), capacity) {}

  // Adopts an already-built bucket array (rebuilds construct the buckets
  // first, off to the side, then wrap them in a core for publication).
  SegmentCore(RemapFunction remap_in, BucketArray<V> buckets_in)
      : remap(std::move(remap_in)), buckets(std::move(buckets_in)) {}

  RemapFunction remap;
  BucketArray<V> buckets;

  size_t MemoryBytes() const {
    return sizeof(*this) + remap.MemoryBytes() - sizeof(RemapFunction) +
           buckets.MemoryBytes() - sizeof(BucketArray<V>);
  }
};

template <typename V, typename Policy>
struct Segment {
  Segment(int local_depth_in, RemapFunction remap_in, uint32_t capacity)
      : local_depth(local_depth_in),
        core_(new SegmentCore<V>(std::move(remap_in), capacity)) {
    ResetBucketLocks();
  }

  ~Segment() { delete core_.load(std::memory_order_relaxed); }

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  // --- Core access ---------------------------------------------------------
  //
  // Lock-holding paths (any segment lock, or the directory lock that
  // excludes rebuilds) use core(): the lock orders them against the
  // publishing store, so a relaxed load suffices.  Optimistic readers use
  // AcquireCore() so the loads *through* the pointer see the fully
  // constructed core.

  SegmentCore<V>& core() { return *core_.load(std::memory_order_relaxed); }
  const SegmentCore<V>& core() const {
    return *core_.load(std::memory_order_relaxed);
  }
  const SegmentCore<V>* AcquireCore() const {
    return core_.load(std::memory_order_acquire);
  }

  // Convenience aliases so lock-holding code reads like it did before the
  // core indirection.
  RemapFunction& remap() { return core().remap; }
  const RemapFunction& remap() const { return core().remap; }
  BucketArray<V>& buckets() { return core().buckets; }
  const BucketArray<V>& buckets() const { return core().buckets; }

  // Publishes a rebuilt core (release: its contents happen-before any
  // acquire load that observes the pointer) and returns the old core, which
  // the caller must hand to the owning table's retire list (or delete
  // immediately when no optimistic readers can exist).  Callers hold the
  // segment lock exclusively.
  SegmentCore<V>* PublishCore(SegmentCore<V>* next) {
    return core_.exchange(next, std::memory_order_release);
  }

  // (Re)allocates the per-bucket spinlocks to match the current bucket
  // count.  No-op for policies without bucket locks.  Callers must hold the
  // segment lock exclusively (rebuilds already do).
  void ResetBucketLocks() {
    if constexpr (Policy::kBucketLocks) {
      bucket_locks.reset(new SpinLock[buckets().num_buckets()]);
    }
  }

  SpinLock& BucketLock(uint32_t b) { return bucket_locks[b]; }

  double Utilization() const {
    const SegmentCore<V>& c = core();
    return static_cast<double>(num_keys) /
           (static_cast<double>(c.remap.num_buckets()) * c.buckets.capacity());
  }

  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this) + core().MemoryBytes() +
                   stash.capacity() * sizeof(std::pair<uint64_t, V>);
    if constexpr (Policy::kBucketLocks) {
      bytes += buckets().num_buckets() * sizeof(SpinLock);
    }
    return bytes;
  }

  // Health sensor hook (src/obs/health.h): fills one SegmentHealth record,
  // including the learned remap function's in-bucket position-error
  // distribution — for each stored key the model predicts slot
  // `permille * n / 1000` (exactly the hint EhTable::SearchHint seeds the
  // exponential in-bucket search with), so the recorded error *is* the
  // extra search work the model costs.  O(num_keys); callers hold this
  // segment's scan lock (like every other gauge walk).
  void FillHealth(uint32_t table_id, obs::SegmentHealth* out) const {
    const SegmentCore<V>& c = core();
    out->table_id = table_id;
    out->local_depth = local_depth;
    out->num_keys = num_keys.load(std::memory_order_relaxed);
    out->num_buckets = c.remap.num_buckets();
    out->bucket_capacity = c.buckets.capacity();
    out->stash_size = stash.size();
    out->stash_bound = stash_bound;
    out->utilization = Utilization();
    const uint32_t capacity = c.buckets.capacity();
    for (uint32_t b = 0; b < c.buckets.num_buckets(); b++) {
      const auto keys = c.buckets.Keys(b);
      const uint32_t n = static_cast<uint32_t>(keys.size());
      const size_t fill_bin =
          capacity > 0 ? std::min<size_t>(obs::kFillBins - 1,
                                          size_t{10} * n / capacity)
                       : 0;
      out->fill_hist[fill_bin]++;
      if (n == capacity && capacity > 0) {
        out->full_buckets++;
      }
      for (uint32_t i = 0; i < n; i++) {
        const uint64_t local = LowBits(keys[i], c.remap.key_bits());
        const auto placement = c.remap.PlacementFor(local);
        const uint32_t predicted = placement.permille * n / 1000;
        const uint64_t error =
            predicted > i ? predicted - i : uint64_t{i} - predicted;
        out->plr.Record(error);
      }
    }
  }

  // --- Overflow stash (last-resort graceful degradation; see
  // DyTISConfig::max_global_depth).  Sorted by key; normally empty. --------

  // Returns the stash slot of `key`, or -1.
  int StashFind(uint64_t key) const {
    const auto it = std::lower_bound(
        stash.begin(), stash.end(), key,
        [](const auto& e, uint64_t k) { return e.first < k; });
    if (it == stash.end() || it->first != key) {
      return -1;
    }
    return static_cast<int>(it - stash.begin());
  }

  // Inserts or updates `key` in the stash.  Returns true when new.
  bool StashInsert(uint64_t key, const V& value) {
    const auto it = std::lower_bound(
        stash.begin(), stash.end(), key,
        [](const auto& e, uint64_t k) { return e.first < k; });
    if (it != stash.end() && it->first == key) {
      it->second = value;
      return false;
    }
    stash.insert(it, {key, value});
    stash_count.store(static_cast<uint32_t>(stash.size()),
                      std::memory_order_release);
    return true;
  }

  bool StashErase(uint64_t key) {
    const int slot = StashFind(key);
    if (slot < 0) {
      return false;
    }
    stash.erase(stash.begin() + slot);
    stash_count.store(static_cast<uint32_t>(stash.size()),
                      std::memory_order_release);
    return true;
  }

  // Called after a rebuild drains the stash wholesale (stash.clear() /
  // swap); keeps the lock-free mirror in sync.
  void SyncStashCount() {
    stash_count.store(static_cast<uint32_t>(stash.size()),
                      std::memory_order_release);
  }

  // --- Sibling chain -------------------------------------------------------
  //
  // Next segment in key order within the EH.  Atomic because epoch-protected
  // scans walk the chain with no directory lock held while splits rewire it:
  // a split release-stores the fully built children before any pointer to
  // them becomes reachable, so an acquire load mid-walk sees either the old
  // (retired, frozen) segment or a complete child — never a half-built one.

  Segment* NextSibling() const {
    return sibling_.load(std::memory_order_acquire);
  }
  void SetSibling(Segment* next) {
    sibling_.store(next, std::memory_order_release);
  }

  int local_depth;
  // Includes stash entries.  Atomic because the fine-grained policy
  // updates it under a shared segment lock.
  std::atomic<size_t> num_keys{0};
  std::vector<std::pair<uint64_t, V>> stash;
  // Lock-free mirror of stash.size(): an optimistic reader cannot touch the
  // std::vector (racing inserts reallocate it), so it checks this counter
  // and falls back to the locked path whenever it is nonzero.  Stashes are
  // empty outside adversarial workloads, so the fast path is one load.
  std::atomic<uint32_t> stash_count{0};
  // Current stash bound (starts at DyTISConfig::stash_soft_limit, doubled
  // on overflow with a stats bump; reset when a rebuild drains the stash).
  // Mutated under the segment lock only.
  size_t stash_bound = 0;
  // Per-bucket spinlocks (FineGrainedPolicy only; null otherwise).
  std::unique_ptr<SpinLock[]> bucket_locks;
  mutable typename Policy::Mutex mutex;

 private:
  // Probe-visible state; see the file comment.  Private so every access
  // goes through an accessor with explicit memory-order intent.
  std::atomic<SegmentCore<V>*> core_;
  // See NextSibling()/SetSibling() above.
  std::atomic<Segment*> sibling_{nullptr};
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_SEGMENT_H_
