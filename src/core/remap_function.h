// The per-segment remapping function of DyTIS (Section 3.2/3.3).
//
// The paper describes the remapping function as a scaled approximate CDF:
// the segment key range is statically divided into 2^p equal sub-ranges and
// each sub-range carries a linear function (slope + intercept); the function
// range is [0, B * 2^key_bits) for a segment with B buckets, and the bucket
// index of a key is its remapped value divided by 2^key_bits.
//
// We store the mathematically equivalent *bucket allocation* form: sub-range
// i owns the contiguous span of `count_i` buckets starting at `start_i`
// (start_i is the prefix sum of counts).  Inside a sub-range, the local key
// is linearly interpolated onto the owned span.  The slope of sub-range i in
// the paper's formulation is exactly `count_i * 2^p` (buckets per sub-range
// scaled by the sub-range fraction of the domain), and the intercept chain
// ("functions are connected to handle the entire range") is exactly the
// prefix-sum property of starts.  Advantages of this representation:
//
//  * exact integer arithmetic (128-bit intermediate), so the remap is
//    *exactly* monotonic -- the keys-stay-in-natural-order invariant that
//    makes scans work is structural, not a floating-point accident;
//  * "steal buckets from a low-utilisation sub-range" (the remapping
//    operation of Algorithm 1) is a literal edit of the counts array.
#ifndef DYTIS_SRC_CORE_REMAP_FUNCTION_H_
#define DYTIS_SRC_CORE_REMAP_FUNCTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dytis {

class RemapFunction {
 public:
  // Identity-CDF function: one sub-range owning `num_buckets` buckets over a
  // segment whose local keys are `key_bits` wide.
  RemapFunction(int key_bits, uint32_t num_buckets);

  // Builds from an explicit per-sub-range allocation.  counts.size() must be
  // a power of two and every count must be >= 1.
  RemapFunction(int key_bits, std::vector<uint32_t> counts);

  int key_bits() const { return key_bits_; }
  // p: log2 of the number of sub-ranges.
  int subrange_bits() const { return subrange_bits_; }
  uint32_t num_subranges() const {
    return static_cast<uint32_t>(starts_.size() - 1);
  }
  uint32_t num_buckets() const { return starts_.back(); }

  uint32_t BucketStart(uint32_t subrange) const { return starts_[subrange]; }
  uint32_t BucketCount(uint32_t subrange) const {
    return starts_[subrange + 1] - starts_[subrange];
  }

  // Sub-range containing `local_key` (the top p bits of the local key).
  uint32_t SubrangeFor(uint64_t local_key) const;

  // Bucket index for `local_key`; exact, monotone non-decreasing in the key.
  uint32_t BucketIndexFor(uint64_t local_key) const;

  // Bucket index plus the fractional position inside the bucket's key span,
  // as a per-mille value in [0, 1000).  The fraction is the search hint for
  // the exponential in-bucket search (the analogue of a learned-index
  // position prediction).
  struct Placement {
    uint32_t bucket;
    uint32_t permille;  // predicted relative position within the bucket
  };
  Placement PlacementFor(uint64_t local_key) const;

  // First local key mapped to `bucket` (inverse mapping; used by scans and
  // rebuild validation).  Returns 2^key_bits when bucket >= num_buckets().
  uint64_t FirstKeyOfBucket(uint32_t bucket) const;

  // Returns a copy of the per-sub-range counts.
  std::vector<uint32_t> Counts() const;

  // Returns counts refined to 2^new_p sub-ranges (each sub-range's span is
  // split evenly; odd counts give the extra bucket to the left child, and a
  // count of 1 yields children sharing the parent bucket -- callers only use
  // refined counts as the starting point for a fresh allocation, never as a
  // final allocation, so transient zero counts are allowed here).
  std::vector<uint32_t> RefinedCounts(int new_subrange_bits) const;

  size_t MemoryBytes() const {
    return sizeof(*this) + starts_.capacity() * sizeof(uint32_t);
  }

 private:
  int key_bits_;
  int subrange_bits_;
  // Prefix sums: starts_[i] is the first bucket of sub-range i;
  // starts_.back() is the total bucket count.  Size = num_subranges + 1.
  std::vector<uint32_t> starts_;
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_REMAP_FUNCTION_H_
