// Sorted fixed-capacity buckets backing a DyTIS segment.
//
// A bucket stores up to `capacity` key/value pairs with the keys kept in
// sorted order; keys and values live in two parallel arrays as in ALEX
// (Section 3.2: "a key and its value are stored in sorted order ... in the
// two different arrays").  All buckets of a segment share one contiguous
// allocation, which keeps scans sequential and makes the
// remapping/expansion rebuild a single pass.
//
// Lookups use exponential search around a predicted slot (the hint supplied
// by the remapping function), the same in-node search ALEX uses.
//
// Optimistic-read support: point mutators (Insert / Erase / SetValue and the
// size counters) publish every element store with a relaxed __atomic store.
// On x86/ARM an aligned relaxed atomic store of a machine word compiles to a
// plain mov/str, so the locked paths pay nothing — but the stores become
// visible, tear-free and sanitizer-clean to the version-validated lock-free
// probe (OptimisticProbe below), which reads the same words with atomic
// loads and lets the caller's seqlock validation discard any value read
// concurrently with a writer.  AppendSorted intentionally keeps plain
// stores: it only ever runs on freshly built bucket arrays that have not
// been published to readers yet (rebuilds), where the publication
// release-store provides the ordering.
#ifndef DYTIS_SRC_CORE_BUCKET_ARRAY_H_
#define DYTIS_SRC_CORE_BUCKET_ARRAY_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>

// The SIMD bucket probe reads racing memory with vector loads, which are
// only element-wise atomic in practice, not to ThreadSanitizer — under TSan
// the probe always uses the scalar __atomic path so the race detector sees
// properly annotated accesses.
#if defined(__SANITIZE_THREAD__)
#define DYTIS_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DYTIS_TSAN_BUILD 1
#endif
#endif
#ifndef DYTIS_TSAN_BUILD
#define DYTIS_TSAN_BUILD 0
#endif

// Overridable (-DDYTIS_SIMD_PROBE=0) for A/B probe measurements.
#ifndef DYTIS_SIMD_PROBE
#if defined(__AVX2__) && !DYTIS_TSAN_BUILD
#define DYTIS_SIMD_PROBE 1
#else
#define DYTIS_SIMD_PROBE 0
#endif
#endif
#if DYTIS_SIMD_PROBE
#include <immintrin.h>
#endif

namespace dytis {

template <typename V>
class BucketArray {
 public:
  // True when the value type can be read by the lock-free probe: a relaxed
  // atomic load needs a lock-free machine access, i.e. a trivially copyable
  // power-of-two size up to 8 bytes.  Larger/non-trivial values disable the
  // optimistic read path at compile time (the locked paths are unaffected).
  static constexpr bool kOptimisticProbeSafe =
      std::is_trivially_copyable_v<V> &&
      (sizeof(V) == 1 || sizeof(V) == 2 || sizeof(V) == 4 || sizeof(V) == 8);

  BucketArray(uint32_t num_buckets, uint32_t capacity)
      : num_buckets_(num_buckets),
        capacity_(capacity),
        keys_(std::make_unique<uint64_t[]>(
            static_cast<size_t>(num_buckets) * capacity)),
        values_(std::make_unique<V[]>(
            static_cast<size_t>(num_buckets) * capacity)),
        sizes_(std::make_unique<uint16_t[]>(num_buckets)) {
    assert(capacity >= 1 && capacity <= UINT16_MAX);
    std::memset(sizes_.get(), 0, num_buckets * sizeof(uint16_t));
  }

  BucketArray(BucketArray&&) noexcept = default;
  BucketArray& operator=(BucketArray&&) noexcept = default;

  uint32_t num_buckets() const { return num_buckets_; }
  uint32_t capacity() const { return capacity_; }
  uint16_t BucketSize(uint32_t b) const { return sizes_[b]; }
  bool IsFull(uint32_t b) const { return sizes_[b] == capacity_; }

  std::span<const uint64_t> Keys(uint32_t b) const {
    return {keys_.get() + Base(b), sizes_[b]};
  }
  std::span<const V> Values(uint32_t b) const {
    return {values_.get() + Base(b), sizes_[b]};
  }

  // Finds `key` in bucket b.  `hint` is the predicted slot (clamped
  // internally).  Returns the slot index, or -1 if absent.
  int Find(uint32_t b, uint64_t key, uint32_t hint) const {
    const uint64_t* keys = keys_.get() + Base(b);
    const int n = sizes_[b];
    const int pos = LowerBound(keys, n, key, hint);
    if (pos < n && keys[pos] == key) {
      return pos;
    }
    return -1;
  }

  const V& ValueAt(uint32_t b, int slot) const {
    return values_[Base(b) + static_cast<size_t>(slot)];
  }
  V& MutableValueAt(uint32_t b, int slot) {
    return values_[Base(b) + static_cast<size_t>(slot)];
  }
  uint64_t KeyAt(uint32_t b, int slot) const {
    return keys_[Base(b) + static_cast<size_t>(slot)];
  }

  // In-place value update, published atomically so a concurrent optimistic
  // probe never observes a torn value.  Writers must hold the segment lock
  // exclusively (as for every mutator).
  void SetValue(uint32_t b, int slot, const V& value) {
    AtomicStore(values_.get() + Base(b) + static_cast<size_t>(slot), value);
  }

  // Slot of the first key >= `key` in bucket b (may equal BucketSize(b)).
  int LowerBoundSlot(uint32_t b, uint64_t key, uint32_t hint) const {
    return LowerBound(keys_.get() + Base(b), sizes_[b], key, hint);
  }

  // Result of an insert attempt.
  enum class InsertResult {
    kInserted,       // new key stored
    kAlreadyExists,  // key present; *existing_slot tells where
    kFull,           // bucket has no space (key not present)
  };

  // Inserts (key, value) into bucket b keeping sorted order.
  InsertResult Insert(uint32_t b, uint64_t key, const V& value, uint32_t hint,
                      int* existing_slot = nullptr) {
    uint64_t* keys = keys_.get() + Base(b);
    V* values = values_.get() + Base(b);
    const int n = sizes_[b];
    const int pos = LowerBound(keys, n, key, hint);
    if (pos < n && keys[pos] == key) {
      if (existing_slot != nullptr) {
        *existing_slot = pos;
      }
      return InsertResult::kAlreadyExists;
    }
    if (n == static_cast<int>(capacity_)) {
      return InsertResult::kFull;
    }
    // Shift the tail up by one (values may be non-trivially copyable).
    // Element stores are atomic so a concurrent optimistic probe reads
    // tear-free words; the probe's version validation discards any mixture
    // of old and new positions it may observe mid-shift.
    for (int i = n; i > pos; i--) {
      AtomicStore(&keys[i], keys[i - 1]);
      AtomicStore(&values[i], std::move(values[i - 1]));
    }
    AtomicStore(&keys[pos], key);
    AtomicStore(&values[pos], value);
    StoreSize(b, static_cast<uint16_t>(n + 1));
    return InsertResult::kInserted;
  }

  // Appends without searching; caller guarantees key > all keys in bucket b
  // and the bucket has space.  Used by rebuilds, which feed keys in order
  // into bucket arrays that are not yet visible to any reader.
  void AppendSorted(uint32_t b, uint64_t key, const V& value) {
    const int n = sizes_[b];
    assert(n < static_cast<int>(capacity_));
    assert(n == 0 || keys_[Base(b) + static_cast<size_t>(n - 1)] < key);
    keys_[Base(b) + static_cast<size_t>(n)] = key;
    values_[Base(b) + static_cast<size_t>(n)] = value;
    sizes_[b]++;
  }

  // Removes `key` from bucket b.  Returns false if absent.
  bool Erase(uint32_t b, uint64_t key, uint32_t hint) {
    uint64_t* keys = keys_.get() + Base(b);
    V* values = values_.get() + Base(b);
    const int n = sizes_[b];
    const int pos = LowerBound(keys, n, key, hint);
    if (pos >= n || keys[pos] != key) {
      return false;
    }
    for (int i = pos; i + 1 < n; i++) {
      AtomicStore(&keys[i], keys[i + 1]);
      AtomicStore(&values[i], std::move(values[i + 1]));
    }
    StoreSize(b, static_cast<uint16_t>(n - 1));
    return true;
  }

  // --- Lock-free probe (optimistic read path) ------------------------------

  // Bucket size as seen by a lock-free reader.  Acquire so the subsequent
  // element loads cannot be hoisted above it.
  uint16_t AcquireBucketSize(uint32_t b) const {
    return __atomic_load_n(&sizes_[b], __ATOMIC_ACQUIRE);
  }

  // Equality probe of bucket b used by the optimistic read path: scans the
  // first `n` slots (the caller passes an AcquireBucketSize() result) for
  // `key` without any lock, reading through atomic (or element-wise-atomic
  // SIMD) loads so racing writers can never produce undefined behaviour —
  // only stale or torn *positions*, which the caller's version validation
  // rejects.  Returns true and stores the matching value through *value on
  // a hit.  `hint` is the predicted slot; the scalar path gallops around
  // it, the SIMD path scans branch-free in 4-key strides.
  bool OptimisticProbe(uint32_t b, int n, uint64_t key, uint32_t hint,
                       V* value) const
    requires(kOptimisticProbeSafe)
  {
    const uint64_t* keys = keys_.get() + Base(b);
    const V* values = values_.get() + Base(b);
    if (n <= 0) {
      return false;
    }
    if (n > static_cast<int>(capacity_)) {
      n = static_cast<int>(capacity_);  // torn size: clamp, validation retries
    }
#if DYTIS_SIMD_PROBE
    const int slot = SimdProbe(keys, n, key, hint);
#else
    const int slot = AtomicLowerBoundProbe(keys, n, key, hint);
#endif
    if (slot < 0) {
      return false;
    }
    V tmp;
    __atomic_load(values + slot, &tmp, __ATOMIC_RELAXED);
    *value = tmp;
    return true;
  }

  size_t MemoryBytes() const {
    return sizeof(*this) +
           static_cast<size_t>(num_buckets_) * capacity_ *
               (sizeof(uint64_t) + sizeof(V)) +
           static_cast<size_t>(num_buckets_) * sizeof(uint16_t);
  }

 private:
  size_t Base(uint32_t b) const {
    return static_cast<size_t>(b) * capacity_;
  }

  // Relaxed atomic element store; compiles to a plain mov for word-sized
  // trivially copyable types, plain assignment otherwise (types that cannot
  // race with the optimistic probe, which kOptimisticProbeSafe excludes).
  template <typename T>
  static void AtomicStore(T* p, const T& v) {
    if constexpr (std::is_trivially_copyable_v<T> &&
                  (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                   sizeof(T) == 8)) {
      __atomic_store(p, const_cast<T*>(&v), __ATOMIC_RELAXED);
    } else {
      *p = v;
    }
  }
  template <typename T>
  static void AtomicStore(T* p, T&& v) {
    if constexpr (std::is_trivially_copyable_v<T> &&
                  (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                   sizeof(T) == 8)) {
      __atomic_store(p, &v, __ATOMIC_RELAXED);
    } else {
      *p = std::move(v);
    }
  }

  void StoreSize(uint32_t b, uint16_t n) {
    __atomic_store_n(&sizes_[b], n, __ATOMIC_RELEASE);
  }

#if DYTIS_SIMD_PROBE
  // Branch-free-strided AVX2 equality scan: 4 keys per compare, one branch
  // per stride on the combined equal/greater masks.  Keys are sorted, so a
  // stride whose minimum exceeds `key` ends the scan.  The sign-bit bias
  // turns AVX2's signed 64-bit compare into an unsigned one.  The scan
  // starts near the remap-predicted `hint` slot, galloping backward first
  // until keys[start] <= key: sorted + unique keys mean no earlier slot can
  // match, so the forward scan from there is exhaustive without touching
  // the whole bucket.  (Racing writers can break sortedness transiently;
  // that only mis-positions the probe, and the caller's version validation
  // rejects the attempt.)
  static int SimdProbe(const uint64_t* keys, int n, uint64_t key,
                       uint32_t hint) {
    int i = static_cast<int>(hint);
    if (i >= n) {
      i = n - 1;  // top-of-range predictions land on the last slot
    }
    for (int step = 4; i > 0; step <<= 1) {
      if (__atomic_load_n(keys + i, __ATOMIC_RELAXED) <= key) {
        break;
      }
      i = i > step ? i - step : 0;
    }
    const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(key));
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    const __m256i needle_biased = _mm256_xor_si256(needle, bias);
    for (; i + 4 <= n; i += 4) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys + i));
      const __m256i eq = _mm256_cmpeq_epi64(v, needle);
      const int eq_mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
      if (eq_mask != 0) {
        return i + __builtin_ctz(static_cast<unsigned>(eq_mask));
      }
      const __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(v, bias),
                                            needle_biased);
      if (_mm256_movemask_pd(_mm256_castsi256_pd(gt)) != 0) {
        return -1;  // sorted: every later key is larger still
      }
    }
    for (; i < n; i++) {
      const uint64_t k = __atomic_load_n(keys + i, __ATOMIC_RELAXED);
      if (k == key) {
        return i;
      }
      if (k > key) {
        return -1;
      }
    }
    return -1;
  }
#endif

  // Scalar fallback: the hint-guided exponential search of the locked path,
  // but every key load is a relaxed atomic so TSan sees annotated accesses
  // and racing writers cannot introduce undefined behaviour.
  static int AtomicLowerBoundProbe(const uint64_t* keys, int n, uint64_t key,
                                   uint32_t hint) {
    auto load = [keys](int i) {
      return __atomic_load_n(keys + i, __ATOMIC_RELAXED);
    };
    int pos = static_cast<int>(hint);
    if (pos >= n) {
      pos = n - 1;
    }
    int lo;
    int hi;
    if (load(pos) < key) {
      int step = 1;
      lo = pos + 1;
      hi = lo;
      while (hi < n && load(hi) < key) {
        lo = hi + 1;
        hi += step;
        step <<= 1;
      }
      hi = std::min(hi, n);
    } else {
      int step = 1;
      hi = pos;
      lo = hi;
      while (lo > 0 && load(lo - 1) >= key) {
        hi = lo;
        lo -= step;
        step <<= 1;
        if (lo < 0) {
          lo = 0;
        }
      }
    }
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (load(mid) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < n && load(lo) == key) {
      return lo;
    }
    return -1;
  }

  // Exponential search for the lower bound of `key`, starting from `hint`.
  static int LowerBound(const uint64_t* keys, int n, uint64_t key,
                        uint32_t hint) {
    if (n == 0) {
      return 0;
    }
    int pos = static_cast<int>(hint);
    if (pos >= n) {
      pos = n - 1;
    }
    int lo;
    int hi;
    if (keys[pos] < key) {
      // Gallop right.
      int step = 1;
      lo = pos + 1;
      hi = lo;
      while (hi < n && keys[hi] < key) {
        lo = hi + 1;
        hi += step;
        step <<= 1;
      }
      hi = std::min(hi, n);
    } else {
      // Gallop left.
      int step = 1;
      hi = pos;
      lo = hi;
      while (lo > 0 && keys[lo - 1] >= key) {
        hi = lo;
        lo -= step;
        step <<= 1;
        if (lo < 0) {
          lo = 0;
        }
      }
    }
    // Binary search in [lo, hi).
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  uint32_t num_buckets_;
  uint32_t capacity_;
  std::unique_ptr<uint64_t[]> keys_;
  std::unique_ptr<V[]> values_;
  std::unique_ptr<uint16_t[]> sizes_;
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_BUCKET_ARRAY_H_
