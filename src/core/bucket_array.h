// Sorted fixed-capacity buckets backing a DyTIS segment.
//
// A bucket stores up to `capacity` key/value pairs with the keys kept in
// sorted order; keys and values live in two parallel arrays as in ALEX
// (Section 3.2: "a key and its value are stored in sorted order ... in the
// two different arrays").  All buckets of a segment share one contiguous
// allocation, which keeps scans sequential and makes the
// remapping/expansion rebuild a single pass.
//
// Lookups use exponential search around a predicted slot (the hint supplied
// by the remapping function), the same in-node search ALEX uses.
#ifndef DYTIS_SRC_CORE_BUCKET_ARRAY_H_
#define DYTIS_SRC_CORE_BUCKET_ARRAY_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

namespace dytis {

template <typename V>
class BucketArray {
 public:
  BucketArray(uint32_t num_buckets, uint32_t capacity)
      : num_buckets_(num_buckets),
        capacity_(capacity),
        keys_(std::make_unique<uint64_t[]>(
            static_cast<size_t>(num_buckets) * capacity)),
        values_(std::make_unique<V[]>(
            static_cast<size_t>(num_buckets) * capacity)),
        sizes_(std::make_unique<uint16_t[]>(num_buckets)) {
    assert(capacity >= 1 && capacity <= UINT16_MAX);
    std::memset(sizes_.get(), 0, num_buckets * sizeof(uint16_t));
  }

  BucketArray(BucketArray&&) noexcept = default;
  BucketArray& operator=(BucketArray&&) noexcept = default;

  uint32_t num_buckets() const { return num_buckets_; }
  uint32_t capacity() const { return capacity_; }
  uint16_t BucketSize(uint32_t b) const { return sizes_[b]; }
  bool IsFull(uint32_t b) const { return sizes_[b] == capacity_; }

  std::span<const uint64_t> Keys(uint32_t b) const {
    return {keys_.get() + Base(b), sizes_[b]};
  }
  std::span<const V> Values(uint32_t b) const {
    return {values_.get() + Base(b), sizes_[b]};
  }

  // Finds `key` in bucket b.  `hint` is the predicted slot (clamped
  // internally).  Returns the slot index, or -1 if absent.
  int Find(uint32_t b, uint64_t key, uint32_t hint) const {
    const uint64_t* keys = keys_.get() + Base(b);
    const int n = sizes_[b];
    const int pos = LowerBound(keys, n, key, hint);
    if (pos < n && keys[pos] == key) {
      return pos;
    }
    return -1;
  }

  const V& ValueAt(uint32_t b, int slot) const {
    return values_[Base(b) + static_cast<size_t>(slot)];
  }
  V& MutableValueAt(uint32_t b, int slot) {
    return values_[Base(b) + static_cast<size_t>(slot)];
  }
  uint64_t KeyAt(uint32_t b, int slot) const {
    return keys_[Base(b) + static_cast<size_t>(slot)];
  }

  // Slot of the first key >= `key` in bucket b (may equal BucketSize(b)).
  int LowerBoundSlot(uint32_t b, uint64_t key, uint32_t hint) const {
    return LowerBound(keys_.get() + Base(b), sizes_[b], key, hint);
  }

  // Result of an insert attempt.
  enum class InsertResult {
    kInserted,       // new key stored
    kAlreadyExists,  // key present; *existing_slot tells where
    kFull,           // bucket has no space (key not present)
  };

  // Inserts (key, value) into bucket b keeping sorted order.
  InsertResult Insert(uint32_t b, uint64_t key, const V& value, uint32_t hint,
                      int* existing_slot = nullptr) {
    uint64_t* keys = keys_.get() + Base(b);
    V* values = values_.get() + Base(b);
    const int n = sizes_[b];
    const int pos = LowerBound(keys, n, key, hint);
    if (pos < n && keys[pos] == key) {
      if (existing_slot != nullptr) {
        *existing_slot = pos;
      }
      return InsertResult::kAlreadyExists;
    }
    if (n == static_cast<int>(capacity_)) {
      return InsertResult::kFull;
    }
    // Shift the tail up by one (values may be non-trivially copyable).
    for (int i = n; i > pos; i--) {
      keys[i] = keys[i - 1];
      values[i] = std::move(values[i - 1]);
    }
    keys[pos] = key;
    values[pos] = value;
    sizes_[b]++;
    return InsertResult::kInserted;
  }

  // Appends without searching; caller guarantees key > all keys in bucket b
  // and the bucket has space.  Used by rebuilds, which feed keys in order.
  void AppendSorted(uint32_t b, uint64_t key, const V& value) {
    const int n = sizes_[b];
    assert(n < static_cast<int>(capacity_));
    assert(n == 0 || keys_[Base(b) + static_cast<size_t>(n - 1)] < key);
    keys_[Base(b) + static_cast<size_t>(n)] = key;
    values_[Base(b) + static_cast<size_t>(n)] = value;
    sizes_[b]++;
  }

  // Removes `key` from bucket b.  Returns false if absent.
  bool Erase(uint32_t b, uint64_t key, uint32_t hint) {
    uint64_t* keys = keys_.get() + Base(b);
    V* values = values_.get() + Base(b);
    const int n = sizes_[b];
    const int pos = LowerBound(keys, n, key, hint);
    if (pos >= n || keys[pos] != key) {
      return false;
    }
    for (int i = pos; i + 1 < n; i++) {
      keys[i] = keys[i + 1];
      values[i] = std::move(values[i + 1]);
    }
    sizes_[b]--;
    return true;
  }

  size_t MemoryBytes() const {
    return sizeof(*this) +
           static_cast<size_t>(num_buckets_) * capacity_ *
               (sizeof(uint64_t) + sizeof(V)) +
           static_cast<size_t>(num_buckets_) * sizeof(uint16_t);
  }

 private:
  size_t Base(uint32_t b) const {
    return static_cast<size_t>(b) * capacity_;
  }

  // Exponential search for the lower bound of `key`, starting from `hint`.
  static int LowerBound(const uint64_t* keys, int n, uint64_t key,
                        uint32_t hint) {
    if (n == 0) {
      return 0;
    }
    int pos = static_cast<int>(hint);
    if (pos >= n) {
      pos = n - 1;
    }
    int lo;
    int hi;
    if (keys[pos] < key) {
      // Gallop right.
      int step = 1;
      lo = pos + 1;
      hi = lo;
      while (hi < n && keys[hi] < key) {
        lo = hi + 1;
        hi += step;
        step <<= 1;
      }
      hi = std::min(hi, n);
    } else {
      // Gallop left.
      int step = 1;
      hi = pos;
      lo = hi;
      while (lo > 0 && keys[lo - 1] >= key) {
        hi = lo;
        lo -= step;
        step <<= 1;
        if (lo < 0) {
          lo = 0;
        }
      }
    }
    // Binary search in [lo, hi).
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  uint32_t num_buckets_;
  uint32_t capacity_;
  std::unique_ptr<uint64_t[]> keys_;
  std::unique_ptr<V[]> values_;
  std::unique_ptr<uint16_t[]> sizes_;
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_BUCKET_ARRAY_H_
