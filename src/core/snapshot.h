// Snapshot persistence for DyTIS (library extension; not part of the paper).
//
// Format (little-endian, version 1):
//   magic "DYTS"   u32
//   version        u32
//   config         first_level_bits/l_start/... (the knobs that shape the
//                  rebuilt index)
//   num_entries    u64
//   entries        num_entries * (key u64, value V) in ascending key order
//
// Loading replays the sorted entries through the normal insert path, which
// is DyTIS's fast path (buckets fill in append order) and guarantees the
// loaded index satisfies every invariant of a live one.  Only trivially
// copyable value types are supported.
#ifndef DYTIS_SRC_CORE_SNAPSHOT_H_
#define DYTIS_SRC_CORE_SNAPSHOT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <type_traits>

#include "src/core/dytis.h"

namespace dytis {

inline constexpr uint32_t kSnapshotMagic = 0x53545944;  // "DYTS"
inline constexpr uint32_t kSnapshotVersion = 1;

namespace snapshot_detail {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteOne(std::FILE* f, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}
template <typename T>
bool ReadOne(std::FILE* f, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::fread(v, sizeof(T), 1, f) == 1;
}

}  // namespace snapshot_detail

// Writes the index contents to `path`.  Returns false on I/O failure.
template <typename V, typename Policy>
bool SaveSnapshot(const BasicDyTIS<V, Policy>& index, const std::string& path) {
  static_assert(std::is_trivially_copyable_v<V>,
                "snapshots support trivially copyable values only");
  using snapshot_detail::WriteOne;
  snapshot_detail::File f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return false;
  }
  const DyTISConfig& config = index.config();
  bool ok = WriteOne(f.get(), kSnapshotMagic) &&
            WriteOne(f.get(), kSnapshotVersion) &&
            WriteOne(f.get(), config) &&
            WriteOne(f.get(), static_cast<uint64_t>(index.size()));
  if (!ok) {
    return false;
  }
  bool write_failed = false;
  index.ForEach([&](uint64_t key, const V& value) {
    if (write_failed) {
      return;
    }
    if (!WriteOne(f.get(), key) || !WriteOne(f.get(), value)) {
      write_failed = true;
    }
  });
  if (write_failed) {
    return false;
  }
  return std::fflush(f.get()) == 0;
}

// Loads a snapshot into a fresh index.  Returns nullptr on I/O failure,
// magic/version mismatch, or corrupt entry counts.
template <typename V, typename Policy = NoLockPolicy>
std::unique_ptr<BasicDyTIS<V, Policy>> LoadSnapshot(const std::string& path) {
  static_assert(std::is_trivially_copyable_v<V>);
  using snapshot_detail::ReadOne;
  snapshot_detail::File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return nullptr;
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  DyTISConfig config;
  uint64_t count = 0;
  if (!ReadOne(f.get(), &magic) || magic != kSnapshotMagic ||
      !ReadOne(f.get(), &version) || version != kSnapshotVersion ||
      !ReadOne(f.get(), &config) || !ReadOne(f.get(), &count)) {
    return nullptr;
  }
  auto index = std::make_unique<BasicDyTIS<V, Policy>>(config);
  for (uint64_t i = 0; i < count; i++) {
    uint64_t key = 0;
    V value{};
    if (!ReadOne(f.get(), &key) || !ReadOne(f.get(), &value)) {
      return nullptr;
    }
    index->Insert(key, value);
  }
  return index;
}

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_SNAPSHOT_H_
