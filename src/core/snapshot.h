// Snapshot / checkpoint persistence for DyTIS (library extension; not part
// of the paper).
//
// Version 2 format (little-endian) — the checkpoint half of the durability
// layer (src/recovery/):
//
//   magic "DYTS"       u32
//   version            u32  (2)
//   header section:
//     config           the knobs that shape the rebuilt index (fault_policy
//                      is cleared on write: injection is a live-test hook,
//                      never a persistent property)
//     num_entries      u64
//     wal_lsn          u64  WAL epoch watermark: the highest log sequence
//                           number whose effects this checkpoint contains;
//                           recovery replays only records with lsn > this
//     created_unix_ns  u64  wall-clock write time (checkpoint age metric)
//     header_crc       u32  CRC32C over the header section
//   entries section:
//     entries          num_entries * (key u64, value V), ascending keys
//     entries_crc      u32  CRC32C over all entry bytes
//
// Saving writes to `path + ".tmp"` and renames into place after fsync, so a
// crash mid-checkpoint can never destroy the previous valid checkpoint.
// Every fwrite/fflush/fclose is checked.  Loading verifies both section
// CRCs and the ascending-key order and returns nullptr (with a reason
// through *error) on any mismatch — a corrupt or truncated file is always a
// clean error, never a partially built index.
//
// Version-1 files (no checksums, no watermark) written by earlier builds
// still load through a compat path; truncation and out-of-order corruption
// are detected, but bit flips inside entry values are not (v1 carried no
// checksum — that is why v2 exists).
//
// Loading replays the sorted entries through the normal insert path, which
// is DyTIS's fast path (buckets fill in append order) and guarantees the
// loaded index satisfies every invariant of a live one.  Only trivially
// copyable value types are supported.
#ifndef DYTIS_SRC_CORE_SNAPSHOT_H_
#define DYTIS_SRC_CORE_SNAPSHOT_H_

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <type_traits>

#include "src/core/dytis.h"
#include "src/util/crc32.h"

namespace dytis {

inline constexpr uint32_t kSnapshotMagic = 0x53545944;  // "DYTS"
// Current write version.  Readable versions: 1 (legacy, unchecksummed), 2.
inline constexpr uint32_t kSnapshotVersion = 2;

// Header metadata surfaced to callers that care about the durability chain
// (recovery wants the WAL watermark and the checkpoint age).
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t num_entries = 0;
  uint64_t wal_lsn = 0;          // 0 for v1 files (no watermark recorded)
  uint64_t created_unix_ns = 0;  // 0 for v1 files
};

namespace snapshot_detail {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteOne(std::FILE* f, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}
template <typename T>
bool ReadOne(std::FILE* f, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::fread(v, sizeof(T), 1, f) == 1;
}
// Checksummed variants: extend *crc with the object representation.
template <typename T>
bool WriteCrc(std::FILE* f, const T& v, uint32_t* crc) {
  *crc = Crc32cExtend(*crc, &v, sizeof(T));
  return WriteOne(f, v);
}
template <typename T>
bool ReadCrc(std::FILE* f, T* v, uint32_t* crc) {
  if (!ReadOne(f, v)) {
    return false;
  }
  *crc = Crc32cExtend(*crc, v, sizeof(T));
  return true;
}

inline bool Fail(std::string* error, const char* reason) {
  if (error != nullptr) {
    *error = reason;
  }
  return false;
}

inline uint64_t WallClockNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace snapshot_detail

// Writes the index contents to `path` (v2 format, atomically via a .tmp
// rename).  `wal_lsn` is the WAL epoch watermark to record — 0 when the
// snapshot is not part of a WAL-backed durability chain.  Returns false on
// I/O failure with a reason through *error.
template <typename V, typename Policy>
bool SaveSnapshot(const BasicDyTIS<V, Policy>& index, const std::string& path,
                  uint64_t wal_lsn = 0, std::string* error = nullptr) {
  static_assert(std::is_trivially_copyable_v<V>,
                "snapshots support trivially copyable values only");
  using snapshot_detail::Fail;
  using snapshot_detail::WriteCrc;
  using snapshot_detail::WriteOne;
  const std::string tmp_path = path + ".tmp";
  snapshot_detail::File f(std::fopen(tmp_path.c_str(), "wb"));
  if (f == nullptr) {
    return Fail(error, "cannot open snapshot file for writing");
  }
  // Header section.  Fault injection is a live-testing hook; persisting it
  // would re-arm the policy (or re-trigger a crash hook) on every load.
  DyTISConfig config = index.config();
  config.fault_policy = FaultPolicy{};
  const uint64_t num_entries = index.size();
  const uint64_t created_unix_ns = snapshot_detail::WallClockNanos();
  uint32_t header_crc = 0;
  if (!WriteOne(f.get(), kSnapshotMagic) ||
      !WriteOne(f.get(), kSnapshotVersion) ||
      !WriteCrc(f.get(), config, &header_crc) ||
      !WriteCrc(f.get(), num_entries, &header_crc) ||
      !WriteCrc(f.get(), wal_lsn, &header_crc) ||
      !WriteCrc(f.get(), created_unix_ns, &header_crc) ||
      !WriteOne(f.get(), header_crc)) {
    std::remove(tmp_path.c_str());
    return Fail(error, "short write in snapshot header");
  }
  // Entries section, checksummed as a stream.
  uint32_t entries_crc = 0;
  uint64_t written = 0;
  bool write_failed = false;
  index.ForEach([&](uint64_t key, const V& value) {
    if (write_failed) {
      return;
    }
    if (!WriteCrc(f.get(), key, &entries_crc) ||
        !WriteCrc(f.get(), value, &entries_crc)) {
      write_failed = true;
      return;
    }
    written++;
  });
  if (write_failed || written != num_entries ||
      !WriteOne(f.get(), entries_crc)) {
    std::remove(tmp_path.c_str());
    return Fail(error, "short write in snapshot entries");
  }
  // Durability: flush user buffers, fsync, and check the close before the
  // rename makes the file visible under its final name.
  if (std::fflush(f.get()) != 0 || ::fsync(fileno(f.get())) != 0) {
    std::remove(tmp_path.c_str());
    return Fail(error, "snapshot flush/fsync failed");
  }
  std::FILE* raw = f.release();
  if (std::fclose(raw) != 0) {
    std::remove(tmp_path.c_str());
    return Fail(error, "snapshot close failed");
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Fail(error, "snapshot rename failed");
  }
  return true;
}

// Loads a snapshot into a fresh index.  Returns nullptr — with a reason
// through *error — on I/O failure, magic/version mismatch, checksum
// mismatch, truncation, trailing garbage, or out-of-order entries; a bad
// file never yields a partially built index.  *info (optional) receives the
// header metadata (version, entry count, WAL watermark, creation time).
template <typename V, typename Policy = NoLockPolicy>
std::unique_ptr<BasicDyTIS<V, Policy>> LoadSnapshot(
    const std::string& path, std::string* error = nullptr,
    SnapshotInfo* info = nullptr) {
  static_assert(std::is_trivially_copyable_v<V>);
  using snapshot_detail::ReadCrc;
  using snapshot_detail::ReadOne;
  auto fail = [error](const char* reason) {
    if (error != nullptr) {
      *error = reason;
    }
    return nullptr;
  };
  snapshot_detail::File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return fail("cannot open snapshot file");
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadOne(f.get(), &magic) || magic != kSnapshotMagic) {
    return fail("bad snapshot magic");
  }
  if (!ReadOne(f.get(), &version) || (version != 1 && version != 2)) {
    return fail("unsupported snapshot version");
  }
  DyTISConfig config;
  uint64_t count = 0;
  uint64_t wal_lsn = 0;
  uint64_t created_unix_ns = 0;
  if (version == 1) {
    if (!ReadOne(f.get(), &config) || !ReadOne(f.get(), &count)) {
      return fail("truncated snapshot header");
    }
  } else {
    uint32_t header_crc = 0;
    uint32_t stored_header_crc = 0;
    if (!ReadCrc(f.get(), &config, &header_crc) ||
        !ReadCrc(f.get(), &count, &header_crc) ||
        !ReadCrc(f.get(), &wal_lsn, &header_crc) ||
        !ReadCrc(f.get(), &created_unix_ns, &header_crc) ||
        !ReadOne(f.get(), &stored_header_crc)) {
      return fail("truncated snapshot header");
    }
    if (stored_header_crc != header_crc) {
      return fail("snapshot header checksum mismatch");
    }
  }
  if (info != nullptr) {
    info->version = version;
    info->num_entries = count;
    info->wal_lsn = wal_lsn;
    info->created_unix_ns = created_unix_ns;
  }
  auto index = std::make_unique<BasicDyTIS<V, Policy>>(config);
  uint32_t entries_crc = 0;
  uint64_t prev_key = 0;
  for (uint64_t i = 0; i < count; i++) {
    uint64_t key = 0;
    V value{};
    if (!ReadCrc(f.get(), &key, &entries_crc) ||
        !ReadCrc(f.get(), &value, &entries_crc)) {
      return fail("truncated snapshot entries");
    }
    // Entries are written in ascending key order; anything else is
    // corruption (and catches many unchecksummed v1 bit flips too).
    if (i > 0 && key <= prev_key) {
      return fail("snapshot entries out of order");
    }
    prev_key = key;
    index->Insert(key, value);
  }
  if (version == 2) {
    uint32_t stored_entries_crc = 0;
    if (!ReadOne(f.get(), &stored_entries_crc)) {
      return fail("truncated snapshot entries checksum");
    }
    if (stored_entries_crc != entries_crc) {
      return fail("snapshot entries checksum mismatch");
    }
  }
  // The format ends here; trailing bytes mean the file is not what the
  // header claims (e.g. a larger file truncated into a smaller valid one
  // cannot happen, but concatenation/garbage can).
  unsigned char extra = 0;
  if (std::fread(&extra, 1, 1, f.get()) != 0) {
    return fail("trailing garbage after snapshot entries");
  }
  return index;
}

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_SNAPSHOT_H_
