// Locking policies for the DyTIS index (Section 3.4).
//
// The paper ships both a lock-free single-threaded build (for
// one-engine-per-core systems like H-Store / Redis Cluster) and a
// multi-threaded build with two-level locking adapted from Ellis:
// a per-EH directory lock and per-segment locks.  We express that choice as
// a compile-time policy so the single-threaded index pays zero
// synchronisation cost.
//
// Optimistic read extension (this reproduction; the technique of
// XIndex-style version-validated reads and optimistic lock coupling):
// SharedMutexPolicy's Mutex carries a seqlock-style version counter next to
// the shared_mutex.  UniqueLock — the writer-side lock — bumps the counter
// on acquire (making it odd: writer active) and again on release (even:
// stable).  A reader may then probe segment state without taking the
// segment lock at all: load the version (retry if odd), read, and re-load
// the version; an unchanged even version proves no writer overlapped the
// read window.  SharedLock is unchanged, so pessimistic readers and the
// optimistic fallback path coexist with the same writers.
#ifndef DYTIS_SRC_CORE_LOCK_POLICY_H_
#define DYTIS_SRC_CORE_LOCK_POLICY_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

// Lock-held assertions (AssertHeldExclusive below) stay active in sanitizer
// builds even though RelWithDebInfo defines NDEBUG: "caller must hold the
// lock exclusively" preconditions must fail fast exactly where the race
// detectors run, not only in -O0 debug builds.
#if !defined(NDEBUG) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_ADDRESS__)
#define DYTIS_LOCK_CHECKS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DYTIS_LOCK_CHECKS 1
#else
#define DYTIS_LOCK_CHECKS 0
#endif
#else
#define DYTIS_LOCK_CHECKS 0
#endif

namespace dytis {

namespace lock_internal {
inline void Fail(const char* what) {
  std::fprintf(stderr, "dytis lock precondition violated: %s\n", what);
  std::abort();
}
}  // namespace lock_internal

// No-op locking: single-threaded engines.
struct NoLockPolicy {
  struct Mutex {};
  struct SharedLock {
    explicit SharedLock(Mutex&) {}
    void unlock() {}
  };
  struct UniqueLock {
    explicit UniqueLock(Mutex&) {}
    void unlock() {}
  };
  // Single-threaded: every access is trivially exclusive.
  static void AssertHeldExclusive(const Mutex&) {}
  static constexpr bool kThreadSafe = false;
  static constexpr bool kBucketLocks = false;
  static constexpr bool kOptimisticReads = false;
};

// Reader/writer locking with std::shared_mutex, plus a per-mutex version
// counter maintained by the writer lock (even = stable, odd = writer
// active).  The counter is what makes version-validated optimistic reads
// possible; pessimistic SharedLock readers ignore it.
struct SharedMutexPolicy {
  struct Mutex {
    std::shared_mutex m;
    // Seqlock word.  Writers make it odd for the duration of their critical
    // section; optimistic readers treat any change as a conflict.
    std::atomic<uint64_t> version{0};
  };
  struct SharedLock {
    explicit SharedLock(Mutex& m) : lock_(m.m) {}
    void unlock() { lock_.unlock(); }

   private:
    std::shared_lock<std::shared_mutex> lock_;
  };
  struct UniqueLock {
    explicit UniqueLock(Mutex& m) : mutex_(&m) {
      mutex_->m.lock();
      // acq_rel: the increment must be ordered before every store of the
      // critical section (acquire half) and after the lock acquisition
      // (release half keeps prior accesses from sinking in).
      mutex_->version.fetch_add(1, std::memory_order_acq_rel);
    }
    ~UniqueLock() {
      if (mutex_ != nullptr) {
        unlock();
      }
    }
    void unlock() {
      // release: every store of the critical section is ordered before the
      // closing increment that optimistic readers validate against.
      mutex_->version.fetch_add(1, std::memory_order_release);
      mutex_->m.unlock();
      mutex_ = nullptr;
    }
    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

   private:
    Mutex* mutex_;
  };
  // The seqlock word of a mutex, for optimistic-read validation.
  static std::atomic<uint64_t>& Version(Mutex& m) { return m.version; }
  static const std::atomic<uint64_t>& Version(const Mutex& m) {
    return m.version;
  }
  // Debug/sanitizer-build precondition check for "caller must hold m
  // exclusively" contracts (split/doubling run under the directory lock
  // exclusively; a comment alone lets misuse race silently).  The seqlock
  // word is odd exactly while a UniqueLock is live, so an even version
  // proves the caller lied.  It cannot prove *which* thread holds the lock,
  // but every unprotected caller that could race the real holder observes
  // an even version with overwhelming probability — misuse fails fast
  // rather than deterministically, which is what a debug assertion is for.
  static void AssertHeldExclusive(const Mutex& m) {
#if DYTIS_LOCK_CHECKS
    if ((Version(m).load(std::memory_order_acquire) & 1) == 0) {
      lock_internal::Fail("mutex not held exclusively");
    }
#else
    (void)m;
#endif
  }
  static constexpr bool kThreadSafe = true;
  static constexpr bool kBucketLocks = false;
  static constexpr bool kOptimisticReads = true;
};

// Fine-grained variant: segment reader/writer locks plus per-bucket
// spinlocks for point operations.  The paper explored bucket-level
// concurrency (Section 3.4) and found that it "generally degrades"
// performance due to the extra lock memory and variable-size segments;
// this policy exists to reproduce that comparison (bench_finegrained).
//
// Optimistic reads are structurally unsound here: point writers mutate
// buckets while holding the segment lock only *shared* (the spinlock is
// per-bucket), so the segment version counter does not cover them.
struct FineGrainedPolicy : SharedMutexPolicy {
  static constexpr bool kBucketLocks = true;
  static constexpr bool kOptimisticReads = false;
};

// Pauses the CPU inside a spin-wait loop: lowers power, frees the sibling
// hyperthread, and (on x86) avoids the memory-order-violation flush when
// the awaited line finally changes.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Tiny test-and-test-and-set spinlock for the per-bucket locks.  Waiters
// spin on a plain load (shared cache line state) and only attempt the
// exclusive-state RMW when the lock looks free; a bare test_and_set loop
// would ping-pong the line between contending cores.
class SpinLock {
 public:
  void lock() {
    for (;;) {
      if (!flag_.test_and_set(std::memory_order_acquire)) {
        return;
      }
      while (flag_.test(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_LOCK_POLICY_H_
