// Locking policies for the DyTIS index (Section 3.4).
//
// The paper ships both a lock-free single-threaded build (for
// one-engine-per-core systems like H-Store / Redis Cluster) and a
// multi-threaded build with two-level locking adapted from Ellis:
// a per-EH directory lock and per-segment locks.  We express that choice as
// a compile-time policy so the single-threaded index pays zero
// synchronisation cost.
#ifndef DYTIS_SRC_CORE_LOCK_POLICY_H_
#define DYTIS_SRC_CORE_LOCK_POLICY_H_

#include <atomic>
#include <mutex>
#include <shared_mutex>

namespace dytis {

// No-op locking: single-threaded engines.
struct NoLockPolicy {
  struct Mutex {};
  struct SharedLock {
    explicit SharedLock(Mutex&) {}
    void unlock() {}
  };
  struct UniqueLock {
    explicit UniqueLock(Mutex&) {}
    void unlock() {}
  };
  static constexpr bool kThreadSafe = false;
  static constexpr bool kBucketLocks = false;
};

// Reader/writer locking with std::shared_mutex.
struct SharedMutexPolicy {
  using Mutex = std::shared_mutex;
  struct SharedLock {
    explicit SharedLock(Mutex& m) : lock_(m) {}
    void unlock() { lock_.unlock(); }

   private:
    std::shared_lock<Mutex> lock_;
  };
  struct UniqueLock {
    explicit UniqueLock(Mutex& m) : lock_(m) {}
    void unlock() { lock_.unlock(); }

   private:
    std::unique_lock<Mutex> lock_;
  };
  static constexpr bool kThreadSafe = true;
  static constexpr bool kBucketLocks = false;
};

// Fine-grained variant: segment reader/writer locks plus per-bucket
// spinlocks for point operations.  The paper explored bucket-level
// concurrency (Section 3.4) and found that it "generally degrades"
// performance due to the extra lock memory and variable-size segments;
// this policy exists to reproduce that comparison (bench_finegrained).
struct FineGrainedPolicy : SharedMutexPolicy {
  static constexpr bool kBucketLocks = true;
};

// Pauses the CPU inside a spin-wait loop: lowers power, frees the sibling
// hyperthread, and (on x86) avoids the memory-order-violation flush when
// the awaited line finally changes.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Tiny test-and-test-and-set spinlock for the per-bucket locks.  Waiters
// spin on a plain load (shared cache line state) and only attempt the
// exclusive-state RMW when the lock looks free; a bare test_and_set loop
// would ping-pong the line between contending cores.
class SpinLock {
 public:
  void lock() {
    for (;;) {
      if (!flag_.test_and_set(std::memory_order_acquire)) {
        return;
      }
      while (flag_.test(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_LOCK_POLICY_H_
