// Forward cursor over a DyTIS index (library extension; not in the paper).
//
// RocksDB-style interface: Seek / SeekToFirst / Valid / Next / key / value.
// The cursor batches entries through the index's Scan path, so it sees the
// same consistency as Scan: with the concurrent build, each refill is an
// epoch-guarded lock-free walk (stable keys appear exactly once in order
// even across concurrent splits/doublings — a retired segment is a frozen
// snapshot of its key range), but entries inserted behind the cursor's
// position after a refill are not revisited (no snapshot isolation).
//
//   dytis::DyTIS<uint64_t> index = ...;
//   for (dytis::Cursor c(index); c.Valid(); c.Next()) {
//     use(c.key(), c.value());
//   }
#ifndef DYTIS_SRC_CORE_CURSOR_H_
#define DYTIS_SRC_CORE_CURSOR_H_

#include <cstdint>
#include <vector>

#include "src/core/dytis.h"

namespace dytis {

template <typename V, typename Policy = NoLockPolicy>
class BasicCursor {
 public:
  // batch_size: entries fetched per refill; larger batches amortise the
  // per-refill positioning cost for long iterations.
  explicit BasicCursor(const BasicDyTIS<V, Policy>& index,
                       size_t batch_size = 256)
      : index_(&index), buffer_(batch_size) {
    SeekToFirst();
  }

  // Positions at the smallest key in the index.
  void SeekToFirst() { Refill(0); }

  // Positions at the smallest key >= target.
  void Seek(uint64_t target) { Refill(target); }

  bool Valid() const { return pos_ < filled_; }

  void Next() {
    pos_++;
    if (pos_ < filled_) {
      return;
    }
    if (filled_ < buffer_.size() || last_key_ == ~uint64_t{0}) {
      // The previous refill already hit the end of the index.
      filled_ = 0;
      pos_ = 0;
      return;
    }
    Refill(last_key_ + 1);
  }

  uint64_t key() const { return buffer_[pos_].first; }
  const V& value() const { return buffer_[pos_].second; }

 private:
  void Refill(uint64_t start) {
    filled_ = index_->Scan(start, buffer_.size(), buffer_.data());
    pos_ = 0;
    if (filled_ > 0) {
      last_key_ = buffer_[filled_ - 1].first;
    }
  }

  const BasicDyTIS<V, Policy>* index_;
  std::vector<std::pair<uint64_t, V>> buffer_;
  size_t filled_ = 0;
  size_t pos_ = 0;
  uint64_t last_key_ = 0;
};

template <typename V>
using Cursor = BasicCursor<V, NoLockPolicy>;
template <typename V>
using ConcurrentCursor = BasicCursor<V, SharedMutexPolicy>;

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_CURSOR_H_
