// One Extendible-Hashing table of the DyTIS second level (Sections 3.2/3.3).
//
// Structure: directory (global depth GD) -> segments (local depth LD,
// variable bucket count, remapping function) -> sorted buckets.  Unlike
// CCEH, the bucket index inside a segment comes from the *remapped key*
// (monotone CDF approximation), not from hash LSBs, which is what makes
// scans possible.
//
// Insertion follows Algorithm 1 of the paper:
//   bucket full, LD <  GD:  util > U_t ? split  : remap (fallback split)
//   bucket full, LD == GD:  util > U_t ? expand : remap (fallback doubling)
// with a warm-up phase (LD < L_start) that behaves like plain Extendible
// hashing (split / directory doubling only).
//
// The insert path is a guaranteed-progress state machine: when every
// structural repair is exhausted (directory-depth cap, segment-size limits,
// injected faults) or the retry budget runs out, the insert terminates
// through TerminalInsert, which always ends in a durable outcome -- bucket
// insert, in-place update, stash insert (growing the stash bound as
// needed), or an explicitly reported InsertResult::kHardError when the
// configured stash hard limit blocks storage.  A key is never silently
// dropped.  DyTISConfig::fault_policy can deterministically fail any
// structural operation so tests can drive every branch of this chain.
//
// Locking (Section 3.4, as amended by this reproduction's lock-free read
// path): *writers* use a per-EH shared_mutex over the directory (held shared
// by insert/update/erase, exclusively by split and doubling) plus per-segment
// locks.  *Readers* (Find / Scan / ForEach) take no directory lock at all:
// they enter an epoch (src/sync/ebr.h), load the directory object and
// segment pointers with acquire loads, and rely on epoch-based reclamation
// for lifetime — a split/doubling/rebuild retires the replaced segment /
// directory / core to the epoch domain, which frees it only after two epoch
// advances prove no reader from its generation survives.  RCU-style: the
// directory is an immutable array object swapped wholesale on doubling, and
// a retired segment is a frozen snapshot of its whole key range (splits copy
// entries out, never mutate the parent), so a reader overtaken by a
// structural op still sees a consistent pre-op state.
//
// Optimistic reads (cf. XIndex-style version validation): when
// DyTISConfig::optimistic_reads is on and the instantiation supports it
// (kOptimisticCapable), point lookups elide the per-segment lock too: they
// probe the segment's published core with atomic loads and validate the
// segment's seqlock version around the probe, retrying a bounded number of
// times before falling back to the per-segment shared lock.  With the epoch
// entry replacing the old directory shared lock, the optimistic path is
// lock-free end to end — no shared-line RMW anywhere on a hit.
//
// Reclamation is bounded and never a global stall: retiring writers amortise
// epoch advances and bounded free passes (DyTISConfig::epoch_advance_
// threshold / epoch_reclaim_batch); nothing ever takes the directory lock
// just to free memory.
#ifndef DYTIS_SRC_CORE_EH_TABLE_H_
#define DYTIS_SRC_CORE_EH_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <string>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/insert_result.h"
#include "src/core/segment.h"
#include "src/core/stats.h"
#include "src/obs/trace.h"
#include "src/sync/ebr.h"
#include "src/util/bitops.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace dytis {

template <typename V, typename Policy>
class EhTable {
 public:
  using SegmentT = Segment<V, Policy>;
  using ScanEntry = std::pair<uint64_t, V>;

 private:
  // The EH directory as one immutable heap object: 2^depth slots of segment
  // pointers.  Slot *contents* still change in place (splits redirect runs
  // under the exclusive directory lock), but size and depth never do — a
  // doubling swaps in a whole new Directory and retires this one.  Readers
  // therefore always see a (size, depth, slots) triple that is mutually
  // consistent, which a resizable vector plus a separate depth int cannot
  // guarantee without a lock.
  struct Directory {
    Directory(size_t size_in, int depth_in)
        : size(size_in),
          depth(depth_in),
          slots(std::make_unique<std::atomic<SegmentT*>[]>(size_in)) {}
    const size_t size;
    const int depth;
    const std::unique_ptr<std::atomic<SegmentT*>[]> slots;
  };

  // Reader-side epoch entry.  Single-threaded policies compile it away
  // entirely (no TLS lookup, no fence).
  using ReadGuard =
      std::conditional_t<Policy::kThreadSafe, EpochGuard, NoEpochGuard>;

 public:

  // Whether this instantiation can run version-validated lock-free lookups:
  // the policy must maintain a writer version (SharedMutexPolicy) and the
  // value type must be readable with one atomic load.  The runtime half of
  // the switch is DyTISConfig::optimistic_reads.
  static constexpr bool kOptimisticCapable =
      Policy::kOptimisticReads && BucketArray<V>::kOptimisticProbeSafe;

  // key_bits: width of the EH-local key (n - R).  table_id identifies this
  // EH within its first level in structural-trace events.  `ebr` is the
  // epoch domain structural retirement goes through; the first level shares
  // one domain across its tables (BasicDyTIS owns it).  A thread-safe table
  // constructed without one (white-box tests) owns a private domain;
  // single-threaded policies never defer frees and ignore it.
  EhTable(const DyTISConfig& config, DyTISStats* stats, int key_bits,
          uint32_t table_id = 0, EpochDomain* ebr = nullptr)
      : config_(config),
        stats_(stats),
        key_bits_(key_bits),
        table_id_(table_id),
        limit_multiplier_(config.limit_multiplier) {
    if constexpr (Policy::kThreadSafe) {
      if (ebr == nullptr) {
        owned_ebr_ = std::make_unique<EpochDomain>(
            config_.epoch_advance_threshold, config_.epoch_reclaim_batch);
        ebr = owned_ebr_.get();
      }
    }
    ebr_ = ebr;
    // Per-table stream for the probabilistic fault mode: distinct tables
    // draw independent sequences from the same configured seed.
    fault_rng_state_.store(
        config.fault_policy.rng_seed ^
            (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(table_id) + 1)),
        std::memory_order_relaxed);
    auto* seg = new SegmentT(
        /*local_depth=*/0, RemapFunction(key_bits_, /*num_buckets=*/1),
        static_cast<uint32_t>(config_.BucketCapacity()));
    seg->stash_bound = config_.stash_soft_limit;
    auto* dir = new Directory(/*size=*/1, /*depth=*/0);
    dir->slots[0].store(seg, std::memory_order_relaxed);
    dir_.store(dir, std::memory_order_release);
  }

  // Teardown goes through the epoch domain: live segments and the live
  // directory are freed here (the caller guarantees quiescence — destroying
  // an index under concurrent readers was never legal), while every
  // *retired* object drains through ~EpochDomain, which asserts that all
  // epoch slots are idle before freeing.  Nothing here double-frees: a
  // retired object left the directory the moment it was retired, so the
  // live walk below cannot reach it.
  ~EhTable() {
    Directory* dir = dir_.load(std::memory_order_relaxed);
    SegmentT* prev = nullptr;
    for (size_t i = 0; i < dir->size; i++) {
      SegmentT* seg = dir->slots[i].load(std::memory_order_relaxed);
      if (seg != prev) {
        delete seg;
        prev = seg;
      }
    }
    delete dir;
  }

  EhTable(const EhTable&) = delete;
  EhTable& operator=(const EhTable&) = delete;

  // Inserts or updates in place.  Returns true when the key is new.
  bool Insert(uint64_t key, const V& value) {
    return IsNewKey(InsertEx(key, value));
  }

  // Insert state machine with a guaranteed-progress contract: every call
  // terminates in kInserted, kUpdated, kStashed, or kHardError.  The only
  // non-storing outcome is kHardError, and it is only reachable when
  // config.stash_hard_limit caps the stash.
  InsertResult InsertEx(uint64_t key, const V& value) {
    const uint64_t eh_local = LowBits(key, key_bits_);
    for (int attempt = 0; attempt < config_.max_structural_retries;
         attempt++) {
      if constexpr (Policy::kBucketLocks) {
        // Fine-grained fast path: shared segment lock + bucket spinlock.
        const FineOutcome fine = FineInsert(eh_local, key, value);
        if (fine == FineOutcome::kInsertedNew) {
          return InsertResult::kInserted;
        }
        if (fine == FineOutcome::kUpdated) {
          return InsertResult::kUpdated;
        }
        // kFallback: full bucket or active stash; use the coarse path.
      }
      {
        typename Policy::SharedLock dir_lock(mutex_);
        SegmentT* seg = SegmentFor(eh_local);
        typename Policy::UniqueLock seg_lock(seg->mutex);
        // A key that once overflowed may live in the stash; it must be
        // updated there, never duplicated into a bucket.
        if (!seg->stash.empty()) {
          const int stash_slot = seg->StashFind(key);
          if (stash_slot >= 0) {
            seg->stash[static_cast<size_t>(stash_slot)].second = value;
            return InsertResult::kUpdated;
          }
        }
        const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
        const auto placement = seg->remap().PlacementFor(local);
        const uint32_t hint = SearchHint(*seg, placement);
        int slot = -1;
        const auto result =
            seg->buckets().Insert(placement.bucket, key, value, hint, &slot);
        if (result == BucketArray<V>::InsertResult::kInserted) {
          seg->num_keys++;
          return InsertResult::kInserted;
        }
        if (result == BucketArray<V>::InsertResult::kAlreadyExists) {
          seg->buckets().SetValue(placement.bucket, slot, value);
          return InsertResult::kUpdated;
        }
        // Bucket full.  Try the segment-local repairs (remap / expansion)
        // under the locks we already hold.
        if (TrySegmentLocalRepair(seg, local)) {
          continue;  // structure improved; retry the insert
        }
      }
      // Split or directory doubling needed: re-enter exclusively.  A false
      // return means every structural option is exhausted (directory-depth
      // cap, segment-size limits, injected faults): terminal step.
      if (!HandleOverflowExclusive(eh_local)) {
        stats_->Add(&DyTISStats::structural_exhaustions, 1);
        return TerminalInsert(eh_local, key, value);
      }
    }
    // Retry budget exhausted: the structure kept changing without this key
    // ever fitting (pathological churn).  The terminal path below still
    // stores the key or reports a hard error -- never a silent drop.
    stats_->Add(&DyTISStats::retry_exhaustions, 1);
    return TerminalInsert(eh_local, key, value);
  }

  bool Find(uint64_t key, V* value) const {
    const uint64_t eh_local = LowBits(key, key_bits_);
    // Reader entry: an epoch guard instead of any directory lock.  The
    // guard keeps every pointer loaded below alive (directory, segment,
    // core) even if a concurrent structural op retires it mid-probe; a
    // retired segment is a frozen snapshot of its whole key range, so the
    // lookup result stays a linearizable pre-op answer.
    ReadGuard epoch_guard(ebr_);
    const Directory* dir = dir_.load(std::memory_order_acquire);
    const SegmentT* seg =
        dir->slots[DirIndexFor(*dir, eh_local)].load(std::memory_order_acquire);
    // Optimistic fast path: version-validated lock-free probe.  Lock-free
    // end to end: the epoch guard above replaced the old shared directory
    // lock, and the per-segment lock is elided by version validation.
    if constexpr (kOptimisticCapable) {
      if (config_.optimistic_reads) {
        const int r = OptimisticFind(seg, eh_local, key, value);
        if (r >= 0) {
          return r != 0;
        }
        // r < 0: conflict budget exhausted or stash active — take the lock.
      }
    }
    typename Policy::SharedLock seg_lock(seg->mutex);
    const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
    const auto placement = seg->remap().PlacementFor(local);
    int slot;
    if constexpr (Policy::kBucketLocks) {
      SpinGuard guard(
          const_cast<SegmentT*>(seg)->BucketLock(placement.bucket));
      slot = seg->buckets().Find(placement.bucket, key,
                               SearchHint(*seg, placement));
      if (slot >= 0 && value != nullptr) {
        *value = seg->buckets().ValueAt(placement.bucket, slot);
        return true;
      }
    } else {
      slot = seg->buckets().Find(placement.bucket, key,
                               SearchHint(*seg, placement));
    }
    if (slot < 0) {
      if (!seg->stash.empty()) {
        const int stash_slot = seg->StashFind(key);
        if (stash_slot >= 0) {
          if (value != nullptr) {
            *value = seg->stash[static_cast<size_t>(stash_slot)].second;
          }
          return true;
        }
      }
      return false;
    }
    if (value != nullptr) {
      *value = seg->buckets().ValueAt(placement.bucket, slot);
    }
    return true;
  }

  // Updates an existing key in place.  Returns false if the key is absent.
  bool Update(uint64_t key, const V& value) {
    const uint64_t eh_local = LowBits(key, key_bits_);
    if constexpr (Policy::kBucketLocks) {
      // Fine-grained fast path for bucket-resident keys.
      typename Policy::SharedLock dir_lock(mutex_);
      SegmentT* seg = SegmentFor(eh_local);
      typename Policy::SharedLock seg_lock(seg->mutex);
      const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
      const auto placement = seg->remap().PlacementFor(local);
      {
        SpinGuard guard(seg->BucketLock(placement.bucket));
        const int slot = seg->buckets().Find(placement.bucket, key,
                                           SearchHint(*seg, placement));
        if (slot >= 0) {
          seg->buckets().SetValue(placement.bucket, slot, value);
          return true;
        }
      }
      if (seg->stash.empty()) {
        return false;
      }
      // Stash-resident keys need the exclusive path below.
    }
    typename Policy::SharedLock dir_lock(mutex_);
    SegmentT* seg = SegmentFor(eh_local);
    typename Policy::UniqueLock seg_lock(seg->mutex);
    const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
    const auto placement = seg->remap().PlacementFor(local);
    const int slot = seg->buckets().Find(placement.bucket, key,
                                       SearchHint(*seg, placement));
    if (slot < 0) {
      if (!seg->stash.empty()) {
        const int stash_slot = seg->StashFind(key);
        if (stash_slot >= 0) {
          seg->stash[static_cast<size_t>(stash_slot)].second = value;
          return true;
        }
      }
      return false;
    }
    seg->buckets().SetValue(placement.bucket, slot, value);
    return true;
  }

  // Deletes a key.  Returns false if absent.  May merge (shrink) the
  // segment when its utilization drops below the merge threshold.
  bool Erase(uint64_t key) {
    const uint64_t eh_local = LowBits(key, key_bits_);
    typename Policy::SharedLock dir_lock(mutex_);
    SegmentT* seg = SegmentFor(eh_local);
    typename Policy::UniqueLock seg_lock(seg->mutex);
    const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
    const auto placement = seg->remap().PlacementFor(local);
    if (!seg->buckets().Erase(placement.bucket, key,
                            SearchHint(*seg, placement))) {
      if (seg->stash.empty() || !seg->StashErase(key)) {
        return false;
      }
    }
    seg->num_keys--;
    MaybeMergeSegment(seg);
    return true;
  }

  // Appends up to `want` entries with key >= start_key (or from the table's
  // smallest key when from_begin).  Returns the number appended.
  size_t Scan(uint64_t start_key, bool from_begin, size_t want,
              ScanEntry* out) const {
    if (want == 0) {
      return 0;
    }
    // Epoch-guarded walk: no directory lock.  Splits may rewire the sibling
    // chain mid-walk, but the chain through any mix of live and retired
    // segments still yields disjoint ascending key ranges — a split never
    // mutates the parent (entries are copied out), so a retired parent is a
    // frozen snapshot covering exactly its children's union, and the walk
    // sees each key range once either way.  Per-segment locks still bound
    // in-place bucket mutation within one segment.
    ReadGuard epoch_guard(ebr_);
    const Directory* dir = dir_.load(std::memory_order_acquire);
    const uint64_t eh_local = LowBits(start_key, key_bits_);
    const SegmentT* seg =
        from_begin
            ? dir->slots[0].load(std::memory_order_acquire)
            : dir->slots[DirIndexFor(*dir, eh_local)].load(
                  std::memory_order_acquire);
    size_t got = 0;
    bool positioned = from_begin;
    while (seg != nullptr && got < want) {
      SegmentScanLock seg_lock(seg->mutex);
      if (!seg->stash.empty()) {
        // Slow path: merge buckets and stash for this segment.
        got += ScanSegmentWithStash(*seg, positioned ? 0 : start_key,
                                    want - got, out + got);
        positioned = true;
        seg = seg->NextSibling();
        continue;
      }
      uint32_t b = 0;
      int slot = 0;
      if (!positioned) {
        const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
        const auto placement = seg->remap().PlacementFor(local);
        b = placement.bucket;
        slot = seg->buckets().LowerBoundSlot(b, start_key,
                                           SearchHint(*seg, placement));
        positioned = true;
      }
      for (; b < seg->buckets().num_buckets() && got < want; b++) {
        const auto keys = seg->buckets().Keys(b);
        const auto values = seg->buckets().Values(b);
        for (size_t i = static_cast<size_t>(slot);
             i < keys.size() && got < want; i++) {
          out[got++] = {keys[i], values[i]};
        }
        slot = 0;
      }
      seg = seg->NextSibling();
    }
    return got;
  }

  // Visits every (key, value) pair in ascending key order.  Epoch-guarded
  // like Scan: stable keys appear exactly once in order under concurrent
  // structural churn; churn keys land on whichever side of an overlapping
  // op the walk observes.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ReadGuard epoch_guard(ebr_);
    const Directory* dir = dir_.load(std::memory_order_acquire);
    const SegmentT* seg = dir->slots[0].load(std::memory_order_acquire);
    while (seg != nullptr) {
      SegmentScanLock seg_lock(seg->mutex);
      if (!seg->stash.empty()) {
        for (const auto& [k, v] : CollectSegmentEntries(*seg)) {
          fn(k, v);
        }
      } else {
        for (uint32_t b = 0; b < seg->buckets().num_buckets(); b++) {
          const auto keys = seg->buckets().Keys(b);
          const auto values = seg->buckets().Values(b);
          for (size_t i = 0; i < keys.size(); i++) {
            fn(keys[i], values[i]);
          }
        }
      }
      seg = seg->NextSibling();
    }
  }

  int global_depth() const {
    return dir_.load(std::memory_order_acquire)->depth;
  }
  uint32_t table_id() const { return table_id_; }

  // Exposes this table's epoch domain (reclamation observability; the
  // BasicDyTIS wrapper aggregates across tables through the shared domain).
  EpochDomain* epoch_domain() const { return ebr_; }

  // Directory entries (2^GD) — an observability gauge.
  size_t DirectoryEntries() const {
    typename Policy::SharedLock dir_lock(mutex_);
    return dir_.load(std::memory_order_relaxed)->size;
  }

  // Total overflow-stash occupancy across segments — an observability gauge
  // (non-zero only when structural repair has been exhausted somewhere).
  size_t StashEntries() const {
    typename Policy::SharedLock dir_lock(mutex_);
    const Directory& dir = *dir_.load(std::memory_order_relaxed);
    size_t n = 0;
    const SegmentT* prev = nullptr;
    for (size_t i = 0; i < dir.size; i++) {
      const SegmentT* seg = dir.slots[i].load(std::memory_order_relaxed);
      if (seg != prev) {
        SegmentScanLock seg_lock(seg->mutex);
        n += seg->stash.size();
        prev = seg;
      }
    }
    return n;
  }

  // Total key/value slot capacity of all buckets (load-factor denominator).
  size_t BucketSlots() const {
    typename Policy::SharedLock dir_lock(mutex_);
    const Directory& dir = *dir_.load(std::memory_order_relaxed);
    size_t n = 0;
    const SegmentT* prev = nullptr;
    for (size_t i = 0; i < dir.size; i++) {
      const SegmentT* seg = dir.slots[i].load(std::memory_order_relaxed);
      if (seg != prev) {
        SegmentScanLock seg_lock(seg->mutex);
        n += static_cast<size_t>(seg->buckets().num_buckets()) *
             seg->buckets().capacity();
        prev = seg;
      }
    }
    return n;
  }

  size_t NumSegments() const {
    typename Policy::SharedLock dir_lock(mutex_);
    const Directory& dir = *dir_.load(std::memory_order_relaxed);
    size_t n = 0;
    const SegmentT* prev = nullptr;
    for (size_t i = 0; i < dir.size; i++) {
      const SegmentT* seg = dir.slots[i].load(std::memory_order_relaxed);
      if (seg != prev) {
        n++;
        prev = seg;
      }
    }
    return n;
  }

  size_t NumKeys() const {
    typename Policy::SharedLock dir_lock(mutex_);
    const Directory& dir = *dir_.load(std::memory_order_relaxed);
    size_t n = 0;
    const SegmentT* prev = nullptr;
    for (size_t i = 0; i < dir.size; i++) {
      const SegmentT* seg = dir.slots[i].load(std::memory_order_relaxed);
      if (seg != prev) {
        SegmentScanLock seg_lock(seg->mutex);
        n += seg->num_keys;
        prev = seg;
      }
    }
    return n;
  }

  // Health sensor walk (src/obs/health.h): appends one SegmentHealth per
  // segment to `segments` and returns this table's aggregate.  Same locking
  // discipline as the other gauge walks — directory shared, each segment
  // under its scan lock while Segment::FillHealth reads it.  O(stored keys)
  // for the PLR-error pass; meant for cadenced/pull collection, never the
  // hot path.
  obs::TableHealth CollectTableHealth(
      std::vector<obs::SegmentHealth>* segments) const {
    typename Policy::SharedLock dir_lock(mutex_);
    const Directory& dir = *dir_.load(std::memory_order_relaxed);
    obs::TableHealth table;
    table.table_id = table_id_;
    table.global_depth = dir.depth;
    table.directory_entries = dir.size;
    const SegmentT* prev = nullptr;
    for (size_t i = 0; i < dir.size; i++) {
      const SegmentT* seg = dir.slots[i].load(std::memory_order_relaxed);
      if (seg == prev) {
        continue;
      }
      prev = seg;
      obs::SegmentHealth health;
      // EH-local key where this segment's directory run begins — the stable
      // identity the degradation detectors key their hysteresis on and the
      // handle RepairSegmentAt re-locates the segment by.  (dir.depth can be
      // 0 only for the single-segment directory, whose run starts at key 0.)
      health.range_start =
          dir.depth == 0 ? 0
                         : static_cast<uint64_t>(i)
                               << (key_bits_ - dir.depth);
      {
        SegmentScanLock seg_lock(seg->mutex);
        seg->FillHealth(table_id_, &health);
      }
      if (table.num_segments == 0) {
        table.min_local_depth = health.local_depth;
        table.max_local_depth = health.local_depth;
      } else {
        table.min_local_depth =
            std::min(table.min_local_depth, health.local_depth);
        table.max_local_depth =
            std::max(table.max_local_depth, health.local_depth);
      }
      table.num_segments++;
      table.num_keys += health.num_keys;
      table.stash_entries += health.stash_size;
      segments->push_back(std::move(health));
    }
    return table;
  }

  // --- Online degradation repair (adversarial robustness; DESIGN.md) ------

  // Outcome of one RepairSegmentAt call, for the mitigation driver's
  // accounting (BasicDyTIS::MitigateDegraded publishes it as attack.*
  // metrics).
  struct RepairOutcome {
    bool found = false;             // a segment owns the range
    bool retrained = false;         // salted retrain rebuilt the segment
    bool split_escalated = false;   // repaired by splitting instead
    bool limit_overridden = false;  // quarantine rebuild beyond Limit_seg
    uint64_t stash_drained = 0;     // stash entries the repair absorbed
    uint64_t stash_after = 0;       // stash entries still resident afterwards
    uint32_t buckets_before = 0;
    uint32_t buckets_after = 0;     // 0 when the repair went through split
  };

  // Quarantines and repairs the segment owning the EH-local key
  // `range_start` (the SegmentHealth::range_start handle): forced salted
  // retrain of its remap function, escalating to a split when the retrain
  // cannot fit under Limit_seg and the segment is below global depth, and —
  // for depth-capped stash bombs where neither applies — an explicit
  // beyond-limit rebuild when DegradationPolicy::allow_limit_override is
  // set.  `salt` keys the retrained allocation (SplitMix64 jitter per
  // sub-range) so an attacker cannot precompute the post-repair bucket
  // boundaries from the public algorithm.
  //
  // EBR-safe by construction: every rebuild goes through RebuildSegment's
  // PublishCore/RetireCore swap and a split retires its parent through the
  // epoch domain exactly like the insert path.  The retrain is gated on
  // FaultPolicy(kRemap) and the escalation on kSplit, so the crash/fault
  // matrix covers mid-repair death.  Returns true when the structure
  // changed.
  bool RepairSegmentAt(uint64_t range_start, uint64_t salt,
                       RepairOutcome* out = nullptr) {
    RepairOutcome local_out;
    RepairOutcome& r = out != nullptr ? *out : local_out;
    r = RepairOutcome{};
    const uint64_t eh_local = LowBits(range_start, key_bits_);
    {
      typename Policy::SharedLock dir_lock(mutex_);
      SegmentT* seg = SegmentFor(eh_local);
      typename Policy::UniqueLock seg_lock(seg->mutex);
      r.found = true;
      r.buckets_before = seg->remap().num_buckets();
      r.stash_drained = seg->stash.size();
      switch (TryRetrainLocked(seg, salt)) {
        case RetrainResult::kRetrained:
          r.retrained = true;
          r.buckets_after = seg->remap().num_buckets();
          r.stash_after = seg->stash.size();
          return true;
        case RetrainResult::kOverridden:
          r.retrained = true;
          r.limit_overridden = true;
          r.buckets_after = seg->remap().num_buckets();
          // The override may have spilled unplaceable keys back.
          r.stash_after = seg->stash.size();
          r.stash_drained -= std::min<uint64_t>(r.stash_drained, r.stash_after);
          return true;
        case RetrainResult::kNeedsSplit:
          break;  // fall through to the exclusive phase below
        case RetrainResult::kFailed:
          return false;
      }
    }
    // Escalation: the keys need more range separation than a local retrain
    // can provide.  Same discipline as HandleOverflowExclusive — exclusive
    // directory lock, split under the segment lock, parent retired after the
    // lock is released.
    SegmentT* split_parent = nullptr;
    {
      typename Policy::UniqueLock dir_lock(mutex_);
      stats_->Add(&DyTISStats::dir_exclusive_acquisitions, 1);
      SegmentT* seg = SegmentFor(eh_local);
      typename Policy::UniqueLock seg_lock(seg->mutex);
      if (seg->local_depth < dir_.load(std::memory_order_relaxed)->depth) {
        if (FaultInjected(StructuralOp::kSplit)) {
          return false;
        }
        const uint64_t t0 = NowNanos();
        SplitSegment(seg, eh_local);
        split_parent = seg;
        DYTIS_OBS_TRACE(obs::TraceOp::kMitigation, t0, NowNanos(), table_id_,
                        seg->local_depth);
      }
      // A concurrent writer may have split or repaired the segment between
      // the two phases; the next detector round re-evaluates the result.
    }
    if (split_parent != nullptr) {
      RetireSegment(split_parent);
      r.split_escalated = true;
      return true;
    }
    return false;
  }

  size_t MemoryBytes() const {
    typename Policy::SharedLock dir_lock(mutex_);
    const Directory& dir = *dir_.load(std::memory_order_relaxed);
    size_t bytes = sizeof(*this) + sizeof(Directory) +
                   dir.size * sizeof(std::atomic<SegmentT*>);
    const SegmentT* prev = nullptr;
    for (size_t i = 0; i < dir.size; i++) {
      const SegmentT* seg = dir.slots[i].load(std::memory_order_relaxed);
      if (seg != prev) {
        bytes += seg->MemoryBytes();
        prev = seg;
      }
    }
    return bytes;
  }

  // Structural invariant checker used by the test suite.  Returns true when
  // every invariant holds; on failure writes a description to *error.
  bool ValidateInvariants(std::string* error) const {
    typename Policy::SharedLock dir_lock(mutex_);
    auto fail = [error](const std::string& msg) {
      if (error != nullptr) {
        *error = msg;
      }
      return false;
    };
    const Directory& dir = *dir_.load(std::memory_order_relaxed);
    if (dir.size != Pow2(dir.depth)) {
      return fail("directory size != 2^GD");
    }
    uint64_t prev_key = 0;
    bool have_prev = false;
    size_t i = 0;
    const SegmentT* expected_sibling_chain =
        dir.slots[0].load(std::memory_order_relaxed);
    while (i < dir.size) {
      const SegmentT* seg = dir.slots[i].load(std::memory_order_relaxed);
      if (seg != expected_sibling_chain) {
        return fail("sibling chain does not match directory order");
      }
      SegmentScanLock seg_lock(seg->mutex);
      if (seg->local_depth > dir.depth) {
        return fail("segment LD > GD");
      }
      const size_t run =
          static_cast<size_t>(Pow2(dir.depth - seg->local_depth));
      if (i % run != 0) {
        return fail("segment directory run is misaligned");
      }
      for (size_t j = 0; j < run; j++) {
        if (dir.slots[i + j].load(std::memory_order_relaxed) != seg) {
          return fail("directory run points at a different segment");
        }
      }
      if (seg->remap().key_bits() != key_bits_ - seg->local_depth) {
        return fail("segment key_bits != key_bits - LD");
      }
      // Per-bucket checks: sorted keys, correct bucket placement, correct
      // segment membership (local-key prefix must equal the directory run).
      size_t counted = 0;
      for (uint32_t b = 0; b < seg->buckets().num_buckets(); b++) {
        const auto keys = seg->buckets().Keys(b);
        for (size_t s = 0; s < keys.size(); s++) {
          const uint64_t k = keys[s];
          const uint64_t eh_local = LowBits(k, key_bits_);
          if (DirIndexFor(dir, eh_local) / run * run != i) {
            return fail("key stored in the wrong segment");
          }
          const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
          if (seg->remap().BucketIndexFor(local) != b) {
            return fail("key stored in the wrong bucket");
          }
          if (have_prev && k <= prev_key) {
            return fail("keys are not globally sorted");
          }
          prev_key = k;
          have_prev = true;
          counted++;
        }
      }
      // Stash invariants: sorted, unique, owned by this segment, disjoint
      // from bucket contents.
      for (size_t s = 0; s < seg->stash.size(); s++) {
        const uint64_t k = seg->stash[s].first;
        if (s > 0 && seg->stash[s - 1].first >= k) {
          return fail("stash is not strictly sorted");
        }
        const uint64_t eh_local = LowBits(k, key_bits_);
        if (DirIndexFor(dir, eh_local) / run * run != i) {
          return fail("stash key stored in the wrong segment");
        }
        const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
        const uint32_t kb = seg->remap().BucketIndexFor(local);
        if (seg->buckets().Find(kb, k, 0) >= 0) {
          return fail("stash key duplicated in a bucket");
        }
        counted++;
      }
      if (counted != seg->num_keys) {
        return fail("segment num_keys out of sync");
      }
      expected_sibling_chain = seg->NextSibling();
      i += run;
    }
    if (expected_sibling_chain != nullptr) {
      return fail("last segment's sibling is not null");
    }
    return true;
  }

 private:
  // Segment-level lock used by multi-bucket readers (scan / for-each /
  // validation / accounting).  With per-bucket locks active, point writers
  // hold the segment lock *shared*, so multi-bucket readers must take it
  // exclusively to get a consistent view; otherwise shared suffices.
  using SegmentScanLock =
      std::conditional_t<Policy::kBucketLocks, typename Policy::UniqueLock,
                         typename Policy::SharedLock>;

  // Outcome of the fine-grained insert fast path.
  enum class FineOutcome { kInsertedNew, kUpdated, kFallback };

  FineOutcome FineInsert(uint64_t eh_local, uint64_t key, const V& value) {
    typename Policy::SharedLock dir_lock(mutex_);
    SegmentT* seg = SegmentFor(eh_local);
    typename Policy::SharedLock seg_lock(seg->mutex);
    if (!seg->stash.empty()) {
      return FineOutcome::kFallback;  // stash ops need the exclusive path
    }
    const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
    const auto placement = seg->remap().PlacementFor(local);
    SpinGuard guard(seg->BucketLock(placement.bucket));
    int slot = -1;
    const auto result =
        seg->buckets().Insert(placement.bucket, key, value,
                            SearchHint(*seg, placement), &slot);
    if (result == BucketArray<V>::InsertResult::kInserted) {
      seg->num_keys++;
      return FineOutcome::kInsertedNew;
    }
    if (result == BucketArray<V>::InsertResult::kAlreadyExists) {
      seg->buckets().SetValue(placement.bucket, slot, value);
      return FineOutcome::kUpdated;
    }
    return FineOutcome::kFallback;  // bucket full
  }

  // Terminal step of the insert state machine.  Runs when every structural
  // repair is exhausted or the retry budget ran out; always ends in a
  // durable outcome.  Re-checks the bucket first (the structure may have
  // been repaired between lock releases), so a key is only stashed when its
  // bucket is genuinely still full.
  InsertResult TerminalInsert(uint64_t eh_local, uint64_t key,
                              const V& value) {
    typename Policy::SharedLock dir_lock(mutex_);
    SegmentT* seg = SegmentFor(eh_local);
    typename Policy::UniqueLock seg_lock(seg->mutex);
    if (!seg->stash.empty()) {
      const int stash_slot = seg->StashFind(key);
      if (stash_slot >= 0) {
        seg->stash[static_cast<size_t>(stash_slot)].second = value;
        return InsertResult::kUpdated;
      }
    }
    const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
    const auto placement = seg->remap().PlacementFor(local);
    int slot = -1;
    const auto result = seg->buckets().Insert(placement.bucket, key, value,
                                            SearchHint(*seg, placement), &slot);
    if (result == BucketArray<V>::InsertResult::kInserted) {
      seg->num_keys++;
      return InsertResult::kInserted;
    }
    if (result == BucketArray<V>::InsertResult::kAlreadyExists) {
      seg->buckets().SetValue(placement.bucket, slot, value);
      return InsertResult::kUpdated;
    }
    // Bucket still full: the stash is the last resort.
    if (config_.stash_hard_limit != 0 &&
        seg->stash.size() >= config_.stash_hard_limit) {
      stats_->Add(&DyTISStats::hard_errors, 1);
      return InsertResult::kHardError;
    }
    while (seg->stash.size() >= seg->stash_bound) {
      seg->stash_bound = std::max<size_t>(1, seg->stash_bound) * 2;
      stats_->Add(&DyTISStats::stash_bound_growths, 1);
    }
    const bool is_new = seg->StashInsert(key, value);
    if (is_new) {
      seg->num_keys++;
      stats_->Add(&DyTISStats::stash_inserts, 1);
#if DYTIS_OBS_ENABLED
      const uint64_t now = NowNanos();
      DYTIS_OBS_TRACE(obs::TraceOp::kStashInsert, now, now, table_id_,
                      seg->local_depth);
#endif
      return InsertResult::kStashed;
    }
    return InsertResult::kUpdated;
  }

  // Fault-injection gate: true when config.fault_policy directs this
  // structural attempt to fail.  Deterministic mode numbers matching
  // attempts per EH in arrival order, so single-threaded tests are fully
  // deterministic; probabilistic mode (fail_probability > 0) draws each
  // matching attempt from the per-table seeded stream instead and ignores
  // the window counters.
  bool FaultInjected(StructuralOp op) {
    const FaultPolicy& fp = config_.fault_policy;
    if (!fp.Enabled() || !fp.Matches(op)) {
      return false;
    }
    if (fp.fail_probability > 0.0) {
      if (NextFaultUniform() >= fp.fail_probability) {
        return false;
      }
    } else {
      const uint64_t n = fault_seq_.fetch_add(1, std::memory_order_relaxed);
      if (n < fp.start_op) {
        return false;
      }
      if (fp.fail_count != FaultPolicy::kAlways &&
          n - fp.start_op >= fp.fail_count) {
        return false;
      }
    }
    if (fp.on_match != nullptr && !fp.on_match(fp.on_match_arg, op)) {
      // Observation hook declined the failure: the structural operation
      // proceeds normally.  The hook ran inside the critical section (locks
      // held, segment version odd), which is what lets tests pin a writer
      // mid-structural-op while readers hammer the segment.
      return false;
    }
    if (fp.crash_instead) {
      // Crash-injection harness: die mid-structural-op, with locks held and
      // no cleanup — indistinguishable from a real crash at this point.
      std::raise(SIGKILL);
    }
    stats_->Add(&DyTISStats::injected_faults, 1);
#if DYTIS_OBS_ENABLED
    const uint64_t now = NowNanos();
    DYTIS_OBS_TRACE(obs::TraceOp::kFault, now, now, table_id_, -1);
#endif
    return true;
  }

  // Next uniform draw in [0, 1) for the probabilistic fault mode: SplitMix64
  // with atomic state, seeded per table from FaultPolicy::rng_seed in the
  // constructor.  fetch_add of the odd gamma is the state update, so
  // concurrent writers each consume distinct stream positions; a
  // single-writer run replays the exact same sequence.
  double NextFaultUniform() {
    uint64_t z = fault_rng_state_.fetch_add(0x9E3779B97F4A7C15ULL,
                                            std::memory_order_relaxed) +
                 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  // --- Optimistic read path (kOptimisticCapable instantiations only) ------

  // Lock-free lookup attempt.  Returns 1 (found, *value filled), 0
  // (definitely absent), or -1 (conflict budget exhausted or stash active:
  // the caller must fall back to the locked path).  Caller holds an epoch
  // guard — which keeps the segment and every core it may load alive even
  // if retired mid-probe — and has already checked config_.optimistic_reads.
  //
  // Protocol per attempt (seqlock):
  //   1. v1 = version (acquire); writer active (odd) => conflict.
  //   2. Probe through the acquire-loaded core with atomic element loads.
  //   3. Acquire fence, then re-load the version; v1 unchanged proves no
  //      writer overlapped [1, 3], so the probe result is consistent.
  int OptimisticFind(const SegmentT* seg, uint64_t eh_local, uint64_t key,
                     V* value) const {
    const auto& version = Policy::Version(seg->mutex);
    uint64_t conflicts = 0;
    for (int attempt = 0; attempt <= config_.optimistic_read_retries;
         attempt++) {
      const uint64_t v1 = version.load(std::memory_order_acquire);
      if ((v1 & 1) != 0) {
        conflicts++;  // writer inside its critical section: brief spin
        CpuRelax();
        continue;
      }
      if (seg->stash_count.load(std::memory_order_acquire) != 0) {
        // Overflow stash active (adversarial workloads only): the stash is
        // a std::vector the probe cannot touch safely — use the locked path.
        RecordOptimistic(conflicts, /*fallback=*/true);
        return -1;
      }
      const SegmentCore<V>* core = seg->AcquireCore();
      const uint64_t local = LowBits(eh_local, core->remap.key_bits());
      const auto placement = core->remap.PlacementFor(local);
      const int n = core->buckets.AcquireBucketSize(placement.bucket);
      const uint32_t hint =
          placement.permille * static_cast<uint32_t>(n) / 1000;
      V tmp{};
      const bool hit =
          core->buckets.OptimisticProbe(placement.bucket, n, key, hint, &tmp);
      // Order every probe load before the validating re-load.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (version.load(std::memory_order_relaxed) == v1) {
        if (hit && value != nullptr) {
          *value = tmp;
        }
        RecordOptimistic(conflicts, /*fallback=*/false);
        return hit ? 1 : 0;
      }
      conflicts++;  // a writer overlapped the probe window: retry
    }
    RecordOptimistic(conflicts, /*fallback=*/true);
    return -1;
  }

  // Conflict accounting for the optimistic read path.  No-op on the
  // uncontended fast path, keeping it free of shared-counter traffic.
  void RecordOptimistic(uint64_t conflicts, bool fallback) const {
    if (conflicts != 0) {
      stats_->Add(&DyTISStats::optimistic_read_retries, conflicts);
    }
    if (fallback) {
      stats_->Add(&DyTISStats::optimistic_read_fallbacks, 1);
    }
  }

  // Runtime counterpart of kOptimisticCapable: are lock-free readers
  // possible on *this* index right now?
  bool UseOptimistic() const {
    if constexpr (kOptimisticCapable) {
      return config_.optimistic_reads;
    } else {
      return false;
    }
  }

  // --- Retiring replaced objects ------------------------------------------
  //
  // A structural operation unlinks an object (segment core on rebuild,
  // parent segment on split, directory array on doubling) that an
  // epoch-guarded reader may still be probing.  Each retire hands the object
  // to the epoch domain, which frees it only once two epoch advances prove
  // no guard from its generation survives; retiring writers amortise the
  // advance + bounded-free passes, so reclamation never takes a lock beyond
  // the domain's internal spinlock and never stalls the index globally.
  //
  // Cores need deferral only when lock-free probes are live (pessimistic
  // readers hold the segment lock across the probe); segments and
  // directories need it whenever readers are epoch-guarded at all, i.e. on
  // every thread-safe policy — Scan/Find walk them with no lock even when
  // optimistic_reads is off.

  void RetireCore(SegmentCore<V>* core) {
    if (core == nullptr) {
      return;
    }
    if (UseOptimistic()) {
      stats_->Add(&DyTISStats::cores_retired, 1);
      ebr_->Retire(core);
    } else {
      delete core;
    }
  }

  void RetireSegment(SegmentT* seg) {
    if (seg == nullptr) {
      return;
    }
    if constexpr (Policy::kThreadSafe) {
      stats_->Add(&DyTISStats::segments_retired, 1);
      ebr_->Retire(seg);
    } else {
      delete seg;
    }
  }

  void RetireDirectory(Directory* dir) {
    if constexpr (Policy::kThreadSafe) {
      stats_->Add(&DyTISStats::directories_retired, 1);
      ebr_->Retire(dir);
    } else {
      delete dir;
    }
  }

  // Writer-path segment resolution.  Callers hold the directory lock (shared
  // or exclusive), which orders them against the slot stores of concurrent
  // splits/doublings — relaxed loads suffice.  Reader paths (Find/Scan/
  // ForEach) do not use these; they acquire-load through their epoch guard.
  SegmentT* SegmentFor(uint64_t eh_local) {
    Directory* dir = dir_.load(std::memory_order_relaxed);
    return dir->slots[DirIndexFor(*dir, eh_local)].load(
        std::memory_order_relaxed);
  }
  const SegmentT* SegmentFor(uint64_t eh_local) const {
    const Directory* dir = dir_.load(std::memory_order_relaxed);
    return dir->slots[DirIndexFor(*dir, eh_local)].load(
        std::memory_order_relaxed);
  }

  size_t DirIndexFor(const Directory& dir, uint64_t eh_local) const {
    if (dir.depth == 0) {
      return 0;
    }
    return static_cast<size_t>(TopBits(eh_local, key_bits_, dir.depth));
  }

  // In-bucket slot hint from the remap placement (learned-index-style
  // position prediction; the in-bucket search is exponential around it).
  static uint32_t SearchHint(const SegmentT& seg,
                             const RemapFunction::Placement& placement) {
    const uint32_t size = seg.buckets().BucketSize(placement.bucket);
    return placement.permille * size / 1000;
  }

  bool InWarmup(const SegmentT* seg) const {
    return seg->local_depth < config_.l_start;
  }

  // Limit_seg: maximum bucket count of a segment at the given local depth.
  // Doubles per local depth; the multiplier is raised once per EH when the
  // expansion share observed by L' = L_start + l_prime_delta is high.
  uint32_t SegmentLimit(int local_depth) const {
    const int excess =
        local_depth >= config_.l_start ? local_depth - config_.l_start : 0;
    const int shift = std::min(excess + 1, 24);
    return limit_multiplier_.load(std::memory_order_relaxed) *
           static_cast<uint32_t>(Pow2(shift));
  }

  void NoteStructuralOp(bool was_expansion, int local_depth) {
    if (limit_decided_.load(std::memory_order_relaxed)) {
      return;
    }
    const uint32_t structurals =
        warm_structurals_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint32_t expansions = warm_expansions_.load(std::memory_order_relaxed);
    if (was_expansion) {
      expansions = warm_expansions_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    if (local_depth >= config_.l_start + config_.l_prime_delta) {
      // Decision point L' reached: commit the segment-size limit.
      const double share =
          static_cast<double>(expansions) / static_cast<double>(structurals);
      if (share > config_.expansion_share_threshold) {
        limit_multiplier_.store(config_.limit_multiplier_large,
                                std::memory_order_relaxed);
      }
      limit_decided_.store(true, std::memory_order_relaxed);
    }
  }

  // --- Segment-local repairs (run under dir shared + segment unique) -----

  // Returns true when the structure changed (caller should retry).
  bool TrySegmentLocalRepair(SegmentT* seg, uint64_t local) {
    if (InWarmup(seg)) {
      return false;  // warm-up: plain Extendible hashing only
    }
    const bool at_global =
        seg->local_depth == dir_.load(std::memory_order_relaxed)->depth;
    const double util = seg->Utilization();
    if (util > config_.util_threshold) {
      if (at_global) {
        return ExpandSegment(seg);  // Algorithm 1 line 13
      }
      return false;  // split needed (line 6): requires the directory lock
    }
    if (RemapSegment(seg, local)) {  // lines 8 / 15
      return true;
    }
    return false;  // remap failed: split (line 9) or doubling (line 18)
  }

  // Expansion (Algorithm 1 line 13): double every sub-range's bucket span,
  // i.e. double all slopes and rebuild.  Fails when the segment-size limit
  // would be exceeded.
  bool ExpandSegment(SegmentT* seg) {
    if (FaultInjected(StructuralOp::kExpand)) {
      return false;
    }
    const uint64_t t0 = NowNanos();
    std::vector<uint32_t> counts = seg->remap().Counts();
    uint64_t total = 0;
    for (auto& c : counts) {
      c *= 2;
      total += c;
    }
    if (total > SegmentLimit(seg->local_depth)) {
      stats_->Add(&DyTISStats::expand_failures, 1);
      return false;
    }
    if (!RebuildSegment(seg, std::move(counts), /*enforce_limit=*/true)) {
      stats_->Add(&DyTISStats::expand_failures, 1);
      return false;  // overflow retries blew the size limit
    }
    const uint64_t t1 = NowNanos();
    stats_->Add(&DyTISStats::expansions, 1);
    stats_->Add(&DyTISStats::expansion_ns, t1 - t0);
    DYTIS_OBS_TRACE(obs::TraceOp::kExpansion, t0, t1, table_id_,
                    seg->local_depth);
    NoteStructuralOp(/*was_expansion=*/true, seg->local_depth);
    return true;
  }

  // Remapping (Algorithm 1 lines 8/15): refine sub-ranges until the target
  // sub-range's utilization exceeds U_t, then double the target's bucket
  // span, stealing buckets from under-utilized sub-ranges when possible and
  // growing the segment otherwise.  Fails when nothing can change (all
  // sub-ranges busy and the size limit is reached).
  bool RemapSegment(SegmentT* seg, uint64_t local) {
    if (FaultInjected(StructuralOp::kRemap)) {
      return false;
    }
    const uint64_t t0 = NowNanos();
    const int key_bits = seg->remap().key_bits();
    const int max_p = std::min(config_.max_subrange_bits, key_bits);
    const int cur_p = seg->remap().subrange_bits();

    // Key counts at maximum refinement (single pass over the segment).
    std::vector<uint64_t> keys_fine(Pow2(max_p), 0);
    for (uint32_t b = 0; b < seg->buckets().num_buckets(); b++) {
      for (uint64_t k : seg->buckets().Keys(b)) {
        const uint64_t seg_local = LowBits(k, key_bits);
        keys_fine[TopBits(seg_local, key_bits, max_p)]++;
      }
    }
    const std::vector<uint32_t> buckets_fine = seg->remap().RefinedCounts(max_p);
    const double cap = static_cast<double>(seg->buckets().capacity());

    // 1. Refine until the target sub-range is genuinely hot (util > U_t).
    int p = cur_p;
    while (p < max_p) {
      const uint32_t t = static_cast<uint32_t>(TopBits(local, key_bits, p));
      const int group = max_p - p;
      uint64_t kcount = 0;
      uint64_t bcount = 0;
      for (uint64_t i = (static_cast<uint64_t>(t) << group),
                    end = (static_cast<uint64_t>(t) + 1) << group;
           i < end; i++) {
        kcount += keys_fine[i];
        bcount += buckets_fine[i];
      }
      const double util =
          bcount == 0 ? 2.0 : static_cast<double>(kcount) / (cap * bcount);
      if (util > config_.util_threshold) {
        break;
      }
      p++;
    }

    // Aggregate keys and current buckets to refinement p.
    const uint32_t subs = static_cast<uint32_t>(Pow2(p));
    const int group = max_p - p;
    std::vector<uint64_t> keys_at(subs, 0);
    std::vector<uint32_t> buckets_at(subs, 0);
    for (uint32_t s = 0; s < subs; s++) {
      for (uint64_t i = (static_cast<uint64_t>(s) << group),
                    end = (static_cast<uint64_t>(s) + 1) << group;
           i < end; i++) {
        keys_at[s] += keys_fine[i];
        buckets_at[s] += buckets_fine[i];
      }
    }
    const uint32_t target = static_cast<uint32_t>(TopBits(local, key_bits, p));

    // 2. New allocation: double the target's span; steal from sub-ranges
    // whose utilization is below U_t (each keeps the minimum it needs).
    std::vector<uint32_t> new_counts(subs);
    const uint32_t old_t = std::max<uint32_t>(1, buckets_at[target]);
    const uint32_t want_t = old_t * 2;
    uint32_t needed = want_t - buckets_at[target];
    uint64_t old_total = 0;
    for (uint32_t s = 0; s < subs; s++) {
      new_counts[s] = std::max<uint32_t>(1, buckets_at[s]);
      old_total += new_counts[s];
    }
    new_counts[target] = want_t;
    // Steal pass.
    for (uint32_t s = 0; s < subs && needed > 0; s++) {
      if (s == target) {
        continue;
      }
      const uint32_t have = new_counts[s];
      const double util = static_cast<double>(keys_at[s]) / (cap * have);
      if (util >= config_.util_threshold) {
        continue;
      }
      const uint32_t min_needed = std::max<uint32_t>(
          1, static_cast<uint32_t>(
                 std::ceil(static_cast<double>(keys_at[s]) /
                           (cap * config_.util_threshold))));
      if (have <= min_needed) {
        continue;
      }
      const uint32_t give = std::min(have - min_needed, needed);
      new_counts[s] = have - give;
      needed -= give;
    }
    uint64_t new_total = 0;
    for (uint32_t c : new_counts) {
      new_total += c;
    }
    if (needed > 0) {
      // 3. Stealing failed: grow the segment instead.
      if (new_total > SegmentLimit(seg->local_depth)) {
        stats_->Add(&DyTISStats::remap_failures, 1);
        return false;
      }
    }
    // No-op guard: remapping must change the function, or the caller would
    // loop forever.
    if (p == cur_p && new_counts == seg->remap().Counts()) {
      stats_->Add(&DyTISStats::remap_failures, 1);
      return false;
    }
    if (!RebuildSegment(seg, std::move(new_counts), /*enforce_limit=*/true)) {
      stats_->Add(&DyTISStats::remap_failures, 1);
      return false;
    }
    const uint64_t t1 = NowNanos();
    stats_->Add(&DyTISStats::remappings, 1);
    stats_->Add(&DyTISStats::remap_ns, t1 - t0);
    DYTIS_OBS_TRACE(obs::TraceOp::kRemap, t0, t1, table_id_,
                    seg->local_depth);
    NoteStructuralOp(/*was_expansion=*/false, seg->local_depth);
    return true;
  }

  // Deletion-side merge: when utilization drops far below the threshold,
  // shrink the segment to the minimum allocation (inverse of remapping).
  void MaybeMergeSegment(SegmentT* seg) {
    if (InWarmup(seg) || seg->remap().num_buckets() <= 1) {
      return;
    }
    if (seg->Utilization() >= config_.merge_threshold) {
      return;
    }
    const int key_bits = seg->remap().key_bits();
    const int p = seg->remap().subrange_bits();
    const uint32_t subs = seg->remap().num_subranges();
    std::vector<uint64_t> keys_at(subs, 0);
    for (uint32_t b = 0; b < seg->buckets().num_buckets(); b++) {
      for (uint64_t k : seg->buckets().Keys(b)) {
        keys_at[TopBits(LowBits(k, key_bits), key_bits, p)]++;
      }
    }
    const double cap = static_cast<double>(seg->buckets().capacity());
    std::vector<uint32_t> new_counts(subs);
    uint64_t new_total = 0;
    for (uint32_t s = 0; s < subs; s++) {
      new_counts[s] = std::max<uint32_t>(
          1, static_cast<uint32_t>(
                 std::ceil(static_cast<double>(keys_at[s]) /
                           (cap * config_.util_threshold))));
      new_total += new_counts[s];
    }
    if (new_total >= seg->remap().num_buckets()) {
      return;  // nothing to reclaim
    }
    // enforce_limit keeps the shrink bounded; if the compact allocation
    // cannot hold the remaining keys the merge is simply skipped.
    const uint64_t t0 = NowNanos();
    if (RebuildSegment(seg, std::move(new_counts), /*enforce_limit=*/true)) {
      stats_->Add(&DyTISStats::merges, 1);
      DYTIS_OBS_TRACE(obs::TraceOp::kMerge, t0, NowNanos(), table_id_,
                      seg->local_depth);
    }
  }

  // Forced salted retrain of a quarantined segment (RepairSegmentAt's
  // segment-local phase; caller holds dir shared + segment unique).  The
  // allocation is computed from the *actual* key histogram at maximum
  // refinement — buckets and stash both — sized for util_threshold, then
  // perturbed per sub-range by SplitMix64(salt) jitter so the post-repair
  // bucket boundaries are keyed, not derivable from the public algorithm.
  // (Sub-range *boundaries* stay equal key spans — the remap function is
  // monotone by construction and a hash-style salt would break key order —
  // so the salt keys the per-sub-range bucket allocation, which is what
  // decides where collisions land.)
  enum class RetrainResult { kRetrained, kOverridden, kNeedsSplit, kFailed };
  RetrainResult TryRetrainLocked(SegmentT* seg, uint64_t salt) {
    if (FaultInjected(StructuralOp::kRemap)) {
      return RetrainResult::kFailed;
    }
    const uint64_t t0 = NowNanos();
    const int key_bits = seg->remap().key_bits();
    const int max_p = std::min(config_.max_subrange_bits, key_bits);
    const uint32_t subs = static_cast<uint32_t>(Pow2(max_p));
    std::vector<uint64_t> keys_at(subs, 0);
    for (uint32_t b = 0; b < seg->buckets().num_buckets(); b++) {
      for (uint64_t k : seg->buckets().Keys(b)) {
        keys_at[TopBits(LowBits(k, key_bits), key_bits, max_p)]++;
      }
    }
    for (const auto& entry : seg->stash) {
      keys_at[TopBits(LowBits(entry.first, key_bits), key_bits, max_p)]++;
    }
    const double cap = static_cast<double>(seg->buckets().capacity());
    std::vector<uint32_t> counts(subs);
    uint64_t total = 0;
    for (uint32_t s = 0; s < subs; s++) {
      counts[s] = std::max<uint32_t>(
          1, static_cast<uint32_t>(
                 std::ceil(static_cast<double>(keys_at[s]) /
                           (cap * config_.util_threshold))));
      total += counts[s];
    }
    // Keyed jitter: up to +25% buckets per sub-range.  When the base
    // allocation fits under Limit_seg the jitter is capped by the remaining
    // headroom so salting never forces an unnecessary escalation.
    const uint64_t limit = SegmentLimit(seg->local_depth);
    const bool fits = total <= limit;
    uint64_t headroom = fits ? limit - total : ~uint64_t{0};
    SplitMix64 sm(salt);
    for (uint32_t s = 0; s < subs; s++) {
      uint64_t jitter = sm.Next() % (counts[s] / 4 + 1);
      jitter = std::min(jitter, headroom);
      counts[s] += static_cast<uint32_t>(jitter);
      headroom -= jitter;
    }
    if (fits &&
        RebuildSegment(seg, std::vector<uint32_t>(counts),
                       /*enforce_limit=*/true)) {
      DYTIS_OBS_TRACE(obs::TraceOp::kMitigation, t0, NowNanos(), table_id_,
                      seg->local_depth);
      return RetrainResult::kRetrained;
    }
    if (seg->local_depth < dir_.load(std::memory_order_relaxed)->depth) {
      return RetrainResult::kNeedsSplit;  // escalate under the dir lock
    }
    if (!config_.degradation.allow_limit_override) {
      return RetrainResult::kFailed;
    }
    // Depth-capped stash bomb: no split or doubling can separate the keys
    // and they cannot fit under Limit_seg.  Quarantine override — rebuild
    // beyond the limit with a bucket budget linear in the actual key count,
    // trading memory for restored bucket placement instead of staying on
    // the O(stash) insert path forever.  Keys the budget cannot place (a
    // dense run narrower than any reachable bucket span has no grid
    // allocation at all) spill back into the stash, bounded.
    RebuildSegmentQuarantine(seg, std::move(counts));
    DYTIS_OBS_TRACE(obs::TraceOp::kMitigation, t0, NowNanos(), table_id_,
                    seg->local_depth);
    return RetrainResult::kOverridden;
  }

  // Quarantine rebuild (TryRetrainLocked's limit-override path; caller
  // holds the segment unique lock).  Same PublishCore/RetireCore swap as
  // RebuildSegment, but with the limit replaced by a budget linear in the
  // key count: the grid remap needs span/capacity buckets to absorb a key
  // run narrower than a bucket span, so an unbounded doubling loop would
  // allocate toward UINT32_MAX buckets on exactly the attacks this path
  // exists for.  Entries that still overflow at the budget return to the
  // stash (ascending, so the stash stays sorted); the stash bound is reset
  // above the residue so the insert path does not immediately burn cycles
  // re-attempting a repair this path just proved impossible.
  //
  // Futility check: when most of the segment still spills at the budget,
  // the attack is structurally unabsorbable (a stride-1 run would need
  // span/capacity buckets no budget reaches) and the big allocation buys
  // nothing — it only slows scans, which must walk its empty buckets.  In
  // that case the segment is rebuilt *compact*, at the normal limit, and
  // the run stays quarantined in the stash.
  void RebuildSegmentQuarantine(SegmentT* seg, std::vector<uint32_t> counts) {
    const int key_bits = seg->remap().key_bits();
    const std::vector<std::pair<uint64_t, V>> entries =
        CollectSegmentEntries(*seg);
    const double per_key =
        std::max(1.0, config_.degradation.override_budget_per_key);
    const uint64_t limit = SegmentLimit(seg->local_depth);
    const uint64_t budget = std::max<uint64_t>(
        limit,
        static_cast<uint64_t>(static_cast<double>(entries.size()) * per_key));
    std::vector<uint32_t> counts_copy = counts;
    std::vector<std::pair<uint64_t, V>> spill;
    auto rebuilt = BuildBuckets(key_bits, std::move(counts), entries, budget,
                                static_cast<uint32_t>(config_.BucketCapacity()),
                                &spill);
    if (spill.size() * 2 > entries.size()) {
      spill.clear();
      rebuilt = BuildBuckets(key_bits, std::move(counts_copy), entries, limit,
                             static_cast<uint32_t>(config_.BucketCapacity()),
                             &spill);
    }
    // With a spill vector BuildBuckets always produces an allocation.
    auto* next = new SegmentCore<V>(std::move(rebuilt->first),
                                    std::move(rebuilt->second));
    RetireCore(seg->PublishCore(next));
    seg->ResetBucketLocks();
    seg->stash = std::move(spill);
    seg->stash.shrink_to_fit();
    seg->SyncStashCount();
    seg->stash_bound =
        std::max<size_t>(config_.stash_soft_limit, seg->stash.size() * 2);
  }

  // Merged, ascending-key view of a segment's buckets and stash.
  static std::vector<std::pair<uint64_t, V>> CollectSegmentEntries(
      const SegmentT& seg) {
    std::vector<std::pair<uint64_t, V>> entries;
    entries.reserve(seg.num_keys);
    size_t si = 0;  // stash cursor (stash is sorted)
    for (uint32_t b = 0; b < seg.buckets().num_buckets(); b++) {
      const auto keys = seg.buckets().Keys(b);
      const auto values = seg.buckets().Values(b);
      for (size_t i = 0; i < keys.size(); i++) {
        while (si < seg.stash.size() && seg.stash[si].first < keys[i]) {
          entries.push_back(seg.stash[si++]);
        }
        entries.emplace_back(keys[i], values[i]);
      }
    }
    while (si < seg.stash.size()) {
      entries.push_back(seg.stash[si++]);
    }
    return entries;
  }

  // Scan fallback for segments with a non-empty stash.
  static size_t ScanSegmentWithStash(const SegmentT& seg, uint64_t start_key,
                                     size_t want, ScanEntry* out) {
    const auto entries = CollectSegmentEntries(seg);
    auto it = std::lower_bound(
        entries.begin(), entries.end(), start_key,
        [](const auto& e, uint64_t k) { return e.first < k; });
    size_t got = 0;
    for (; it != entries.end() && got < want; ++it) {
      out[got++] = *it;
    }
    return got;
  }

  // Rebuilds the segment's buckets under a new allocation (draining the
  // stash back into buckets).  Retries with a doubled sub-range when a
  // bucket overflows (possible when a key cluster is narrower than a bucket
  // span).  Returns false when enforce_limit is set and the allocation
  // cannot fit under the segment-size limit.
  bool RebuildSegment(SegmentT* seg, std::vector<uint32_t> counts,
                      bool enforce_limit) {
    const int key_bits = seg->remap().key_bits();
    const std::vector<std::pair<uint64_t, V>> entries =
        CollectSegmentEntries(*seg);
    auto rebuilt = BuildBuckets(key_bits, std::move(counts), entries,
                                enforce_limit ? SegmentLimit(seg->local_depth)
                                              : 0,
                                static_cast<uint32_t>(config_.BucketCapacity()));
    if (!rebuilt) {
      return false;
    }
    // Publish the replacement (remap, buckets) pair as one core swap so a
    // lock-free reader never sees the new remap over the old buckets.  The
    // old core may still be under a concurrent optimistic probe; RetireCore
    // hands it to the epoch domain, which frees it once no guard from its
    // generation survives.  Without optimistic readers (policy, value type,
    // or config), nobody can be inside the old core — the rebuild holds the
    // segment lock exclusively — so RetireCore deletes it immediately.
    auto* next = new SegmentCore<V>(std::move(rebuilt->first),
                                    std::move(rebuilt->second));
    RetireCore(seg->PublishCore(next));
    seg->ResetBucketLocks();
    seg->stash.clear();
    seg->stash.shrink_to_fit();
    seg->SyncStashCount();
    seg->stash_bound = config_.stash_soft_limit;  // rebuild drained the stash
    return true;
  }

  // Places `entries` (ascending by key) into fresh buckets under the
  // allocation `counts` over `key_bits`-wide local keys.  On overflow the
  // offending sub-range's count is doubled and the build restarts, within
  // `limit` total buckets.  When the limit blocks:
  //   * stash_out == nullptr: returns nullopt (the caller treats the
  //     structural operation as failed, per Algorithm 1);
  //   * stash_out != nullptr: performs a final build with the best-fitting
  //     allocation and spills non-fitting entries into *stash_out (used by
  //     split, which must always succeed).
  static std::optional<std::pair<RemapFunction, BucketArray<V>>> BuildBuckets(
      int key_bits, std::vector<uint32_t> counts,
      const std::vector<std::pair<uint64_t, V>>& entries, uint64_t limit,
      uint32_t capacity,
      std::vector<std::pair<uint64_t, V>>* stash_out = nullptr) {
    const int p = FloorLog2(counts.size());
    const int span_bits = key_bits - p;
    bool force_spill = false;
    for (;;) {
      uint64_t total = 0;
      for (uint32_t c : counts) {
        total += c;
      }
      const bool over_limit = force_spill || (limit != 0 && total > limit);
      if (over_limit && stash_out == nullptr) {
        return std::nullopt;
      }
      RemapFunction remap(key_bits, counts);
      BucketArray<V> buckets(remap.num_buckets(), capacity);
      int overflow_sub = -1;
      for (const auto& [key, value] : entries) {
        const uint64_t local = LowBits(key, key_bits);
        const uint32_t b = remap.BucketIndexFor(local);
        if (buckets.IsFull(b)) {
          if (over_limit) {
            // Final build (stash_out is non-null here): spill the entry
            // instead of growing the allocation further.
            stash_out->emplace_back(key, value);
            continue;
          }
          overflow_sub = static_cast<int>(remap.SubrangeFor(local));
          break;
        }
        buckets.AppendSorted(b, key, value);
      }
      if (overflow_sub < 0) {
        return std::make_pair(std::move(remap), std::move(buckets));
      }
      // Double the overflowing sub-range (bounded: once a sub-range has one
      // bucket per possible key value it cannot overflow again, and unique
      // keys guarantee at most one entry per key value).
      const uint64_t span = span_bits >= 63 ? ~uint64_t{0} : Pow2(span_bits);
      uint64_t next = static_cast<uint64_t>(counts[overflow_sub]) * 2;
      next = std::min<uint64_t>(next, std::min<uint64_t>(span, UINT32_MAX / 2));
      if (next <= counts[static_cast<size_t>(overflow_sub)]) {
        if (stash_out == nullptr) {
          return std::nullopt;  // cannot grow further
        }
        force_spill = true;  // spill on the next pass instead
        continue;
      }
      counts[static_cast<size_t>(overflow_sub)] = static_cast<uint32_t>(next);
    }
  }

  // --- Structural operations under the exclusive directory lock ----------

  // Returns false when every structural repair is exhausted (the caller
  // falls back to the overflow stash).
  bool HandleOverflowExclusive(uint64_t eh_local) {
    typename Policy::UniqueLock dir_lock(mutex_);
    // Counted so the reclamation regression test can assert that memory
    // reclamation never shows up here: the directory lock is taken
    // exclusively only here and in RepairSegmentAt's split escalation, and
    // only for split/doubling.
    stats_->Add(&DyTISStats::dir_exclusive_acquisitions, 1);
    // The exclusive directory lock excludes every *writer*, but epoch-guarded
    // readers ignore it entirely — segment state may be probed (locked or
    // optimistically) at any moment, so mutation below needs the segment's
    // own writer lock, exactly as on the shared-lock path.  The parent
    // retired by a split is handed to the epoch domain only after its lock
    // is released: the domain may free it promptly when no reader holds a
    // guard, and unlocking a freed mutex is use-after-free.
    SegmentT* split_parent = nullptr;
    {
      SegmentT* seg = SegmentFor(eh_local);
      typename Policy::UniqueLock seg_lock(seg->mutex);
      // Re-check: another thread may have repaired the structure already.
      const uint64_t local = LowBits(eh_local, seg->remap().key_bits());
      const uint32_t b = seg->remap().BucketIndexFor(local);
      if (!seg->buckets().IsFull(b)) {
        return true;
      }
      // Re-run the decision with exclusive ownership: segment-local repairs
      // are legal here too (they can apply if the state changed since the
      // shared-lock attempt).
      if (TrySegmentLocalRepair(seg, local)) {
        return true;
      }
      if (seg->local_depth < dir_.load(std::memory_order_relaxed)->depth) {
        if (FaultInjected(StructuralOp::kSplit)) {
          return false;  // forced split failure: degrade to the stash
        }
        SplitSegment(seg, eh_local);  // Algorithm 1 lines 6/9 (+ warm-up)
        split_parent = seg;
      }
    }
    if (split_parent != nullptr) {
      RetireSegment(split_parent);
      return true;
    }
    // Falls through here only when the segment is already at global depth.
    if (dir_.load(std::memory_order_relaxed)->depth <
        config_.max_global_depth) {
      if (FaultInjected(StructuralOp::kDoubling)) {
        return false;  // forced doubling failure: degrade to the stash
      }
      DoubleDirectory();  // Algorithm 1 line 18 (and warm-up doubling)
      return true;
    }
    return false;  // directory-depth cap reached: degrade to the stash
  }

  // Splits `seg` into two children at local depth + 1.  Caller holds the
  // directory lock exclusively (asserted) plus the parent's segment lock.
  // The parent is never mutated or freed here: entries are *copied* into
  // the children, so the parent stays a frozen snapshot of its whole key
  // range for any epoch-guarded reader that loaded its pointer before the
  // directory rewrite; the caller retires it after releasing its lock.
  void SplitSegment(SegmentT* seg, uint64_t eh_local) {
    Policy::AssertHeldExclusive(mutex_);
    const uint64_t t0 = NowNanos();
    Directory& dir = *dir_.load(std::memory_order_relaxed);
    assert(seg->local_depth < dir.depth);
    const int parent_ld = seg->local_depth;
    const int child_ld = parent_ld + 1;
    const int parent_kb = seg->remap().key_bits();
    const int child_kb = parent_kb - 1;
    assert(child_kb >= 0);
    const uint32_t capacity = static_cast<uint32_t>(config_.BucketCapacity());

    // Partition entries (buckets + stash) by the next local-key MSB.
    std::vector<std::pair<uint64_t, V>> left_entries;
    std::vector<std::pair<uint64_t, V>> right_entries;
    const uint64_t half = Pow2(child_kb);
    for (auto& entry : CollectSegmentEntries(*seg)) {
      const uint64_t local = LowBits(entry.first, parent_kb);
      if (local < half) {
        left_entries.push_back(std::move(entry));
      } else {
        right_entries.push_back(std::move(entry));
      }
    }

    // Child allocations (Section 3.3, Split): size the child for the keys
    // of its half of the parent, then double it, keeping the slopes.
    std::vector<uint32_t> left_counts;
    std::vector<uint32_t> right_counts;
    if (child_ld <= config_.l_start) {
      // Warm-up children: plain Extendible hashing, one bucket each.
      left_counts = {1};
      right_counts = {1};
    } else {
      const int p = seg->remap().subrange_bits();
      if (p >= 1) {
        const auto counts = seg->remap().Counts();
        const size_t mid = counts.size() / 2;
        left_counts.assign(counts.begin(), counts.begin() + mid);
        right_counts.assign(counts.begin() + mid, counts.end());
        for (auto& c : left_counts) {
          c = std::max<uint32_t>(1, c * 2);
        }
        for (auto& c : right_counts) {
          c = std::max<uint32_t>(1, c * 2);
        }
      } else {
        const uint32_t c = seg->remap().num_buckets();
        const uint32_t boundary = c / 2;
        left_counts = {std::max<uint32_t>(1, boundary * 2)};
        right_counts = {std::max<uint32_t>(1, (c - boundary) * 2)};
      }
    }

    // Children are built under their own size limit; entries that cannot fit
    // (pathologically dense key clusters) spill into the child's stash so a
    // split can never fail or allocate unboundedly.
    const uint64_t child_limit = SegmentLimit(child_ld);
    std::vector<std::pair<uint64_t, V>> left_stash;
    std::vector<std::pair<uint64_t, V>> right_stash;
    auto left_built = BuildBuckets(child_kb, std::move(left_counts),
                                   left_entries, child_limit, capacity,
                                   &left_stash);
    auto right_built = BuildBuckets(child_kb, std::move(right_counts),
                                    right_entries, child_limit, capacity,
                                    &right_stash);
    assert(left_built && right_built);

    // The children are invisible until the directory/sibling publication
    // below, so plain member assignment is safe here; the release stores
    // that make them reachable order all of it for epoch-guarded readers.
    auto* left = new SegmentT(child_ld, std::move(left_built->first), capacity);
    left->buckets() = std::move(left_built->second);
    left->ResetBucketLocks();
    left->num_keys = left_entries.size();
    left->stash = std::move(left_stash);
    left->SyncStashCount();
    left->stash_bound = config_.stash_soft_limit;
    auto* right =
        new SegmentT(child_ld, std::move(right_built->first), capacity);
    right->buckets() = std::move(right_built->second);
    right->ResetBucketLocks();
    right->num_keys = right_entries.size();
    right->stash = std::move(right_stash);
    right->SyncStashCount();
    right->stash_bound = config_.stash_soft_limit;

    // Wire siblings before the directory rewrite: once any pointer to a
    // child is published, its own sibling link must already be complete so
    // an epoch-guarded walk never dead-ends mid-chain.
    left->SetSibling(right);
    right->SetSibling(seg->NextSibling());

    // Redirect the directory run occupied by the parent; runs are aligned
    // on their own length, so the start follows from any covered index.
    // Release stores: a reader that acquires a child pointer (from a slot
    // or a sibling hop) sees its fully built contents.
    const size_t run = static_cast<size_t>(Pow2(dir.depth - parent_ld));
    const size_t start = (DirIndexFor(dir, eh_local) / run) * run;
    assert(dir.slots[start].load(std::memory_order_relaxed) == seg);
    for (size_t i = 0; i < run / 2; i++) {
      dir.slots[start + i].store(left, std::memory_order_release);
      dir.slots[start + run / 2 + i].store(right, std::memory_order_release);
    }
    if (start > 0) {
      dir.slots[start - 1].load(std::memory_order_relaxed)
          ->SetSibling(left);
    }
    // The parent is left intact (frozen); the caller retires it through the
    // epoch domain once its lock is released.

    const uint64_t t1 = NowNanos();
    stats_->Add(&DyTISStats::splits, 1);
    stats_->Add(&DyTISStats::split_ns, t1 - t0);
    DYTIS_OBS_TRACE(obs::TraceOp::kSplit, t0, t1, table_id_, parent_ld);
    if (child_ld > config_.l_start) {
      NoteStructuralOp(/*was_expansion=*/false, parent_ld);
    }
  }

  // Directory doubling, RCU-style: the directory is an immutable object, so
  // doubling builds a fresh one off to the side, publishes it with a single
  // release store, and retires the old array through the epoch domain — an
  // epoch-guarded reader that already loaded the old directory keeps
  // indexing it safely (its slots still point at live segments; the GD it
  // carries is self-consistent with its own size).  Caller holds the
  // directory lock exclusively (asserted), which serialises doublings.
  void DoubleDirectory() {
    Policy::AssertHeldExclusive(mutex_);
    const uint64_t t0 = NowNanos();
    Directory* old = dir_.load(std::memory_order_relaxed);
    auto* bigger = new Directory(old->size * 2, old->depth + 1);
    for (size_t i = 0; i < old->size; i++) {
      SegmentT* seg = old->slots[i].load(std::memory_order_relaxed);
      bigger->slots[2 * i].store(seg, std::memory_order_relaxed);
      bigger->slots[2 * i + 1].store(seg, std::memory_order_relaxed);
    }
    dir_.store(bigger, std::memory_order_release);
    RetireDirectory(old);
    const uint64_t t1 = NowNanos();
    stats_->Add(&DyTISStats::doublings, 1);
    stats_->Add(&DyTISStats::doubling_ns, t1 - t0);
    DYTIS_OBS_TRACE(obs::TraceOp::kDoubling, t0, t1, table_id_,
                    bigger->depth);
  }

  DyTISConfig config_;
  DyTISStats* stats_;
  const int key_bits_;
  const uint32_t table_id_;

  mutable typename Policy::Mutex mutex_;
  std::atomic<Directory*> dir_{nullptr};

  // Epoch domain structural retirement goes through (null only for
  // single-threaded policies, which never defer frees).  Usually the
  // first level's shared domain; owned_ebr_ backs the standalone-table
  // fallback described at the constructor.
  EpochDomain* ebr_ = nullptr;
  std::unique_ptr<EpochDomain> owned_ebr_;

  // Segment-size-limit heuristic state (Section 3.3).  Relaxed atomics:
  // remapping/expansion update these under segment locks, so two segments of
  // the same EH can report concurrently.
  std::atomic<uint32_t> limit_multiplier_;
  std::atomic<bool> limit_decided_{false};
  std::atomic<uint32_t> warm_expansions_{0};
  std::atomic<uint32_t> warm_structurals_{0};

  // Sequence number of fault-policy-matched structural attempts (fault
  // injection is disabled by default; see DyTISConfig::fault_policy).
  std::atomic<uint64_t> fault_seq_{0};

  // SplitMix64 state of the probabilistic fault mode, seeded per table in
  // the constructor so every EH draws an independent reproducible stream.
  std::atomic<uint64_t> fault_rng_state_{0};
};

}  // namespace dytis

#endif  // DYTIS_SRC_CORE_EH_TABLE_H_
