// Bit-manipulation helpers shared across the index implementations.
//
// DyTIS carves a 64-bit key into fields (first-level index, directory index,
// segment-local key, sub-range index), so all of the indexes in this repo end
// up doing the same handful of shift/mask operations.  Centralising them keeps
// the bit arithmetic auditable in one place.
#ifndef DYTIS_SRC_UTIL_BITOPS_H_
#define DYTIS_SRC_UTIL_BITOPS_H_

#include <bit>
#include <cassert>
#include <cstdint>

namespace dytis {

// Number of bits in the key type used throughout the library.
inline constexpr int kKeyBits = 64;

// Returns floor(log2(x)).  Precondition: x > 0.
constexpr int FloorLog2(uint64_t x) {
  assert(x > 0);
  return 63 - std::countl_zero(x);
}

// Returns ceil(log2(x)).  Precondition: x > 0.
constexpr int CeilLog2(uint64_t x) {
  assert(x > 0);
  return (x == 1) ? 0 : 64 - std::countl_zero(x - 1);
}

// Returns true when x is a power of two (and non-zero).
constexpr bool IsPow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Returns 2^e as a uint64_t.  Precondition: 0 <= e < 64.
constexpr uint64_t Pow2(int e) {
  assert(e >= 0 && e < 64);
  return uint64_t{1} << e;
}

// Extracts `count` most-significant bits of a `width`-bit value `x`
// (i.e. the directory-index operation of Extendible Hashing).
// Preconditions: 0 <= count <= width <= 64, x < 2^width.
constexpr uint64_t TopBits(uint64_t x, int width, int count) {
  assert(width >= 0 && width <= 64);
  assert(count >= 0 && count <= width);
  if (count == 0) {
    return 0;
  }
  return x >> (width - count);
}

// Extracts the `count` least-significant bits of x.
constexpr uint64_t LowBits(uint64_t x, int count) {
  assert(count >= 0 && count <= 64);
  if (count == 64) {
    return x;
  }
  return x & (Pow2(count) - 1);
}

// Mask with the lowest `count` bits set.
constexpr uint64_t LowMask(int count) {
  assert(count >= 0 && count <= 64);
  if (count == 64) {
    return ~uint64_t{0};
  }
  return Pow2(count) - 1;
}

// Exact (x * num) / den in 128-bit intermediate arithmetic.  Used by the
// remapping function so that the piecewise-linear key remap is exactly
// monotonic with no floating-point rounding.
constexpr uint64_t MulDiv(uint64_t x, uint64_t num, uint64_t den) {
  assert(den != 0);
  return static_cast<uint64_t>((static_cast<unsigned __int128>(x) * num) / den);
}

}  // namespace dytis

#endif  // DYTIS_SRC_UTIL_BITOPS_H_
