#include "src/util/latency_recorder.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace dytis {

LatencyRecorder::LatencyRecorder() : buckets_(kNumBuckets, 0) {}

int LatencyRecorder::BucketFor(uint64_t nanos) {
  if (nanos < (uint64_t{1} << kSubBucketBits)) {
    // Values below 64ns are exact: one bucket per nanosecond would be
    // overkill; the first decade stores them linearly.
    return static_cast<int>(nanos);
  }
  const int msb = 63 - std::countl_zero(nanos);
  const int decade = msb - kSubBucketBits + 1;
  const int sub =
      static_cast<int>((nanos >> (msb - kSubBucketBits)) & ((1 << kSubBucketBits) - 1));
  int bucket = ((decade + 1) << kSubBucketBits) + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t LatencyRecorder::BucketMidpoint(int bucket) {
  if (bucket < (1 << kSubBucketBits)) {
    return static_cast<uint64_t>(bucket);
  }
  const int decade = (bucket >> kSubBucketBits) - 1;
  const int sub = bucket & ((1 << kSubBucketBits) - 1);
  const int msb = decade + kSubBucketBits - 1;
  const uint64_t base = (uint64_t{1} << msb) | (static_cast<uint64_t>(sub) << (msb - kSubBucketBits));
  const uint64_t width = uint64_t{1} << (msb - kSubBucketBits);
  return base + width / 2;
}

void LatencyRecorder::Record(uint64_t nanos) {
  buckets_[static_cast<size_t>(BucketFor(nanos))]++;
  count_++;
  sum_ += nanos;
  max_ = std::max(max_, nanos);
  min_ = std::min(min_, nanos);
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

double LatencyRecorder::MeanNanos() const {
  if (count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t LatencyRecorder::PercentileNanos(double quantile) const {
  assert(quantile >= 0.0 && quantile <= 1.0);
  if (count_ == 0) {
    return 0;
  }
  const uint64_t target =
      static_cast<uint64_t>(quantile * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; b++) {
    seen += buckets_[static_cast<size_t>(b)];
    if (seen >= target) {
      return std::min(BucketMidpoint(b), max_);
    }
  }
  return max_;
}

std::vector<LatencyRecorder::Bucket> LatencyRecorder::ExportBuckets() const {
  std::vector<Bucket> out;
  for (int b = 0; b < kNumBuckets; b++) {
    const uint64_t c = buckets_[static_cast<size_t>(b)];
    if (c != 0) {
      out.push_back({BucketMidpoint(b), c});
    }
  }
  return out;
}

JsonValue LatencyRecorder::ToJson() const {
  JsonValue j = JsonValue::Object();
  j["count"] = count_;
  j["mean_ns"] = MeanNanos();
  j["min_ns"] = MinNanos();
  j["max_ns"] = MaxNanos();
  j["p50_ns"] = PercentileNanos(0.5);
  j["p90_ns"] = PercentileNanos(0.9);
  j["p99_ns"] = PercentileNanos(0.99);
  j["p9999_ns"] = PercentileNanos(0.9999);
  JsonValue buckets = JsonValue::Array();
  for (const Bucket& b : ExportBuckets()) {
    JsonValue e = JsonValue::Object();
    e["midpoint_ns"] = b.midpoint_nanos;
    e["count"] = b.count;
    buckets.Append(std::move(e));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

void LatencyRecorder::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = ~uint64_t{0};
}

}  // namespace dytis
