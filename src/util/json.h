// Minimal JSON document builder for machine-readable exports (bench result
// files, Chrome trace_event streams, metrics dumps).
//
// This is a *writer*, not a parser: benches and the observability layer
// compose a JsonValue tree and Dump() it.  Object key order is preserved so
// exported files diff cleanly across runs.  Numbers are emitted losslessly
// (int64/uint64 as integers, doubles with round-trip precision); non-finite
// doubles are emitted as null, so the output is always standard JSON that
// `python3 -m json.tool` and chrome://tracing accept.
#ifndef DYTIS_SRC_UTIL_JSON_H_
#define DYTIS_SRC_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dytis {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  JsonValue(int v) : type_(Type::kInt), int_(v) {}                    // NOLINT
  JsonValue(long v) : type_(Type::kInt), int_(v) {}                   // NOLINT
  JsonValue(long long v) : type_(Type::kInt), int_(v) {}              // NOLINT
  JsonValue(unsigned v) : type_(Type::kUint), uint_(v) {}             // NOLINT
  JsonValue(unsigned long v) : type_(Type::kUint), uint_(v) {}        // NOLINT
  JsonValue(unsigned long long v) : type_(Type::kUint), uint_(v) {}   // NOLINT
  JsonValue(double v) : type_(Type::kDouble), double_(v) {}           // NOLINT
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}      // NOLINT
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static JsonValue Object() { return JsonValue(Type::kObject); }
  static JsonValue Array() { return JsonValue(Type::kArray); }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  // Object access: inserts the key (null value) when absent.  A null value
  // silently becomes an object on first use, so nested paths compose:
  //   root["config"]["keys"] = 42;
  JsonValue& operator[](const std::string& key);

  // Array append.  A null value silently becomes an array on first use.
  JsonValue& Append(JsonValue v);

  // Number of object members / array elements (0 for scalars).
  size_t size() const;

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  const std::vector<JsonValue>& elements() const { return elements_; }

  // Serialises the tree.  indent == 0 emits a compact single line;
  // indent > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  // JSON string escaping (shared with the streaming trace exporter).
  static void EscapeTo(const std::string& raw, std::string* out);

 private:
  explicit JsonValue(Type t) : type_(t) {}

  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace dytis

#endif  // DYTIS_SRC_UTIL_JSON_H_
