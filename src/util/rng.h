// Small deterministic PRNGs used by the dataset generators and workloads.
//
// We intentionally avoid <random>'s engines in the hot paths: the benchmark
// harness generates hundreds of millions of keys and std::mt19937_64 is both
// slower and harder to seed reproducibly across platforms.  SplitMix64 is the
// canonical seeding function; Xoshiro256** is the workhorse generator.
#ifndef DYTIS_SRC_UTIL_RNG_H_
#define DYTIS_SRC_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace dytis {

// SplitMix64: tiny, statistically solid, used to expand one seed into many.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256**: fast general-purpose generator (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  Precondition: bound > 0.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // bias is < 2^-64 * bound which is irrelevant for workload generation.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Standard normal via Box-Muller (cached second value).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Avoid log(0).
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace dytis

#endif  // DYTIS_SRC_UTIL_RNG_H_
