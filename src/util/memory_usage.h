// Process memory accounting for the Section 4.3 memory-usage analysis.
//
// The paper measures maximum memory usage per index with `dstat`.  We read
// the Linux /proc/self/status counters instead: VmRSS for the current
// resident set and VmHWM for the high-water mark.  Because VmHWM is
// monotonic for the life of the process, the per-index measurement in
// bench_memory runs each index build in a forked child (RunAndMeasurePeakRss)
// so every candidate starts from a fresh high-water mark.
#ifndef DYTIS_SRC_UTIL_MEMORY_USAGE_H_
#define DYTIS_SRC_UTIL_MEMORY_USAGE_H_

#include <cstddef>
#include <functional>

namespace dytis {

// Current resident set size in bytes (0 if unavailable).
size_t CurrentRssBytes();

// Peak resident set size (VmHWM) in bytes for this process (0 if unavailable).
size_t PeakRssBytes();

// Runs `fn` in a forked child process and returns the child's peak RSS in
// bytes.  Returns 0 on failure (fork unsupported / child crashed).  `fn` must
// not depend on being able to communicate anything back other than memory use.
size_t RunAndMeasurePeakRss(const std::function<void()>& fn);

}  // namespace dytis

#endif  // DYTIS_SRC_UTIL_MEMORY_USAGE_H_
