// Latency sample recorder with percentile reporting (Table 2 of the paper).
//
// Uses a fixed-resolution logarithmic histogram (HdrHistogram-style: 64
// buckets per power-of-two decade) so that recording is O(1), memory is
// constant, and p99/p99.99 are accurate to <2% relative error, which is
// plenty for latency tables quoted in ns.
#ifndef DYTIS_SRC_UTIL_LATENCY_RECORDER_H_
#define DYTIS_SRC_UTIL_LATENCY_RECORDER_H_

#include <cstdint>
#include <vector>

#include "src/util/json.h"

namespace dytis {

class LatencyRecorder {
 public:
  LatencyRecorder();

  // Records one latency sample in nanoseconds.
  void Record(uint64_t nanos);

  // Merges another recorder's samples into this one (for per-thread
  // recorders in the concurrency experiments).
  void Merge(const LatencyRecorder& other);

  uint64_t count() const { return count_; }
  double MeanNanos() const;
  // quantile in [0, 1]; e.g. 0.99 for p99, 0.9999 for p99.99.
  uint64_t PercentileNanos(double quantile) const;
  uint64_t MaxNanos() const { return max_; }
  uint64_t MinNanos() const { return count_ == 0 ? 0 : min_; }

  // One non-empty histogram bucket.  midpoint_nanos is chosen so that
  // Record()ing it lands back in the same bucket: a recorder rebuilt by
  // replaying the export reproduces count() and every percentile exactly.
  struct Bucket {
    uint64_t midpoint_nanos = 0;
    uint64_t count = 0;
  };

  // Non-empty buckets in ascending latency order.
  std::vector<Bucket> ExportBuckets() const;

  // JSON object with the summary statistics (count, mean/min/max,
  // p50/p90/p99/p99.99 in ns) plus the non-empty buckets, e.g.
  //   {"count": 3, ..., "buckets": [{"midpoint_ns": 100, "count": 2}, ...]}
  JsonValue ToJson() const;

  void Reset();

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per decade.
  static constexpr int kDecades = 40;       // covers up to ~2^45 ns (~9 hours).
  static constexpr int kNumBuckets = kDecades << kSubBucketBits;

  static int BucketFor(uint64_t nanos);
  static uint64_t BucketMidpoint(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = ~uint64_t{0};
};

}  // namespace dytis

#endif  // DYTIS_SRC_UTIL_LATENCY_RECORDER_H_
