// Zipfian-distributed integer sampler, YCSB-compatible.
//
// The paper runs workloads A-F with YCSB's default Zipfian constant 0.99.
// This is the standard Gray et al. rejection-free sampler used by YCSB's
// ZipfianGenerator, including the incremental zeta update that lets the item
// count grow (needed for workloads D'/E where inserts extend the key set).
#ifndef DYTIS_SRC_UTIL_ZIPF_H_
#define DYTIS_SRC_UTIL_ZIPF_H_

#include <cassert>
#include <cmath>
#include <cstdint>

#include "src/util/rng.h"

namespace dytis {

class ZipfianGenerator {
 public:
  // Samples values in [0, num_items).  theta is the Zipfian constant
  // (YCSB default 0.99).
  ZipfianGenerator(uint64_t num_items, double theta = 0.99,
                   uint64_t seed = 0x5eedULL)
      : items_(num_items), theta_(theta), rng_(seed) {
    assert(num_items > 0);
    zeta_n_ = Zeta(0, items_, theta_, 0.0);
    zeta2_ = Zeta(0, 2, theta_, 0.0);
    Recompute();
  }

  // Grows the item universe (used when inserts extend the loaded key set).
  // Zeta is updated incrementally, so this is O(delta) not O(n).
  void GrowTo(uint64_t num_items) {
    if (num_items <= items_) {
      return;
    }
    zeta_n_ = Zeta(items_, num_items, theta_, zeta_n_);
    items_ = num_items;
    Recompute();
  }

  uint64_t num_items() const { return items_; }

  // Returns a rank in [0, num_items): rank 0 is the most popular item.
  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zeta_n_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(items_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= items_ ? items_ - 1 : rank;
  }

 private:
  static double Zeta(uint64_t from, uint64_t to, double theta, double initial) {
    double sum = initial;
    for (uint64_t i = from; i < to; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    }
    return sum;
  }

  void Recompute() {
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zeta_n_);
  }

  uint64_t items_;
  double theta_;
  double zeta_n_ = 0.0;
  double zeta2_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
  Rng rng_;
};

// YCSB's ScrambledZipfian: zipfian ranks hashed over the item space so that
// the popular items are spread across the key population instead of being
// the first-inserted ones.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t num_items, double theta = 0.99,
                            uint64_t seed = 0x5eedULL)
      : zipf_(num_items, theta, seed) {}

  void GrowTo(uint64_t num_items) { zipf_.GrowTo(num_items); }

  uint64_t Next() {
    const uint64_t rank = zipf_.Next();
    return FnvHash64(rank) % zipf_.num_items();
  }

 private:
  static uint64_t FnvHash64(uint64_t v) {
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 8; i++) {
      hash ^= (v >> (i * 8)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
    return hash;
  }

  ZipfianGenerator zipf_;
};

}  // namespace dytis

#endif  // DYTIS_SRC_UTIL_ZIPF_H_
