#include "src/util/crc32.h"

namespace dytis {
namespace {

// Builds the byte-at-a-time lookup table for the reflected CRC32C polynomial.
struct Crc32cTable {
  uint32_t entries[256];

  Crc32cTable() {
    // Reflected form of 0x1EDC6F41.
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; bit++) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  const Crc32cTable& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < len; i++) {
    crc = table.entries[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace dytis
