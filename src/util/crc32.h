// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum framing used by
// the durability layer (WAL record frames, checkpoint sections).
//
// Software table-driven implementation: byte-at-a-time over a 256-entry
// table, no CPU-feature dependence, deterministic across platforms.  The
// durability paths checksum tens of bytes per record / one streaming pass
// per checkpoint, so this is nowhere near a hot path.
//
// The incremental form composes:  Crc32c(a+b) == Crc32cExtend(Crc32c(a), b).
#ifndef DYTIS_SRC_UTIL_CRC32_H_
#define DYTIS_SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace dytis {

// Extends a running CRC32C with `len` bytes.  Pass the previous return value
// as `crc` to checksum data in pieces; start from 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

// One-shot CRC32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace dytis

#endif  // DYTIS_SRC_UTIL_CRC32_H_
