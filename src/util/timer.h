// Monotonic wall-clock timing helpers for the benchmark harness.
#ifndef DYTIS_SRC_UTIL_TIMER_H_
#define DYTIS_SRC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace dytis {

// Returns a monotonic timestamp in nanoseconds.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Simple stopwatch.  Started on construction.
class Timer {
 public:
  Timer() : start_(NowNanos()) {}

  void Reset() { start_ = NowNanos(); }

  uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  uint64_t start_;
};

// Accumulates time spent in a named phase; used for the insertion-time
// breakdown analysis (Section 4.3 of the paper).
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(uint64_t* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedAccumulator() { *sink_ += NowNanos() - start_; }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace dytis

#endif  // DYTIS_SRC_UTIL_TIMER_H_
