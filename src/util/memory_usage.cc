#include "src/util/memory_usage.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace dytis {
namespace {

// Parses a "Vm...:   <kB> kB" line value from /proc/self/status.
size_t ReadStatusField(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  size_t value_kb = 0;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      unsigned long long kb = 0;
      if (std::sscanf(line + field_len, " %llu", &kb) == 1) {
        value_kb = static_cast<size_t>(kb);
      }
      break;
    }
  }
  std::fclose(f);
  return value_kb * 1024;
}

}  // namespace

size_t CurrentRssBytes() { return ReadStatusField("VmRSS:"); }

size_t PeakRssBytes() { return ReadStatusField("VmHWM:"); }

size_t RunAndMeasurePeakRss(const std::function<void()>& fn) {
  int pipefd[2];
  if (pipe(pipefd) != 0) {
    return 0;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(pipefd[0]);
    close(pipefd[1]);
    return 0;
  }
  if (pid == 0) {
    // Child: run the workload, report peak RSS over the pipe, and exit
    // without running atexit handlers (the parent owns those resources).
    close(pipefd[0]);
    fn();
    const size_t peak = PeakRssBytes();
    ssize_t written = write(pipefd[1], &peak, sizeof(peak));
    (void)written;
    close(pipefd[1]);
    _exit(0);
  }
  close(pipefd[1]);
  size_t peak = 0;
  const ssize_t got = read(pipefd[0], &peak, sizeof(peak));
  close(pipefd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof(peak)) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return 0;
  }
  return peak;
}

}  // namespace dytis
