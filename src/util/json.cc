#include "src/util/json.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dytis {

JsonValue& JsonValue::operator[](const std::string& key) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;
  }
  assert(type_ == Type::kObject);
  for (auto& [k, v] : members_) {
    if (k == key) {
      return v;
    }
  }
  members_.emplace_back(key, JsonValue());
  return members_.back().second;
}

JsonValue& JsonValue::Append(JsonValue v) {
  if (type_ == Type::kNull) {
    type_ = Type::kArray;
  }
  assert(type_ == Type::kArray);
  elements_.push_back(std::move(v));
  return elements_.back();
}

size_t JsonValue::size() const {
  switch (type_) {
    case Type::kArray:
      return elements_.size();
    case Type::kObject:
      return members_.size();
    default:
      return 0;
  }
}

void JsonValue::EscapeTo(const std::string& raw, std::string* out) {
  out->push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

namespace {

void AppendNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    *out += "null";  // NaN/inf are not valid JSON
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc{});
  out->append(buf, ptr);
}

void Newline(std::string* out, int indent, int depth) {
  if (indent > 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
  }
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kUint:
      *out += std::to_string(uint_);
      break;
    case Type::kDouble:
      AppendNumber(double_, out);
      break;
    case Type::kString:
      EscapeTo(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < elements_.size(); i++) {
        if (i > 0) {
          out->push_back(',');
        }
        Newline(out, indent, depth + 1);
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      if (!elements_.empty()) {
        Newline(out, indent, depth);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); i++) {
        if (i > 0) {
          out->push_back(',');
        }
        Newline(out, indent, depth + 1);
        EscapeTo(members_[i].first, out);
        *out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) {
        Newline(out, indent, depth);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

}  // namespace dytis
