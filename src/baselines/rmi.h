// Static two-stage Recursive Model Index (Kraska et al., SIGMOD'18).
//
// The original learned index the DyTIS paper discusses in Section 2.2: a
// root linear model dispatches to one of N second-stage linear models, each
// predicting a position in one sorted array; exponential search corrects
// the prediction.  It is *static*: built once from sorted data, no inserts
// (the very limitation that motivates ALEX, XIndex, and DyTIS).  Used by
// bench_static_rmi to show the baseline the updatable indexes are chasing.
#ifndef DYTIS_SRC_BASELINES_RMI_H_
#define DYTIS_SRC_BASELINES_RMI_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/learned/linear_model.h"

namespace dytis {

template <typename V>
class StaticRmi {
 public:
  using ScanEntry = std::pair<uint64_t, V>;

  // num_models: second-stage size.  The classic configuration uses a few
  // thousand models for hundreds of millions of keys.
  explicit StaticRmi(size_t num_models = 1024) : num_models_(num_models) {}

  void BulkLoad(std::span<const ScanEntry> sorted_entries) {
    keys_.clear();
    values_.clear();
    keys_.reserve(sorted_entries.size());
    values_.reserve(sorted_entries.size());
    for (const auto& [k, v] : sorted_entries) {
      keys_.push_back(k);
      values_.push_back(v);
    }
    // Stage 1: root model over the whole CDF, scaled to model index.
    LinearModelBuilder root_builder;
    const double scale = keys_.empty()
                             ? 0.0
                             : static_cast<double>(num_models_) /
                                   static_cast<double>(keys_.size());
    for (size_t i = 0; i < keys_.size(); i++) {
      root_builder.Add(keys_[i], static_cast<double>(i) * scale);
    }
    root_ = root_builder.Fit();
    // Stage 2: each model is trained on the keys the ROOT dispatches to it
    // (not an equal-width partition) so training matches inference.
    models_.assign(num_models_, LinearModel{});
    std::vector<LinearModelBuilder> builders(num_models_);
    for (size_t i = 0; i < keys_.size(); i++) {
      builders[RootDispatch(keys_[i])].Add(keys_[i], static_cast<double>(i));
    }
    for (size_t m = 0; m < num_models_; m++) {
      if (builders[m].count() > 0) {
        models_[m] = builders[m].Fit();
      } else if (m > 0) {
        models_[m] = models_[m - 1];  // empty bucket: borrow the neighbour
      }
    }
  }

  bool Find(uint64_t key, V* value) const {
    if (keys_.empty()) {
      return false;
    }
    const size_t pos = LowerBound(key);
    if (pos >= keys_.size() || keys_[pos] != key) {
      return false;
    }
    if (value != nullptr) {
      *value = values_[pos];
    }
    return true;
  }

  size_t Scan(uint64_t start_key, size_t count, ScanEntry* out) const {
    size_t got = 0;
    for (size_t pos = LowerBound(start_key);
         pos < keys_.size() && got < count; pos++) {
      out[got++] = {keys_[pos], values_[pos]};
    }
    return got;
  }

  size_t size() const { return keys_.size(); }
  size_t num_models() const { return num_models_; }

  size_t MemoryBytes() const {
    return sizeof(*this) + keys_.capacity() * sizeof(uint64_t) +
           values_.capacity() * sizeof(V) +
           models_.capacity() * sizeof(LinearModel);
  }

  // Average |predicted - actual| position error over all keys (the model
  // quality measure RMI papers report).
  double MeanAbsoluteError() const {
    if (keys_.empty()) {
      return 0.0;
    }
    double total = 0.0;
    for (size_t i = 0; i < keys_.size(); i++) {
      const double p = models_[RootDispatch(keys_[i])].Predict(keys_[i]);
      total += std::abs(p - static_cast<double>(i));
    }
    return total / static_cast<double>(keys_.size());
  }

 private:
  size_t RootDispatch(uint64_t key) const {
    return root_.PredictClamped(key, num_models_);
  }

  // Exponential search around the stage-2 prediction.
  size_t LowerBound(uint64_t key) const {
    const size_t n = keys_.size();
    if (n == 0) {
      return 0;  // models_ is empty too before the first BulkLoad
    }
    size_t pos = models_[RootDispatch(key)].PredictClamped(key, n);
    size_t lo;
    size_t hi;
    if (keys_[pos] < key) {
      size_t step = 1;
      lo = pos + 1;
      hi = lo;
      while (hi < n && keys_[hi] < key) {
        lo = hi + 1;
        hi += step;
        step <<= 1;
      }
      hi = std::min(hi, n);
    } else {
      size_t step = 1;
      hi = pos;
      lo = hi;
      while (lo > 0 && keys_[lo - 1] >= key) {
        hi = lo;
        lo = (lo >= step) ? lo - step : 0;
        step <<= 1;
      }
    }
    return static_cast<size_t>(
        std::lower_bound(keys_.begin() + static_cast<long>(lo),
                         keys_.begin() + static_cast<long>(hi), key) -
        keys_.begin());
  }

  size_t num_models_;
  LinearModel root_;
  std::vector<LinearModel> models_;
  std::vector<uint64_t> keys_;
  std::vector<V> values_;
};

}  // namespace dytis

#endif  // DYTIS_SRC_BASELINES_RMI_H_
