// STX-style in-memory B+-tree baseline (Section 4.1 of the paper).
//
// The paper compares DyTIS against the STX B+-tree with fanout 128 and
// in-place updates enabled.  This is a from-scratch reimplementation with
// the same structural choices: fixed-fanout inner and leaf nodes, keys and
// values in parallel arrays inside leaves, leaf sibling links for scans,
// binary search within nodes, and a sorted-input bulk loader.
#ifndef DYTIS_SRC_BASELINES_BTREE_H_
#define DYTIS_SRC_BASELINES_BTREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dytis {

// Fanout is a template parameter so tests can exercise tiny nodes while the
// benchmark uses the paper's 128.
template <typename V, int Fanout = 128>
class BPlusTree {
  static_assert(Fanout >= 4, "B+-tree fanout must be at least 4");

 public:
  using ScanEntry = std::pair<uint64_t, V>;

  BPlusTree() = default;
  ~BPlusTree() { Clear(); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  // Inserts or updates in place.  Returns true when the key is new.
  bool Insert(uint64_t key, const V& value) {
    if (root_ == nullptr) {
      auto* leaf = new LeafNode();
      leaf->keys[0] = key;
      leaf->values[0] = value;
      leaf->count = 1;
      root_ = leaf;
      height_ = 1;
      size_ = 1;
      first_leaf_ = leaf;
      return true;
    }
    SplitResult split;
    const InsertOutcome outcome = InsertRecursive(root_, height_, key, value,
                                                  &split);
    if (outcome == InsertOutcome::kUpdated) {
      return false;
    }
    if (split.happened) {
      auto* new_root = new InnerNode();
      new_root->keys[0] = split.separator;
      new_root->children[0] = root_;
      new_root->children[1] = split.right;
      new_root->count = 1;
      root_ = new_root;
      height_++;
    }
    size_++;
    return true;
  }

  bool Find(uint64_t key, V* value) const {
    const LeafNode* leaf = FindLeaf(key);
    if (leaf == nullptr) {
      return false;
    }
    const int slot = LeafLowerBound(leaf, key);
    if (slot >= leaf->count || leaf->keys[slot] != key) {
      return false;
    }
    if (value != nullptr) {
      *value = leaf->values[slot];
    }
    return true;
  }

  bool Update(uint64_t key, const V& value) {
    LeafNode* leaf = const_cast<LeafNode*>(FindLeaf(key));
    if (leaf == nullptr) {
      return false;
    }
    const int slot = LeafLowerBound(leaf, key);
    if (slot >= leaf->count || leaf->keys[slot] != key) {
      return false;
    }
    leaf->values[slot] = value;
    return true;
  }

  // Deletes a key.  Leaves may underflow (lazy deletion, as in STX when
  // used without rebalancing-heavy workloads); empty leaves are unlinked.
  bool Erase(uint64_t key) {
    LeafNode* leaf = const_cast<LeafNode*>(FindLeaf(key));
    if (leaf == nullptr) {
      return false;
    }
    const int slot = LeafLowerBound(leaf, key);
    if (slot >= leaf->count || leaf->keys[slot] != key) {
      return false;
    }
    for (int i = slot; i + 1 < leaf->count; i++) {
      leaf->keys[i] = leaf->keys[i + 1];
      leaf->values[i] = std::move(leaf->values[i + 1]);
    }
    leaf->count--;
    size_--;
    return true;
  }

  // Copies up to `count` entries with key >= start_key into `out`.
  size_t Scan(uint64_t start_key, size_t count, ScanEntry* out) const {
    const LeafNode* leaf = FindLeaf(start_key);
    if (leaf == nullptr) {
      return 0;
    }
    int slot = LeafLowerBound(leaf, start_key);
    size_t got = 0;
    while (leaf != nullptr && got < count) {
      for (; slot < leaf->count && got < count; slot++) {
        out[got++] = {leaf->keys[slot], leaf->values[slot]};
      }
      leaf = leaf->next;
      slot = 0;
    }
    return got;
  }

  // Builds the tree from sorted unique (key, value) pairs.  Replaces any
  // existing contents.  Leaves are filled to ~90% like STX's bulk loader.
  void BulkLoad(std::span<const std::pair<uint64_t, V>> sorted_entries) {
    Clear();
    if (sorted_entries.empty()) {
      return;
    }
    const int fill = std::max(2, Fanout * 9 / 10);
    // Build the leaf level.
    std::vector<void*> level;
    std::vector<uint64_t> separators;  // first key of each node except [0]
    LeafNode* prev = nullptr;
    size_t i = 0;
    while (i < sorted_entries.size()) {
      auto* leaf = new LeafNode();
      const size_t take =
          std::min<size_t>(fill, sorted_entries.size() - i);
      for (size_t j = 0; j < take; j++) {
        leaf->keys[j] = sorted_entries[i + j].first;
        leaf->values[j] = sorted_entries[i + j].second;
      }
      leaf->count = static_cast<int>(take);
      if (prev != nullptr) {
        prev->next = leaf;
        separators.push_back(leaf->keys[0]);
      } else {
        first_leaf_ = leaf;
      }
      prev = leaf;
      level.push_back(leaf);
      i += take;
    }
    size_ = sorted_entries.size();
    height_ = 1;
    // Build inner levels bottom-up.
    while (level.size() > 1) {
      std::vector<void*> parents;
      std::vector<uint64_t> parent_separators;
      size_t c = 0;
      while (c < level.size()) {
        auto* inner = new InnerNode();
        const size_t take =
            std::min<size_t>(static_cast<size_t>(fill) + 1, level.size() - c);
        inner->children[0] = level[c];
        for (size_t j = 1; j < take; j++) {
          inner->keys[j - 1] = separators[c + j - 1];
          inner->children[j] = level[c + j];
        }
        inner->count = static_cast<int>(take) - 1;
        if (!parents.empty()) {
          parent_separators.push_back(separators[c - 1]);
        }
        parents.push_back(inner);
        c += take;
      }
      level = std::move(parents);
      separators = std::move(parent_separators);
      height_++;
    }
    root_ = level[0];
  }

  size_t size() const { return size_; }
  int height() const { return height_; }

  size_t MemoryBytes() const {
    return sizeof(*this) + num_leaves_bytes() + num_inner_bytes();
  }

  // Average number of entries per leaf (the paper's "data node size"
  // discussion for workload E).
  double AverageLeafFill() const {
    size_t leaves = 0;
    size_t entries = 0;
    for (const LeafNode* l = first_leaf_; l != nullptr; l = l->next) {
      leaves++;
      entries += static_cast<size_t>(l->count);
    }
    return leaves == 0 ? 0.0
                       : static_cast<double>(entries) /
                             static_cast<double>(leaves);
  }

  // Test hook: verifies sortedness and leaf-chain consistency.
  bool ValidateInvariants() const {
    uint64_t prev = 0;
    bool have_prev = false;
    size_t counted = 0;
    for (const LeafNode* l = first_leaf_; l != nullptr; l = l->next) {
      for (int i = 0; i < l->count; i++) {
        if (have_prev && l->keys[i] <= prev) {
          return false;
        }
        prev = l->keys[i];
        have_prev = true;
        counted++;
      }
    }
    return counted == size_;
  }

 private:
  struct LeafNode {
    uint64_t keys[Fanout];
    V values[Fanout];
    int count = 0;
    LeafNode* next = nullptr;
  };
  struct InnerNode {
    // count separators, count+1 children.
    uint64_t keys[Fanout];
    void* children[Fanout + 1];
    int count = 0;
  };

  enum class InsertOutcome { kInserted, kUpdated };
  struct SplitResult {
    bool happened = false;
    uint64_t separator = 0;
    void* right = nullptr;
  };

  static int LeafLowerBound(const LeafNode* leaf, uint64_t key) {
    return static_cast<int>(
        std::lower_bound(leaf->keys, leaf->keys + leaf->count, key) -
        leaf->keys);
  }
  static int InnerChildIndex(const InnerNode* inner, uint64_t key) {
    // First separator > key selects the child.
    return static_cast<int>(
        std::upper_bound(inner->keys, inner->keys + inner->count, key) -
        inner->keys);
  }

  const LeafNode* FindLeaf(uint64_t key) const {
    if (root_ == nullptr) {
      return nullptr;
    }
    void* node = root_;
    for (int h = height_; h > 1; h--) {
      const auto* inner = static_cast<const InnerNode*>(node);
      node = inner->children[InnerChildIndex(inner, key)];
    }
    return static_cast<const LeafNode*>(node);
  }

  InsertOutcome InsertRecursive(void* node, int level, uint64_t key,
                                const V& value, SplitResult* split) {
    if (level == 1) {
      return InsertIntoLeaf(static_cast<LeafNode*>(node), key, value, split);
    }
    auto* inner = static_cast<InnerNode*>(node);
    const int child_idx = InnerChildIndex(inner, key);
    SplitResult child_split;
    const InsertOutcome outcome = InsertRecursive(
        inner->children[child_idx], level - 1, key, value, &child_split);
    if (child_split.happened) {
      InsertIntoInner(inner, child_idx, child_split, split);
    }
    return outcome;
  }

  InsertOutcome InsertIntoLeaf(LeafNode* leaf, uint64_t key, const V& value,
                               SplitResult* split) {
    const int slot = LeafLowerBound(leaf, key);
    if (slot < leaf->count && leaf->keys[slot] == key) {
      leaf->values[slot] = value;  // in-place update
      return InsertOutcome::kUpdated;
    }
    if (leaf->count < Fanout) {
      for (int i = leaf->count; i > slot; i--) {
        leaf->keys[i] = leaf->keys[i - 1];
        leaf->values[i] = std::move(leaf->values[i - 1]);
      }
      leaf->keys[slot] = key;
      leaf->values[slot] = value;
      leaf->count++;
      return InsertOutcome::kInserted;
    }
    // Split the leaf, then insert into the proper half.
    auto* right = new LeafNode();
    const int mid = Fanout / 2;
    for (int i = mid; i < Fanout; i++) {
      right->keys[i - mid] = leaf->keys[i];
      right->values[i - mid] = std::move(leaf->values[i]);
    }
    right->count = Fanout - mid;
    leaf->count = mid;
    right->next = leaf->next;
    leaf->next = right;
    split->happened = true;
    split->separator = right->keys[0];
    split->right = right;
    if (key < split->separator) {
      InsertIntoLeaf(leaf, key, value, split);  // cannot split again
    } else {
      SplitResult unused;
      InsertIntoLeaf(right, key, value, &unused);
    }
    return InsertOutcome::kInserted;
  }

  void InsertIntoInner(InnerNode* inner, int child_idx,
                       const SplitResult& child_split, SplitResult* split) {
    if (inner->count < Fanout) {
      for (int i = inner->count; i > child_idx; i--) {
        inner->keys[i] = inner->keys[i - 1];
        inner->children[i + 1] = inner->children[i];
      }
      inner->keys[child_idx] = child_split.separator;
      inner->children[child_idx + 1] = child_split.right;
      inner->count++;
      return;
    }
    // Split the inner node.  Gather count+1 separators conceptually (with
    // the new one inserted) and push the middle one up.
    std::vector<uint64_t> keys(inner->keys, inner->keys + inner->count);
    std::vector<void*> children(inner->children,
                                inner->children + inner->count + 1);
    keys.insert(keys.begin() + child_idx, child_split.separator);
    children.insert(children.begin() + child_idx + 1, child_split.right);
    const int total = static_cast<int>(keys.size());  // == Fanout + 1
    const int mid = total / 2;                        // separator pushed up
    auto* right = new InnerNode();
    inner->count = mid;
    for (int i = 0; i < mid; i++) {
      inner->keys[i] = keys[static_cast<size_t>(i)];
      inner->children[i] = children[static_cast<size_t>(i)];
    }
    inner->children[mid] = children[static_cast<size_t>(mid)];
    right->count = total - mid - 1;
    for (int i = 0; i < right->count; i++) {
      right->keys[i] = keys[static_cast<size_t>(mid + 1 + i)];
      right->children[i] = children[static_cast<size_t>(mid + 1 + i)];
    }
    right->children[right->count] = children[static_cast<size_t>(total)];
    split->happened = true;
    split->separator = keys[static_cast<size_t>(mid)];
    split->right = right;
  }

  void Clear() {
    if (root_ != nullptr) {
      DeleteRecursive(root_, height_);
    }
    root_ = nullptr;
    first_leaf_ = nullptr;
    height_ = 0;
    size_ = 0;
  }

  void DeleteRecursive(void* node, int level) {
    if (level == 1) {
      delete static_cast<LeafNode*>(node);
      return;
    }
    auto* inner = static_cast<InnerNode*>(node);
    for (int i = 0; i <= inner->count; i++) {
      DeleteRecursive(inner->children[i], level - 1);
    }
    delete inner;
  }

  size_t num_leaves_bytes() const {
    size_t n = 0;
    for (const LeafNode* l = first_leaf_; l != nullptr; l = l->next) {
      n += sizeof(LeafNode);
    }
    return n;
  }
  size_t num_inner_bytes() const {
    if (root_ == nullptr || height_ <= 1) {
      return 0;
    }
    return CountInnerBytes(root_, height_);
  }
  size_t CountInnerBytes(void* node, int level) const {
    if (level == 1) {
      return 0;
    }
    const auto* inner = static_cast<const InnerNode*>(node);
    size_t bytes = sizeof(InnerNode);
    for (int i = 0; i <= inner->count; i++) {
      bytes += CountInnerBytes(inner->children[i], level - 1);
    }
    return bytes;
  }

  void* root_ = nullptr;
  LeafNode* first_leaf_ = nullptr;
  int height_ = 0;
  size_t size_ = 0;
};

}  // namespace dytis

#endif  // DYTIS_SRC_BASELINES_BTREE_H_
