// LIPP-style learned index (Wu et al., VLDB'21), simplified.
//
// The DyTIS paper evaluates LIPP in footnote 6: on their setup it failed to
// build for 4 of the 5 datasets (out-of-memory / conversion errors) and
// lost keys on RM.  This reproduction implements LIPP's core idea --
// *precise positions*: every key sits exactly at its model-predicted slot,
// so lookups do no last-mile search at all.  A slot holds either nothing,
// one entry, or a child node built over the colliding keys; subtrees are
// rebuilt when inserts accumulate (the adjustment strategy).
//
// LIPP's documented weakness -- memory blow-up on hard key sets, the very
// failure the DyTIS paper reports -- is reproduced but made safe: an
// allocation budget turns would-be OOM into a clean `BuildFailed()` state
// that bench_lipp reports (mirroring the paper's "cannot build" outcome).
#ifndef DYTIS_SRC_BASELINES_LIPP_LIPP_H_
#define DYTIS_SRC_BASELINES_LIPP_LIPP_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dytis {

template <typename V>
class LippIndex {
 public:
  using ScanEntry = std::pair<uint64_t, V>;

  struct Options {
    // Slots per key when building a node (gaps reduce collisions).
    double slots_per_key = 2.0;
    size_t min_node_slots = 8;
    size_t max_node_slots = size_t{1} << 22;
    // Rebuild a subtree when inserts since its build exceed this fraction
    // of its size (LIPP's adjustment).
    double rebuild_fraction = 1.0;
    // Total slot budget; exceeding it marks the index build-failed instead
    // of exhausting memory (the paper's observed LIPP failure mode).
    size_t max_total_slots = size_t{1} << 26;  // = 1.5 GiB of slots @ 24 B
  };

  explicit LippIndex(const Options& options = Options{}) : options_(options) {}
  ~LippIndex() { DeleteNode(root_); }

  LippIndex(const LippIndex&) = delete;
  LippIndex& operator=(const LippIndex&) = delete;

  // True when an insert or build hit the allocation budget; the index stays
  // usable for the keys it already holds, but new inserts may be dropped
  // (mirrors the paper's footnote-6 "huge number of key losses").
  bool BuildFailed() const { return build_failed_; }

  void BulkLoad(std::span<const ScanEntry> sorted_entries) {
    DeleteNode(root_);
    root_ = nullptr;
    size_ = 0;
    total_slots_ = 0;
    build_failed_ = false;
    if (sorted_entries.empty()) {
      return;
    }
    std::vector<ScanEntry> entries(sorted_entries.begin(),
                                   sorted_entries.end());
    root_ = BuildNode(entries);
    if (root_ != nullptr) {
      size_ = sorted_entries.size();
    }
  }

  // Inserts or updates in place.  Returns true when the key is new.  When
  // the allocation budget is exhausted, the insert is dropped (and
  // BuildFailed() turns true) -- LIPP's failure mode made observable.
  bool Insert(uint64_t key, const V& value) {
    if (root_ == nullptr) {
      std::vector<ScanEntry> one{{key, value}};
      root_ = BuildNode(one);
      if (root_ == nullptr) {
        return false;
      }
      size_ = 1;
      return true;
    }
    Node* node = root_;
    for (;;) {
      node->inserts_since_build++;
      const size_t slot = node->SlotFor(key);
      Slot& s = node->slots[slot];
      if (s.kind == SlotKind::kEmpty) {
        s.kind = SlotKind::kEntry;
        s.key = key;
        s.value = value;
        node->num_entries++;
        size_++;
        MaybeRebuild(node);
        return true;
      }
      if (s.kind == SlotKind::kEntry) {
        if (s.key == key) {
          s.value = value;  // in-place update
          return false;
        }
        // Conflict: push both entries into a fresh child node.
        std::vector<ScanEntry> pair;
        if (s.key < key) {
          pair = {{s.key, s.value}, {key, value}};
        } else {
          pair = {{key, value}, {s.key, s.value}};
        }
        Node* child = BuildNode(pair);
        if (child == nullptr) {
          return false;  // budget exhausted: key dropped
        }
        s.kind = SlotKind::kChild;
        s.child = child;
        node->num_entries--;  // the displaced entry now lives in the child
        size_++;
        MaybeRebuild(node);
        return true;
      }
      node = s.child;
    }
  }

  bool Find(uint64_t key, V* value) const {
    const Node* node = root_;
    while (node != nullptr) {
      const Slot& s = node->slots[node->SlotFor(key)];
      if (s.kind == SlotKind::kEmpty) {
        return false;
      }
      if (s.kind == SlotKind::kEntry) {
        if (s.key != key) {
          return false;
        }
        if (value != nullptr) {
          *value = s.value;
        }
        return true;
      }
      node = s.child;
    }
    return false;
  }

  bool Update(uint64_t key, const V& value) {
    Node* node = root_;
    while (node != nullptr) {
      Slot& s = node->slots[node->SlotFor(key)];
      if (s.kind == SlotKind::kEmpty) {
        return false;
      }
      if (s.kind == SlotKind::kEntry) {
        if (s.key != key) {
          return false;
        }
        s.value = value;
        return true;
      }
      node = s.child;
    }
    return false;
  }

  bool Erase(uint64_t key) {
    Node* node = root_;
    while (node != nullptr) {
      Slot& s = node->slots[node->SlotFor(key)];
      if (s.kind == SlotKind::kEmpty) {
        return false;
      }
      if (s.kind == SlotKind::kEntry) {
        if (s.key != key) {
          return false;
        }
        s.kind = SlotKind::kEmpty;
        node->num_entries--;
        size_--;
        return true;
      }
      node = s.child;
    }
    return false;
  }

  // Slots are ordered by key (the model is monotone), so an in-order walk
  // yields sorted output.
  size_t Scan(uint64_t start_key, size_t count, ScanEntry* out) const {
    size_t got = 0;
    if (root_ != nullptr && count > 0) {
      ScanNode(root_, start_key, count, out, &got);
    }
    return got;
  }

  size_t size() const { return size_; }

  size_t MemoryBytes() const {
    return sizeof(*this) + total_slots_ * sizeof(Slot) +
           num_nodes_ * sizeof(Node);
  }

  struct Shape {
    size_t nodes = 0;
    size_t slots = 0;
    int max_depth = 0;
  };
  Shape ComputeShape() const {
    Shape shape;
    if (root_ != nullptr) {
      WalkShape(root_, 1, &shape);
    }
    return shape;
  }

 private:
  enum class SlotKind : uint8_t { kEmpty, kEntry, kChild };
  struct Node;
  struct Slot {
    SlotKind kind = SlotKind::kEmpty;
    uint64_t key = 0;
    union {
      V value;
      Node* child;
    };
    Slot() : value() {}
  };
  struct Node {
    // Exact integer model: slot = (key - base) * num_slots / range.
    uint64_t base = 0;
    uint64_t range = 1;  // key span covered (>= 1)
    std::vector<Slot> slots;
    size_t num_entries = 0;
    size_t inserts_since_build = 0;

    size_t SlotFor(uint64_t key) const {
      if (key <= base) {
        return 0;
      }
      const uint64_t offset = key - base;
      if (offset >= range) {
        return slots.size() - 1;
      }
      return static_cast<size_t>(
          (static_cast<unsigned __int128>(offset) * slots.size()) / range);
    }
  };

  // The slot union stores V by value next to a child pointer.
  static_assert(std::is_trivially_copyable_v<V>,
                "LippIndex supports trivially copyable values only");

  Node* BuildNode(const std::vector<ScanEntry>& sorted_entries) {
    assert(!sorted_entries.empty());
    const size_t want_slots = std::max(
        options_.min_node_slots,
        std::min(options_.max_node_slots,
                 static_cast<size_t>(options_.slots_per_key *
                                     static_cast<double>(
                                         sorted_entries.size()))));
    if (total_slots_ + want_slots > options_.max_total_slots) {
      build_failed_ = true;
      return nullptr;
    }
    auto* node = new Node();
    num_nodes_++;
    node->base = sorted_entries.front().first;
    const uint64_t max_key = sorted_entries.back().first;
    node->range = (max_key > node->base) ? (max_key - node->base + 1) : 1;
    node->slots.resize(want_slots);
    total_slots_ += want_slots;
    // Place entries; colliding runs become child nodes.
    size_t i = 0;
    while (i < sorted_entries.size()) {
      const size_t slot = node->SlotFor(sorted_entries[i].first);
      size_t j = i + 1;
      while (j < sorted_entries.size() &&
             node->SlotFor(sorted_entries[j].first) == slot) {
        j++;
      }
      Slot& s = node->slots[slot];
      if (j - i == 1) {
        s.kind = SlotKind::kEntry;
        s.key = sorted_entries[i].first;
        s.value = sorted_entries[i].second;
        node->num_entries++;
      } else {
        std::vector<ScanEntry> group(sorted_entries.begin() +
                                         static_cast<long>(i),
                                     sorted_entries.begin() +
                                         static_cast<long>(j));
        Node* child = BuildNode(group);
        if (child == nullptr) {
          // Budget exhausted mid-build: free what we built and fail.
          DeleteNode(node);
          return nullptr;
        }
        s.kind = SlotKind::kChild;
        s.child = child;
      }
      i = j;
    }
    return node;
  }

  void MaybeRebuild(Node* node) {
    if (static_cast<double>(node->inserts_since_build) <
        options_.rebuild_fraction * static_cast<double>(node->slots.size())) {
      return;
    }
    std::vector<ScanEntry> entries;
    CollectNode(node, &entries);
    // Rebuild in place: free children, re-place entries over fresh slots.
    for (Slot& s : node->slots) {
      if (s.kind == SlotKind::kChild) {
        DeleteNode(s.child);
      }
      s.kind = SlotKind::kEmpty;
    }
    // The node itself is being replaced: release its accounting so the
    // replacement build can claim the budget.
    total_slots_ -= node->slots.size();
    num_nodes_--;
    Node* rebuilt = BuildNode(entries);
    if (rebuilt == nullptr) {
      // Budget exhausted: keys collected into `entries` are lost -- exactly
      // LIPP's reported failure mode.  Restore accounting for the (now
      // empty) node we keep.
      total_slots_ += node->slots.size();
      num_nodes_++;
      size_ -= entries.size();
      node->num_entries = 0;
      node->inserts_since_build = 0;
      return;
    }
    node->base = rebuilt->base;
    node->range = rebuilt->range;
    node->slots = std::move(rebuilt->slots);
    node->num_entries = rebuilt->num_entries;
    node->inserts_since_build = 0;
    delete rebuilt;  // shell only; slots were moved out
  }

  static void CollectNode(const Node* node, std::vector<ScanEntry>* out) {
    for (const Slot& s : node->slots) {
      if (s.kind == SlotKind::kEntry) {
        out->push_back({s.key, s.value});
      } else if (s.kind == SlotKind::kChild) {
        CollectNode(s.child, out);
      }
    }
  }

  void ScanNode(const Node* node, uint64_t start_key, size_t count,
                ScanEntry* out, size_t* got) const {
    // Slots left of start_key's slot cannot contain qualifying keys.
    for (size_t i = node->SlotFor(start_key);
         i < node->slots.size() && *got < count; i++) {
      const Slot& s = node->slots[i];
      if (s.kind == SlotKind::kEntry) {
        if (s.key >= start_key) {
          out[(*got)++] = {s.key, s.value};
        }
      } else if (s.kind == SlotKind::kChild) {
        ScanNode(s.child, start_key, count, out, got);
      }
    }
  }

  void WalkShape(const Node* node, int depth, Shape* shape) const {
    shape->nodes++;
    shape->slots += node->slots.size();
    shape->max_depth = std::max(shape->max_depth, depth);
    for (const Slot& s : node->slots) {
      if (s.kind == SlotKind::kChild) {
        WalkShape(s.child, depth + 1, shape);
      }
    }
  }

  void DeleteNode(Node* node) {
    if (node == nullptr) {
      return;
    }
    for (Slot& s : node->slots) {
      if (s.kind == SlotKind::kChild) {
        DeleteNode(s.child);
      }
    }
    total_slots_ -= node->slots.size();
    num_nodes_--;
    delete node;
  }

  Options options_;
  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t total_slots_ = 0;
  size_t num_nodes_ = 0;
  bool build_failed_ = false;
};

}  // namespace dytis

#endif  // DYTIS_SRC_BASELINES_LIPP_LIPP_H_
