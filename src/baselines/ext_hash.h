// Classic Extendible Hashing baseline (Section 3.1 / Figure 9).
//
// Directory + buckets, with the directory indexed by the most-significant
// bits of a hashed pseudo-key K' = h(K) (Fagin et al. 1979).  Supports
// insert / search / delete / in-place update; no scans (hash order destroys
// key order, which is exactly the limitation DyTIS removes).
#ifndef DYTIS_SRC_BASELINES_EXT_HASH_H_
#define DYTIS_SRC_BASELINES_EXT_HASH_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/bitops.h"

namespace dytis {

template <typename V>
class ExtendibleHash {
 public:
  // bucket_capacity: key/value pairs per bucket (the paper's 2KB bucket
  // holds 128 8+8-byte pairs).
  explicit ExtendibleHash(uint32_t bucket_capacity = 128)
      : capacity_(bucket_capacity) {
    dir_.push_back(new Bucket(capacity_, /*local_depth=*/0));
  }

  ~ExtendibleHash() {
    Bucket* prev = nullptr;
    for (Bucket* b : dir_) {
      if (b != prev) {
        delete b;
        prev = b;
      }
    }
  }

  ExtendibleHash(const ExtendibleHash&) = delete;
  ExtendibleHash& operator=(const ExtendibleHash&) = delete;

  bool Insert(uint64_t key, const V& value) {
    const uint64_t h = Hash(key);
    for (;;) {
      Bucket* b = BucketFor(h);
      const int slot = b->Find(key);
      if (slot >= 0) {
        b->values[static_cast<size_t>(slot)] = value;  // in-place update
        return false;
      }
      if (b->keys.size() < capacity_) {
        b->keys.push_back(key);
        b->values.push_back(value);
        size_++;
        return true;
      }
      SplitBucket(h);
    }
  }

  bool Find(uint64_t key, V* value) const {
    const Bucket* b = BucketFor(Hash(key));
    const int slot = b->Find(key);
    if (slot < 0) {
      return false;
    }
    if (value != nullptr) {
      *value = b->values[static_cast<size_t>(slot)];
    }
    return true;
  }

  bool Update(uint64_t key, const V& value) {
    Bucket* b = BucketFor(Hash(key));
    const int slot = b->Find(key);
    if (slot < 0) {
      return false;
    }
    b->values[static_cast<size_t>(slot)] = value;
    return true;
  }

  bool Erase(uint64_t key) {
    Bucket* b = BucketFor(Hash(key));
    const int slot = b->Find(key);
    if (slot < 0) {
      return false;
    }
    b->keys[static_cast<size_t>(slot)] = b->keys.back();
    b->values[static_cast<size_t>(slot)] = std::move(b->values.back());
    b->keys.pop_back();
    b->values.pop_back();
    size_--;
    return true;
  }

  size_t size() const { return size_; }
  int global_depth() const { return global_depth_; }

  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this) + dir_.capacity() * sizeof(Bucket*);
    const Bucket* prev = nullptr;
    for (const Bucket* b : dir_) {
      if (b != prev) {
        bytes += sizeof(Bucket) + b->keys.capacity() * sizeof(uint64_t) +
                 b->values.capacity() * sizeof(V);
        prev = b;
      }
    }
    return bytes;
  }

 private:
  struct Bucket {
    Bucket(uint32_t capacity, int depth) : local_depth(depth) {
      keys.reserve(capacity);
      values.reserve(capacity);
    }
    int Find(uint64_t key) const {
      for (size_t i = 0; i < keys.size(); i++) {
        if (keys[i] == key) {
          return static_cast<int>(i);
        }
      }
      return -1;
    }
    std::vector<uint64_t> keys;
    std::vector<V> values;
    int local_depth;
  };

  // Fibonacci hashing: cheap and well-distributed for integer keys.
  static uint64_t Hash(uint64_t key) {
    uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return h * 0xff51afd7ed558ccdULL;
  }

  size_t DirIndex(uint64_t h) const {
    if (global_depth_ == 0) {
      return 0;
    }
    return static_cast<size_t>(h >> (64 - global_depth_));
  }
  Bucket* BucketFor(uint64_t h) { return dir_[DirIndex(h)]; }
  const Bucket* BucketFor(uint64_t h) const { return dir_[DirIndex(h)]; }

  void SplitBucket(uint64_t h) {
    Bucket* b = BucketFor(h);
    if (b->local_depth == global_depth_) {
      // Directory doubling.
      std::vector<Bucket*> bigger(dir_.size() * 2);
      for (size_t i = 0; i < dir_.size(); i++) {
        bigger[2 * i] = dir_[i];
        bigger[2 * i + 1] = dir_[i];
      }
      dir_ = std::move(bigger);
      global_depth_++;
    }
    // Split b by the next hash bit.
    const int new_depth = b->local_depth + 1;
    auto* left = new Bucket(capacity_, new_depth);
    auto* right = new Bucket(capacity_, new_depth);
    for (size_t i = 0; i < b->keys.size(); i++) {
      const uint64_t kh = Hash(b->keys[i]);
      Bucket* dst = ((kh >> (64 - new_depth)) & 1) ? right : left;
      dst->keys.push_back(b->keys[i]);
      dst->values.push_back(std::move(b->values[i]));
    }
    // Redirect the directory run of b.
    const size_t run = static_cast<size_t>(Pow2(global_depth_ - b->local_depth));
    const size_t start = DirIndex(h) / run * run;
    for (size_t i = 0; i < run / 2; i++) {
      dir_[start + i] = left;
      dir_[start + run / 2 + i] = right;
    }
    delete b;
  }

  const uint32_t capacity_;
  std::vector<Bucket*> dir_;
  int global_depth_ = 0;
  size_t size_ = 0;
};

}  // namespace dytis

#endif  // DYTIS_SRC_BASELINES_EXT_HASH_H_
