// XIndex-style concurrent learned index (Tang et al., PPoPP'20), the
// paper's concurrent comparator (Figures 8 and 12).
//
// Two-level architecture: a root with a learned model over group boundary
// keys, and per-group storage consisting of a learned sorted array (the
// "data" part) plus a sorted delta buffer that absorbs inserts.  A
// compaction merges delta into data and retrains the group model; it can
// run inline (delta threshold reached) or from a background thread, like
// the original.  Deletes are delta tombstones until compaction.
//
// Concurrency: root shared_mutex + per-group shared_mutex (readers share,
// writers exclusive per group), which gives the same scaling shape as
// XIndex's group-level concurrency.  The original's lock-free read path and
// RCU-based two-phase compaction are simplified to reader/writer locking;
// DESIGN.md Section 5 records the deviation.
#ifndef DYTIS_SRC_BASELINES_XINDEX_XINDEX_H_
#define DYTIS_SRC_BASELINES_XINDEX_XINDEX_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "src/learned/linear_model.h"

namespace dytis {

template <typename V>
class XIndexLike {
 public:
  using ScanEntry = std::pair<uint64_t, V>;

  struct Options {
    // Delta entries above base_fraction * data_size + slack trigger
    // compaction.
    double delta_fraction = 0.125;
    size_t delta_slack = 256;
    // Groups larger than this split in two at compaction time.
    size_t max_group_size = 64 * 1024;
    // Run compactions from a background thread (the foreground then only
    // flags groups) instead of inline.
    bool background_compaction = false;
  };

  explicit XIndexLike(const Options& options = Options{})
      : options_(options) {
    groups_.push_back(std::make_unique<Group>());
    boundaries_.push_back(0);
    if (options_.background_compaction) {
      compactor_ = std::thread([this] { CompactorLoop(); });
    }
  }

  ~XIndexLike() {
    if (compactor_.joinable()) {
      {
        std::lock_guard<std::mutex> lk(compactor_mutex_);
        stop_ = true;
      }
      compactor_cv_.notify_all();
      compactor_.join();
    }
  }

  XIndexLike(const XIndexLike&) = delete;
  XIndexLike& operator=(const XIndexLike&) = delete;

  // Builds groups from sorted unique entries (replaces all contents).
  void BulkLoad(std::span<const ScanEntry> sorted_entries) {
    std::unique_lock root_lock(root_mutex_);
    groups_.clear();
    boundaries_.clear();
    const size_t per_group = std::max<size_t>(
        1024, std::min(options_.max_group_size / 2,
                       sorted_entries.size() / 64 + 1024));
    size_t i = 0;
    while (i < sorted_entries.size()) {
      const size_t take = std::min(per_group, sorted_entries.size() - i);
      auto group = std::make_unique<Group>();
      group->keys.reserve(take);
      group->values.reserve(take);
      for (size_t j = 0; j < take; j++) {
        group->keys.push_back(sorted_entries[i + j].first);
        group->values.push_back(sorted_entries[i + j].second);
      }
      group->Retrain();
      boundaries_.push_back(group->keys.front());
      groups_.push_back(std::move(group));
      i += take;
    }
    if (groups_.empty()) {
      groups_.push_back(std::make_unique<Group>());
      boundaries_.push_back(0);
    }
    boundaries_[0] = 0;  // the first group owns everything below it
    RetrainRoot();
    size_.store(sorted_entries.size(), std::memory_order_relaxed);
  }

  bool Insert(uint64_t key, const V& value) {
    for (;;) {
      std::shared_lock root_lock(root_mutex_);
      Group* g = GroupFor(key);
      std::unique_lock group_lock(g->mutex);
      // Existing key: in-place update (base first, then delta).
      const int base_slot = g->FindBase(key);
      if (base_slot >= 0 && !g->base_deleted[static_cast<size_t>(base_slot)]) {
        g->values[static_cast<size_t>(base_slot)] = value;
        return false;
      }
      const auto delta_it = g->DeltaFind(key);
      if (delta_it != g->delta.end() && delta_it->key == key) {
        const bool was_tombstone = delta_it->deleted;
        delta_it->value = value;
        delta_it->deleted = false;
        if (!was_tombstone) {
          return false;
        }
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (base_slot >= 0) {
        // Resurrect a base-deleted key in place.
        g->base_deleted[static_cast<size_t>(base_slot)] = false;
        g->values[static_cast<size_t>(base_slot)] = value;
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      g->delta.insert(delta_it, DeltaEntry{key, value, false});
      size_.fetch_add(1, std::memory_order_relaxed);
      if (g->delta.size() >
          static_cast<size_t>(options_.delta_fraction *
                              static_cast<double>(g->keys.size())) +
              options_.delta_slack) {
        if (options_.background_compaction) {
          group_lock.unlock();
          root_lock.unlock();
          RequestCompaction();
        } else {
          group_lock.unlock();
          root_lock.unlock();
          CompactOneGroup(key);
        }
      }
      return true;
    }
  }

  bool Find(uint64_t key, V* value) const {
    std::shared_lock root_lock(root_mutex_);
    const Group* g = GroupFor(key);
    std::shared_lock group_lock(g->mutex);
    const auto delta_it = g->DeltaFindConst(key);
    if (delta_it != g->delta.end() && delta_it->key == key) {
      if (delta_it->deleted) {
        return false;
      }
      if (value != nullptr) {
        *value = delta_it->value;
      }
      return true;
    }
    const int slot = g->FindBase(key);
    if (slot < 0 || g->base_deleted[static_cast<size_t>(slot)]) {
      return false;
    }
    if (value != nullptr) {
      *value = g->values[static_cast<size_t>(slot)];
    }
    return true;
  }

  bool Update(uint64_t key, const V& value) {
    std::shared_lock root_lock(root_mutex_);
    Group* g = GroupFor(key);
    std::unique_lock group_lock(g->mutex);
    const auto delta_it = g->DeltaFind(key);
    if (delta_it != g->delta.end() && delta_it->key == key) {
      if (delta_it->deleted) {
        return false;
      }
      delta_it->value = value;
      return true;
    }
    const int slot = g->FindBase(key);
    if (slot < 0 || g->base_deleted[static_cast<size_t>(slot)]) {
      return false;
    }
    g->values[static_cast<size_t>(slot)] = value;
    return true;
  }

  bool Erase(uint64_t key) {
    std::shared_lock root_lock(root_mutex_);
    Group* g = GroupFor(key);
    std::unique_lock group_lock(g->mutex);
    const auto delta_it = g->DeltaFind(key);
    if (delta_it != g->delta.end() && delta_it->key == key) {
      if (delta_it->deleted) {
        return false;
      }
      delta_it->deleted = true;
      size_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    const int slot = g->FindBase(key);
    if (slot < 0 || g->base_deleted[static_cast<size_t>(slot)]) {
      return false;
    }
    g->base_deleted[static_cast<size_t>(slot)] = true;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  size_t Scan(uint64_t start_key, size_t count, ScanEntry* out) const {
    if (count == 0) {
      return 0;
    }
    std::shared_lock root_lock(root_mutex_);
    size_t gi = GroupIndexFor(start_key);
    size_t got = 0;
    for (; gi < groups_.size() && got < count; gi++) {
      const Group* g = groups_[gi].get();
      std::shared_lock group_lock(g->mutex);
      got += g->ScanMerged(start_key, count - got, out + got);
    }
    return got;
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  size_t NumGroups() const {
    std::shared_lock root_lock(root_mutex_);
    return groups_.size();
  }

  size_t MemoryBytes() const {
    std::shared_lock root_lock(root_mutex_);
    size_t bytes = sizeof(*this) +
                   boundaries_.capacity() * sizeof(uint64_t) +
                   groups_.capacity() * sizeof(void*);
    for (const auto& g : groups_) {
      std::shared_lock group_lock(g->mutex);
      bytes += sizeof(Group) + g->keys.capacity() * sizeof(uint64_t) +
               g->values.capacity() * sizeof(V) +
               g->base_deleted.capacity() / 8 +
               g->delta.capacity() * sizeof(DeltaEntry);
    }
    return bytes;
  }

  // Drains all pending compactions (test/bench hook).
  void FlushCompactions() {
    for (;;) {
      uint64_t key = 0;
      {
        std::shared_lock root_lock(root_mutex_);
        const Group* pending = nullptr;
        for (size_t i = 0; i < groups_.size(); i++) {
          std::shared_lock gl(groups_[i]->mutex);
          if (NeedsCompaction(*groups_[i])) {
            pending = groups_[i].get();
            key = pending->keys.empty()
                      ? (pending->delta.empty() ? 0 : pending->delta[0].key)
                      : pending->keys[0];
            break;
          }
        }
        if (pending == nullptr) {
          return;
        }
      }
      CompactOneGroup(key);
    }
  }

 private:
  struct DeltaEntry {
    uint64_t key;
    V value;
    bool deleted;
  };

  struct Group {
    void Retrain() {
      LinearModelBuilder builder;
      for (size_t i = 0; i < keys.size(); i++) {
        builder.Add(keys[i], static_cast<double>(i));
      }
      model = builder.Fit();
      base_deleted.assign(keys.size(), false);
    }

    // Exponential search around the model prediction.
    int FindBase(uint64_t key) const {
      const size_t n = keys.size();
      if (n == 0) {
        return -1;
      }
      size_t pos = model.PredictClamped(key, n);
      size_t lo;
      size_t hi;
      if (keys[pos] < key) {
        size_t step = 1;
        lo = pos + 1;
        hi = lo;
        while (hi < n && keys[hi] < key) {
          lo = hi + 1;
          hi += step;
          step <<= 1;
        }
        hi = std::min(hi, n);
      } else {
        size_t step = 1;
        hi = pos;
        lo = hi;
        while (lo > 0 && keys[lo - 1] >= key) {
          hi = lo;
          lo = (lo >= step) ? lo - step : 0;
          step <<= 1;
        }
      }
      const auto it = std::lower_bound(keys.begin() + static_cast<long>(lo),
                                       keys.begin() + static_cast<long>(hi),
                                       key);
      if (it != keys.end() && *it == key) {
        return static_cast<int>(it - keys.begin());
      }
      return -1;
    }

    typename std::vector<DeltaEntry>::iterator DeltaFind(uint64_t key) {
      return std::lower_bound(
          delta.begin(), delta.end(), key,
          [](const DeltaEntry& e, uint64_t k) { return e.key < k; });
    }
    typename std::vector<DeltaEntry>::const_iterator DeltaFindConst(
        uint64_t key) const {
      return std::lower_bound(
          delta.begin(), delta.end(), key,
          [](const DeltaEntry& e, uint64_t k) { return e.key < k; });
    }

    // Merged scan over base and delta starting at start_key.
    size_t ScanMerged(uint64_t start_key, size_t want, ScanEntry* out) const {
      size_t bi = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), start_key) -
          keys.begin());
      auto di = DeltaFindConst(start_key);
      size_t got = 0;
      while (got < want && (bi < keys.size() || di != delta.end())) {
        const bool take_base =
            di == delta.end() ||
            (bi < keys.size() && keys[bi] <= di->key);
        if (take_base) {
          if (!base_deleted[bi]) {
            out[got++] = {keys[bi], values[bi]};
          }
          bi++;
        } else {
          if (!di->deleted) {
            out[got++] = {di->key, di->value};
          }
          ++di;
        }
      }
      return got;
    }

    LinearModel model;
    std::vector<uint64_t> keys;    // sorted base keys
    std::vector<V> values;
    std::vector<bool> base_deleted;
    std::vector<DeltaEntry> delta;  // sorted by key
    mutable std::shared_mutex mutex;
  };

  bool NeedsCompaction(const Group& g) const {
    return g.delta.size() >
           static_cast<size_t>(options_.delta_fraction *
                               static_cast<double>(g.keys.size())) +
               options_.delta_slack;
  }

  size_t GroupIndexFor(uint64_t key) const {
    // Root model predicts the group; exponential correction on boundaries.
    size_t pos = root_model_.PredictClamped(key, boundaries_.size());
    // Correct to the last boundary <= key.
    while (pos + 1 < boundaries_.size() && boundaries_[pos + 1] <= key) {
      pos++;
    }
    while (pos > 0 && boundaries_[pos] > key) {
      pos--;
    }
    return pos;
  }
  Group* GroupFor(uint64_t key) { return groups_[GroupIndexFor(key)].get(); }
  const Group* GroupFor(uint64_t key) const {
    return groups_[GroupIndexFor(key)].get();
  }

  void RetrainRoot() {
    LinearModelBuilder builder;
    for (size_t i = 0; i < boundaries_.size(); i++) {
      builder.Add(boundaries_[i], static_cast<double>(i));
    }
    root_model_ = builder.Fit();
  }

  // Merges delta into base for the group owning `key`; splits oversized
  // groups (adjusting the root).
  void CompactOneGroup(uint64_t key) {
    std::unique_lock root_lock(root_mutex_);
    const size_t gi = GroupIndexFor(key);
    Group* g = groups_[gi].get();
    std::unique_lock group_lock(g->mutex);
    if (!NeedsCompaction(*g) && g->keys.size() <= options_.max_group_size) {
      return;  // someone else compacted already
    }
    std::vector<uint64_t> merged_keys;
    std::vector<V> merged_values;
    merged_keys.reserve(g->keys.size() + g->delta.size());
    merged_values.reserve(g->keys.size() + g->delta.size());
    size_t bi = 0;
    size_t di = 0;
    while (bi < g->keys.size() || di < g->delta.size()) {
      const bool take_base =
          di >= g->delta.size() ||
          (bi < g->keys.size() && g->keys[bi] < g->delta[di].key);
      if (take_base) {
        if (!g->base_deleted[bi]) {
          merged_keys.push_back(g->keys[bi]);
          merged_values.push_back(std::move(g->values[bi]));
        }
        bi++;
      } else {
        if (!g->delta[di].deleted) {
          merged_keys.push_back(g->delta[di].key);
          merged_values.push_back(std::move(g->delta[di].value));
        }
        di++;
      }
    }
    g->delta.clear();
    g->delta.shrink_to_fit();
    if (merged_keys.size() > options_.max_group_size) {
      // Split in two; the right half becomes a new group after gi.
      const size_t half = merged_keys.size() / 2;
      auto right = std::make_unique<Group>();
      right->keys.assign(merged_keys.begin() + static_cast<long>(half),
                         merged_keys.end());
      right->values.assign(
          std::make_move_iterator(merged_values.begin() + static_cast<long>(half)),
          std::make_move_iterator(merged_values.end()));
      right->Retrain();
      merged_keys.resize(half);
      merged_values.resize(half);
      g->keys = std::move(merged_keys);
      g->values = std::move(merged_values);
      g->Retrain();
      const uint64_t boundary = right->keys.front();
      group_lock.unlock();
      boundaries_.insert(boundaries_.begin() + static_cast<long>(gi) + 1,
                         boundary);
      groups_.insert(groups_.begin() + static_cast<long>(gi) + 1,
                     std::move(right));
      RetrainRoot();
      return;
    }
    g->keys = std::move(merged_keys);
    g->values = std::move(merged_values);
    g->Retrain();
  }

  // --- Background compaction ----------------------------------------------

  void RequestCompaction() {
    {
      std::lock_guard<std::mutex> lk(compactor_mutex_);
      compaction_requested_ = true;
    }
    compactor_cv_.notify_one();
  }

  void CompactorLoop() {
    std::unique_lock<std::mutex> lk(compactor_mutex_);
    while (!stop_) {
      compactor_cv_.wait(lk, [this] { return stop_ || compaction_requested_; });
      if (stop_) {
        return;
      }
      compaction_requested_ = false;
      lk.unlock();
      FlushCompactions();
      lk.lock();
    }
  }

  Options options_;
  mutable std::shared_mutex root_mutex_;
  LinearModel root_model_;
  std::vector<uint64_t> boundaries_;  // first key of each group; [0] == 0
  std::vector<std::unique_ptr<Group>> groups_;
  std::atomic<size_t> size_{0};

  std::thread compactor_;
  std::mutex compactor_mutex_;
  std::condition_variable compactor_cv_;
  bool compaction_requested_ = false;
  bool stop_ = false;
};

}  // namespace dytis

#endif  // DYTIS_SRC_BASELINES_XINDEX_XINDEX_H_
