// CCEH-style baseline: three-level Extendible hashing (Nam et al., FAST'19;
// Section 3.1 / Figure 9 of the DyTIS paper).
//
// Structure: directory -> fixed-size segments of 2^kSegmentBits buckets ->
// small buckets probed linearly.  The segment index comes from the MSBs of
// the hashed pseudo-key and the bucket index from its LSBs; having the
// intermediate segment level amortises directory doubling, which is the
// property DyTIS borrows.  Like the original, a bucket probe also checks the
// adjacent bucket (linear probing distance 1) before declaring the segment
// full.
#ifndef DYTIS_SRC_BASELINES_CCEH_H_
#define DYTIS_SRC_BASELINES_CCEH_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/bitops.h"

namespace dytis {

template <typename V>
class Cceh {
 public:
  // Defaults follow the CCEH paper scaled to DRAM: 1024 buckets per segment,
  // 8 pairs per bucket (one cache line of keys).
  explicit Cceh(int segment_bits = 10, uint32_t bucket_capacity = 8)
      : segment_bits_(segment_bits), bucket_capacity_(bucket_capacity) {
    dir_.push_back(new Segment(*this, /*local_depth=*/0));
  }

  ~Cceh() {
    Segment* prev = nullptr;
    for (Segment* s : dir_) {
      if (s != prev) {
        delete s;
        prev = s;
      }
    }
  }

  Cceh(const Cceh&) = delete;
  Cceh& operator=(const Cceh&) = delete;

  bool Insert(uint64_t key, const V& value) {
    const uint64_t h = Hash(key);
    for (;;) {
      Segment* seg = SegmentFor(h);
      int bucket;
      int slot;
      if (seg->FindSlot(h, key, &bucket, &slot)) {
        ValueRef(seg, bucket, slot) = value;  // in-place update
        return false;
      }
      if (seg->TryInsert(h, key, value)) {
        size_++;
        return true;
      }
      SplitSegment(h);
    }
  }

  bool Find(uint64_t key, V* value) const {
    const uint64_t h = Hash(key);
    const Segment* seg = SegmentFor(h);
    int bucket;
    int slot;
    if (!seg->FindSlot(h, key, &bucket, &slot)) {
      return false;
    }
    if (value != nullptr) {
      *value = ValueRef(const_cast<Segment*>(seg), bucket, slot);
    }
    return true;
  }

  bool Update(uint64_t key, const V& value) {
    const uint64_t h = Hash(key);
    Segment* seg = SegmentFor(h);
    int bucket;
    int slot;
    if (!seg->FindSlot(h, key, &bucket, &slot)) {
      return false;
    }
    ValueRef(seg, bucket, slot) = value;
    return true;
  }

  bool Erase(uint64_t key) {
    const uint64_t h = Hash(key);
    Segment* seg = SegmentFor(h);
    int bucket;
    int slot;
    if (!seg->FindSlot(h, key, &bucket, &slot)) {
      return false;
    }
    if (bucket < 0) {
      seg->overflow.erase(seg->overflow.begin() + slot);
    } else {
      seg->occupied[SlotIndex(bucket, slot)] = false;
    }
    size_--;
    return true;
  }

  size_t size() const { return size_; }
  int global_depth() const { return global_depth_; }

  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this) + dir_.capacity() * sizeof(Segment*);
    const Segment* prev = nullptr;
    for (const Segment* s : dir_) {
      if (s != prev) {
        bytes += sizeof(Segment) +
                 s->keys.capacity() * sizeof(uint64_t) +
                 s->values.capacity() * sizeof(V) +
                 s->occupied.capacity() / 8;
        prev = s;
      }
    }
    return bytes;
  }

 private:
  struct Segment {
    Segment(const Cceh& owner, int depth)
        : local_depth(depth),
          num_buckets(1u << owner.segment_bits_),
          capacity(owner.bucket_capacity_) {
      const size_t slots = static_cast<size_t>(num_buckets) * capacity;
      keys.assign(slots, 0);
      values.assign(slots, V{});
      occupied.assign(slots, false);
    }

    // Bucket index from the hash LSBs (CCEH uses LSBs inside segments).
    uint32_t BucketIndex(uint64_t h) const {
      return static_cast<uint32_t>(h & (num_buckets - 1));
    }

    bool FindSlot(uint64_t h, uint64_t key, int* bucket, int* slot) const {
      const uint32_t b0 = BucketIndex(h);
      // Probe the home bucket and its neighbour (linear probing distance 1).
      for (uint32_t d = 0; d < 2; d++) {
        const uint32_t b = (b0 + d) & (num_buckets - 1);
        for (uint32_t s = 0; s < capacity; s++) {
          const size_t i = static_cast<size_t>(b) * capacity + s;
          if (occupied[i] && keys[i] == key) {
            *bucket = static_cast<int>(b);
            *slot = static_cast<int>(s);
            return true;
          }
        }
      }
      // Split-rehash overflow entries (rare; see SplitSegment).
      for (size_t i = 0; i < overflow.size(); i++) {
        if (overflow[i].first == key) {
          *bucket = -1;
          *slot = static_cast<int>(i);
          return true;
        }
      }
      return false;
    }

    bool TryInsert(uint64_t h, uint64_t key, const V& value) {
      const uint32_t b0 = BucketIndex(h);
      for (uint32_t d = 0; d < 2; d++) {
        const uint32_t b = (b0 + d) & (num_buckets - 1);
        for (uint32_t s = 0; s < capacity; s++) {
          const size_t i = static_cast<size_t>(b) * capacity + s;
          if (!occupied[i]) {
            keys[i] = key;
            values[i] = value;
            occupied[i] = true;
            return true;
          }
        }
      }
      return false;
    }

    int local_depth;
    const uint32_t num_buckets;
    const uint32_t capacity;
    std::vector<uint64_t> keys;
    std::vector<V> values;
    std::vector<bool> occupied;
    // Entries displaced during a split rehash when both probe buckets of the
    // child are already full (keys keep their LSB bucket index across
    // splits, so collisions can concentrate).  Checked by FindSlot.
    std::vector<std::pair<uint64_t, V>> overflow;
  };

  static uint64_t Hash(uint64_t key) {
    uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return h * 0xff51afd7ed558ccdULL;
  }

  size_t SlotIndex(int bucket, int slot) const {
    return static_cast<size_t>(bucket) * bucket_capacity_ +
           static_cast<size_t>(slot);
  }

  // Value location for a FindSlot result (bucket == -1 means overflow list).
  V& ValueRef(Segment* seg, int bucket, int slot) const {
    if (bucket < 0) {
      return seg->overflow[static_cast<size_t>(slot)].second;
    }
    return seg->values[SlotIndex(bucket, slot)];
  }

  size_t DirIndex(uint64_t h) const {
    if (global_depth_ == 0) {
      return 0;
    }
    return static_cast<size_t>(h >> (64 - global_depth_));
  }
  Segment* SegmentFor(uint64_t h) { return dir_[DirIndex(h)]; }
  const Segment* SegmentFor(uint64_t h) const { return dir_[DirIndex(h)]; }

  void SplitSegment(uint64_t h) {
    Segment* seg = SegmentFor(h);
    if (seg->local_depth == global_depth_) {
      std::vector<Segment*> bigger(dir_.size() * 2);
      for (size_t i = 0; i < dir_.size(); i++) {
        bigger[2 * i] = dir_[i];
        bigger[2 * i + 1] = dir_[i];
      }
      dir_ = std::move(bigger);
      global_depth_++;
    }
    const int new_depth = seg->local_depth + 1;
    auto* left = new Segment(*this, new_depth);
    auto* right = new Segment(*this, new_depth);
    const size_t slots =
        static_cast<size_t>(seg->num_buckets) * seg->capacity;
    for (size_t i = 0; i < slots; i++) {
      if (!seg->occupied[i]) {
        continue;
      }
      const uint64_t kh = Hash(seg->keys[i]);
      Segment* dst = ((kh >> (64 - new_depth)) & 1) ? right : left;
      if (!dst->TryInsert(kh, seg->keys[i], seg->values[i])) {
        dst->overflow.emplace_back(seg->keys[i], seg->values[i]);
      }
    }
    // Parent overflow entries redistribute the same way.
    for (const auto& [k, v] : seg->overflow) {
      const uint64_t kh = Hash(k);
      Segment* dst = ((kh >> (64 - new_depth)) & 1) ? right : left;
      if (!dst->TryInsert(kh, k, v)) {
        dst->overflow.emplace_back(k, v);
      }
    }
    const size_t run =
        static_cast<size_t>(Pow2(global_depth_ - seg->local_depth));
    const size_t start = DirIndex(h) / run * run;
    for (size_t i = 0; i < run / 2; i++) {
      dir_[start + i] = left;
      dir_[start + run / 2 + i] = right;
    }
    delete seg;
  }

  const int segment_bits_;
  const uint32_t bucket_capacity_;
  std::vector<Segment*> dir_;
  int global_depth_ = 0;
  size_t size_ = 0;
};

}  // namespace dytis

#endif  // DYTIS_SRC_BASELINES_CCEH_H_
