// ALEX-style data node: a gapped, model-indexed sorted array.
//
// Keys live in a sorted array of `capacity` slots with gaps; a linear model
// predicts the slot of a key, and exponential search corrects the
// prediction (Ding et al., SIGMOD'20).  Gap slots hold a copy of their left
// neighbour's key so the array is always non-decreasing and plain binary /
// exponential search works; an occupancy bitmap distinguishes real entries.
//
// Model-based inserts: when a node is rebuilt (expansion or bulk load) each
// key is placed at its model-predicted slot, so future predictions start
// accurate and drift only as keys arrive.
#ifndef DYTIS_SRC_BASELINES_ALEX_DATA_NODE_H_
#define DYTIS_SRC_BASELINES_ALEX_DATA_NODE_H_

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/learned/linear_model.h"

namespace dytis {

template <typename V>
class AlexDataNode {
 public:
  static constexpr double kMaxDensity = 0.8;   // upper density before action
  static constexpr double kInitDensity = 0.6;  // density after a rebuild

  explicit AlexDataNode(size_t capacity = 64) { Reset(capacity); }

  size_t num_keys() const { return num_keys_; }
  size_t capacity() const { return keys_.size(); }
  const LinearModel& model() const { return model_; }
  AlexDataNode* next_leaf() const { return next_leaf_; }
  void set_next_leaf(AlexDataNode* n) { next_leaf_ = n; }

  // A node needs structural action when the density bound is hit OR when
  // inserts have become expensive (long shifts to reach a gap).  The latter
  // is the shift-cost half of ALEX's cost model: without it, appending
  // sorted keys into a node whose right side has filled up degenerates to
  // O(capacity) memmove per insert.
  bool NeedsAction() const {
    if (static_cast<double>(num_keys_ + 1) >
        kMaxDensity * static_cast<double>(keys_.size())) {
      return true;
    }
    return inserts_since_rebuild_ >= 64 &&
           shifts_since_rebuild_ / inserts_since_rebuild_ >= 64;
  }

  // Returns the slot of `key`, or -1.  A run of equal key values can start
  // with gap slots (leading gaps of a rebuild copy the first key; erases
  // leave remnants), so the search skips forward to the occupied slot.
  int Find(uint64_t key) const {
    const int n = static_cast<int>(keys_.size());
    for (int slot = LowerBound(key); slot < n && keys_[slot] == key; slot++) {
      if (OccupiedAt(slot)) {
        return slot;
      }
    }
    return -1;
  }

  const V& ValueAt(int slot) const { return values_[static_cast<size_t>(slot)]; }
  V& MutableValueAt(int slot) { return values_[static_cast<size_t>(slot)]; }
  uint64_t KeyAt(int slot) const { return keys_[static_cast<size_t>(slot)]; }
  bool OccupiedAt(int slot) const {
    return (bitmap_[static_cast<size_t>(slot) >> 6] >>
            (static_cast<size_t>(slot) & 63)) &
           1;
  }

  enum class InsertResult { kInserted, kAlreadyExists, kNeedsAction };

  // Inserts keeping sorted order; returns kNeedsAction when the density
  // bound is hit (caller expands or splits first).
  InsertResult Insert(uint64_t key, const V& value, int* existing_slot) {
    const int slot = LowerBound(key);
    const int n = static_cast<int>(keys_.size());
    // Check the whole equal-key run for an occupied copy (see Find).
    for (int s = slot; s < n && keys_[s] == key; s++) {
      if (OccupiedAt(s)) {
        if (existing_slot != nullptr) {
          *existing_slot = s;
        }
        return InsertResult::kAlreadyExists;
      }
    }
    if (NeedsAction()) {
      return InsertResult::kNeedsAction;
    }
    inserts_since_rebuild_++;
    // Case 1: lower-bound slot is itself a gap -> place directly.
    if (slot < n && !OccupiedAt(slot)) {
      keys_[slot] = key;
      values_[slot] = value;
      SetOccupied(slot);
      num_keys_++;
      return InsertResult::kInserted;
    }
    // Case 2: shift toward the nearest gap (bitmap word scan).
    int gap = FindGapRight(slot);
    if (gap >= 0) {
      shifts_since_rebuild_ += static_cast<uint64_t>(gap - slot);
      for (int i = gap; i > slot; i--) {
        keys_[i] = keys_[i - 1];
        values_[i] = std::move(values_[i - 1]);
      }
      SetOccupied(gap);
      keys_[slot] = key;
      values_[slot] = value;
      num_keys_++;
      return InsertResult::kInserted;
    }
    gap = FindGapLeft(slot - 1);
    assert(gap >= 0 && "density bound guarantees a free slot");
    shifts_since_rebuild_ += static_cast<uint64_t>(slot - gap);
    for (int i = gap; i + 1 < slot; i++) {
      keys_[i] = keys_[i + 1];
      values_[i] = std::move(values_[i + 1]);
    }
    SetOccupied(gap);
    keys_[slot - 1] = key;
    values_[slot - 1] = value;
    num_keys_++;
    return InsertResult::kInserted;
  }

  bool Erase(uint64_t key) {
    const int slot = Find(key);
    if (slot < 0) {
      return false;
    }
    // The key value stays in place as a gap sentinel (array remains sorted).
    ClearOccupied(slot);
    num_keys_--;
    return true;
  }

  // Collects all (key, value) pairs in ascending order.
  void Collect(std::vector<std::pair<uint64_t, V>>* out) const {
    for (size_t w = 0; w < bitmap_.size(); w++) {
      uint64_t word = bitmap_[w];
      while (word != 0) {
        const size_t i = (w << 6) + static_cast<size_t>(std::countr_zero(word));
        out->emplace_back(keys_[i], values_[i]);
        word &= word - 1;
      }
    }
  }

  // Rebuilds the node from sorted entries with model-based placement: each
  // key goes to its model-predicted slot (nudged right to preserve order)
  // and gaps hold left-neighbour copies.  Capacity sized for kInitDensity.
  void BulkLoad(const std::vector<std::pair<uint64_t, V>>& sorted_entries) {
    const size_t target_capacity = std::max<size_t>(
        64, static_cast<size_t>(static_cast<double>(sorted_entries.size()) /
                                kInitDensity));
    BulkLoadWithCapacity(sorted_entries, target_capacity);
  }

  // Expands in place: doubled capacity, retrained model, re-placed keys.
  void Expand() {
    std::vector<std::pair<uint64_t, V>> entries;
    entries.reserve(num_keys_);
    Collect(&entries);
    const size_t target = std::max<size_t>(128, keys_.size() * 2);
    BulkLoadWithCapacity(entries, target);
  }

  size_t MemoryBytes() const {
    return sizeof(*this) + keys_.capacity() * sizeof(uint64_t) +
           values_.capacity() * sizeof(V) +
           bitmap_.capacity() * sizeof(uint64_t);
  }

  // Exponential-search lower bound starting from the model prediction.
  int LowerBound(uint64_t key) const {
    const int n = static_cast<int>(keys_.size());
    if (n == 0) {
      return 0;
    }
    int pos = static_cast<int>(model_.PredictClamped(key, keys_.size()));
    int lo;
    int hi;
    if (keys_[static_cast<size_t>(pos)] < key) {
      int step = 1;
      lo = pos + 1;
      hi = lo;
      while (hi < n && keys_[static_cast<size_t>(hi)] < key) {
        lo = hi + 1;
        hi += step;
        step <<= 1;
      }
      hi = std::min(hi, n);
    } else {
      int step = 1;
      hi = pos;
      lo = hi;
      while (lo > 0 && keys_[static_cast<size_t>(lo - 1)] >= key) {
        hi = lo;
        lo -= step;
        step <<= 1;
        if (lo < 0) {
          lo = 0;
        }
      }
    }
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (keys_[static_cast<size_t>(mid)] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  void SetOccupied(int slot) {
    bitmap_[static_cast<size_t>(slot) >> 6] |=
        uint64_t{1} << (static_cast<size_t>(slot) & 63);
  }
  void ClearOccupied(int slot) {
    bitmap_[static_cast<size_t>(slot) >> 6] &=
        ~(uint64_t{1} << (static_cast<size_t>(slot) & 63));
  }

  // First unoccupied slot >= from, or -1 (word-level scan).
  int FindGapRight(int from) const {
    const size_t n = keys_.size();
    if (static_cast<size_t>(from) >= n) {
      return -1;
    }
    size_t w = static_cast<size_t>(from) >> 6;
    uint64_t gaps = ~bitmap_[w] & ~((uint64_t{1} << (from & 63)) - 1);
    for (;;) {
      if (gaps != 0) {
        const size_t slot = (w << 6) + static_cast<size_t>(std::countr_zero(gaps));
        return slot < n ? static_cast<int>(slot) : -1;
      }
      if (++w >= bitmap_.size()) {
        return -1;
      }
      gaps = ~bitmap_[w];
    }
  }

  // Last unoccupied slot <= from, or -1.
  int FindGapLeft(int from) const {
    if (from < 0) {
      return -1;
    }
    size_t w = static_cast<size_t>(from) >> 6;
    const int bit = from & 63;
    uint64_t gaps = ~bitmap_[w] &
                    (bit == 63 ? ~uint64_t{0} : ((uint64_t{1} << (bit + 1)) - 1));
    for (;;) {
      if (gaps != 0) {
        return static_cast<int>((w << 6) + 63 -
                                static_cast<size_t>(std::countl_zero(gaps)));
      }
      if (w == 0) {
        return -1;
      }
      gaps = ~bitmap_[--w];
    }
  }

  void Reset(size_t capacity) {
    keys_.assign(capacity, 0);
    values_.assign(capacity, V{});
    bitmap_.assign((capacity + 63) / 64, 0);
    num_keys_ = 0;
    model_ = LinearModel{};
    inserts_since_rebuild_ = 0;
    shifts_since_rebuild_ = 0;
  }

  void BulkLoadWithCapacity(const std::vector<std::pair<uint64_t, V>>& entries,
                            size_t capacity) {
    Reset(capacity);
    if (entries.empty()) {
      return;
    }
    // Reserve slack before the first and after the last key so that keys
    // arriving beyond the current range (ascending or descending streams)
    // land in gaps instead of shifting the whole array.
    const size_t head = capacity / 32;
    const size_t tail = capacity / 16;
    const size_t usable = capacity - head - tail;
    LinearModelBuilder builder;
    const double scale = static_cast<double>(usable) /
                         static_cast<double>(entries.size());
    for (size_t i = 0; i < entries.size(); i++) {
      builder.Add(entries[i].first,
                  static_cast<double>(head) + static_cast<double>(i) * scale);
    }
    model_ = builder.Fit();
    int prev = -1;
    const int cap = static_cast<int>(capacity);
    for (size_t i = 0; i < entries.size(); i++) {
      int pos = static_cast<int>(
          model_.PredictClamped(entries[i].first, capacity));
      const int remaining = static_cast<int>(entries.size() - i);
      pos = std::max(pos, prev + 1);
      pos = std::min(pos, cap - remaining);
      keys_[static_cast<size_t>(pos)] = entries[i].first;
      values_[static_cast<size_t>(pos)] = entries[i].second;
      SetOccupied(pos);
      prev = pos;
    }
    uint64_t left = entries[0].first;
    for (size_t i = 0; i < keys_.size(); i++) {
      if (OccupiedAt(static_cast<int>(i))) {
        left = keys_[i];
      } else {
        keys_[i] = left;
      }
    }
    num_keys_ = entries.size();
  }

  LinearModel model_;
  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  std::vector<uint64_t> bitmap_;  // occupancy, one bit per slot
  size_t num_keys_ = 0;
  // Shift-cost statistics since the last rebuild (cost-model trigger).
  uint64_t inserts_since_rebuild_ = 0;
  uint64_t shifts_since_rebuild_ = 0;
  AlexDataNode* next_leaf_ = nullptr;
};

}  // namespace dytis

#endif  // DYTIS_SRC_BASELINES_ALEX_DATA_NODE_H_
