// ALEX-style updatable adaptive learned index (Ding et al., SIGMOD'20),
// the paper's main comparator.
//
// Structure: an adaptive RMI whose inner nodes hold a linear model and a
// children pointer array (pointers may repeat over contiguous runs, like an
// Extendible-hashing directory), and whose data nodes are gapped
// model-indexed arrays (AlexDataNode).  Faithful structural behaviours:
//
//  * bulk loading builds the tree top-down with per-region depth
//    ("adaptive RMI": dense regions get deeper subtrees);
//  * inserts do model-based placement + exponential search;
//  * a full data node either expands in place (retrain) or splits sideways
//    at the model midpoint of its pointer run; when its run has length 1
//    the children array doubles, and only when the fanout cap is reached
//    does the tree grow a new level (ALEX "vigorously deters increasing
//    this depth" -- Section 4.3 of the DyTIS paper);
//  * data nodes are chained for range scans.
//
// The full ALEX cost model is simplified to the density/size rule above;
// DESIGN.md Section 5 records the deviation.
#ifndef DYTIS_SRC_BASELINES_ALEX_ALEX_INDEX_H_
#define DYTIS_SRC_BASELINES_ALEX_ALEX_INDEX_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/baselines/alex/data_node.h"
#include "src/learned/linear_model.h"
#include "src/util/bitops.h"

namespace dytis {

template <typename V>
class AlexIndex {
 public:
  using ScanEntry = std::pair<uint64_t, V>;

  struct Stats {
    size_t expansions = 0;
    size_t splits = 0;
    size_t children_doublings = 0;
    size_t subtree_creations = 0;
  };

  AlexIndex() = default;
  ~AlexIndex() { DeleteTree(root_); }

  AlexIndex(const AlexIndex&) = delete;
  AlexIndex& operator=(const AlexIndex&) = delete;

  // Builds the index from sorted unique entries, replacing the contents.
  void BulkLoad(std::span<const ScanEntry> sorted_entries) {
    DeleteTree(root_);
    root_ = nullptr;
    first_leaf_ = nullptr;
    size_ = 0;
    if (sorted_entries.empty()) {
      return;
    }
    Leaf* chain_tail = nullptr;
    root_ = Build(sorted_entries, &chain_tail);
    size_ = sorted_entries.size();
  }

  bool Insert(uint64_t key, const V& value) {
    if (root_ == nullptr) {
      auto* leaf = new Leaf();
      leaf->data.BulkLoad({{key, value}});
      root_ = leaf;
      first_leaf_ = &leaf->data;
      size_ = 1;
      return true;
    }
    for (int attempt = 0; attempt < 128; attempt++) {
      path_.clear();
      Leaf* leaf = Descend(key);
      int slot = -1;
      const auto result = leaf->data.Insert(key, value, &slot);
      if (result == AlexDataNode<V>::InsertResult::kInserted) {
        size_++;
        return true;
      }
      if (result == AlexDataNode<V>::InsertResult::kAlreadyExists) {
        leaf->data.MutableValueAt(slot) = value;  // in-place update
        return false;
      }
      // Node full: expand while below the size cap, then split.
      if (leaf->data.capacity() < kMaxLeafCapacity) {
        leaf->data.Expand();
        stats_.expansions++;
        continue;
      }
      SplitLeaf(leaf, key);
    }
    assert(false && "ALEX insert exceeded structural retry bound");
    return false;
  }

  bool Find(uint64_t key, V* value) const {
    if (root_ == nullptr) {
      return false;
    }
    const Leaf* leaf = DescendConst(key);
    const int slot = leaf->data.Find(key);
    if (slot < 0) {
      return false;
    }
    if (value != nullptr) {
      *value = leaf->data.ValueAt(slot);
    }
    return true;
  }

  bool Update(uint64_t key, const V& value) {
    if (root_ == nullptr) {
      return false;
    }
    path_.clear();
    Leaf* leaf = Descend(key);
    const int slot = leaf->data.Find(key);
    if (slot < 0) {
      return false;
    }
    leaf->data.MutableValueAt(slot) = value;
    return true;
  }

  bool Erase(uint64_t key) {
    if (root_ == nullptr) {
      return false;
    }
    path_.clear();
    Leaf* leaf = Descend(key);
    if (!leaf->data.Erase(key)) {
      return false;
    }
    size_--;
    return true;
  }

  size_t Scan(uint64_t start_key, size_t count, ScanEntry* out) const {
    if (root_ == nullptr || count == 0) {
      return 0;
    }
    const Leaf* leaf = DescendConst(start_key);
    const AlexDataNode<V>* node = &leaf->data;
    int slot = node->LowerBound(start_key);
    size_t got = 0;
    while (node != nullptr && got < count) {
      const int cap = static_cast<int>(node->capacity());
      for (; slot < cap && got < count; slot++) {
        if (node->OccupiedAt(slot) && node->KeyAt(slot) >= start_key) {
          out[got++] = {node->KeyAt(slot), node->ValueAt(slot)};
        }
      }
      node = node->next_leaf();
      slot = 0;
    }
    return got;
  }

  size_t size() const { return size_; }
  const Stats& stats() const { return stats_; }

  struct TreeShape {
    size_t data_nodes = 0;
    size_t inner_nodes = 0;
    size_t total_models = 0;  // inner + data node models
    int max_depth = 0;        // 1 = root-only
    size_t total_data_capacity = 0;
  };

  TreeShape ComputeShape() const {
    TreeShape shape;
    if (root_ != nullptr) {
      Walk(root_, 1, &shape);
    }
    return shape;
  }

  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this);
    if (root_ != nullptr) {
      bytes += NodeBytes(root_);
    }
    return bytes;
  }

 private:
  // Data-node sizing: ~2K keys per leaf at bulk load, hard capacity cap of
  // 32K slots before a leaf must split (mirrors ALEX's max node size).
  static constexpr size_t kBulkLeafKeys = 4096;
  static constexpr size_t kMaxLeafCapacity = size_t{1} << 15;
  static constexpr size_t kMaxFanout = size_t{1} << 14;

  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    bool is_leaf;
  };
  struct Inner : Node {
    Inner() : Node(false) {}
    LinearModel model;  // key -> child index in [0, children.size())
    std::vector<Node*> children;
    // Exact pivot router (used by MakeSubtree): with 64-bit keys near 2^63,
    // double arithmetic in a linear model cannot express exact quantile
    // boundaries, so freshly created subtrees route by comparison against
    // `pivots` (children.size() == pivots.size() + 1).
    bool has_pivot = false;
    std::vector<uint64_t> pivots;

    size_t ChildIndex(uint64_t key) const {
      if (has_pivot) {
        return static_cast<size_t>(
            std::upper_bound(pivots.begin(), pivots.end(), key) -
            pivots.begin());
      }
      return model.PredictClamped(key, children.size());
    }
  };
  struct Leaf : Node {
    Leaf() : Node(true) {}
    AlexDataNode<V> data;
  };

  // --- Bulk loading -------------------------------------------------------

  Node* Build(std::span<const ScanEntry> entries, Leaf** chain_tail) {
    if (entries.size() <= kBulkLeafKeys) {
      auto* leaf = new Leaf();
      leaf->data.BulkLoad({entries.begin(), entries.end()});
      LinkLeaf(leaf, chain_tail);
      return leaf;
    }
    // Fanout proportional to the key count; dense regions recurse deeper.
    const size_t want = entries.size() / (kBulkLeafKeys / 2);
    const size_t fanout =
        std::min(kMaxFanout, Pow2(CeilLog2(std::max<size_t>(2, want))));
    auto* inner = new Inner();
    LinearModelBuilder builder;
    const double scale = static_cast<double>(fanout) /
                         static_cast<double>(entries.size());
    for (size_t i = 0; i < entries.size(); i++) {
      builder.Add(entries[i].first, static_cast<double>(i) * scale);
    }
    inner->model = builder.Fit();
    inner->children.assign(fanout, nullptr);
    // Partition entries by predicted child (monotone in the key).
    size_t begin = 0;
    size_t last_built = 0;
    Node* last_node = nullptr;
    for (size_t c = 0; c < fanout; c++) {
      size_t end = begin;
      while (end < entries.size() &&
             inner->ChildIndex(entries[end].first) == c) {
        end++;
      }
      if (end > begin) {
        // Guard against a degenerate model that maps everything to one
        // child: recursing with the full range would never terminate.
        Node* child;
        if (end - begin == entries.size()) {
          auto* leaf = new Leaf();
          leaf->data.BulkLoad({entries.begin(), entries.end()});
          LinkLeaf(leaf, chain_tail);
          child = leaf;
        } else {
          child = Build(entries.subspan(begin, end - begin), chain_tail);
        }
        inner->children[c] = child;
        last_node = child;
        last_built = c;
      } else {
        // Empty child slot: share the nearest left node so its run extends
        // (keys mapping here later belong to that node's key range).
        inner->children[c] = last_node;
      }
      begin = end;
    }
    (void)last_built;
    // Leading empty slots (no left node yet) share the first real child.
    Node* first_real = nullptr;
    for (size_t c = 0; c < fanout; c++) {
      if (inner->children[c] != nullptr) {
        first_real = inner->children[c];
        break;
      }
    }
    for (size_t c = 0; c < fanout && inner->children[c] == nullptr; c++) {
      inner->children[c] = first_real;
    }
    return inner;
  }

  void LinkLeaf(Leaf* leaf, Leaf** chain_tail) {
    if (*chain_tail == nullptr) {
      first_leaf_ = &leaf->data;
    } else {
      (*chain_tail)->data.set_next_leaf(&leaf->data);
    }
    *chain_tail = leaf;
  }

  // --- Descent ------------------------------------------------------------

  Leaf* Descend(uint64_t key) {
    Node* node = root_;
    while (!node->is_leaf) {
      auto* inner = static_cast<Inner*>(node);
      const size_t idx = inner->ChildIndex(key);
      path_.push_back({inner, idx});
      node = inner->children[idx];
    }
    return static_cast<Leaf*>(node);
  }

  const Leaf* DescendConst(uint64_t key) const {
    const Node* node = root_;
    while (!node->is_leaf) {
      const auto* inner = static_cast<const Inner*>(node);
      node = inner->children[inner->ChildIndex(key)];
    }
    return static_cast<const Leaf*>(node);
  }

  // --- Structure modification ---------------------------------------------

  void SplitLeaf(Leaf* leaf, uint64_t key) {
    if (path_.empty()) {
      // Root is a data node: grow a 2-way root.
      MakeSubtree(&root_, leaf);
      stats_.subtree_creations++;
      return;
    }
    Inner* parent = path_.back().first;
    const size_t idx = path_.back().second;
    // Locate the contiguous run of slots pointing at this leaf.
    size_t lo = idx;
    while (lo > 0 && parent->children[lo - 1] == leaf) {
      lo--;
    }
    size_t hi = idx + 1;
    while (hi < parent->children.size() && parent->children[hi] == leaf) {
      hi++;
    }
    if (hi - lo < 2) {
      // Pivot routers cannot be doubled (their routing is a comparison,
      // not a scalable model); grow a subtree instead.
      if (!parent->has_pivot && parent->children.size() * 2 <= kMaxFanout) {
        DoubleChildren(parent);
        stats_.children_doublings++;
        return;  // retry; the run now has length 2
      }
      MakeSubtree(&parent->children[idx], leaf);
      stats_.subtree_creations++;
      return;
    }
    // Split the run at the model midpoint (model-based split, not median
    // split).  The partition uses the routing function itself so that key
    // placement and future descents agree bit-for-bit, immune to the
    // double-precision rounding of an inverted boundary key.
    const size_t mid = lo + (hi - lo) / 2;
    if (!parent->has_pivot && parent->model.slope <= 0.0) {
      MakeSubtree(&parent->children[idx], leaf);
      stats_.subtree_creations++;
      return;
    }
    std::vector<ScanEntry> entries;
    entries.reserve(leaf->data.num_keys());
    leaf->data.Collect(&entries);
    const auto split_it = std::partition_point(
        entries.begin(), entries.end(), [&](const ScanEntry& e) {
          return parent->ChildIndex(e.first) < mid;
        });
    std::vector<ScanEntry> left_entries(entries.begin(), split_it);
    std::vector<ScanEntry> right_entries(split_it, entries.end());
    // Reuse `leaf` as the left node (its predecessor's chain pointer and
    // the directory slots [lo, mid) stay valid); make a fresh right node.
    auto* right = new Leaf();
    right->data.BulkLoad(right_entries);
    right->data.set_next_leaf(leaf->data.next_leaf());
    leaf->data.BulkLoad(left_entries);
    leaf->data.set_next_leaf(&right->data);
    for (size_t c = mid; c < hi; c++) {
      parent->children[c] = right;
    }
    stats_.splits++;
    (void)key;
  }

  // Replaces *slot (a full leaf) with a pivot-routed inner node over its
  // entries.  Pivots sit at quantiles of the key set and routing is an
  // exact integer comparison, so the split is balanced and routing-
  // consistent even for key distributions where a least-squares fit would
  // send every key to one child (and immune to double rounding near 2^63).
  // Up to 8 children per level keeps the depth growth of append-heavy
  // workloads shallow.
  void MakeSubtree(Node** slot, Leaf* leaf) {
    std::vector<ScanEntry> entries;
    entries.reserve(leaf->data.num_keys());
    leaf->data.Collect(&entries);
    assert(entries.size() >= 2);
    auto* inner = new Inner();
    inner->has_pivot = true;
    const size_t want_children =
        std::min<size_t>(8, std::max<size_t>(2, entries.size() / 2));
    for (size_t c = 1; c < want_children; c++) {
      const uint64_t pivot = entries[entries.size() * c / want_children].first;
      if (inner->pivots.empty() || pivot > inner->pivots.back()) {
        inner->pivots.push_back(pivot);
      }
    }
    const size_t fanout = inner->pivots.size() + 1;
    inner->children.assign(fanout, nullptr);
    // Partition by the routing function itself; reuse `leaf` as child 0 so
    // the predecessor's chain pointer stays valid.
    Leaf* prev_leaf = nullptr;
    AlexDataNode<V>* old_next = leaf->data.next_leaf();
    size_t begin = 0;
    for (size_t c = 0; c < fanout; c++) {
      size_t end = begin;
      while (end < entries.size() &&
             inner->ChildIndex(entries[end].first) == c) {
        end++;
      }
      std::vector<ScanEntry> part(entries.begin() + static_cast<long>(begin),
                                  entries.begin() + static_cast<long>(end));
      Leaf* child = (c == 0) ? leaf : new Leaf();
      child->data.BulkLoad(part);
      if (prev_leaf != nullptr) {
        prev_leaf->data.set_next_leaf(&child->data);
      }
      prev_leaf = child;
      inner->children[c] = child;
      begin = end;
    }
    prev_leaf->data.set_next_leaf(old_next);
    *slot = inner;
  }

  void DoubleChildren(Inner* inner) {
    std::vector<Node*> bigger(inner->children.size() * 2);
    for (size_t i = 0; i < inner->children.size(); i++) {
      bigger[2 * i] = inner->children[i];
      bigger[2 * i + 1] = inner->children[i];
    }
    inner->children = std::move(bigger);
    inner->model.slope *= 2.0;
    inner->model.intercept *= 2.0;
  }

  // --- Maintenance --------------------------------------------------------

  void DeleteTree(Node* node) {
    if (node == nullptr) {
      return;
    }
    if (node->is_leaf) {
      delete static_cast<Leaf*>(node);
      return;
    }
    auto* inner = static_cast<Inner*>(node);
    Node* prev = nullptr;
    for (Node* child : inner->children) {
      if (child != prev) {
        DeleteTree(child);
        prev = child;
      }
    }
    delete inner;
  }

  void Walk(const Node* node, int depth, TreeShape* shape) const {
    shape->max_depth = std::max(shape->max_depth, depth);
    if (node->is_leaf) {
      const auto* leaf = static_cast<const Leaf*>(node);
      shape->data_nodes++;
      shape->total_models++;
      shape->total_data_capacity += leaf->data.capacity();
      return;
    }
    const auto* inner = static_cast<const Inner*>(node);
    shape->inner_nodes++;
    shape->total_models++;
    const Node* prev = nullptr;
    for (const Node* child : inner->children) {
      if (child != prev) {
        Walk(child, depth + 1, shape);
        prev = child;
      }
    }
  }

  size_t NodeBytes(const Node* node) const {
    if (node->is_leaf) {
      return static_cast<const Leaf*>(node)->data.MemoryBytes() +
             sizeof(Leaf) - sizeof(AlexDataNode<V>);
    }
    const auto* inner = static_cast<const Inner*>(node);
    size_t bytes = sizeof(Inner) + inner->children.size() * sizeof(Node*);
    const Node* prev = nullptr;
    for (const Node* child : inner->children) {
      if (child != prev) {
        bytes += NodeBytes(child);
        prev = child;
      }
    }
    return bytes;
  }

  Node* root_ = nullptr;
  AlexDataNode<V>* first_leaf_ = nullptr;
  size_t size_ = 0;
  Stats stats_;
  // Descent path scratch (single-threaded index, like upstream ALEX).
  std::vector<std::pair<Inner*, size_t>> path_;
};

}  // namespace dytis

#endif  // DYTIS_SRC_BASELINES_ALEX_ALEX_INDEX_H_
