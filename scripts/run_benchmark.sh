#!/bin/sh
# Artifact experiment E1: insert, search, and scan performance of DyTIS
# over a key file (CSV or SOSD binary).  Mirrors the paper artifact's
# scripts/run_benchmark.sh.
#
#   ./scripts/run_benchmark.sh [data/review-small.csv]
#
# Without an argument a synthetic review-style dataset is generated.
set -eu
cd "$(dirname "$0")/.."
cmake -B build -G Ninja >/dev/null
cmake --build build --target file_benchmark >/dev/null
mkdir -p benchmark/result
out="benchmark/result/benchmark_$(date +%Y%m%d_%H%M%S).log"
./build/examples/file_benchmark "$@" | tee "$out"
echo "results saved to $out"
