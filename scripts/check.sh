#!/usr/bin/env bash
# CI gate: build and test Release, ThreadSanitizer, ASan/UBSan, and the
# observability-disabled (DYTIS_OBS=OFF) configs, then smoke-test the
# machine-readable bench export.
#
#   scripts/check.sh              # all four configs + bench-JSON smoke
#   JOBS=8 scripts/check.sh       # override parallelism
#   FILTER=regex scripts/check.sh # restrict ctest to matching tests
#   CONFIGS="release tsan" scripts/check.sh  # subset of configs
#
# Sanitizer configs take several times longer than Release; FILTER is useful
# for quick local iterations (e.g. FILTER='Stress|Concurrency|Fault').
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FILTER="${FILTER:-}"
CONFIGS="${CONFIGS:-release tsan asan obsoff}"

CTEST_ARGS=(--output-on-failure -j "${JOBS}")
if [[ -n "${FILTER}" ]]; then
  CTEST_ARGS+=(-R "${FILTER}")
fi

# Per-config widening of the durability robustness suites: the release
# config runs the full crash-kill matrix and a longer corruption-fuzz
# campaign; sanitizer configs run a smaller matrix (each killed child and
# every fuzz round re-runs recovery, which is slow under ASan/TSan) but gain
# the memory-safety checking that the fuzz contract depends on.
crash_points_for() {
  case "$1" in
    release) echo 6 ;;
    *)       echo 2 ;;
  esac
}
fuzz_rounds_for() {
  case "$1" in
    release) echo 120 ;;
    *)       echo 30 ;;
  esac
}

for config in ${CONFIGS}; do
  # DYTIS_OBS is set explicitly per config so a cached build directory never
  # carries a stale value across runs.
  case "${config}" in
    release) dir=build;        cmake_args=(-DCMAKE_BUILD_TYPE=Release -DDYTIS_SANITIZE= -DDYTIS_OBS=ON) ;;
    tsan)    dir=build-tsan;   cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DDYTIS_SANITIZE=thread -DDYTIS_OBS=ON) ;;
    asan)    dir=build-asan;   cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DDYTIS_SANITIZE=address -DDYTIS_OBS=ON) ;;
    obsoff)  dir=build-obsoff; cmake_args=(-DCMAKE_BUILD_TYPE=Release -DDYTIS_SANITIZE= -DDYTIS_OBS=OFF) ;;
    *) echo "unknown config '${config}' (want: release tsan asan obsoff)" >&2; exit 2 ;;
  esac
  echo "=== [${config}] configure + build (${dir}) ==="
  cmake -B "${dir}" -S . "${cmake_args[@]}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${config}] ctest ==="
  (cd "${dir}" && ctest "${CTEST_ARGS[@]}")
  # Crash-matrix + corruption-fuzz stage: re-run the durability suites with
  # the widened kill-point matrix and fuzz campaign for this config.  tsan
  # is excluded from the crash matrix: the helper dies by design, and TSan's
  # at-exit machinery makes fork/SIGKILL churn disproportionately slow
  # without adding coverage (the recovery path itself is single-threaded).
  if [[ -z "${FILTER}" && "${config}" != "tsan" ]]; then
    echo "=== [${config}] crash matrix + corruption fuzz ==="
    (cd "${dir}" && \
      DYTIS_CRASH_POINTS="$(crash_points_for "${config}")" \
      DYTIS_FUZZ_ROUNDS="$(fuzz_rounds_for "${config}")" \
      ctest --output-on-failure -j "${JOBS}" -R 'RecoveryCrashTest|RecoveryFuzzTest')
  fi
done

# Bench-export smoke: one bench binary end to end must produce JSON that a
# strict parser accepts, for both the result file and the Chrome trace.
if [[ " ${CONFIGS} " == *" release "* ]]; then
  echo "=== [release] bench JSON + trace smoke ==="
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  DYTIS_BENCH_KEYS=20000 \
  DYTIS_BENCH_JSON_DIR="${smoke_dir}/bench_results" \
  DYTIS_TRACE="${smoke_dir}/traces" \
    ./build/bench/bench_breakdown > "${smoke_dir}/stdout.txt"
  python3 -m json.tool "${smoke_dir}/bench_results/breakdown.json" > /dev/null
  python3 -m json.tool "${smoke_dir}/traces/breakdown.trace.json" > /dev/null
  echo "bench JSON + chrome trace are valid JSON"
fi

echo "=== all configs passed: ${CONFIGS} ==="
