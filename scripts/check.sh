#!/usr/bin/env bash
# CI gate: build and test Release, ThreadSanitizer, ASan/UBSan, and the
# observability-disabled (DYTIS_OBS=OFF) configs, then smoke-test the
# machine-readable bench export and print a line-coverage summary for the
# core.
#
#   scripts/check.sh              # all four configs + bench smoke + coverage
#   JOBS=8 scripts/check.sh       # override parallelism
#   FILTER=regex scripts/check.sh # restrict ctest to matching tests
#   CONFIGS="release tsan" scripts/check.sh  # subset of configs
#   COVERAGE=0 scripts/check.sh   # skip the coverage build
#   STRESS_TIMEOUT=900 ...        # override the per-config stress cap
#
# Tests are tiered by ctest label: `fast` (deterministic, seconds), `stress`
# (thread-interleaved, minutes — the tier that can hang when a scheduling
# pathology starves a writer), and `crash` (fork/SIGKILL durability
# suites).  The stress tier runs under a hard timeout with one retry so a
# wedged interleaving fails the matrix loudly instead of hanging it; a
# second consecutive failure is treated as real, never retried away.
#
# Sanitizer configs take several times longer than Release; FILTER is useful
# for quick local iterations (e.g. FILTER='Stress|Concurrency|Fault').
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FILTER="${FILTER:-}"
CONFIGS="${CONFIGS:-release tsan asan obsoff}"
COVERAGE="${COVERAGE:-1}"

CTEST_ARGS=(--output-on-failure -j "${JOBS}")
if [[ -n "${FILTER}" ]]; then
  CTEST_ARGS+=(-R "${FILTER}")
fi

# Hard wall-clock cap for one attempt of the stress tier.  TSan serialises
# the interleavings it checks, so its tier runs several times longer.
stress_timeout_for() {
  if [[ -n "${STRESS_TIMEOUT:-}" ]]; then
    echo "${STRESS_TIMEOUT}"
    return
  fi
  case "$1" in
    tsan) echo 5400 ;;
    asan) echo 3600 ;;
    *)    echo 1800 ;;
  esac
}

# Runs the stress-labelled tests with a timeout and exactly one retry.
# A timeout (exit 124) usually means a starved-writer interleaving on a
# loaded box, so one clean re-run is allowed; any second failure — timeout
# or assertion — fails the whole matrix.  Flakes are never silently eaten:
# every failed attempt is reported even when the retry passes.
run_stress_tier() {
  local dir="$1" config="$2"
  local tmo attempt rc
  tmo="$(stress_timeout_for "${config}")"
  for attempt in 1 2; do
    rc=0
    (cd "${dir}" && timeout --kill-after=30 "${tmo}" \
      ctest --output-on-failure -j "${JOBS}" -L stress) || rc=$?
    if [[ ${rc} -eq 0 ]]; then
      if [[ ${attempt} -eq 2 ]]; then
        echo "!!! [${config}] stress tier passed only on retry -- flaky," \
             "investigate before merging" >&2
      fi
      return 0
    fi
    if [[ ${rc} -eq 124 ]]; then
      echo "!!! [${config}] stress tier TIMED OUT after ${tmo}s" \
           "(attempt ${attempt}/2)" >&2
    else
      echo "!!! [${config}] stress tier FAILED rc=${rc}" \
           "(attempt ${attempt}/2)" >&2
    fi
  done
  echo "!!! [${config}] stress tier failed twice -- failing the matrix" >&2
  return 1
}

# Per-config widening of the durability robustness suites: the release
# config runs the full crash-kill matrix and a longer corruption-fuzz
# campaign; sanitizer configs run a smaller matrix (each killed child and
# every fuzz round re-runs recovery, which is slow under ASan/TSan) but gain
# the memory-safety checking that the fuzz contract depends on.
crash_points_for() {
  case "$1" in
    release) echo 6 ;;
    *)       echo 2 ;;
  esac
}
fuzz_rounds_for() {
  case "$1" in
    release) echo 120 ;;
    *)       echo 30 ;;
  esac
}

# Attack-suite widening: the adversarial robustness tests (attack engine,
# degradation detector + mitigation, adversarial integration) scale their
# poisoned-key volume with DYTIS_ATTACK_KEYS.  Release runs wide enough to
# saturate depth-capped segments several times over; sanitizer configs run
# smaller (every stash insert and quarantine rebuild is instrumented).
attack_keys_for() {
  case "$1" in
    release) echo 60000 ;;
    *)       echo 12000 ;;
  esac
}

# Server-suite widening: the sharded serving front end's differential and
# determinism tests scale their op streams with DYTIS_SERVER_OPS.  Release
# runs wide (long differential streams, more batches through the pipeline);
# sanitizer configs run smaller — every routed op crosses the queue/worker
# handoff that TSan/ASan instrument, so coverage per op is already high.
server_ops_for() {
  case "$1" in
    release) echo 30000 ;;
    *)       echo 4000 ;;
  esac
}

for config in ${CONFIGS}; do
  # DYTIS_OBS is set explicitly per config so a cached build directory never
  # carries a stale value across runs.
  case "${config}" in
    release) dir=build;        cmake_args=(-DCMAKE_BUILD_TYPE=Release -DDYTIS_SANITIZE= -DDYTIS_OBS=ON) ;;
    tsan)    dir=build-tsan;   cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DDYTIS_SANITIZE=thread -DDYTIS_OBS=ON) ;;
    asan)    dir=build-asan;   cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DDYTIS_SANITIZE=address -DDYTIS_OBS=ON) ;;
    obsoff)  dir=build-obsoff; cmake_args=(-DCMAKE_BUILD_TYPE=Release -DDYTIS_SANITIZE= -DDYTIS_OBS=OFF) ;;
    *) echo "unknown config '${config}' (want: release tsan asan obsoff)" >&2; exit 2 ;;
  esac
  echo "=== [${config}] configure + build (${dir}) ==="
  cmake -B "${dir}" -S . "${cmake_args[@]}"
  cmake --build "${dir}" -j "${JOBS}"
  if [[ -n "${FILTER}" ]]; then
    echo "=== [${config}] ctest (filter: ${FILTER}) ==="
    (cd "${dir}" && ctest "${CTEST_ARGS[@]}")
  else
    echo "=== [${config}] ctest: fast + crash tiers ==="
    (cd "${dir}" && ctest "${CTEST_ARGS[@]}" -LE stress)
    echo "=== [${config}] ctest: stress tier (timeout + single retry) ==="
    run_stress_tier "${dir}" "${config}"
  fi
  # Leak-check stage (asan config only): re-run the reclamation suites with
  # leak detection forced on.  This is the memory-safety half of the EBR
  # contract — every object retired to the epoch domain under churn must be
  # freed by the amortised passes, the quiesce drain, or domain teardown;
  # a retired-but-never-freed core shows up here as a hard leak report.
  # (detect_leaks is off by default in this image, so the explicit
  # ASAN_OPTIONS matters.)
  if [[ -z "${FILTER}" && "${config}" == "asan" ]]; then
    echo "=== [${config}] EBR leak check (churn workloads, detect_leaks=1) ==="
    (cd "${dir}" && \
      ASAN_OPTIONS="detect_leaks=1" \
      ctest --output-on-failure -j "${JOBS}" -R 'ReclamationTest|EbrTest')
  fi
  # Crash-matrix + corruption-fuzz stage: re-run the durability suites with
  # the widened kill-point matrix and fuzz campaign for this config.  tsan
  # is excluded from the crash matrix: the helper dies by design, and TSan's
  # at-exit machinery makes fork/SIGKILL churn disproportionately slow
  # without adding coverage (the recovery path itself is single-threaded).
  if [[ -z "${FILTER}" && "${config}" != "tsan" ]]; then
    echo "=== [${config}] crash matrix + corruption fuzz ==="
    (cd "${dir}" && \
      DYTIS_CRASH_POINTS="$(crash_points_for "${config}")" \
      DYTIS_FUZZ_ROUNDS="$(fuzz_rounds_for "${config}")" \
      ctest --output-on-failure -j "${JOBS}" -R 'RecoveryCrashTest|RecoveryFuzzTest')
  fi
  # Attack-suite stage: re-run the adversarial robustness suites with the
  # widened poisoned-key volume for this config (tsan runs them at default
  # scale in the regular tiers above; re-running the stash-bomb saturation
  # loops under TSan's serialisation adds minutes, not coverage — the
  # concurrency of the repair path is exercised by the stress tier).
  if [[ -z "${FILTER}" && "${config}" != "tsan" ]]; then
    echo "=== [${config}] attack suite (DYTIS_ATTACK_KEYS=$(attack_keys_for "${config}")) ==="
    (cd "${dir}" && \
      DYTIS_ATTACK_KEYS="$(attack_keys_for "${config}")" \
      ctest --output-on-failure -j "${JOBS}" -R 'Attack|Degradation|Adversarial')
  fi
  # Server-suite stage: re-run the serving front end's suites with the
  # widened op streams for this config.  Every config runs it — the router
  # differential is where a misrouted key shows up, the loadgen determinism
  # and cross-shard scan tests are exactly the queue/worker/EBR interleaving
  # surface TSan exists for (obsoff proves the metrics hooks compile out of
  # the pipeline hot path).
  if [[ -z "${FILTER}" ]]; then
    echo "=== [${config}] server suite (DYTIS_SERVER_OPS=$(server_ops_for "${config}")) ==="
    (cd "${dir}" && \
      DYTIS_SERVER_OPS="$(server_ops_for "${config}")" \
      ctest --output-on-failure -j "${JOBS}" \
      -R 'RangeRouter|ShardedDifferential|ServerPipeline|LoadGen|ShardedScan')
  fi
done

# Bench-export smoke: one bench binary end to end must produce JSON that a
# strict parser accepts, for both the result file and the Chrome trace.
if [[ " ${CONFIGS} " == *" release "* ]]; then
  echo "=== [release] bench JSON + trace smoke ==="
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  DYTIS_BENCH_KEYS=20000 \
  DYTIS_BENCH_JSON_DIR="${smoke_dir}/bench_results" \
  DYTIS_TRACE="${smoke_dir}/traces" \
    ./build/bench/bench_breakdown > "${smoke_dir}/stdout.txt"
  python3 -m json.tool "${smoke_dir}/bench_results/breakdown.json" > /dev/null
  python3 -m json.tool "${smoke_dir}/traces/breakdown.trace.json" > /dev/null
  echo "bench JSON + chrome trace are valid JSON"
fi

# Obs-health stage: the telemetry additions get their own gate.  The
# bench-regression comparator's built-in scenarios (injected regression
# caught, identical docs pass, reordered rows align) run first — they are
# pure python and fail in milliseconds when the gate logic breaks.  Then
# the health suite re-runs under TSan when that config was built: the
# aggregator thread + SIGUSR1 + collection-under-shared-locks combination
# is exactly where a data race would hide.
if [[ -z "${FILTER}" ]]; then
  echo "=== [obs-health] bench_compare self-test ==="
  python3 scripts/bench_compare.py --self-test
  if [[ " ${CONFIGS} " == *" tsan "* && -x build-tsan/tests/health_test ]]; then
    echo "=== [obs-health] health suite under TSan ==="
    (cd build-tsan && ctest --output-on-failure -R 'Health|EpochLag|WalLatency')
  fi
fi

# Coverage stage: instrumented build (-DDYTIS_COVERAGE=ON), fast tier only
# (the stress tier adds runtime, not lines), then a per-file line-coverage
# table for src/core/, src/sync/, src/obs/, and src/recovery/.  The image
# has gcov but not lcov/gcovr, so the summary is computed by
# scripts/coverage_summary.py from gcov's JSON intermediate output.
if [[ "${COVERAGE}" == "1" && -z "${FILTER}" ]]; then
  echo "=== [coverage] instrumented build + fast tier ==="
  cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug -DDYTIS_COVERAGE=ON \
    -DDYTIS_SANITIZE= -DDYTIS_OBS=ON
  cmake --build build-cov -j "${JOBS}"
  find build-cov -name '*.gcda' -delete  # stale counters skew the summary
  (cd build-cov && ctest --output-on-failure -j "${JOBS}" -L fast)
  python3 scripts/coverage_summary.py build-cov src/core/ src/sync/ \
    src/obs/ src/recovery/ src/server/
fi

echo "=== all configs passed: ${CONFIGS} ==="
