#!/usr/bin/env bash
# CI gate: build and test Release, ThreadSanitizer, and ASan/UBSan configs.
#
#   scripts/check.sh              # all three configs, full test suite
#   JOBS=8 scripts/check.sh       # override parallelism
#   FILTER=regex scripts/check.sh # restrict ctest to matching tests
#   CONFIGS="release tsan" scripts/check.sh  # subset of configs
#
# Sanitizer configs take several times longer than Release; FILTER is useful
# for quick local iterations (e.g. FILTER='Stress|Concurrency|Fault').
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FILTER="${FILTER:-}"
CONFIGS="${CONFIGS:-release tsan asan}"

CTEST_ARGS=(--output-on-failure -j "${JOBS}")
if [[ -n "${FILTER}" ]]; then
  CTEST_ARGS+=(-R "${FILTER}")
fi

for config in ${CONFIGS}; do
  case "${config}" in
    release) dir=build;      cmake_args=(-DCMAKE_BUILD_TYPE=Release -DDYTIS_SANITIZE=) ;;
    tsan)    dir=build-tsan; cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DDYTIS_SANITIZE=thread) ;;
    asan)    dir=build-asan; cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DDYTIS_SANITIZE=address) ;;
    *) echo "unknown config '${config}' (want: release tsan asan)" >&2; exit 2 ;;
  esac
  echo "=== [${config}] configure + build (${dir}) ==="
  cmake -B "${dir}" -S . "${cmake_args[@]}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${config}] ctest ==="
  (cd "${dir}" && ctest "${CTEST_ARGS[@]}")
done

echo "=== all configs passed: ${CONFIGS} ==="
