#!/usr/bin/env python3
"""Regression gate for DyTIS bench JSON documents.

Compares two bench result files (a baseline and a candidate, each either a
single bench export like bench_results/fig12_concurrency.json or a merged
suite file like BENCH_20260809.json from scripts/run_bench_suite.sh) and
exits nonzero when any metric regressed past the threshold.

Comparison model
----------------
Both documents are flattened to dotted-path -> number leaves:

    results.3.dytis.insert_mops = 4.81
    results.3.dytis.perf.llc_misses = 1.2e9

Array elements are keyed by a stable identity (bench/dataset/threads/index/
workload fields when present, falling back to position), so reordered rows
still line up.  Only paths present in BOTH documents are compared; rows or
metrics present in only one file are summarized as "new"/"removed" lines —
always printed, informational only, and never a gate failure (a trajectory
that grows a bench must not fail the first comparison against its past).

Direction is inferred from the metric name:
  higher is better: *mops*, *throughput*, *speedup*, *ipc*, *ops_per_sec*
  lower is better:  *_ns, *latency*, *seconds*, *_misses, *retries*,
                    *fallback*, *dropped*, *torn*, *failures*, *collisions*
Anything else is neutral: reported when it moves, but never a failure
(counters like "ops" or "threads" describe the run, not its quality).

Noise floors: metrics below --min-abs (default 1e-6) in both files are
skipped, and a regression must exceed --threshold (default 0.30 = 30%,
bench runs on shared machines are noisy) relative change to fail.

Usage
-----
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.3]
    bench_compare.py --self-test

Exit codes: 0 ok / no regressions, 1 regressions found, 2 usage or I/O
error, 3 self-test failure.
"""

import argparse
import copy
import json
import sys

HIGHER_BETTER = ("mops", "throughput", "speedup", "ipc", "ops_per_sec")
LOWER_BETTER = (
    "_ns",
    "latency",
    "seconds",
    "_misses",
    "retries",
    "fallback",
    "dropped",
    "torn",
    "failures",
    "collisions",
)
# Path components whose subtrees describe the run configuration, not its
# quality; their numeric drift (e.g. a different key count) is skipped.
CONFIG_KEYS = {"keys_per_dataset", "ops", "threads", "obs_enabled"}


def direction(path):
    """Returns +1 (higher better), -1 (lower better), or 0 (neutral)."""
    leaf = path.rsplit(".", 1)[-1].lower()
    # p99/p50 latency leaves live under a "latency" parent; check full path.
    lowered = path.lower()
    for pat in HIGHER_BETTER:
        if pat in leaf:
            return +1
    for pat in LOWER_BETTER:
        if pat in leaf or (pat.strip("_") in lowered and pat.startswith("_")):
            return -1
    if "latency" in lowered and leaf.startswith(("p", "mean", "max", "min")):
        return -1
    return 0


def row_identity(obj, index):
    """Stable key for an array element so reordered rows still align."""
    if isinstance(obj, dict):
        parts = [
            f"{k}={obj[k]}"
            for k in ("bench", "workload", "index", "dataset", "threads")
            if k in obj and not isinstance(obj[k], (dict, list))
        ]
        if parts:
            return "[" + ",".join(parts) + "]"
    return f"[{index}]"


def flatten(node, prefix, out):
    if isinstance(node, dict):
        for k, v in node.items():
            flatten(v, f"{prefix}.{k}" if prefix else str(k), out)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            flatten(v, f"{prefix}{row_identity(v, i)}", out)
    elif isinstance(node, bool):
        pass  # booleans (supported/perf_unavailable) are not metrics
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)


def leaf_is_config(path):
    leaf = path.rsplit(".", 1)[-1]
    return leaf in CONFIG_KEYS


def row_prefix(path):
    """Groups a leaf path under its innermost array row (or its parent)."""
    i = path.rfind("]")
    if i >= 0:
        return path[: i + 1]
    parent = path.rsplit(".", 1)[0]
    return parent if parent else path


def one_sided_notes(paths, label):
    """Collapses one side's exclusive leaf paths to per-row summary lines."""
    groups = {}
    for path in paths:
        groups.setdefault(row_prefix(path), []).append(path)
    return [
        f"  {label}: {prefix} ({len(leaves)} metric(s))"
        for prefix, leaves in sorted(groups.items())
    ]


def compare(baseline, candidate, threshold, min_abs):
    """Returns (regressions, improvements, notes, details) report lines.

    notes summarize rows/metrics present in only one file ("new"/"removed"),
    one line per row; details list every such leaf path individually.
    Neither ever contributes to the gate decision.
    """
    base, cand = {}, {}
    flatten(baseline, "", base)
    flatten(candidate, "", cand)
    regressions, improvements, details = [], [], []
    common = sorted(set(base) & set(cand))
    removed = sorted(set(base) - set(cand))
    added = sorted(set(cand) - set(base))
    notes = one_sided_notes(removed, "removed") + one_sided_notes(added, "new")
    for path in removed:
        details.append(f"  only in baseline:  {path}")
    for path in added:
        details.append(f"  only in candidate: {path}")
    for path in common:
        if leaf_is_config(path):
            continue
        b, c = base[path], cand[path]
        if abs(b) < min_abs and abs(c) < min_abs:
            continue
        if b == c:
            continue
        denom = max(abs(b), min_abs)
        rel = (c - b) / denom
        d = direction(path)
        line = f"{path}: {b:g} -> {c:g} ({rel:+.1%})"
        if d == 0:
            continue  # neutral metrics never gate
        worse = rel < 0 if d > 0 else rel > 0
        if worse and abs(rel) > threshold:
            regressions.append("  REGRESSION " + line)
        elif not worse and abs(rel) > threshold:
            improvements.append("  improved   " + line)
    return regressions, improvements, notes, details


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def run_compare(base_path, cand_path, threshold, min_abs, verbose):
    try:
        baseline = load(base_path)
        candidate = load(cand_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot load inputs: {e}", file=sys.stderr)
        return 2
    regressions, improvements, notes, details = compare(
        baseline, candidate, threshold, min_abs
    )
    print(
        f"bench_compare: {base_path} vs {cand_path} "
        f"(threshold {threshold:.0%})"
    )
    for line in regressions:
        print(line)
    for line in improvements:
        print(line)
    # New/removed rows always print (a growing trajectory is normal and
    # worth seeing) but never gate; --verbose expands them to leaf paths.
    for line in notes:
        print(line)
    if verbose:
        for line in details:
            print(line)
    if regressions:
        print(f"bench_compare: FAIL ({len(regressions)} regression(s))")
        return 1
    print(
        f"bench_compare: OK ({len(improvements)} improvement(s), "
        f"{len(notes)} new/removed row(s))"
    )
    return 0


def self_test():
    """Verifies the gate catches an injected regression and passes a no-op."""
    doc = {
        "bench": "fig12_concurrency",
        "keys_per_dataset": 200000,
        "results": [
            {
                "dataset": "RL",
                "threads": 4,
                "dytis": {
                    "insert_mops": 4.0,
                    "search_mops": 8.0,
                    "perf": {"cycles": 1000000, "ipc": 1.5},
                },
                "xindex": {"insert_mops": 1.0},
            },
            {
                "dataset": "TX",
                "threads": 4,
                "dytis": {"insert_mops": 3.0, "search_mops": 6.0},
                "xindex": {"insert_mops": 0.9},
            },
        ],
    }
    failures = []

    # 1. Identical documents must pass.
    r, i, _, _ = compare(doc, doc, threshold=0.3, min_abs=1e-6)
    if r or i:
        failures.append(f"identical docs flagged: {r + i}")

    # 2. An injected 50% throughput drop must be caught.
    hurt = copy.deepcopy(doc)
    hurt["results"][0]["dytis"]["insert_mops"] = 2.0
    r, _, _, _ = compare(doc, hurt, threshold=0.3, min_abs=1e-6)
    if len(r) != 1 or "insert_mops" not in r[0]:
        failures.append(f"injected throughput drop not caught: {r}")

    # 3. A latency metric (lower-better) doubling must be caught.
    lat = copy.deepcopy(doc)
    lat["results"][0]["dytis"]["append_ns"] = 100.0
    lat2 = copy.deepcopy(lat)
    lat2["results"][0]["dytis"]["append_ns"] = 250.0
    r, _, _, _ = compare(lat, lat2, threshold=0.3, min_abs=1e-6)
    if len(r) != 1 or "append_ns" not in r[0]:
        failures.append(f"latency regression not caught: {r}")

    # 4. Reordered rows must still align (no spurious regressions).
    reordered = copy.deepcopy(doc)
    reordered["results"].reverse()
    r, i, _, _ = compare(doc, reordered, threshold=0.3, min_abs=1e-6)
    if r or i:
        failures.append(f"row reorder produced diffs: {r + i}")

    # 5. A small (sub-threshold) wobble must NOT fail.
    wobble = copy.deepcopy(doc)
    wobble["results"][0]["dytis"]["insert_mops"] = 3.6  # -10%
    r, _, _, _ = compare(doc, wobble, threshold=0.3, min_abs=1e-6)
    if r:
        failures.append(f"sub-threshold wobble flagged: {r}")

    # 6. An improvement must not fail the gate.
    better = copy.deepcopy(doc)
    better["results"][0]["dytis"]["insert_mops"] = 8.0
    r, i, _, _ = compare(doc, better, threshold=0.3, min_abs=1e-6)
    if r:
        failures.append(f"improvement flagged as regression: {r}")
    if not i:
        failures.append("improvement not reported")

    # 7. Schema drift (new perf column) is a note, never a failure.
    grown = copy.deepcopy(doc)
    grown["results"][1]["dytis"]["perf"] = {"cycles": 5, "ipc": 1.0}
    r, _, notes, _ = compare(doc, grown, threshold=0.3, min_abs=1e-6)
    if r:
        failures.append(f"schema growth flagged as regression: {r}")
    if not notes:
        failures.append("schema growth not noted")

    # 8. Whole rows present in only one file are summarized as new/removed
    #    notes — one line per row, never a regression, in both directions.
    grown_rows = copy.deepcopy(doc)
    grown_rows["results"].append(
        {
            "dataset": "attack",
            "threads": 1,
            "dytis": {"insert_mops": 2.0, "degradation_factor": 45.0},
        }
    )
    r, _, notes, details = compare(doc, grown_rows, threshold=0.3, min_abs=1e-6)
    if r:
        failures.append(f"new row flagged as regression: {r}")
    if len(notes) != 1 or "new:" not in notes[0]:
        failures.append(f"new row not summarized as one note: {notes}")
    if len(details) != 3:  # insert_mops, degradation_factor, threads
        failures.append(f"new row leaf details wrong: {details}")
    r, _, notes, _ = compare(grown_rows, doc, threshold=0.3, min_abs=1e-6)
    if r:
        failures.append(f"removed row flagged as regression: {r}")
    if len(notes) != 1 or "removed:" not in notes[0]:
        failures.append(f"removed row not summarized as one note: {notes}")

    if failures:
        for f in failures:
            print(f"bench_compare --self-test: FAIL: {f}", file=sys.stderr)
        return 3
    print("bench_compare --self-test: OK (8 scenarios)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Compare two DyTIS bench JSON files; exit 1 on regression."
    )
    parser.add_argument("baseline", nargs="?", help="baseline JSON file")
    parser.add_argument("candidate", nargs="?", help="candidate JSON file")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="relative change that counts as a regression (default 0.30)",
    )
    parser.add_argument(
        "--min-abs",
        type=float,
        default=1e-6,
        help="ignore metrics below this magnitude in both files",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also print schema differences"
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in scenario checks and exit",
    )
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required")
    sys.exit(
        run_compare(
            args.baseline,
            args.candidate,
            args.threshold,
            args.min_abs,
            args.verbose,
        )
    )


if __name__ == "__main__":
    main()
