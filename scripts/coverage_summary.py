#!/usr/bin/env python3
"""Line-coverage summary from gcov JSON, filtered to a source prefix.

Replacement for the usual `lcov --summary` step: the CI image ships gcov
(part of gcc) but not lcov/gcovr, and the summary we gate on is small enough
to compute directly.  Walks a --coverage build tree for .gcda files, asks
gcov for JSON intermediate output, merges execution counts per source line
across translation units (headers like eh_table.h are compiled into many
TUs; a line is covered if ANY TU executed it), and prints a per-file table
plus a total for the requested prefixes.

Usage: coverage_summary.py [build_dir] [source_prefix...]
Defaults: build-cov src/core/ src/server/
Multiple prefixes are allowed (e.g. src/core/ src/sync/); a file is
included when it matches any of them, and the TOTAL row spans all.
"""
import collections
import glob
import json
import os
import subprocess
import sys


def gcov_json_docs(gcda_path):
    """Yields parsed gcov JSON documents for one .gcda file."""
    try:
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout", gcda_path],
            capture_output=True,
            check=True,
        )
    except (subprocess.CalledProcessError, FileNotFoundError):
        return
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def main():
    build_dir = sys.argv[1] if len(sys.argv) > 1 else "build-cov"
    prefixes = sys.argv[2:] if len(sys.argv) > 2 else ["src/core/",
                                                       "src/server/"]
    gcda_files = glob.glob(
        os.path.join(build_dir, "**", "*.gcda"), recursive=True
    )
    if not gcda_files:
        print(f"coverage: no .gcda files under {build_dir} "
              "(build with -DDYTIS_COVERAGE=ON and run the tests first)",
              file=sys.stderr)
        return 1

    # file -> line_number -> max execution count across TUs.
    lines = collections.defaultdict(dict)
    for gcda in gcda_files:
        for doc in gcov_json_docs(gcda):
            for f in doc.get("files", []):
                name = os.path.normpath(f.get("file", ""))
                prefix = next((p for p in prefixes if p in name), None)
                if prefix is None:
                    continue
                # Normalise to the repo-relative path.
                name = name[name.index(prefix):]
                per_file = lines[name]
                for ln in f.get("lines", []):
                    no = ln.get("line_number")
                    count = ln.get("count", 0)
                    if no is not None:
                        per_file[no] = max(per_file.get(no, 0), count)

    if not lines:
        print("coverage: no instrumented lines matched prefixes "
              f"{' '.join(prefixes)}", file=sys.stderr)
        return 1

    total_cov = total_lines = 0
    width = max(len(n) for n in lines) + 2
    print(f"\n=== line coverage for {' '.join(prefixes)} ({build_dir}) ===")
    for name in sorted(lines):
        per_file = lines[name]
        covered = sum(1 for c in per_file.values() if c > 0)
        n = len(per_file)
        total_cov += covered
        total_lines += n
        pct = 100.0 * covered / n if n else 0.0
        print(f"  {name:<{width}} {covered:>5}/{n:<5} {pct:6.1f}%")
    pct = 100.0 * total_cov / total_lines if total_lines else 0.0
    print(f"  {'TOTAL':<{width}} {total_cov:>5}/{total_lines:<5} {pct:6.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
