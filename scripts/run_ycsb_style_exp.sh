#!/bin/sh
# Artifact experiment E2: the seven YCSB-style workloads (Load, A, B, C,
# D', E, F) over the five dynamic datasets for all indexes (Figure 8).
# Mirrors the paper artifact's scripts/run_ycsb_style_exp.sh.
#
#   DYTIS_BENCH_KEYS=... ./scripts/run_ycsb_style_exp.sh
set -eu
cd "$(dirname "$0")/.."
cmake -B build -G Ninja >/dev/null
cmake --build build --target bench_fig08_ycsb >/dev/null
mkdir -p benchmark/result
out="benchmark/result/ycsb_$(date +%Y%m%d_%H%M%S).log"
./build/bench/bench_fig08_ycsb | tee "$out"
echo "results saved to $out"
