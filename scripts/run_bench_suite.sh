#!/bin/sh
# Canonical bench-suite runner: builds the release tree, runs the figure
# benches that back the paper's headline claims (fig08 YCSB, table2
# latency, fig12 concurrency, recovery) plus the adversarial-robustness
# bench (bench_attack), and merges their JSON exports into one dated
# trajectory file at the repo root:
#
#   BENCH_<YYYYMMDD>.json
#
# Compare two runs with the regression gate:
#
#   python3 scripts/bench_compare.py BENCH_20260801.json BENCH_20260809.json
#
# Scale knobs (all optional, see bench/common.h):
#   DYTIS_BENCH_KEYS      keys per dataset        (default 200000)
#   DYTIS_BENCH_OPS       ops per workload        (default keys/2)
#   DYTIS_BENCH_READ_OPS  fig12 read-scaling ops  (default ops*10)
#   DYTIS_SUITE_BENCHES   space-separated bench binaries to run
#                         (default: the four below)
#   DYTIS_SUITE_OUT       output path (default BENCH_<YYYYMMDD>.json)
set -eu
cd "$(dirname "$0")/.."

BENCHES="${DYTIS_SUITE_BENCHES:-bench_fig08_ycsb bench_table2_latency bench_fig12_concurrency bench_recovery bench_attack bench_server}"
OUT="${DYTIS_SUITE_OUT:-BENCH_$(date +%Y%m%d).json}"

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null

EXPORT_DIR="$(mktemp -d)"
trap 'rm -rf "$EXPORT_DIR"' EXIT

for bench in $BENCHES; do
  bin="build/bench/$bench"
  if [ ! -x "$bin" ]; then
    # Bench binaries may live at the build root depending on generator.
    bin="build/$bench"
  fi
  if [ ! -x "$bin" ]; then
    echo "run_bench_suite: missing binary for $bench" >&2
    exit 2
  fi
  echo "== $bench =="
  DYTIS_BENCH_JSON_DIR="$EXPORT_DIR" "$bin"
done

# Merge the per-bench exports into one envelope with run metadata.
EXPORT_DIR="$EXPORT_DIR" OUT="$OUT" python3 - <<'PY'
import json, os, subprocess, sys, time

export_dir = os.environ["EXPORT_DIR"]
out = os.environ["OUT"]


def git_rev():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"], text=True
        ).strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def strip_buckets(node):
    """Drops raw latency-histogram bucket arrays: the percentile summary is
    what the trajectory tracks, and the buckets are ~95% of the bytes."""
    if isinstance(node, dict):
        node.pop("buckets", None)
        for v in node.values():
            strip_buckets(v)
    elif isinstance(node, list):
        for v in node:
            strip_buckets(v)


doc = {
    "suite": "dytis-bench-suite",
    "date": time.strftime("%Y-%m-%d %H:%M:%S"),
    "git_rev": git_rev(),
    "keys_per_dataset": int(os.environ.get("DYTIS_BENCH_KEYS", "200000")),
    "benches": {},
}
names = sorted(f for f in os.listdir(export_dir) if f.endswith(".json"))
if not names:
    print("run_bench_suite: no JSON exports produced", file=sys.stderr)
    sys.exit(2)
for name in names:
    with open(os.path.join(export_dir, name), encoding="utf-8") as f:
        bench = json.load(f)
    strip_buckets(bench)
    doc["benches"][name[: -len(".json")]] = bench
with open(out, "w", encoding="utf-8") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"run_bench_suite: merged {len(names)} bench export(s) into {out}")
PY
