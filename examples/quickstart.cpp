// Quickstart: the 60-second tour of the DyTIS public API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "src/core/dytis.h"

int main() {
  // A single-threaded DyTIS index mapping uint64 keys to uint64 values.
  // No bulk loading, no training phase: just start inserting.
  dytis::DyTIS<uint64_t> index;

  // Insert returns true for new keys; inserting an existing key updates its
  // value in place and returns false.
  index.Insert(42, 4200);
  index.Insert(7, 700);
  index.Insert(1000, 100000);
  const bool was_new = index.Insert(42, 4242);
  std::printf("re-inserting key 42: was_new=%s (value updated in place)\n",
              was_new ? "true" : "false");

  // Point lookup.
  uint64_t value = 0;
  if (index.Find(42, &value)) {
    std::printf("Find(42) -> %llu\n", static_cast<unsigned long long>(value));
  }
  std::printf("Find(43) -> %s\n", index.Find(43, nullptr) ? "hit" : "miss");

  // Range scan: keys come back in natural sorted order even though DyTIS is
  // hash-structured -- that is the paper's key trick (order-preserving
  // remapped keys instead of hash keys).
  for (uint64_t k = 0; k < 50; k++) {
    index.Insert(k * 2, k);
  }
  std::vector<std::pair<uint64_t, uint64_t>> out(5);
  const size_t got = index.Scan(/*start_key=*/40, /*count=*/5, out.data());
  std::printf("Scan(from=40, count=5):");
  for (size_t i = 0; i < got; i++) {
    std::printf(" %llu", static_cast<unsigned long long>(out[i].first));
  }
  std::printf("\n");

  // Deletion.
  index.Erase(7);
  std::printf("after Erase(7): Find(7) -> %s, size=%zu\n",
              index.Find(7, nullptr) ? "hit" : "miss", index.size());

  // The index keeps statistics about its structural adaptations.
  const auto& stats = index.stats();
  std::printf("structural ops so far: splits=%llu expansions=%llu "
              "remappings=%llu doublings=%llu\n",
              static_cast<unsigned long long>(stats.splits.load()),
              static_cast<unsigned long long>(stats.expansions.load()),
              static_cast<unsigned long long>(stats.remappings.load()),
              static_cast<unsigned long long>(stats.doublings.load()));

  // Thread-safe variant with the paper's two-level locking: same API.
  dytis::ConcurrentDyTIS<uint64_t> shared_index;
  shared_index.Insert(1, 1);
  std::printf("concurrent index size=%zu\n", shared_index.size());
  return 0;
}
