// Scenario: a product-review store with highly skewed keys (the paper's
// RM/RL datasets).
//
// Review keys concatenate [item:24][user:20][time:20], so popular items
// form dense clusters in an otherwise sparse key space -- the
// high-variance-of-skewness shape that forces DyTIS to refine sub-ranges
// and steal buckets (the remapping operation).  The example:
//   1. ingests reviews arriving in time order,
//   2. serves "all reviews of item X" via prefix scans,
//   3. deletes a spam user's reviews,
// and reports the remapping activity driven by the skew.
#include <cstdio>
#include <vector>

#include "src/core/dytis.h"
#include "src/datasets/generators.h"
#include "src/util/timer.h"

namespace {

constexpr int kItemShift = 40;

uint64_t ItemOf(uint64_t key) { return key >> kItemShift; }
uint64_t UserOf(uint64_t key) { return (key >> 20) & 0xfffff; }

}  // namespace

int main() {
  constexpr size_t kReviews = 300'000;
  dytis::ReviewGenOptions gen;
  gen.num_items = 20'000;
  const std::vector<uint64_t> reviews =
      dytis::GenerateReviewKeys(kReviews, /*seed=*/99, gen);

  dytis::DyTISConfig config;
  config.first_level_bits = 5;
  config.l_start = 4;
  dytis::DyTIS<uint64_t> store(config);

  dytis::Timer timer;
  for (size_t i = 0; i < reviews.size(); i++) {
    store.Insert(reviews[i], /*rating=*/1 + i % 5);
  }
  std::printf("ingested %zu reviews at %.2f Mops/s\n", store.size(),
              static_cast<double>(reviews.size()) / timer.ElapsedSeconds() /
                  1e6);
  std::printf("skew-driven structure: %llu remappings, %llu splits, "
              "%zu segments\n",
              static_cast<unsigned long long>(store.stats().remappings.load()),
              static_cast<unsigned long long>(store.stats().splits.load()),
              store.NumSegments());

  // "All reviews of item X": scan from the item's prefix until the item id
  // changes.  Pick the item of a mid-stream review (likely popular).
  const uint64_t item = ItemOf(reviews[kReviews / 2]);
  const uint64_t prefix = item << kItemShift;
  std::vector<std::pair<uint64_t, uint64_t>> batch(256);
  size_t item_reviews = 0;
  double rating_sum = 0;
  uint64_t cursor = prefix;
  for (;;) {
    const size_t got = store.Scan(cursor, batch.size(), batch.data());
    size_t used = 0;
    for (; used < got && ItemOf(batch[used].first) == item; used++) {
      item_reviews++;
      rating_sum += static_cast<double>(batch[used].second);
    }
    if (used < got || got < batch.size()) {
      break;  // ran past the item (or out of keys)
    }
    cursor = batch[got - 1].first + 1;
  }
  std::printf("item %llu has %zu reviews, average rating %.2f\n",
              static_cast<unsigned long long>(item), item_reviews,
              item_reviews ? rating_sum / static_cast<double>(item_reviews)
                           : 0.0);

  // Moderation: delete every review by one user (full scan + erase).
  const uint64_t spam_user = UserOf(reviews[0]);
  std::vector<uint64_t> to_delete;
  store.ForEach([&](uint64_t key, uint64_t) {
    if (UserOf(key) == spam_user) {
      to_delete.push_back(key);
    }
  });
  for (uint64_t key : to_delete) {
    store.Erase(key);
  }
  std::printf("deleted %zu reviews by user %llu; store now holds %zu\n",
              to_delete.size(), static_cast<unsigned long long>(spam_user),
              store.size());
  return 0;
}
