// Artifact-style benchmark runner (paper appendix E1): insert, search, and
// scan throughput of DyTIS over a key file.
//
//   ./build/examples/file_benchmark <keys.csv|keys.sosd> [limit]
//
// Accepts the artifact's CSV format (one key per line; header lines are
// skipped) or SOSD binary (u64 count + u64 keys).  Without arguments it
// generates and uses a synthetic review-style dataset, mirroring the
// artifact's bundled review-small.csv.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/dytis.h"
#include "src/datasets/file_loader.h"
#include "src/datasets/generators.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace {

dytis::DyTISConfig ConfigFor(size_t num_keys) {
  dytis::DyTISConfig config;
  int r = 0;
  while (r < 9 && (num_keys >> (r + 1)) >= 4096) {
    r++;
  }
  config.first_level_bits = r;
  config.l_start = 4;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<uint64_t> keys;
  if (argc >= 2) {
    const size_t limit =
        argc >= 3 ? static_cast<size_t>(std::atoll(argv[2])) : 0;
    auto loaded = dytis::LoadKeysFromFile(argv[1], limit);
    if (!loaded) {
      std::fprintf(stderr, "error: cannot load keys from %s\n", argv[1]);
      return 1;
    }
    keys = std::move(*loaded);
    std::printf("loaded %zu keys from %s\n", keys.size(), argv[1]);
  } else {
    keys = dytis::GenerateReviewKeys(1'000'000, /*seed=*/42);
    std::printf("no file given; generated %zu review-style keys "
                "(artifact's review-small equivalent)\n",
                keys.size());
  }
  // Files may contain duplicates; deduplicate preserving order so that
  // insert counts match unique keys (as the artifact's loader does).
  {
    std::unordered_set<uint64_t> seen;
    seen.reserve(keys.size() * 2);
    std::vector<uint64_t> unique;
    unique.reserve(keys.size());
    for (uint64_t k : keys) {
      if (seen.insert(k).second) {
        unique.push_back(k);
      }
    }
    if (unique.size() != keys.size()) {
      std::printf("deduplicated: %zu -> %zu keys\n", keys.size(),
                  unique.size());
    }
    keys = std::move(unique);
  }

  dytis::DyTIS<uint64_t> index(ConfigFor(keys.size()));

  // Insert.
  dytis::Timer timer;
  for (uint64_t k : keys) {
    index.Insert(k, k ^ 0x5a5a);
  }
  const double insert_s = timer.ElapsedSeconds();
  std::printf("insert: %10.3f Mops/s  (%zu keys in %.2fs)\n",
              static_cast<double>(keys.size()) / insert_s / 1e6, keys.size(),
              insert_s);

  // Search (zipfian over the inserted population).
  const size_t search_ops = keys.size();
  dytis::ScrambledZipfianGenerator zipf(keys.size(), 0.99, 7);
  timer.Reset();
  uint64_t value = 0;
  for (size_t i = 0; i < search_ops; i++) {
    index.Find(keys[zipf.Next()], &value);
  }
  std::printf("search: %10.3f Mops/s\n",
              static_cast<double>(search_ops) / timer.ElapsedSeconds() / 1e6);

  // Scan (length 100).
  const size_t scan_ops = keys.size() / 100 + 1;
  std::vector<std::pair<uint64_t, uint64_t>> buf(100);
  timer.Reset();
  for (size_t i = 0; i < scan_ops; i++) {
    index.Scan(keys[zipf.Next()], buf.size(), buf.data());
  }
  std::printf("scan:   %10.3f Mscans/s (100 keys each)\n",
              static_cast<double>(scan_ops) / timer.ElapsedSeconds() / 1e6);

  const auto& s = index.stats();
  std::printf("structure: %llu splits, %llu expansions, %llu remappings, "
              "%llu doublings; %.1f MiB\n",
              static_cast<unsigned long long>(s.splits.load()),
              static_cast<unsigned long long>(s.expansions.load()),
              static_cast<unsigned long long>(s.remappings.load()),
              static_cast<unsigned long long>(s.doublings.load()),
              static_cast<double>(index.MemoryBytes()) / (1024 * 1024));
  return 0;
}
