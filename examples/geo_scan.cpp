// Scenario: geospatial range queries over map keys (the paper's MM/ML
// datasets).
//
// OSM-style keys pack (longitude, latitude) into one integer with the
// longitude in the high bits, so a scan over a key range is a query for
// "all points in a longitude band".  This example loads a continent's worth
// of synthetic map points and runs longitude-band queries, comparing DyTIS
// with the B+-tree baseline on identical data -- the scenario where an
// index must be good at *both* inserts (bulk region loads) and scans.
#include <cstdio>
#include <vector>

#include "src/baselines/btree.h"
#include "src/core/dytis.h"
#include "src/datasets/generators.h"
#include "src/util/timer.h"

namespace {

uint64_t LonBandLow(double lon01) {
  const uint64_t lon_bits = static_cast<uint64_t>(
      lon01 * static_cast<double>((uint64_t{1} << 32) - 1));
  return lon_bits << 31;
}

}  // namespace

int main() {
  constexpr size_t kPoints = 300'000;
  const std::vector<uint64_t> points =
      dytis::GenerateMapKeys(kPoints, /*seed=*/7);

  dytis::DyTISConfig config;
  config.first_level_bits = 5;
  config.l_start = 4;
  dytis::DyTIS<uint64_t> index(config);
  dytis::BPlusTree<uint64_t, 128> btree;

  dytis::Timer timer;
  for (size_t i = 0; i < points.size(); i++) {
    index.Insert(points[i], i);  // value = point id
  }
  const double dytis_load = timer.ElapsedSeconds();
  timer.Reset();
  for (size_t i = 0; i < points.size(); i++) {
    btree.Insert(points[i], i);
  }
  const double btree_load = timer.ElapsedSeconds();
  std::printf("loaded %zu map points: DyTIS %.2fs, B+-tree %.2fs\n",
              points.size(), dytis_load, btree_load);

  // Longitude-band queries: fetch up to 1000 points starting at each band.
  constexpr size_t kQueries = 2'000;
  constexpr size_t kPerQuery = 1'000;
  std::vector<std::pair<uint64_t, uint64_t>> out(kPerQuery);
  size_t dytis_total = 0;
  timer.Reset();
  for (size_t q = 0; q < kQueries; q++) {
    const double band = static_cast<double>(q) / kQueries;
    dytis_total += index.Scan(LonBandLow(band), kPerQuery, out.data());
  }
  const double dytis_scan = timer.ElapsedSeconds();
  size_t btree_total = 0;
  timer.Reset();
  for (size_t q = 0; q < kQueries; q++) {
    const double band = static_cast<double>(q) / kQueries;
    btree_total += btree.Scan(LonBandLow(band), kPerQuery, out.data());
  }
  const double btree_scan = timer.ElapsedSeconds();

  std::printf("band scans (%zu x up to %zu points):\n", kQueries, kPerQuery);
  std::printf("  DyTIS   %8.2f Mpoints/s (%zu points)\n",
              static_cast<double>(dytis_total) / dytis_scan / 1e6,
              dytis_total);
  std::printf("  B+-tree %8.2f Mpoints/s (%zu points)\n",
              static_cast<double>(btree_total) / btree_scan / 1e6,
              btree_total);

  // Spot-check: both indexes agree on a band's contents.
  std::vector<std::pair<uint64_t, uint64_t>> a(64);
  std::vector<std::pair<uint64_t, uint64_t>> b(64);
  const size_t na = index.Scan(LonBandLow(0.5), 64, a.data());
  const size_t nb = btree.Scan(LonBandLow(0.5), 64, b.data());
  bool agree = na == nb;
  for (size_t i = 0; agree && i < na; i++) {
    agree = a[i] == b[i];
  }
  std::printf("cross-check at lon=0.5: %s\n",
              agree ? "DyTIS and B+-tree agree" : "MISMATCH");
  return agree ? 0 : 1;
}
