// Scenario: indexing a live taxi-trip stream (the paper's TX dataset).
//
// Trip records arrive in pickup-time order, so the key distribution drifts
// continuously (high key distribution divergence) -- the workload that
// motivates DyTIS's bulk-load-free, locally-retrained design.  The example
// ingests a synthetic four-year trip stream and, every "quarter", answers
// the kind of queries a dispatch dashboard would run:
//   * point lookups of known trips,
//   * a scan of the 100 trips that follow a given pickup instant,
// while printing how the index adapts (structural-operation counters).
#include <cstdio>
#include <vector>

#include "src/core/dytis.h"
#include "src/datasets/generators.h"
#include "src/util/timer.h"

namespace {

// Taxi keys are [pickup_seconds:34][duration_centis:30] (see
// src/datasets/generators.h); this extracts the pickup time back.
uint64_t PickupOf(uint64_t key) { return key >> 30; }

}  // namespace

int main() {
  constexpr size_t kTrips = 400'000;
  const std::vector<uint64_t> trips =
      dytis::GenerateTaxiKeys(kTrips, /*seed=*/2026);

  dytis::DyTISConfig config;
  config.first_level_bits = 5;  // scaled for a few hundred thousand keys
  config.l_start = 4;
  dytis::DyTIS<uint64_t> index(config);

  std::printf("%-8s %12s %14s %10s %10s %10s\n", "quarter", "trips",
              "ins Mops/s", "splits", "remaps", "expands");
  const size_t quarter = kTrips / 16;
  dytis::Timer total;
  for (size_t q = 0; q < 16; q++) {
    dytis::Timer timer;
    for (size_t i = q * quarter; i < (q + 1) * quarter; i++) {
      index.Insert(trips[i], /*fare_cents=*/1000 + i % 4000);
    }
    const auto& s = index.stats();
    std::printf("%-8zu %12zu %14.2f %10llu %10llu %10llu\n", q + 1,
                index.size(),
                static_cast<double>(quarter) / timer.ElapsedSeconds() / 1e6,
                static_cast<unsigned long long>(s.splits.load()),
                static_cast<unsigned long long>(s.remappings.load()),
                static_cast<unsigned long long>(s.expansions.load()));
  }
  std::printf("ingested %zu trips in %.2fs\n", index.size(),
              total.ElapsedSeconds());

  // Dashboard query 1: look up a known trip.
  uint64_t fare = 0;
  const uint64_t probe = trips[kTrips / 2];
  if (index.Find(probe, &fare)) {
    std::printf("trip@pickup=%llu: fare=%llu cents\n",
                static_cast<unsigned long long>(PickupOf(probe)),
                static_cast<unsigned long long>(fare));
  }

  // Dashboard query 2: the 100 trips that started right after that one.
  std::vector<std::pair<uint64_t, uint64_t>> window(100);
  const size_t got = index.Scan(probe, window.size(), window.data());
  uint64_t span_seconds = 0;
  if (got > 1) {
    span_seconds = PickupOf(window[got - 1].first) - PickupOf(window[0].first);
  }
  std::printf("next %zu trips span %llu seconds of pickups\n", got,
              static_cast<unsigned long long>(span_seconds));

  std::printf("index memory: %.1f MiB for %zu trips (%.1f bytes/trip)\n",
              static_cast<double>(index.MemoryBytes()) / (1024 * 1024),
              index.size(),
              static_cast<double>(index.MemoryBytes()) /
                  static_cast<double>(index.size()));
  return 0;
}
