// Interactive (and pipeable) key/value shell over a DyTIS index — the
// smallest possible "data management system" from the paper's introduction.
//
//   ./build/examples/kv_shell
//   echo 'put 5 50\nget 5\nscan 0 3\nstats' | ./build/examples/kv_shell
//
// Commands:
//   put <key> <value>       insert or update
//   get <key>               point lookup
//   del <key>               delete
//   scan <start> <count>    range scan
//   count <lo> <hi>         keys in [lo, hi)
//   save <path> / load <path>   snapshot persistence
//   stats                   structural counters + memory
//   help, quit
#include <cstdio>
#include <cstring>
#include <inttypes.h>
#include <memory>
#include <string>
#include <vector>

#include "src/core/dytis.h"
#include "src/core/snapshot.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands: put <k> <v> | get <k> | del <k> | scan <start> <n> |\n"
      "          count <lo> <hi> | save <path> | load <path> | stats |\n"
      "          help | quit\n");
}

void PrintStats(const dytis::DyTIS<uint64_t>& index) {
  const auto& s = index.stats();
  std::printf("keys=%zu segments=%zu memory=%.2fMiB\n", index.size(),
              index.NumSegments(),
              static_cast<double>(index.MemoryBytes()) / (1024 * 1024));
  std::printf("splits=%" PRIu64 " expansions=%" PRIu64 " remappings=%" PRIu64
              " doublings=%" PRIu64 " merges=%" PRIu64 " stash=%" PRIu64 "\n",
              s.splits.load(), s.expansions.load(), s.remappings.load(),
              s.doublings.load(), s.merges.load(), s.stash_inserts.load());
}

}  // namespace

int main() {
  auto index = std::make_unique<dytis::DyTIS<uint64_t>>();
  std::printf("DyTIS shell — 'help' for commands\n");
  char line[512];
  while (std::printf("> "), std::fflush(stdout),
         std::fgets(line, sizeof(line), stdin) != nullptr) {
    char cmd[16] = {0};
    uint64_t a = 0;
    uint64_t b = 0;
    char path[256] = {0};
    if (std::sscanf(line, "%15s", cmd) != 1) {
      continue;
    }
    if (std::strcmp(cmd, "quit") == 0 || std::strcmp(cmd, "exit") == 0) {
      break;
    }
    if (std::strcmp(cmd, "help") == 0) {
      PrintHelp();
    } else if (std::sscanf(line, "put %" SCNu64 " %" SCNu64, &a, &b) == 2) {
      const bool is_new = index->Insert(a, b);
      std::printf("%s %" PRIu64 "\n", is_new ? "inserted" : "updated", a);
    } else if (std::sscanf(line, "get %" SCNu64, &a) == 1) {
      uint64_t v = 0;
      if (index->Find(a, &v)) {
        std::printf("%" PRIu64 " -> %" PRIu64 "\n", a, v);
      } else {
        std::printf("(not found)\n");
      }
    } else if (std::sscanf(line, "del %" SCNu64, &a) == 1) {
      std::printf("%s\n", index->Erase(a) ? "deleted" : "(not found)");
    } else if (std::sscanf(line, "scan %" SCNu64 " %" SCNu64, &a, &b) == 2) {
      const size_t want = static_cast<size_t>(b > 1000 ? 1000 : b);
      std::vector<std::pair<uint64_t, uint64_t>> out(want);
      const size_t got = index->Scan(a, want, out.data());
      for (size_t i = 0; i < got; i++) {
        std::printf("%" PRIu64 " -> %" PRIu64 "\n", out[i].first,
                    out[i].second);
      }
      std::printf("(%zu entries)\n", got);
    } else if (std::sscanf(line, "count %" SCNu64 " %" SCNu64, &a, &b) == 2) {
      std::printf("%zu keys in [%" PRIu64 ", %" PRIu64 ")\n",
                  index->CountRange(a, b), a, b);
    } else if (std::sscanf(line, "save %255s", path) == 1) {
      std::printf("%s\n", dytis::SaveSnapshot(*index, path) ? "saved"
                                                            : "save FAILED");
    } else if (std::sscanf(line, "load %255s", path) == 1) {
      auto loaded = dytis::LoadSnapshot<uint64_t>(path);
      if (loaded != nullptr) {
        index = std::move(loaded);
        std::printf("loaded %zu keys\n", index->size());
      } else {
        std::printf("load FAILED\n");
      }
    } else if (std::strcmp(cmd, "stats") == 0) {
      PrintStats(*index);
    } else {
      std::printf("unknown command; 'help' lists them\n");
    }
  }
  std::printf("\n");
  return 0;
}
