// Characterise any key file (or a built-in synthetic dataset) the way the
// paper characterises its datasets in Section 2.1:
//
//   ./build/examples/dataset_report [keys.csv|keys.sosd | MM|ML|RM|RL|TX]
//
// Prints the variance-of-skewness metric, the key distribution divergence,
// a per-decile density profile of the sorted key space (the Figure-2 view),
// and a KDD time series over the insert stream (the Figure-3 view) -- the
// numbers one needs to predict how DyTIS and learned indexes will behave on
// the data.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/dynamics.h"
#include "src/analysis/histogram.h"
#include "src/datasets/dataset.h"
#include "src/datasets/file_loader.h"
#include "src/learned/plr.h"

namespace {

void PrintDecileDensity(std::vector<uint64_t> keys) {
  std::sort(keys.begin(), keys.end());
  const uint64_t lo = keys.front();
  const uint64_t hi = keys.back();
  dytis::Histogram hist(lo, hi, 10);
  hist.AddAll(keys);
  std::printf("key-space density by decile (%% of keys per 10%% of range):\n ");
  for (size_t d = 0; d < 10; d++) {
    std::printf(" %5.1f", 100.0 * hist.Probability(d));
  }
  std::printf("\n");
}

void PrintKddSeries(const std::vector<uint64_t>& keys, size_t chunk) {
  const size_t chunks = keys.size() / chunk;
  if (chunks < 2) {
    return;
  }
  std::printf("KDD between consecutive sub-datasets (%zu keys each):\n ",
              chunk);
  const size_t show = std::min<size_t>(12, chunks - 1);
  for (size_t c = 0; c < show; c++) {
    std::vector<uint64_t> a(keys.begin() + static_cast<long>(c * chunk),
                            keys.begin() + static_cast<long>((c + 1) * chunk));
    std::vector<uint64_t> b(keys.begin() + static_cast<long>((c + 1) * chunk),
                            keys.begin() + static_cast<long>((c + 2) * chunk));
    uint64_t lo = a[0];
    uint64_t hi = a[0];
    for (uint64_t k : a) {
      lo = std::min(lo, k);
      hi = std::max(hi, k);
    }
    for (uint64_t k : b) {
      lo = std::min(lo, k);
      hi = std::max(hi, k);
    }
    dytis::Histogram ha(lo, hi, 256);
    dytis::Histogram hb(lo, hi, 256);
    ha.AddAll(a);
    hb.AddAll(b);
    std::printf(" %5.2f", dytis::KlDivergence(ha, hb));
  }
  std::printf("%s\n", show < chunks - 1 ? " ..." : "");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<uint64_t> keys;
  std::string name = "TX (default)";
  if (argc >= 2) {
    name = argv[1];
    // Built-in dataset names first, file paths otherwise.
    bool matched = false;
    for (dytis::DatasetId id : dytis::AllDatasetIds()) {
      if (name == dytis::DatasetShortName(id)) {
        keys = dytis::MakeDataset(id, 200'000, 42).keys;
        matched = true;
        break;
      }
    }
    if (!matched) {
      auto loaded = dytis::LoadKeysFromFile(name);
      if (!loaded) {
        std::fprintf(stderr,
                     "error: '%s' is neither a dataset name (MM ML RM RL TX "
                     "Uniform Lognormal Longlat Longitudes) nor a readable "
                     "key file\n",
                     name.c_str());
        return 1;
      }
      keys = std::move(*loaded);
    }
  } else {
    keys = dytis::MakeDataset(dytis::DatasetId::kTaxi, 200'000, 42).keys;
  }

  std::printf("dataset: %s (%zu keys)\n\n", name.c_str(), keys.size());

  dytis::DynamicsOptions opt;
  opt.keys_per_range = std::min<size_t>(100'000, keys.size() / 8 + 1);
  const auto c = dytis::MeasureDynamics(keys, opt);
  std::printf("variance of skewness: %8.2f  (PLR models per %zu-key range; "
              "1.0 = uniform)\n",
              c.skewness, opt.keys_per_range);
  std::printf("key distribution divergence: %.4f  (avg KL between "
              "consecutive sub-datasets)\n\n",
              c.kdd);

  PrintDecileDensity(keys);
  std::printf("\n");
  PrintKddSeries(keys, opt.keys_per_range);

  std::printf("\ninterpretation:\n");
  std::printf("  skewness %s -> DyTIS will rely on %s\n",
              c.skewness > 5 ? "HIGH" : (c.skewness > 2 ? "medium" : "low"),
              c.skewness > 5 ? "remapping (sub-range refinement and bucket "
                               "stealing)"
                             : "splits and expansions");
  std::printf("  KDD %s -> %s\n",
              c.kdd > 5 ? "HIGH" : (c.kdd > 0.5 ? "medium" : "low"),
              c.kdd > 5 ? "bulk-loaded learned indexes will need heavy "
                          "retraining; DyTIS adjusts locally"
                        : "the key distribution is stable over time");
  return 0;
}
