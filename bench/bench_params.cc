// Section 4.3, parameter effect: sweeps of the DyTIS control parameters
// against the default configuration.  Reported per parameter value:
// insert / search / scan throughput normalised to the default setting,
// averaged over three representative datasets (low-skew MM, high-skew RM,
// high-KDD TX).
//
// Paper shape (ranges quoted in Section 4.3):
//   B_size 1/2/4KB      insert -16..0%, search -10..+13%, scan -13..+3%
//   L_start 4..10       insert -11..+7%
//   R  7..13            insert -7..+6%
//   U_t 0.5..0.7        insert -13..+7%
//   Limit_seg large     hurts high-skew inserts, helps uniform search/scan
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/common.h"
#include "src/core/dytis.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

struct Perf {
  double insert_mops = 0.0;
  double search_mops = 0.0;
  double scan_mops = 0.0;
};

Perf Measure(const DyTISConfig& config, const Dataset& d, size_t ops) {
  Perf p;
  DyTIS<uint64_t> index(config);
  Timer timer;
  for (uint64_t k : d.keys) {
    index.Insert(k, ValueFor(k));
  }
  p.insert_mops =
      static_cast<double>(d.keys.size()) / timer.ElapsedSeconds() / 1e6;
  ScrambledZipfianGenerator zipf(d.keys.size(), 0.99, 11);
  timer.Reset();
  uint64_t value;
  for (size_t i = 0; i < ops; i++) {
    index.Find(d.keys[zipf.Next()], &value);
  }
  p.search_mops = static_cast<double>(ops) / timer.ElapsedSeconds() / 1e6;
  const size_t scans = ops / 100 + 1;
  std::vector<std::pair<uint64_t, uint64_t>> buf(100);
  timer.Reset();
  for (size_t i = 0; i < scans; i++) {
    index.Scan(d.keys[zipf.Next()], 100, buf.data());
  }
  p.scan_mops = static_cast<double>(scans) / timer.ElapsedSeconds() / 1e6;
  return p;
}

Perf AverageOverDatasets(const DyTISConfig& config, size_t n, size_t ops) {
  Perf sum;
  const DatasetId ids[] = {DatasetId::kMapM, DatasetId::kReviewM,
                           DatasetId::kTaxi};
  for (DatasetId id : ids) {
    const Perf p = Measure(config, bench::CachedDataset(id, n), ops);
    sum.insert_mops += p.insert_mops;
    sum.search_mops += p.search_mops;
    sum.scan_mops += p.scan_mops;
  }
  sum.insert_mops /= 3;
  sum.search_mops /= 3;
  sum.scan_mops /= 3;
  return sum;
}

void Sweep(const char* param, const std::vector<std::string>& labels,
           const std::vector<std::function<void(DyTISConfig*)>>& mods,
           const DyTISConfig& base, const Perf& baseline, size_t n,
           size_t ops) {
  std::printf("\n[%s]\n%-12s %10s %10s %10s\n", param, "value", "insert",
              "search", "scan");
  for (size_t i = 0; i < mods.size(); i++) {
    DyTISConfig config = base;
    mods[i](&config);
    const Perf p = AverageOverDatasets(config, n, ops);
    std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n", labels[i].c_str(),
                (p.insert_mops / baseline.insert_mops - 1.0) * 100.0,
                (p.search_mops / baseline.search_mops - 1.0) * 100.0,
                (p.scan_mops / baseline.scan_mops - 1.0) * 100.0);
    std::fflush(stdout);
  }
}

int Main() {
  const size_t n = bench::BenchKeys();
  const size_t ops = bench::BenchOps();
  bench::PrintScale(
      "Parameter effect (Section 4.3): % change vs scaled default");
  const DyTISConfig base = bench::ScaledDyTISConfig(n);
  std::printf("# default: R=%d B_size=%zuB L_start=%d U_t=%.2f limit=%ux\n",
              base.first_level_bits, base.bucket_bytes, base.l_start,
              base.util_threshold, base.limit_multiplier);
  const Perf baseline = AverageOverDatasets(base, n, ops);
  std::printf("baseline     %9.3f %10.3f %10.3f  (Mops/s)\n",
              baseline.insert_mops, baseline.search_mops, baseline.scan_mops);

  Sweep("B_size", {"1KB", "4KB"},
        {[](DyTISConfig* c) { c->bucket_bytes = 1024; },
         [](DyTISConfig* c) { c->bucket_bytes = 4096; }},
        base, baseline, n, ops);

  Sweep("L_start", {"-2", "+2", "+4"},
        {[&](DyTISConfig* c) { c->l_start = base.l_start - 2; },
         [&](DyTISConfig* c) { c->l_start = base.l_start + 2; },
         [&](DyTISConfig* c) { c->l_start = base.l_start + 4; }},
        base, baseline, n, ops);

  Sweep("R", {"-2", "+2"},
        {[&](DyTISConfig* c) {
           c->first_level_bits = std::max(0, base.first_level_bits - 2);
         },
         [&](DyTISConfig* c) { c->first_level_bits = base.first_level_bits + 2; }},
        base, baseline, n, ops);

  Sweep("U_t", {"0.50", "0.55", "0.65", "0.70"},
        {[](DyTISConfig* c) { c->util_threshold = 0.50; },
         [](DyTISConfig* c) { c->util_threshold = 0.55; },
         [](DyTISConfig* c) { c->util_threshold = 0.65; },
         [](DyTISConfig* c) { c->util_threshold = 0.70; }},
        base, baseline, n, ops);

  Sweep("Limit_seg", {"8x", "128x"},
        {[](DyTISConfig* c) { c->limit_multiplier = 8; },
         [](DyTISConfig* c) { c->limit_multiplier = 128; }},
        base, baseline, n, ops);
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
