// Durability overhead and recovery speed (robustness extension; not a paper
// figure).
//
// Three questions, one row each:
//   1. What does the WAL cost the insert path?  Throughput with durability
//      off vs. buffered logging (no fsync) vs. group commit vs. synchronous
//      logging — the off row is the fig08-comparable baseline and must stay
//      within noise of the plain index (the wrapper is a pass-through).
//   2. What does a checkpoint cost?  Wall time and bytes for a full v2
//      snapshot of the loaded index.
//   3. How fast is recovery?  Wall time to reopen the directory, replay the
//      WAL tail onto the checkpoint, and verify invariants.
//
// JSON export (src/obs/bench_export.h): one document with a "modes" array
// plus "checkpoint" and "recovery" objects, so EXPERIMENTS.md rows are
// machine-checkable.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/recovery/durable_dytis.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace dytis {
namespace {

using recovery::DurableDyTIS;
using recovery::RecoveryConfig;

struct ModeRow {
  std::string name;
  uint64_t sync_every = 0;
  bool durable = false;
  size_t ops = 0;
  double seconds = 0.0;
  double mops = 0.0;
};

uint64_t DirFileBytes(const std::string& path) {
  struct ::stat st {};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

void RemoveDurabilityFiles(const std::string& dir) {
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/checkpoint.dytis").c_str());
  std::remove(dir.c_str());
}

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Durability overhead & recovery (robustness extension)");
  JsonValue root = obs::BenchEnvelope("recovery", n, n);

  // Insert workload: n random keys, same distribution for every mode.
  std::vector<ModeRow> modes = {
      {"durability-off", 0, false, n},
      {"wal-buffered", 0, true, n},
      {"wal-group-64", 64, true, n},
      // fsync-per-op is orders of magnitude slower; keep the row honest but
      // affordable by capping its op count.
      {"wal-sync-1", 1, true, std::min<size_t>(n, 20'000)},
  };
  JsonValue mode_rows = JsonValue::Array();
  std::printf("%-16s %12s %10s %12s\n", "mode", "ops", "seconds", "Mops/s");
  for (ModeRow& mode : modes) {
    std::string tmpl = "/tmp/dytis_bench_recovery_XXXXXX";
    const char* dir = ::mkdtemp(tmpl.data());
    RecoveryConfig rc;
    if (mode.durable) {
      rc.dir = dir != nullptr ? tmpl : "/tmp/dytis_bench_recovery_fallback";
      rc.wal_sync_every = mode.sync_every;
    }
    std::string error;
    auto db = DurableDyTIS<uint64_t>::Open(
        rc, bench::ScaledDyTISConfig(mode.ops), &error);
    if (db == nullptr) {
      std::fprintf(stderr, "open failed for %s: %s\n", mode.name.c_str(),
                   error.c_str());
      return 1;
    }
    Rng rng(42);
    Timer timer;
    for (size_t i = 0; i < mode.ops; i++) {
      db->Put(rng.Next(), i);
    }
    db->Sync(&error);
    mode.seconds = timer.ElapsedSeconds();
    mode.mops = static_cast<double>(mode.ops) / mode.seconds / 1e6;
    std::printf("%-16s %12zu %10.3f %12.2f\n", mode.name.c_str(), mode.ops,
                mode.seconds, mode.mops);
    std::fflush(stdout);
    JsonValue row = JsonValue::Object();
    row["mode"] = mode.name;
    row["ops"] = static_cast<uint64_t>(mode.ops);
    row["seconds"] = mode.seconds;
    row["mops"] = mode.mops;
    mode_rows.Append(std::move(row));
    db.reset();
    if (mode.durable) {
      RemoveDurabilityFiles(rc.dir);
    } else if (dir != nullptr) {
      std::remove(tmpl.c_str());
    }
  }
  root["modes"] = std::move(mode_rows);

  // Checkpoint cost + recovery speed, on one durable instance: load n keys
  // buffered, checkpoint, append a WAL tail of n/4 more ops, then reopen.
  std::string tmpl = "/tmp/dytis_bench_recovery_XXXXXX";
  const char* dir = ::mkdtemp(tmpl.data());
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  RecoveryConfig rc;
  rc.dir = tmpl;
  std::string error;
  {
    auto db =
        DurableDyTIS<uint64_t>::Open(rc, bench::ScaledDyTISConfig(n), &error);
    if (db == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    Rng rng(43);
    for (size_t i = 0; i < n; i++) {
      db->Put(rng.Next(), i);
    }
    Timer ckpt_timer;
    if (!db->Checkpoint(&error)) {
      std::fprintf(stderr, "checkpoint failed: %s\n", error.c_str());
      return 1;
    }
    const double ckpt_seconds = ckpt_timer.ElapsedSeconds();
    const uint64_t ckpt_bytes = DirFileBytes(rc.CheckpointPath());
    std::printf("checkpoint: %zu keys, %.1f MiB, %.3f s (%.1f MiB/s)\n",
                db->size(), static_cast<double>(ckpt_bytes) / (1 << 20),
                ckpt_seconds,
                static_cast<double>(ckpt_bytes) / (1 << 20) / ckpt_seconds);
    JsonValue ckpt = JsonValue::Object();
    ckpt["keys"] = static_cast<uint64_t>(db->size());
    ckpt["bytes"] = ckpt_bytes;
    ckpt["seconds"] = ckpt_seconds;
    root["checkpoint"] = std::move(ckpt);
    // WAL tail past the checkpoint.
    for (size_t i = 0; i < n / 4; i++) {
      db->Put(rng.Next(), i);
    }
    db->Sync(&error);
  }
  Timer recovery_timer;
  auto db =
      DurableDyTIS<uint64_t>::Open(rc, bench::ScaledDyTISConfig(n), &error);
  if (db == nullptr) {
    std::fprintf(stderr, "recovery failed: %s\n", error.c_str());
    return 1;
  }
  const double rec_seconds = recovery_timer.ElapsedSeconds();
  const auto& stats = db->recovery_stats();
  std::printf(
      "recovery: %zu keys (%llu from checkpoint + %llu WAL records), "
      "%.3f s (%.2f Mkeys/s)\n",
      db->size(), static_cast<unsigned long long>(stats.checkpoint_entries),
      static_cast<unsigned long long>(stats.wal_records_replayed), rec_seconds,
      static_cast<double>(db->size()) / rec_seconds / 1e6);
  JsonValue rec = JsonValue::Object();
  rec["keys"] = static_cast<uint64_t>(db->size());
  rec["checkpoint_entries"] = stats.checkpoint_entries;
  rec["wal_records_replayed"] = stats.wal_records_replayed;
  rec["seconds"] = rec_seconds;
  root["recovery"] = std::move(rec);
  db.reset();
  RemoveDurabilityFiles(rc.dir);

  const std::string json = obs::WriteBenchJson("recovery", root);
  if (!json.empty()) {
    std::printf("# json: %s\n", json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
