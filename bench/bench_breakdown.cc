// Section 4.3, insertion execution-time breakdown: where DyTIS spends its
// structural time during the Load phase (split / expansion / remapping /
// directory doubling), per dataset.
//
// Paper shape: RM/RL (high skew) are dominated by remapping; TX (high KDD)
// spends a large share on both remapping and expansion; remapping cost is
// ~58% memory copy + 42% function adjustment and is proportional to the
// segment size.
#include <cstdio>

#include "bench/common.h"
#include "src/core/dytis.h"
#include "src/obs/snapshot.h"
#include "src/util/timer.h"

namespace dytis {
namespace {

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Insertion breakdown (Section 4.3)");
  bench::TraceSession trace("breakdown");
  JsonValue root = obs::BenchEnvelope("breakdown", n, bench::BenchOps());
  JsonValue& results = root["results"];
  std::printf("%-8s %10s %8s %8s %8s %8s | %8s %8s %8s %8s %7s\n", "dataset",
              "load-ms", "splits", "expand", "remap", "double", "split%",
              "expand%", "remap%", "double%", "stash");
  for (DatasetId id : RealWorldDatasetIds()) {
    const Dataset& d = bench::CachedDataset(id, n);
    DyTIS<uint64_t> index(bench::ScaledDyTISConfig(n));
    Timer timer;
    for (uint64_t k : d.keys) {
      index.Insert(k, ValueFor(k));
    }
    const double total_ms = timer.ElapsedSeconds() * 1e3;
    const auto& s = index.stats();
    const double struct_ns = static_cast<double>(
        s.split_ns.load() + s.expansion_ns.load() + s.remap_ns.load() +
        s.doubling_ns.load());
    auto pct = [&](uint64_t ns) {
      return struct_ns > 0 ? 100.0 * static_cast<double>(ns) / struct_ns
                           : 0.0;
    };
    std::printf(
        "%-8s %10.1f %8llu %8llu %8llu %8llu | %7.1f%% %7.1f%% %7.1f%% "
        "%7.1f%% %7llu\n",
        d.name.c_str(), total_ms,
        static_cast<unsigned long long>(s.splits.load()),
        static_cast<unsigned long long>(s.expansions.load()),
        static_cast<unsigned long long>(s.remappings.load()),
        static_cast<unsigned long long>(s.doublings.load()),
        pct(s.split_ns.load()), pct(s.expansion_ns.load()),
        pct(s.remap_ns.load()), pct(s.doubling_ns.load()),
        static_cast<unsigned long long>(s.stash_inserts.load()));
    std::fflush(stdout);
    JsonValue row = JsonValue::Object();
    row["dataset"] = d.name;
    row["load_ms"] = total_ms;
    row["snapshot"] = obs::TakeSnapshot(index).ToJson();
    results.Append(std::move(row));
  }
  std::printf("# structural-time shares sum to 100%% of structural time, not "
              "of total load time\n");
  const std::string path = obs::WriteBenchJson("breakdown", root);
  if (!path.empty()) {
    std::printf("# json: %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
