// Figure 11: influence of the dynamic characteristics on index performance.
//
// (a) KDD effect: Load (insert) and workload-C (search) throughput of the
//     *original* datasets normalised to their *shuffled* versions, for
//     DyTIS, ALEX-10 and B+-tree.  Paper shape: higher KDD helps inserts
//     (spatial locality); B+-tree search is insensitive (ratio ~1); ALEX-10
//     search degrades most on high-KDD data (TX).
// (b) Skewness effect: shuffled datasets normalised to a same-size Uniform
//     dataset.  Paper shape: B+-tree ~1 everywhere; DyTIS robust to low
//     skew (MM/ML) but degraded by high skew (RM/RL); ALEX-10 sensitive to
//     any skew.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

struct Perf {
  double insert_mops;
  double search_mops;
};

Perf Measure(KVIndex* index, const Dataset& d, double bulk_fraction,
             size_t search_ops) {
  Perf p;
  YcsbOptions options;
  options.bulk_load_fraction = bulk_fraction;
  const YcsbResult load = RunLoad(index, d, options);
  p.insert_mops = load.throughput_mops;
  ScrambledZipfianGenerator zipf(d.keys.size(), 0.99, 5);
  Timer timer;
  uint64_t value;
  for (size_t i = 0; i < search_ops; i++) {
    index->Find(d.keys[zipf.Next()], &value);
  }
  p.search_mops =
      static_cast<double>(search_ops) / timer.ElapsedSeconds() / 1e6;
  return p;
}

struct Entry {
  const char* name;
  double bulk_fraction;
  std::unique_ptr<KVIndex> (*make)(size_t);
};

int Main() {
  const size_t n = bench::BenchKeys();
  const size_t ops = bench::BenchOps();
  bench::PrintScale("Figure 11: influence of KDD and skewness");
  const Entry entries[] = {
      {"DyTIS", 0.0, &bench::MakeDyTISCandidate},
      {"ALEX-10", 0.1, &bench::MakeAlex10},
      {"B+-tree", 0.0, &bench::MakeBTreeCandidate},
  };

  std::printf("\n(a) KDD effect: original / shuffled throughput\n");
  std::printf("%-8s", "dataset");
  for (const auto& e : entries) {
    std::printf("  %8s-ins %8s-srch", e.name, e.name);
  }
  std::printf("\n");
  for (DatasetId id : RealWorldDatasetIds()) {
    const Dataset& orig = bench::CachedDataset(id, n);
    const Dataset& shuf = bench::CachedDataset(id, n, /*shuffled=*/true);
    std::printf("%-8s", DatasetShortName(id));
    for (const auto& e : entries) {
      auto a = e.make(n);
      auto b = e.make(n);
      const Perf po = Measure(a.get(), orig, e.bulk_fraction, ops);
      const Perf ps = Measure(b.get(), shuf, e.bulk_fraction, ops);
      std::printf("  %12.2f %13.2f",
                  ps.insert_mops > 0 ? po.insert_mops / ps.insert_mops : 0,
                  ps.search_mops > 0 ? po.search_mops / ps.search_mops : 0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\n(b) skewness effect: shuffled / uniform throughput\n");
  std::printf("%-8s", "dataset");
  for (const auto& e : entries) {
    std::printf("  %8s-ins %8s-srch", e.name, e.name);
  }
  std::printf("\n");
  const Dataset& uniform = bench::CachedDataset(DatasetId::kUniform, n);
  for (DatasetId id : RealWorldDatasetIds()) {
    const Dataset& shuf = bench::CachedDataset(id, n, /*shuffled=*/true);
    std::printf("%-8s", DatasetShortName(id));
    for (const auto& e : entries) {
      auto a = e.make(n);
      auto b = e.make(n);
      const Perf ps = Measure(a.get(), shuf, e.bulk_fraction, ops);
      const Perf pu = Measure(b.get(), uniform, e.bulk_fraction, ops);
      std::printf("  %12.2f %13.2f",
                  pu.insert_mops > 0 ? ps.insert_mops / pu.insert_mops : 0,
                  pu.search_mops > 0 ? ps.search_mops / pu.search_mops : 0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
