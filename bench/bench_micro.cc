// Google-benchmark microbenchmarks: per-operation cost of every index on a
// Taxi-shaped key stream.  Complements the figure benches with
// statistically-stable per-op numbers.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/common.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

constexpr size_t kKeys = 100'000;

const Dataset& Data() {
  static const Dataset d = MakeDataset(DatasetId::kTaxi, kKeys, 42);
  return d;
}

std::unique_ptr<KVIndex> MakeLoaded(IndexKind kind) {
  auto index = MakeIndex(kind);
  for (uint64_t k : Data().keys) {
    index->Insert(k, ValueFor(k));
  }
  return index;
}

void BM_Insert(benchmark::State& state) {
  const auto kind = static_cast<IndexKind>(state.range(0));
  const auto& keys = Data().keys;
  for (auto _ : state) {
    state.PauseTiming();
    auto index = MakeIndex(kind);
    state.ResumeTiming();
    for (uint64_t k : keys) {
      index->Insert(k, ValueFor(k));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kKeys));
}

void BM_Find(benchmark::State& state) {
  const auto kind = static_cast<IndexKind>(state.range(0));
  auto index = MakeLoaded(kind);
  ScrambledZipfianGenerator zipf(kKeys, 0.99, 3);
  const auto& keys = Data().keys;
  uint64_t value = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Find(keys[zipf.Next()], &value));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_Scan100(benchmark::State& state) {
  const auto kind = static_cast<IndexKind>(state.range(0));
  auto index = MakeLoaded(kind);
  if (!index->SupportsScan()) {
    state.SkipWithError("index does not support scans");
    return;
  }
  ScrambledZipfianGenerator zipf(kKeys, 0.99, 4);
  const auto& keys = Data().keys;
  std::vector<KVIndex::ScanEntry> buf(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Scan(keys[zipf.Next()], 100, buf.data()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 100));
}

// Single-threaded read-path cost on the concurrent build: the same loaded
// index probed through the per-segment shared lock (Arg 0) and the
// optimistic lock-free probe (Arg 1).  Guards the "optimistic reads are
// free when uncontended" property: the two must stay within a few percent
// of each other — the optimistic path's version validation and atomic
// element loads must not tax the common case.
void BM_ConcurrentFind(benchmark::State& state) {
  DyTISConfig cfg = bench::ScaledDyTISConfig(kKeys);
  cfg.optimistic_reads = state.range(0) != 0;
  ConcurrentDyTIS<uint64_t> index(cfg);
  for (uint64_t k : Data().keys) {
    index.Insert(k, ValueFor(k));
  }
  ScrambledZipfianGenerator zipf(kKeys, 0.99, 5);
  const auto& keys = Data().keys;
  uint64_t value = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Find(keys[zipf.Next()], &value));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(state.range(0) != 0 ? "optimistic" : "locked");
}

// Reclamation overhead on the concurrent build: erase/re-insert churn whose
// structural rebuilds retire cores through the epoch domain, so every
// erase/insert pair pays its amortised share of the epoch advance + free
// passes inline.  Arg is the epoch advance threshold (how much backlog
// accumulates before a retiring writer runs a free pass): a small threshold
// reclaims eagerly, a large one batches.  The retired/reclaimed counters in
// the output verify the run actually exercised the retire path.
void BM_ChurnReclamation(benchmark::State& state) {
  DyTISConfig cfg = bench::ScaledDyTISConfig(kKeys);
  cfg.epoch_advance_threshold = static_cast<size_t>(state.range(0));
  ConcurrentDyTIS<uint64_t> index(cfg);
  for (uint64_t k : Data().keys) {
    index.Insert(k, ValueFor(k));
  }
  ScrambledZipfianGenerator zipf(kKeys, 0.99, 6);
  const auto& keys = Data().keys;
  for (auto _ : state) {
    const uint64_t k = keys[zipf.Next()];
    index.Erase(k);
    index.Insert(k, ValueFor(k));
  }
  const EpochStats es = index.EpochInfo();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 2));
  state.counters["retired"] = static_cast<double>(es.retired_total);
  state.counters["reclaimed"] = static_cast<double>(es.reclaimed_total);
  state.counters["pending"] = static_cast<double>(es.retired_pending);
  state.counters["epoch_advances"] = static_cast<double>(es.advances);
}

void IndexArgs(benchmark::internal::Benchmark* b) {
  for (IndexKind kind :
       {IndexKind::kDyTIS, IndexKind::kBTree, IndexKind::kAlex,
        IndexKind::kXIndex, IndexKind::kEH, IndexKind::kCCEH}) {
    b->Arg(static_cast<int>(kind));
  }
}

BENCHMARK(BM_Insert)->Apply(IndexArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Find)->Apply(IndexArgs);
BENCHMARK(BM_Scan100)->Apply(IndexArgs);
BENCHMARK(BM_ConcurrentFind)->Arg(0)->Arg(1);
BENCHMARK(BM_ChurnReclamation)->Arg(4)->Arg(32)->Arg(256);

}  // namespace
}  // namespace dytis

BENCHMARK_MAIN();
