// Table 2: average / 99th / 99.99th percentile latencies (ns) for the Load
// workload and YCSB A, per dataset and index.
//
// Paper shape: DyTIS beats ALEX on the dynamic datasets (RM/RL/TX) for
// Load; B+-tree usually has the best tail (no structural rebuild spikes);
// ALEX's p99.99 is ~3x DyTIS's (retraining cascades); for workload A DyTIS
// leads nearly everywhere.
#include <cstdio>

#include "bench/common.h"

namespace dytis {
namespace {

void PrintRow(const YcsbResult& r) {
  if (!r.supported) {
    std::printf(" %7s/%7s/%8s", "n/a", "n/a", "n/a");
    return;
  }
  std::printf(" %7.0f/%7llu/%8llu", r.latency.MeanNanos(),
              static_cast<unsigned long long>(r.latency.PercentileNanos(0.99)),
              static_cast<unsigned long long>(
                  r.latency.PercentileNanos(0.9999)));
}

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Table 2: avg/p99/p99.99 latency in ns (Load and A)");
  bench::TraceSession trace("table2_latency");
  JsonValue root = obs::BenchEnvelope("table2_latency", n, bench::BenchOps());
  JsonValue& results = root["results"];
  bench::PrintPerfAvailability();
  const auto candidates = bench::PaperCandidates();
  for (YcsbWorkload w : {YcsbWorkload::kLoad, YcsbWorkload::kA}) {
    std::printf("\n(%s)  cells: avg/p99/p99.99 ns\n%-8s",
                YcsbWorkloadName(w), "dataset");
    for (const auto& c : candidates) {
      std::printf(" %24s", c.name.c_str());
    }
    std::printf("\n");
    for (DatasetId id : RealWorldDatasetIds()) {
      const Dataset& d = bench::CachedDataset(id, n);
      std::printf("%-8s", d.name.c_str());
      for (const auto& c : candidates) {
        auto index = c.make(n);
        YcsbOptions options;
        options.bulk_load_fraction = c.bulk_fraction;
        options.run_ops = bench::BenchOps();
        options.record_latency = true;
        options.latency_sample_every =
            bench::EnvSize("DYTIS_LATENCY_SAMPLE_EVERY", 1);
        obs::PerfRegion perf;
        const YcsbResult r = RunWorkload(index.get(), d, w, options);
        const JsonValue perf_json = bench::PerfJson(perf);
        PrintRow(r);
        std::fflush(stdout);
        JsonValue row = bench::YcsbResultJson(r);
        row["dataset"] = d.name;
        row["perf"] = perf_json;
        results.Append(std::move(row));
      }
      std::printf("\n");
    }
  }
  const std::string path = obs::WriteBenchJson("table2_latency", root);
  if (!path.empty()) {
    std::printf("# json: %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
