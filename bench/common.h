// Shared infrastructure for the per-figure benchmark binaries.
//
// Scale control: the paper runs 82M-903M keys on a 16-core testbed; the
// default here is laptop-sized and can be raised with environment
// variables:
//   DYTIS_BENCH_KEYS  keys per dataset            (default 200'000)
//   DYTIS_BENCH_OPS   measured ops per workload   (default keys/2)
// All binaries print the scale they ran at, so EXPERIMENTS.md entries are
// reproducible.
#ifndef DYTIS_BENCH_COMMON_H_
#define DYTIS_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/datasets/dataset.h"
#include "src/obs/bench_export.h"
#include "src/obs/perf_counters.h"
#include "src/obs/trace.h"
#include "src/util/bitops.h"
#include "src/util/json.h"
#include "src/workloads/kv_index.h"
#include "src/workloads/ycsb.h"

namespace dytis {
namespace bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  const long long parsed = std::atoll(v);
  if (parsed <= 0) {
    std::fprintf(stderr,
                 "# warning: ignoring %s=\"%s\" (not a positive integer); "
                 "using default %zu\n",
                 name, v, fallback);
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

inline size_t BenchKeys() { return EnvSize("DYTIS_BENCH_KEYS", 200'000); }
inline size_t BenchOps() { return EnvSize("DYTIS_BENCH_OPS", BenchKeys() / 2); }

// DyTIS configuration scaled to the benchmark key count: the paper's
// defaults (R=9, L_start=6) assume hundreds of millions of keys; at bench
// scale they would leave every EH in the warm-up phase.  The scaling keeps
// roughly the paper's keys-per-EH ratio so remapping/expansion dynamics are
// exercised.
inline DyTISConfig ScaledDyTISConfig(size_t num_keys) {
  DyTISConfig config;
  // Aim for ~8K keys per first-level EH: enough to leave the warm-up phase
  // (2^L_start buckets) while keeping the paper's property that the static
  // first level absorbs most of the key-space partitioning work.
  int r = 0;
  while (r < 9 && (num_keys >> (r + 1)) >= 4'096) {
    r++;
  }
  config.first_level_bits = r;
  config.l_start = 4;
  return config;
}

// A benchmark candidate: named index factory plus its bulk-load fraction
// (the paper's ALEX-10/ALEX-70/XIndex-70 protocol).
struct Candidate {
  std::string name;
  double bulk_fraction;
  std::unique_ptr<KVIndex> (*make)(size_t num_keys);
};

inline std::unique_ptr<KVIndex> MakeDyTISCandidate(size_t n) {
  return std::make_unique<DyTISAdapter>(ScaledDyTISConfig(n));
}
inline std::unique_ptr<KVIndex> MakeAlex10(size_t) {
  return std::make_unique<AlexAdapter>("ALEX-10");
}
inline std::unique_ptr<KVIndex> MakeAlex30(size_t) {
  return std::make_unique<AlexAdapter>("ALEX-30");
}
inline std::unique_ptr<KVIndex> MakeAlex50(size_t) {
  return std::make_unique<AlexAdapter>("ALEX-50");
}
inline std::unique_ptr<KVIndex> MakeAlex70(size_t) {
  return std::make_unique<AlexAdapter>("ALEX-70");
}
inline std::unique_ptr<KVIndex> MakeAlex90(size_t) {
  return std::make_unique<AlexAdapter>("ALEX-90");
}
inline std::unique_ptr<KVIndex> MakeXIndexCandidate(size_t) {
  return std::make_unique<XIndexAdapter>();
}
inline std::unique_ptr<KVIndex> MakeBTreeCandidate(size_t) {
  return std::make_unique<BTreeAdapter>();
}
inline std::unique_ptr<KVIndex> MakeEhCandidate(size_t) {
  return std::make_unique<EhAdapter>();
}
inline std::unique_ptr<KVIndex> MakeCcehCandidate(size_t) {
  return std::make_unique<CcehAdapter>();
}

// The five candidates of Figure 8 / Table 2.
inline std::vector<Candidate> PaperCandidates() {
  std::vector<Candidate> c;
  c.push_back({"DyTIS", 0.0, &MakeDyTISCandidate});
  c.push_back({"ALEX-10", 0.1, &MakeAlex10});
  c.push_back({"ALEX-70", 0.7, &MakeAlex70});
  c.push_back({"XIndex", 0.7, &MakeXIndexCandidate});
  c.push_back({"B+-tree", 0.0, &MakeBTreeCandidate});
  return c;
}

// Dataset cache: generating 5 x 200K-key datasets repeatedly would dominate
// the benchmark run time.
inline const Dataset& CachedDataset(DatasetId id, size_t n,
                                    bool shuffled = false) {
  static std::map<std::tuple<DatasetId, size_t, bool>, Dataset> cache;
  auto key = std::make_tuple(id, n, shuffled);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, MakeDataset(id, n, /*seed=*/42, shuffled)).first;
  }
  return it->second;
}

inline void PrintScale(const char* experiment) {
  std::printf("# %s | keys/dataset=%zu ops=%zu", experiment, BenchKeys(),
              BenchOps());
  std::printf(" (override with DYTIS_BENCH_KEYS / DYTIS_BENCH_OPS)\n");
}

// Structural tracing for a bench run: when $DYTIS_TRACE names a directory,
// the global tracer records for the session's lifetime and a
// chrome://tracing file `<dir>/<name>.trace.json` is written on
// destruction.  Unset/empty DYTIS_TRACE makes this a no-op.  Construct one
// at the top of a bench Main(), after any index warm-up that should stay
// out of the trace.
class TraceSession {
 public:
  explicit TraceSession(std::string name) : name_(std::move(name)) {
    if (!obs::TraceDir().empty()) {
      active_ = true;
      obs::StructuralTracer::Global().Enable();
    }
  }
  ~TraceSession() {
    if (!active_) {
      return;
    }
    obs::StructuralTracer::Global().Disable();
    const std::string path = obs::WriteBenchTrace(name_);
    if (!path.empty()) {
      std::fprintf(stderr, "# structural trace: %s\n", path.c_str());
    }
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string name_;
  bool active_ = false;
};

// Hardware perf counters for a bench phase (src/obs/perf_counters.h): wrap
// the measured region in a PerfRegion and attach PerfJson(region) to the
// phase's JSON row.  Emits {"cycles", "instructions", "ipc", "llc_misses",
// "branch_misses"} — or an explicit {"perf_unavailable": true, "reason"}
// marker when the kernel denies perf_event_open (containers/CI), so result
// files always say whether hardware columns were measured or skipped.
// Counters are process-wide with inherit set, so worker threads spawned
// inside the region are counted.
inline JsonValue PerfJson(const obs::PerfRegion& region) {
  return region.ToJson();
}

// One-line availability banner for bench stdout (printed once per binary).
inline void PrintPerfAvailability() {
  const obs::PerfCounters& pc = obs::PerfCounters::Global();
  if (pc.available()) {
    std::printf("# perf counters: available\n");
  } else {
    std::printf("# perf counters: unavailable (%s)\n",
                pc.unavailable_reason().c_str());
  }
}

// Standard JSON summary of one YcsbResult (throughput + per-op-kind counts,
// plus latency percentiles when recorded).
inline JsonValue YcsbResultJson(const YcsbResult& r) {
  JsonValue j = JsonValue::Object();
  j["workload"] = r.workload;
  j["index"] = r.index_name;
  j["supported"] = r.supported;
  j["ops"] = r.ops;
  j["seconds"] = r.seconds;
  j["throughput_mops"] = r.throughput_mops;
  JsonValue counts = JsonValue::Object();
  for (int i = 0; i < kNumYcsbOpTypes; i++) {
    const auto t = static_cast<YcsbOpType>(i);
    if (r.op_counts[static_cast<size_t>(i)] > 0) {
      counts[YcsbOpTypeName(t)] = r.op_counts[static_cast<size_t>(i)];
    }
  }
  j["op_counts"] = std::move(counts);
  if (r.latency.count() > 0) {
    j["latency"] = r.latency.ToJson();
    JsonValue per_op = JsonValue::Object();
    for (int i = 0; i < kNumYcsbOpTypes; i++) {
      const auto& rec = r.op_latency[static_cast<size_t>(i)];
      if (rec.count() > 0) {
        per_op[YcsbOpTypeName(static_cast<YcsbOpType>(i))] = rec.ToJson();
      }
    }
    j["op_latency"] = std::move(per_op);
  }
  return j;
}

}  // namespace bench
}  // namespace dytis

#endif  // DYTIS_BENCH_COMMON_H_
