// Adversarial degradation and mitigation recovery (robustness extension; not
// a paper figure).
//
// Three questions, mirroring the detector/mitigation subsystem:
//   1. How much does each attack pattern degrade DyTIS versus structures
//      with no learned component (B+-tree, CCEH)?  Each candidate runs the
//      same region op mix (lookups + inserts + short scans aimed at the
//      attacked key range) on an unattacked index (baseline) and after the
//      attack; degradation_factor = baseline / attacked throughput.
//   2. What do the mitigations buy?  The mitigated DyTIS row runs the
//      degradation detector + quarantine/re-salt repair after the attack and
//      periodically during measurement (the online operating mode), and
//      reports a recovery curve (op-mix throughput after each mitigation
//      round) plus recovery_ratio = recovered / baseline.
//   3. What do the detectors cost when nothing is wrong?  The benign
//      overhead section runs the same benign workload with and without
//      periodic detector evaluation (pull-based HealthReport + Evaluate).
//
// The DyTIS config is depth-capped (small max_global_depth) so the attacks
// reach the terminal stash at bench scale, the same way the adversarial
// tests do; the wide-stride stash bomb is the recoverable pattern (the
// quarantine rebuild can absorb it), the narrow stride-1 bomb is the
// unrecoverable one (the quarantine stays bounded and spills — the row
// documents the residual honestly).
//
// JSON export: one document with a "patterns" array (per pattern, per
// candidate) and a "benign_overhead" object, wired into
// scripts/run_bench_suite.sh; rows new to the trajectory are reported as
// "new" by scripts/bench_compare.py, never gated.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/core/dytis.h"
#include "src/obs/degradation.h"
#include "src/util/rng.h"
#include "src/util/timer.h"
#include "src/workloads/attack.h"
#include "src/workloads/kv_index.h"

namespace dytis {
namespace {

using workloads::AttackPattern;

constexpr uint64_t kWideStride = uint64_t{1} << 30;
constexpr size_t kMitigateEvery = 4096;  // ops between online detector runs

// Depth-capped DyTIS: reachable terminal stash at bench scale (the paper
// config's max_global_depth never saturates with bench-sized key counts).
DyTISConfig AttackedConfig() {
  DyTISConfig config;
  config.first_level_bits = 2;
  config.bucket_bytes = 256;
  config.l_start = 3;
  config.max_global_depth = 8;
  return config;
}

DegradationPolicy BenchPolicy() {
  DegradationPolicy policy;
  policy.trip_strikes = 1;
  policy.clear_strikes = 1;
  return policy;
}

// One attack scenario: the poisoned key stream plus the continuation keys
// and scan shapes the post-attack op mix aims at the attacked region.
struct Scenario {
  std::string name;
  std::vector<uint64_t> attack_keys;    // ingested during the attack phase
  std::vector<uint64_t> region_inserts; // fresh keys inside the region
  std::vector<uint64_t> region_lookups; // existing keys, shuffled
  std::vector<workloads::ScanShape> scans;
};

template <typename T>
void SeededShuffle(std::vector<T>* v, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = v->size(); i > 1; i--) {
    std::swap((*v)[i - 1], (*v)[rng.NextBelow(i)]);
  }
}

// `hot` optionally narrows the measured region to the poisoned subset of
// the attack stream (cdf_cliff mixes 15/16 benign keys into the attack
// stream — aiming the op mix at all of them would mostly measure healthy
// buckets and miss the cliff).  Empty means the whole attack stream is hot.
Scenario MakeScenario(const std::string& name, std::vector<uint64_t> keys,
                      std::vector<uint64_t> continuation,
                      std::vector<uint64_t> hot = {}) {
  Scenario s;
  s.name = name;
  s.attack_keys = std::move(keys);
  s.region_inserts = std::move(continuation);
  s.region_lookups = hot.empty() ? s.attack_keys : std::move(hot);
  SeededShuffle(&s.attack_keys, 101);
  SeededShuffle(&s.region_inserts, 102);
  SeededShuffle(&s.region_lookups, 103);
  const uint64_t lo =
      *std::min_element(s.region_lookups.begin(), s.region_lookups.end());
  const uint64_t hi =
      *std::max_element(s.region_lookups.begin(), s.region_lookups.end());
  Rng rng(104);
  for (size_t i = 0; i < 256; i++) {
    workloads::ScanShape shape;
    shape.start_key = lo + rng.NextBelow(hi - lo + 1);
    shape.want = 16;
    s.scans.push_back(shape);
  }
  return s;
}

std::vector<Scenario> MakeScenarios(size_t n_attack) {
  std::vector<Scenario> scenarios;
  {
    // Recoverable: wide-stride bomb, absorbable by the quarantine rebuild.
    auto keys = workloads::StashBombKeys(2 * n_attack, 7, kWideStride);
    std::vector<uint64_t> head(keys.begin(), keys.begin() + n_attack);
    std::vector<uint64_t> tail(keys.begin() + n_attack, keys.end());
    scenarios.push_back(
        MakeScenario("stash_bomb_wide", std::move(head), std::move(tail)));
  }
  {
    // Unrecoverable: consecutive integers; quarantine bounds + spills.
    auto keys = workloads::StashBombKeys(2 * n_attack, 7);
    std::vector<uint64_t> head(keys.begin(), keys.begin() + n_attack);
    std::vector<uint64_t> tail(keys.begin() + n_attack, keys.end());
    scenarios.push_back(
        MakeScenario("stash_bomb", std::move(head), std::move(tail)));
  }
  {
    // The cliff holds every 16th key of the stream (generation order); the
    // measured region is that subset plus cliff-only continuation inserts.
    auto keys = workloads::CdfCliffKeys(n_attack, 7);
    std::vector<uint64_t> cliff;
    for (size_t i = 0; i < keys.size(); i += 16) {
      cliff.push_back(keys[i]);
    }
    auto more = workloads::CdfCliffKeys(2 * n_attack, 7);
    std::vector<uint64_t> tail;
    for (size_t i = n_attack; i < more.size(); i++) {
      if (i % 16 == 0) {
        tail.push_back(more[i]);
      }
    }
    scenarios.push_back(MakeScenario("cdf_cliff", std::move(keys),
                                     std::move(tail), std::move(cliff)));
  }
  return scenarios;
}

// A candidate index under attack.  DyTIS rows use the index directly (the
// mitigated row needs HealthReport/MitigateDegraded); baselines go through
// their KVIndex adapters.
class Subject {
 public:
  Subject(std::string name, const DyTISConfig& config, bool mitigated)
      : name_(std::move(name)),
        dytis_(std::make_unique<DyTIS<uint64_t>>(config)),
        detector_(mitigated ? std::make_unique<obs::DegradationDetector>(
                                  BenchPolicy())
                            : nullptr) {}
  Subject(std::string name, std::unique_ptr<KVIndex> kv)
      : name_(std::move(name)), kv_(std::move(kv)) {}

  const std::string& name() const { return name_; }
  bool mitigated() const { return detector_ != nullptr; }
  bool SupportsScan() const {
    return dytis_ != nullptr || kv_->SupportsScan();
  }

  void Insert(uint64_t key, uint64_t value) {
    if (dytis_ != nullptr) {
      dytis_->Insert(key, value);
    } else {
      kv_->Insert(key, value);
    }
    if (detector_ != nullptr && ++ops_since_mitigation_ >= window_) {
      ops_since_mitigation_ = 0;
      // Sentinel gate: HealthReport is O(index), so the operating mode only
      // collects one when the O(1) stash-insert counter moved since the last
      // window (something overflowed) or a segment is already marked
      // degraded (a clear/repair is pending).  Benign traffic never trips
      // either, so detection costs one atomic load per window.
      const uint64_t stash_inserts =
          dytis_->stats().stash_inserts.load(std::memory_order_relaxed);
      if (stash_inserts != last_stash_inserts_ ||
          detector_->degraded_count() != 0) {
        last_stash_inserts_ = stash_inserts;
        const auto out = dytis_->MitigateDegraded(detector_.get());
        // Cadence backoff, mirroring the detector's repair backoff: an
        // evaluation that found degradation but nothing actionable (every
        // verdict cooled down — the attack is unabsorbable) doubles the
        // window, so a permanently quarantined segment stops charging an
        // O(index) HealthReport to every window of foreground traffic.
        if (out.repaired == 0 && out.degraded == 0 &&
            detector_->degraded_count() != 0) {
          window_ = std::min<size_t>(window_ * 2, 64 * kMitigateEvery);
        } else {
          window_ = kMitigateEvery;
        }
      }
    }
  }
  bool Find(uint64_t key, uint64_t* value) const {
    return dytis_ != nullptr ? dytis_->Find(key, value)
                             : kv_->Find(key, value);
  }
  size_t Scan(uint64_t start, size_t want, KVIndex::ScanEntry* out) const {
    return dytis_ != nullptr ? dytis_->Scan(start, want, out)
                             : kv_->Scan(start, want, out);
  }

  // One full mitigation pass; returns the outcome (zeros for non-DyTIS or
  // unmitigated rows).
  DyTIS<uint64_t>::MitigationOutcome Mitigate() {
    if (detector_ == nullptr) {
      return {};
    }
    return dytis_->MitigateDegraded(detector_.get());
  }

  size_t StashEntries() const {
    return dytis_ != nullptr ? dytis_->StashEntries() : 0;
  }

 private:
  std::string name_;
  std::unique_ptr<DyTIS<uint64_t>> dytis_;
  std::unique_ptr<KVIndex> kv_;
  std::unique_ptr<obs::DegradationDetector> detector_;
  size_t ops_since_mitigation_ = 0;
  size_t window_ = kMitigateEvery;
  uint64_t last_stash_inserts_ = 0;
};

const std::vector<std::string>& SubjectNames() {
  static const std::vector<std::string> names = {"DyTIS", "DyTIS-mitigated",
                                                 "B+-tree", "CCEH"};
  return names;
}

std::unique_ptr<Subject> MakeSubject(const std::string& name) {
  if (name == "DyTIS") {
    return std::make_unique<Subject>(name, AttackedConfig(), false);
  }
  if (name == "DyTIS-mitigated") {
    return std::make_unique<Subject>(name, AttackedConfig(), true);
  }
  if (name == "B+-tree") {
    return std::make_unique<Subject>(name, std::make_unique<BTreeAdapter>());
  }
  return std::make_unique<Subject>(name, std::make_unique<CcehAdapter>());
}

// The measured op mix over the attacked region: 40% lookups of resident
// keys, 40% inserts of fresh in-region keys, 20% short scans (when the
// index scans).  Returns Mops/s.  Cursors persist across calls so repeated
// slices keep consuming fresh insert keys.
struct MixCursor {
  size_t lookup = 0;
  size_t insert = 0;
  size_t scan = 0;
};

double RunOpMix(Subject* subject, const Scenario& s, size_t ops,
                MixCursor* cursor) {
  const bool scans = subject->SupportsScan();
  std::vector<KVIndex::ScanEntry> buf(16);
  uint64_t sink = 0;
  Timer timer;
  for (size_t i = 0; i < ops; i++) {
    const int slot = static_cast<int>(i % 5);
    if (slot < 2) {
      uint64_t v = 0;
      subject->Find(s.region_lookups[cursor->lookup++ % s.region_lookups.size()],
                    &v);
      sink ^= v;
    } else if (slot < 4 || !scans) {
      const uint64_t k =
          s.region_inserts[cursor->insert++ % s.region_inserts.size()];
      subject->Insert(k, k);
    } else {
      const auto& shape = s.scans[cursor->scan++ % s.scans.size()];
      sink ^= subject->Scan(shape.start_key, shape.want, buf.data());
    }
  }
  const double seconds = timer.ElapsedSeconds();
  if (sink == 0xDEADBEEF) {  // defeat dead-code elimination
    std::printf("#");
  }
  return static_cast<double>(ops) / seconds / 1e6;
}

int Main() {
  const size_t n = bench::BenchKeys();
  const size_t n_attack = std::max<size_t>(1000, n / 4);
  const size_t mix_ops = std::max<size_t>(2000, n / 8);
  bench::PrintScale("Adversarial degradation & mitigation (robustness)");
  JsonValue root = obs::BenchEnvelope("attack", n, mix_ops);

  Rng benign_rng(42);
  std::vector<uint64_t> benign(n);
  for (auto& k : benign) {
    k = benign_rng.Next();
  }

  // Shared benign op-mix region: the unattacked index has no "attacked
  // region", so every baseline uses uniform targets from the same generator
  // family.  Built once — it does not depend on the attack pattern.
  Scenario benign_region;
  benign_region.name = "benign";
  benign_region.region_lookups = benign;
  SeededShuffle(&benign_region.region_lookups, 201);
  Rng fresh(202);
  benign_region.region_inserts.resize(std::max<size_t>(mix_ops, 1024));
  for (auto& k : benign_region.region_inserts) {
    k = fresh.Next();
  }
  Rng scan_rng(203);
  for (size_t i = 0; i < 256; i++) {
    workloads::ScanShape shape;
    shape.start_key = scan_rng.Next();
    shape.want = 16;
    benign_region.scans.push_back(shape);
  }

  // Baselines: one fresh unattacked instance per candidate, shared across
  // every attack pattern.
  std::vector<double> baselines;
  for (const std::string& subject_name : SubjectNames()) {
    auto base = MakeSubject(subject_name);
    for (uint64_t k : benign) {
      base->Insert(k, k);
    }
    MixCursor cursor;
    baselines.push_back(
        RunOpMix(base.get(), benign_region, mix_ops, &cursor));
  }

  // Degraded-phase measurements use fewer ops: a 50x-degraded index at the
  // same op count would dominate wall-clock without changing the rate.
  const size_t atk_ops = std::max<size_t>(1000, mix_ops / 4);

  const auto scenarios = MakeScenarios(n_attack);
  JsonValue pattern_rows = JsonValue::Array();
  std::printf("%-16s %-16s %10s %10s %8s %10s %8s\n", "pattern", "index",
              "base Mops", "atk Mops", "degrade", "rec Mops", "recover");
  for (const auto& scenario : scenarios) {
    JsonValue row = JsonValue::Object();
    row["pattern"] = scenario.name;
    JsonValue candidates = JsonValue::Array();
    for (size_t si = 0; si < SubjectNames().size(); si++) {
      const std::string& subject_name = SubjectNames()[si];
      auto subject = MakeSubject(subject_name);
      const double baseline_mops = baselines[si];

      // Attacked run: benign load, then the poisoned stream.
      for (uint64_t k : benign) {
        subject->Insert(k, k);
      }
      Timer ingest_timer;
      for (uint64_t k : scenario.attack_keys) {
        subject->Insert(k, k);
      }
      const double ingest_seconds = ingest_timer.ElapsedSeconds();

      MixCursor cursor;
      JsonValue curve = JsonValue::Array();
      double attacked_mops = 0.0;
      double recovered_mops = 0.0;
      JsonValue mitigation = JsonValue::Object();
      if (!subject->mitigated()) {
        attacked_mops = RunOpMix(subject.get(), scenario, atk_ops, &cursor);
        recovered_mops = attacked_mops;  // nothing recovers without repair
      } else {
        // Recovery curve: op-mix slices interleaved with mitigation rounds.
        attacked_mops = RunOpMix(subject.get(), scenario, atk_ops, &cursor);
        uint64_t retrains = 0;
        uint64_t overrides = 0;
        uint64_t splits = 0;
        uint64_t drained = 0;
        for (int round = 0; round < 6; round++) {
          const auto out = subject->Mitigate();
          retrains += out.retrains;
          overrides += out.limit_overrides;
          splits += out.splits;
          drained += out.stash_drained;
          const double slice_mops =
              RunOpMix(subject.get(), scenario, atk_ops, &cursor);
          JsonValue point = JsonValue::Object();
          point["round"] = static_cast<uint64_t>(round + 1);
          point["mops"] = slice_mops;
          point["degraded"] = out.degraded;
          curve.Append(std::move(point));
          if (out.degraded == 0 && round >= 1) {
            break;
          }
        }
        recovered_mops = RunOpMix(subject.get(), scenario, mix_ops, &cursor);
        mitigation["retrains"] = retrains;
        mitigation["limit_overrides"] = overrides;
        mitigation["splits_escalated"] = splits;
        mitigation["stash_drained"] = drained;
        mitigation["residual_stash"] =
            static_cast<uint64_t>(subject->StashEntries());
      }
      const double degradation =
          attacked_mops > 0.0 ? baseline_mops / attacked_mops : 0.0;
      const double recovery_ratio =
          baseline_mops > 0.0 ? recovered_mops / baseline_mops : 0.0;
      std::printf("%-16s %-16s %10.3f %10.3f %7.1fx %10.3f %7.0f%%\n",
                  scenario.name.c_str(), subject->name().c_str(),
                  baseline_mops, attacked_mops, degradation, recovered_mops,
                  recovery_ratio * 100.0);
      std::fflush(stdout);
      JsonValue c = JsonValue::Object();
      c["index"] = subject->name();
      c["mitigated"] = subject->mitigated();
      c["baseline_mops"] = baseline_mops;
      c["attack_ingest_seconds"] = ingest_seconds;
      c["attacked_mops"] = attacked_mops;
      c["degradation_factor"] = degradation;
      c["recovered_mops"] = recovered_mops;
      c["recovery_ratio"] = recovery_ratio;
      c["scan_supported"] = subject->SupportsScan();
      if (subject->mitigated()) {
        c["recovery_curve"] = std::move(curve);
        c["mitigation"] = std::move(mitigation);
      }
      candidates.Append(std::move(c));
    }
    row["candidates"] = std::move(candidates);
    pattern_rows.Append(std::move(row));
  }
  root["patterns"] = std::move(pattern_rows);

  // Benign overhead of the detector's operating mode: same benign insert +
  // lookup workload, with and without a periodic HealthReport + Evaluate.
  {
    auto run = [&](bool with_detector) {
      DyTIS<uint64_t> idx(bench::ScaledDyTISConfig(n));
      obs::DegradationDetector det(BenchPolicy());
      Rng rng(7);
      uint64_t last_stash_inserts = 0;
      Timer timer;
      for (size_t i = 0; i < n; i++) {
        idx.Insert(rng.Next(), i);
        if (with_detector && (i + 1) % kMitigateEvery == 0) {
          // Same sentinel gate as the mitigated subject: only collect the
          // O(index) HealthReport when the O(1) stash counter moved or a
          // segment is already marked.  Benign runs never trip it.
          const uint64_t stash_inserts =
              idx.stats().stash_inserts.load(std::memory_order_relaxed);
          if (stash_inserts != last_stash_inserts ||
              det.degraded_count() != 0) {
            last_stash_inserts = stash_inserts;
            det.Evaluate(idx.HealthReport());
          }
        }
      }
      return static_cast<double>(n) / timer.ElapsedSeconds() / 1e6;
    };
    const double plain = run(false);
    const double detected = run(true);
    const double overhead_pct = (plain / detected - 1.0) * 100.0;
    std::printf("benign overhead: plain %.3f Mops, detector %.3f Mops "
                "(%.1f%%, evaluate every %zu ops)\n",
                plain, detected, overhead_pct, kMitigateEvery);
    JsonValue overhead = JsonValue::Object();
    overhead["plain_mops"] = plain;
    overhead["detector_mops"] = detected;
    overhead["overhead_pct"] = overhead_pct;
    overhead["evaluate_every"] = static_cast<uint64_t>(kMitigateEvery);
    root["benign_overhead"] = std::move(overhead);
  }

  const std::string json = obs::WriteBenchJson("attack", root);
  if (!json.empty()) {
    std::printf("# json: %s\n", json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
