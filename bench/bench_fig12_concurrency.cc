// Figure 12: throughput of DyTIS (locked build) and XIndex with 1/2/4/8
// threads on the RL and TX datasets, for insertion, search and scan-100.
//
// Paper shape: DyTIS above XIndex at every thread count for every
// operation; TX insertion scales poorly beyond 4 threads (temporal key
// locality concentrates concurrent inserts on few segments).
//
// A second section measures read scaling of the two read paths on the SAME
// build: per-segment shared locks vs. the optimistic (seqlock-validated,
// lock-free) probe, pure-search phase, 1..16 threads.  The optimistic path
// touches no shared cache line on an uncontended read, so its advantage
// grows with reader count; the JSON rows carry the conflict counters
// (read.optimistic_retries / read.fallback_locks) so a run can verify the
// lock-free path actually served the traffic.
//
// NOTE (DESIGN.md Section 5): on a single-hardware-core host this measures
// locking overhead and fairness, not parallel speedup; the DyTIS-vs-XIndex
// ordering (and locked-vs-optimistic ordering) is still meaningful,
// absolute scaling is not.
#include <cstdio>
#include <thread>

#include "bench/common.h"

namespace dytis {
namespace {

// JSON row for one index's phases at one thread count.
JsonValue PhasesJson(const ConcurrencyResult& r) {
  JsonValue j = JsonValue::Object();
  j["insert_mops"] = r.insert_mops;
  j["search_mops"] = r.search_mops;
  j["update_mops"] = r.update_mops;
  j["scan_mops"] = r.scan_mops;
  j["insert_ops"] = r.insert_ops;
  j["search_ops"] = r.search_ops;
  j["update_ops"] = r.update_ops;
  j["scan_ops"] = r.scan_ops;
  return j;
}

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Figure 12: multi-threaded throughput (Mops/s)");
  bench::TraceSession trace("fig12_concurrency");
  JsonValue root = obs::BenchEnvelope("fig12_concurrency", n,
                                      bench::BenchOps());
  JsonValue& results = root["results"];
  std::printf("# hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  bench::PrintPerfAvailability();
  const int thread_counts[] = {1, 2, 4, 8};
  for (DatasetId id : {DatasetId::kReviewL, DatasetId::kTaxi}) {
    const Dataset& d = bench::CachedDataset(id, n);
    std::printf("\n(%s)\n%-8s %12s %12s %12s %12s %12s %12s %12s %12s\n",
                d.name.c_str(), "threads", "DyTIS-ins", "XIndex-ins",
                "DyTIS-srch", "XIndex-srch", "DyTIS-upd", "XIndex-upd",
                "DyTIS-scan", "XIndex-scan");
    for (int t : thread_counts) {
      YcsbOptions options;
      options.run_ops = bench::BenchOps();
      ConcurrentDyTISAdapter dytis_index(bench::ScaledDyTISConfig(n));
      obs::PerfRegion dytis_perf;
      const ConcurrencyResult rd = RunConcurrent(&dytis_index, d, t, options);
      const JsonValue dytis_perf_json = bench::PerfJson(dytis_perf);
      XIndexLike<uint64_t>::Options xopts;
      xopts.background_compaction = true;
      XIndexAdapter xindex(xopts);
      obs::PerfRegion xindex_perf;
      const ConcurrencyResult rx = RunConcurrent(&xindex, d, t, options);
      const JsonValue xindex_perf_json = bench::PerfJson(xindex_perf);
      std::printf(
          "%-8d %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n",
          t, rd.insert_mops, rx.insert_mops, rd.search_mops, rx.search_mops,
          rd.update_mops, rx.update_mops, rd.scan_mops, rx.scan_mops);
      std::fflush(stdout);
      JsonValue row = JsonValue::Object();
      row["dataset"] = d.name;
      row["threads"] = t;
      row["dytis"] = PhasesJson(rd);
      row["dytis"]["perf"] = dytis_perf_json;
      // Reclamation overhead of the run: how much the structural churn
      // retired through the epoch domain, and how much of it was already
      // freed by the amortised passes when the run ended.
      {
        const DyTISStatsView v = dytis_index.index().stats().View();
        const EpochStats es = dytis_index.index().EpochInfo();
        JsonValue& rec = row["dytis"]["reclamation"];
        rec["cores_retired"] = v.cores_retired;
        rec["segments_retired"] = v.segments_retired;
        rec["directories_retired"] = v.directories_retired;
        rec["retired_total"] = es.retired_total;
        rec["reclaimed_total"] = es.reclaimed_total;
        rec["retired_pending"] = es.retired_pending;
        rec["epoch_advances"] = es.advances;
      }
      row["xindex"] = PhasesJson(rx);
      row["xindex"]["perf"] = xindex_perf_json;
      results.Append(std::move(row));
    }
  }
  const std::string path = obs::WriteBenchJson("fig12_concurrency", root);
  if (!path.empty()) {
    std::printf("# json: %s\n", path.c_str());
  }

  // --- Read scaling: shared-lock vs. optimistic read path -------------------
  // The pure-search phase is cheap per op, so it needs far more ops than the
  // mixed section for a stable measurement (at bench-default ops an 8-thread
  // share is single-digit milliseconds — scheduler noise).  Defaults to
  // 10 x BenchOps, overridable with DYTIS_BENCH_READ_OPS.
  const size_t read_ops =
      bench::EnvSize("DYTIS_BENCH_READ_OPS", bench::BenchOps() * 10);
  bench::PrintScale("Figure 12b: read scaling, locked vs optimistic (Mops/s)");
  JsonValue scaling = obs::BenchEnvelope("fig12_read_scaling", n, read_ops);
  JsonValue& rows = scaling["results"];
  const Dataset& d = bench::CachedDataset(DatasetId::kReviewL, n);
  std::printf("\n(%s, pure-search phase)\n%-8s %12s %12s %10s %12s %12s\n",
              d.name.c_str(), "threads", "locked", "optimistic", "speedup",
              "opt-retries", "fallbacks");
  // Best-of-3 with the mode order alternating per repetition: on an
  // oversubscribed host, whichever mode runs while the scheduler is warm
  // wins by far more than the read paths differ, so a single ordered pair
  // measures run order, not the lock protocol.
  constexpr int kReps = 3;
  for (int t : {1, 2, 4, 8, 16}) {
    double mops[2] = {0.0, 0.0};
    uint64_t retries = 0;
    uint64_t fallbacks = 0;
    uint64_t retired_total = 0;
    uint64_t reclaimed_total = 0;
    for (int rep = 0; rep < kReps; rep++) {
      for (int m = 0; m < 2; m++) {
        const bool optimistic = (m == 0) == (rep % 2 == 0);
        YcsbOptions options;
        options.run_ops = read_ops;
        DyTISConfig cfg = bench::ScaledDyTISConfig(n);
        cfg.optimistic_reads = optimistic;
        ConcurrentDyTISAdapter index(cfg);
        const ConcurrencyResult r = RunConcurrent(&index, d, t, options);
        const int slot = optimistic ? 1 : 0;
        if (r.search_mops > mops[slot]) {
          mops[slot] = r.search_mops;
        }
        if (optimistic) {
          const DyTISStatsView v = index.index().stats().View();
          retries += v.optimistic_read_retries;
          fallbacks += v.optimistic_read_fallbacks;
          const EpochStats es = index.index().EpochInfo();
          retired_total += es.retired_total;
          reclaimed_total += es.reclaimed_total;
        }
      }
    }
    const double speedup = mops[0] > 0.0 ? mops[1] / mops[0] : 0.0;
    std::printf("%-8d %12.3f %12.3f %9.2fx %12llu %12llu\n", t, mops[0],
                mops[1], speedup, static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(fallbacks));
    std::fflush(stdout);
    JsonValue row = JsonValue::Object();
    row["dataset"] = d.name;
    row["threads"] = t;
    row["locked_mops"] = mops[0];
    row["optimistic_mops"] = mops[1];
    row["speedup"] = speedup;
    row["optimistic_retries"] = retries;
    row["fallback_locks"] = fallbacks;
    // Reclamation overhead riding on the optimistic reps: lock-free readers
    // pin epochs, so retired-vs-reclaimed shows whether read traffic delayed
    // the amortised frees (a large gap would mean readers starve advances).
    row["retired_total"] = retired_total;
    row["reclaimed_total"] = reclaimed_total;
    rows.Append(std::move(row));
  }
  const std::string spath = obs::WriteBenchJson("fig12_read_scaling", scaling);
  if (!spath.empty()) {
    std::printf("# json: %s\n", spath.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
