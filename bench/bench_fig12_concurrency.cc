// Figure 12: throughput of DyTIS (locked build) and XIndex with 1/2/4/8
// threads on the RL and TX datasets, for insertion, search and scan-100.
//
// Paper shape: DyTIS above XIndex at every thread count for every
// operation; TX insertion scales poorly beyond 4 threads (temporal key
// locality concentrates concurrent inserts on few segments).
//
// NOTE (DESIGN.md Section 5): on a single-hardware-core host this measures
// locking overhead and fairness, not parallel speedup; the DyTIS-vs-XIndex
// ordering is still meaningful, absolute scaling is not.
#include <cstdio>
#include <thread>

#include "bench/common.h"

namespace dytis {
namespace {

// JSON row for one index's phases at one thread count.
JsonValue PhasesJson(const ConcurrencyResult& r) {
  JsonValue j = JsonValue::Object();
  j["insert_mops"] = r.insert_mops;
  j["search_mops"] = r.search_mops;
  j["update_mops"] = r.update_mops;
  j["scan_mops"] = r.scan_mops;
  j["insert_ops"] = r.insert_ops;
  j["search_ops"] = r.search_ops;
  j["update_ops"] = r.update_ops;
  j["scan_ops"] = r.scan_ops;
  return j;
}

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Figure 12: multi-threaded throughput (Mops/s)");
  bench::TraceSession trace("fig12_concurrency");
  JsonValue root = obs::BenchEnvelope("fig12_concurrency", n,
                                      bench::BenchOps());
  JsonValue& results = root["results"];
  std::printf("# hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  const int thread_counts[] = {1, 2, 4, 8};
  for (DatasetId id : {DatasetId::kReviewL, DatasetId::kTaxi}) {
    const Dataset& d = bench::CachedDataset(id, n);
    std::printf("\n(%s)\n%-8s %12s %12s %12s %12s %12s %12s %12s %12s\n",
                d.name.c_str(), "threads", "DyTIS-ins", "XIndex-ins",
                "DyTIS-srch", "XIndex-srch", "DyTIS-upd", "XIndex-upd",
                "DyTIS-scan", "XIndex-scan");
    for (int t : thread_counts) {
      YcsbOptions options;
      options.run_ops = bench::BenchOps();
      ConcurrentDyTISAdapter dytis_index(bench::ScaledDyTISConfig(n));
      const ConcurrencyResult rd = RunConcurrent(&dytis_index, d, t, options);
      XIndexLike<uint64_t>::Options xopts;
      xopts.background_compaction = true;
      XIndexAdapter xindex(xopts);
      const ConcurrencyResult rx = RunConcurrent(&xindex, d, t, options);
      std::printf(
          "%-8d %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n",
          t, rd.insert_mops, rx.insert_mops, rd.search_mops, rx.search_mops,
          rd.update_mops, rx.update_mops, rd.scan_mops, rx.scan_mops);
      std::fflush(stdout);
      JsonValue row = JsonValue::Object();
      row["dataset"] = d.name;
      row["threads"] = t;
      row["dytis"] = PhasesJson(rd);
      row["xindex"] = PhasesJson(rx);
      results.Append(std::move(row));
    }
  }
  const std::string path = obs::WriteBenchJson("fig12_concurrency", root);
  if (!path.empty()) {
    std::printf("# json: %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
