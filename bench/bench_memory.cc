// Section 4.3, memory usage analysis: maximum memory of each index after
// the Load phase (the paper measures with dstat; we report both the
// logical structure size and the fork-isolated peak RSS).
//
// Paper shape: ALEX-10..70 and the B+-tree use ~23-27% less memory than
// DyTIS (multi-bucket segments hold reserve space); ALEX-90's peak grows
// (bulk-load staging); XIndex uses several times more than everyone.
#include <cstdio>

#include "bench/common.h"
#include "src/util/memory_usage.h"

namespace dytis {
namespace {

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Memory usage after Load (Section 4.3)");
  auto candidates = bench::PaperCandidates();
  candidates.push_back({"ALEX-30", 0.3, &bench::MakeAlex30});
  candidates.push_back({"ALEX-50", 0.5, &bench::MakeAlex50});
  candidates.push_back({"ALEX-90", 0.9, &bench::MakeAlex90});

  std::printf("%-8s %-10s %14s %14s %10s\n", "dataset", "index",
              "logical-MiB", "peak-rss-MiB", "vs-DyTIS");
  for (DatasetId id : RealWorldDatasetIds()) {
    const Dataset& d = bench::CachedDataset(id, n);
    double dytis_logical = 0.0;
    for (const auto& c : candidates) {
      // Logical structure bytes, measured in-process.
      auto index = c.make(n);
      YcsbOptions options;
      options.bulk_load_fraction = c.bulk_fraction;
      RunLoad(index.get(), d, options);
      const double logical =
          static_cast<double>(index->MemoryBytes()) / (1024.0 * 1024.0);
      if (c.name == "DyTIS") {
        dytis_logical = logical;
      }
      // Peak RSS in a fresh child process (covers transient bulk-load
      // staging, the effect that penalises ALEX-90 in the paper).
      const size_t peak = RunAndMeasurePeakRss([&] {
        auto child_index = c.make(n);
        YcsbOptions child_options;
        child_options.bulk_load_fraction = c.bulk_fraction;
        RunLoad(child_index.get(), d, child_options);
      });
      std::printf("%-8s %-10s %14.2f %14.2f %9.1f%%\n", d.name.c_str(),
                  c.name.c_str(), logical,
                  static_cast<double>(peak) / (1024.0 * 1024.0),
                  dytis_logical > 0.0
                      ? (logical / dytis_logical - 1.0) * 100.0
                      : 0.0);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
