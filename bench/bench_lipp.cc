// Section 5 / footnote 6: the LIPP comparison attempt.
//
// The paper reports that LIPP "cannot build an index for 4 of the 5
// datasets due to out-of-memory or type conversion errors" and that on RM
// it observed "a huge number of key losses upon search".  This bench loads
// each dataset into the LIPP reproduction under a memory budget and
// reports: build outcome, keys lost, memory, and (when the build holds)
// insert/search throughput next to DyTIS.
#include <cstdio>

#include "bench/common.h"
#include "src/baselines/lipp/lipp.h"
#include "src/core/dytis.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

int Main() {
  const size_t n = bench::BenchKeys();
  const size_t ops = bench::BenchOps();
  bench::PrintScale("LIPP comparison (Section 5, footnote 6)");
  // Budget proportional to the dataset: a healthy index needs a few slots
  // per key; allow 24x before declaring the blow-up.
  LippIndex<uint64_t>::Options options;
  options.max_total_slots = n * 24;

  std::printf("%-8s %10s %10s %12s %12s %12s %12s\n", "dataset", "built",
              "lost", "LIPP-MiB", "LIPP-ins", "LIPP-srch", "DyTIS-ins");
  for (DatasetId id : RealWorldDatasetIds()) {
    const Dataset& d = bench::CachedDataset(id, n);
    LippIndex<uint64_t> lipp(options);
    // Time-boxed load: LIPP's adjustment strategy thrashes on append-heavy
    // keys (every insert lands past the trained range), which at full
    // dataset size is the practical equivalent of the paper's "cannot
    // build".  Give it 15 seconds.
    constexpr double kLoadBudgetSeconds = 15.0;
    Timer timer;
    size_t attempted = 0;
    for (size_t i = 0; i < d.keys.size(); i++) {
      lipp.Insert(d.keys[i], ValueFor(d.keys[i]));
      attempted++;
      if ((i & 0x3ff) == 0 && timer.ElapsedSeconds() > kLoadBudgetSeconds) {
        break;
      }
    }
    const bool timed_out = attempted < d.keys.size();
    const double lipp_ins =
        static_cast<double>(attempted) / timer.ElapsedSeconds() / 1e6;
    // Key losses: inserted but not findable (the footnote's observation).
    size_t lost = 0;
    for (size_t i = 0; i < attempted; i++) {
      if (!lipp.Find(d.keys[i], nullptr)) {
        lost++;
      }
    }
    ScrambledZipfianGenerator zipf(d.keys.size(), 0.99, 17);
    uint64_t value;
    timer.Reset();
    for (size_t i = 0; i < ops; i++) {
      lipp.Find(d.keys[zipf.Next()], &value);
    }
    const double lipp_srch =
        static_cast<double>(ops) / timer.ElapsedSeconds() / 1e6;

    DyTIS<uint64_t> dytis(bench::ScaledDyTISConfig(n));
    timer.Reset();
    for (uint64_t k : d.keys) {
      dytis.Insert(k, ValueFor(k));
    }
    const double dytis_ins =
        static_cast<double>(d.keys.size()) / timer.ElapsedSeconds() / 1e6;

    const char* outcome = lipp.BuildFailed()
                              ? "FAILED"
                              : (timed_out ? "THRASH" : "ok");
    std::printf("%-8s %10s %10zu %12.2f %12.3f %12.3f %12.3f\n",
                d.name.c_str(), outcome, lost,
                static_cast<double>(lipp.MemoryBytes()) / (1024 * 1024),
                lipp_ins, lipp_srch, dytis_ins);
    std::fflush(stdout);
  }
  std::printf("# paper reference: LIPP failed to build 4/5 datasets and "
              "lost keys on RM\n");
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
