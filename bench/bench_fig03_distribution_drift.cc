// Figure 3: key distribution divergence over consecutive sub-datasets.
//
// The paper plots the key histograms of three consecutive 0.1M-key
// sub-datasets for Review-L (virtually identical: low KDD) and Taxi
// (clearly different: high KDD).  This bench prints a compact ASCII
// rendering of those histograms plus the pairwise KL divergences.
#include <algorithm>
#include <cstdio>
#include <span>
#include <vector>

#include "bench/common.h"
#include "src/analysis/histogram.h"

namespace dytis {
namespace {

constexpr size_t kBins = 32;

void PrintAsciiHistogram(const Histogram& h) {
  uint64_t max_count = 1;
  for (size_t b = 0; b < h.bins(); b++) {
    max_count = std::max(max_count, h.count(b));
  }
  std::printf("  |");
  for (size_t b = 0; b < h.bins(); b++) {
    static const char kLevels[] = " .:-=+*#%@";
    const size_t level = h.count(b) * 9 / max_count;
    std::printf("%c", kLevels[level]);
  }
  std::printf("|\n");
}

void ReportDataset(const Dataset& d, size_t chunk) {
  if (d.keys.size() < 3 * chunk) {
    std::printf("%s: not enough keys for three sub-datasets\n",
                d.name.c_str());
    return;
  }
  // Use the middle of the stream, as the paper does (the ~116M-th keys).
  const size_t base = d.keys.size() / 2;
  std::span<const uint64_t> subs[3] = {
      {d.keys.data() + base, chunk},
      {d.keys.data() + base + chunk, chunk},
      {d.keys.data() + base + 2 * chunk, chunk},
  };
  // Common range across the three sub-datasets for comparable plots.
  uint64_t lo = subs[0][0];
  uint64_t hi = subs[0][0];
  for (const auto& s : subs) {
    for (uint64_t k : s) {
      lo = std::min(lo, k);
      hi = std::max(hi, k);
    }
  }
  std::printf("%s (keys %zu..%zu of the stream):\n", d.name.c_str(), base,
              base + 3 * chunk);
  std::vector<Histogram> hists;
  for (const auto& s : subs) {
    hists.emplace_back(lo, hi, kBins);
    hists.back().AddAll(s);
    PrintAsciiHistogram(hists.back());
  }
  std::printf("  KL(1st||2nd) = %.4f   KL(2nd||3rd) = %.4f\n\n",
              KlDivergence(hists[0], hists[1]),
              KlDivergence(hists[1], hists[2]));
}

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Figure 3: consecutive sub-dataset histograms");
  const size_t chunk = std::min<size_t>(100'000, n / 8 + 1);
  ReportDataset(bench::CachedDataset(DatasetId::kReviewL, n), chunk);
  ReportDataset(bench::CachedDataset(DatasetId::kTaxi, n), chunk);
  std::printf(
      "# paper reference: Review-L histograms are nearly identical, Taxi's "
      "differ visibly\n");
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
