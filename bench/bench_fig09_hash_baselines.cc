// Figure 9: DyTIS vs CCEH vs plain Extendible Hashing, insertion and
// search throughput over the five datasets.
//
// Paper shape: DyTIS beats EH on both operations everywhere; CCEH and
// DyTIS trade places on insertion; CCEH search is ~2x DyTIS (hash search is
// cheaper than the order-preserving remap), yet DyTIS search still beats
// B+-tree/ALEX/XIndex (Figure 8) while additionally supporting scans.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

struct HashResult {
  double insert_mops;
  double search_mops;
};

HashResult Run(KVIndex* index, const Dataset& d, size_t search_ops) {
  HashResult result;
  Timer timer;
  for (uint64_t k : d.keys) {
    index->Insert(k, ValueFor(k));
  }
  result.insert_mops =
      static_cast<double>(d.keys.size()) / timer.ElapsedSeconds() / 1e6;
  ScrambledZipfianGenerator zipf(d.keys.size(), 0.99, 7);
  timer.Reset();
  uint64_t value;
  for (size_t i = 0; i < search_ops; i++) {
    index->Find(d.keys[zipf.Next()], &value);
  }
  result.search_mops =
      static_cast<double>(search_ops) / timer.ElapsedSeconds() / 1e6;
  return result;
}

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Figure 9: DyTIS vs CCEH vs EH (Mops/s)");
  struct Entry {
    const char* name;
    std::unique_ptr<KVIndex> (*make)(size_t);
  };
  const Entry entries[] = {
      {"DyTIS", &bench::MakeDyTISCandidate},
      {"CCEH", &bench::MakeCcehCandidate},
      {"EH", &bench::MakeEhCandidate},
  };
  // Measure once per (dataset, index); print the two panels afterwards.
  std::vector<std::vector<HashResult>> results;
  const auto datasets = RealWorldDatasetIds();
  for (DatasetId id : datasets) {
    const Dataset& d = bench::CachedDataset(id, n);
    results.emplace_back();
    for (const auto& e : entries) {
      auto index = e.make(n);
      results.back().push_back(Run(index.get(), d, bench::BenchOps()));
    }
  }
  for (const char* phase : {"Insertion", "Search"}) {
    std::printf("\n(%s)\n%-8s %10s %10s %10s\n", phase, "dataset", "DyTIS",
                "CCEH", "EH");
    for (size_t di = 0; di < datasets.size(); di++) {
      std::printf("%-8s", DatasetShortName(datasets[di]));
      for (const HashResult& r : results[di]) {
        std::printf(" %10.3f",
                    phase[0] == 'I' ? r.insert_mops : r.search_mops);
      }
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
