// Figure 8: throughput of the seven YCSB-style workloads (Load, A, B, C,
// D', E, F) over the five real-world datasets for DyTIS, ALEX-10, ALEX-70,
// XIndex (70% bulk load) and the B+-tree.
//
// Paper shape to verify (Section 4.3):
//  * Load: DyTIS wins on high-KDD (TX) and ML; B+-tree beats DyTIS on
//    high-skew RM/RL, but DyTIS still beats the learned indexes there.
//  * C: DyTIS highest everywhere except MM where ALEX-70 edges it out.
//  * A/B/D'/E/F: DyTIS highest overall; XIndex trails badly.
#include <cstdio>
#include <vector>

#include "bench/common.h"

namespace dytis {
namespace {

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Figure 8: YCSB-style workload throughput (Mops/s)");
  bench::TraceSession trace("fig08_ycsb");
  JsonValue root = obs::BenchEnvelope("fig08_ycsb", n, bench::BenchOps());
  JsonValue& results = root["results"];
  bench::PrintPerfAvailability();
  const auto candidates = bench::PaperCandidates();
  const YcsbWorkload workloads[] = {
      YcsbWorkload::kLoad, YcsbWorkload::kA, YcsbWorkload::kB,
      YcsbWorkload::kC,    YcsbWorkload::kDPrime, YcsbWorkload::kE,
      YcsbWorkload::kF};

  for (YcsbWorkload w : workloads) {
    std::printf("\n(%s)\n", YcsbWorkloadName(w));
    std::printf("%-8s", "dataset");
    for (const auto& c : candidates) {
      std::printf(" %10s", c.name.c_str());
    }
    std::printf("\n");
    for (DatasetId id : RealWorldDatasetIds()) {
      const Dataset& d = bench::CachedDataset(id, n);
      std::printf("%-8s", d.name.c_str());
      for (const auto& c : candidates) {
        auto index = c.make(n);
        YcsbOptions options;
        options.bulk_load_fraction = c.bulk_fraction;
        options.run_ops = bench::BenchOps();
        obs::PerfRegion perf;
        const YcsbResult r = RunWorkload(index.get(), d, w, options);
        const JsonValue perf_json = bench::PerfJson(perf);
        if (r.supported) {
          std::printf(" %10.3f", r.throughput_mops);
        } else {
          std::printf(" %10s", "n/a");
        }
        std::fflush(stdout);
        JsonValue row = bench::YcsbResultJson(r);
        row["dataset"] = d.name;
        row["perf"] = perf_json;
        results.Append(std::move(row));
      }
      std::printf("\n");
    }
  }
  const std::string path = obs::WriteBenchJson("fig08_ycsb", root);
  if (!path.empty()) {
    std::printf("# json: %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
