// Figure 10: effect of the ALEX bulk-loading percentage.
//
// Runs ALEX with 10/30/50/70/90 % bulk loading over every dataset and
// workload, printing throughput normalised to ALEX-10 (the paper's y-axis).
// Paper finding to verify: "no regularity can be found between load size
// and performance" -- e.g. more bulk loading helps MM/ML but hurts or is
// neutral for RM.
#include <cstdio>
#include <vector>

#include "bench/common.h"

namespace dytis {
namespace {

int Main() {
  // Half-scale keys: this sweep runs 5 fractions x 7 workloads x 5 datasets.
  const size_t n = bench::BenchKeys() / 2 + 1;
  const size_t ops = bench::BenchOps() / 2 + 1;
  bench::PrintScale("Figure 10: ALEX bulk-load sweep (normalised to ALEX-10)");
  std::printf("# this bench uses keys=%zu ops=%zu (half scale)\n", n, ops);

  const double fractions[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  const YcsbWorkload workloads[] = {
      YcsbWorkload::kLoad, YcsbWorkload::kA, YcsbWorkload::kB,
      YcsbWorkload::kC,    YcsbWorkload::kDPrime, YcsbWorkload::kE,
      YcsbWorkload::kF};

  for (DatasetId id : RealWorldDatasetIds()) {
    const Dataset& d = bench::CachedDataset(id, n);
    std::printf("\n(%s)\n%-8s", d.name.c_str(), "wl");
    for (double f : fractions) {
      std::printf("   ALEX-%-3d", static_cast<int>(f * 100));
    }
    std::printf("\n");
    for (YcsbWorkload w : workloads) {
      std::printf("%-8s", YcsbWorkloadName(w));
      double base = 0.0;
      for (double f : fractions) {
        AlexAdapter index;
        YcsbOptions options;
        options.bulk_load_fraction = f;
        options.run_ops = ops;
        // ALEX-90 cannot preload only 80% for D'/E; like the paper, it
        // bulk-loads 90% and inserts the remaining 10%.
        if ((w == YcsbWorkload::kDPrime || w == YcsbWorkload::kE) &&
            f > options.preload_fraction) {
          options.preload_fraction = f;
        }
        const YcsbResult r = RunWorkload(&index, d, w, options);
        if (base == 0.0) {
          base = r.throughput_mops;
        }
        std::printf(" %10.3f",
                    base > 0.0 ? r.throughput_mops / base : 0.0);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
