// Figure 1: dynamic characteristics of the datasets.
//
// For every dataset of Groups 1 (real-world substitutes), 2 (shuffled) and
// 3 (simple synthetic), prints the variance-of-skewness metric (average
// number of error-bounded PLR linear models per key range) and the key
// distribution divergence (average KL divergence between consecutive
// sub-dataset histograms).  Expected shape (paper Figure 1):
//   RM/RL       high skewness, low KDD
//   MM/ML       low skewness, medium KDD
//   TX          medium skewness, high KDD
//   shuffled    same skewness, KDD collapses toward zero
//   Group 3     both low
#include <cstdio>

#include "bench/common.h"
#include "src/analysis/dynamics.h"

namespace dytis {
namespace {

void Report(const char* group, const Dataset& d, const DynamicsOptions& opt) {
  const auto c = MeasureDynamics(d.keys, opt);
  std::printf("%-8s %-14s %10.2f %12.4f\n", group, d.name.c_str(), c.skewness,
              c.kdd);
}

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Figure 1: dataset dynamic characteristics");
  DynamicsOptions opt;
  // The paper uses 0.1M keys per range; shrink with the dataset so small
  // runs still have several ranges.
  opt.keys_per_range = std::min<size_t>(100'000, n / 8 + 1);
  std::printf("%-8s %-14s %10s %12s\n", "group", "dataset",
              "skewness", "KDD");
  for (DatasetId id : RealWorldDatasetIds()) {
    Report("Group1", bench::CachedDataset(id, n), opt);
  }
  for (DatasetId id : RealWorldDatasetIds()) {
    Report("Group2", bench::CachedDataset(id, n, /*shuffled=*/true), opt);
  }
  for (DatasetId id : {DatasetId::kUniform, DatasetId::kLognormal,
                       DatasetId::kLonglat, DatasetId::kLongitudes}) {
    Report("Group3", bench::CachedDataset(id, n), opt);
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
