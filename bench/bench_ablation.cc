// Ablation study (beyond the paper's figures; DESIGN.md Section 4 "extra"):
// isolates the contribution of each DyTIS design decision by disabling it.
//
//   full       the scaled default configuration
//   no-remap   U_t = 0: utilization is always "high", so Algorithm 1 only
//              ever splits/expands (design consideration 3 disabled)
//   plain-EH   L_start = 63: the index never leaves the warm-up phase, i.e.
//              order-preserving Extendible hashing with 1-bucket segments
//              (and the stash as overflow valve) -- no learned CDF at all
//   one-eh     R = 0: no static first level; a single EH table carries the
//              whole key space (design of Section 3.2 disabled)
//
// Expected shape: no-remap hurts skewed datasets (RM/RL) most; plain-EH
// collapses under any density variation; one-eh concentrates rebalancing
// and slows inserts.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/dytis.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

struct Perf {
  double insert_mops;
  double search_mops;
  double scan_mops;
};

Perf Measure(const DyTISConfig& config, const Dataset& d, size_t ops) {
  DyTIS<uint64_t> index(config);
  Perf p;
  Timer timer;
  for (uint64_t k : d.keys) {
    index.Insert(k, ValueFor(k));
  }
  p.insert_mops =
      static_cast<double>(d.keys.size()) / timer.ElapsedSeconds() / 1e6;
  ScrambledZipfianGenerator zipf(d.keys.size(), 0.99, 21);
  uint64_t value;
  timer.Reset();
  for (size_t i = 0; i < ops; i++) {
    index.Find(d.keys[zipf.Next()], &value);
  }
  p.search_mops = static_cast<double>(ops) / timer.ElapsedSeconds() / 1e6;
  std::vector<std::pair<uint64_t, uint64_t>> buf(100);
  const size_t scans = ops / 100 + 1;
  timer.Reset();
  for (size_t i = 0; i < scans; i++) {
    index.Scan(d.keys[zipf.Next()], 100, buf.data());
  }
  p.scan_mops = static_cast<double>(scans) / timer.ElapsedSeconds() / 1e6;
  return p;
}

int Main() {
  const size_t n = bench::BenchKeys();
  const size_t ops = bench::BenchOps();
  bench::PrintScale("Ablation: contribution of each design decision");

  const DyTISConfig full = bench::ScaledDyTISConfig(n);
  DyTISConfig no_remap = full;
  no_remap.util_threshold = 0.0;
  DyTISConfig plain_eh = full;
  plain_eh.l_start = 63;
  DyTISConfig one_eh = full;
  one_eh.first_level_bits = 0;

  struct Variant {
    const char* name;
    const DyTISConfig* config;
  };
  const Variant variants[] = {{"full", &full},
                              {"no-remap", &no_remap},
                              {"plain-EH", &plain_eh},
                              {"one-eh", &one_eh}};

  // Measure once per (dataset, variant), print three panels.
  const auto datasets = RealWorldDatasetIds();
  std::vector<std::vector<Perf>> results;
  for (DatasetId id : datasets) {
    const Dataset& d = bench::CachedDataset(id, n);
    results.emplace_back();
    for (const auto& v : variants) {
      results.back().push_back(Measure(*v.config, d, ops));
    }
  }
  struct Panel {
    const char* name;
    double Perf::*field;
  };
  const Panel panels[] = {{"insert", &Perf::insert_mops},
                          {"search", &Perf::search_mops},
                          {"scan100", &Perf::scan_mops}};
  for (const auto& panel : panels) {
    std::printf("\n(%s, Mops/s)\n%-8s", panel.name, "dataset");
    for (const auto& v : variants) {
      std::printf(" %10s", v.name);
    }
    std::printf("\n");
    for (size_t di = 0; di < datasets.size(); di++) {
      std::printf("%-8s", DatasetShortName(datasets[di]));
      for (const Perf& p : results[di]) {
        std::printf(" %10.3f", p.*panel.field);
      }
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
