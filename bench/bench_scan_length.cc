// Scan-length sweep (extra; complements workload E which fixes length 100).
//
// The paper attributes the B+-tree's workload-E loss to its small data
// nodes (4-300x smaller than DyTIS segments force more node hops per
// scan).  Sweeping the scan length makes the crossover visible: short
// scans are dominated by positioning cost, long scans by sequential node
// traversal.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/baselines/btree.h"
#include "src/core/dytis.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

int Main() {
  const size_t n = bench::BenchKeys();
  const size_t ops = bench::BenchOps();
  bench::PrintScale("Scan-length sweep (Mkeys/s scanned)");
  const size_t lengths[] = {10, 100, 1000};
  for (DatasetId id : {DatasetId::kMapM, DatasetId::kTaxi}) {
    const Dataset& d = bench::CachedDataset(id, n);
    DyTIS<uint64_t> dytis(bench::ScaledDyTISConfig(n));
    BPlusTree<uint64_t, 128> btree;
    AlexIndex<uint64_t> alex;
    for (uint64_t k : d.keys) {
      dytis.Insert(k, ValueFor(k));
      btree.Insert(k, ValueFor(k));
      alex.Insert(k, ValueFor(k));
    }
    std::printf("\n(%s)\n%-8s %12s %12s %12s\n", d.name.c_str(), "length",
                "DyTIS", "B+-tree", "ALEX");
    for (size_t len : lengths) {
      std::vector<std::pair<uint64_t, uint64_t>> buf(len);
      const size_t scans = std::max<size_t>(1, ops / len);
      double mkeys[3];
      int col = 0;
      for (auto scan_fn : {+[](void* p, uint64_t k, size_t l,
                               std::pair<uint64_t, uint64_t>* out) {
                             return static_cast<DyTIS<uint64_t>*>(p)->Scan(
                                 k, l, out);
                           },
                           +[](void* p, uint64_t k, size_t l,
                               std::pair<uint64_t, uint64_t>* out) {
                             return static_cast<BPlusTree<uint64_t, 128>*>(p)
                                 ->Scan(k, l, out);
                           },
                           +[](void* p, uint64_t k, size_t l,
                               std::pair<uint64_t, uint64_t>* out) {
                             return static_cast<AlexIndex<uint64_t>*>(p)->Scan(
                                 k, l, out);
                           }}) {
        void* index = col == 0 ? static_cast<void*>(&dytis)
                               : (col == 1 ? static_cast<void*>(&btree)
                                           : static_cast<void*>(&alex));
        ScrambledZipfianGenerator zipf(d.keys.size(), 0.99, 29);
        size_t scanned = 0;
        Timer timer;
        for (size_t i = 0; i < scans; i++) {
          scanned += scan_fn(index, d.keys[zipf.Next()], len, buf.data());
        }
        mkeys[col] = static_cast<double>(scanned) /
                     timer.ElapsedSeconds() / 1e6;
        col++;
      }
      std::printf("%-8zu %12.2f %12.2f %12.2f\n", len, mkeys[0], mkeys[1],
                  mkeys[2]);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
