// Serving front end: shard-scaling throughput and p99-under-load.
//
// Section 1 (shard scaling): the sessionized load generator drives a
// DyTISServer over 1/2/4/8 shards with a fig12-style mixed workload
// (get/put/update/scan/erase, Zipfian popularity, connection churn), one
// closed-loop client per shard.  Shards share no state — separate locks,
// separate epoch domains — so on real multi-core hardware aggregate
// throughput scales with the shard count until cores run out.
//
// Section 2 (p99 under load): open-loop traffic at a swept offered rate
// against a fixed shard count.  Closed-loop capacity anchors the sweep;
// each row reports offered vs achieved rate and the end-to-end latency
// distribution (queue wait included) — the classic hockey-stick p99 curve.
//
// Section 3 (hot-key storm): reruns the scaling point with a large fraction
// of reads concentrated on one shard's range; the per-shard op counts in
// the row show the router skew that range partitioning admits.
//
// NOTE (DESIGN.md Section 5): on a single-hardware-core host the shard
// sweep measures pipeline overhead and fairness, not parallel speedup — the
// workers time-share one core, so aggregate throughput stays roughly flat.
// The per-row `hardware_threads` field says which regime a result file came
// from; the >= 3x @ 4 shards expectation applies when shards <= cores.
#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "src/server/loadgen.h"
#include "src/server/server.h"

namespace dytis {
namespace {

using server::DyTISServer;
using server::LoadGenOptions;
using server::LoadGenResult;
using server::OpenLoopResult;
using server::ServerIndex;
using server::ServerOptions;
using server::ServerStats;

JsonValue LatencySummaryJson(const LatencyRecorder& rec) {
  JsonValue j = JsonValue::Object();
  j["count"] = rec.count();
  j["mean_ns"] = rec.MeanNanos();
  j["p50_ns"] = rec.PercentileNanos(0.50);
  j["p99_ns"] = rec.PercentileNanos(0.99);
  j["p999_ns"] = rec.PercentileNanos(0.999);
  j["max_ns"] = rec.MaxNanos();
  return j;
}

JsonValue StatsJson(const ServerStats& stats) {
  JsonValue j = JsonValue::Object();
  j["requests"] = stats.requests;
  j["batches"] = stats.batches;
  j["shard_handoffs"] = stats.shard_handoffs;
  j["queue_depth_peak"] = stats.queue_depth_peak;
  JsonValue per_shard = JsonValue::Array();
  for (const uint64_t n : stats.shard_requests) {
    per_shard.Append(n);
  }
  j["shard_requests"] = std::move(per_shard);
  return j;
}

LoadGenOptions BenchLoadGenOptions() {
  LoadGenOptions options;
  options.preload_keys = bench::BenchKeys();
  options.total_ops = bench::BenchOps();
  // Fig12-style mixed tenant plus a read-mostly one: multi-tenant traffic
  // with different popularity shapes on the same shards.
  server::TenantMix mixed;  // defaults: 50/25/15/5/5, Zipfian 0.99
  server::TenantMix readmost;
  readmost.get = 0.90;
  readmost.put = 0.05;
  readmost.update = 0.05;
  readmost.scan = 0.0;
  readmost.erase = 0.0;
  readmost.zipfian = false;
  options.tenants = {mixed, readmost};
  return options;
}

struct ScalingPoint {
  JsonValue row;
  double throughput_mops = 0.0;
  uint64_t e2e_p50_ns = 0;
  uint64_t e2e_p99_ns = 0;
  uint64_t service_p99_ns = 0;
};

// One shard-scaling measurement: fresh index, preload, closed loop with one
// client per shard.
ScalingPoint RunScalingPoint(uint32_t shards, const LoadGenOptions& options) {
  const DyTISConfig shard_config = server::ShardScaledConfig(
      bench::ScaledDyTISConfig(options.preload_keys), shards);
  ServerIndex index(shards, shard_config);
  server::Preload(&index, options);
  ServerOptions sopts;
  sopts.pin_cores =
      std::thread::hardware_concurrency() >= shards;
  DyTISServer srv(&index, sopts);
  obs::PerfRegion perf;
  const LoadGenResult r =
      server::RunClosedLoop(&srv, options, static_cast<int>(shards));
  const JsonValue perf_json = bench::PerfJson(perf);
  const LatencyRecorder service = srv.ServiceLatency();
  const ServerStats stats = srv.Stats();
  srv.Stop();

  ScalingPoint point;
  JsonValue& row = point.row;
  row = JsonValue::Object();
  row["shards"] = shards;
  row["clients"] = shards;
  row["ops"] = r.ops;
  row["sessions"] = r.sessions_started;
  row["seconds"] = r.seconds;
  row["throughput_mops"] = r.throughput_mops;
  row["e2e"] = LatencySummaryJson(r.e2e);
  row["service"] = LatencySummaryJson(service);
  row["server"] = StatsJson(stats);
  row["state_hash"] = index.StateHash();
  row["final_keys"] = index.size();
  row["perf"] = perf_json;
  point.throughput_mops = r.throughput_mops;
  point.e2e_p50_ns = r.e2e.PercentileNanos(0.50);
  point.e2e_p99_ns = r.e2e.PercentileNanos(0.99);
  point.service_p99_ns = service.PercentileNanos(0.99);
  return point;
}

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Serving front end: shard scaling + p99 under load");
  bench::TraceSession trace("server");
  bench::PrintPerfAvailability();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("# hardware threads available: %u%s\n", hw,
              hw <= 1 ? " (single core: sweep measures overhead, "
                        "not parallel speedup)"
                      : "");

  const LoadGenOptions options = BenchLoadGenOptions();
  {
    const server::SlotStreams streams =
        server::GenerateSlotStreams(options);
    std::printf("# loadgen: seed=%#llx stream_hash=%#llx sessions=%zu\n",
                static_cast<unsigned long long>(options.seed),
                static_cast<unsigned long long>(server::StreamHash(streams)),
                streams.sessions_started);
  }

  // --- Section 1: shard scaling -------------------------------------------
  JsonValue root = obs::BenchEnvelope("server_shard_scaling", n,
                                      options.total_ops);
  root["hardware_threads"] = hw;
  JsonValue& results = root["results"];
  std::printf("\n(mixed workload, closed loop, 1 client/shard)\n"
              "%-8s %14s %12s %12s %12s\n",
              "shards", "tput (Mops)", "e2e p50", "e2e p99", "svc p99");
  double tput1 = 0.0;
  double tput4 = 0.0;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    ScalingPoint point = RunScalingPoint(shards, options);
    if (shards == 1) {
      tput1 = point.throughput_mops;
    }
    if (shards == 4) {
      tput4 = point.throughput_mops;
    }
    std::printf("%-8u %14.3f %10lluns %10lluns %10lluns\n", shards,
                point.throughput_mops,
                static_cast<unsigned long long>(point.e2e_p50_ns),
                static_cast<unsigned long long>(point.e2e_p99_ns),
                static_cast<unsigned long long>(point.service_p99_ns));
    std::fflush(stdout);
    results.Append(std::move(point.row));
  }
  root["speedup_4_shards"] = tput1 > 0.0 ? tput4 / tput1 : 0.0;
  std::printf("# 4-shard speedup over 1 shard: %.2fx%s\n",
              tput1 > 0.0 ? tput4 / tput1 : 0.0,
              hw <= 1 ? " (single-core host; see NOTE)" : "");

  // --- Section 3 data point: hot-key storm (router skew) ------------------
  {
    LoadGenOptions storm = options;
    storm.hot_storm_fraction = 0.5;
    storm.storm_keys = 64;
    ScalingPoint point = RunScalingPoint(4, storm);
    point.row["hot_storm_fraction"] = storm.hot_storm_fraction;
    std::printf("storm-4  %14.3f  (50%% of reads on one 64-key window)\n",
                point.throughput_mops);
    results.Append(std::move(point.row));
  }
  const std::string path = obs::WriteBenchJson("server_shard_scaling", root);
  if (!path.empty()) {
    std::printf("# json: %s\n", path.c_str());
  }

  // --- Section 2: p99 under load ------------------------------------------
  // Anchor the sweep at the 4-shard closed-loop capacity measured above.
  const uint32_t shards = 4;
  const double capacity_ops = tput4 * 1e6;
  JsonValue curve = obs::BenchEnvelope("server_p99_under_load", n,
                                       options.total_ops);
  curve["hardware_threads"] = hw;
  curve["shards"] = shards;
  curve["capacity_mops"] = tput4;
  JsonValue& rows = curve["results"];
  std::printf("\n(p99 under load, %u shards, open loop)\n"
              "%-12s %14s %12s %12s %12s\n",
              shards, "offered", "achieved", "e2e p50", "e2e p99", "e2e p999");
  for (const double frac : {0.25, 0.5, 0.75, 0.9}) {
    const double offered = capacity_ops * frac;
    if (offered < 1.0) {
      std::printf("# skipping load sweep: capacity measurement too small\n");
      break;
    }
    const DyTISConfig shard_config = server::ShardScaledConfig(
        bench::ScaledDyTISConfig(options.preload_keys), shards);
    ServerIndex index(shards, shard_config);
    server::Preload(&index, options);
    DyTISServer srv(&index);
    const OpenLoopResult r = server::RunOpenLoop(
        &srv, options, offered, /*threads=*/2);
    srv.Stop();
    std::printf("%-12.0f %14.0f %10lluns %10lluns %10lluns\n",
                r.offered_rate, r.achieved_rate,
                static_cast<unsigned long long>(r.e2e.PercentileNanos(0.50)),
                static_cast<unsigned long long>(r.e2e.PercentileNanos(0.99)),
                static_cast<unsigned long long>(r.e2e.PercentileNanos(0.999)));
    std::fflush(stdout);
    JsonValue row = JsonValue::Object();
    row["load_fraction"] = frac;
    row["offered_rate"] = r.offered_rate;
    row["achieved_rate"] = r.achieved_rate;
    row["ops"] = r.ops;
    row["seconds"] = r.seconds;
    row["e2e"] = LatencySummaryJson(r.e2e);
    rows.Append(std::move(row));
  }
  const std::string cpath = obs::WriteBenchJson("server_p99_under_load",
                                                curve);
  if (!cpath.empty()) {
    std::printf("# json: %s\n", cpath.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
