// Section 4.3 (text, no figure): performance on the Group-2 (shuffled) and
// Group-3 (simple synthetic) datasets.
//
// Paper claims to verify:
//  * Group 2 (shuffled real-world): DyTIS has the highest throughput for
//    all YCSB workloads except Load on RM/RL (and MM), as with the
//    originals.
//  * Group 3 Uniform (the learned-index ideal): ALEX-10 beats DyTIS by
//    ~18.6% on average; DyTIS still beats the B+-tree on every workload.
//  * Group 3 Longlat (most skewed of Group 3): DyTIS wins A/E/F, loses
//    slightly on Load/B/C/D'.
#include <cstdio>
#include <vector>

#include "bench/common.h"

namespace dytis {
namespace {

void RunPanel(const char* title, const Dataset& d) {
  const auto candidates = bench::PaperCandidates();
  const YcsbWorkload workloads[] = {
      YcsbWorkload::kLoad, YcsbWorkload::kA, YcsbWorkload::kB,
      YcsbWorkload::kC,    YcsbWorkload::kDPrime, YcsbWorkload::kE,
      YcsbWorkload::kF};
  std::printf("\n(%s)\n%-8s", title, "wl");
  for (const auto& c : candidates) {
    std::printf(" %10s", c.name.c_str());
  }
  std::printf("\n");
  for (YcsbWorkload w : workloads) {
    std::printf("%-8s", YcsbWorkloadName(w));
    for (const auto& c : candidates) {
      auto index = c.make(d.keys.size());
      YcsbOptions options;
      options.bulk_load_fraction = c.bulk_fraction;
      options.run_ops = bench::BenchOps();
      const YcsbResult r = RunWorkload(index.get(), d, w, options);
      if (r.supported) {
        std::printf(" %10.3f", r.throughput_mops);
      } else {
        std::printf(" %10s", "n/a");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Groups 2/3 workloads (Section 4.3 text, Mops/s)");

  // Group 2: shuffled versions of the dynamic datasets.
  for (DatasetId id : {DatasetId::kReviewM, DatasetId::kTaxi}) {
    const Dataset& d = bench::CachedDataset(id, n, /*shuffled=*/true);
    RunPanel(d.name.c_str(), d);
  }
  // Group 3: Uniform and Longlat.
  for (DatasetId id : {DatasetId::kUniform, DatasetId::kLonglat}) {
    const Dataset& d = bench::CachedDataset(id, n);
    RunPanel(d.name.c_str(), d);
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
