// Section 2.2 context: the static learned index (RMI) against DyTIS.
//
// RMI is the baseline the updatable learned indexes chase: when the data is
// static and bulk-loadable it has excellent search throughput, but it
// cannot absorb a single insert.  This bench bulk-loads each dataset into
// an RMI, measures search and scan against DyTIS (which inserted the same
// keys one by one), and reports the RMI's model error per dataset --
// showing how skewness (RM/RL) inflates it, which is the paper's argument
// for multiple local models.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/baselines/rmi.h"
#include "src/core/dytis.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

int Main() {
  const size_t n = bench::BenchKeys();
  const size_t ops = bench::BenchOps();
  bench::PrintScale("Static RMI vs DyTIS (Section 2.2 context)");
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "dataset", "RMI-srch",
              "DyTIS-srch", "RMI-scan", "DyTIS-scan", "RMI-err");
  for (DatasetId id : RealWorldDatasetIds()) {
    const Dataset& d = bench::CachedDataset(id, n);
    std::vector<std::pair<uint64_t, uint64_t>> entries;
    entries.reserve(d.keys.size());
    for (uint64_t k : d.keys) {
      entries.push_back({k, ValueFor(k)});
    }
    std::sort(entries.begin(), entries.end());
    StaticRmi<uint64_t> rmi(2048);
    rmi.BulkLoad(entries);
    DyTIS<uint64_t> dytis(bench::ScaledDyTISConfig(n));
    for (uint64_t k : d.keys) {
      dytis.Insert(k, ValueFor(k));
    }

    ScrambledZipfianGenerator zipf(d.keys.size(), 0.99, 23);
    uint64_t value;
    Timer timer;
    for (size_t i = 0; i < ops; i++) {
      rmi.Find(d.keys[zipf.Next()], &value);
    }
    const double rmi_srch =
        static_cast<double>(ops) / timer.ElapsedSeconds() / 1e6;
    timer.Reset();
    for (size_t i = 0; i < ops; i++) {
      dytis.Find(d.keys[zipf.Next()], &value);
    }
    const double dytis_srch =
        static_cast<double>(ops) / timer.ElapsedSeconds() / 1e6;

    std::vector<std::pair<uint64_t, uint64_t>> buf(100);
    const size_t scans = ops / 100 + 1;
    timer.Reset();
    for (size_t i = 0; i < scans; i++) {
      rmi.Scan(d.keys[zipf.Next()], 100, buf.data());
    }
    const double rmi_scan =
        static_cast<double>(scans) / timer.ElapsedSeconds() / 1e6;
    timer.Reset();
    for (size_t i = 0; i < scans; i++) {
      dytis.Scan(d.keys[zipf.Next()], 100, buf.data());
    }
    const double dytis_scan =
        static_cast<double>(scans) / timer.ElapsedSeconds() / 1e6;

    std::printf("%-8s %12.3f %12.3f %12.3f %12.3f %12.1f\n", d.name.c_str(),
                rmi_srch, dytis_srch, rmi_scan, dytis_scan,
                rmi.MeanAbsoluteError());
    std::fflush(stdout);
  }
  std::printf("# RMI is search-only: it cannot absorb inserts at all, the "
              "gap DyTIS closes\n");
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
