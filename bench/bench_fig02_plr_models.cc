// Figure 2: variance of skewness for three datasets.
//
// The paper shows the number of error-bounded PLR linear models needed to
// approximate the CDF of a fixed-size key range for Map-M (2 models,
// low skew), Taxi (8, medium) and Review-L (24, high).  This bench prints
// the per-range model counts of those three datasets, plus the full model
// count distribution (min / median / max over all ranges).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/analysis/dynamics.h"
#include "src/learned/plr.h"

namespace dytis {
namespace {

int Main() {
  const size_t n = bench::BenchKeys();
  bench::PrintScale("Figure 2: PLR models per key range");
  DynamicsOptions opt;
  opt.keys_per_range = std::min<size_t>(100'000, n / 8 + 1);
  std::printf("%-10s %8s %8s %8s %8s %10s\n", "dataset", "ranges", "min",
              "median", "max", "avg(skew)");
  for (DatasetId id :
       {DatasetId::kMapM, DatasetId::kTaxi, DatasetId::kReviewL}) {
    const Dataset& d = bench::CachedDataset(id, n);
    std::vector<uint64_t> sorted(d.keys);
    std::sort(sorted.begin(), sorted.end());
    const size_t chunk = std::min(opt.keys_per_range, sorted.size());
    std::vector<size_t> models;
    for (size_t start = 0; start + chunk <= sorted.size(); start += chunk) {
      PlrBuilder plr(PlrErrorBound(chunk, opt));
      for (size_t i = 0; i < chunk; i++) {
        plr.Add(sorted[start + i], static_cast<double>(i));
      }
      models.push_back(plr.Finish().size());
    }
    if (models.empty()) {
      continue;
    }
    std::sort(models.begin(), models.end());
    double avg = 0;
    for (size_t m : models) {
      avg += static_cast<double>(m);
    }
    avg /= static_cast<double>(models.size());
    std::printf("%-10s %8zu %8zu %8zu %8zu %10.2f\n", d.name.c_str(),
                models.size(), models.front(),
                models[models.size() / 2], models.back(), avg);
  }
  std::printf(
      "\n# paper reference: Map-M ~2 models, Taxi ~8, Review-L ~24 per 0.1M "
      "keys\n");
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
