// Section 3.4 (text): bucket-level concurrency exploration.
//
// The paper: "CCEH leverages concurrency at finer grains of buckets within
// segments.  We also explored this, but found that performance of DyTIS
// generally degrades ... due to the overhead of additional memory for the
// fine-grained locks and the handling of segments with variable sizes."
//
// This bench compares the shipped two-level locking (ConcurrentDyTIS)
// against the per-bucket-spinlock variant (FineGrainedDyTIS) on insert and
// search throughput plus memory, per dataset and thread count.
#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "src/core/dytis.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace dytis {
namespace {

struct Result {
  double insert_mops;
  double search_mops;
  double memory_mib;
};

template <typename Index>
Result Run(const DyTISConfig& config, const Dataset& d, int threads,
           size_t search_ops) {
  Index index(config);
  Result r;
  const size_t n = d.keys.size();
  Timer timer;
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; t++) {
      workers.emplace_back([&, t] {
        for (size_t i = static_cast<size_t>(t); i < n;
             i += static_cast<size_t>(threads)) {
          index.Insert(d.keys[i], ValueFor(d.keys[i]));
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  r.insert_mops = static_cast<double>(n) / timer.ElapsedSeconds() / 1e6;
  timer.Reset();
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; t++) {
      workers.emplace_back([&, t] {
        ScrambledZipfianGenerator zipf(n, 0.99, 31 + static_cast<uint64_t>(t));
        uint64_t value;
        for (size_t i = 0; i < search_ops / static_cast<size_t>(threads);
             i++) {
          index.Find(d.keys[zipf.Next()], &value);
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  r.search_mops =
      static_cast<double>(search_ops) / timer.ElapsedSeconds() / 1e6;
  r.memory_mib = static_cast<double>(index.MemoryBytes()) / (1024 * 1024);
  return r;
}

int Main() {
  const size_t n = bench::BenchKeys();
  const size_t ops = bench::BenchOps();
  bench::PrintScale(
      "Bucket-level locking exploration (Section 3.4, Mops/s and MiB)");
  const DyTISConfig config = bench::ScaledDyTISConfig(n);
  for (DatasetId id : {DatasetId::kReviewL, DatasetId::kTaxi}) {
    const Dataset& d = bench::CachedDataset(id, n);
    std::printf("\n(%s)\n%-8s %12s %12s %12s %12s %10s %10s\n",
                d.name.c_str(), "threads", "coarse-ins", "fine-ins",
                "coarse-srch", "fine-srch", "coarse-MiB", "fine-MiB");
    for (int t : {1, 2, 4}) {
      const Result coarse =
          Run<ConcurrentDyTIS<uint64_t>>(config, d, t, ops);
      const Result fine = Run<FineGrainedDyTIS<uint64_t>>(config, d, t, ops);
      std::printf("%-8d %12.3f %12.3f %12.3f %12.3f %10.2f %10.2f\n", t,
                  coarse.insert_mops, fine.insert_mops, coarse.search_mops,
                  fine.search_mops, coarse.memory_mib, fine.memory_mib);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace dytis

int main() { return dytis::Main(); }
