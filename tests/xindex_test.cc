#include "src/baselines/xindex/xindex.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "src/util/rng.h"

namespace dytis {
namespace {

using XIndex = XIndexLike<uint64_t>;

std::vector<std::pair<uint64_t, uint64_t>> SortedEntries(size_t n,
                                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (size_t i = 0; i < n; i++) {
    entries.push_back({rng.Next(), rng.Next()});
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](auto& a, auto& b) { return a.first == b.first; }),
                entries.end());
  return entries;
}

TEST(XIndexTest, EmptyIndex) {
  XIndex idx;
  uint64_t v;
  EXPECT_FALSE(idx.Find(1, &v));
  EXPECT_FALSE(idx.Erase(1));
  EXPECT_EQ(idx.size(), 0u);
}

TEST(XIndexTest, BulkLoadAndFind) {
  const auto entries = SortedEntries(100'000, 1);
  XIndex idx;
  idx.BulkLoad(entries);
  EXPECT_EQ(idx.size(), entries.size());
  EXPECT_GT(idx.NumGroups(), 1u);
  for (size_t i = 0; i < entries.size(); i += 97) {
    uint64_t v;
    ASSERT_TRUE(idx.Find(entries[i].first, &v)) << i;
    ASSERT_EQ(v, entries[i].second);
  }
  EXPECT_FALSE(idx.Find(entries[0].first + 1, nullptr));
}

TEST(XIndexTest, DeltaInsertsThenCompaction) {
  const auto entries = SortedEntries(10'000, 2);
  XIndex::Options options;
  options.delta_slack = 16;  // frequent compactions
  XIndex idx(options);
  idx.BulkLoad(entries);
  Rng rng(3);
  std::vector<uint64_t> extra;
  for (int i = 0; i < 20'000; i++) {
    const uint64_t k = rng.Next() | 1;  // avoid collisions w/ entries (even)
    extra.push_back(k);
    idx.Insert(k, k + 1);
  }
  idx.FlushCompactions();
  for (uint64_t k : extra) {
    uint64_t v;
    ASSERT_TRUE(idx.Find(k, &v));
    ASSERT_EQ(v, k + 1);
  }
  // Bulk entries still present after compactions.
  for (size_t i = 0; i < entries.size(); i += 53) {
    ASSERT_TRUE(idx.Find(entries[i].first, nullptr));
  }
}

TEST(XIndexTest, InsertWithoutBulkLoad) {
  XIndex idx;
  for (uint64_t k = 0; k < 20'000; k++) {
    ASSERT_TRUE(idx.Insert(k * 3, k));
  }
  EXPECT_EQ(idx.size(), 20'000u);
  for (uint64_t k = 0; k < 20'000; k += 17) {
    uint64_t v;
    ASSERT_TRUE(idx.Find(k * 3, &v));
    ASSERT_EQ(v, k);
  }
}

TEST(XIndexTest, UpdateInPlace) {
  XIndex idx;
  idx.Insert(10, 1);
  EXPECT_FALSE(idx.Insert(10, 2));  // update, not new
  uint64_t v;
  ASSERT_TRUE(idx.Find(10, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(idx.Update(10, 3));
  ASSERT_TRUE(idx.Find(10, &v));
  EXPECT_EQ(v, 3u);
  EXPECT_FALSE(idx.Update(11, 4));
}

TEST(XIndexTest, EraseTombstonesAndResurrection) {
  const auto entries = SortedEntries(1000, 4);
  XIndex idx;
  idx.BulkLoad(entries);
  const uint64_t k = entries[500].first;
  EXPECT_TRUE(idx.Erase(k));
  EXPECT_FALSE(idx.Find(k, nullptr));
  EXPECT_FALSE(idx.Erase(k));
  EXPECT_EQ(idx.size(), entries.size() - 1);
  // Reinsert a deleted key.
  EXPECT_TRUE(idx.Insert(k, 777));
  uint64_t v;
  ASSERT_TRUE(idx.Find(k, &v));
  EXPECT_EQ(v, 777u);
  EXPECT_EQ(idx.size(), entries.size());
}

TEST(XIndexTest, EraseFromDeltaToo) {
  XIndex idx;
  idx.Insert(42, 1);  // lives in delta (no compaction yet)
  EXPECT_TRUE(idx.Erase(42));
  EXPECT_FALSE(idx.Find(42, nullptr));
  EXPECT_TRUE(idx.Insert(42, 2));
  uint64_t v;
  ASSERT_TRUE(idx.Find(42, &v));
  EXPECT_EQ(v, 2u);
}

TEST(XIndexTest, ScanMergesBaseAndDelta) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t k = 0; k < 1000; k++) {
    entries.push_back({k * 10, k});
  }
  XIndex idx;
  idx.BulkLoad(entries);
  // Delta keys interleaved between base keys.
  for (uint64_t k = 0; k < 1000; k += 2) {
    idx.Insert(k * 10 + 5, k);
  }
  std::vector<std::pair<uint64_t, uint64_t>> out(100);
  ASSERT_EQ(idx.Scan(0, 100, out.data()), 100u);
  for (size_t i = 1; i < 100; i++) {
    ASSERT_GT(out[i].first, out[i - 1].first) << "scan order broken at " << i;
  }
  // First three: 0, 5, 10.
  EXPECT_EQ(out[0].first, 0u);
  EXPECT_EQ(out[1].first, 5u);
  EXPECT_EQ(out[2].first, 10u);
}

TEST(XIndexTest, ScanSkipsTombstones) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t k = 0; k < 100; k++) {
    entries.push_back({k, k});
  }
  XIndex idx;
  idx.BulkLoad(entries);
  idx.Erase(1);
  idx.Erase(2);
  std::vector<std::pair<uint64_t, uint64_t>> out(5);
  ASSERT_EQ(idx.Scan(0, 5, out.data()), 5u);
  EXPECT_EQ(out[0].first, 0u);
  EXPECT_EQ(out[1].first, 3u);
}

TEST(XIndexTest, GroupSplitOnOversize) {
  XIndex::Options options;
  options.max_group_size = 2048;
  options.delta_slack = 64;
  XIndex idx(options);
  const size_t before = idx.NumGroups();
  for (uint64_t k = 0; k < 50'000; k++) {
    idx.Insert(k << 20, k);
  }
  EXPECT_GT(idx.NumGroups(), before);
  for (uint64_t k = 0; k < 50'000; k += 31) {
    uint64_t v;
    ASSERT_TRUE(idx.Find(k << 20, &v));
    ASSERT_EQ(v, k);
  }
}

TEST(XIndexTest, BackgroundCompactionThread) {
  XIndex::Options options;
  options.background_compaction = true;
  options.delta_slack = 32;
  XIndex idx(options);
  Rng rng(5);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 30'000; i++) {
    keys.push_back(rng.Next());
  }
  for (uint64_t k : keys) {
    idx.Insert(k, k ^ 7);
  }
  idx.FlushCompactions();
  for (uint64_t k : keys) {
    uint64_t v;
    ASSERT_TRUE(idx.Find(k, &v));
    ASSERT_EQ(v, k ^ 7);
  }
}

TEST(XIndexTest, ConcurrentReadersAndWriters) {
  const auto entries = SortedEntries(50'000, 6);
  XIndex idx;
  idx.BulkLoad(entries);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 100);
      for (int i = 0; i < 20'000; i++) {
        if (t % 2 == 0) {
          const auto& e = entries[rng.NextBelow(entries.size())];
          uint64_t v;
          if (!idx.Find(e.first, &v)) {
            failed = true;
          }
        } else {
          idx.Insert(rng.Next(), 1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace dytis
