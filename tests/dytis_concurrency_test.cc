// Concurrency tests for the two-level-locked DyTIS build (Section 3.4).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dytis.h"
#include "src/datasets/dataset.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

DyTISConfig SmallConfig() {
  DyTISConfig c;
  c.first_level_bits = 3;
  c.bucket_bytes = 256;  // 16 pairs per bucket
  c.l_start = 2;
  c.max_global_depth = 14;
  return c;
}

using Index = ConcurrentDyTIS<uint64_t>;

TEST(DyTISConcurrencyTest, ParallelDisjointInserts) {
  Index idx(SmallConfig());
  const int kThreads = 4;
  const size_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 1);
      for (size_t i = 0; i < kPerThread; i++) {
        // Disjoint key spaces per thread (top bits).
        const uint64_t key =
            (static_cast<uint64_t>(t) << 60) | (rng.Next() >> 4);
        idx.Insert(key, key + 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  // Re-run the exact same generators to verify presence.
  for (int t = 0; t < kThreads; t++) {
    Rng rng(static_cast<uint64_t>(t) * 7919 + 1);
    for (size_t i = 0; i < kPerThread; i++) {
      const uint64_t key = (static_cast<uint64_t>(t) << 60) | (rng.Next() >> 4);
      uint64_t v = 0;
      ASSERT_TRUE(idx.Find(key, &v));
      ASSERT_EQ(v, key + 1);
    }
  }
}

TEST(DyTISConcurrencyTest, ParallelOverlappingInserts) {
  // All threads hammer the same EHs: exercises split/doubling under the
  // exclusive directory lock.
  Index idx(SmallConfig());
  const int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<size_t> new_keys{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 17);
      for (size_t i = 0; i < 15'000; i++) {
        if (idx.Insert(rng.NextBelow(40'000) << 40, 1)) {
          new_keys.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  EXPECT_EQ(idx.size(), new_keys.load());
}

TEST(DyTISConcurrencyTest, ReadersDuringWrites) {
  Index idx(SmallConfig());
  const Dataset d = MakeDataset(DatasetId::kReviewM, 40'000, 9);
  // Pre-load half; readers query the preloaded half while writers add the
  // rest.
  const size_t half = d.keys.size() / 2;
  for (size_t i = 0; i < half; i++) {
    idx.Insert(d.keys[i], i);
  }
  std::atomic<bool> reader_failed{false};
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; t++) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 31);
      while (!done.load(std::memory_order_acquire)) {
        const size_t i = rng.NextBelow(half);
        uint64_t v = 0;
        if (!idx.Find(d.keys[i], &v) || v != i) {
          reader_failed.store(true);
        }
      }
    });
  }
  std::thread writer([&] {
    for (size_t i = half; i < d.keys.size(); i++) {
      idx.Insert(d.keys[i], i);
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_FALSE(reader_failed.load());
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  EXPECT_EQ(idx.size(), d.keys.size());
}

TEST(DyTISConcurrencyTest, ScannersDuringWrites) {
  Index idx(SmallConfig());
  const Dataset d = MakeDataset(DatasetId::kMapM, 30'000, 11);
  const size_t half = d.keys.size() / 2;
  for (size_t i = 0; i < half; i++) {
    idx.Insert(d.keys[i], i);
  }
  std::atomic<bool> scan_failed{false};
  std::atomic<bool> done{false};
  std::thread scanner([&] {
    Rng rng(51);
    std::vector<std::pair<uint64_t, uint64_t>> out(100);
    while (!done.load(std::memory_order_acquire)) {
      const size_t got = idx.Scan(rng.Next(), 100, out.data());
      for (size_t i = 1; i < got; i++) {
        if (out[i].first <= out[i - 1].first) {
          scan_failed.store(true);  // scans must always be sorted
        }
      }
    }
  });
  std::thread writer([&] {
    for (size_t i = half; i < d.keys.size(); i++) {
      idx.Insert(d.keys[i], i);
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  scanner.join();
  EXPECT_FALSE(scan_failed.load());
}

TEST(DyTISConcurrencyTest, MixedOpsStress) {
  Index idx(SmallConfig());
  const int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 101 + 7);
      std::vector<std::pair<uint64_t, uint64_t>> out(50);
      for (int i = 0; i < 20'000; i++) {
        const uint64_t key = rng.NextBelow(10'000) << 38;
        switch (rng.NextBelow(5)) {
          case 0:
          case 1:
            idx.Insert(key, key);
            break;
          case 2:
            idx.Erase(key);
            break;
          case 3: {
            uint64_t v = 0;
            if (idx.Find(key, &v) && v != key) {
              failed.store(true);  // values are always key
            }
            break;
          }
          default:
            idx.Scan(key, 50, out.data());
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
}

TEST(DyTISConcurrencyTest, SingleThreadPolicyMatchesConcurrent) {
  // The two builds must produce identical contents for identical inputs.
  DyTIS<uint64_t> st(SmallConfig());
  Index mt(SmallConfig());
  const Dataset d = MakeDataset(DatasetId::kTaxi, 20'000, 13);
  for (size_t i = 0; i < d.keys.size(); i++) {
    ASSERT_EQ(st.Insert(d.keys[i], i), mt.Insert(d.keys[i], i));
  }
  EXPECT_EQ(st.size(), mt.size());
  std::vector<std::pair<uint64_t, uint64_t>> a(d.keys.size());
  std::vector<std::pair<uint64_t, uint64_t>> b(d.keys.size());
  ASSERT_EQ(st.Scan(0, d.keys.size(), a.data()),
            mt.Scan(0, d.keys.size(), b.data()));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dytis
