// White-box tests for the synthetic key generators: each substitute must
// exhibit the structural properties the corresponding real-world dataset is
// known for (beyond the aggregate metrics checked in datasets_test).
#include "src/datasets/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/util/bitops.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

TEST(TaxiGenTest, PickupPrefixAdvancesMonotonically) {
  const auto keys = GenerateTaxiKeys(50'000, 1);
  // Pickup seconds live in the top 34 bits; they must be (weakly)
  // increasing over the stream — trips arrive in time order.
  uint64_t prev = 0;
  size_t inversions = 0;
  for (uint64_t k : keys) {
    const uint64_t pickup = k >> 30;
    if (pickup < prev) {
      inversions++;
    }
    prev = pickup;
  }
  // MakeUnique may perturb low bits only, never the pickup prefix.
  EXPECT_EQ(inversions, 0u);
}

TEST(TaxiGenTest, SpansSimulatedYears) {
  TaxiGenOptions options;
  const auto keys = GenerateTaxiKeys(50'000, 2, options);
  const uint64_t first = keys.front() >> 30;
  const uint64_t last = keys.back() >> 30;
  // Roughly `years` of simulated seconds elapse (demand noise makes it
  // inexact; accept a wide band).
  const double span_years =
      static_cast<double>(last - first) / (365.25 * 86400.0);
  EXPECT_GT(span_years, options.years * 0.3);
  EXPECT_LT(span_years, options.years * 4.0);
}

TEST(TaxiGenTest, DurationsAreBounded) {
  const auto keys = GenerateTaxiKeys(20'000, 3);
  for (uint64_t k : keys) {
    const uint64_t duration = LowBits(k, 30);
    EXPECT_LT(duration, Pow2(30));
  }
}

TEST(MapGenTest, LongitudeMarginalIsBroad) {
  const auto keys = GenerateMapKeys(60'000, 4);
  // Keys = [lon:32][lat:31]; the longitude marginal must cover most of the
  // range (a continent, not a city): count distinct top-6-bit prefixes.
  std::set<uint64_t> prefixes;
  for (uint64_t k : keys) {
    prefixes.insert(k >> 57);
  }
  EXPECT_GT(prefixes.size(), 40u);  // of 64 possible
}

TEST(MapGenTest, InsertionOrderHasSpatialLocality) {
  // Consecutive keys should often share a longitude region (the sweep):
  // compare adjacent-pair prefix agreement against a shuffled control.
  const auto keys = GenerateMapKeys(60'000, 5);
  auto agreement = [](const std::vector<uint64_t>& ks) {
    size_t same = 0;
    for (size_t i = 1; i < ks.size(); i++) {
      same += (ks[i] >> 58) == (ks[i - 1] >> 58) ? 1 : 0;
    }
    return static_cast<double>(same) / static_cast<double>(ks.size() - 1);
  };
  std::vector<uint64_t> shuffled(keys);
  Rng rng(6);
  for (size_t i = shuffled.size(); i > 1; i--) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBelow(i)]);
  }
  EXPECT_GT(agreement(keys), agreement(shuffled) * 1.5);
}

TEST(ReviewGenTest, PopularItemsDominateButAreScattered) {
  ReviewGenOptions options;
  options.num_items = 5'000;
  const auto keys = GenerateReviewKeys(60'000, 7, options);
  // Count keys per item (top 24 bits).
  std::map<uint64_t, size_t> per_item;
  for (uint64_t k : keys) {
    per_item[k >> 40]++;
  }
  // Zipf head: the hottest item carries far more than the mean...
  size_t max_count = 0;
  uint64_t hottest = 0;
  for (const auto& [item, count] : per_item) {
    if (count > max_count) {
      max_count = count;
      hottest = item;
    }
  }
  const double mean =
      static_cast<double>(keys.size()) / static_cast<double>(per_item.size());
  EXPECT_GT(static_cast<double>(max_count), mean * 10);
  // ...and popularity must not correlate with the id value: the hottest
  // item should not systematically be the smallest id.
  EXPECT_GT(hottest, 0u);
}

TEST(ReviewGenTest, TimeFieldIncreasesOverStream) {
  const auto keys = GenerateReviewKeys(10'000, 8);
  // Low 20 bits carry the timestamp; over the stream it trends upward
  // (compare the first and last deciles' averages).
  double head = 0;
  double tail = 0;
  const size_t d = keys.size() / 10;
  for (size_t i = 0; i < d; i++) {
    head += static_cast<double>(LowBits(keys[i], 20));
    tail += static_cast<double>(LowBits(keys[keys.size() - 1 - i], 20));
  }
  EXPECT_GT(tail, head * 2);
}

TEST(SynthGenTest, LognormalIsHeavyTailed) {
  const auto keys = GenerateLognormalKeys(50'000, 9);
  std::vector<uint64_t> sorted(keys);
  std::sort(sorted.begin(), sorted.end());
  // Median far below mean: heavy right tail.
  const uint64_t median = sorted[sorted.size() / 2];
  double mean = 0;
  for (uint64_t k : sorted) {
    mean += static_cast<double>(k) / static_cast<double>(sorted.size());
  }
  EXPECT_GT(mean, static_cast<double>(median) * 2);
}

TEST(SynthGenTest, LongitudesStayInRange) {
  const auto keys = GenerateLongitudesKeys(20'000, 10);
  for (uint64_t k : keys) {
    EXPECT_LT(k, static_cast<uint64_t>(360.0 * 1e15) + (1 << 16));
  }
}

TEST(SynthGenTest, LonglatCompoundBounds) {
  const auto keys = GenerateLonglatKeys(20'000, 11);
  // compound = 180*(lon+180) + (lat+90) <= 180*360 + 180.
  const uint64_t bound = static_cast<uint64_t>((180.0 * 360.0 + 181.0) * 1e12);
  for (uint64_t k : keys) {
    EXPECT_LE(k, bound);
  }
}

}  // namespace
}  // namespace dytis
