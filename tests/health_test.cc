// Structure-health telemetry tests: HealthReport vs the index's own gauges
// after structural churn, the EBR epoch-lag gauge, WAL latency sensors,
// the background HealthAggregator (gauge publishing + SIGUSR1 dumps), and
// the perf-counter fallback contract.
#include "src/obs/health.h"

#include <gtest/gtest.h>
#include <signal.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "src/core/dytis.h"
#include "src/datasets/dataset.h"
#include "src/obs/metrics.h"
#include "src/obs/perf_counters.h"
#include "src/recovery/wal.h"
#include "src/sync/ebr.h"

namespace dytis {
namespace {

// Small geometry that forces plenty of structural activity at test scale
// (same shape the tracer tests use).
DyTISConfig BusyConfig() {
  DyTISConfig config;
  config.first_level_bits = 2;
  config.bucket_bytes = 256;
  config.l_start = 3;
  return config;
}

// The acceptance property: a HealthReport must agree with the gauges the
// index already exposes (size / NumSegments / StashEntries / BucketSlots /
// stats counters) after a churn-heavy workload, and its per-segment PLR
// sample count must account for every bucket-resident key.
TEST(HealthReportTest, MatchesIndexGaugesAfterChurn) {
  const Dataset d = MakeDataset(DatasetId::kTaxi, 30'000, 11);
  DyTIS<uint64_t> index(BusyConfig());
  for (uint64_t k : d.keys) {
    index.Insert(k, k);
  }
  // Erase a slice to exercise merges too.
  for (size_t i = 0; i < d.keys.size(); i++) {
    if (i % 5 == 0) {
      index.Erase(d.keys[i]);
    }
  }

  const obs::HealthReport report = index.HealthReport();

  EXPECT_EQ(report.num_keys, index.size());
  EXPECT_EQ(report.num_segments, index.NumSegments());
  EXPECT_EQ(report.stash_entries, index.StashEntries());
  EXPECT_EQ(report.bucket_slots, index.BucketSlots());
  EXPECT_EQ(report.max_global_depth, index.MaxGlobalDepth());
  EXPECT_GT(report.index_bytes, 0u);
  EXPECT_GT(report.load_factor, 0.0);
  EXPECT_GT(report.uptime_ns, 0u);
  EXPECT_GT(report.collected_ns, 0u);
  EXPECT_EQ(report.obs_enabled, DYTIS_OBS_ENABLED != 0);

  // Structural counters are the same snapshot DyTISStats takes.
  const DyTISStatsView v = index.stats().View();
  ASSERT_GT(v.splits, 0u);
  EXPECT_EQ(report.counters.splits, v.splits);
  EXPECT_EQ(report.counters.remappings, v.remappings);
  EXPECT_EQ(report.counters.expansions, v.expansions);
  EXPECT_EQ(report.counters.merges, v.merges);

  // Per-segment records cover the whole structure.
  EXPECT_EQ(report.segments.size(), report.num_segments);
  ASSERT_FALSE(report.tables.empty());
  uint64_t table_keys = 0;
  uint64_t table_segments = 0;
  for (const obs::TableHealth& t : report.tables) {
    table_keys += t.num_keys;
    table_segments += t.num_segments;
    EXPECT_LE(t.min_local_depth, t.max_local_depth);
    EXPECT_LE(t.max_local_depth, t.global_depth);
  }
  EXPECT_EQ(table_keys, report.num_keys);
  EXPECT_EQ(table_segments, report.num_segments);

  // Every stored key is either a measured bucket resident (one PLR error
  // sample) or a stash resident.
  EXPECT_EQ(report.plr.samples + report.stash_entries, report.num_keys);
  uint64_t hist_total = 0;
  for (uint64_t c : report.plr.error_hist) {
    hist_total += c;
  }
  EXPECT_EQ(hist_total, report.plr.samples);
  EXPECT_GE(report.plr.max_error, report.plr.MeanError());

  // The fill histogram counts every bucket exactly once.
  uint64_t buckets_total = 0;
  for (uint64_t c : report.fill_hist) {
    buckets_total += c;
  }
  uint64_t buckets_expected = 0;
  for (const obs::SegmentHealth& s : report.segments) {
    buckets_expected += s.num_buckets;
    EXPECT_GT(s.bucket_capacity, 0u);
    EXPECT_LE(s.full_buckets, s.num_buckets);
    EXPECT_LE(s.stash_size, s.stash_bound);
  }
  EXPECT_EQ(buckets_total, buckets_expected);
  // Full buckets land in the dedicated last bin.
  EXPECT_EQ(report.fill_hist[obs::kFillBins - 1], report.full_buckets);

  // Derived signals stay in range.
  EXPECT_GE(report.remap_collision_rate, 0.0);
  EXPECT_LE(report.remap_collision_rate, 1.0);
  EXPECT_GE(report.stash_rate, 0.0);
  EXPECT_LE(report.stash_rate, 1.0);
  EXPECT_GT(report.splits_per_sec, 0.0);
}

TEST(HealthReportTest, JsonAndTextSurfaces) {
  const Dataset d = MakeDataset(DatasetId::kReviewM, 10'000, 7);
  DyTIS<uint64_t> index(BusyConfig());
  for (uint64_t k : d.keys) {
    index.Insert(k, k);
  }
  const obs::HealthReport report = index.HealthReport();

  const std::string full = report.ToJson().Dump();
  for (const char* section :
       {"\"gauges\"", "\"structural\"", "\"derived\"", "\"plr\"",
        "\"fill_hist\"", "\"reclamation\"", "\"wal\"", "\"tables\"",
        "\"segments\"", "\"remap_collision_rate\"", "\"epoch_lag\""}) {
    EXPECT_NE(full.find(section), std::string::npos) << section;
  }
  // include_segments=false drops only the per-segment array.
  const std::string compact = report.ToJson(false).Dump();
  EXPECT_EQ(compact.find("\"segments\""), std::string::npos);
  EXPECT_NE(compact.find("\"plr\""), std::string::npos);
  EXPECT_LT(compact.size(), full.size());

  const std::string text = report.ToText();
  EXPECT_NE(text.find("keys"), std::string::npos);
  EXPECT_NE(text.find("segments"), std::string::npos);
  EXPECT_NE(text.find("plr"), std::string::npos);
}

TEST(HealthReportTest, EmptyIndexReportIsWellFormed) {
  DyTIS<uint64_t> index;
  const obs::HealthReport report = index.HealthReport();
  EXPECT_EQ(report.num_keys, 0u);
  EXPECT_EQ(report.plr.samples, 0u);
  EXPECT_EQ(report.plr.MeanError(), 0.0);
  EXPECT_EQ(report.remap_collision_rate, 0.0);
  // Serialisation never divides by zero.
  EXPECT_FALSE(report.ToJson().Dump().empty());
  EXPECT_FALSE(report.ToText().empty());
}

// --- EBR epoch lag ---------------------------------------------------------

TEST(EpochLagTest, HeldGuardShowsLagAfterAdvance) {
  EpochDomain domain;
  EXPECT_EQ(domain.Stats().epoch_lag, 0u);

  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  std::thread reader([&] {
    EpochGuard guard(&domain);
    {
      std::lock_guard<std::mutex> lock(mu);
      entered = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  // The reader announces the current epoch, so one advance succeeds — and
  // from then on the pinned reader trails the global epoch by one.
  domain.TryReclaim(0);
  const EpochStats pinned = domain.Stats();
  EXPECT_EQ(pinned.epoch_lag, 1u);
  EXPECT_GE(pinned.advances, 1u);

  // Further advances are blocked by the stale announcement; the lag must
  // not grow past the reader's generation.
  domain.TryReclaim(0);
  EXPECT_EQ(domain.Stats().epoch_lag, 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  reader.join();
  // No reader in flight: lag reads zero again.
  EXPECT_EQ(domain.Stats().epoch_lag, 0u);
}

// --- WAL latency sensors ---------------------------------------------------

TEST(WalLatencyTest, AppendAndSyncFeedHealthGauges) {
  obs::MetricsRegistry::Global().Reset();
  const std::string path =
      std::string(::testing::TempDir()) + "/dytis_health_wal.log";
  std::remove(path.c_str());

  recovery::WalWriter writer;
  recovery::WalOptions options;
  options.sync_every = 0;  // explicit Sync below
  std::string error;
  ASSERT_TRUE(writer.Open(path, 1, options, &error)) << error;
  constexpr int kAppends = 32;
  for (int i = 0; i < kAppends; i++) {
    uint64_t payload = static_cast<uint64_t>(i);
    ASSERT_TRUE(writer.Append(&payload, sizeof(payload), nullptr, &error))
        << error;
  }
  ASSERT_TRUE(writer.Sync(&error)) << error;
  writer.Close();
  std::remove(path.c_str());

  auto& registry = obs::MetricsRegistry::Global();
#if DYTIS_OBS_ENABLED
  EXPECT_EQ(registry.GetHistogram("wal.append_ns").Count(),
            static_cast<uint64_t>(kAppends));
  EXPECT_EQ(registry.GetHistogram("wal.fsync_ns").Count(), 1u);

  // And a HealthReport picks the same numbers up.
  DyTIS<uint64_t> index;
  index.Insert(1, 1);
  const obs::HealthReport report = index.HealthReport();
  EXPECT_EQ(report.wal_append.count, static_cast<uint64_t>(kAppends));
  EXPECT_EQ(report.wal_fsync.count, 1u);
  EXPECT_GT(report.wal_append.max_ns, 0u);
#else
  // DYTIS_OBS=OFF: the push-side sensors compile out entirely.
  EXPECT_EQ(registry.GetHistogram("wal.append_ns").Count(), 0u);
  EXPECT_EQ(registry.GetHistogram("wal.fsync_ns").Count(), 0u);
  DyTIS<uint64_t> index;
  index.Insert(1, 1);
  const obs::HealthReport report = index.HealthReport();
  EXPECT_FALSE(report.obs_enabled);
  EXPECT_EQ(report.wal_append.count, 0u);
  // Pull-based collection still works without the obs hooks.
  EXPECT_EQ(report.num_keys, 1u);
#endif
  obs::MetricsRegistry::Global().Reset();
}

// --- HealthAggregator ------------------------------------------------------

TEST(HealthAggregatorTest, PublishesGaugesAndDumpsOnSigusr1) {
  obs::MetricsRegistry::Global().Reset();
  const std::string dump_path =
      std::string(::testing::TempDir()) + "/dytis_health_dump.txt";
  std::remove(dump_path.c_str());

  const Dataset d = MakeDataset(DatasetId::kReviewM, 8'000, 3);
  DyTIS<uint64_t> index(BusyConfig());
  for (uint64_t k : d.keys) {
    index.Insert(k, k);
  }

  {
    obs::HealthAggregator::Options options;
    options.interval = std::chrono::milliseconds(10);
    options.publish_metrics = true;
    options.install_sigusr1 = true;
    options.dump_path = dump_path;
    obs::HealthAggregator aggregator([&index] { return index.HealthReport(); },
                                     options);
    // First snapshot lands within a few intervals.
    for (int i = 0; i < 500 && aggregator.snapshots() == 0; i++) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GT(aggregator.snapshots(), 0u);
    EXPECT_EQ(aggregator.Latest().num_keys, index.size());

    ASSERT_EQ(raise(SIGUSR1), 0);
    for (int i = 0; i < 500 && aggregator.dumps() == 0; i++) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(aggregator.dumps(), 0u);
    aggregator.Stop();
  }

  auto& registry = obs::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("health.num_keys").Value(),
            static_cast<int64_t>(index.size()));
  EXPECT_EQ(registry.GetGauge("health.num_segments").Value(),
            static_cast<int64_t>(index.NumSegments()));
  EXPECT_GT(registry.GetCounter("health.snapshots").Value(), 0u);

  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good());
  std::stringstream buffer;
  buffer << dump.rdbuf();
  EXPECT_NE(buffer.str().find("keys"), std::string::npos);
  EXPECT_NE(buffer.str().find("\"gauges\""), std::string::npos);
  std::remove(dump_path.c_str());
  obs::MetricsRegistry::Global().Reset();
}

TEST(HealthAggregatorTest, StopIsIdempotentAndRestoresSignal) {
  obs::HealthAggregator::Options options;
  options.interval = std::chrono::milliseconds(5);
  options.publish_metrics = false;
  options.install_sigusr1 = true;
  options.dump_path = "/dev/null";
  DyTIS<uint64_t> index;
  {
    obs::HealthAggregator aggregator([&index] { return index.HealthReport(); },
                                     options);
    aggregator.Stop();
    aggregator.Stop();  // idempotent
  }
  // The aggregator restored the previous SIGUSR1 disposition (the default
  // action here — queried, not raised: delivering it now would kill us).
  struct sigaction current {};
  ASSERT_EQ(sigaction(SIGUSR1, nullptr, &current), 0);
  EXPECT_EQ(current.sa_handler, SIG_DFL);
  obs::MetricsRegistry::Global().Reset();
}

// --- Perf counters ---------------------------------------------------------

TEST(PerfCountersTest, ForcedFallbackIsExplicit) {
  obs::PerfCounters disabled(/*force_disabled=*/true);
  EXPECT_FALSE(disabled.available());
  EXPECT_FALSE(disabled.unavailable_reason().empty());
  const obs::PerfSample sample = disabled.Read();
  EXPECT_FALSE(sample.available);
  EXPECT_EQ(sample.cycles, -1);
  const std::string json = sample.ToJson().Dump();
  EXPECT_NE(json.find("\"perf_unavailable\":true"), std::string::npos);
  EXPECT_NE(json.find("\"reason\""), std::string::npos);
}

TEST(PerfCountersTest, RegionDeltaHasOneOfTheTwoShapes) {
  obs::PerfRegion region;
  // Burn a little work so cycle deltas are nonzero where counters exist.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 100'000; i++) {
    sink = sink + i * i;
  }
  const obs::PerfSample delta = region.Delta();
  const std::string json = region.ToJson().Dump();
  if (delta.available) {
    // At least one hardware counter produced a value; absent counters stay
    // at the -1 sentinel and off the JSON.
    EXPECT_TRUE(delta.cycles >= 0 || delta.instructions >= 0 ||
                delta.llc_misses >= 0 || delta.branch_misses >= 0);
    EXPECT_EQ(json.find("\"perf_unavailable\""), std::string::npos);
  } else {
    EXPECT_NE(json.find("\"perf_unavailable\":true"), std::string::npos);
  }
}

}  // namespace
}  // namespace dytis
