#include "src/core/dytis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/datasets/dataset.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

// Small configuration that exercises every structural operation (splits,
// remapping, expansion, doubling) with only thousands of keys.
DyTISConfig SmallConfig() {
  DyTISConfig c;
  c.first_level_bits = 2;
  c.bucket_bytes = 128;  // 8 pairs per bucket
  c.l_start = 2;
  c.max_global_depth = 14;
  return c;
}

using Index = DyTIS<uint64_t>;

TEST(DyTISCoreTest, EmptyIndex) {
  Index idx(SmallConfig());
  EXPECT_EQ(idx.size(), 0u);
  uint64_t v = 0;
  EXPECT_FALSE(idx.Find(123, &v));
  EXPECT_FALSE(idx.Erase(123));
  EXPECT_FALSE(idx.Update(123, 1));
  std::pair<uint64_t, uint64_t> out[4];
  EXPECT_EQ(idx.Scan(0, 4, out), 0u);
  EXPECT_TRUE(idx.ValidateInvariants());
}

TEST(DyTISCoreTest, InsertFindSingle) {
  Index idx(SmallConfig());
  EXPECT_TRUE(idx.Insert(42, 4200));
  EXPECT_EQ(idx.size(), 1u);
  uint64_t v = 0;
  ASSERT_TRUE(idx.Find(42, &v));
  EXPECT_EQ(v, 4200u);
  EXPECT_FALSE(idx.Find(43, &v));
}

TEST(DyTISCoreTest, InsertDuplicateUpdatesInPlace) {
  Index idx(SmallConfig());
  EXPECT_TRUE(idx.Insert(42, 1));
  EXPECT_FALSE(idx.Insert(42, 2));  // in-place update, not a new key
  EXPECT_EQ(idx.size(), 1u);
  uint64_t v = 0;
  ASSERT_TRUE(idx.Find(42, &v));
  EXPECT_EQ(v, 2u);
}

TEST(DyTISCoreTest, UpdateOnlyExisting) {
  Index idx(SmallConfig());
  idx.Insert(1, 10);
  EXPECT_TRUE(idx.Update(1, 11));
  EXPECT_FALSE(idx.Update(2, 20));
  uint64_t v = 0;
  ASSERT_TRUE(idx.Find(1, &v));
  EXPECT_EQ(v, 11u);
}

TEST(DyTISCoreTest, BoundaryKeys) {
  Index idx(SmallConfig());
  const std::vector<uint64_t> keys = {0, 1, ~uint64_t{0}, (~uint64_t{0}) - 1,
                                      uint64_t{1} << 63, (uint64_t{1} << 63) - 1};
  for (uint64_t k : keys) {
    EXPECT_TRUE(idx.Insert(k, k ^ 0xabc));
  }
  for (uint64_t k : keys) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(k, &v)) << "key " << k;
    EXPECT_EQ(v, k ^ 0xabc);
  }
  EXPECT_TRUE(idx.ValidateInvariants());
}

TEST(DyTISCoreTest, ManySequentialKeys) {
  // Time-ordered keys as in the Taxi dataset: the significant bits advance
  // monotonically (here at bit 40).
  Index idx(SmallConfig());
  const uint64_t kN = 50'000;
  for (uint64_t k = 0; k < kN; k++) {
    ASSERT_TRUE(idx.Insert(k << 40, k * 2));
  }
  EXPECT_EQ(idx.size(), kN);
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  for (uint64_t k = 0; k < kN; k += 17) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(k << 40, &v)) << "key " << k;
    ASSERT_EQ(v, k * 2);
  }
  // Sequential keys concentrate in few EHs -> must have triggered structure
  // adaptation.
  EXPECT_GT(idx.stats().StructuralOps(), 10u);
}

TEST(DyTISCoreTest, ManyRandomKeys) {
  Index idx(SmallConfig());
  Rng rng(7);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 50'000; i++) {
    const uint64_t k = rng.Next();
    const uint64_t v = rng.Next();
    const bool is_new = model.emplace(k, v).second;
    if (!is_new) {
      model[k] = v;
    }
    ASSERT_EQ(idx.Insert(k, v), is_new);
  }
  EXPECT_EQ(idx.size(), model.size());
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  for (const auto& [k, v] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(idx.Find(k, &got)) << "key " << k;
    ASSERT_EQ(got, v);
  }
}

TEST(DyTISCoreTest, SkewedClusterKeys) {
  // Dense clusters at sparse positions: the remapping stress case.  Each
  // cluster occupies 1/1024 of its segment's span, forcing the target
  // sub-range to steal buckets.
  Index idx(SmallConfig());
  Rng rng(9);
  std::vector<uint64_t> keys;
  for (int c = 0; c < 40; c++) {
    const uint64_t base = rng.Next() & ~LowMask(46);
    for (int i = 0; i < 1000; i++) {
      keys.push_back(base + (static_cast<uint64_t>(i) << 36));
    }
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(idx.Insert(k, k + 1));
  }
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  for (uint64_t k : keys) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(k, &v));
    ASSERT_EQ(v, k + 1);
  }
  // Cluster shape must have exercised remapping.
  EXPECT_GT(idx.stats().remappings.load(), 0u);
}

TEST(DyTISCoreTest, ScanReturnsSortedRange) {
  Index idx(SmallConfig());
  Rng rng(11);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 20'000; i++) {
    keys.push_back(rng.Next());
  }
  for (uint64_t k : keys) {
    idx.Insert(k, k / 2);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  for (uint64_t start_idx : {size_t{0}, keys.size() / 3, keys.size() - 50}) {
    const uint64_t start = keys[start_idx];
    std::vector<std::pair<uint64_t, uint64_t>> out(100);
    const size_t got = idx.Scan(start, 100, out.data());
    const size_t expect = std::min<size_t>(100, keys.size() - start_idx);
    ASSERT_EQ(got, expect);
    for (size_t i = 0; i < got; i++) {
      ASSERT_EQ(out[i].first, keys[start_idx + i]);
      ASSERT_EQ(out[i].second, out[i].first / 2);
    }
  }
}

TEST(DyTISCoreTest, ScanFromNonExistingStart) {
  Index idx(SmallConfig());
  for (uint64_t k = 0; k < 1000; k++) {
    idx.Insert(k * 10, k);
  }
  std::pair<uint64_t, uint64_t> out[5];
  // Start between keys: must begin at the next larger key.
  ASSERT_EQ(idx.Scan(15, 5, out), 5u);
  EXPECT_EQ(out[0].first, 20u);
  EXPECT_EQ(out[4].first, 60u);
  // Start beyond all keys.
  EXPECT_EQ(idx.Scan(10'000, 5, out), 0u);
  // Scan crossing the end: fewer results than requested.
  EXPECT_EQ(idx.Scan(9990, 5, out), 1u);
  EXPECT_EQ(out[0].first, 9990u);
}

TEST(DyTISCoreTest, ScanCrossesEhBoundaries) {
  // first_level_bits=2 -> 4 EHs; keys chosen in different EHs.
  Index idx(SmallConfig());
  std::vector<uint64_t> keys;
  for (int eh = 0; eh < 4; eh++) {
    for (int i = 0; i < 100; i++) {
      keys.push_back((static_cast<uint64_t>(eh) << 62) +
                     (static_cast<uint64_t>(i) << 40));
    }
  }
  for (uint64_t k : keys) {
    idx.Insert(k, 1);
  }
  std::vector<std::pair<uint64_t, uint64_t>> out(400);
  ASSERT_EQ(idx.Scan(0, 400, out.data()), 400u);
  for (size_t i = 0; i < 400; i++) {
    ASSERT_EQ(out[i].first, keys[i]);  // keys were generated in sorted order
  }
}

TEST(DyTISCoreTest, EraseBasics) {
  Index idx(SmallConfig());
  for (uint64_t k = 0; k < 1000; k++) {
    idx.Insert(k << 40, k);
  }
  for (uint64_t k = 0; k < 1000; k += 2) {
    ASSERT_TRUE(idx.Erase(k << 40));
  }
  EXPECT_EQ(idx.size(), 500u);
  for (uint64_t k = 0; k < 1000; k++) {
    uint64_t v = 0;
    ASSERT_EQ(idx.Find(k << 40, &v), k % 2 == 1) << "key " << k;
  }
  EXPECT_FALSE(idx.Erase(0));  // double delete
  EXPECT_TRUE(idx.ValidateInvariants());
}

TEST(DyTISCoreTest, EraseEverythingThenReinsert) {
  Index idx(SmallConfig());
  Rng rng(13);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10'000; i++) {
    keys.push_back(rng.Next());
  }
  for (uint64_t k : keys) {
    idx.Insert(k, 1);
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(idx.Erase(k));
  }
  EXPECT_EQ(idx.size(), 0u);
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  for (uint64_t k : keys) {
    ASSERT_TRUE(idx.Insert(k, 2));
  }
  uint64_t v = 0;
  ASSERT_TRUE(idx.Find(keys[0], &v));
  EXPECT_EQ(v, 2u);
}

TEST(DyTISCoreTest, DeletionTriggersMerge) {
  Index idx(SmallConfig());
  // Load enough keys into one EH to grow segments, then delete most.
  for (uint64_t k = 0; k < 30'000; k++) {
    idx.Insert(k << 40, k);
  }
  const size_t mem_before = idx.MemoryBytes();
  for (uint64_t k = 0; k < 30'000; k++) {
    if (k % 16 != 0) {
      idx.Erase(k << 40);
    }
  }
  EXPECT_GT(idx.stats().merges.load(), 0u);
  EXPECT_LT(idx.MemoryBytes(), mem_before);
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
}

TEST(DyTISCoreTest, ForEachVisitsInOrder) {
  Index idx(SmallConfig());
  Rng rng(17);
  size_t n = 0;
  for (int i = 0; i < 5000; i++) {
    n += idx.Insert(rng.Next(), 7) ? 1 : 0;
  }
  uint64_t prev = 0;
  bool first = true;
  size_t visited = 0;
  idx.ForEach([&](uint64_t k, uint64_t v) {
    EXPECT_EQ(v, 7u);
    if (!first) {
      EXPECT_GT(k, prev);
    }
    prev = k;
    first = false;
    visited++;
  });
  EXPECT_EQ(visited, n);
}

TEST(DyTISCoreTest, PaperDefaultConfigWorks) {
  Index idx;  // paper defaults: R=9, 2KB buckets, L_start=6
  Rng rng(19);
  for (int i = 0; i < 100'000; i++) {
    idx.Insert(rng.Next(), static_cast<uint64_t>(i));
  }
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  EXPECT_EQ(idx.size(), 100'000u);
}

TEST(DyTISCoreTest, StatsTrackStructuralOperations) {
  Index idx(SmallConfig());
  EXPECT_EQ(idx.stats().StructuralOps(), 0u);
  // Enough keys in one EH to force splits/doublings and, with clustering,
  // remapping.
  for (uint64_t k = 0; k < 20'000; k++) {
    idx.Insert(k << 40, k);
  }
  const auto& s = idx.stats();
  EXPECT_GT(s.splits.load(), 0u);
  EXPECT_GT(s.doublings.load(), 0u);
  EXPECT_EQ(s.StructuralOps(),
            s.splits.load() + s.expansions.load() + s.remappings.load() +
                s.doublings.load());
  const uint64_t before = s.StructuralOps();
  idx.mutable_stats().Reset();
  EXPECT_GT(before, 0u);
  EXPECT_EQ(idx.stats().StructuralOps(), 0u);
}

TEST(DyTISCoreTest, MemoryGrowsWithKeys) {
  Index idx(SmallConfig());
  const size_t empty = idx.MemoryBytes();
  for (uint64_t k = 0; k < 50'000; k++) {
    idx.Insert(k * 1000, k);
  }
  EXPECT_GT(idx.MemoryBytes(), empty + 50'000 * 16 / 2);
}

TEST(DyTISCoreTest, StashDegradationOnAdversarialDensity) {
  // Consecutive integers at the bottom of the key space share ~50 prefix
  // bits: no MSB-based extendible hash can discriminate them without an
  // exponentially large directory.  With the directory-depth cap the index
  // must degrade to the overflow stash and stay fully correct.
  DyTISConfig config = SmallConfig();
  config.max_global_depth = 6;
  Index idx(config);
  const uint64_t kN = 3000;
  for (uint64_t k = 0; k < kN; k++) {
    ASSERT_TRUE(idx.Insert(k, k + 7));
  }
  EXPECT_GT(idx.stats().stash_inserts.load(), 0u);
  EXPECT_EQ(idx.size(), kN);
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;

  // Point lookups hit stash and buckets alike.
  for (uint64_t k = 0; k < kN; k += 7) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(k, &v)) << "key " << k;
    ASSERT_EQ(v, k + 7);
  }
  // In-place updates reach stashed keys.
  ASSERT_FALSE(idx.Insert(kN - 1, 999));
  uint64_t v = 0;
  ASSERT_TRUE(idx.Find(kN - 1, &v));
  EXPECT_EQ(v, 999u);
  // Scans merge stash and buckets in sorted order.
  std::vector<std::pair<uint64_t, uint64_t>> out(kN);
  ASSERT_EQ(idx.Scan(0, kN, out.data()), kN);
  for (uint64_t k = 0; k < kN; k++) {
    ASSERT_EQ(out[k].first, k);
  }
  // Erase drains stashed keys too.
  for (uint64_t k = 0; k < kN; k++) {
    ASSERT_TRUE(idx.Erase(k));
  }
  EXPECT_EQ(idx.size(), 0u);
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
}

TEST(DyTISCoreTest, CheckInvariantsCleanThroughMixedWorkload) {
  Index idx(SmallConfig());
  Rng rng(99);
  std::map<uint64_t, uint64_t> model;
  // Mixed inserts/updates/erases over a bounded universe, with the full
  // verifier (per-table structure + global order + accounting) run at
  // several structural stages of the index's life.
  for (int phase = 0; phase < 4; phase++) {
    for (int i = 0; i < 5'000; i++) {
      const uint64_t k = rng.Next() % 20'000 * 0x9E3779B97F4A7C15ULL;
      if (rng.NextBelow(10) < 7) {
        idx.Insert(k, k ^ 1);
        model[k] = k ^ 1;
      } else {
        idx.Erase(k);
        model.erase(k);
      }
    }
    const auto report = idx.CheckInvariants();
    ASSERT_TRUE(report.ok()) << "phase " << phase << ":\n"
                             << report.Describe();
    ASSERT_EQ(report.keys_visited, model.size()) << "phase " << phase;
  }
}

TEST(DyTISCoreTest, CheckInvariantsReportsAllKeysVisited) {
  Index idx(SmallConfig());
  for (uint64_t k = 0; k < 10'000; k++) {
    idx.Insert(k << 20, k);
  }
  const auto report = idx.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Describe();
  EXPECT_EQ(report.keys_visited, 10'000u);
  EXPECT_TRUE(report.Describe().empty());
}

// Property test over all dataset families: everything inserted is findable,
// scans are sorted, invariants hold.
class DyTISDatasetPropertyTest : public testing::TestWithParam<DatasetId> {};

TEST_P(DyTISDatasetPropertyTest, LoadSearchScanRoundTrip) {
  const Dataset d = MakeDataset(GetParam(), 40'000, 23);
  Index idx(SmallConfig());
  for (size_t i = 0; i < d.keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(d.keys[i], i)) << "dup insert at " << i;
  }
  EXPECT_EQ(idx.size(), d.keys.size());
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  for (size_t i = 0; i < d.keys.size(); i += 97) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(d.keys[i], &v));
    ASSERT_EQ(v, i);
  }
  // Scan of the whole index returns the sorted key set.
  std::vector<uint64_t> sorted = d.keys;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<uint64_t, uint64_t>> out(d.keys.size());
  ASSERT_EQ(idx.Scan(0, d.keys.size(), out.data()), d.keys.size());
  for (size_t i = 0; i < sorted.size(); i++) {
    ASSERT_EQ(out[i].first, sorted[i]) << "scan order broken at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, DyTISDatasetPropertyTest, testing::ValuesIn(AllDatasetIds()),
    [](const testing::TestParamInfo<DatasetId>& info) {
      return std::string(DatasetShortName(info.param));
    });

}  // namespace
}  // namespace dytis
