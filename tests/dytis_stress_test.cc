// Multi-threaded stress tests exercising concurrent insert / erase / find /
// scan while structural operations (remap, split, expand, doubling, terminal
// stash) fire constantly.  Small buckets and a low l_start force repairs at
// high frequency; the fault-injection variants push every overflow into the
// stash path concurrently.
//
// These are the primary targets for the sanitizer builds:
//   cmake -B build-tsan -S . -DDYTIS_SANITIZE=thread
//   cmake -B build-asan -S . -DDYTIS_SANITIZE=address
//   (cd build-tsan && ctest -R Stress)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dytis.h"
#include "src/core/insert_result.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

DyTISConfig StressConfig() {
  DyTISConfig c;
  c.first_level_bits = 2;  // a few EH tables so threads collide within one
  c.bucket_bytes = 128;    // 8 pairs per bucket: structural ops fire early
  c.l_start = 2;
  c.max_global_depth = 8;
  return c;
}

// Each thread owns a disjoint key slice (bits spread across the key space by
// multiplying with a large odd constant) so value checks are exact; finds and
// scans deliberately cross slices to create read/write contention.
constexpr uint64_t Spread(uint64_t i) { return i * 0x9e3779b97f4a7c15ULL; }

template <typename Index>
void RunMixedThreads(Index* index, int num_threads, uint64_t ops_per_thread) {
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(0xabcd + t);
      const uint64_t base = static_cast<uint64_t>(t) << 56;
      for (uint64_t i = 0; i < ops_per_thread && !failed.load(); i++) {
        const uint64_t key = base | (Spread(i) >> 8);
        switch (rng.Next() % 8) {
          case 0:
          case 1:
          case 2:
          case 3: {  // 50% insert: must be durably stored, never dropped
            if (!IsStored(index->InsertEx(key, key))) {
              failed.store(true);
            }
            break;
          }
          case 4: {  // erase a key from this thread's own past
            if (i > 16) {
              index->Erase(base | (Spread(rng.Next() % i) >> 8));
            }
            break;
          }
          case 5:
          case 6: {  // find across all slices; value must equal key if found
            const uint64_t probe =
                (static_cast<uint64_t>(rng.Next() % num_threads) << 56) |
                (Spread(rng.Next() % ops_per_thread) >> 8);
            uint64_t value = 0;
            if (index->Find(probe, &value) && value != probe) {
              failed.store(true);
            }
            break;
          }
          default: {  // short scan from a random point
            std::pair<uint64_t, uint64_t> out[16];
            const size_t n = index->Scan(rng.Next(), 16, out);
            for (size_t j = 0; j + 1 < n; j++) {
              if (out[j].first >= out[j + 1].first) {
                failed.store(true);
              }
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load())
      << "a concurrent op returned an impossible result";
}

TEST(DyTISStressTest, StressMixedOpsSmallBuckets) {
  ConcurrentDyTIS<uint64_t> index(StressConfig());
  RunMixedThreads(&index, /*num_threads=*/4, /*ops_per_thread=*/8000);
  // Structural churn actually happened under contention.
  EXPECT_GT(index.stats().splits.load() + index.stats().doublings.load() +
                index.stats().expansions.load() + index.stats().remappings.load(),
            0u);
  // Post-run sequential audit: counts and invariants are coherent.
  size_t count = 0;
  index.ForEach([&](uint64_t key, uint64_t value) {
    EXPECT_EQ(key, value);
    count++;
  });
  EXPECT_EQ(count, index.size());
  std::string err;
  EXPECT_TRUE(index.ValidateInvariants(&err)) << err;
}

TEST(DyTISStressTest, StressFineGrainedPolicy) {
  BasicDyTIS<uint64_t, FineGrainedPolicy> index(StressConfig());
  RunMixedThreads(&index, /*num_threads=*/4, /*ops_per_thread=*/8000);
  size_t count = 0;
  index.ForEach([&](uint64_t key, uint64_t value) {
    EXPECT_EQ(key, value);
    count++;
  });
  EXPECT_EQ(count, index.size());
  std::string err;
  EXPECT_TRUE(index.ValidateInvariants(&err)) << err;
}

TEST(DyTISStressTest, StressForcedStashAllStructuralOpsFail) {
  // Every structural op fails, so every overflow races into TerminalInsert
  // and the stash grows without bound under concurrency.
  DyTISConfig config = StressConfig();
  config.fault_policy = FaultPolicy::FailEverything();
  ConcurrentDyTIS<uint64_t> index(config);
  RunMixedThreads(&index, /*num_threads=*/4, /*ops_per_thread=*/2000);
  EXPECT_GT(index.stats().stash_inserts.load(), 0u);
  EXPECT_GT(index.stats().structural_exhaustions.load(), 0u);
  EXPECT_EQ(index.stats().splits.load(), 0u);
  EXPECT_EQ(index.stats().doublings.load(), 0u);
  size_t count = 0;
  index.ForEach([&](uint64_t key, uint64_t value) {
    EXPECT_EQ(key, value);
    count++;
  });
  EXPECT_EQ(count, index.size());
  std::string err;
  EXPECT_TRUE(index.ValidateInvariants(&err)) << err;
}

TEST(DyTISStressTest, StressFaultWindowMidRun) {
  // Structural ops start failing partway through the run: the index must
  // transition from normal growth to stash degradation without losing keys.
  DyTISConfig config = StressConfig();
  config.fault_policy.fail_split = true;
  config.fault_policy.fail_doubling = true;
  config.fault_policy.fail_expand = true;
  config.fault_policy.fail_remap = true;
  config.fault_policy.start_op = 20;
  config.fault_policy.fail_count = FaultPolicy::kAlways;
  ConcurrentDyTIS<uint64_t> index(config);
  RunMixedThreads(&index, /*num_threads=*/4, /*ops_per_thread=*/4000);
  EXPECT_GT(index.stats().injected_faults.load(), 0u);
  size_t count = 0;
  index.ForEach([&](uint64_t key, uint64_t value) {
    EXPECT_EQ(key, value);
    count++;
  });
  EXPECT_EQ(count, index.size());
  std::string err;
  EXPECT_TRUE(index.ValidateInvariants(&err)) << err;
}

}  // namespace
}  // namespace dytis
