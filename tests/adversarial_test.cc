// Adversarial key-pattern tests: insertion orders and key shapes chosen to
// stress specific mechanisms of every ordered index in the repo.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/baselines/alex/alex_index.h"
#include "src/baselines/btree.h"
#include "src/baselines/xindex/xindex.h"
#include "src/core/dytis.h"
#include "src/util/bitops.h"
#include "src/workloads/attack.h"

namespace dytis {
namespace {

DyTISConfig SmallConfig() {
  DyTISConfig c;
  c.first_level_bits = 3;
  c.bucket_bytes = 256;
  c.l_start = 3;
  c.max_global_depth = 14;
  return c;
}

// Key patterns, promoted to src/workloads/attack.h so tests and benches
// share one generator library.  The wrappers keep the PatternFn signature;
// the generated sequences are identical to the original in-test helpers
// (attack_engine_test.cc asserts the equivalence).
std::vector<uint64_t> Descending(size_t n) {
  return workloads::DescendingKeys(n);
}

std::vector<uint64_t> BitReversed(size_t n) {
  return workloads::BitReversedKeys(n);
}

std::vector<uint64_t> AlternatingEnds(size_t n) {
  return workloads::AlternatingEndsKeys(n);
}

std::vector<uint64_t> SawtoothWaves(size_t n) {
  return workloads::SawtoothWaveKeys(n);
}

std::vector<uint64_t> ZigzagPowers(size_t n) {
  return workloads::ZigzagPowerKeys(n);
}

using PatternFn = std::vector<uint64_t> (*)(size_t);

struct Pattern {
  const char* name;
  PatternFn make;
};

class AdversarialTest : public testing::TestWithParam<Pattern> {};

TEST_P(AdversarialTest, DyTISSurvives) {
  const auto keys = GetParam().make(30'000);
  DyTIS<uint64_t> idx(SmallConfig());
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(keys[i], i)) << GetParam().name << " at " << i;
  }
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << GetParam().name << ": " << err;
  for (size_t i = 0; i < keys.size(); i += 7) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(keys[i], &v)) << GetParam().name;
    ASSERT_EQ(v, i);
  }
  // Sorted-scan completeness.
  std::vector<uint64_t> sorted(keys);
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<uint64_t, uint64_t>> out(keys.size());
  ASSERT_EQ(idx.Scan(0, keys.size(), out.data()), keys.size())
      << GetParam().name;
  for (size_t i = 0; i < sorted.size(); i++) {
    ASSERT_EQ(out[i].first, sorted[i]) << GetParam().name << " at " << i;
  }
}

TEST_P(AdversarialTest, AlexSurvives) {
  const auto keys = GetParam().make(30'000);
  AlexIndex<uint64_t> idx;
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(keys[i], i)) << GetParam().name << " at " << i;
  }
  for (size_t i = 0; i < keys.size(); i += 7) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(keys[i], &v)) << GetParam().name;
    ASSERT_EQ(v, i);
  }
}

TEST_P(AdversarialTest, BTreeSurvives) {
  const auto keys = GetParam().make(30'000);
  BPlusTree<uint64_t, 16> idx;
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(keys[i], i)) << GetParam().name;
  }
  EXPECT_TRUE(idx.ValidateInvariants()) << GetParam().name;
  for (size_t i = 0; i < keys.size(); i += 7) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(keys[i], &v)) << GetParam().name;
    ASSERT_EQ(v, i);
  }
}

TEST_P(AdversarialTest, XIndexSurvives) {
  const auto keys = GetParam().make(30'000);
  XIndexLike<uint64_t> idx;
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(keys[i], i)) << GetParam().name;
  }
  for (size_t i = 0; i < keys.size(); i += 7) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(keys[i], &v)) << GetParam().name;
    ASSERT_EQ(v, i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, AdversarialTest,
    testing::Values(Pattern{"Descending", &Descending},
                    Pattern{"BitReversed", &BitReversed},
                    Pattern{"AlternatingEnds", &AlternatingEnds},
                    Pattern{"SawtoothWaves", &SawtoothWaves},
                    Pattern{"ZigzagPowers", &ZigzagPowers}),
    [](const testing::TestParamInfo<Pattern>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace dytis
