// Differential test harness: seeded randomized operation sequences replayed
// against a std::map oracle across the configuration matrix.
//
// Every (optimistic reads on/off) x (fault injection on/off) x (segment-size
// limit policy) cell runs the same seeded put/get/erase/update/scan streams
// over dense, sparse, and skewed key patterns, asserting exact equality with
// the oracle at every step and running the online invariant verifier
// (CheckInvariants) after every structural epoch — any window in which a
// split/expansion/remap/doubling/merge ran.  This is what makes concurrency
// and structural changes to the core safe to land: a behavioural diff
// against the oracle fails loudly with the seed, pattern, and op index.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/core/dytis.h"
#include "src/core/insert_result.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

// One cell of the configuration matrix.
struct MatrixCase {
  bool optimistic_reads;
  bool fault_injection;
  bool large_limit;  // limit policy: default vs. the large multiplier
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  const MatrixCase& c = info.param;
  std::string name = c.optimistic_reads ? "OptOn" : "OptOff";
  name += c.fault_injection ? "FaultOn" : "FaultOff";
  name += c.large_limit ? "LimitLarge" : "LimitDefault";
  return name;
}

DyTISConfig MatrixConfig(const MatrixCase& c) {
  DyTISConfig cfg;
  cfg.first_level_bits = 3;
  cfg.bucket_bytes = 256;  // 16 pairs per bucket: structural ops are frequent
  cfg.l_start = 2;
  cfg.max_global_depth = 14;
  cfg.optimistic_reads = c.optimistic_reads;
  if (c.large_limit) {
    // Degenerate decision point: every EH adopts the large segment-size
    // multiplier immediately, exercising the other limit-policy branch.
    cfg.l_prime_delta = 0;
    cfg.expansion_share_threshold = 0.0;
  }
  if (c.fault_injection) {
    // Fail a window of structural attempts of every kind: drives the insert
    // state machine down its fallback chains (including the stash) while
    // still letting the index recover afterwards.
    cfg.fault_policy.fail_remap = true;
    cfg.fault_policy.fail_expand = true;
    cfg.fault_policy.fail_split = true;
    cfg.fault_policy.fail_doubling = true;
    cfg.fault_policy.start_op = 4;
    cfg.fault_policy.fail_count = 40;
  }
  return cfg;
}

// Key patterns.  Each returns a key for op index i from the seeded stream.
enum class Pattern { kDense, kSparse, kSkewed };

uint64_t MakeKey(Pattern p, Rng& rng) {
  switch (p) {
    case Pattern::kDense:
      // Consecutive integers in a narrow band: worst case for MSB-indexed
      // EH (deep directories, stash pressure under fault injection).
      return (uint64_t{1} << 40) + rng.NextBelow(12'000);
    case Pattern::kSparse:
      // Uniform over the full key space.
      return rng.Next();
    case Pattern::kSkewed: {
      // A few hot clusters with short tails (zipf-ish): hammers a handful
      // of segments hard while the rest stay shallow.
      const uint64_t hotspot = rng.NextBelow(8);
      return (hotspot << 58) | rng.NextBelow(4'000);
    }
  }
  return 0;
}

class DifferentialTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(DifferentialTest, MatchesMapOracle) {
  const MatrixCase& mcase = GetParam();
  for (const Pattern pattern :
       {Pattern::kDense, Pattern::kSparse, Pattern::kSkewed}) {
    SCOPED_TRACE("pattern " + std::to_string(static_cast<int>(pattern)));
    DyTIS<uint64_t> idx(MatrixConfig(mcase));
    std::map<uint64_t, uint64_t> oracle;
    Rng rng(0x9E3779B97F4A7C15ULL ^
            (static_cast<uint64_t>(pattern) * 7919 + 1));
    std::vector<std::pair<uint64_t, uint64_t>> scan_buf(64);

    uint64_t last_structural = 0;
    const int kOps = 8'000;
    for (int i = 0; i < kOps; i++) {
      const uint64_t key = MakeKey(pattern, rng);
      const uint64_t value = key ^ (static_cast<uint64_t>(i) << 1);
      switch (rng.NextBelow(100)) {
        case 0 ... 49: {  // put
          const InsertResult r = idx.InsertEx(key, value);
          if (r == InsertResult::kHardError) {
            // Only reachable with a stash hard cap; none is configured.
            FAIL() << "unexpected hard error at op " << i;
          }
          ASSERT_EQ(IsNewKey(r), oracle.find(key) == oracle.end())
              << "op " << i << " key " << key;
          oracle[key] = value;
          break;
        }
        case 50 ... 64: {  // update (must not insert)
          const bool updated = idx.Update(key, value);
          const auto it = oracle.find(key);
          ASSERT_EQ(updated, it != oracle.end())
              << "op " << i << " key " << key;
          if (it != oracle.end()) {
            it->second = value;
          }
          break;
        }
        case 65 ... 79: {  // erase
          const bool erased = idx.Erase(key);
          ASSERT_EQ(erased, oracle.erase(key) != 0)
              << "op " << i << " key " << key;
          break;
        }
        case 80 ... 94: {  // get
          uint64_t got = 0;
          const bool found = idx.Find(key, &got);
          const auto it = oracle.find(key);
          ASSERT_EQ(found, it != oracle.end())
              << "op " << i << " key " << key;
          if (found) {
            ASSERT_EQ(got, it->second) << "op " << i << " key " << key;
          }
          break;
        }
        default: {  // scan
          const uint64_t start = MakeKey(pattern, rng);
          const size_t got = idx.Scan(start, scan_buf.size(), scan_buf.data());
          auto it = oracle.lower_bound(start);
          for (size_t s = 0; s < got; s++, ++it) {
            ASSERT_NE(it, oracle.end()) << "scan overshot oracle at op " << i;
            ASSERT_EQ(scan_buf[s].first, it->first) << "op " << i;
            ASSERT_EQ(scan_buf[s].second, it->second) << "op " << i;
          }
          if (got < scan_buf.size()) {
            ASSERT_EQ(it, oracle.end())
                << "scan returned fewer entries than the oracle holds, op "
                << i;
          }
          break;
        }
      }
      // Structural epoch boundary: a split/expansion/remap/doubling/merge
      // ran since the last check — verify every structural invariant plus
      // the global order and accounting.
      const uint64_t structurals =
          idx.stats().StructuralOps() +
          idx.stats().merges.load(std::memory_order_relaxed);
      if (structurals != last_structural) {
        last_structural = structurals;
        const auto report = idx.CheckInvariants();
        ASSERT_TRUE(report.ok())
            << "op " << i << ":\n" << report.Describe();
      }
    }

    // Final exact-equality sweep: sizes, full ordered walk, per-key values.
    ASSERT_EQ(idx.size(), oracle.size());
    auto it = oracle.begin();
    bool walk_ok = true;
    idx.ForEach([&](uint64_t k, uint64_t v) {
      if (it == oracle.end() || it->first != k || it->second != v) {
        walk_ok = false;
      } else {
        ++it;
      }
    });
    ASSERT_TRUE(walk_ok && it == oracle.end())
        << "ordered walk diverged from the oracle";
    const auto report = idx.CheckInvariants();
    ASSERT_TRUE(report.ok()) << report.Describe();
  }
}

// The same differential contract on the concurrent build (single-threaded
// execution; thread-interleaved coverage lives in optimistic_read_test.cc
// and dytis_concurrency_test.cc).  Catches policy-specific divergence: lock
// plumbing, the optimistic read path, and the core-swap rebuild.
TEST_P(DifferentialTest, ConcurrentBuildMatchesMapOracle) {
  const MatrixCase& mcase = GetParam();
  ConcurrentDyTIS<uint64_t> idx(MatrixConfig(mcase));
  std::map<uint64_t, uint64_t> oracle;
  Rng rng(1234577);
  for (int i = 0; i < 6'000; i++) {
    const uint64_t key = MakeKey(Pattern::kSkewed, rng);
    const uint64_t value = key + static_cast<uint64_t>(i);
    switch (rng.NextBelow(10)) {
      case 0 ... 5:
        ASSERT_EQ(idx.Insert(key, value), oracle.insert({key, value}).second);
        oracle[key] = value;
        break;
      case 6:
        ASSERT_EQ(idx.Erase(key), oracle.erase(key) != 0);
        break;
      default: {
        uint64_t got = 0;
        const bool found = idx.Find(key, &got);
        const auto it = oracle.find(key);
        ASSERT_EQ(found, it != oracle.end()) << "op " << i;
        if (found) {
          ASSERT_EQ(got, it->second) << "op " << i;
        }
        ASSERT_EQ(idx.Contains(key), found);
      }
    }
  }
  ASSERT_EQ(idx.size(), oracle.size());
  const auto report = idx.CheckInvariants();
  ASSERT_TRUE(report.ok()) << report.Describe();
}

// Epoch-guarded readers race the same seeded structural stream across the
// whole configuration matrix.  A set of stable keys (tagged, spread evenly
// over the keyspace, never touched by the stream) is inserted up front;
// reader threads must find every stable key with its exact value and see
// strictly-ordered scans at every instant, no matter which structural op —
// split, expansion, remap, doubling, merge, or a fault-injected fallback —
// is mid-flight.  This is the differential harness's view of the lock-free
// read path: readers take no directory lock, so their only protection is
// the epoch domain plus the never-mutate-retired-objects discipline.
TEST_P(DifferentialTest, ConcurrentReadersDuringSeededStructuralStream) {
  const MatrixCase& mcase = GetParam();
  ConcurrentDyTIS<uint64_t> idx(MatrixConfig(mcase));

  // Stable keys: 256 values tagged with low bits = 1 at 2^56 strides, so
  // they cover every first-level table and sub-range.  The stream below
  // never generates a key with that tag.
  constexpr uint64_t kStable = 256;
  constexpr uint64_t kTagMask = (uint64_t{1} << 56) - 1;
  auto stable_key = [](uint64_t i) { return (i << 56) | 1; };
  for (uint64_t i = 0; i < kStable; i++) {
    idx.Insert(stable_key(i), stable_key(i) * 31 + 7);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&, r] {
      Rng rng(0xFEED + r);
      std::vector<std::pair<uint64_t, uint64_t>> buf(96);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t i = rng.Next() % kStable;
        uint64_t got = 0;
        ASSERT_TRUE(idx.Find(stable_key(i), &got))
            << "stable key " << i << " vanished mid-structural-op";
        ASSERT_EQ(got, stable_key(i) * 31 + 7) << "torn read, stable " << i;
        const size_t n = idx.Scan(stable_key(i), buf.size(), buf.data());
        ASSERT_GT(n, 0u);
        ASSERT_EQ(buf[0].first, stable_key(i));
        for (size_t s = 1; s < n; s++) {
          ASSERT_LT(buf[s - 1].first, buf[s].first) << "scan out of order";
        }
      }
    });
  }

  // The seeded structural stream (writer side of the differential pair).
  // kDense is omitted: under the LimitLarge policy its narrow band grows
  // one quadratic-rebuild segment (covered single-threaded in
  // MatchesMapOracle) that balloons this test's runtime without adding
  // read-path coverage — skewed already drives deep structure.
  for (const Pattern pattern : {Pattern::kSparse, Pattern::kSkewed}) {
    Rng rng(0xD1FF ^ (static_cast<uint64_t>(pattern) * 7919 + 1));
    // 2500 ops/pattern keeps the cell inside the fast tier on a one-core
    // host (readers time-slice against the writer) while still driving
    // splits, rebuilds, and doublings through the epoch domain.
    for (int i = 0; i < 2'500; i++) {
      uint64_t key = MakeKey(pattern, rng);
      if ((key & kTagMask) == 1) {
        key ^= 2;  // never touch a stable key
      }
      switch (rng.NextBelow(10)) {
        case 0 ... 6:
          idx.Insert(key, key ^ static_cast<uint64_t>(i));
          break;
        case 7:
          idx.Erase(key);
          break;
        default:
          idx.Find(key, nullptr);
      }
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }

  // The stream drove real structural churn through the epoch domain.
  const DyTISStatsView v = idx.stats().View();
  EXPECT_GT(v.splits + v.remappings + v.expansions + v.merges, 0u);
  const auto report = idx.CheckInvariants();
  ASSERT_TRUE(report.ok()) << report.Describe();
  idx.QuiesceReclamation();
  EXPECT_EQ(idx.EpochInfo().retired_pending, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DifferentialTest,
    ::testing::Values(MatrixCase{true, false, false},
                      MatrixCase{false, false, false},
                      MatrixCase{true, true, false},
                      MatrixCase{false, true, false},
                      MatrixCase{true, false, true},
                      MatrixCase{true, true, true}),
    CaseName);

}  // namespace
}  // namespace dytis
