// Load-generator determinism suite (the contract in src/server/loadgen.h).
//
// Two claims are pinned:
//   * The generated op stream is a pure function of LoadGenOptions —
//     StreamHash is identical across calls, sensitive to the seed, and the
//     structural rules (slot-tagged insert keys, own-slot erases, preload
//     confinement) hold for every generated request.
//   * The final index state after a closed-loop run is identical across
//     runs, client thread counts, and shard counts — StateHash is the
//     witness.  This is what makes bench_server rows reproducible.
//
// Op counts scale with DYTIS_SERVER_OPS (scripts/check.sh shrinks them for
// the sanitizer stages).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "src/server/loadgen.h"
#include "src/server/server.h"

namespace dytis {
namespace {

using server::DyTISServer;
using server::LoadGenOptions;
using server::LoadGenResult;
using server::OpType;
using server::Request;
using server::ServerIndex;
using server::SlotStreams;

size_t TestOps(size_t fallback) {
  const char* v = std::getenv("DYTIS_SERVER_OPS");
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

DyTISConfig SmallConfig() {
  DyTISConfig c;
  c.first_level_bits = 3;
  c.bucket_bytes = 256;
  c.l_start = 2;
  c.max_global_depth = 14;
  return c;
}

LoadGenOptions SmallOptions() {
  LoadGenOptions options;
  options.seed = 0xfeedface;
  options.preload_keys = 5'000;
  options.session_slots = 8;
  options.total_ops = TestOps(10'000);
  options.session_churn = 0.01;
  options.batch_size = 32;
  return options;
}

TEST(LoadGenStreamTest, SameOptionsSameStream) {
  const LoadGenOptions options = SmallOptions();
  const SlotStreams a = server::GenerateSlotStreams(options);
  const SlotStreams b = server::GenerateSlotStreams(options);
  EXPECT_EQ(server::StreamHash(a), server::StreamHash(b));
  EXPECT_EQ(a.sessions_started, b.sessions_started);
  EXPECT_EQ(a.total_ops, options.total_ops);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (size_t s = 0; s < a.slots.size(); s++) {
    ASSERT_EQ(a.slots[s].size(), b.slots[s].size()) << "slot " << s;
  }
}

TEST(LoadGenStreamTest, SeedChangesStream) {
  LoadGenOptions options = SmallOptions();
  const uint64_t h1 = server::StreamHash(server::GenerateSlotStreams(options));
  options.seed ^= 1;
  const uint64_t h2 = server::StreamHash(server::GenerateSlotStreams(options));
  EXPECT_NE(h1, h2);
}

TEST(LoadGenStreamTest, StructuralRulesHold) {
  const LoadGenOptions options = SmallOptions();
  const SlotStreams streams = server::GenerateSlotStreams(options);
  const uint64_t slot_mask =
      (uint64_t{1} << std::bit_width(options.session_slots - 1)) - 1;
  for (const uint64_t key : server::PreloadKeys(options)) {
    ASSERT_LT(key, uint64_t{1} << 63);  // preload confined below the top bit
  }
  for (size_t s = 0; s < streams.slots.size(); s++) {
    std::set<uint64_t> live_inserts;
    for (const Request& req : streams.slots[s]) {
      switch (req.op) {
        case OpType::kPut:
          // Rule 2: fresh keys carry the top bit and the slot tag.
          ASSERT_NE(req.key & (uint64_t{1} << 63), 0u);
          ASSERT_EQ(req.key & slot_mask, s);
          // Rule 1: values are pure functions of the key.
          ASSERT_EQ(req.value, server::InsertValueFor(req.key));
          ASSERT_TRUE(live_inserts.insert(req.key).second)
              << "fresh key " << req.key << " inserted twice";
          break;
        case OpType::kUpdate:
          ASSERT_EQ(req.value, server::UpdateValueFor(req.key));
          break;
        case OpType::kErase:
          // Rule 3: erases target only this slot's own live inserts.
          ASSERT_EQ(live_inserts.erase(req.key), 1u)
              << "slot " << s << " erased foreign key " << req.key;
          break;
        case OpType::kGet:
          break;
        case OpType::kScan:
          ASSERT_GT(req.scan_count, 0u);
          break;
      }
    }
  }
}

TEST(LoadGenStreamTest, ChurnStartsNewSessions) {
  LoadGenOptions options = SmallOptions();
  options.session_churn = 0.05;
  const SlotStreams streams = server::GenerateSlotStreams(options);
  EXPECT_GT(streams.sessions_started, options.session_slots);
}

TEST(LoadGenStreamTest, HotStormConfinesReads) {
  LoadGenOptions options = SmallOptions();
  options.session_slots = 1;
  options.session_churn = 0.0;  // one session: one storm window
  options.hot_storm_fraction = 1.0;
  options.storm_keys = 16;
  options.tenants = {server::TenantMix{}};
  options.tenants[0].get = 1.0;
  options.tenants[0].put = 0.0;
  options.tenants[0].update = 0.0;
  options.tenants[0].scan = 0.0;
  options.tenants[0].erase = 0.0;
  const SlotStreams streams = server::GenerateSlotStreams(options);
  std::set<uint64_t> distinct;
  for (const Request& req : streams.slots[0]) {
    ASSERT_EQ(req.op, OpType::kGet);
    distinct.insert(req.key);
  }
  EXPECT_LE(distinct.size(), options.storm_keys);
  EXPECT_GT(distinct.size(), 1u);
}

// --- Final-state determinism across runs / threads / shards -----------------

uint64_t RunAndHash(const LoadGenOptions& options, uint32_t shards,
                    int threads, size_t* ops_out = nullptr) {
  ServerIndex index(shards,
                    server::ShardScaledConfig(SmallConfig(), shards));
  server::Preload(&index, options);
  DyTISServer srv(&index);
  const LoadGenResult r = server::RunClosedLoop(&srv, options, threads);
  srv.Stop();
  EXPECT_EQ(r.ops, options.total_ops);
  EXPECT_EQ(r.e2e.count(), r.ops);
  if (ops_out != nullptr) {
    *ops_out = r.ops;
  }
  std::string err;
  EXPECT_TRUE(index.CheckShardingInvariants(&err)) << err;
  return index.StateHash();
}

TEST(LoadGenDeterminismTest, FinalStateIdenticalAcrossRuns) {
  const LoadGenOptions options = SmallOptions();
  EXPECT_EQ(RunAndHash(options, 2, 2), RunAndHash(options, 2, 2));
}

TEST(LoadGenDeterminismTest, FinalStateIndependentOfThreadCount) {
  const LoadGenOptions options = SmallOptions();
  const uint64_t h1 = RunAndHash(options, 4, 1);
  const uint64_t h2 = RunAndHash(options, 4, 2);
  const uint64_t h4 = RunAndHash(options, 4, 4);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h4);
}

TEST(LoadGenDeterminismTest, FinalStateIndependentOfShardCount) {
  const LoadGenOptions options = SmallOptions();
  const uint64_t h1 = RunAndHash(options, 1, 2);
  const uint64_t h2 = RunAndHash(options, 2, 2);
  const uint64_t h8 = RunAndHash(options, 8, 2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h8);
}

TEST(LoadGenDeterminismTest, MultiTenantStormStateStillDeterministic) {
  LoadGenOptions options = SmallOptions();
  server::TenantMix heavy;  // defaults: mixed
  server::TenantMix readmost;
  readmost.get = 0.9;
  readmost.put = 0.1;
  readmost.update = 0.0;
  readmost.scan = 0.0;
  readmost.erase = 0.0;
  readmost.zipfian = false;
  options.tenants = {heavy, readmost};
  options.hot_storm_fraction = 0.3;
  const uint64_t h1 = RunAndHash(options, 4, 1);
  const uint64_t h4 = RunAndHash(options, 4, 4);
  EXPECT_EQ(h1, h4);
}

TEST(LoadGenOpenLoopTest, CompletesAllOpsAndRecordsLatency) {
  LoadGenOptions options = SmallOptions();
  options.total_ops = TestOps(10'000) / 2;
  ServerIndex index(2, server::ShardScaledConfig(SmallConfig(), 2));
  server::Preload(&index, options);
  DyTISServer srv(&index);
  const server::OpenLoopResult r =
      server::RunOpenLoop(&srv, options, /*offered_rate=*/200'000.0,
                          /*threads=*/2);
  srv.Stop();
  EXPECT_EQ(r.ops, options.total_ops);
  EXPECT_EQ(r.e2e.count(), r.ops);
  EXPECT_GT(r.achieved_rate, 0.0);
  std::string err;
  EXPECT_TRUE(index.CheckShardingInvariants(&err)) << err;
}

}  // namespace
}  // namespace dytis
