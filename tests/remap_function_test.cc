#include "src/core/remap_function.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/bitops.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

TEST(RemapFunctionTest, IdentitySingleBucket) {
  RemapFunction f(8, 1);
  EXPECT_EQ(f.num_buckets(), 1u);
  EXPECT_EQ(f.num_subranges(), 1u);
  for (uint64_t k = 0; k < 256; k++) {
    EXPECT_EQ(f.BucketIndexFor(k), 0u);
  }
}

TEST(RemapFunctionTest, UniformAllocationSplitsEvenly) {
  RemapFunction f(8, 4);  // one sub-range, 4 buckets over 256 keys
  EXPECT_EQ(f.BucketIndexFor(0), 0u);
  EXPECT_EQ(f.BucketIndexFor(63), 0u);
  EXPECT_EQ(f.BucketIndexFor(64), 1u);
  EXPECT_EQ(f.BucketIndexFor(128), 2u);
  EXPECT_EQ(f.BucketIndexFor(255), 3u);
}

TEST(RemapFunctionTest, SkewedAllocation) {
  // 4 sub-ranges over 8-bit keys: counts {1, 4, 1, 2}.
  RemapFunction f(8, std::vector<uint32_t>{1, 4, 1, 2});
  EXPECT_EQ(f.num_buckets(), 8u);
  EXPECT_EQ(f.num_subranges(), 4u);
  // Sub-range 0 = keys [0,64) -> bucket 0.
  EXPECT_EQ(f.BucketIndexFor(0), 0u);
  EXPECT_EQ(f.BucketIndexFor(63), 0u);
  // Sub-range 1 = keys [64,128) -> buckets 1..4 (16 keys per bucket).
  EXPECT_EQ(f.BucketIndexFor(64), 1u);
  EXPECT_EQ(f.BucketIndexFor(79), 1u);
  EXPECT_EQ(f.BucketIndexFor(80), 2u);
  EXPECT_EQ(f.BucketIndexFor(127), 4u);
  // Sub-range 2 = keys [128,192) -> bucket 5.
  EXPECT_EQ(f.BucketIndexFor(128), 5u);
  // Sub-range 3 = keys [192,256) -> buckets 6..7.
  EXPECT_EQ(f.BucketIndexFor(192), 6u);
  EXPECT_EQ(f.BucketIndexFor(255), 7u);
}

TEST(RemapFunctionTest, MonotoneOverEntireDomain) {
  RemapFunction f(10, std::vector<uint32_t>{3, 1, 7, 2, 1, 1, 5, 2});
  uint32_t prev = 0;
  for (uint64_t k = 0; k < 1024; k++) {
    const uint32_t b = f.BucketIndexFor(k);
    EXPECT_GE(b, prev) << "monotonicity broken at key " << k;
    EXPECT_LT(b, f.num_buckets());
    prev = b;
  }
}

TEST(RemapFunctionTest, MonotonePropertyLargeKeyBits) {
  // 50-bit local keys: exercise the 128-bit arithmetic path.
  Rng rng(1);
  std::vector<uint32_t> counts;
  for (int i = 0; i < 16; i++) {
    counts.push_back(1 + static_cast<uint32_t>(rng.NextBelow(64)));
  }
  RemapFunction f(50, counts);
  uint64_t prev_key = 0;
  uint32_t prev_bucket = 0;
  for (int i = 0; i < 100'000; i++) {
    const uint64_t k = rng.NextBelow(Pow2(50));
    const uint32_t b = f.BucketIndexFor(k);
    ASSERT_LT(b, f.num_buckets());
    if (k >= prev_key) {
      // Not a sorted walk, so compare only against the tracked max.
    }
    (void)prev_key;
    (void)prev_bucket;
  }
  // Sorted sweep over sampled keys.
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10'000; i++) {
    keys.push_back(rng.NextBelow(Pow2(50)));
  }
  std::sort(keys.begin(), keys.end());
  uint32_t prev = 0;
  for (uint64_t k : keys) {
    const uint32_t b = f.BucketIndexFor(k);
    ASSERT_GE(b, prev);
    prev = b;
  }
}

TEST(RemapFunctionTest, EveryBucketReachableWhenCountsFitSpan) {
  RemapFunction f(8, std::vector<uint32_t>{2, 6, 1, 3});
  std::vector<bool> hit(f.num_buckets(), false);
  for (uint64_t k = 0; k < 256; k++) {
    hit[f.BucketIndexFor(k)] = true;
  }
  for (size_t b = 0; b < hit.size(); b++) {
    EXPECT_TRUE(hit[b]) << "bucket " << b << " unreachable";
  }
}

TEST(RemapFunctionTest, FirstKeyOfBucketInvertsMapping) {
  RemapFunction f(12, std::vector<uint32_t>{2, 9, 1, 4});
  for (uint32_t b = 0; b < f.num_buckets(); b++) {
    const uint64_t k = f.FirstKeyOfBucket(b);
    EXPECT_GE(f.BucketIndexFor(k), b);
    if (k > 0) {
      EXPECT_LT(f.BucketIndexFor(k - 1), f.BucketIndexFor(k) + 1);
    }
  }
  EXPECT_EQ(f.FirstKeyOfBucket(f.num_buckets()), Pow2(12));
}

TEST(RemapFunctionTest, PlacementFractionBounds) {
  RemapFunction f(16, std::vector<uint32_t>{1, 3, 2, 10});
  Rng rng(2);
  for (int i = 0; i < 10'000; i++) {
    const uint64_t k = rng.NextBelow(Pow2(16));
    const auto p = f.PlacementFor(k);
    EXPECT_LT(p.bucket, f.num_buckets());
    EXPECT_LT(p.permille, 1000u);
    EXPECT_EQ(p.bucket, f.BucketIndexFor(k));
  }
}

TEST(RemapFunctionTest, CountsRoundTrip) {
  const std::vector<uint32_t> counts{5, 1, 2, 8};
  RemapFunction f(9, counts);
  EXPECT_EQ(f.Counts(), counts);
}

TEST(RemapFunctionTest, RefinedCountsPreserveTotalAndMapping) {
  RemapFunction coarse(8, std::vector<uint32_t>{3, 5});
  const auto refined_counts = coarse.RefinedCounts(3);  // 2 -> 8 sub-ranges
  uint32_t total = 0;
  for (uint32_t c : refined_counts) {
    total += c;
  }
  EXPECT_EQ(total, coarse.num_buckets());
  // The refined allocation (where all counts >= 1) must agree with the
  // coarse mapping pointwise on bucket boundaries it can represent: check
  // via key sweep using a manually-built fine function only when legal.
  bool all_positive = true;
  for (uint32_t c : refined_counts) {
    all_positive &= (c >= 1);
  }
  if (all_positive) {
    RemapFunction fine(8, refined_counts);
    for (uint64_t k = 0; k < 256; k++) {
      EXPECT_EQ(fine.BucketIndexFor(k), coarse.BucketIndexFor(k))
          << "at key " << k;
    }
  }
}

TEST(RemapFunctionTest, RefineToSameLevelIsIdentity) {
  RemapFunction f(8, std::vector<uint32_t>{3, 5});
  EXPECT_EQ(f.RefinedCounts(1), f.Counts());
}

TEST(RemapFunctionTest, ZeroKeyBitsDegenerate) {
  RemapFunction f(0, 1);  // single-key segment
  EXPECT_EQ(f.BucketIndexFor(0), 0u);
}

}  // namespace
}  // namespace dytis
