#include "src/baselines/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/util/rng.h"

namespace dytis {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree<uint64_t> t;
  uint64_t v;
  EXPECT_FALSE(t.Find(1, &v));
  EXPECT_FALSE(t.Erase(1));
  EXPECT_FALSE(t.Update(1, 2));
  EXPECT_EQ(t.size(), 0u);
  std::pair<uint64_t, uint64_t> out[4];
  EXPECT_EQ(t.Scan(0, 4, out), 0u);
}

TEST(BPlusTreeTest, InsertFindUpdate) {
  BPlusTree<uint64_t> t;
  EXPECT_TRUE(t.Insert(10, 100));
  EXPECT_FALSE(t.Insert(10, 200));  // in-place update
  uint64_t v = 0;
  ASSERT_TRUE(t.Find(10, &v));
  EXPECT_EQ(v, 200u);
  EXPECT_TRUE(t.Update(10, 300));
  ASSERT_TRUE(t.Find(10, &v));
  EXPECT_EQ(v, 300u);
  EXPECT_EQ(t.size(), 1u);
}

// Tiny fanout forces deep trees and many splits.
TEST(BPlusTreeTest, SplitsWithTinyFanout) {
  BPlusTree<uint64_t, 4> t;
  for (uint64_t k = 0; k < 10'000; k++) {
    ASSERT_TRUE(t.Insert(k, k * 2));
  }
  EXPECT_TRUE(t.ValidateInvariants());
  EXPECT_GT(t.height(), 3);
  for (uint64_t k = 0; k < 10'000; k += 7) {
    uint64_t v;
    ASSERT_TRUE(t.Find(k, &v));
    ASSERT_EQ(v, k * 2);
  }
}

TEST(BPlusTreeTest, ReverseAndRandomOrderInserts) {
  BPlusTree<uint64_t, 8> t;
  for (uint64_t k = 5000; k > 0; k--) {
    ASSERT_TRUE(t.Insert(k, k));
  }
  Rng rng(1);
  for (int i = 0; i < 5000; i++) {
    t.Insert(rng.Next(), 7);
  }
  EXPECT_TRUE(t.ValidateInvariants());
}

TEST(BPlusTreeTest, ScanSorted) {
  BPlusTree<uint64_t, 16> t;
  Rng rng(2);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 20'000; i++) {
    keys.push_back(rng.Next());
  }
  for (uint64_t k : keys) {
    t.Insert(k, k + 1);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<std::pair<uint64_t, uint64_t>> out(200);
  const size_t start = keys.size() / 2;
  ASSERT_EQ(t.Scan(keys[start], 200, out.data()), 200u);
  for (size_t i = 0; i < 200; i++) {
    ASSERT_EQ(out[i].first, keys[start + i]);
    ASSERT_EQ(out[i].second, out[i].first + 1);
  }
}

TEST(BPlusTreeTest, ScanFromMissingKey) {
  BPlusTree<uint64_t, 8> t;
  for (uint64_t k = 0; k < 100; k++) {
    t.Insert(k * 10, k);
  }
  std::pair<uint64_t, uint64_t> out[3];
  ASSERT_EQ(t.Scan(15, 3, out), 3u);
  EXPECT_EQ(out[0].first, 20u);
  EXPECT_EQ(out[2].first, 40u);
  EXPECT_EQ(t.Scan(99999, 3, out), 0u);
}

TEST(BPlusTreeTest, Erase) {
  BPlusTree<uint64_t, 8> t;
  for (uint64_t k = 0; k < 1000; k++) {
    t.Insert(k, k);
  }
  for (uint64_t k = 0; k < 1000; k += 3) {
    ASSERT_TRUE(t.Erase(k));
  }
  EXPECT_FALSE(t.Erase(0));
  for (uint64_t k = 0; k < 1000; k++) {
    EXPECT_EQ(t.Find(k, nullptr), k % 3 != 0);
  }
  EXPECT_TRUE(t.ValidateInvariants());
}

TEST(BPlusTreeTest, BulkLoadMatchesIncremental) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t k = 0; k < 50'000; k++) {
    entries.push_back({k * 3, k});
  }
  BPlusTree<uint64_t> bulk;
  bulk.BulkLoad(entries);
  EXPECT_EQ(bulk.size(), entries.size());
  EXPECT_TRUE(bulk.ValidateInvariants());
  for (uint64_t k = 0; k < 50'000; k += 11) {
    uint64_t v;
    ASSERT_TRUE(bulk.Find(k * 3, &v));
    ASSERT_EQ(v, k);
    ASSERT_FALSE(bulk.Find(k * 3 + 1, &v));
  }
  // Inserting after bulk load works.
  EXPECT_TRUE(bulk.Insert(1, 999));
  EXPECT_TRUE(bulk.ValidateInvariants());
}

TEST(BPlusTreeTest, BulkLoadEmptyAndTiny) {
  BPlusTree<uint64_t> t;
  t.BulkLoad({});
  EXPECT_EQ(t.size(), 0u);
  std::vector<std::pair<uint64_t, uint64_t>> one = {{42, 7}};
  t.BulkLoad(one);
  uint64_t v;
  ASSERT_TRUE(t.Find(42, &v));
  EXPECT_EQ(v, 7u);
}

TEST(BPlusTreeTest, AverageLeafFill) {
  BPlusTree<uint64_t, 128> t;
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t k = 0; k < 10'000; k++) {
    entries.push_back({k, k});
  }
  t.BulkLoad(entries);
  // Bulk loading fills ~90%.
  EXPECT_GT(t.AverageLeafFill(), 100.0);
}

class BTreePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BTreePropertyTest, MatchesStdMap) {
  Rng rng(GetParam());
  BPlusTree<uint64_t, 8> t;
  std::map<uint64_t, uint64_t> model;
  for (int step = 0; step < 20'000; step++) {
    const uint64_t key = rng.NextBelow(5000);
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {
        const uint64_t value = rng.Next();
        const bool expect_new = model.find(key) == model.end();
        ASSERT_EQ(t.Insert(key, value), expect_new);
        model[key] = value;
        break;
      }
      case 2: {
        ASSERT_EQ(t.Erase(key), model.erase(key) > 0);
        break;
      }
      default: {
        uint64_t v = 0;
        const auto it = model.find(key);
        ASSERT_EQ(t.Find(key, &v), it != model.end());
        if (it != model.end()) {
          ASSERT_EQ(v, it->second);
        }
      }
    }
  }
  ASSERT_EQ(t.size(), model.size());
  ASSERT_TRUE(t.ValidateInvariants());
  // Full scan equals the model.
  std::vector<std::pair<uint64_t, uint64_t>> out(model.size());
  ASSERT_EQ(t.Scan(0, model.size(), out.data()), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    ASSERT_EQ(out[i].first, k);
    ASSERT_EQ(out[i].second, v);
    i++;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dytis
