// Unit tests for the epoch-based reclamation domain (src/sync/ebr.h).
//
// The contract under test: an object retired while a reader guard is live
// is never freed until that guard drops (the epoch+2 rule), retirement
// without readers reclaims promptly and boundedly, guards nest, slots are
// adopted across thread churn instead of accumulating, and the domain
// destructor frees any remaining backlog.  Deletions are observed through
// a counting deleter, so every assertion is about *actual frees*, not
// counter bookkeeping alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/sync/ebr.h"

namespace dytis {
namespace {

// Heap object whose destructor reports to a shared counter.
struct Tracked {
  explicit Tracked(std::atomic<int>* freed_in) : freed(freed_in) {}
  ~Tracked() { freed->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* freed;
};

TEST(EbrTest, RetireWithoutReadersReclaimsPromptly) {
  EpochDomain domain(/*advance_threshold=*/4, /*reclaim_batch=*/64);
  std::atomic<int> freed{0};
  constexpr int kObjects = 100;
  for (int i = 0; i < kObjects; i++) {
    domain.Retire(new Tracked(&freed));
  }
  // The amortised passes inside Retire already freed most of the backlog;
  // Drain finishes the tail (nothing pins an epoch).
  domain.Drain();
  EXPECT_EQ(freed.load(), kObjects);
  const EpochStats s = domain.Stats();
  EXPECT_EQ(s.retired_total, static_cast<uint64_t>(kObjects));
  EXPECT_EQ(s.reclaimed_total, static_cast<uint64_t>(kObjects));
  EXPECT_EQ(s.retired_pending, 0u);
  EXPECT_GT(s.advances, 0u);
}

TEST(EbrTest, BacklogStaysBoundedUnderSoloRetireChurn) {
  constexpr size_t kThreshold = 8;
  constexpr size_t kBatch = 32;
  EpochDomain domain(kThreshold, kBatch);
  std::atomic<int> freed{0};
  uint64_t max_pending = 0;
  for (int i = 0; i < 2000; i++) {
    domain.Retire(new Tracked(&freed));
    max_pending = std::max(max_pending, domain.Stats().retired_pending);
  }
  // With no reader pinning an epoch, every over-threshold retire advances
  // the epoch and frees what is two epochs old, so the backlog is bounded
  // by a few thresholds' worth of in-flight generations — never O(total).
  EXPECT_LE(max_pending, 4 * kThreshold + kBatch);
  domain.Drain();
  EXPECT_EQ(freed.load(), 2000);
}

TEST(EbrTest, GuardBlocksReclamationUntilDropped) {
  EpochDomain domain(/*advance_threshold=*/2, /*reclaim_batch=*/64);
  std::atomic<int> freed{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};

  // Reader parks inside a guard; everything retired after it entered must
  // survive until it leaves.
  std::thread reader([&] {
    EpochGuard guard(&domain);
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
    }
  });
  while (!entered.load(std::memory_order_acquire)) {
  }

  constexpr int kObjects = 50;
  for (int i = 0; i < kObjects; i++) {
    domain.Retire(new Tracked(&freed));
  }
  // The pinned reader caps the epoch at most one advance past its
  // announcement, so nothing reaches retire_epoch + 2.
  domain.Drain();
  EXPECT_EQ(freed.load(), 0);
  EXPECT_GT(domain.Stats().advance_failures, 0u);

  release.store(true, std::memory_order_release);
  reader.join();
  domain.Drain();
  EXPECT_EQ(freed.load(), kObjects);
  EXPECT_EQ(domain.Stats().retired_pending, 0u);
}

TEST(EbrTest, GuardsNest) {
  EpochDomain domain;
  EXPECT_FALSE(domain.InGuard());
  {
    EpochGuard outer(&domain);
    EXPECT_TRUE(domain.InGuard());
    {
      EpochGuard inner(&domain);
      EXPECT_TRUE(domain.InGuard());
    }
    // The inner exit must not clear the outer guard's announcement.
    EXPECT_TRUE(domain.InGuard());
  }
  EXPECT_FALSE(domain.InGuard());
}

TEST(EbrTest, DestructorFreesRemainingBacklog) {
  std::atomic<int> freed{0};
  constexpr int kObjects = 25;
  {
    // Threshold high enough that no amortised pass runs: everything is
    // still pending when the domain dies.
    EpochDomain domain(/*advance_threshold=*/1000, /*reclaim_batch=*/8);
    for (int i = 0; i < kObjects; i++) {
      domain.Retire(new Tracked(&freed));
    }
    EXPECT_EQ(domain.Stats().retired_pending,
              static_cast<uint64_t>(kObjects));
  }
  EXPECT_EQ(freed.load(), kObjects);
}

TEST(EbrTest, SlotsAreAdoptedAcrossThreadChurn) {
  EpochDomain domain;
  // Sequential short-lived threads: each one's slot is released at thread
  // exit (refs drop to 1) and must be adopted by the next registrant, so
  // the slot count tracks peak concurrency (1), not thread count.
  for (int i = 0; i < 16; i++) {
    std::thread t([&] { EpochGuard guard(&domain); });
    t.join();
  }
  EXPECT_LE(domain.Stats().slots, 2u);
}

TEST(EbrTest, TwoDomainsKeepIndependentSlots) {
  EpochDomain a;
  EpochDomain b;
  EpochGuard ga(&a);
  // A guard on one domain must not look like a reader of the other: b can
  // still advance and reclaim while a is pinned by this thread.
  std::atomic<int> freed{0};
  for (int i = 0; i < 20; i++) {
    b.Retire(new Tracked(&freed));
  }
  b.Drain();
  EXPECT_EQ(freed.load(), 20);
  EXPECT_TRUE(a.InGuard());
  EXPECT_FALSE(b.InGuard());
}

TEST(EbrTest, ConcurrentReadersAndRetirersRaceSafely) {
  // Readers continuously enter guards and dereference the current object;
  // the writer keeps swapping it out and retiring the old one.  Epoch
  // protection is what makes the dereference of a just-replaced object
  // legal; TSan/ASan runs of this test are the real assertion.
  EpochDomain domain(/*advance_threshold=*/8, /*reclaim_batch=*/32);
  std::atomic<int> freed{0};
  std::atomic<Tracked*> shared{new Tracked(&freed)};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; r++) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard guard(&domain);
        Tracked* t = shared.load(std::memory_order_acquire);
        // Dereference: freed-too-early would be a use-after-free here.
        ASSERT_EQ(t->freed, &freed);
      }
    });
  }

  constexpr int kSwaps = 5000;
  for (int i = 0; i < kSwaps; i++) {
    Tracked* fresh = new Tracked(&freed);
    Tracked* old = shared.exchange(fresh, std::memory_order_acq_rel);
    domain.Retire(old);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  domain.Drain();
  delete shared.load(std::memory_order_relaxed);
  // kSwaps retired objects plus the final object deleted directly above.
  EXPECT_EQ(freed.load(), kSwaps + 1);

  const EpochStats s = domain.Stats();
  EXPECT_EQ(s.retired_total, static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(s.reclaimed_total, static_cast<uint64_t>(kSwaps));
  // 1 writer + 3 readers + slack for the main thread's earlier tests.
  EXPECT_LE(s.slots, 5u);
}

}  // namespace
}  // namespace dytis
