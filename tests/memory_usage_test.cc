// Tests for the /proc-based process memory accounting used by the
// memory-usage experiment and the observability snapshot.
#include "src/util/memory_usage.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

namespace dytis {
namespace {

constexpr size_t kMiB = size_t{1} << 20;

TEST(MemoryUsageTest, CurrentRssIsPositive) {
  // A running test binary has megabytes resident; 0 would mean the /proc
  // parse failed.
  EXPECT_GT(CurrentRssBytes(), 1 * kMiB);
}

TEST(MemoryUsageTest, PeakIsAtLeastCurrent) {
  const size_t current = CurrentRssBytes();
  const size_t peak = PeakRssBytes();
  ASSERT_GT(peak, 0u);
  EXPECT_GE(peak, current);
}

TEST(MemoryUsageTest, GrowsUnderLargeAllocation) {
  const size_t before = CurrentRssBytes();
  ASSERT_GT(before, 0u);
  // Allocate and touch 64 MiB; RSS must grow by at least half of it (the
  // slack absorbs allocator reuse of already-resident pages).
  const size_t bytes = 64 * kMiB;
  std::vector<char> block(bytes);
  std::memset(block.data(), 0x5a, block.size());
  const size_t after = CurrentRssBytes();
  EXPECT_GE(after, before + 32 * kMiB);
  EXPECT_GE(PeakRssBytes(), after);
}

TEST(MemoryUsageTest, PeakIsMonotonic) {
  const size_t peak_before = PeakRssBytes();
  {
    std::vector<char> block(16 * kMiB);
    std::memset(block.data(), 1, block.size());
  }
  // The block is freed, but the high-water mark must not go down.
  EXPECT_GE(PeakRssBytes(), peak_before);
}

TEST(MemoryUsageTest, RunAndMeasurePeakRssSeesChildAllocation) {
  const size_t baseline = RunAndMeasurePeakRss([] {});
  if (baseline == 0) {
    GTEST_SKIP() << "fork-based measurement unavailable";
  }
  const size_t with_alloc = RunAndMeasurePeakRss([] {
    std::vector<char> block(64 * kMiB);
    std::memset(block.data(), 0x5a, block.size());
  });
  ASSERT_GT(with_alloc, 0u);
  // The allocating child's peak must exceed the idle child's by most of the
  // 64 MiB it touched.
  EXPECT_GE(with_alloc, baseline + 32 * kMiB);
}

TEST(MemoryUsageTest, SurvivesRepeatedSnapshots) {
  // The observability snapshot path reads RSS on every call; make sure
  // repeated reads are stable and cheap enough to not matter.
  size_t last = 0;
  for (int i = 0; i < 1000; i++) {
    last = CurrentRssBytes();
    ASSERT_GT(last, 0u);
  }
  EXPECT_GT(last, 0u);
}

}  // namespace
}  // namespace dytis
