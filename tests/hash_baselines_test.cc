// Tests for the Extendible-Hashing and CCEH baselines.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/baselines/cceh.h"
#include "src/baselines/ext_hash.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

// ---------------- ExtendibleHash ----------------

TEST(ExtendibleHashTest, Empty) {
  ExtendibleHash<uint64_t> h;
  uint64_t v;
  EXPECT_FALSE(h.Find(1, &v));
  EXPECT_FALSE(h.Erase(1));
  EXPECT_EQ(h.size(), 0u);
}

TEST(ExtendibleHashTest, InsertFindUpdateErase) {
  ExtendibleHash<uint64_t> h(4);
  EXPECT_TRUE(h.Insert(1, 10));
  EXPECT_FALSE(h.Insert(1, 20));  // in-place update
  uint64_t v = 0;
  ASSERT_TRUE(h.Find(1, &v));
  EXPECT_EQ(v, 20u);
  EXPECT_TRUE(h.Update(1, 30));
  ASSERT_TRUE(h.Find(1, &v));
  EXPECT_EQ(v, 30u);
  EXPECT_TRUE(h.Erase(1));
  EXPECT_FALSE(h.Find(1, &v));
}

TEST(ExtendibleHashTest, DirectoryDoublesUnderLoad) {
  ExtendibleHash<uint64_t> h(8);
  for (uint64_t k = 0; k < 10'000; k++) {
    ASSERT_TRUE(h.Insert(k, k));
  }
  EXPECT_GT(h.global_depth(), 5);
  for (uint64_t k = 0; k < 10'000; k++) {
    uint64_t v;
    ASSERT_TRUE(h.Find(k, &v)) << k;
    ASSERT_EQ(v, k);
  }
  EXPECT_EQ(h.size(), 10'000u);
}

TEST(ExtendibleHashTest, SequentialAndRandomKeys) {
  // Hash-based pseudo-keys make dense integers unproblematic.
  ExtendibleHash<uint64_t> h(16);
  Rng rng(1);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 30'000; i++) {
    const uint64_t k = (i % 2 == 0) ? static_cast<uint64_t>(i) : rng.Next();
    const uint64_t v = rng.Next();
    ASSERT_EQ(h.Insert(k, v), model.emplace(k, v).second);
    model[k] = v;
  }
  ASSERT_EQ(h.size(), model.size());
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_TRUE(h.Find(k, &got));
    ASSERT_EQ(got, v);
  }
}

// ---------------- CCEH ----------------

TEST(CcehTest, Empty) {
  Cceh<uint64_t> h;
  uint64_t v;
  EXPECT_FALSE(h.Find(1, &v));
  EXPECT_FALSE(h.Erase(1));
}

TEST(CcehTest, InsertFindUpdateErase) {
  Cceh<uint64_t> h(4, 4);  // tiny segments to force splits
  EXPECT_TRUE(h.Insert(42, 1));
  EXPECT_FALSE(h.Insert(42, 2));
  uint64_t v = 0;
  ASSERT_TRUE(h.Find(42, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(h.Update(42, 3));
  ASSERT_TRUE(h.Find(42, &v));
  EXPECT_EQ(v, 3u);
  EXPECT_TRUE(h.Erase(42));
  EXPECT_FALSE(h.Erase(42));
}

TEST(CcehTest, SegmentSplitsPreserveKeys) {
  Cceh<uint64_t> h(4, 4);
  Rng rng(2);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 50'000; i++) {
    const uint64_t k = rng.Next();
    const uint64_t v = rng.Next();
    ASSERT_EQ(h.Insert(k, v), model.emplace(k, v).second);
    model[k] = v;
  }
  EXPECT_GT(h.global_depth(), 1);
  ASSERT_EQ(h.size(), model.size());
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_TRUE(h.Find(k, &got)) << k;
    ASSERT_EQ(got, v);
  }
}

TEST(CcehTest, DenseSequentialKeys) {
  Cceh<uint64_t> h(6, 4);
  for (uint64_t k = 0; k < 20'000; k++) {
    ASSERT_TRUE(h.Insert(k, k * 3));
  }
  for (uint64_t k = 0; k < 20'000; k += 13) {
    uint64_t v;
    ASSERT_TRUE(h.Find(k, &v));
    ASSERT_EQ(v, k * 3);
  }
}

TEST(CcehTest, EraseHalf) {
  Cceh<uint64_t> h(4, 4);
  for (uint64_t k = 0; k < 5000; k++) {
    h.Insert(k, k);
  }
  for (uint64_t k = 0; k < 5000; k += 2) {
    ASSERT_TRUE(h.Erase(k));
  }
  EXPECT_EQ(h.size(), 2500u);
  for (uint64_t k = 0; k < 5000; k++) {
    EXPECT_EQ(h.Find(k, nullptr), k % 2 == 1);
  }
}

TEST(CcehTest, MemoryGrows) {
  Cceh<uint64_t> h(4, 4);
  const size_t empty = h.MemoryBytes();
  for (uint64_t k = 0; k < 10'000; k++) {
    h.Insert(k, k);
  }
  EXPECT_GT(h.MemoryBytes(), empty);
}

}  // namespace
}  // namespace dytis
