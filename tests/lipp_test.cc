#include "src/baselines/lipp/lipp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/datasets/dataset.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

using Lipp = LippIndex<uint64_t>;

std::vector<std::pair<uint64_t, uint64_t>> SortedEntries(size_t n,
                                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (size_t i = 0; i < n; i++) {
    entries.push_back({rng.Next(), rng.Next()});
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](auto& a, auto& b) { return a.first == b.first; }),
                entries.end());
  return entries;
}

TEST(LippTest, EmptyIndex) {
  Lipp idx;
  uint64_t v;
  EXPECT_FALSE(idx.Find(1, &v));
  EXPECT_FALSE(idx.Erase(1));
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_FALSE(idx.BuildFailed());
}

TEST(LippTest, BulkLoadAndFind) {
  const auto entries = SortedEntries(50'000, 1);
  Lipp idx;
  idx.BulkLoad(entries);
  ASSERT_FALSE(idx.BuildFailed());
  EXPECT_EQ(idx.size(), entries.size());
  for (size_t i = 0; i < entries.size(); i += 61) {
    uint64_t v;
    ASSERT_TRUE(idx.Find(entries[i].first, &v)) << i;
    ASSERT_EQ(v, entries[i].second);
  }
  EXPECT_FALSE(idx.Find(entries[0].first + 1, nullptr));
}

TEST(LippTest, InsertOnlyMatchesModel) {
  Lipp idx;
  Rng rng(2);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 50'000; i++) {
    const uint64_t k = rng.Next();
    const uint64_t v = rng.Next();
    ASSERT_EQ(idx.Insert(k, v), model.emplace(k, v).second);
    model[k] = v;
  }
  ASSERT_FALSE(idx.BuildFailed());
  ASSERT_EQ(idx.size(), model.size());
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_TRUE(idx.Find(k, &got));
    ASSERT_EQ(got, v);
  }
}

TEST(LippTest, UpdateAndErase) {
  Lipp idx;
  for (uint64_t k = 0; k < 5000; k++) {
    idx.Insert(k * 37, k);
  }
  EXPECT_TRUE(idx.Update(37, 999));
  uint64_t v;
  ASSERT_TRUE(idx.Find(37, &v));
  EXPECT_EQ(v, 999u);
  EXPECT_FALSE(idx.Update(38, 1));
  EXPECT_TRUE(idx.Erase(37));
  EXPECT_FALSE(idx.Find(37, nullptr));
  EXPECT_FALSE(idx.Erase(37));
}

TEST(LippTest, ScanSorted) {
  const auto entries = SortedEntries(20'000, 3);
  Lipp idx;
  idx.BulkLoad(entries);
  std::vector<std::pair<uint64_t, uint64_t>> out(300);
  const size_t start = entries.size() / 3;
  const size_t got = idx.Scan(entries[start].first, out.size(), out.data());
  ASSERT_EQ(got, out.size());
  for (size_t i = 0; i < got; i++) {
    ASSERT_EQ(out[i].first, entries[start + i].first) << i;
  }
}

TEST(LippTest, PreciseLookupsOnClusters) {
  // Dense clusters force deep subtrees; everything must stay findable.
  Lipp idx;
  Rng rng(4);
  std::vector<uint64_t> keys;
  for (int c = 0; c < 20; c++) {
    const uint64_t base = rng.Next() & ~((uint64_t{1} << 20) - 1);
    for (int i = 0; i < 1000; i++) {
      keys.push_back(base + static_cast<uint64_t>(i));
    }
  }
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(keys[i], i));
  }
  ASSERT_FALSE(idx.BuildFailed());
  for (size_t i = 0; i < keys.size(); i += 17) {
    uint64_t v;
    ASSERT_TRUE(idx.Find(keys[i], &v)) << i;
    ASSERT_EQ(v, i);
  }
  const auto shape = idx.ComputeShape();
  EXPECT_GT(shape.max_depth, 1);  // clusters forced subtree creation
}

TEST(LippTest, BudgetExhaustionIsCleanNotFatal) {
  Lipp::Options options;
  options.max_total_slots = 4096;  // tiny budget
  Lipp idx(options);
  Rng rng(5);
  size_t accepted = 0;
  for (int i = 0; i < 50'000; i++) {
    accepted += idx.Insert(rng.Next(), 1) ? 1 : 0;
  }
  EXPECT_TRUE(idx.BuildFailed());  // the paper's footnote-6 outcome
  EXPECT_LE(idx.size(), accepted);
  // Whatever it holds is still consistent.
  std::vector<std::pair<uint64_t, uint64_t>> out(idx.size());
  const size_t got = idx.Scan(0, out.size(), out.data());
  EXPECT_EQ(got, idx.size());
  for (size_t i = 1; i < got; i++) {
    EXPECT_GT(out[i].first, out[i - 1].first);
  }
}

TEST(LippTest, DatasetRoundTrips) {
  for (DatasetId id : {DatasetId::kMapM, DatasetId::kTaxi}) {
    const Dataset d = MakeDataset(id, 30'000, 6);
    Lipp idx;
    for (size_t i = 0; i < d.keys.size(); i++) {
      if (!idx.Insert(d.keys[i], i)) {
        // Budget loss is allowed (LIPP behaviour); correctness checked below.
        continue;
      }
    }
    for (size_t i = 0; i < d.keys.size(); i += 29) {
      uint64_t v;
      if (idx.Find(d.keys[i], &v)) {
        ASSERT_EQ(v, i) << DatasetShortName(id);
      } else {
        // A missing key is acceptable only if the budget was exhausted.
        ASSERT_TRUE(idx.BuildFailed()) << DatasetShortName(id);
      }
    }
  }
}

}  // namespace
}  // namespace dytis
