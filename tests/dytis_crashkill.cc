// Crash-injection helper for the recovery tests (not a gtest binary).
//
// Runs the deterministic recovery workload (tests/recovery_test_util.h)
// against a DurableDyTIS and dies by SIGKILL at a requested point — either
// between two operations (--mode opcount) or *inside* a structural
// operation, with the index half-modified and locks held, via the
// FaultPolicy::crash_instead hook (--mode split/doubling/remap/expand).
// The parent test then recovers the durability directory in its own
// process and checks the result against the model.
//
//   dytis_crashkill --dir DIR --ops N --seed S
//       [--mode none|opcount|split|doubling|remap|expand]
//       [--kill-at K]            op index (opcount) or structural-attempt
//                                ordinal (structural modes)
//       [--sync-every N]         WAL group-commit cadence
//       [--checkpoint-every N]   auto-checkpoint cadence
//       [--checkpoint-at K]      explicit checkpoint after op K
//
// Exit codes: 0 = workload completed (no kill hit), 2 = bad usage,
// 3 = open/recovery failed, 4 = an operation failed.  A successful kill
// never returns at all — the test asserts WIFSIGNALED(SIGKILL).
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/recovery/durable_dytis.h"
#include "tests/recovery_test_util.h"

namespace {

using dytis::FaultPolicy;
using dytis::recovery::DurableDyTIS;
using dytis::recovery::RecoveryConfig;

int Usage(const char* msg) {
  std::fprintf(stderr, "dytis_crashkill: %s\n", msg);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string mode = "none";
  uint64_t ops = 0;
  uint64_t seed = 1;
  uint64_t kill_at = 0;
  uint64_t sync_every = 1;
  uint64_t checkpoint_every = 0;
  uint64_t checkpoint_at = ~uint64_t{0};
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto next = [&](uint64_t* out) {
      if (i + 1 >= argc) {
        return false;
      }
      *out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--mode" && i + 1 < argc) {
      mode = argv[++i];
    } else if (arg == "--ops") {
      if (!next(&ops)) return Usage("--ops needs a value");
    } else if (arg == "--seed") {
      if (!next(&seed)) return Usage("--seed needs a value");
    } else if (arg == "--kill-at") {
      if (!next(&kill_at)) return Usage("--kill-at needs a value");
    } else if (arg == "--sync-every") {
      if (!next(&sync_every)) return Usage("--sync-every needs a value");
    } else if (arg == "--checkpoint-every") {
      if (!next(&checkpoint_every)) return Usage("--checkpoint-every needs a value");
    } else if (arg == "--checkpoint-at") {
      if (!next(&checkpoint_at)) return Usage("--checkpoint-at needs a value");
    } else {
      return Usage(("unknown argument: " + arg).c_str());
    }
  }
  if (dir.empty() || ops == 0) {
    return Usage("--dir and --ops are required");
  }

  dytis::DyTISConfig config = dytis::recovery_test::BusyRecoveryConfig();
  // Structural kill modes: arm the fault-injection matcher so the kill_at-th
  // matching structural attempt raises SIGKILL mid-operation.
  if (mode != "none" && mode != "opcount") {
    FaultPolicy policy;
    if (mode == "split") {
      policy.fail_split = true;
    } else if (mode == "doubling") {
      policy.fail_doubling = true;
    } else if (mode == "remap") {
      policy.fail_remap = true;
    } else if (mode == "expand") {
      policy.fail_expand = true;
    } else {
      return Usage(("unknown mode: " + mode).c_str());
    }
    policy.start_op = kill_at;
    policy.fail_count = 1;
    policy.crash_instead = true;
    config.fault_policy = policy;
  }

  RecoveryConfig recovery;
  recovery.dir = dir;
  recovery.wal_sync_every = sync_every;
  recovery.checkpoint_every = checkpoint_every;
  std::string error;
  auto db = DurableDyTIS<uint64_t>::Open(recovery, config, &error);
  if (db == nullptr) {
    std::fprintf(stderr, "dytis_crashkill: open failed: %s\n", error.c_str());
    return 3;
  }

  for (uint64_t i = 0; i < ops; i++) {
    if (mode == "opcount" && i == kill_at) {
      std::raise(SIGKILL);
    }
    const dytis::recovery_test::Op op = dytis::recovery_test::NthOp(seed, i);
    if (op.is_erase) {
      db->Erase(op.key);  // false (absent key) is a valid outcome
    } else if (db->PutEx(op.key, op.value) == dytis::InsertResult::kHardError) {
      std::fprintf(stderr, "dytis_crashkill: put failed at op %llu\n",
                   static_cast<unsigned long long>(i));
      return 4;
    }
    if (i == checkpoint_at && !db->Checkpoint(&error)) {
      std::fprintf(stderr, "dytis_crashkill: checkpoint failed: %s\n",
                   error.c_str());
      return 4;
    }
  }
  if (!db->Sync(&error)) {
    std::fprintf(stderr, "dytis_crashkill: sync failed: %s\n", error.c_str());
    return 4;
  }
  return 0;
}
