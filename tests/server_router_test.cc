// Router + ShardedDyTIS differential suite (the serving front end's
// correctness anchor).
//
// Three layers:
//   1. RangeRouter algebra — total, monotone, balanced, stable, and the
//      RangeStart/RangeLast bounds exactly tile the key space.
//   2. ShardedDyTIS vs a single-index oracle — identical op streams
//      (uniform, Zipfian, and adversarial key patterns) produce bit-identical
//      results at every shard count: per-op return values, scan contents,
//      final size and StateHash.  The oracle is the 1-shard facade, which is
//      definitionally the unsharded index.
//   3. The DyTISServer pipeline vs the same oracle — batches through the
//      router/queue/worker path yield the same Response stream a sequential
//      oracle produces.
//
// Op counts scale with DYTIS_SERVER_OPS (scripts/check.sh shrinks them for
// the sanitizer stages).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/server/loadgen.h"
#include "src/server/server.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"
#include "src/workloads/attack.h"

namespace dytis {
namespace {

using server::DyTISServer;
using server::OpType;
using server::RangeRouter;
using server::Request;
using server::Response;
using server::ServerIndex;
using server::ServerOptions;

size_t TestOps(size_t fallback) {
  const char* v = std::getenv("DYTIS_SERVER_OPS");
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

DyTISConfig SmallConfig() {
  DyTISConfig c;
  c.first_level_bits = 3;
  c.bucket_bytes = 256;
  c.l_start = 2;
  c.max_global_depth = 14;
  return c;
}

// --- Layer 1: router algebra ------------------------------------------------

const uint32_t kShardCounts[] = {1, 2, 3, 4, 5, 8, 16, 64, 1000};

std::vector<uint64_t> RouterProbeKeys() {
  std::vector<uint64_t> keys = {0,
                                1,
                                2,
                                (uint64_t{1} << 32) - 1,
                                uint64_t{1} << 32,
                                (uint64_t{1} << 63) - 1,
                                uint64_t{1} << 63,
                                ~uint64_t{0} - 1,
                                ~uint64_t{0}};
  Rng rng(0x1234);
  for (int i = 0; i < 4'000; i++) {
    keys.push_back(rng.Next());
  }
  return keys;
}

TEST(RangeRouterTest, EveryKeyMapsToExactlyOneShardInItsRange) {
  const std::vector<uint64_t> keys = RouterProbeKeys();
  for (const uint32_t n : kShardCounts) {
    RangeRouter router(n);
    for (const uint64_t key : keys) {
      const uint32_t s = router.ShardFor(key);
      ASSERT_LT(s, n) << "key " << key;
      ASSERT_GE(key, router.RangeStart(s)) << "key " << key;
      ASSERT_LE(key, router.RangeLast(s)) << "key " << key;
    }
  }
}

TEST(RangeRouterTest, RangesTileTheKeySpaceContiguously) {
  for (const uint32_t n : kShardCounts) {
    RangeRouter router(n);
    ASSERT_EQ(router.RangeStart(0), 0u);
    ASSERT_EQ(router.RangeLast(n - 1), ~uint64_t{0});
    for (uint32_t s = 0; s + 1 < n; s++) {
      ASSERT_EQ(router.RangeLast(s) + 1, router.RangeStart(s + 1))
          << "shards " << s << "/" << s + 1 << " of " << n;
    }
    for (uint32_t s = 0; s < n; s++) {
      ASSERT_EQ(router.ShardFor(router.RangeStart(s)), s);
      ASSERT_EQ(router.ShardFor(router.RangeLast(s)), s);
    }
  }
}

TEST(RangeRouterTest, MonotoneOverSortedKeys) {
  std::vector<uint64_t> keys = RouterProbeKeys();
  std::sort(keys.begin(), keys.end());
  for (const uint32_t n : kShardCounts) {
    RangeRouter router(n);
    uint32_t prev = 0;
    for (const uint64_t key : keys) {
      const uint32_t s = router.ShardFor(key);
      ASSERT_GE(s, prev) << "key " << key;
      prev = s;
    }
  }
}

TEST(RangeRouterTest, RangeWidthsBalancedWithinOneKey) {
  for (const uint32_t n : kShardCounts) {
    RangeRouter router(n);
    unsigned __int128 min_width = ~static_cast<unsigned __int128>(0);
    unsigned __int128 max_width = 0;
    for (uint32_t s = 0; s < n; s++) {
      const unsigned __int128 end =
          s + 1 == n ? (static_cast<unsigned __int128>(1) << 64)
                     : static_cast<unsigned __int128>(router.RangeStart(s + 1));
      const unsigned __int128 width = end - router.RangeStart(s);
      min_width = width < min_width ? width : min_width;
      max_width = width > max_width ? width : max_width;
    }
    ASSERT_LE(max_width - min_width, 1u) << "shards=" << n;
  }
}

TEST(RangeRouterTest, StableAcrossInstancesAndPinnedGolden) {
  // Two routers with the same shard count agree everywhere.
  RangeRouter a(7);
  RangeRouter b(7);
  for (const uint64_t key : RouterProbeKeys()) {
    ASSERT_EQ(a.ShardFor(key), b.ShardFor(key));
  }
  // Pinned values: shard-count sweeps must not silently re-map stored keys'
  // owners between builds (the facade's invariant checker depends on it).
  RangeRouter quad(4);
  EXPECT_EQ(quad.ShardFor(0), 0u);
  EXPECT_EQ(quad.ShardFor((uint64_t{1} << 62) - 1), 0u);
  EXPECT_EQ(quad.ShardFor(uint64_t{1} << 62), 1u);
  EXPECT_EQ(quad.ShardFor(uint64_t{1} << 63), 2u);
  EXPECT_EQ(quad.ShardFor(~uint64_t{0}), 3u);
  RangeRouter one(1);
  EXPECT_EQ(one.ShardFor(0), 0u);
  EXPECT_EQ(one.ShardFor(~uint64_t{0}), 0u);
}

// --- Layer 2: ShardedDyTIS vs single-index oracle ---------------------------

// Key streams named for the workload shape they exercise.
std::vector<uint64_t> UniformKeys(size_t n, uint64_t seed) {
  std::vector<uint64_t> keys(n);
  Rng rng(seed);
  for (auto& k : keys) {
    k = rng.Next();
  }
  return keys;
}

std::vector<uint64_t> ZipfianKeys(size_t n, uint64_t seed) {
  // Zipfian popularity over a fixed uniform population: repeats are the
  // point (they turn inserts into duplicate-hits and erases into re-erases,
  // the paths where sharded/unsharded return values could diverge).
  const std::vector<uint64_t> population = UniformKeys(n / 2 + 1, seed);
  ScrambledZipfianGenerator zipf(population.size(), 0.99, seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) {
    k = population[zipf.Next()];
  }
  return keys;
}

std::vector<uint64_t> AttackKeys(size_t n, uint64_t seed) {
  // Adversarial shapes: bit-reversed counters thrash EH directories;
  // sawtooth waves stress the learned CDF remap.  Both are dense patterns a
  // range router concentrates on few shards — the skew case.
  std::vector<uint64_t> keys =
      workloads::MakeAttackKeys(workloads::AttackPattern::kBitReversed, n / 2, seed);
  const std::vector<uint64_t> saw =
      workloads::MakeAttackKeys(workloads::AttackPattern::kSawtoothWaves, n - keys.size(), seed);
  keys.insert(keys.end(), saw.begin(), saw.end());
  return keys;
}

// Drives an identical mixed op stream into both indexes and requires
// bit-identical behaviour, then compares the end states.
void DifferentialRun(const std::vector<uint64_t>& keys, uint32_t shards,
                     uint64_t seed) {
  ServerIndex sharded(shards,
                      server::ShardScaledConfig(SmallConfig(), shards));
  ServerIndex oracle(1, SmallConfig());
  Rng rng(seed);
  std::vector<ServerIndex::ScanEntry> got(128);
  std::vector<ServerIndex::ScanEntry> want(128);
  for (size_t i = 0; i < keys.size(); i++) {
    const uint64_t key = keys[i];
    const uint64_t value = key * 2654435761ULL + 1;
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 45) {
      ASSERT_EQ(sharded.Insert(key, value), oracle.Insert(key, value))
          << "insert " << key;
    } else if (dice < 65) {
      uint64_t sv = 0;
      uint64_t ov = 0;
      ASSERT_EQ(sharded.Find(key, &sv), oracle.Find(key, &ov))
          << "find " << key;
      ASSERT_EQ(sv, ov) << "find " << key;
    } else if (dice < 80) {
      ASSERT_EQ(sharded.Update(key, value ^ 0xff), oracle.Update(key, value ^ 0xff))
          << "update " << key;
    } else if (dice < 90) {
      ASSERT_EQ(sharded.Erase(key), oracle.Erase(key)) << "erase " << key;
    } else {
      const size_t n_got = sharded.Scan(key, got.size(), got.data());
      const size_t n_want = oracle.Scan(key, want.size(), want.data());
      ASSERT_EQ(n_got, n_want) << "scan from " << key;
      for (size_t j = 0; j < n_got; j++) {
        ASSERT_EQ(got[j], want[j]) << "scan from " << key << " entry " << j;
      }
    }
  }
  ASSERT_EQ(sharded.size(), oracle.size());
  ASSERT_EQ(sharded.StateHash(), oracle.StateHash());
  std::string err;
  ASSERT_TRUE(sharded.CheckShardingInvariants(&err)) << err;
}

TEST(ShardedDifferentialTest, UniformWorkloadMatchesOracleAcrossShardCounts) {
  const std::vector<uint64_t> keys = UniformKeys(TestOps(8'000), 11);
  for (const uint32_t shards : {2u, 3u, 4u, 8u}) {
    DifferentialRun(keys, shards, 101 + shards);
  }
}

TEST(ShardedDifferentialTest, ZipfianWorkloadMatchesOracleAcrossShardCounts) {
  const std::vector<uint64_t> keys = ZipfianKeys(TestOps(8'000), 22);
  for (const uint32_t shards : {2u, 3u, 4u, 8u}) {
    DifferentialRun(keys, shards, 202 + shards);
  }
}

TEST(ShardedDifferentialTest, AttackWorkloadMatchesOracleAcrossShardCounts) {
  const std::vector<uint64_t> keys = AttackKeys(TestOps(8'000), 33);
  for (const uint32_t shards : {2u, 3u, 4u, 8u}) {
    DifferentialRun(keys, shards, 303 + shards);
  }
}

TEST(ShardedDifferentialTest, StoredKeysRouteToTheirShard) {
  // Direct check of the facade's routing invariant under a stream that
  // lands keys across every shard, including range boundaries.
  const uint32_t shards = 4;
  ServerIndex index(shards, server::ShardScaledConfig(SmallConfig(), shards));
  const RangeRouter& router = index.router();
  for (uint32_t s = 0; s < shards; s++) {
    index.Insert(router.RangeStart(s), 1);
    index.Insert(router.RangeLast(s), 2);
  }
  Rng rng(44);
  for (int i = 0; i < 2'000; i++) {
    index.Insert(rng.Next(), 3);
  }
  for (uint32_t s = 0; s < shards; s++) {
    index.shard(s).ForEach([&](uint64_t key, const uint64_t&) {
      ASSERT_EQ(router.ShardFor(key), s) << "key " << key;
    });
  }
  std::string err;
  ASSERT_TRUE(index.CheckShardingInvariants(&err)) << err;
}

// --- Layer 3: the pipeline vs the oracle ------------------------------------

// Computes the expected Response of one request against the oracle,
// mirroring the worker's semantics (including the scan clamp).
Response OracleExecute(ServerIndex* oracle, const Request& req,
                       uint32_t max_scan_entries,
                       std::vector<ServerIndex::ScanEntry>* buf) {
  Response resp;
  switch (req.op) {
    case OpType::kGet:
      resp.ok = oracle->Find(req.key, &resp.value);
      break;
    case OpType::kPut:
      resp.ok = IsNewKey(oracle->InsertEx(req.key, req.value));
      break;
    case OpType::kUpdate:
      resp.ok = oracle->Update(req.key, req.value);
      break;
    case OpType::kErase:
      resp.ok = oracle->Erase(req.key);
      break;
    case OpType::kScan: {
      const size_t want = std::min<size_t>(req.scan_count, max_scan_entries);
      buf->resize(std::max<size_t>(want, 1));
      const size_t got = oracle->Scan(req.key, want, buf->data());
      resp.ok = true;
      resp.scan_len = static_cast<uint32_t>(got);
      resp.value = server::ScanChecksum(buf->data(), got);
      break;
    }
  }
  return resp;
}

TEST(ServerPipelineTest, BatchedResponsesMatchSequentialOracle) {
  const uint32_t shards = 4;
  ServerIndex index(shards, server::ShardScaledConfig(SmallConfig(), shards));
  ServerIndex oracle(1, SmallConfig());
  ServerOptions opts;
  opts.max_scan_entries = 128;  // smaller than some requests: clamp path
  DyTISServer srv(&index, opts);

  Rng rng(0xbada + 7);
  std::vector<ServerIndex::ScanEntry> scratch;
  const size_t total_batches = TestOps(8'000) / 32;
  size_t total_ops = 0;
  for (size_t b = 0; b < total_batches; b++) {
    // Alternate write-mixed and read-only batches.  Scans stitch across
    // shards, so a scan racing a same-batch write on another shard would
    // make the comparison nondeterministic; the server promises batch-order
    // execution per shard, not cross-shard isolation.  Read-only batches
    // race nothing and must match exactly.
    const bool read_only = (b % 2) == 1;
    std::vector<Request> batch(32);
    for (Request& req : batch) {
      const uint64_t dice = rng.NextBelow(100);
      req.key = rng.Next();
      if (read_only) {
        if (dice < 70) {
          req.op = OpType::kGet;
        } else {
          req.op = OpType::kScan;
          req.scan_count = static_cast<uint32_t>(rng.NextBelow(256));
        }
      } else if (dice < 55) {
        req.op = OpType::kPut;
        req.value = req.key ^ 0xabcdef;
      } else if (dice < 75) {
        req.op = OpType::kGet;
      } else if (dice < 90) {
        req.op = OpType::kUpdate;
        req.value = req.key ^ 0x123456;
      } else {
        req.op = OpType::kErase;
      }
    }
    std::vector<Response> responses(batch.size());
    srv.ExecuteBatch(batch.data(), batch.size(), responses.data());
    total_ops += batch.size();
    for (size_t i = 0; i < batch.size(); i++) {
      const Response want =
          OracleExecute(&oracle, batch[i], opts.max_scan_entries, &scratch);
      ASSERT_EQ(responses[i].ok, want.ok)
          << "batch " << b << " op " << i << " ("
          << server::OpTypeName(batch[i].op) << " " << batch[i].key << ")";
      ASSERT_EQ(responses[i].value, want.value)
          << "batch " << b << " op " << i << " ("
          << server::OpTypeName(batch[i].op) << " " << batch[i].key << ")";
      ASSERT_EQ(responses[i].scan_len, want.scan_len)
          << "batch " << b << " op " << i;
    }
  }
  ASSERT_EQ(index.StateHash(), oracle.StateHash());
  const server::ServerStats stats = srv.Stats();
  EXPECT_EQ(stats.requests, total_ops);
  EXPECT_EQ(stats.batches, total_batches);
  EXPECT_GE(stats.shard_handoffs, stats.batches);
  uint64_t op_sum = 0;
  for (int i = 0; i < server::kNumOpTypes; i++) {
    op_sum += stats.op_counts[i];
  }
  EXPECT_EQ(op_sum, total_ops);
  EXPECT_EQ(srv.ServiceLatency().count(), total_ops);
  EXPECT_EQ(srv.EndToEndLatency().count(), 0u);  // no async traffic
  srv.Stop();
  std::string err;
  ASSERT_TRUE(index.CheckShardingInvariants(&err)) << err;
}

}  // namespace
}  // namespace dytis
