#include "src/baselines/alex/alex_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/baselines/alex/data_node.h"
#include "src/datasets/dataset.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

// ---------------- AlexDataNode ----------------

TEST(AlexDataNodeTest, InsertFindErase) {
  AlexDataNode<uint64_t> node(64);
  int slot = -1;
  EXPECT_EQ(node.Insert(10, 100, &slot),
            AlexDataNode<uint64_t>::InsertResult::kInserted);
  EXPECT_EQ(node.Insert(10, 200, &slot),
            AlexDataNode<uint64_t>::InsertResult::kAlreadyExists);
  ASSERT_GE(slot, 0);
  node.MutableValueAt(slot) = 200;
  const int found = node.Find(10);
  ASSERT_GE(found, 0);
  EXPECT_EQ(node.ValueAt(found), 200u);
  EXPECT_TRUE(node.Erase(10));
  EXPECT_FALSE(node.Erase(10));
  EXPECT_EQ(node.Find(10), -1);
}

TEST(AlexDataNodeTest, GappedArrayStaysSorted) {
  AlexDataNode<uint64_t> node(256);
  Rng rng(1);
  for (int i = 0; i < 150; i++) {
    int slot;
    node.Insert(rng.Next(), 0, &slot);
  }
  uint64_t prev = 0;
  for (size_t i = 0; i < node.capacity(); i++) {
    ASSERT_GE(node.KeyAt(static_cast<int>(i)), prev);
    prev = node.KeyAt(static_cast<int>(i));
  }
}

TEST(AlexDataNodeTest, DensityBoundTriggersAction) {
  AlexDataNode<uint64_t> node(64);
  int inserted = 0;
  int slot;
  while (node.Insert(static_cast<uint64_t>(inserted) * 100, 0, &slot) ==
         AlexDataNode<uint64_t>::InsertResult::kInserted) {
    inserted++;
    ASSERT_LT(inserted, 64);
  }
  // Density cap is 0.8 of 64 slots.
  EXPECT_NEAR(inserted, 51, 2);
  node.Expand();
  EXPECT_GE(node.capacity(), 128u);
  EXPECT_EQ(node.Insert(999'999, 0, &slot),
            AlexDataNode<uint64_t>::InsertResult::kInserted);
  // All pre-expansion keys survive.
  for (int i = 0; i < inserted; i++) {
    ASSERT_GE(node.Find(static_cast<uint64_t>(i) * 100), 0);
  }
}

TEST(AlexDataNodeTest, BulkLoadModelAccuracy) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < 1000; i++) {
    entries.push_back({i * 1000, i});
  }
  AlexDataNode<uint64_t> node;
  node.BulkLoad(entries);
  EXPECT_EQ(node.num_keys(), 1000u);
  // Linear data: predictions should be near-exact (within a few slots).
  for (uint64_t i = 0; i < 1000; i += 97) {
    const int found = node.Find(i * 1000);
    ASSERT_GE(found, 0);
    EXPECT_EQ(node.ValueAt(found), i);
  }
}

TEST(AlexDataNodeTest, ReinsertAfterEraseUsesGap) {
  AlexDataNode<uint64_t> node(64);
  int slot;
  node.Insert(5, 50, &slot);
  node.Insert(10, 100, &slot);
  node.Erase(5);
  EXPECT_EQ(node.Insert(5, 51, &slot),
            AlexDataNode<uint64_t>::InsertResult::kInserted);
  const int f = node.Find(5);
  ASSERT_GE(f, 0);
  EXPECT_EQ(node.ValueAt(f), 51u);
}

// ---------------- AlexIndex ----------------

TEST(AlexIndexTest, EmptyIndex) {
  AlexIndex<uint64_t> idx;
  uint64_t v;
  EXPECT_FALSE(idx.Find(1, &v));
  EXPECT_FALSE(idx.Erase(1));
  EXPECT_EQ(idx.size(), 0u);
}

TEST(AlexIndexTest, InsertOnlyGrowth) {
  AlexIndex<uint64_t> idx;
  Rng rng(3);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 100'000; i++) {
    const uint64_t k = rng.Next();
    const uint64_t v = rng.Next();
    ASSERT_EQ(idx.Insert(k, v), model.emplace(k, v).second);
    model[k] = v;
  }
  ASSERT_EQ(idx.size(), model.size());
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_TRUE(idx.Find(k, &got));
    ASSERT_EQ(got, v);
  }
  // Expansions and splits must have occurred.
  EXPECT_GT(idx.stats().expansions + idx.stats().splits +
                idx.stats().subtree_creations,
            0u);
}

TEST(AlexIndexTest, BulkLoadThenQuery) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  Rng rng(4);
  for (int i = 0; i < 200'000; i++) {
    entries.push_back({rng.Next(), rng.Next()});
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](auto& a, auto& b) { return a.first == b.first; }),
                entries.end());
  AlexIndex<uint64_t> idx;
  idx.BulkLoad(entries);
  EXPECT_EQ(idx.size(), entries.size());
  for (size_t i = 0; i < entries.size(); i += 101) {
    uint64_t v;
    ASSERT_TRUE(idx.Find(entries[i].first, &v)) << i;
    ASSERT_EQ(v, entries[i].second);
  }
  const auto shape = idx.ComputeShape();
  EXPECT_GT(shape.data_nodes, 1u);
  EXPECT_GE(shape.max_depth, 2);
}

TEST(AlexIndexTest, BulkLoadThenInsertRest) {
  // The paper's ALEX-10 protocol: 10% bulk load, 90% inserted.
  const Dataset d = MakeDataset(DatasetId::kReviewM, 50'000, 5);
  std::vector<std::pair<uint64_t, uint64_t>> bulk;
  const size_t cut = d.keys.size() / 10;
  for (size_t i = 0; i < cut; i++) {
    bulk.push_back({d.keys[i], i});
  }
  std::sort(bulk.begin(), bulk.end());
  AlexIndex<uint64_t> idx;
  idx.BulkLoad(bulk);
  for (size_t i = cut; i < d.keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(d.keys[i], i));
  }
  EXPECT_EQ(idx.size(), d.keys.size());
  for (size_t i = 0; i < d.keys.size(); i += 37) {
    uint64_t v;
    ASSERT_TRUE(idx.Find(d.keys[i], &v)) << i;
    ASSERT_EQ(v, i);
  }
}

TEST(AlexIndexTest, ScanSortedAcrossLeaves) {
  AlexIndex<uint64_t> idx;
  Rng rng(6);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 50'000; i++) {
    keys.push_back(rng.Next());
  }
  for (uint64_t k : keys) {
    idx.Insert(k, k / 3);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<std::pair<uint64_t, uint64_t>> out(500);
  const size_t start = keys.size() / 4;
  ASSERT_EQ(idx.Scan(keys[start], 500, out.data()), 500u);
  for (size_t i = 0; i < 500; i++) {
    ASSERT_EQ(out[i].first, keys[start + i]) << i;
    ASSERT_EQ(out[i].second, out[i].first / 3);
  }
}

TEST(AlexIndexTest, UpdateAndErase) {
  AlexIndex<uint64_t> idx;
  for (uint64_t k = 0; k < 10'000; k++) {
    idx.Insert(k * 7, k);
  }
  EXPECT_TRUE(idx.Update(7, 999));
  uint64_t v;
  ASSERT_TRUE(idx.Find(7, &v));
  EXPECT_EQ(v, 999u);
  EXPECT_FALSE(idx.Update(8, 1));
  EXPECT_TRUE(idx.Erase(7));
  EXPECT_FALSE(idx.Find(7, &v));
  EXPECT_EQ(idx.size(), 9999u);
}

TEST(AlexIndexTest, SkewedClustersStressSplits) {
  AlexIndex<uint64_t> idx;
  Rng rng(7);
  std::vector<uint64_t> keys;
  for (int c = 0; c < 20; c++) {
    const uint64_t base = rng.Next() & ~((uint64_t{1} << 30) - 1);
    for (int i = 0; i < 3000; i++) {
      keys.push_back(base + static_cast<uint64_t>(i) * 64);
    }
  }
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(keys[i], i)) << i;
  }
  for (size_t i = 0; i < keys.size(); i += 53) {
    uint64_t v;
    ASSERT_TRUE(idx.Find(keys[i], &v)) << i;
    ASSERT_EQ(v, i);
  }
}

TEST(AlexIndexTest, DatasetRoundTrip) {
  for (DatasetId id : {DatasetId::kTaxi, DatasetId::kReviewL,
                       DatasetId::kLonglat}) {
    const Dataset d = MakeDataset(id, 30'000, 8);
    AlexIndex<uint64_t> idx;
    for (size_t i = 0; i < d.keys.size(); i++) {
      ASSERT_TRUE(idx.Insert(d.keys[i], i)) << DatasetShortName(id);
    }
    for (size_t i = 0; i < d.keys.size(); i += 41) {
      uint64_t v;
      ASSERT_TRUE(idx.Find(d.keys[i], &v)) << DatasetShortName(id);
      ASSERT_EQ(v, i);
    }
  }
}

}  // namespace
}  // namespace dytis
