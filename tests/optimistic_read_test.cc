// Targeted torn-read reproducers for the optimistic lock-free read path.
//
// The scenarios a seqlock-validated reader can get wrong are (a) probing
// while a writer is mid-mutation (version odd), (b) probing a window a
// writer overlapped (version moved), and (c) probing state the lock-free
// path cannot cover (overflow stash).  Each test constructs one of these
// deterministically — the mid-structural-op case by *pinning* a writer
// inside its critical section via the FaultPolicy observation hook — and
// asserts both correctness (no stale or phantom values, ever) and that the
// conflict counters actually moved, proving the scenario exercised the
// retry/fallback machinery rather than sliding by on timing luck.
//
// scripts/check.sh runs this suite under TSan (stress label), where the
// atomic element accesses of the probe are load-bearing: any unannotated
// racing access in the optimistic path is a hard failure there.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dytis.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

using Index = ConcurrentDyTIS<uint64_t>;

DyTISConfig SmallConfig() {
  DyTISConfig c;
  c.first_level_bits = 3;
  c.bucket_bytes = 256;  // 16 pairs per bucket
  c.l_start = 2;
  c.max_global_depth = 14;
  return c;
}

uint64_t ValueFor(uint64_t key) { return key ^ 0xA5A5A5A5A5A5A5A5ULL; }

// Writer-pinning hook state.  `armed` gates the pin so index preloading
// (which also runs structural ops) passes through untouched; the pinned
// writer spins inside its critical section — segment lock held, version odd
// — until `release`.
struct PinState {
  std::atomic<bool> armed{false};
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
};

bool PinHook(void* arg, StructuralOp /*op*/) {
  auto* st = static_cast<PinState*>(arg);
  if (st->armed.load(std::memory_order_acquire)) {
    st->pinned.store(true, std::memory_order_release);
    while (!st->release.load(std::memory_order_acquire)) {
      CpuRelax();
    }
  }
  return false;  // observe only: the structural op proceeds normally
}

// A writer pinned mid-remap/expansion (segment version odd) while readers
// hammer that exact segment: every optimistic attempt must conflict, the
// retry budget must drain into the pessimistic fallback, and no read may
// return a stale or phantom value before, during, or after the pin.
TEST(OptimisticReadTest, PinnedWriterMidStructuralOp) {
  PinState pin;
  DyTISConfig cfg = SmallConfig();
  cfg.fault_policy.fail_remap = true;
  cfg.fault_policy.fail_expand = true;
  cfg.fault_policy.fail_count = FaultPolicy::kAlways;  // match every attempt
  cfg.fault_policy.on_match = &PinHook;
  cfg.fault_policy.on_match_arg = &pin;
  Index idx(cfg);
  ASSERT_TRUE(idx.OptimisticReadsEnabled());

  // Preload one dense band (single EH table, structurally active) with the
  // hook disarmed.
  const uint64_t kBase = uint64_t{1} << 40;
  const size_t kPreload = 4'000;
  for (size_t i = 0; i < kPreload; i++) {
    idx.Insert(kBase + i, ValueFor(kBase + i));
  }
  idx.mutable_stats().Reset();

  std::atomic<bool> done{false};
  std::atomic<uint64_t> bad_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 31 + 7);
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t key = kBase + rng.NextBelow(kPreload);
        uint64_t v = 0;
        if (!idx.Find(key, &v) || v != ValueFor(key)) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Arm the pin, then keep inserting into the same band until a structural
  // attempt matches and the writer parks mid-op.
  pin.armed.store(true, std::memory_order_release);
  std::thread writer([&] {
    uint64_t k = kBase + kPreload;
    while (!pin.pinned.load(std::memory_order_acquire)) {
      idx.Insert(k, ValueFor(k));
      k++;
    }
  });
  while (!pin.pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Writer is parked inside its critical section: the segment version is
  // odd, so every optimistic attempt on that segment conflicts.  Give the
  // readers time to drain retry budgets into fallbacks, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pin.armed.store(false, std::memory_order_release);
  pin.release.store(true, std::memory_order_release);
  writer.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  done.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }

  EXPECT_EQ(bad_reads.load(), 0u) << "stale or phantom value observed";
  const DyTISStatsView v = idx.stats().View();
  EXPECT_GT(v.optimistic_read_retries, 0u)
      << "the pinned writer never forced an optimistic retry";
  EXPECT_GT(v.optimistic_read_fallbacks, 0u)
      << "no reader drained its retry budget into the pessimistic path";
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
}

// In-place bucket churn (inserts shifting bucket tails, erases shifting
// them back) under reader fire: readers of *stable* keys must always find
// them with the right value, and readers of never-inserted keys must never
// get a phantom hit, even while the probe races the element shifts.
TEST(OptimisticReadTest, NoPhantomOrStaleUnderBucketChurn) {
  Index idx(SmallConfig());
  ASSERT_TRUE(idx.OptimisticReadsEnabled());
  const uint64_t kBase = uint64_t{1} << 41;
  // Stable keys (i % 4 == 0) interleaved with churn keys (i % 4 == 1) in the
  // same buckets; keys with i % 4 == 3 are never inserted.
  const size_t kSpan = 6'000;
  for (uint64_t i = 0; i < kSpan; i += 4) {
    idx.Insert(kBase + i, ValueFor(kBase + i));
  }
  std::atomic<bool> done{false};
  std::atomic<uint64_t> bad_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; t++) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 101 + 13);
      uint64_t iter = 0;
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t i = rng.NextBelow(kSpan / 4) * 4;
        uint64_t v = 0;
        // Stable key: must exist with its exact value.
        if (!idx.Find(kBase + i, &v) || v != ValueFor(kBase + i)) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
        // Neighbouring hole: must never produce a phantom hit.
        if (idx.Contains(kBase + i + 3)) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
        if ((++iter & 63) == 0) {
          std::this_thread::yield();  // single-core boxes: let the writer run
        }
      }
    });
  }
  std::thread writer([&] {
    Rng rng(4242);
    for (int round = 0; round < 12'000; round++) {
      const uint64_t i = rng.NextBelow(kSpan / 4) * 4 + 1;
      if ((round & 1) == 0) {
        idx.Insert(kBase + i, ValueFor(kBase + i));
      } else {
        idx.Erase(kBase + i);
      }
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(bad_reads.load(), 0u);
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
}

// Overflow-stash fallback: once a segment degrades into its stash, the
// lock-free probe cannot serve it (the stash is a std::vector); lookups must
// fall back to the locked path — counted — and stay exact.
TEST(OptimisticReadTest, StashedSegmentFallsBackToLockedPath) {
  DyTISConfig cfg = SmallConfig();
  cfg.max_global_depth = 3;  // exhaust structural repair almost immediately
  Index idx(cfg);
  ASSERT_TRUE(idx.OptimisticReadsEnabled());
  // Dense consecutive keys at the bottom of one EH: blows through the depth
  // cap and lands in the stash.
  const size_t kKeys = 3'000;
  for (uint64_t k = 0; k < kKeys; k++) {
    idx.Insert(k, ValueFor(k));
  }
  ASSERT_GT(idx.StashEntries(), 0u) << "scenario failed to populate a stash";
  idx.mutable_stats().Reset();
  for (uint64_t k = 0; k < kKeys; k++) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(k, &v)) << "key " << k;
    ASSERT_EQ(v, ValueFor(k)) << "key " << k;
  }
  const DyTISStatsView v = idx.stats().View();
  EXPECT_GT(v.optimistic_read_fallbacks, 0u)
      << "stash-resident segment was served lock-free";
}

// The config toggle: with optimistic_reads off, the same workload must take
// the pessimistic path exclusively (zero conflict counters — the counters
// only exist on the optimistic path) and stay exact.
TEST(OptimisticReadTest, ToggleOffUsesPessimisticPath) {
  DyTISConfig cfg = SmallConfig();
  cfg.optimistic_reads = false;
  Index idx(cfg);
  ASSERT_FALSE(idx.OptimisticReadsEnabled());
  const uint64_t kBase = uint64_t{1} << 42;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> bad_reads{0};
  for (uint64_t i = 0; i < 5'000; i++) {
    idx.Insert(kBase + i * 2, ValueFor(kBase + i * 2));
  }
  std::thread reader([&] {
    Rng rng(99);
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t key = kBase + rng.NextBelow(5'000) * 2;
      uint64_t v = 0;
      if (!idx.Find(key, &v) || v != ValueFor(key)) {
        bad_reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (uint64_t i = 5'000; i < 10'000; i++) {
    idx.Insert(kBase + i * 2, ValueFor(kBase + i * 2));
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  const DyTISStatsView v = idx.stats().View();
  EXPECT_EQ(v.optimistic_read_retries, 0u);
  EXPECT_EQ(v.optimistic_read_fallbacks, 0u);
}

// Single-threaded policies and non-probe-safe value types must report (and
// compile) the capability out.
TEST(OptimisticReadTest, CapabilityMatrix) {
  EXPECT_FALSE(DyTIS<uint64_t>::kOptimisticCapable);
  EXPECT_TRUE(ConcurrentDyTIS<uint64_t>::kOptimisticCapable);
  EXPECT_TRUE(ConcurrentDyTIS<uint32_t>::kOptimisticCapable);
  EXPECT_FALSE(FineGrainedDyTIS<uint64_t>::kOptimisticCapable);
  struct Fat {
    uint64_t a, b;
  };
  EXPECT_FALSE(ConcurrentDyTIS<Fat>::kOptimisticCapable);
  DyTIS<uint64_t> st;
  EXPECT_FALSE(st.OptimisticReadsEnabled());
}

}  // namespace
}  // namespace dytis
