#include "src/baselines/rmi.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/datasets/dataset.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

using Rmi = StaticRmi<uint64_t>;

std::vector<std::pair<uint64_t, uint64_t>> SortedEntries(size_t n,
                                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (size_t i = 0; i < n; i++) {
    entries.push_back({rng.Next(), rng.Next()});
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](auto& a, auto& b) { return a.first == b.first; }),
                entries.end());
  return entries;
}

TEST(RmiTest, EmptyIndex) {
  Rmi rmi;
  EXPECT_FALSE(rmi.Find(1, nullptr));
  std::pair<uint64_t, uint64_t> out[2];
  EXPECT_EQ(rmi.Scan(0, 2, out), 0u);
}

TEST(RmiTest, FindEveryKey) {
  const auto entries = SortedEntries(100'000, 1);
  Rmi rmi(512);
  rmi.BulkLoad(entries);
  EXPECT_EQ(rmi.size(), entries.size());
  for (size_t i = 0; i < entries.size(); i += 37) {
    uint64_t v;
    ASSERT_TRUE(rmi.Find(entries[i].first, &v)) << i;
    ASSERT_EQ(v, entries[i].second);
  }
  EXPECT_FALSE(rmi.Find(entries[10].first + 1, nullptr));
}

TEST(RmiTest, UniformDataHasLowModelError) {
  const auto entries = SortedEntries(200'000, 2);  // uniform random keys
  Rmi rmi(1024);
  rmi.BulkLoad(entries);
  EXPECT_LT(rmi.MeanAbsoluteError(), 64.0);
}

TEST(RmiTest, SkewedDataHasHigherModelError) {
  // Review-shaped keys: clusters raise the model error (Section 2.2's
  // point about CDF complexity).
  const Dataset d = MakeDataset(DatasetId::kReviewM, 100'000, 3);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t k : d.keys) {
    entries.push_back({k, 1});
  }
  std::sort(entries.begin(), entries.end());
  Rmi skewed(1024);
  skewed.BulkLoad(entries);
  const auto uniform_entries = SortedEntries(100'000, 4);
  Rmi uniform(1024);
  uniform.BulkLoad(uniform_entries);
  EXPECT_GT(skewed.MeanAbsoluteError(), uniform.MeanAbsoluteError() * 2);
}

TEST(RmiTest, ScanSorted) {
  const auto entries = SortedEntries(50'000, 5);
  Rmi rmi;
  rmi.BulkLoad(entries);
  std::vector<std::pair<uint64_t, uint64_t>> out(100);
  const size_t start = entries.size() / 2;
  ASSERT_EQ(rmi.Scan(entries[start].first, 100, out.data()), 100u);
  for (size_t i = 0; i < 100; i++) {
    ASSERT_EQ(out[i].first, entries[start + i].first);
  }
  // Scan from a non-existing key starts at the next larger one.
  ASSERT_GE(rmi.Scan(entries[start].first + 1, 1, out.data()), 1u);
  EXPECT_EQ(out[0].first, entries[start + 1].first);
}

TEST(RmiTest, SingleModelDegenerate) {
  const auto entries = SortedEntries(10'000, 6);
  Rmi rmi(1);  // one second-stage model
  rmi.BulkLoad(entries);
  for (size_t i = 0; i < entries.size(); i += 101) {
    ASSERT_TRUE(rmi.Find(entries[i].first, nullptr));
  }
}

}  // namespace
}  // namespace dytis
