// Regression suite for the retired-core reclamation path.
//
// The bug this guards against: the previous scheme freed retired segment
// cores only while the EH directory lock was held *exclusively*, so
// rebuild-heavy workloads that never split either stalled every reader and
// writer behind a periodic exclusive drain (MaybeDrainRetired) or grew the
// backlog without bound.  With epoch-based reclamation, retiring writers
// amortise bounded free passes and the directory is taken exclusively for
// split/doubling only — never for memory.
//
// The rebuild-only workload here pins every structural operation to the
// segment-local kind (remap / expansion / merge): a single first-level
// table, l_start = 0 (no warm-up splits), and a segment-size limit far
// above the key count, so the lone segment stays at LD == GD == 0 and
// never needs the directory exclusively.  That makes the regression
// assertion exact: stats.dir_exclusive_acquisitions must stay ZERO across
// thousands of core retirements, and the retired backlog must stay bounded
// while they happen.
//
// scripts/check.sh runs this suite under TSan (races in the epoch
// protocol) and under ASan with leak checking on (a retired-but-never-freed
// core is a leak, including at teardown-with-backlog).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dytis.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

using Index = ConcurrentDyTIS<uint64_t>;

uint64_t ValueFor(uint64_t key) { return key * 0x9E3779B97F4A7C15ULL + 1; }

// Bijective golden-ratio spread: maps the dense ordinals 1..N onto
// low-discrepancy points covering the whole 64-bit keyspace.  The learned
// remap function interpolates linearly inside each of the 2^p sub-ranges, so
// keys clustered in a sliver of the space (e.g. k * 1000) would all land in
// one bucket that no remap or split can ever unclog -- a pathological
// workload for any CDF-shaped index, and not the regression under test.
uint64_t SpreadKey(uint64_t ordinal) {
  return ordinal * 0x9E3779B97F4A7C15ULL;
}

// One first-level table, no warm-up phase, generous segment-size limit:
// every bucket overflow is repairable by remap/expansion alone, so the
// directory is never taken exclusively and every retired object is a
// segment core.
DyTISConfig RebuildOnlyConfig() {
  DyTISConfig c;
  c.first_level_bits = 0;
  c.bucket_bytes = 256;  // 16 pairs per bucket: rebuilds are frequent
  c.l_start = 0;
  c.limit_multiplier = 1024;
  c.limit_multiplier_large = 1024;
  c.epoch_advance_threshold = 16;
  c.epoch_reclaim_batch = 64;
  return c;
}

// Config for the full structural mix (splits, doublings, expansions,
// remaps) reachable quickly from an empty index.
DyTISConfig ChurnConfig() {
  DyTISConfig c;
  c.first_level_bits = 3;
  c.bucket_bytes = 256;
  c.l_start = 2;
  c.max_global_depth = 14;
  c.epoch_advance_threshold = 16;
  c.epoch_reclaim_batch = 64;
  return c;
}

// --- Satellite: the reclamation regression itself ------------------------

TEST(ReclamationTest, RebuildChurnIsBoundedAndNeverTakesDirExclusive) {
  Index index(RebuildOnlyConfig());
  constexpr uint64_t kKeys = 2000;
  for (uint64_t k = 1; k <= kKeys; k++) {
    index.Insert(SpreadKey(k), ValueFor(SpreadKey(k)));
  }

  const size_t threshold = index.config().epoch_advance_threshold;
  const size_t batch = index.config().epoch_reclaim_batch;
  uint64_t max_pending = 0;
  for (int round = 0; round < 30; round++) {
    // Erase seven eighths of the keys (drives utilization under the merge
    // threshold: the merge rebuild retires a core), then re-insert (the
    // refill crosses the utilization threshold repeatedly: expansion and
    // remap rebuilds retire more cores).
    for (uint64_t k = 1; k <= kKeys; k++) {
      if (k % 8 != 0) {
        index.Erase(SpreadKey(k));
      }
    }
    max_pending = std::max(max_pending, index.EpochInfo().retired_pending);
    for (uint64_t k = 1; k <= kKeys; k++) {
      if (k % 8 != 0) {
        index.Insert(SpreadKey(k), ValueFor(SpreadKey(k)));
      }
    }
    max_pending = std::max(max_pending, index.EpochInfo().retired_pending);
  }

  const DyTISStatsView v = index.stats().View();
  // The workload genuinely exercised the retire path...
  EXPECT_GT(v.cores_retired, 50u);
  EXPECT_GT(v.remappings + v.expansions + v.merges, 50u);
  // ...entirely without splits/doublings, and reclamation NEVER acquired
  // the directory exclusively — the regression this suite exists for.
  EXPECT_EQ(v.splits, 0u);
  EXPECT_EQ(v.doublings, 0u);
  EXPECT_EQ(v.dir_exclusive_acquisitions, 0u);

  // Amortised reclamation keeps the backlog bounded by a few generations
  // of the threshold, not by the total retire count.
  EXPECT_LE(max_pending, 4 * threshold + batch);
  EXPECT_GT(index.EpochInfo().reclaimed_total, 0u);

  // Quiescing drains the remainder completely.
  index.QuiesceReclamation();
  EXPECT_EQ(index.EpochInfo().retired_pending, 0u);
  EXPECT_EQ(index.EpochInfo().reclaimed_total,
            index.EpochInfo().retired_total);

  // The index is still correct after all that churn.
  for (uint64_t k = 1; k <= kKeys; k++) {
    uint64_t got = 0;
    ASSERT_TRUE(index.Find(SpreadKey(k), &got)) << "ordinal " << k;
    ASSERT_EQ(got, ValueFor(SpreadKey(k)));
  }
  const auto report = index.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Describe();
}

// Readers hold epoch guards across the same rebuild-heavy churn: every
// lookup of a stable (never-churned) key must hit with the right value —
// probing a retired core must yield a consistent pre-rebuild answer, never
// garbage — and reclamation must still never touch the directory lock.
TEST(ReclamationTest, EpochGuardedReadersSurviveRebuildChurn) {
  Index index(RebuildOnlyConfig());
  constexpr uint64_t kKeys = 2000;
  // Ordinals divisible by 8 are stable; the rest churn.
  for (uint64_t k = 1; k <= kKeys; k++) {
    index.Insert(SpreadKey(k), ValueFor(SpreadKey(k)));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; r++) {
    readers.emplace_back([&, r] {
      Rng rng(0xEB0 + r);
      std::vector<Index::ScanEntry> buf(64);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t k = (rng.Next() % kKeys) + 1;
        uint64_t got = 0;
        const bool hit = index.Find(SpreadKey(k), &got);
        if (hit) {
          ASSERT_EQ(got, ValueFor(SpreadKey(k))) << "torn read, ordinal " << k;
        } else {
          // Only churned ordinals may be transiently absent.
          ASSERT_NE(k % 8, 0u) << "stable ordinal " << k << " vanished";
        }
        // Epoch-guarded scan through the same churning segment.
        const size_t got_n = index.Scan(SpreadKey(k), buf.size(), buf.data());
        for (size_t i = 1; i < got_n; i++) {
          ASSERT_LT(buf[i - 1].first, buf[i].first) << "scan out of order";
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int round = 0; round < 15; round++) {
    for (uint64_t k = 1; k <= kKeys; k++) {
      if (k % 8 != 0) {
        index.Erase(SpreadKey(k));
      }
    }
    for (uint64_t k = 1; k <= kKeys; k++) {
      if (k % 8 != 0) {
        index.Insert(SpreadKey(k), ValueFor(SpreadKey(k)));
      }
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }

  EXPECT_GT(reads.load(), 0u);
  const DyTISStatsView v = index.stats().View();
  EXPECT_GT(v.cores_retired, 25u);
  EXPECT_EQ(v.dir_exclusive_acquisitions, 0u);

  index.QuiesceReclamation();
  EXPECT_EQ(index.EpochInfo().retired_pending, 0u);
}

// --- Satellite: reads concurrent with the full structural mix ------------

// Growth from empty exercises every structural operation (warm-up splits,
// directory doublings, then remap/expansion/splits past l_start) while
// epoch-guarded finds and scans run concurrently.  Retired segments and
// directories — not just cores — are in flight here; a reader walking a
// just-retired directory or sibling chain must still see a consistent
// pre-op view.  Stable keys are inserted up front and must never vanish.
TEST(ReclamationTest, ReadsSurviveFullStructuralMixFromEmpty) {
  Index index(ChurnConfig());
  constexpr uint64_t kStable = 512;
  constexpr uint64_t kGrow = 20000;
  // Stable keys sit at exact 2^55 strides: 512 of them tile the full 64-bit
  // space evenly, so they spread across every first-level table and
  // sub-range.  The |1 tag makes them recognisable so writers can skip them.
  auto stable_key = [](uint64_t i) { return (i << 55) | 1; };
  constexpr uint64_t kStrideMask = (1ULL << 55) - 1;
  for (uint64_t i = 0; i < kStable; i++) {
    index.Insert(stable_key(i), ValueFor(stable_key(i)));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&, r] {
      Rng rng(0xCAFE + r);
      std::vector<Index::ScanEntry> buf(128);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t i = rng.Next() % kStable;
        const uint64_t key = stable_key(i);
        uint64_t got = 0;
        ASSERT_TRUE(index.Find(key, &got)) << "stable key vanished";
        ASSERT_EQ(got, ValueFor(key));
        const size_t n = index.Scan(key, buf.size(), buf.data());
        ASSERT_GT(n, 0u);
        ASSERT_EQ(buf[0].first, key);  // stable key leads its own scan
        for (size_t j = 1; j < n; j++) {
          ASSERT_LT(buf[j - 1].first, buf[j].first);
        }
      }
    });
  }

  // Two writers force structural churn (splits/doublings/rebuilds) across
  // the whole key space.
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; w++) {
    writers.emplace_back([&, w] {
      Rng rng(0xD00D + w);
      for (uint64_t i = 0; i < kGrow; i++) {
        const uint64_t key = rng.Next();
        if ((key & kStrideMask) == 1) {
          continue;  // never collide with a stable key
        }
        index.Insert(key, ValueFor(key));
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }

  const DyTISStatsView v = index.stats().View();
  // The mix actually happened: splits and segment rebuilds both retired
  // objects through the epoch domain.
  EXPECT_GT(v.splits, 0u);
  EXPECT_GT(v.segments_retired, 0u);
  EXPECT_EQ(v.segments_retired, v.splits);
  if (v.doublings > 0) {
    EXPECT_EQ(v.directories_retired, v.doublings);
  }

  const auto report = index.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Describe();
  index.QuiesceReclamation();
  EXPECT_EQ(index.EpochInfo().retired_pending, 0u);
}

// --- Satellite: teardown with a live backlog -----------------------------

// Destroying the index while retired objects are still pending must free
// everything (the epoch domain's destructor drains unconditionally).  The
// assertion is the ASan leak-check stage in scripts/check.sh; here the test
// just guarantees the scenario — a non-empty backlog at destruction — is
// actually reached.
TEST(ReclamationTest, TeardownWithPendingBacklogDoesNotLeak) {
  DyTISConfig config = RebuildOnlyConfig();
  // Threshold above anything the workload reaches: nothing is ever
  // amortised away, so the backlog is guaranteed non-empty at teardown.
  config.epoch_advance_threshold = 1u << 20;
  {
    Index index(config);
    for (uint64_t k = 1; k <= 2000; k++) {
      index.Insert(SpreadKey(k), ValueFor(SpreadKey(k)));
    }
    for (uint64_t k = 1; k <= 2000; k++) {
      if (k % 8 != 0) {
        index.Erase(SpreadKey(k));
      }
    }
    for (uint64_t k = 1; k <= 2000; k++) {
      if (k % 8 != 0) {
        index.Insert(SpreadKey(k), ValueFor(SpreadKey(k)));
      }
    }
    EXPECT_GT(index.EpochInfo().retired_pending, 0u);
  }  // ~BasicDyTIS -> ~EpochDomain frees the backlog; ASan verifies.
}

}  // namespace
}  // namespace dytis
