#include "src/datasets/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "src/analysis/dynamics.h"
#include "src/datasets/generators.h"

namespace dytis {
namespace {

constexpr size_t kN = 60'000;

DynamicsOptions TestOptions() {
  DynamicsOptions o;
  o.keys_per_range = 10'000;
  return o;
}

class AllDatasetsTest : public testing::TestWithParam<DatasetId> {};

TEST_P(AllDatasetsTest, KeysAreUniqueAndCountMatches) {
  const Dataset d = MakeDataset(GetParam(), kN, /*seed=*/7);
  EXPECT_EQ(d.keys.size(), kN);
  std::unordered_set<uint64_t> seen(d.keys.begin(), d.keys.end());
  EXPECT_EQ(seen.size(), kN);
}

TEST_P(AllDatasetsTest, Deterministic) {
  const Dataset a = MakeDataset(GetParam(), 5'000, 11);
  const Dataset b = MakeDataset(GetParam(), 5'000, 11);
  EXPECT_EQ(a.keys, b.keys);
}

TEST_P(AllDatasetsTest, SeedChangesKeys) {
  const Dataset a = MakeDataset(GetParam(), 5'000, 1);
  const Dataset b = MakeDataset(GetParam(), 5'000, 2);
  EXPECT_NE(a.keys, b.keys);
}

TEST_P(AllDatasetsTest, ShuffledIsPermutationOfOriginal) {
  const Dataset orig = MakeDataset(GetParam(), 5'000, 3, /*shuffled=*/false);
  const Dataset shuf = MakeDataset(GetParam(), 5'000, 3, /*shuffled=*/true);
  EXPECT_NE(orig.keys, shuf.keys);
  std::vector<uint64_t> a = orig.keys;
  std::vector<uint64_t> b = shuf.keys;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, AllDatasetsTest, testing::ValuesIn(AllDatasetIds()),
    [](const testing::TestParamInfo<DatasetId>& info) {
      return std::string(DatasetShortName(info.param));
    });

// --- Characteristic checks: the substitutes must land in the right region
// of the Figure-1 plane (relative ordering, not absolute values). ----------

struct Characteristics {
  double skewness;
  double kdd;
};

Characteristics Measure(DatasetId id, bool shuffled = false) {
  const Dataset d = MakeDataset(id, kN, 42, shuffled);
  const auto c = MeasureDynamics(d.keys, TestOptions());
  return {c.skewness, c.kdd};
}

TEST(DatasetCharacteristicsTest, UniformIsBaseline) {
  const auto u = Measure(DatasetId::kUniform);
  EXPECT_NEAR(u.skewness, 1.0, 0.5);
  EXPECT_LT(u.kdd, 0.2);
}

TEST(DatasetCharacteristicsTest, ReviewHasHighSkewLowKdd) {
  const auto rm = Measure(DatasetId::kReviewM);
  const auto u = Measure(DatasetId::kUniform);
  EXPECT_GT(rm.skewness, u.skewness * 5);
  EXPECT_LT(rm.kdd, 1.0);
}

TEST(DatasetCharacteristicsTest, TaxiHasHighKdd) {
  const auto tx = Measure(DatasetId::kTaxi);
  const auto rm = Measure(DatasetId::kReviewM);
  const auto u = Measure(DatasetId::kUniform);
  EXPECT_GT(tx.kdd, rm.kdd * 2);
  EXPECT_GT(tx.kdd, u.kdd + 1.0);
}

TEST(DatasetCharacteristicsTest, MapHasLowerSkewThanReview) {
  const auto mm = Measure(DatasetId::kMapM);
  const auto rm = Measure(DatasetId::kReviewM);
  EXPECT_LT(mm.skewness, rm.skewness / 2);
}

TEST(DatasetCharacteristicsTest, MapHasModerateKdd) {
  const auto mm = Measure(DatasetId::kMapM);
  const auto u = Measure(DatasetId::kUniform);
  EXPECT_GT(mm.kdd, u.kdd);
}

TEST(DatasetCharacteristicsTest, ShufflingLowersKddForTaxi) {
  const auto tx = Measure(DatasetId::kTaxi);
  const auto txs = Measure(DatasetId::kTaxi, /*shuffled=*/true);
  EXPECT_LT(txs.kdd, tx.kdd / 2);
  // Skewness is an order-free property: shuffling keeps it.
  EXPECT_NEAR(txs.skewness, tx.skewness, tx.skewness * 0.2 + 0.5);
}

TEST(DatasetsTest, ShortNames) {
  EXPECT_STREQ(DatasetShortName(DatasetId::kMapM), "MM");
  EXPECT_STREQ(DatasetShortName(DatasetId::kTaxi), "TX");
  const Dataset d = MakeDataset(DatasetId::kMapM, 100, 1, true);
  EXPECT_EQ(d.name, "MM(s)");
}

TEST(DatasetsTest, RealWorldListHasFive) {
  EXPECT_EQ(RealWorldDatasetIds().size(), 5u);
}

TEST(MakeUniqueTest, ResolvesDuplicatesPreservingOrder) {
  std::vector<uint64_t> keys = {10, 10, 10, 20};
  MakeUnique(keys, 1);
  std::unordered_set<uint64_t> seen(keys.begin(), keys.end());
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(keys[0], 10u);  // first occurrence unchanged
}

}  // namespace
}  // namespace dytis
