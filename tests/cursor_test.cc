#include "src/core/cursor.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/util/rng.h"

namespace dytis {
namespace {

DyTISConfig SmallConfig() {
  DyTISConfig c;
  c.first_level_bits = 2;
  c.bucket_bytes = 128;
  c.l_start = 2;
  c.max_global_depth = 14;
  return c;
}

TEST(CursorTest, EmptyIndex) {
  DyTIS<uint64_t> idx(SmallConfig());
  Cursor<uint64_t> c(idx);
  EXPECT_FALSE(c.Valid());
  c.Next();  // must be safe past the end
  EXPECT_FALSE(c.Valid());
}

TEST(CursorTest, FullIterationMatchesModel) {
  DyTIS<uint64_t> idx(SmallConfig());
  std::map<uint64_t, uint64_t> model;
  Rng rng(1);
  for (int i = 0; i < 30'000; i++) {
    const uint64_t k = rng.Next();
    idx.Insert(k, k / 7);
    model[k] = k / 7;
  }
  size_t visited = 0;
  auto it = model.begin();
  // Tiny batches stress the refill boundary logic.
  for (Cursor<uint64_t> c(idx, /*batch_size=*/7); c.Valid(); c.Next()) {
    ASSERT_NE(it, model.end());
    ASSERT_EQ(c.key(), it->first);
    ASSERT_EQ(c.value(), it->second);
    ++it;
    visited++;
  }
  EXPECT_EQ(visited, model.size());
  EXPECT_EQ(it, model.end());
}

TEST(CursorTest, SeekPositionsAtLowerBound) {
  DyTIS<uint64_t> idx(SmallConfig());
  for (uint64_t k = 0; k < 1000; k++) {
    idx.Insert(k << 40, k);
  }
  Cursor<uint64_t> c(idx);
  c.Seek(uint64_t{500} << 40);
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), uint64_t{500} << 40);
  c.Seek((uint64_t{500} << 40) + 1);
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), uint64_t{501} << 40);
  c.Seek(uint64_t{9999} << 40);
  EXPECT_FALSE(c.Valid());
}

TEST(CursorTest, SeekToFirstRewinds) {
  DyTIS<uint64_t> idx(SmallConfig());
  for (uint64_t k = 10; k < 20; k++) {
    idx.Insert(k << 40, k);
  }
  Cursor<uint64_t> c(idx);
  c.Next();
  c.Next();
  c.SeekToFirst();
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), uint64_t{10} << 40);
}

TEST(CursorTest, MaxKeyTermination) {
  DyTIS<uint64_t> idx(SmallConfig());
  idx.Insert(~uint64_t{0}, 1);  // the largest possible key
  idx.Insert(0, 2);
  size_t visited = 0;
  for (Cursor<uint64_t> c(idx, 1); c.Valid(); c.Next()) {
    visited++;
    ASSERT_LE(visited, 2u);
  }
  EXPECT_EQ(visited, 2u);
}

TEST(ScanRangeTest, ClipsAtEnd) {
  DyTIS<uint64_t> idx(SmallConfig());
  for (uint64_t k = 0; k < 100; k++) {
    idx.Insert(k << 40, k);
  }
  std::vector<std::pair<uint64_t, uint64_t>> out(100);
  // [10<<40, 20<<40): exactly keys 10..19.
  const size_t got = idx.ScanRange(uint64_t{10} << 40, uint64_t{20} << 40,
                                   out.size(), out.data());
  ASSERT_EQ(got, 10u);
  EXPECT_EQ(out[0].first, uint64_t{10} << 40);
  EXPECT_EQ(out[9].first, uint64_t{19} << 40);
  // Empty and inverted ranges.
  EXPECT_EQ(idx.ScanRange(5, 5, out.size(), out.data()), 0u);
  EXPECT_EQ(idx.ScanRange(10, 5, out.size(), out.data()), 0u);
}

TEST(ScanRangeTest, CountRange) {
  DyTIS<uint64_t> idx(SmallConfig());
  for (uint64_t k = 0; k < 5000; k++) {
    idx.Insert(k << 40, k);
  }
  EXPECT_EQ(idx.CountRange(0, ~uint64_t{0}), 5000u);
  EXPECT_EQ(idx.CountRange(uint64_t{100} << 40, uint64_t{200} << 40), 100u);
  EXPECT_EQ(idx.CountRange(1, 2), 0u);
}

}  // namespace
}  // namespace dytis
