// Crash-injection recovery tests (durability subsystem).
//
// Each test forks the dytis_crashkill helper (tests/dytis_crashkill.cc),
// which runs the deterministic workload of tests/recovery_test_util.h
// against a durability directory and dies by SIGKILL — either between two
// operations or in the middle of a structural operation (split / doubling /
// remap / expansion), via the FaultPolicy::crash_instead hook.  The test
// then recovers the directory in-process and asserts *exact* equality
// against the reference model at the recovered LSN, plus a clean
// CheckInvariants() report.
//
// The kill-point matrix is widened with DYTIS_CRASH_POINTS=<n> (structural
// kill ordinals per mode; default 3) — scripts/check.sh raises it for the
// crash-matrix CI stage.
#include "src/recovery/durable_dytis.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tests/recovery_test_util.h"

#ifndef DYTIS_CRASHKILL_PATH
#error "DYTIS_CRASHKILL_PATH must point at the dytis_crashkill binary"
#endif

namespace dytis {
namespace {

using recovery::DurableDyTIS;
using recovery::RecoveryConfig;
using recovery_test::BusyRecoveryConfig;
using recovery_test::CountLoggedOps;
using recovery_test::KeyForSlot;
using recovery_test::Model;
using recovery_test::ModelAtLsn;

constexpr uint64_t kSeed = 20260807;

std::string MakeTempDir(const char* tag) {
  std::string tmpl =
      std::string(::testing::TempDir()) + "/dytis_crash_" + tag + "_XXXXXX";
  char* got = ::mkdtemp(tmpl.data());
  EXPECT_NE(got, nullptr);
  return tmpl;
}

struct HelperResult {
  bool signaled = false;
  int signal = 0;
  bool exited = false;
  int exit_code = -1;
};

// Forks + execs the helper so WIFSIGNALED sees the SIGKILL directly (a
// shell in between would fold it into exit code 137).
HelperResult RunHelper(const std::vector<std::string>& args) {
  HelperResult result;
  std::vector<std::string> argv_store;
  argv_store.push_back(DYTIS_CRASHKILL_PATH);
  argv_store.insert(argv_store.end(), args.begin(), args.end());
  std::vector<char*> argv;
  for (std::string& a : argv_store) {
    argv.push_back(a.data());
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::_Exit(127);  // exec failed
  }
  EXPECT_GT(pid, 0);
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  if (WIFSIGNALED(status)) {
    result.signaled = true;
    result.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

RecoveryConfig RecoveryFor(const std::string& dir, uint64_t sync_every = 1) {
  RecoveryConfig rc;
  rc.dir = dir;
  rc.wal_sync_every = sync_every;
  return rc;
}

// Recovered index must equal the model exactly: same size, same ordered
// (key, value) sequence, and a clean invariant report.
void ExpectMatchesModel(const DurableDyTIS<uint64_t>& db, const Model& model) {
  ASSERT_EQ(db.size(), model.size());
  std::vector<std::pair<uint64_t, uint64_t>> got(model.size());
  ASSERT_EQ(db.Scan(0, got.size(), got.data()), got.size());
  size_t i = 0;
  for (const auto& [key, value] : model) {
    ASSERT_EQ(got[i].first, key) << "at scan position " << i;
    ASSERT_EQ(got[i].second, value) << "for key " << key;
    i++;
  }
  const auto report = db.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Describe();
}

int CrashPointsPerMode() {
  const char* env = std::getenv("DYTIS_CRASH_POINTS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 3;
}

// --- Kill between operations ----------------------------------------------

TEST(RecoveryCrashTest, OpcountKillSyncEveryOneRecoversExactPrefix) {
  for (const uint64_t kill_at : {1ull, 157ull, 1500ull, 4321ull}) {
    const std::string dir = MakeTempDir("opcount");
    const HelperResult run = RunHelper(
        {"--dir", dir, "--ops", "6000", "--seed", std::to_string(kSeed),
         "--mode", "opcount", "--kill-at", std::to_string(kill_at),
         "--sync-every", "1"});
    ASSERT_TRUE(run.signaled) << "exit_code=" << run.exit_code;
    ASSERT_EQ(run.signal, SIGKILL);

    std::string error;
    auto db = DurableDyTIS<uint64_t>::Open(RecoveryFor(dir),
                                           BusyRecoveryConfig(), &error);
    ASSERT_NE(db, nullptr) << error;
    // Synchronous logging: every op that was applied was logged and synced
    // first, so the recovered LSN is exactly the logged-op count at the
    // kill point — nothing lost, nothing extra.
    const uint64_t expected_lsn = CountLoggedOps(kSeed, kill_at);
    EXPECT_EQ(db->recovery_stats().last_lsn, expected_lsn);
    ExpectMatchesModel(*db, ModelAtLsn(kSeed, expected_lsn));
  }
}

// --- Kill inside structural operations ------------------------------------

TEST(RecoveryCrashTest, StructuralKillPointsRecoverConsistently) {
  const int points = CrashPointsPerMode();
  int kills = 0;
  for (const char* mode : {"split", "doubling", "remap", "expand"}) {
    for (int p = 0; p < points; p++) {
      // Spread the ordinals out so later attempts (deeper structure) are
      // covered too, not just the first few.
      const uint64_t kill_at = static_cast<uint64_t>(p) * (p + 3) / 2;
      const std::string dir = MakeTempDir(mode);
      const HelperResult run = RunHelper(
          {"--dir", dir, "--ops", "6000", "--seed", std::to_string(kSeed),
           "--mode", mode, "--kill-at", std::to_string(kill_at),
           "--sync-every", "1"});
      // The workload may finish before attempt #kill_at of this op type
      // happens; that run still must recover to the full workload state.
      if (run.signaled) {
        ASSERT_EQ(run.signal, SIGKILL) << mode << " kill_at=" << kill_at;
        kills++;
      } else {
        ASSERT_TRUE(run.exited && run.exit_code == 0)
            << mode << " kill_at=" << kill_at
            << " exit_code=" << run.exit_code;
      }

      std::string error;
      auto db = DurableDyTIS<uint64_t>::Open(RecoveryFor(dir),
                                             BusyRecoveryConfig(), &error);
      ASSERT_NE(db, nullptr) << mode << " kill_at=" << kill_at << ": "
                             << error;
      // The op that triggered the structural operation was logged before
      // the index was touched, so the durable prefix always includes it;
      // the model at the recovered LSN is the exact expected state.
      ExpectMatchesModel(*db, ModelAtLsn(kSeed, db->recovery_stats().last_lsn));
    }
  }
  // The matrix is only meaningful if kills actually happened.
  EXPECT_GT(kills, 0);
}

// --- Group commit ----------------------------------------------------------

TEST(RecoveryCrashTest, GroupCommitRecoversAConsistentPrefix) {
  const uint64_t kill_at = 3000;
  const std::string dir = MakeTempDir("group");
  const HelperResult run = RunHelper(
      {"--dir", dir, "--ops", "6000", "--seed", std::to_string(kSeed),
       "--mode", "opcount", "--kill-at", std::to_string(kill_at),
       "--sync-every", "64"});
  ASSERT_TRUE(run.signaled);
  ASSERT_EQ(run.signal, SIGKILL);

  std::string error;
  auto db = DurableDyTIS<uint64_t>::Open(RecoveryFor(dir, 64),
                                         BusyRecoveryConfig(), &error);
  ASSERT_NE(db, nullptr) << error;
  // Group commit may lose the buffered tail, never reorder or corrupt: the
  // recovered state is the model at *some* LSN no later than the kill.
  const uint64_t last_lsn = db->recovery_stats().last_lsn;
  EXPECT_LE(last_lsn, CountLoggedOps(kSeed, kill_at));
  ExpectMatchesModel(*db, ModelAtLsn(kSeed, last_lsn));
}

// --- Checkpoint + WAL-tail interaction -------------------------------------

TEST(RecoveryCrashTest, KillAfterCheckpointReplaysOnlyTheTail) {
  const uint64_t checkpoint_at = 2000;
  const uint64_t kill_at = 4500;
  const std::string dir = MakeTempDir("ckpt");
  const HelperResult run = RunHelper(
      {"--dir", dir, "--ops", "6000", "--seed", std::to_string(kSeed),
       "--mode", "opcount", "--kill-at", std::to_string(kill_at),
       "--sync-every", "1", "--checkpoint-at", std::to_string(checkpoint_at)});
  ASSERT_TRUE(run.signaled);
  ASSERT_EQ(run.signal, SIGKILL);

  std::string error;
  auto db = DurableDyTIS<uint64_t>::Open(RecoveryFor(dir),
                                         BusyRecoveryConfig(), &error);
  ASSERT_NE(db, nullptr) << error;
  const auto& stats = db->recovery_stats();
  EXPECT_TRUE(stats.checkpoint_loaded);
  // The checkpoint covers ops [0, checkpoint_at]; replay starts after it.
  const uint64_t watermark = CountLoggedOps(kSeed, checkpoint_at + 1);
  const uint64_t expected_lsn = CountLoggedOps(kSeed, kill_at);
  EXPECT_EQ(stats.checkpoint_wal_lsn, watermark);
  EXPECT_EQ(stats.wal_records_replayed, expected_lsn - watermark);
  EXPECT_EQ(stats.last_lsn, expected_lsn);
  ExpectMatchesModel(*db, ModelAtLsn(kSeed, expected_lsn));
}

// --- Recovery is idempotent and the index stays usable ---------------------

TEST(RecoveryCrashTest, ReopenIsIdempotentAndWritable) {
  const std::string dir = MakeTempDir("reopen");
  const HelperResult run = RunHelper(
      {"--dir", dir, "--ops", "6000", "--seed", std::to_string(kSeed),
       "--mode", "opcount", "--kill-at", "2500", "--sync-every", "1"});
  ASSERT_TRUE(run.signaled);

  std::string error;
  uint64_t first_lsn = 0;
  Model model;
  {
    auto db = DurableDyTIS<uint64_t>::Open(RecoveryFor(dir),
                                           BusyRecoveryConfig(), &error);
    ASSERT_NE(db, nullptr) << error;
    first_lsn = db->recovery_stats().last_lsn;
    model = ModelAtLsn(kSeed, first_lsn);
    ExpectMatchesModel(*db, model);
  }
  // Recovering again (nothing written in between) lands on the same state.
  {
    auto db = DurableDyTIS<uint64_t>::Open(RecoveryFor(dir),
                                           BusyRecoveryConfig(), &error);
    ASSERT_NE(db, nullptr) << error;
    EXPECT_EQ(db->recovery_stats().last_lsn, first_lsn);
    ExpectMatchesModel(*db, model);
    // The recovered index accepts new work, checkpoints, and round-trips.
    for (uint64_t s = 0; s < 500; s++) {
      const uint64_t key = KeyForSlot(recovery_test::kKeyUniverse + s);
      ASSERT_NE(db->PutEx(key, s), InsertResult::kHardError);
      model[key] = s;
    }
    ASSERT_TRUE(db->Checkpoint(&error)) << error;
  }
  {
    auto db = DurableDyTIS<uint64_t>::Open(RecoveryFor(dir),
                                           BusyRecoveryConfig(), &error);
    ASSERT_NE(db, nullptr) << error;
    EXPECT_TRUE(db->recovery_stats().checkpoint_loaded);
    // Everything is in the checkpoint; the log was reset.
    EXPECT_EQ(db->recovery_stats().wal_records_replayed, 0u);
    ExpectMatchesModel(*db, model);
  }
}

// --- Torn tail --------------------------------------------------------------

TEST(RecoveryCrashTest, TornTailIsTruncatedAndCounted) {
  const std::string dir = MakeTempDir("torn");
  const HelperResult run = RunHelper(
      {"--dir", dir, "--ops", "3000", "--seed", std::to_string(kSeed),
       "--mode", "none", "--sync-every", "1"});
  ASSERT_TRUE(run.exited);
  ASSERT_EQ(run.exit_code, 0);

  // Simulate a crash mid-append: garbage (a torn frame) at the end of the
  // log.
  const std::string wal_path = dir + "/wal.log";
  std::FILE* f = std::fopen(wal_path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char junk[] = "torn-frame-bytes";
  ASSERT_EQ(std::fwrite(junk, 1, sizeof(junk), f), sizeof(junk));
  ASSERT_EQ(std::fclose(f), 0);
  struct ::stat before {};
  ASSERT_EQ(::stat(wal_path.c_str(), &before), 0);

  std::string error;
  auto db = DurableDyTIS<uint64_t>::Open(RecoveryFor(dir),
                                         BusyRecoveryConfig(), &error);
  ASSERT_NE(db, nullptr) << error;
  EXPECT_EQ(db->recovery_stats().torn_bytes_truncated, sizeof(junk));
  const uint64_t full_lsn = CountLoggedOps(kSeed, 3000);
  EXPECT_EQ(db->recovery_stats().last_lsn, full_lsn);
  ExpectMatchesModel(*db, ModelAtLsn(kSeed, full_lsn));
  // The tail was physically removed.
  struct ::stat after {};
  ASSERT_EQ(::stat(wal_path.c_str(), &after), 0);
  EXPECT_EQ(static_cast<uint64_t>(after.st_size),
            static_cast<uint64_t>(before.st_size) - sizeof(junk));
}

}  // namespace
}  // namespace dytis
