// JsonValue writer tests: the exporters (bench results, Chrome traces,
// metrics dumps) rely on standard-JSON output, preserved key order, and
// lossless number formatting.
#include "src/util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace dytis {
namespace {

TEST(JsonTest, ScalarsDumpAsJson) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(-42).Dump(), "-42");
  EXPECT_EQ(JsonValue(uint64_t{18446744073709551615ULL}).Dump(),
            "18446744073709551615");
  EXPECT_EQ(JsonValue(int64_t{-9223372036854775807LL}).Dump(),
            "-9223372036854775807");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
  EXPECT_EQ(JsonValue(std::string("hi")).Dump(), "\"hi\"");
}

TEST(JsonTest, DoublesRoundTripLosslessly) {
  const double v = 0.1 + 0.2;  // classic non-representable sum
  const std::string dumped = JsonValue(v).Dump();
  EXPECT_EQ(std::stod(dumped), v);
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonValue(std::nan("")).Dump(), "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(JsonValue(-std::numeric_limits<double>::infinity()).Dump(),
            "null");
}

TEST(JsonTest, StringsAreEscaped) {
  EXPECT_EQ(JsonValue("a\"b").Dump(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue("a\\b").Dump(), "\"a\\\\b\"");
  EXPECT_EQ(JsonValue("a\nb\tc\r").Dump(), "\"a\\nb\\tc\\r\"");
  EXPECT_EQ(JsonValue(std::string("a\x01z")).Dump(), "\"a\\u0001z\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj["zebra"] = 1;
  obj["apple"] = 2;
  obj["mango"] = 3;
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  EXPECT_EQ(obj.size(), 3u);
}

TEST(JsonTest, ObjectKeyReassignmentUpdatesInPlace) {
  JsonValue obj = JsonValue::Object();
  obj["k"] = 1;
  obj["k"] = 2;
  EXPECT_EQ(obj.Dump(), "{\"k\":2}");
  EXPECT_EQ(obj.size(), 1u);
}

TEST(JsonTest, NullBecomesObjectOrArrayOnFirstUse) {
  JsonValue root;
  root["nested"]["deep"] = true;  // null -> object, twice
  root["list"].Append(1);  // null -> array
  root["list"].Append(2);
  EXPECT_EQ(root.Dump(), "{\"nested\":{\"deep\":true},\"list\":[1,2]}");
}

TEST(JsonTest, EmptyContainersDump) {
  EXPECT_EQ(JsonValue::Object().Dump(), "{}");
  EXPECT_EQ(JsonValue::Array().Dump(), "[]");
  EXPECT_EQ(JsonValue::Object().Dump(2), "{}");
  EXPECT_EQ(JsonValue::Array().Dump(2), "[]");
}

TEST(JsonTest, PrettyPrintIndents) {
  JsonValue root = JsonValue::Object();
  root["a"] = 1;
  root["b"].Append("x");
  EXPECT_EQ(root.Dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}");
}

TEST(JsonTest, ArrayOfObjects) {
  JsonValue arr = JsonValue::Array();
  for (int i = 0; i < 3; i++) {
    JsonValue row = JsonValue::Object();
    row["i"] = i;
    arr.Append(std::move(row));
  }
  EXPECT_EQ(arr.Dump(), "[{\"i\":0},{\"i\":1},{\"i\":2}]");
  EXPECT_EQ(arr.size(), 3u);
}

}  // namespace
}  // namespace dytis
