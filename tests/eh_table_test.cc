// White-box tests for one Extendible-Hashing table of DyTIS's second level:
// warm-up behaviour, Algorithm-1 action selection, segment-size limits, the
// limit-raising heuristic, and sibling-chain/scan positioning.
#include "src/core/eh_table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/lock_policy.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

using Table = EhTable<uint64_t, NoLockPolicy>;

DyTISConfig TinyConfig() {
  DyTISConfig c;
  c.first_level_bits = 0;  // the EH sees full 64-bit keys in these tests
  c.bucket_bytes = 128;    // 8 pairs per bucket
  c.l_start = 2;
  c.max_global_depth = 12;
  return c;
}

struct TableFixture {
  explicit TableFixture(DyTISConfig config = TinyConfig())
      : config(config), table(config, &stats, /*key_bits=*/64) {}
  DyTISConfig config;
  DyTISStats stats;
  Table table;
};

TEST(EhTableTest, StartsWithSingleSegment) {
  TableFixture f;
  EXPECT_EQ(f.table.global_depth(), 0);
  EXPECT_EQ(f.table.NumSegments(), 1u);
  EXPECT_EQ(f.table.NumKeys(), 0u);
}

TEST(EhTableTest, WarmupUsesPlainExtendibleHashing) {
  // A deep L_start keeps the table in the warm-up phase for this whole
  // test: overflows must be handled by doubling/split only.
  DyTISConfig config = TinyConfig();
  config.l_start = 8;
  TableFixture f(config);
  Rng rng(1);
  for (int i = 0; i < 200; i++) {
    f.table.Insert(rng.Next(), 1);
  }
  EXPECT_EQ(f.stats.remappings.load(), 0u);
  EXPECT_EQ(f.stats.expansions.load(), 0u);
  EXPECT_GT(f.stats.doublings.load() + f.stats.splits.load(), 0u);
}

TEST(EhTableTest, UniformKeysTriggerExpansion) {
  TableFixture f;
  Rng rng(2);
  for (int i = 0; i < 30'000; i++) {
    f.table.Insert(rng.Next(), 1);
  }
  EXPECT_GT(f.stats.expansions.load(), 0u);
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
}

TEST(EhTableTest, SkewedKeysTriggerRemapping) {
  TableFixture f;
  Rng rng(3);
  // Clusters at sparse bases, spread inside (remapping-friendly shape).
  for (int c = 0; c < 30; c++) {
    const uint64_t base = rng.Next() & ~LowMask(44);
    for (int i = 0; i < 600; i++) {
      f.table.Insert(base + (static_cast<uint64_t>(i) << 34), 1);
    }
  }
  EXPECT_GT(f.stats.remappings.load(), 0u);
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
}

TEST(EhTableTest, NumKeysMatchesInsertedCount) {
  TableFixture f;
  Rng rng(4);
  size_t n = 0;
  for (int i = 0; i < 10'000; i++) {
    n += f.table.Insert(rng.NextBelow(5000) << 40, 1) ? 1 : 0;
  }
  EXPECT_EQ(f.table.NumKeys(), n);
}

TEST(EhTableTest, ScanPositionsInsideSegment) {
  TableFixture f;
  for (uint64_t k = 0; k < 2000; k++) {
    f.table.Insert(k << 44, k);
  }
  std::pair<uint64_t, uint64_t> out[10];
  // From an existing key.
  ASSERT_EQ(f.table.Scan(uint64_t{100} << 44, false, 10, out), 10u);
  EXPECT_EQ(out[0].first, uint64_t{100} << 44);
  // From between keys.
  ASSERT_EQ(f.table.Scan((uint64_t{100} << 44) + 1, false, 10, out), 10u);
  EXPECT_EQ(out[0].first, uint64_t{101} << 44);
  // From before everything, via from_begin.
  ASSERT_EQ(f.table.Scan(0, true, 10, out), 10u);
  EXPECT_EQ(out[0].first, 0u);
  // Runs off the end.
  ASSERT_EQ(f.table.Scan(uint64_t{1995} << 44, false, 10, out), 5u);
}

TEST(EhTableTest, ForEachVisitsAllInOrder) {
  TableFixture f;
  Rng rng(5);
  size_t n = 0;
  for (int i = 0; i < 20'000; i++) {
    n += f.table.Insert(rng.Next(), 1) ? 1 : 0;
  }
  size_t visited = 0;
  uint64_t prev = 0;
  bool first = true;
  f.table.ForEach([&](uint64_t k, uint64_t) {
    if (!first) {
      EXPECT_GT(k, prev);
    }
    prev = k;
    first = false;
    visited++;
  });
  EXPECT_EQ(visited, n);
}

TEST(EhTableTest, LimitHeuristicRaisesMultiplierOnUniformData) {
  // Uniform data drives expansions; by L' = L_start + delta the EH should
  // adopt the large multiplier, which manifests as segments far bigger than
  // the small-limit cap.
  DyTISConfig config = TinyConfig();
  config.limit_multiplier = 2;
  config.limit_multiplier_large = 128;
  TableFixture f(config);
  Rng rng(6);
  for (int i = 0; i < 120'000; i++) {
    f.table.Insert(rng.Next(), 1);
  }
  // With multiplier 2 the cap at LD=L_start is 4 buckets; expansions beyond
  // that imply the heuristic fired.  Indirect check: expansion count keeps
  // growing well past the L' decision point and invariants hold.
  EXPECT_GT(f.stats.expansions.load(), 10u);
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
}

TEST(EhTableTest, EraseAcrossStructures) {
  TableFixture f;
  Rng rng(7);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 20'000; i++) {
    keys.push_back(rng.Next());
    f.table.Insert(keys.back(), keys.back() >> 1);
  }
  for (size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(f.table.Erase(keys[i]));
  }
  for (size_t i = 0; i < keys.size(); i++) {
    uint64_t v = 0;
    const bool present = f.table.Find(keys[i], &v);
    ASSERT_EQ(present, i % 2 == 1) << i;
    if (present) {
      ASSERT_EQ(v, keys[i] >> 1);
    }
  }
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
}

TEST(EhTableTest, MemoryAccountingGrowsAndShrinks) {
  TableFixture f;
  const size_t empty = f.table.MemoryBytes();
  Rng rng(8);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 30'000; i++) {
    keys.push_back(rng.Next());
    f.table.Insert(keys.back(), 0);
  }
  const size_t loaded = f.table.MemoryBytes();
  EXPECT_GT(loaded, empty + 30'000 * 8);
  for (uint64_t k : keys) {
    f.table.Erase(k);
  }
  EXPECT_LT(f.table.MemoryBytes(), loaded);  // merges reclaimed space
}

TEST(EhTableTest, StashOnlyAfterAllRepairsExhausted) {
  // Uniform random keys never need the stash, even at a tiny depth cap.
  DyTISConfig config = TinyConfig();
  config.max_global_depth = 10;
  TableFixture f(config);
  Rng rng(9);
  for (int i = 0; i < 50'000; i++) {
    f.table.Insert(rng.Next(), 1);
  }
  EXPECT_EQ(f.stats.stash_inserts.load(), 0u);
}

TEST(EhTableTest, GlobalDepthCappedByConfig) {
  DyTISConfig config = TinyConfig();
  config.max_global_depth = 6;
  TableFixture f(config);
  for (uint64_t k = 0; k < 5000; k++) {
    f.table.Insert(k, k);  // adversarial density
  }
  EXPECT_LE(f.table.global_depth(), 6);
  EXPECT_GT(f.stats.stash_inserts.load(), 0u);
  // Everything still findable.
  for (uint64_t k = 0; k < 5000; k += 111) {
    uint64_t v = 0;
    ASSERT_TRUE(f.table.Find(k, &v));
    ASSERT_EQ(v, k);
  }
}

TEST(EhTableTest, StashResidentKeysUpdateInPlace) {
  // Drive dense keys past a tiny depth cap so some land in the stash via
  // the natural (non-fault-injected) exhaustion path, then re-insert every
  // key: each must update in place, never duplicate into a bucket or count
  // as a new key.
  DyTISConfig config = TinyConfig();
  config.max_global_depth = 2;
  TableFixture f(config);
  for (uint64_t k = 0; k < 1500; k++) {
    f.table.Insert(k, k);
  }
  ASSERT_GT(f.stats.stash_inserts.load(), 0u);
  const size_t before = f.table.NumKeys();
  for (uint64_t k = 0; k < 1500; k++) {
    EXPECT_FALSE(f.table.Insert(k, k + 1'000'000)) << k;  // update, not insert
  }
  EXPECT_EQ(f.table.NumKeys(), before);
  for (uint64_t k = 0; k < 1500; k += 41) {
    uint64_t v = 0;
    ASSERT_TRUE(f.table.Find(k, &v));
    ASSERT_EQ(v, k + 1'000'000);
  }
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
}

}  // namespace
}  // namespace dytis
