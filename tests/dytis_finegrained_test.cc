// Correctness tests for the fine-grained (bucket-locking) DyTIS build.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dytis.h"
#include "src/datasets/dataset.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

DyTISConfig SmallConfig() {
  DyTISConfig c;
  c.first_level_bits = 3;
  c.bucket_bytes = 256;
  c.l_start = 2;
  c.max_global_depth = 14;
  return c;
}

using Index = FineGrainedDyTIS<uint64_t>;

TEST(FineGrainedDyTISTest, SingleThreadedContractHolds) {
  Index idx(SmallConfig());
  const Dataset d = MakeDataset(DatasetId::kReviewM, 30'000, 3);
  for (size_t i = 0; i < d.keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(d.keys[i], i));
  }
  EXPECT_EQ(idx.size(), d.keys.size());
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  for (size_t i = 0; i < d.keys.size(); i += 31) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(d.keys[i], &v));
    ASSERT_EQ(v, i);
  }
  // In-place updates through the fine path.
  ASSERT_FALSE(idx.Insert(d.keys[0], 777));
  uint64_t v = 0;
  ASSERT_TRUE(idx.Find(d.keys[0], &v));
  EXPECT_EQ(v, 777u);
  ASSERT_TRUE(idx.Update(d.keys[1], 888));
  ASSERT_TRUE(idx.Find(d.keys[1], &v));
  EXPECT_EQ(v, 888u);
  EXPECT_FALSE(idx.Update(~uint64_t{0}, 1));
}

TEST(FineGrainedDyTISTest, MatchesCoarseBuildExactly) {
  Index fine(SmallConfig());
  ConcurrentDyTIS<uint64_t> coarse(SmallConfig());
  const Dataset d = MakeDataset(DatasetId::kTaxi, 25'000, 5);
  for (size_t i = 0; i < d.keys.size(); i++) {
    ASSERT_EQ(fine.Insert(d.keys[i], i), coarse.Insert(d.keys[i], i));
  }
  std::vector<std::pair<uint64_t, uint64_t>> a(d.keys.size());
  std::vector<std::pair<uint64_t, uint64_t>> b(d.keys.size());
  ASSERT_EQ(fine.Scan(0, a.size(), a.data()),
            coarse.Scan(0, b.size(), b.data()));
  EXPECT_EQ(a, b);
}

TEST(FineGrainedDyTISTest, ConcurrentMixedOps) {
  Index idx(SmallConfig());
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 31 + 5);
      std::vector<std::pair<uint64_t, uint64_t>> out(32);
      for (int i = 0; i < 20'000; i++) {
        const uint64_t key = rng.NextBelow(8'000) << 38;
        switch (rng.NextBelow(4)) {
          case 0:
          case 1:
            idx.Insert(key, key);
            break;
          case 2: {
            uint64_t v = 0;
            if (idx.Find(key, &v) && v != key) {
              failed.store(true);
            }
            break;
          }
          default:
            idx.Scan(key, 32, out.data());
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
}

TEST(FineGrainedDyTISTest, UsesMoreMemoryThanCoarse) {
  // The per-bucket locks are exactly the memory overhead the paper cites.
  Index fine(SmallConfig());
  ConcurrentDyTIS<uint64_t> coarse(SmallConfig());
  const Dataset d = MakeDataset(DatasetId::kUniform, 30'000, 7);
  for (size_t i = 0; i < d.keys.size(); i++) {
    fine.Insert(d.keys[i], i);
    coarse.Insert(d.keys[i], i);
  }
  EXPECT_GT(fine.MemoryBytes(), coarse.MemoryBytes());
}

}  // namespace
}  // namespace dytis
