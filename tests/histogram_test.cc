#include "src/analysis/histogram.h"

#include <gtest/gtest.h>

#include <vector>

namespace dytis {
namespace {

TEST(HistogramTest, BinAssignment) {
  Histogram h(0, 99, 10);
  h.Add(0);
  h.Add(9);
  h.Add(10);
  h.Add(99);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(100, 200, 4);
  h.Add(50);    // below lo -> first bin
  h.Add(5000);  // above hi -> last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(HistogramTest, DegenerateRange) {
  Histogram h(42, 42, 8);  // single-point range must not divide by zero
  h.Add(42);
  EXPECT_EQ(h.count(0), 1u);
}

TEST(HistogramTest, FullKeyRange) {
  Histogram h(0, ~uint64_t{0}, 16);
  h.Add(0);
  h.Add(~uint64_t{0});
  h.Add(uint64_t{1} << 63);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(15), 1u);
  EXPECT_EQ(h.count(8), 1u);
}

TEST(HistogramTest, Probability) {
  Histogram h(0, 9, 2);
  h.Add(1);
  h.Add(2);
  h.Add(7);
  EXPECT_DOUBLE_EQ(h.Probability(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.Probability(1), 1.0 / 3.0);
}

TEST(KlDivergenceTest, IdenticalDistributionsAreZero) {
  Histogram p(0, 999, 10);
  Histogram q(0, 999, 10);
  for (uint64_t k = 0; k < 1000; k += 3) {
    p.Add(k);
    q.Add(k);
  }
  EXPECT_NEAR(KlDivergence(p, q), 0.0, 1e-12);
}

TEST(KlDivergenceTest, DisjointDistributionsAreLarge) {
  Histogram p(0, 999, 10);
  Histogram q(0, 999, 10);
  for (uint64_t k = 0; k < 100; k++) {
    p.Add(k);        // all mass in bin 0
    q.Add(900 + k);  // all mass in bin 9
  }
  EXPECT_GT(KlDivergence(p, q), 10.0);  // log(1/eps) scale
}

TEST(KlDivergenceTest, AsymmetricAsDefined) {
  Histogram p(0, 99, 2);
  Histogram q(0, 99, 2);
  for (int i = 0; i < 90; i++) {
    p.Add(10);
  }
  for (int i = 0; i < 10; i++) {
    p.Add(60);
  }
  for (int i = 0; i < 50; i++) {
    q.Add(10);
    q.Add(60);
  }
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
  EXPECT_GT(KlDivergence(p, q), 0.0);
}

TEST(KlDivergenceTest, NonNegativity) {
  // Gibbs' inequality: KL >= 0 for arbitrary histograms.
  Histogram p(0, 999, 20);
  Histogram q(0, 999, 20);
  for (uint64_t k = 0; k < 1000; k += 7) {
    p.Add(k);
  }
  for (uint64_t k = 0; k < 1000; k += 3) {
    q.Add(k * k % 1000);
  }
  EXPECT_GE(KlDivergence(p, q), 0.0);
}

}  // namespace
}  // namespace dytis
